// Benchmarks regenerating the evaluation suite, one benchmark family per
// table/figure (E1–E14; see DESIGN.md for the experiment index). Each
// benchmark times the experiment's hot kernel under testing.B and reports
// the derived metric the table/figure plots (speedup, throughput, model
// cost) via b.ReportMetric. The full formatted tables are produced by
// cmd/parbench; these benches are the `go test -bench` face of the same
// suite.
package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/pgraph"
	"repro/internal/plist"
	"repro/internal/pmat"
	"repro/internal/psort"
	"repro/internal/pstencil"
	"repro/internal/sched"
	"repro/internal/seq"
)

var benchProcs = []int{1, 2, 4, 8}

// BenchmarkE1Scan — Table 1: scan scaling, real and BSP-simulated.
func BenchmarkE1Scan(b *testing.B) {
	const n = 1 << 20
	xs := gen.Ints(n, gen.Uniform, 42)
	dst := make([]int64, n)
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq.Scan(dst, xs)
		}
		reportThroughput(b, n)
	})
	for _, p := range benchProcs {
		b.Run(fmt.Sprintf("par/p=%d", p), func(b *testing.B) {
			opts := par.Options{Procs: p, Grain: 4096}
			for i := 0; i < b.N; i++ {
				par.ScanInclusive(dst, xs, opts, 0, func(a, b int64) int64 { return a + b })
			}
			reportThroughput(b, n)
		})
	}
	for _, p := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("bsp-sim/p=%d", p), func(b *testing.B) {
			var stats *bsp.Stats
			for i := 0; i < b.N; i++ {
				_, stats = bsp.Scan(xs[:1<<16], p)
			}
			params := machine.BSPParams{P: p, G: 2, L: 2000}
			b.ReportMetric(stats.Cost(params), "model-ops")
		})
	}
}

// BenchmarkE2Sort — Table 2: sorters across distributions.
func BenchmarkE2Sort(b *testing.B) {
	const n = 1 << 18
	for _, s := range psort.Sorters {
		for _, d := range []gen.Distribution{gen.Uniform, gen.Zipf} {
			master := gen.Ints(n, d, 42)
			buf := make([]int64, n)
			b.Run(fmt.Sprintf("%s/%s", s.Name, d), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					copy(buf, master)
					s.Sort(buf, par.Options{})
				}
				reportThroughput(b, n)
			})
		}
	}
}

// BenchmarkE3SortScaling — Figure 1: parallel sorters over P.
func BenchmarkE3SortScaling(b *testing.B) {
	const n = 1 << 18
	master := gen.Ints(n, gen.Uniform, 42)
	buf := make([]int64, n)
	for _, name := range []string{"samplesort", "mergesort", "radix"} {
		var sorter psort.Sorter
		for _, s := range psort.Sorters {
			if s.Name == name {
				sorter = s
			}
		}
		for _, p := range benchProcs {
			b.Run(fmt.Sprintf("%s/p=%d", name, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					copy(buf, master)
					sorter.Sort(buf, par.Options{Procs: p})
				}
				reportThroughput(b, n)
			})
		}
	}
}

// BenchmarkE4ListRank — Table 3: pointer jumping vs sequential sweep.
func BenchmarkE4ListRank(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 17} {
		l := gen.RandomList(n, 42)
		b.Run(fmt.Sprintf("seq/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seq.ListRank(l)
			}
			reportThroughput(b, n)
		})
		b.Run(fmt.Sprintf("jump/n=%d", n), func(b *testing.B) {
			opts := par.Options{Grain: 2048}
			for i := 0; i < b.N; i++ {
				plist.Rank(l, opts)
			}
			reportThroughput(b, n)
			b.ReportMetric(machine.ListRankWD(n).Work/float64(n), "work-inflation")
		})
	}
}

// BenchmarkE5CC — Table 4: connected components.
func BenchmarkE5CC(b *testing.B) {
	graphs := map[string]*struct {
		g *Graph
	}{
		"er":   {gen.ErdosRenyi(1<<14, 8, false, 42)},
		"rmat": {gen.RMAT(14, 8, false, 43)},
		"grid": {gen.Grid2D(128, 128, false, 44)},
	}
	opts := par.Options{Grain: 2048}
	for name, tc := range graphs {
		b.Run("labelprop/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pgraph.CCLabelProp(tc.g, opts)
			}
			reportThroughput(b, tc.g.M())
		})
		b.Run("hook/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pgraph.CCHook(tc.g, opts)
			}
			reportThroughput(b, tc.g.M())
		})
		b.Run("seq-uf/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seq.ConnectedComponentsUF(tc.g)
			}
			reportThroughput(b, tc.g.M())
		})
	}
}

// BenchmarkE6MST — Table 5: minimum spanning forest.
func BenchmarkE6MST(b *testing.B) {
	g := gen.ErdosRenyi(1<<13, 8, true, 42)
	opts := par.Options{Grain: 2048}
	b.Run("boruvka", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pgraph.MSTBoruvka(g, opts)
		}
		reportThroughput(b, g.M())
	})
	b.Run("kruskal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq.MSTKruskal(g)
		}
		reportThroughput(b, g.M())
	})
	b.Run("prim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq.MSTPrim(g)
		}
		reportThroughput(b, g.M())
	})
}

// BenchmarkE7Matmul — Figure 2: block-size ablation.
func BenchmarkE7Matmul(b *testing.B) {
	const n = 256
	a := gen.RandomMatrix(n, n, 1)
	m := gen.RandomMatrix(n, n, 2)
	flops := 2 * float64(n) * float64(n) * float64(n)
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq.Matmul(a, m)
		}
		b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
	})
	for _, bs := range []int{16, 64, 128} {
		b.Run(fmt.Sprintf("blocked/b=%d", bs), func(b *testing.B) {
			cfg := pmat.Config{Block: bs}
			for i := 0; i < b.N; i++ {
				pmat.Mul(a, m, cfg)
			}
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

// BenchmarkE8Stencil — Figure 3: Jacobi strong scaling.
func BenchmarkE8Stencil(b *testing.B) {
	const n, iters = 512, 5
	g := gen.HotPlateGrid(n)
	for _, p := range benchProcs {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			opts := par.Options{Procs: p, Grain: 8}
			for i := 0; i < b.N; i++ {
				pstencil.Jacobi(g, iters, opts)
			}
			b.ReportMetric(float64(n-2)*float64(n-2)*iters*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mupdates/s")
		})
	}
}

// BenchmarkE9BSPPredict — Table 6: cost of running kernels on the
// simulated machine (prediction accuracy is reported by cmd/parbench).
func BenchmarkE9BSPPredict(b *testing.B) {
	xs := gen.Ints(1<<16, gen.Uniform, 42)
	for _, p := range []int{4, 16} {
		b.Run(fmt.Sprintf("scan/p=%d", p), func(b *testing.B) {
			var stats *bsp.Stats
			for i := 0; i < b.N; i++ {
				_, stats = bsp.Scan(xs, p)
			}
			b.ReportMetric(stats.TotalW(), "model-W")
			b.ReportMetric(stats.TotalH(), "model-H")
		})
		b.Run(fmt.Sprintf("samplesort/p=%d", p), func(b *testing.B) {
			var stats *bsp.Stats
			for i := 0; i < b.N; i++ {
				_, stats = bsp.SampleSort(xs[:1<<14], p)
			}
			b.ReportMetric(stats.TotalW(), "model-W")
			b.ReportMetric(stats.TotalH(), "model-H")
		})
	}
}

// BenchmarkE10Schedule — Figure 4: loop schedules on skewed work.
func BenchmarkE10Schedule(b *testing.B) {
	const n = 1 << 12
	work := gen.SkewedWork(n, 1<<22, 0.001, 42)
	for _, pol := range par.Policies {
		b.Run(pol.String(), func(b *testing.B) {
			opts := par.Options{Policy: pol, Grain: 16}
			for i := 0; i < b.N; i++ {
				par.For(n, opts, func(j int) { spinBench(work[j]) })
			}
		})
	}
}

// BenchmarkE11Grain — Figure 5: grain-size curve for a cheap-body sum.
func BenchmarkE11Grain(b *testing.B) {
	xs := gen.Ints(1<<20, gen.Uniform, 42)
	for _, grain := range []int{1 << 6, 1 << 10, 1 << 14, 1 << 18} {
		b.Run(fmt.Sprintf("grain=%d", grain), func(b *testing.B) {
			opts := par.Options{Policy: par.Dynamic, Grain: grain}
			for i := 0; i < b.N; i++ {
				par.Sum(xs, opts)
			}
			reportThroughput(b, len(xs))
		})
	}
}

// BenchmarkE12Steal — Table 7: work stealing vs loop schedules on an
// irregular task tree.
func BenchmarkE12Steal(b *testing.B) {
	const depth = 16
	p := runtime.GOMAXPROCS(0)
	b.Run("work-stealing", func(b *testing.B) {
		pool := sched.NewPool(p)
		var root func(d int) sched.Task
		root = func(d int) sched.Task {
			return func(w *sched.Worker) {
				if d <= 0 {
					spinBench(20000)
					return
				}
				w.Spawn(root(d - 1))
				if d%3 == 0 {
					w.Spawn(root(d - 2))
				}
			}
		}
		for i := 0; i < b.N; i++ {
			pool.Run(root(depth))
		}
		b.ReportMetric(float64(pool.Steals()), "steals")
	})
	var tasks []int
	var expand func(d int)
	expand = func(d int) {
		if d <= 0 {
			tasks = append(tasks, 20000)
			return
		}
		expand(d - 1)
		if d%3 == 0 {
			expand(d - 2)
		}
	}
	expand(depth)
	for _, pol := range []par.Policy{par.Static, par.Guided} {
		b.Run("loop-"+pol.String(), func(b *testing.B) {
			opts := par.Options{Procs: p, Policy: pol, Grain: 64}
			for i := 0; i < b.N; i++ {
				par.For(len(tasks), opts, func(j int) { spinBench(tasks[j]) })
			}
		})
	}
}

// BenchmarkE13Models — Figure 6: model evaluation cost (the crossover
// table itself is deterministic; this times trace generation).
func BenchmarkE13Models(b *testing.B) {
	for _, p := range []int{8, 64} {
		b.Run(fmt.Sprintf("direct/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bsp.BroadcastDirect(1, p)
			}
		})
		b.Run(fmt.Sprintf("tree/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bsp.BroadcastTree(1, p)
			}
		})
	}
}

// BenchmarkE14Overhead — Table 8: T1 vs Tseq per kernel.
func BenchmarkE14Overhead(b *testing.B) {
	one := par.Options{Procs: 1}
	xs := gen.Ints(1<<18, gen.Uniform, 42)
	dst := make([]int64, len(xs))
	b.Run("scan-seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq.Scan(dst, xs)
		}
	})
	b.Run("scan-T1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			par.ScanInclusive(dst, xs, one, 0, func(a, b int64) int64 { return a + b })
		}
	})
	buf := make([]int64, len(xs))
	b.Run("sort-seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(buf, xs)
			seq.Quicksort(buf)
		}
	})
	b.Run("sort-T1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(buf, xs)
			psort.SampleSort(buf, one)
		}
	})
	g := gen.ErdosRenyi(1<<13, 8, false, 42)
	b.Run("cc-seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq.ConnectedComponentsUF(g)
		}
	})
	b.Run("cc-T1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pgraph.CCHook(g, one)
		}
	})
}

// BenchmarkExperimentSuiteQuick runs each full experiment end to end at
// quick size (tables included), demonstrating the harness cost itself.
func BenchmarkExperimentSuiteQuick(b *testing.B) {
	cfg := core.Config{Quick: true, Reps: 1, Procs: []int{1, 2}, VProcs: []int{1, 4}}
	for _, e := range core.Experiments {
		e := e
		b.Run(e.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = e.Run(cfg)
			}
		})
	}
}

func reportThroughput(b *testing.B, items int) {
	b.ReportMetric(float64(items)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mitems/s")
}

// spinBench burns approximately units of arithmetic work (mirrors the
// harness's calibrated spin loop).
func spinBench(units int) {
	acc := uint64(1)
	for i := 0; i < units; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	if acc == 0 {
		panic("unreachable")
	}
}

package repro

import (
	"sort"
	"testing"
)

// TestDedicatedExecutorPinning drives the public kernels with a
// dedicated pool pinned via Options.Executor — the long-lived-server
// configuration — and checks results match the shared-pool runs.
func TestDedicatedExecutorPinning(t *testing.T) {
	e := NewExecutor(2)
	defer e.Close()
	opts := Options{Procs: 4, Grain: 64, Executor: e}

	xs := RandomInts(1<<14, 7)
	want := append([]int64(nil), xs...)
	SequentialSort(want)

	for _, s := range []struct {
		name string
		fn   func([]int64, Options)
	}{
		{"samplesort", Sort},
		{"mergesort", MergeSort},
		{"radix", RadixSort},
	} {
		buf := append([]int64(nil), xs...)
		s.fn(buf, opts)
		for i := range buf {
			if buf[i] != want[i] {
				t.Fatalf("%s on dedicated executor: mismatch at %d", s.name, i)
			}
		}
	}

	if got := Sum(xs, opts); got != Sum(xs, Options{}) {
		t.Fatalf("Sum differs between dedicated and shared executor")
	}

	g := RandomGraph(500, 4, false, 11)
	shared := BFS(g, 0, Options{Procs: 4})
	dedicated := BFS(g, 0, opts)
	for i := range shared {
		if shared[i] != dedicated[i] {
			t.Fatalf("BFS depth mismatch at node %d", i)
		}
	}

	if DefaultExecutor() == nil || DefaultExecutor().Procs() < 1 {
		t.Fatal("DefaultExecutor not usable")
	}
	// Select exercises count/pack on the dedicated pool.
	k := len(xs) / 3
	if got := Select(xs, k, opts); got != want[k] {
		t.Fatalf("Select(k=%d) = %d, want %d", k, got, want[k])
	}
	if !sort.SliceIsSorted(want, func(i, j int) bool { return want[i] < want[j] }) {
		t.Fatal("baseline unsorted")
	}
}

#!/usr/bin/env bash
# Doc-health gate (CI): every package must carry a package comment (a
# doc comment immediately above its package clause in at least one
# non-test file — internal packages keep theirs in doc.go), and the
# tree must be gofmt-clean. Run from anywhere; exits non-zero listing
# every violation rather than stopping at the first.
set -uo pipefail
cd "$(dirname "$0")/.."

fail=0

for dir in $(go list -f '{{.Dir}}' ./...); do
	ok=0
	for f in "$dir"/*.go; do
		case "$f" in
		*_test.go) continue ;;
		esac
		# A package comment is a // line directly above the package
		# clause that is not a build constraint.
		if awk 'prev ~ /^\/\// && prev !~ /^\/\/go:build/ && $0 ~ /^package / {found=1} {prev=$0} END {exit !found}' "$f"; then
			ok=1
			break
		fi
	done
	if [ "$ok" = 0 ]; then
		echo "doccheck: package at $dir has no package comment" >&2
		fail=1
	fi
done

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "doccheck: not gofmt-clean:" >&2
	echo "$unformatted" >&2
	fail=1
fi

if [ "$fail" = 0 ]; then
	echo "doccheck: all packages documented, tree gofmt-clean"
fi
exit "$fail"

#!/usr/bin/env bash
# Benchmark JSON emitter (CI + local): runs benchmark suites with
# -benchmem and renders each as a JSON array, one object per
# sub-benchmark with ns/op, B/op, allocs/op and any custom metrics.
# Three suites today:
#
#   BENCH_serve.json           the traffic-serving suite (client-count
#                              sweep across naive/batched/sharded modes
#                              plus the skewed-tenant migration pair)
#   BENCH_serve_openloop.json  the open-loop traffic suite (const and
#                              Poisson schedules, slo off/on; p99corr-ns
#                              vs p99uncorr-ns is the coordinated-
#                              omission gap, tracked per run)
#   BENCH_kernels.json         the kernel-registry variant suite (sample
#                              vs radix vs counting vs adaptive dispatch
#                              across narrow-16-bit and wide
#                              nearly-sorted keys)
#   BENCH_serve_cache.json     the result-cache suite (the same sort
#                              endpoint served cold / warm-hit / via
#                              delta append; warm must hold 0 allocs-
#                              per-op and hits-frac 1.0)
#   BENCH_wire.json            the wire front-door suite (open-loop
#                              traffic in-process vs loopback socket vs
#                              chunk-streamed, plus the codec round trip
#                              which must hold 0 allocs-per-op)
#
# Run from anywhere.
#
#   BENCH_OUT=path           serve output file (default BENCH_serve.json)
#   BENCH_OPENLOOP_OUT=path  open-loop output file (default BENCH_serve_openloop.json)
#   BENCH_KERNELS_OUT=path   kernel output file (default BENCH_kernels.json)
#   BENCH_CACHE_OUT=path     result-cache output file (default BENCH_serve_cache.json)
#   BENCH_WIRE_OUT=path      wire output file (default BENCH_wire.json)
#   BENCHTIME=spec           go -benchtime value (default 1000x; CI uses 1x)
set -euo pipefail
cd "$(dirname "$0")/.."

serve_out="${BENCH_OUT:-BENCH_serve.json}"
openloop_out="${BENCH_OPENLOOP_OUT:-BENCH_serve_openloop.json}"
kernels_out="${BENCH_KERNELS_OUT:-BENCH_kernels.json}"
cache_out="${BENCH_CACHE_OUT:-BENCH_serve_cache.json}"
wire_out="${BENCH_WIRE_OUT:-BENCH_wire.json}"
benchtime="${BENCHTIME:-1000x}"

# bench_to_json: parse `go test -bench` benchmem output on stdin into a
# JSON array on stdout. Fields after the iteration count come in
# "<value> <unit>" pairs; units keep their benchmark spelling with "/"
# rewritten ("ns/op" -> "ns-per-op").
bench_to_json() {
	awk '
	function flushrow() {
		if (name == "") return
		if (!first) printf ",\n"
		first = 0
		printf "  {\"name\": \"%s\", \"iterations\": %s", name, iters
		for (i = 1; i <= nm; i++) printf ", \"%s\": %s", mkey[i], mval[i]
		printf "}"
	}
	/^Benchmark/ {
		flushrow()
		name = $1; iters = $2; nm = 0
		for (i = 3; i < NF; i += 2) {
			unit = $(i + 1)
			gsub(/\//, "-per-", unit)
			nm++; mkey[nm] = unit; mval[nm] = $i
		}
	}
	BEGIN { first = 1; printf "[\n" }
	END { flushrow(); printf "\n]\n" }
	'
}

# run_suite <bench-regex> <package> <outfile>
run_suite() {
	local pattern="$1" pkg="$2" out="$3"
	go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem "$pkg" \
		| bench_to_json >"$out"
	echo "benchjson: $(grep -c '"name"' "$out") benchmarks -> $out (benchtime $benchtime)"
}

# The closed-loop pattern is anchored so it does not also match the
# open-loop suite, which gets its own file.
run_suite 'BenchmarkTrafficServe(Skew)?$' ./internal/serve "$serve_out"
run_suite 'BenchmarkTrafficServeOpenLoop$' ./internal/serve "$openloop_out"
run_suite 'BenchmarkSort(Narrow16|Wide64)' ./internal/kernel "$kernels_out"
run_suite 'BenchmarkTrafficServeCache$' ./internal/serve "$cache_out"
run_suite 'BenchmarkTrafficServeWire$' ./internal/wire "$wire_out"

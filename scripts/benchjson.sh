#!/usr/bin/env bash
# Serve-benchmark JSON emitter (CI + local): runs the traffic-serving
# benchmark suite (the client-count sweep across naive/batched/sharded
# modes plus the skewed-tenant migration pair) with -benchmem and
# renders the results as a JSON array, one object per sub-benchmark
# with ns/op, B/op, allocs/op and any custom metrics (reqs/batch,
# migrated, offhome-frac). Run from anywhere.
#
#   BENCH_OUT=path   output file (default BENCH_serve.json)
#   BENCHTIME=spec   go -benchtime value (default 1000x; CI uses 1x)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${BENCH_OUT:-BENCH_serve.json}"
benchtime="${BENCHTIME:-1000x}"

raw=$(go test -run '^$' -bench 'BenchmarkTrafficServe' -benchtime "$benchtime" \
	-benchmem ./internal/serve)

printf '%s\n' "$raw" | awk -v benchtime="$benchtime" '
function flushrow() {
	if (name == "") return
	if (!first) printf ",\n"
	first = 0
	printf "  {\"name\": \"%s\", \"iterations\": %s", name, iters
	for (i = 1; i <= nm; i++) printf ", \"%s\": %s", mkey[i], mval[i]
	printf "}"
}
/^Benchmark/ {
	flushrow()
	name = $1; iters = $2; nm = 0
	# Fields come in "<value> <unit>" pairs after the iteration count.
	for (i = 3; i < NF; i += 2) {
		unit = $(i + 1)
		gsub(/\//, "-per-", unit)
		nm++; mkey[nm] = unit; mval[nm] = $i
	}
}
BEGIN { first = 1; printf "[\n" }
END { flushrow(); printf "\n]\n" }
' >"$out"

echo "benchjson: $(grep -c '"name"' "$out") benchmarks -> $out (benchtime $benchtime)"

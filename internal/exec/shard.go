package exec

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
)

// Sharded is a group of executor shards: N independent worker pools,
// each with its own work-stealing deque set, park/wake machinery and
// occupancy gauges, so N contention domains replace one. Callers with
// an affinity key (a tenant name, a call site) route to a stable shard
// via For, keeping their scratch reuse and adaptive state shard-local;
// work only crosses shards when a balancer above this layer decides it
// should (the diffusive migration in internal/serve).
//
// Occupancy is where sharding pays observability dividends: the old
// process-wide gauge blurred every workload together — one busy
// kernel made the whole process read loaded, so admission control and
// adaptive shedding on an idle shard degraded for someone else's
// traffic. ShardOccupancy isolates the gauges per shard (an idle
// shard reads exactly 0 no matter how saturated its neighbors are),
// and Occupancy keeps the cheap global aggregate for callers that
// still want the process view.
type Sharded struct {
	shards []*Executor
}

// NewSharded creates a group of shards executor shards with
// procsPerShard workers each. shards <= 0 means DefaultShardCount();
// procsPerShard <= 0 divides GOMAXPROCS evenly (at least one worker
// per shard). Workers start lazily per shard, so idle shards cost
// nothing until their first task.
func NewSharded(shards, procsPerShard int) *Sharded {
	if shards <= 0 {
		shards = DefaultShardCount()
	}
	if procsPerShard <= 0 {
		procsPerShard = runtime.GOMAXPROCS(0) / shards
		if procsPerShard < 1 {
			procsPerShard = 1
		}
	}
	g := &Sharded{shards: make([]*Executor, shards)}
	for i := range g.shards {
		g.shards[i] = New(procsPerShard)
	}
	return g
}

// DefaultShardCount returns min(GOMAXPROCS/4, 8), at least 1 — a
// shard per four cores keeps each shard's pool wide enough for real
// fork/join parallelism, and eight shards is plenty of contention
// relief before the balancer's ring distance starts to matter. The
// REPRO_EXEC_SHARDS environment variable overrides it; invalid values
// are rejected loudly on stderr like REPRO_EXEC_PROCS.
func DefaultShardCount() int {
	if s := os.Getenv("REPRO_EXEC_SHARDS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr,
				"exec: ignoring invalid REPRO_EXEC_SHARDS=%q (want a positive integer); using the GOMAXPROCS default\n", s)
		} else {
			return v
		}
	}
	n := runtime.GOMAXPROCS(0) / 4
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Shards returns the number of shards in the group.
func (g *Sharded) Shards() int { return len(g.shards) }

// Shard returns shard i's executor.
func (g *Sharded) Shard(i int) *Executor { return g.shards[i] }

// For returns the shard an affinity key routes to. The mapping is a
// stable modulus, so equal keys always land on the same shard.
func (g *Sharded) For(key uint64) *Executor {
	return g.shards[key%uint64(len(g.shards))]
}

// ShardIndex returns the shard index an affinity key routes to.
func (g *Sharded) ShardIndex(key uint64) int {
	return int(key % uint64(len(g.shards)))
}

// ShardOccupancy returns shard i's instantaneous occupancy gauge —
// exactly 0 the moment its last running task finishes, regardless of
// the other shards' load.
func (g *Sharded) ShardOccupancy(i int) float64 { return g.shards[i].Occupancy() }

// Occupancy returns the worker-weighted aggregate occupancy across
// all shards — the process-wide view the single pool used to give,
// recovered from the per-shard gauges. Like them it is a cheap racy
// snapshot, and it reads exactly 0 once every shard has quiesced.
func (g *Sharded) Occupancy() float64 {
	var running, procs float64
	for _, e := range g.shards {
		running += e.Occupancy() * float64(e.Procs())
		procs += float64(e.Procs())
	}
	return running / procs
}

// Steals returns the cumulative successful steals summed across all
// shards' pools (steals never cross shards; only the balancer moves
// work between them).
func (g *Sharded) Steals() int64 {
	var n int64
	for _, e := range g.shards {
		n += e.Steals()
	}
	return n
}

// Close closes every shard's executor and waits for their workers to
// exit.
func (g *Sharded) Close() {
	for _, e := range g.shards {
		e.Close()
	}
}

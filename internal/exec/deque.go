package exec

import (
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// Deque is a mutex-protected double-ended work queue, the unified task
// container for both the executor's workers and the fork/join scheduler
// slots in internal/sched. The owner pushes and pops at the bottom
// (LIFO, for locality); thieves steal from the top (FIFO, taking the
// oldest — and for recursive decompositions the largest — work first).
//
// Storage is a slice with an explicit head index. A steal advances the
// head instead of reslicing the backing array away (which would
// permanently discard the capacity in front of the head, so steady
// steal/push traffic would reallocate indefinitely); when the dead
// prefix grows past half the slice it is compacted in place, keeping
// pushes amortized allocation-free at steady state.
//
// A lock-free Chase–Lev deque would shave constants, but the mutex
// version is correct by construction, contention is low when grain
// sizes are right (exactly what experiment E12 measures), and the
// engineering methodology prefers the simplest implementation that
// meets the performance model.
type Deque[T any] struct {
	mu    sync.Mutex
	items []T
	head  int // index of the oldest live item; entries before it are dead
}

// compactThreshold is the dead-prefix length below which StealTop does
// not bother compacting (it also skips compaction while the live half
// dominates, so compaction cost is amortized O(1) per steal).
const compactThreshold = 32

// PushBottom appends an item at the owner's end.
func (d *Deque[T]) PushBottom(t T) {
	d.mu.Lock()
	d.items = append(d.items, t)
	d.mu.Unlock()
}

// PopBottom removes the most recently pushed item (owner side).
func (d *Deque[T]) PopBottom() (T, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if d.head >= n {
		var zero T
		return zero, false
	}
	t := d.items[n-1]
	var zero T
	d.items[n-1] = zero
	d.items = d.items[:n-1]
	if d.head == len(d.items) {
		// Empty: rewind over the dead prefix so its capacity is reused.
		d.items = d.items[:0]
		d.head = 0
	}
	return t, true
}

// StealTop removes the oldest item (thief side).
func (d *Deque[T]) StealTop() (T, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.items) {
		var zero T
		return zero, false
	}
	t := d.items[d.head]
	var zero T
	d.items[d.head] = zero
	d.head++
	switch {
	case d.head == len(d.items):
		d.items = d.items[:0]
		d.head = 0
	case d.head >= compactThreshold && d.head*2 >= len(d.items):
		n := copy(d.items, d.items[d.head:])
		tail := d.items[n:]
		for i := range tail {
			tail[i] = zero
		}
		d.items = d.items[:n]
		d.head = 0
	}
	return t, true
}

// Len returns the number of live items (for tests and gauges).
func (d *Deque[T]) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items) - d.head
}

// StealScan probes the n deques returned by deque(i) from a random
// starting victim, skipping self, until one yields an item or all are
// empty — the victim-selection discipline shared by the executor's
// workers and the sched lanes. Each probe bumps attempts; a hit bumps
// steals.
func StealScan[T any](deque func(i int) *Deque[T], n, self int, rnd *rng.Rand, attempts, steals *atomic.Int64) (T, bool) {
	if n > 1 {
		start := rnd.Intn(n)
		for k := 0; k < n; k++ {
			v := (start + k) % n
			if v == self {
				continue
			}
			attempts.Add(1)
			if t, ok := deque(v).StealTop(); ok {
				steals.Add(1)
				return t, true
			}
		}
	}
	var zero T
	return zero, false
}

package exec

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
	"repro/internal/scratch"
)

// Task is a unit of work submitted to the pool.
type Task func()

// Executor is a persistent worker pool. The zero value is not usable;
// create one with New, or share the process-wide pool via Default.
type Executor struct {
	procs int
	// spawn selects the goroutine-per-task baseline used to measure
	// pooled dispatch against (the pre-runtime behavior of par).
	spawn bool

	startOnce sync.Once
	started   atomic.Bool // workers launched (Occupancy reads 0 before)
	workers   []*worker
	submitIdx atomic.Uint64 // round-robin target for external submits

	// pending counts tasks pushed but not yet popped; workers re-check
	// it against idle under mu before parking (Dekker pairing with
	// Submit) so wakeups are never lost.
	pending atomic.Int64
	idle    atomic.Int32
	// running counts pooled workers currently executing a task (not
	// merely awake and probing for one) — the numerator of Occupancy.
	running atomic.Int32

	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	// down mirrors closed outside the lock so Submit can reject tasks
	// on the fast path: enqueueing onto exited workers would lose the
	// task forever and corrupt the pending gauge.
	down atomic.Bool
	wg   sync.WaitGroup // live pooled workers, for Close

	// Observability gauges/counters.
	steals   atomic.Int64
	attempts atomic.Int64
	blocking atomic.Int64 // dedicated goroutines live via Go

	// Smoothed occupancy (OccupancyEWMA): the float64 bits of the
	// last folded value plus its UnixNano stamp. Reader-updated — the
	// hot task path never touches them.
	occEWMA  atomic.Uint64
	occStamp atomic.Int64

	// Recycled fork/join states (see runState). An explicit free list
	// rather than a sync.Pool: states are reclaimed on whatever worker
	// deposited the last token, and sync.Pool's per-P private slots
	// would hide those from the submitting goroutine (and drop them at
	// GC), leaving Run allocating about half the time.
	freeMu  sync.Mutex
	freeRun *runState
}

type worker struct {
	e   *Executor
	id  int
	dq  Deque[Task]
	rnd *rng.Rand
}

// New creates an executor with procs persistent workers (<= 0 means
// runtime.GOMAXPROCS(0)). Workers start lazily on first use.
func New(procs int) *Executor {
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	e := &Executor{procs: procs}
	e.cond = sync.NewCond(&e.mu)
	e.workers = make([]*worker, procs)
	for i := range e.workers {
		e.workers[i] = &worker{e: e, id: i, rnd: rng.New(uint64(0x5eed + i))}
	}
	return e
}

// NewSpawning returns an executor that spawns one fresh goroutine per
// task instead of using persistent workers — the spawn-per-call
// baseline. It exists so the pooled runtime can be measured against the
// old dispatch (cmd/parbench -executor=spawn, BenchmarkForSpawnVsPooled).
func NewSpawning() *Executor {
	e := New(0)
	e.spawn = true
	return e
}

var (
	defaultOnce sync.Once
	defaultExec *Executor
)

// Default returns the lazily created process-wide executor, sized to
// GOMAXPROCS at first use (override with the REPRO_EXEC_PROCS
// environment variable; see README.md). It must never be closed.
func Default() *Executor {
	defaultOnce.Do(func() {
		defaultExec = New(procsFromEnv())
	})
	return defaultExec
}

// procsFromEnv parses REPRO_EXEC_PROCS. Invalid values (non-numeric,
// zero, negative) are rejected loudly on stderr rather than silently
// ignored — a misspelled override that quietly falls back to
// GOMAXPROCS is exactly the kind of unobservable configuration drift
// the experiment harness exists to rule out.
func procsFromEnv() int {
	s := os.Getenv("REPRO_EXEC_PROCS")
	if s == "" {
		return 0
	}
	v, err := strconv.Atoi(s)
	if err != nil || v <= 0 {
		fmt.Fprintf(os.Stderr,
			"exec: ignoring invalid REPRO_EXEC_PROCS=%q (want a positive integer); using GOMAXPROCS\n", s)
		return 0
	}
	return v
}

// Procs returns the number of pooled workers.
func (e *Executor) Procs() int { return e.procs }

// Steals returns the cumulative number of successful cross-worker
// steals (observability; monotone over the executor's lifetime).
func (e *Executor) Steals() int64 { return e.steals.Load() }

// StealAttempts returns the cumulative number of steal probes.
func (e *Executor) StealAttempts() int64 { return e.attempts.Load() }

// BlockingGoroutines returns the number of dedicated goroutines
// currently live via Go (e.g. BSP virtual processors).
func (e *Executor) BlockingGoroutines() int64 { return e.blocking.Load() }

// Occupancy returns the fraction of pooled workers currently
// executing tasks: 0 is an idle (or not yet started, or spawning)
// pool, 1 is every worker busy. Workers that are awake but merely
// probing for work do not count, and neither do queued-but-unstarted
// tasks — fork/join helpers that lost the race to their Run's own
// caller linger on the deques and run as no-ops, so the queue length
// says nothing about load (conspicuously on few-core machines). It is
// the gauge the adaptive tuning runtime (internal/adapt) consults to
// shed parallelism under concurrent traffic — a cheap, racy snapshot,
// deliberately: the reader wants a trend, not a linearizable count.
func (e *Executor) Occupancy() float64 {
	if e.spawn || !e.started.Load() {
		return 0
	}
	return float64(e.running.Load()) / float64(e.procs)
}

// occTau is the time constant of OccupancyEWMA: load older than a few
// tau has essentially no weight. A couple of milliseconds spans many
// request-sized tasks (so momentary gaps between batches do not read
// as idleness) while still tracking a real load shift quickly.
const occTau = float64(2 * time.Millisecond)

// occFloor is the quiescence floor: a folded value below it reads as
// exactly 0, so a parked pool's EWMA is a clean zero predicate instead
// of an asymptotically decaying residue.
const occFloor = 1e-3

// OccupancyEWMA returns an exponentially smoothed Occupancy with time
// constant occTau. It is updated by its readers — each call folds the
// instantaneous gauge in, weighted by the time since the previous
// fold — so the task hot path pays nothing for it. Like Occupancy it
// is a racy gauge: concurrent folds may each land, which only jitters
// the smoothing, never the steady state. A pool that has been parked
// for several tau reads exactly 0 (see occFloor). This is the signal
// the diffusive shard balancer (internal/serve) compares across
// shards: smoothing gives it hysteresis, so one idle probe between
// two batches does not look like an idle shard.
func (e *Executor) OccupancyEWMA() float64 {
	cur := e.Occupancy()
	now := time.Now().UnixNano()
	last := e.occStamp.Swap(now)
	var w float64
	if last > 0 && now > last {
		w = math.Exp(-float64(now-last) / occTau)
	}
	next := w*math.Float64frombits(e.occEWMA.Load()) + (1-w)*cur
	if next < occFloor {
		next = 0
	}
	e.occEWMA.Store(math.Float64bits(next))
	return next
}

// start launches the persistent workers (idempotent).
func (e *Executor) start() {
	e.startOnce.Do(func() {
		e.started.Store(true)
		e.wg.Add(len(e.workers))
		for _, w := range e.workers {
			go func(w *worker) {
				defer e.wg.Done()
				w.loop()
			}(w)
		}
	})
}

// Close stops the persistent workers and waits for them to exit.
// Queued tasks that have not started are dropped. Closing the Default
// executor is a programming error; Close exists for dedicated pools in
// tests and short-lived tools.
func (e *Executor) Close() {
	e.down.Store(true)
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}

// Submit enqueues t for asynchronous execution on the pool (or spawns
// a goroutine in spawn mode). Submitting to a closed executor panics:
// the workers have exited, so the task would sit on a dead deque
// forever while the pending gauge silently corrupts. Tasks must not
// block indefinitely on other queued tasks starting — pooled workers
// are a fixed resource; use Go for tasks that block (e.g. on
// barriers).
func (e *Executor) Submit(t Task) {
	if e.down.Load() {
		panic("exec: Submit on closed Executor")
	}
	if e.spawn {
		go t()
		return
	}
	e.start()
	w := e.workers[e.submitIdx.Add(1)%uint64(len(e.workers))]
	w.dq.PushBottom(t)
	e.pending.Add(1)
	// Re-check after the enqueue: a Close that raced past the gate
	// above still panics here instead of silently stranding the task
	// on an exited worker's deque. (A Close that begins strictly after
	// this check drops the queued task under Close's documented
	// semantics, like any other not-yet-started task.)
	if e.down.Load() {
		panic("exec: Submit on closed Executor")
	}
	if e.idle.Load() > 0 {
		e.mu.Lock()
		e.cond.Signal()
		e.mu.Unlock()
	}
}

// Go runs fn on a dedicated (non-pooled) goroutine. It exists for work
// that blocks on coordination with its siblings — the BSP simulator's
// virtual processors park on a superstep barrier, so running them on
// the fixed-size pool would deadlock; routing them through the
// executor keeps them observable (BlockingGoroutines) and gives
// long-lived servers one place to account for all parallel activity.
func (e *Executor) Go(fn func()) {
	e.blocking.Add(1)
	go func() {
		defer e.blocking.Add(-1)
		fn()
	}()
}

func (w *worker) loop() {
	e := w.e
	for {
		t, ok := w.dq.PopBottom()
		if !ok {
			t, ok = w.stealAny()
		}
		if ok {
			e.pending.Add(-1)
			e.running.Add(1)
			t()
			e.running.Add(-1)
			continue
		}
		// Nothing runnable: park. The idle increment must precede the
		// pending re-check (and Submit's pending increment precedes its
		// idle check), so at least one side always observes the other.
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return
		}
		e.idle.Add(1)
		if e.pending.Load() > 0 {
			e.idle.Add(-1)
			e.mu.Unlock()
			continue
		}
		e.cond.Wait()
		e.idle.Add(-1)
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return
		}
	}
}

// stealAny probes the other workers' deques from a random start.
func (w *worker) stealAny() (Task, bool) {
	e := w.e
	return StealScan(func(i int) *Deque[Task] { return &e.workers[i].dq },
		len(e.workers), w.id, w.rnd, &e.attempts, &e.steals)
}

// runState is the join state of one Run: a slot-claim cursor plus a
// count of participants actively inside the slot loop. The caller
// joins by waiting for active to drain after exhausting the cursor
// itself, so only started helpers are ever waited on.
//
// runStates are recycled through runPool so the steady-state fork/join
// path allocates nothing. Recycling is only safe once every submitted
// helper task has run (even trivially): a helper still sitting on a
// deque holds st.task and would otherwise participate in whatever Run
// the recycled state is reused for. Quiescence is detected with
// reclaim tokens: each of the submitted helpers and the caller's own
// participate deposits one token on exit, and the joiner deposits one
// more after the join — whoever deposits the last token (and only that
// party) recycles the state, so a state is never reused while any
// goroutine still holds a reference.
type runState struct {
	slot func(w int)
	// slotA/sp select the arena flavor (RunArena): each participant
	// acquires a worker-local scratch arena for the slots it runs.
	slotA func(w int, a *scratch.Arena)
	sp    *scratch.Pool
	p     int64

	next atomic.Int64 // next unclaimed slot

	mu     sync.Mutex
	cond   sync.Cond
	active int // participants inside the slot loop

	task      Task         // st.participate as a Task, built once per runState
	submitted int64        // helpers submitted for the current Run
	tokens    atomic.Int64 // deposited reclaim tokens; full at submitted+2

	e        *Executor // home executor, for the free list
	freeNext *runState
}

// getRunState pops a recycled fork/join state or builds a fresh one.
// The free list's high-water mark is the executor's peak number of
// concurrent (including nested) Runs, so it stays small.
func (e *Executor) getRunState() *runState {
	e.freeMu.Lock()
	st := e.freeRun
	if st != nil {
		e.freeRun = st.freeNext
		st.freeNext = nil
	}
	e.freeMu.Unlock()
	if st == nil {
		st = &runState{e: e}
		st.cond.L = &st.mu
		st.task = st.participate
	}
	return st
}

// reclaim resets a fully quiesced runState and returns it to its
// executor's free list.
func (st *runState) reclaim() {
	st.slot = nil
	st.slotA = nil
	st.sp = nil
	e := st.e
	e.freeMu.Lock()
	st.freeNext = e.freeRun
	e.freeRun = st
	e.freeMu.Unlock()
}

// Run executes slot(w) for every w in [0, p), using the calling
// goroutine plus up to min(p-1, Procs) pooled helpers, and returns when
// every slot has completed. Slots must not block waiting for each
// other's *start* (they may freely synchronize on each other's
// side effects going forward, e.g. claim work from a shared cursor):
// when the pool is busy, a single participant may run all p slots
// sequentially. Run may be called concurrently and from inside slots
// of other Runs (nested parallelism); see the package comment for why
// this cannot deadlock.
func (e *Executor) Run(p int, slot func(w int)) {
	if p <= 0 {
		return
	}
	if p == 1 {
		slot(0)
		return
	}
	st := e.getRunState()
	st.slot = slot
	e.runCommon(p, st)
}

// RunArena is Run with a worker-local scratch arena handed to every
// slot. Each participant (pooled helper or the caller) acquires one
// arena from sp (nil means scratch.Default()) and releases it after
// its last slot, so slot bodies can Make temporaries with no
// synchronization and no per-call allocation. Arena buffers are
// slot-scoped: they must not outlive the participant — anything that
// must survive the Run belongs to a caller-side arena instead (the
// generation stamps turn most violations into panics).
func (e *Executor) RunArena(p int, sp *scratch.Pool, slot func(w int, a *scratch.Arena)) {
	if p <= 0 {
		return
	}
	if p == 1 {
		a := scratch.AcquireArena(sp)
		defer a.Release()
		slot(0, a)
		return
	}
	st := e.getRunState()
	st.slotA = slot
	st.sp = sp
	e.runCommon(p, st)
}

func (e *Executor) runCommon(p int, st *runState) {
	st.p = int64(p)
	st.next.Store(0)
	st.tokens.Store(0)
	helpers := p - 1
	if !e.spawn && helpers > e.procs {
		helpers = e.procs
	}
	st.submitted = int64(helpers)
	for i := 0; i < helpers; i++ {
		e.Submit(st.task)
	}
	st.participate()
	// The caller exhausted the slot cursor above; wait for helpers that
	// started before exhaustion to finish their slots.
	st.mu.Lock()
	for st.active > 0 {
		st.cond.Wait()
	}
	st.mu.Unlock()
	// Deposit the joiner's token. If helpers are still queued (they
	// arrived after the slots were exhausted, or have not been popped
	// yet), the last of them recycles the state instead.
	st.deposit()
}

// deposit adds one reclaim token; the depositor of the last token
// recycles the state. Tokens are deposited strictly after their owner
// is done touching st, so a full count proves quiescence. need must be
// read before the increment: a non-final deposit releases our claim on
// st, after which the state may already belong to another Run.
func (st *runState) deposit() {
	need := st.submitted + 2
	if st.tokens.Add(1) == need {
		st.reclaim()
	}
}

// participate claims and runs slots until none remain. Late arrivals
// (all slots already claimed) return without registering, so the join
// never waits on a helper that has not started.
func (st *runState) participate() {
	defer st.deposit()
	if st.next.Load() >= st.p {
		return
	}
	st.mu.Lock()
	st.active++
	st.mu.Unlock()
	defer func() {
		st.mu.Lock()
		st.active--
		if st.active == 0 {
			st.cond.Broadcast()
		}
		st.mu.Unlock()
	}()
	if st.slotA != nil {
		a := scratch.AcquireArena(st.sp)
		defer a.Release()
		for {
			w := st.next.Add(1) - 1
			if w >= st.p {
				return
			}
			st.slotA(int(w), a)
		}
	}
	for {
		w := st.next.Add(1) - 1
		if w >= st.p {
			return
		}
		st.slot(int(w))
	}
}

package exec

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunCoversAllSlots(t *testing.T) {
	e := New(4)
	defer e.Close()
	for _, p := range []int{1, 2, 3, 4, 7, 16, 100} {
		hits := make([]atomic.Int32, p)
		e.Run(p, func(w int) { hits[w].Add(1) })
		for w := range hits {
			if got := hits[w].Load(); got != 1 {
				t.Fatalf("p=%d: slot %d ran %d times, want 1", p, w, got)
			}
		}
	}
}

func TestRunZeroAndNegative(t *testing.T) {
	e := New(2)
	defer e.Close()
	ran := false
	e.Run(0, func(int) { ran = true })
	e.Run(-3, func(int) { ran = true })
	if ran {
		t.Fatal("slot ran for p <= 0")
	}
}

// TestRunMoreSlotsThanWorkers checks graceful degradation: a 1-worker
// pool must still complete a 64-slot Run via caller participation.
func TestRunMoreSlotsThanWorkers(t *testing.T) {
	e := New(1)
	defer e.Close()
	var n atomic.Int64
	e.Run(64, func(int) { n.Add(1) })
	if n.Load() != 64 {
		t.Fatalf("ran %d slots, want 64", n.Load())
	}
}

// TestNestedRun drives Run-inside-Run deep enough to saturate the pool
// many times over; caller participation must prevent deadlock.
func TestNestedRun(t *testing.T) {
	e := New(2)
	defer e.Close()
	var leaves atomic.Int64
	var rec func(depth int)
	rec = func(depth int) {
		if depth == 0 {
			leaves.Add(1)
			return
		}
		e.Run(4, func(int) { rec(depth - 1) })
	}
	rec(5) // 4^5 = 1024 leaves on a 2-worker pool
	if got := leaves.Load(); got != 1024 {
		t.Fatalf("leaves = %d, want 1024", got)
	}
}

// TestConcurrentRuns issues Runs from many goroutines at once, the
// long-lived-server traffic shape.
func TestConcurrentRuns(t *testing.T) {
	e := New(4)
	defer e.Close()
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				e.Run(8, func(int) { total.Add(1) })
			}
		}()
	}
	wg.Wait()
	if want := int64(16 * 50 * 8); total.Load() != want {
		t.Fatalf("total = %d, want %d", total.Load(), want)
	}
}

func TestSubmitExecutes(t *testing.T) {
	e := New(2)
	defer e.Close()
	var wg sync.WaitGroup
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		wg.Add(1)
		e.Submit(func() {
			n.Add(1)
			wg.Done()
		})
	}
	wg.Wait()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
}

func TestSpawningExecutor(t *testing.T) {
	e := NewSpawning()
	var n atomic.Int64
	e.Run(32, func(int) { n.Add(1) })
	if n.Load() != 32 {
		t.Fatalf("ran %d slots, want 32", n.Load())
	}
}

func TestGoTracksBlocking(t *testing.T) {
	e := New(1)
	defer e.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	e.Go(func() {
		close(started)
		<-release
	})
	<-started
	if e.BlockingGoroutines() != 1 {
		t.Fatalf("blocking = %d, want 1", e.BlockingGoroutines())
	}
	close(release)
	for e.BlockingGoroutines() != 0 {
	}
}

func TestCloseStopsWorkers(t *testing.T) {
	e := New(4)
	var n atomic.Int64
	e.Run(16, func(int) { n.Add(1) })
	e.Close() // must return: workers observe closed and exit
	if n.Load() != 16 {
		t.Fatalf("ran %d slots, want 16", n.Load())
	}
}

func TestDefaultIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default returned distinct executors")
	}
	if Default().Procs() < 1 {
		t.Fatal("Default has no workers")
	}
}

func TestDequeOrder(t *testing.T) {
	var d Deque[int]
	d.PushBottom(1)
	d.PushBottom(2)
	d.PushBottom(3)
	if v, ok := d.StealTop(); !ok || v != 1 {
		t.Fatalf("StealTop = %d,%v; want 1", v, ok)
	}
	if v, ok := d.PopBottom(); !ok || v != 3 {
		t.Fatalf("PopBottom = %d,%v; want 3", v, ok)
	}
	if v, ok := d.PopBottom(); !ok || v != 2 {
		t.Fatalf("PopBottom = %d,%v; want 2", v, ok)
	}
	if _, ok := d.PopBottom(); ok {
		t.Fatal("deque should be empty")
	}
	if _, ok := d.StealTop(); ok {
		t.Fatal("deque should be empty")
	}
}

package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/racecheck"
	"repro/internal/scratch"
)

// Submit after Close must fail loudly: the workers have exited, so the
// task would be lost forever while the pending gauge corrupts.
func TestSubmitAfterClosePanics(t *testing.T) {
	e := New(2)
	e.Run(4, func(int) {}) // start the workers
	e.Close()
	defer func() {
		if recover() == nil {
			t.Fatalf("Submit after Close did not panic")
		}
	}()
	e.Submit(func() {})
}

func TestRunAfterClosePanics(t *testing.T) {
	e := New(2)
	e.Run(4, func(int) {})
	e.Close()
	defer func() {
		if recover() == nil {
			t.Fatalf("Run after Close did not panic")
		}
	}()
	e.Run(4, func(int) {})
}

// Steady steal/push traffic must not grow the heap: StealTop used to
// advance the slice head (d.items = d.items[1:]), permanently
// discarding the capacity in front of it so every subsequent push
// reallocated.
func TestDequeSteadyStateAllocs(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("race instrumentation allocates")
	}
	var d Deque[int]
	cycle := func() {
		for i := 0; i < 256; i++ {
			d.PushBottom(i)
		}
		for {
			if _, ok := d.StealTop(); !ok {
				break
			}
		}
	}
	cycle() // warm: grow the backing array once
	if n := testing.AllocsPerRun(100, cycle); n > 0 {
		t.Errorf("steady steal/push traffic allocates %.1f times per 256-task cycle, want 0", n)
	}
}

// Mixed owner/thief traffic with interleaved pops exercises the
// compaction path.
func TestDequeCompaction(t *testing.T) {
	var d Deque[int]
	next := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 100; i++ {
			d.PushBottom(next)
			next++
		}
		for i := 0; i < 60; i++ {
			if _, ok := d.StealTop(); !ok {
				t.Fatalf("round %d: deque empty during steals", round)
			}
		}
		for i := 0; i < 40; i++ {
			if _, ok := d.PopBottom(); !ok {
				t.Fatalf("round %d: deque empty during pops", round)
			}
		}
		if got := d.Len(); got != 0 {
			t.Fatalf("round %d: Len = %d, want 0", round, got)
		}
	}
}

func TestDequeStealOrderSurvivesCompaction(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 500; i++ {
		d.PushBottom(i)
	}
	for i := 0; i < 500; i++ {
		v, ok := d.StealTop()
		if !ok || v != i {
			t.Fatalf("steal %d: got %d/%v, want %d/true", i, v, ok, i)
		}
	}
}

// The pooled fork/join state must never leak across Runs: hammer
// nested, concurrent Runs (so helpers frequently arrive late and
// reclamation falls to stragglers) and check every slot executes
// exactly once. Run with -race this also proves recycling is sound.
func TestRunStateRecyclingStress(t *testing.T) {
	e := New(4)
	defer e.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 300; iter++ {
				var outer atomic.Int64
				e.Run(5, func(w int) {
					var inner atomic.Int64
					e.Run(3, func(int) { inner.Add(1) })
					if inner.Load() != 3 {
						t.Errorf("inner run: %d slots, want 3", inner.Load())
					}
					outer.Add(1)
				})
				if outer.Load() != 5 {
					t.Errorf("outer run: %d slots, want 5", outer.Load())
				}
			}
		}()
	}
	wg.Wait()
}

// RunArena hands every participant its own arena; buffers made in one
// slot must not alias buffers concurrently live in another.
func TestRunArena(t *testing.T) {
	e := New(4)
	defer e.Close()
	sp := scratch.New()
	var bad atomic.Int64
	for iter := 0; iter < 50; iter++ {
		e.RunArena(8, sp, func(w int, a *scratch.Arena) {
			buf := scratch.Make[int64](a, 1024)
			for i := range buf {
				buf[i] = int64(w)
			}
			for _, v := range buf {
				if v != int64(w) {
					bad.Add(1)
					return
				}
			}
		})
	}
	if bad.Load() != 0 {
		t.Fatalf("%d slots observed another slot's writes in their arena buffer", bad.Load())
	}
	if st := sp.Stats(); st.BytesLive != 0 {
		t.Errorf("BytesLive = %d after all arenas released, want 0", st.BytesLive)
	}
}

func TestRunArenaSingleSlot(t *testing.T) {
	e := New(2)
	defer e.Close()
	ran := false
	e.RunArena(1, nil, func(w int, a *scratch.Arena) {
		if a == nil {
			t.Error("nil arena")
		}
		ran = w == 0
	})
	if !ran {
		t.Fatalf("slot 0 did not run")
	}
}

// Invalid REPRO_EXEC_PROCS values must be rejected (falling back to
// GOMAXPROCS) rather than silently half-parsed.
func TestProcsFromEnv(t *testing.T) {
	cases := []struct {
		val  string
		want int
	}{
		{"", 0}, {"4", 4}, {"1", 1},
		{"0", 0}, {"-3", 0}, {"8x", 0}, {"eight", 0}, {" 8", 0},
	}
	for _, c := range cases {
		t.Setenv("REPRO_EXEC_PROCS", c.val)
		if got := procsFromEnv(); got != c.want {
			t.Errorf("REPRO_EXEC_PROCS=%q: got %d, want %d", c.val, got, c.want)
		}
	}
}

// Steady-state Run must not allocate: the runState is pooled and the
// helper task is a prebuilt method value. (The caller's slot closure
// is the caller's own; here it captures nothing.) A Run's state is
// recycled only once its last straggling helper has run, which may be
// shortly *after* Run returns — so between measured runs the test
// waits for the state to reach the free list, making reuse (and the
// zero-allocation assertion) deterministic.
func TestRunSteadyStateAllocs(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("race instrumentation allocates")
	}
	e := New(4)
	defer e.Close()
	sink := make([]int64, 4*64) // padded per-slot accumulators
	body := func(w int) {
		for i := 0; i < 2000; i++ {
			sink[w*64]++
		}
	}
	waitRecycled := func() {
		for {
			e.freeMu.Lock()
			ok := e.freeRun != nil
			e.freeMu.Unlock()
			if ok {
				return
			}
			runtime.Gosched()
		}
	}
	e.Run(4, body)
	waitRecycled()
	if n := testing.AllocsPerRun(100, func() {
		e.Run(4, body)
		waitRecycled()
	}); n > 0 {
		t.Errorf("steady-state Run allocates %.2f times/run, want 0", n)
	}
}

package exec

import (
	"sync"
	"testing"
	"time"
)

func TestOccupancyLifecycle(t *testing.T) {
	e := New(4)
	defer e.Close()

	if got := e.Occupancy(); got != 0 {
		t.Fatalf("unstarted pool occupancy = %v, want 0", got)
	}

	// Saturate: four tasks hold every worker until released.
	release := make(chan struct{})
	var running sync.WaitGroup
	running.Add(4)
	for i := 0; i < 4; i++ {
		e.Submit(func() {
			running.Done()
			<-release
		})
	}
	running.Wait()
	if got := e.Occupancy(); got < 1 {
		t.Errorf("saturated pool occupancy = %v, want >= 1", got)
	}

	// Queued-but-unstarted tasks are not load: the gauge must not
	// exceed saturation (stale fork/join helpers would otherwise poison
	// it on few-core machines).
	e.Submit(func() {})
	e.Submit(func() {})
	if got := e.Occupancy(); got != 1 {
		t.Errorf("backlogged pool occupancy = %v, want 1", got)
	}

	close(release)
	// Workers drain and park; the gauge must fall back to 0.
	deadline := time.Now().Add(5 * time.Second)
	for e.Occupancy() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("occupancy stuck at %v after drain", e.Occupancy())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestOccupancySpawnModeIsZero(t *testing.T) {
	e := NewSpawning()
	done := make(chan struct{})
	e.Submit(func() { close(done) })
	<-done
	if got := e.Occupancy(); got != 0 {
		t.Errorf("spawn-mode occupancy = %v, want 0", got)
	}
}

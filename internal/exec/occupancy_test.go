package exec

import (
	"sync"
	"testing"
	"time"
)

func TestOccupancyLifecycle(t *testing.T) {
	e := New(4)
	defer e.Close()

	if got := e.Occupancy(); got != 0 {
		t.Fatalf("unstarted pool occupancy = %v, want 0", got)
	}

	// Saturate: four tasks hold every worker until released.
	release := make(chan struct{})
	var running sync.WaitGroup
	running.Add(4)
	for i := 0; i < 4; i++ {
		e.Submit(func() {
			running.Done()
			<-release
		})
	}
	running.Wait()
	if got := e.Occupancy(); got < 1 {
		t.Errorf("saturated pool occupancy = %v, want >= 1", got)
	}

	// Queued-but-unstarted tasks are not load: the gauge must not
	// exceed saturation (stale fork/join helpers would otherwise poison
	// it on few-core machines).
	e.Submit(func() {})
	e.Submit(func() {})
	if got := e.Occupancy(); got != 1 {
		t.Errorf("backlogged pool occupancy = %v, want 1", got)
	}

	close(release)
	// Workers drain and park; the gauge must fall back to 0.
	deadline := time.Now().Add(5 * time.Second)
	for e.Occupancy() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("occupancy stuck at %v after drain", e.Occupancy())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShardedOccupancyLifecycle pins the shard-granularity contract:
// each shard's gauge reflects only its own pool — an idle shard reads
// exactly 0 while its neighbor is saturated (the single process-wide
// gauge could never say which workload was the load) — and the
// aggregate view is the worker-weighted mean. After quiescence every
// gauge must read exactly 0 and stay there.
func TestShardedOccupancyLifecycle(t *testing.T) {
	g := NewSharded(2, 2)
	defer g.Close()

	if got := g.Occupancy(); got != 0 {
		t.Fatalf("unstarted sharded occupancy = %v, want 0", got)
	}

	// Saturate shard 0 only.
	release := make(chan struct{})
	var running sync.WaitGroup
	running.Add(2)
	for i := 0; i < 2; i++ {
		g.Shard(0).Submit(func() {
			running.Done()
			<-release
		})
	}
	running.Wait()

	if got := g.ShardOccupancy(0); got != 1 {
		t.Errorf("saturated shard occupancy = %v, want 1", got)
	}
	if got := g.ShardOccupancy(1); got != 0 {
		t.Errorf("idle shard occupancy = %v, want exactly 0 while neighbor is saturated", got)
	}
	if got := g.Occupancy(); got != 0.5 {
		t.Errorf("aggregate occupancy = %v, want 0.5", got)
	}

	close(release)
	// Drain: every gauge must fall back to exactly 0 once the workers
	// park, and must not wobble afterwards.
	deadline := time.Now().Add(5 * time.Second)
	for g.Occupancy() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("aggregate occupancy stuck at %v after drain", g.Occupancy())
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		if got := g.ShardOccupancy(0); got != 0 {
			t.Fatalf("quiesced shard 0 occupancy = %v, want exactly 0", got)
		}
		if got := g.ShardOccupancy(1); got != 0 {
			t.Fatalf("quiesced shard 1 occupancy = %v, want exactly 0", got)
		}
		if got := g.Occupancy(); got != 0 {
			t.Fatalf("quiesced aggregate occupancy = %v, want exactly 0", got)
		}
	}
}

// TestOccupancyEWMALifecycle pins the smoothed gauge the diffusive
// balancer reads: it tracks saturation immediately on first
// observation, holds while the load persists, and reads exactly 0
// (not an asymptotic residue) once the pool has been parked for a few
// time constants.
func TestOccupancyEWMALifecycle(t *testing.T) {
	e := New(2)
	defer e.Close()

	if got := e.OccupancyEWMA(); got != 0 {
		t.Fatalf("unstarted pool EWMA = %v, want 0", got)
	}

	release := make(chan struct{})
	var running sync.WaitGroup
	running.Add(2)
	e.Submit(func() { running.Done(); <-release })
	e.Submit(func() { running.Done(); <-release })
	running.Wait()

	// The stamp was set by the pre-saturation read above, so this
	// fold mixes old 0 with current 1; within a few tau it must be
	// dominated by the saturated gauge.
	time.Sleep(20 * time.Millisecond)
	if got := e.OccupancyEWMA(); got < 0.9 {
		t.Errorf("saturated pool EWMA = %v, want >= 0.9", got)
	}

	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for e.Occupancy() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("occupancy stuck at %v after drain", e.Occupancy())
		}
		time.Sleep(time.Millisecond)
	}
	// Quiescence floor: after many tau of parked workers the EWMA
	// must read exactly 0, so "EWMA == 0" is a usable idle predicate.
	time.Sleep(50 * time.Millisecond)
	if got := e.OccupancyEWMA(); got != 0 {
		t.Errorf("parked pool EWMA = %v, want exactly 0 after quiescence", got)
	}
}

func TestOccupancySpawnModeIsZero(t *testing.T) {
	e := NewSpawning()
	done := make(chan struct{})
	e.Submit(func() { close(done) })
	<-done
	if got := e.Occupancy(); got != 0 {
		t.Errorf("spawn-mode occupancy = %v, want 0", got)
	}
}

// Package exec is the process-wide persistent executor runtime that
// every parallel layer of the repository dispatches onto: the par loop
// schedules, the sched fork/join scheduler, the sorting/graph/matrix
// kernels (through par), and the BSP simulator's virtual processors.
//
// Motivation. The paper's methodology separates the abstract algorithm
// from the schedule mapping its work to processors — but a schedule
// that spawns fresh goroutines on every parallel call pays a hidden,
// unseparable cost: goroutine creation, stack setup and scheduler
// hand-off on every loop, which dominates at small problem sizes and
// under heavy concurrent traffic. exec amortizes that cost once per
// process: a lazily started pool of persistent workers, each with its
// own work-stealing deque, onto which all loop-level and task-level
// parallelism is dispatched (BenchmarkForSpawnVsPooled in internal/par
// quantifies the delta).
//
// The fork/join primitive is Run(p, slot): execute slot(w) for every
// slot w in [0, p). Its two structural rules make the runtime safe for
// nested parallelism on a fixed-size pool:
//
//   - The caller participates. Run submits at most min(p-1, Procs)
//     helper tasks and then claims slots itself, so every Run completes
//     even if no pooled worker ever becomes free — a Run issued from
//     inside a pooled worker (nested parallelism) degrades gracefully
//     toward inline execution instead of deadlocking or oversubscribing.
//   - Joins wait only on started helpers. A helper that arrives after
//     all slots are claimed returns immediately; the join therefore
//     only ever waits on participants that are actively running slots,
//     and the wait-for graph follows the nesting tree (no cycles).
//
// Workers park on a condition variable when idle, so a persistent pool
// in a long-lived server costs nothing between requests. The fork/join
// state itself is recycled through a per-executor free list (and each
// worker's deque retains its capacity across steals), so the
// steady-state Run path allocates nothing; RunArena additionally hands
// every participant a worker-local scratch arena (internal/scratch)
// for slot-scoped temporaries.
//
// Layering: exec is the bottom of the runtime stack (its only
// internal dependency is scratch, for RunArena's slot arenas).
// Everything that runs in parallel dispatches onto it: par
// schedules and fork/joins, sched's work-stealing tasks, bsp's
// virtual processors, pipeline stage goroutines, and serve's
// batch dispatcher. Its Occupancy gauge drives load shedding in
// adapt and admission control in serve.
package exec

package exec

import (
	"runtime"
	"sync"
	"testing"
)

// TestShardedConstruction pins shard-count and per-shard-procs
// defaulting: explicit values are honored, zeros fall back to
// DefaultShardCount and an even GOMAXPROCS split with a one-worker
// floor.
func TestShardedConstruction(t *testing.T) {
	g := NewSharded(3, 2)
	defer g.Close()
	if g.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", g.Shards())
	}
	for i := 0; i < 3; i++ {
		if p := g.Shard(i).Procs(); p != 2 {
			t.Fatalf("shard %d procs = %d, want 2", i, p)
		}
	}

	d := NewSharded(0, 0)
	defer d.Close()
	if d.Shards() != DefaultShardCount() {
		t.Fatalf("default shards = %d, want %d", d.Shards(), DefaultShardCount())
	}
	want := runtime.GOMAXPROCS(0) / d.Shards()
	if want < 1 {
		want = 1
	}
	if p := d.Shard(0).Procs(); p != want {
		t.Fatalf("default per-shard procs = %d, want %d", p, want)
	}
}

// TestDefaultShardCount pins the min(GOMAXPROCS/4, 8) formula with
// its floor of 1, and the REPRO_EXEC_SHARDS override (invalid values
// fall back rather than crash or silently zero).
func TestDefaultShardCount(t *testing.T) {
	base := runtime.GOMAXPROCS(0) / 4
	if base > 8 {
		base = 8
	}
	if base < 1 {
		base = 1
	}
	if got := DefaultShardCount(); got != base {
		t.Fatalf("DefaultShardCount() = %d, want %d", got, base)
	}
	t.Setenv("REPRO_EXEC_SHARDS", "5")
	if got := DefaultShardCount(); got != 5 {
		t.Fatalf("override DefaultShardCount() = %d, want 5", got)
	}
	for _, bad := range []string{"0", "-2", "many"} {
		t.Setenv("REPRO_EXEC_SHARDS", bad)
		if got := DefaultShardCount(); got != base {
			t.Fatalf("invalid override %q gave %d, want fallback %d", bad, got, base)
		}
	}
}

// TestShardedAffinity pins the routing contract: equal keys always
// land on the same shard, and ShardIndex agrees with For.
func TestShardedAffinity(t *testing.T) {
	g := NewSharded(4, 1)
	defer g.Close()
	for key := uint64(0); key < 100; key++ {
		i := g.ShardIndex(key)
		if i < 0 || i >= 4 {
			t.Fatalf("ShardIndex(%d) = %d out of range", key, i)
		}
		if g.For(key) != g.Shard(i) {
			t.Fatalf("For(%d) disagrees with ShardIndex", key)
		}
		if g.ShardIndex(key) != i {
			t.Fatalf("ShardIndex(%d) unstable", key)
		}
	}
}

// TestShardedIsolation checks shards execute independently: tasks
// submitted to each shard all run, and one shard's pool never
// executes another's tasks (each task records the shard it was
// submitted to and the one whose worker ran it).
func TestShardedIsolation(t *testing.T) {
	g := NewSharded(2, 2)
	defer g.Close()
	const per = 200
	var wg sync.WaitGroup
	counts := make([]int64, 2)
	var mu sync.Mutex
	for s := 0; s < 2; s++ {
		for i := 0; i < per; i++ {
			s := s
			wg.Add(1)
			g.Shard(s).Submit(func() {
				defer wg.Done()
				mu.Lock()
				counts[s]++
				mu.Unlock()
			})
		}
	}
	wg.Wait()
	if counts[0] != per || counts[1] != per {
		t.Fatalf("per-shard completions = %v, want [%d %d]", counts, per, per)
	}
	// Steals never cross shards: each shard's counter only reflects
	// its own deque set (2 workers each), so the group total equals
	// the sum — trivially true, but pins that the API sums correctly.
	if g.Steals() != g.Shard(0).Steals()+g.Shard(1).Steals() {
		t.Fatalf("group steals %d != shard sum", g.Steals())
	}
}

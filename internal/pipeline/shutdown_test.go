package pipeline

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/par"
	"repro/internal/scratch"
)

// These tests pin the pipeline's lifecycle contract: cancellation and
// sink errors drain every queue, return every scratch byte, and never
// deadlock a backpressured producer; independent pipelines share one
// executor safely. The CI race step runs them under -race.

// waitRun runs p.Run on a goroutine and fails the test if it does not
// return within the deadline — the anti-deadlock harness.
func waitRun(t *testing.T, p *Pipeline, d time.Duration) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- p.Run() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		t.Fatal("pipeline did not finish: deadlock?")
		return nil
	}
}

// TestConcurrentPipelinesOneExecutor drives several pipelines at once
// on one dedicated executor (the heavy-traffic shape) and checks every
// result; run it under -race to vet the shared runtime.
func TestConcurrentPipelinesOneExecutor(t *testing.T) {
	e := exec.New(4)
	defer e.Close()
	pool := scratch.New()
	const n = 20000
	xs := input(n)
	var wantSum int64
	for _, v := range xs {
		if v&1 == 0 {
			wantSum += v
		}
	}
	const workers = 6
	var wg sync.WaitGroup
	errs := make([]error, workers)
	sums := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cfg := Config{ChunkSize: 512 + 37*w, QueueDepth: 1 + w%3,
				Opts: par.Options{Procs: 2, SerialCutoff: 1, Executor: e, Scratch: pool}}
			errs[w] = New(cfg).FromSlice(xs).
				Filter(func(v int64) bool { return v&1 == 0 }).
				ToSum(&sums[w]).Run()
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("pipeline %d: %v", w, errs[w])
		}
		if sums[w] != wantSum {
			t.Errorf("pipeline %d: sum = %d, want %d", w, sums[w], wantSum)
		}
	}
	if live := pool.Stats().BytesLive; live != 0 {
		t.Errorf("scratch bytes live after concurrent runs = %d, want 0", live)
	}
}

// TestCloseMidStreamReleasesScratch closes a backpressured pipeline
// mid-stream (sink parked, every queue full, producer blocked on send)
// and requires Run to return ErrClosed promptly with zero scratch
// bytes on loan — queues drained, chunk buffers, sort runs and stage
// temporaries all returned.
func TestCloseMidStreamReleasesScratch(t *testing.T) {
	pool := scratch.New()
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	p := New(Config{
		ChunkSize: 256, QueueDepth: 1,
		Opts: par.Options{Procs: 2, SerialCutoff: 1, Scratch: pool},
	}).
		FromSlice(input(1 << 20)). // far more than the queues can hold
		Map(func(v int64) int64 { return v + 1 }).
		Sort(). // holds run state that must also be released
		ToFunc(func(buf []int64) error {
			once.Do(func() { close(started) })
			<-release
			return nil
		})
	done := make(chan error, 1)
	go func() { done <- p.Run() }()
	<-started
	p.Close()
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Run after Close = %v, want ErrClosed", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after Close: backpressured producer deadlocked")
	}
	if live := pool.Stats().BytesLive; live != 0 {
		t.Errorf("scratch bytes live after Close = %d, want 0", live)
	}
}

// TestCloseWithoutSinkProgress closes a pipeline whose sink never
// receives anything (the sort stage is still accumulating), exercising
// cancel while every stage is mid-stream.
func TestCloseWithoutSinkProgress(t *testing.T) {
	pool := scratch.New()
	p := New(Config{
		ChunkSize: 128, QueueDepth: 1,
		Opts: par.Options{Procs: 2, SerialCutoff: 1, Scratch: pool},
	}).
		FromFunc(1<<30, func(i int) int64 { return int64(i ^ 0x55) }). // effectively endless
		Sort().
		Discard()
	done := make(chan error, 1)
	go func() { done <- p.Run() }()
	time.Sleep(20 * time.Millisecond) // let the cascade accumulate runs
	p.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Run = %v, want ErrClosed", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after Close")
	}
	if live := pool.Stats().BytesLive; live != 0 {
		t.Errorf("scratch bytes live after Close = %d, want 0 (sort runs leaked?)", live)
	}
}

// TestSinkErrorCancelsAndDrains: a failing sink must cancel the whole
// pipeline, surface its error from Run, and leave no bytes on loan —
// with QueueDepth 1 the upstream stages are backpressured when the
// error fires.
func TestSinkErrorCancelsAndDrains(t *testing.T) {
	pool := scratch.New()
	boom := errors.New("sink boom")
	seen := 0
	p := New(Config{ChunkSize: 256, QueueDepth: 1,
		Opts: par.Options{Procs: 2, SerialCutoff: 1, Scratch: pool}}).
		FromSlice(input(1 << 19)).
		Map(func(v int64) int64 { return v * 3 }).
		Filter(func(v int64) bool { return v&3 != 0 }).
		ToFunc(func(buf []int64) error {
			seen++
			if seen == 3 {
				return boom
			}
			return nil
		})
	if err := waitRun(t, p, 30*time.Second); !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want the sink error", err)
	}
	if live := pool.Stats().BytesLive; live != 0 {
		t.Errorf("scratch bytes live after sink error = %d, want 0", live)
	}
}

// TestCloseBeforeRun and repeated Close are safe.
func TestCloseIdempotent(t *testing.T) {
	pool := scratch.New()
	p := New(Config{Opts: par.Options{Scratch: pool}}).
		FromSlice(input(10000)).Discard()
	p.Close()
	p.Close()
	if err := waitRun(t, p, 30*time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run after Close = %v, want ErrClosed", err)
	}
	p.Close() // after Run: still a no-op
	if live := pool.Stats().BytesLive; live != 0 {
		t.Errorf("scratch bytes live = %d, want 0", live)
	}
}

// TestBackpressureBoundsMemory streams far more data than the queues
// hold against a slow sink and samples the pool's live-byte gauge
// throughout: the pipeline's in-flight footprint must stay a small
// constant multiple of the chunk size, never O(stream).
func TestBackpressureBoundsMemory(t *testing.T) {
	pool := scratch.New()
	const cs = 1024 // 8 KiB chunks
	chunks := 512
	if testing.Short() {
		chunks = 128
	}
	cfg := Config{ChunkSize: cs, QueueDepth: 2,
		Opts: par.Options{Procs: 2, SerialCutoff: 1, Scratch: pool}}
	p := New(cfg).
		FromFunc(cs*chunks, func(i int) int64 { return int64(i) }).
		Map(func(v int64) int64 { return v + 1 }).
		ToFunc(func(buf []int64) error {
			time.Sleep(200 * time.Microsecond) // slow consumer
			return nil
		})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var maxLive int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			if l := pool.Stats().BytesLive; l > maxLive {
				maxLive = l
			}
			select {
			case <-stop:
				return
			case <-tick.C:
			}
		}
	}()
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	// Bound: the recycle list's worst-case population (3 stages) plus
	// slack for stage temporaries.
	bound := int64((3*(2+2) + 4 + 8)) * 8 * cs
	if maxLive > bound {
		t.Errorf("peak scratch bytes live = %d while streaming %d bytes, want <= %d (unbounded buffering?)",
			maxLive, 8*cs*chunks, bound)
	}
}

package pipeline

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adapt"
	"repro/internal/exec"
	"repro/internal/par"
	"repro/internal/scratch"
)

const (
	// DefaultChunkSize is 8192 elements — 64 KiB of int64, sized to sit
	// in L2 while chunks hop between stages.
	DefaultChunkSize = 8192
	// DefaultQueueDepth bounds each inter-stage queue to 4 chunks: deep
	// enough to absorb stage jitter, shallow enough that a pipeline's
	// in-flight footprint stays a small multiple of the chunk size.
	DefaultQueueDepth = 4
)

// Config shapes a pipeline. The zero value selects the defaults
// documented on each field.
type Config struct {
	// ChunkSize is the maximum number of elements per chunk; <= 0
	// means DefaultChunkSize.
	ChunkSize int
	// QueueDepth is the number of chunks each inter-stage queue
	// buffers; <= 0 means DefaultQueueDepth.
	QueueDepth int
	// Opts carries the kernel configuration every stage runs under:
	// executor, scratch pool, schedule/grain for intra-chunk
	// parallelism, and the adaptive controller. Setting SerialCutoff at
	// or above ChunkSize runs each stage's kernels serially per chunk —
	// the steady-traffic configuration where stage concurrency and
	// request concurrency already own the parallelism and per-chunk
	// fork/join would only add overhead.
	Opts par.Options
}

// Per-stage adaptive sites: one per stage kind, so the controller's
// (site, size-class) cache learns each stage's cost shape separately.
// Stage kinds with kernel-internal sites (sort → psort/par.Merge,
// top-k → psel) tune through those instead.
var (
	siteSource = adapt.NewSite("pipeline.source", adapt.KindRange)
	siteMap    = adapt.NewSite("pipeline.map", adapt.KindRange)
	siteFilter = adapt.NewSite("pipeline.filter", adapt.KindWorkers)
	siteScan   = adapt.NewSite("pipeline.runningsum", adapt.KindWorkers)
	siteHist   = adapt.NewSite("pipeline.histogram", adapt.KindWorkers)
	siteSum    = adapt.NewSite("pipeline.sum", adapt.KindWorkers)
	siteTopK   = adapt.NewSite("pipeline.topk", adapt.KindWorkers)
)

// Errors returned by Run.
var (
	// ErrClosed reports a pipeline cancelled by Close before the
	// stream completed.
	ErrClosed = errors.New("pipeline: closed before completion")
	// ErrAlreadyRan reports a second Run on the same pipeline; build a
	// fresh pipeline per run (construction is cheap).
	ErrAlreadyRan = errors.New("pipeline: Run already called")
)

// chunk is one unit of streamed data: a dense prefix of a pooled
// buffer plus the handle to return it with. Chunks travel by value, so
// handing one to a channel allocates nothing.
type chunk struct {
	buf []int64
	h   scratch.Handle
}

type stageKind uint8

const (
	kindSource stageKind = iota
	kindTransform
	kindSink
)

// stageRec is one built stage: its runner plus live counters.
type stageRec struct {
	name string
	kind stageKind
	// run drives the stage: receive from in (nil for the source), send
	// to out (nil for the sink), return when the stream is done. It
	// must close out (when non-nil), drain in fully, and release every
	// chunk it does not forward.
	run func(in <-chan chunk, out chan<- chunk)

	chunks atomic.Int64
	elems  atomic.Int64
	busyNs atomic.Int64
}

// note records one processed chunk of n elements taking d.
func (s *stageRec) note(n int, d time.Duration) {
	s.chunks.Add(1)
	s.elems.Add(int64(n))
	s.busyNs.Add(d.Nanoseconds())
}

// StageStats is one stage's processing counters.
type StageStats struct {
	// Name identifies the stage ("source", "map", "sort", ...).
	Name string
	// Chunks and Elems count the chunks/elements the stage processed.
	Chunks int64
	Elems  int64
	// Busy is time spent processing chunks (excludes queue waits).
	Busy time.Duration
}

// Stats is a snapshot of a pipeline's counters. Fully consistent after
// Run returns; safe (but racy in the gauge sense) while running.
type Stats struct {
	// Stages holds per-stage counters in pipeline order.
	Stages []StageStats
	// Wall is the Run wall-clock time (0 until Run returns).
	Wall time.Duration
	// SourceElems / SinkElems are the elements produced by the source
	// and consumed by the sink.
	SourceElems int64
	SinkElems   int64
	// Chunks is the number of chunks the source emitted.
	Chunks int64
	// Occupancy is the mean executor occupancy sampled once per source
	// chunk — how busy the shared pool was under the pipeline's load.
	Occupancy float64
}

// Throughput returns source elements per second over the run's wall
// time (0 before Run completes).
func (s Stats) Throughput() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.SourceElems) / s.Wall.Seconds()
}

// Pipeline is a built dataflow: one source, any number of transforms,
// one sink. Build it with New and the chaining stage methods, then
// call Run once. A Pipeline is not safe for concurrent building;
// Run/Close/Stats are safe concurrently.
type Pipeline struct {
	cfg      Config
	stages   []*stageRec
	buildErr error

	state atomic.Int32 // 0 built, 1 running, 2 done
	done  chan struct{}
	once  sync.Once

	mu  sync.Mutex
	err error

	wallNs atomic.Int64
	occSum atomic.Int64 // occupancy samples in millionths
	occN   atomic.Int64

	// free recycles chunk buffers pipeline-locally. Chunks are Get'd
	// on producer goroutines but consumed (and would be Put) on
	// consumer goroutines, which defeats the scratch pool's
	// stack-address shard heuristic — every Get would miss while the
	// consumer's shard fills. Routing returns through one shared list
	// keeps the steady-state chunk path at zero allocations; the
	// buffers still belong to the scratch pool and are Put back when
	// the run ends (or when the list overflows).
	free chan chunk
}

// New creates an empty pipeline with the given configuration.
func New(cfg Config) *Pipeline {
	return &Pipeline{cfg: cfg, done: make(chan struct{})}
}

func (p *Pipeline) chunkSize() int {
	if p.cfg.ChunkSize > 0 {
		return p.cfg.ChunkSize
	}
	return DefaultChunkSize
}

func (p *Pipeline) queueDepth() int {
	if p.cfg.QueueDepth > 0 {
		return p.cfg.QueueDepth
	}
	return DefaultQueueDepth
}

func (p *Pipeline) executor() *exec.Executor {
	if p.cfg.Opts.Executor != nil {
		return p.cfg.Opts.Executor
	}
	return exec.Default()
}

func (p *Pipeline) pool() *scratch.Pool { return p.cfg.Opts.ScratchPool() }

// stageOpts is the kernel Options a stage runs under: the pipeline's
// configured Options with the stage's adaptive site pinned.
func (p *Pipeline) stageOpts(site *adapt.Site) par.Options {
	o := p.cfg.Opts
	o.Site = site
	return o
}

// serialChunk reports whether per-chunk kernel work of n elements
// should bypass the parallel kernels entirely (mirrors the par-level
// serial contract for kernels like psort that do not read
// SerialCutoff themselves).
func (p *Pipeline) serialChunk(n int) bool {
	return p.cfg.Opts.Procs == 1 || (p.cfg.Opts.SerialCutoff > 0 && n <= p.cfg.Opts.SerialCutoff)
}

// newChunk takes an empty chunk buffer (len 0, cap >= ChunkSize) from
// the pipeline's recycle list, falling back to the scratch pool.
func (p *Pipeline) newChunk() chunk {
	select {
	case c := <-p.free:
		c.buf = c.buf[:0]
		return c
	default:
	}
	buf, h := scratch.GetCap[int64](p.pool(), 0, p.chunkSize())
	return chunk{buf: buf, h: h}
}

// release returns a chunk's buffer to the recycle list (or the scratch
// pool when the list is full or recycling is off).
func (p *Pipeline) release(c chunk) {
	if p.free != nil && p.pool() != scratch.Off {
		select {
		case p.free <- c:
			return
		default:
		}
	}
	scratch.Put(c.h)
}

// cancelled reports whether the pipeline has been cancelled (Close or
// a sink error).
func (p *Pipeline) cancelled() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// send forwards c to out, or releases it when the pipeline is
// cancelled first. It reports whether the send happened — after a
// false return the stage must stop producing and fall back to
// draining. send never blocks forever: either the consumer advances or
// the cancel channel fires.
func (p *Pipeline) send(out chan<- chunk, c chunk) bool {
	select {
	case out <- c:
		return true
	case <-p.done:
		p.release(c)
		return false
	}
}

// fail records the first error and cancels the run.
func (p *Pipeline) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
	p.cancel()
}

func (p *Pipeline) cancel() { p.once.Do(func() { close(p.done) }) }

// Close cancels a running pipeline: stages stop processing, drain and
// release every in-flight chunk, and Run returns ErrClosed (or the
// earlier sink error, if one already fired). Close is safe to call
// multiple times, from any goroutine, before, during or after Run.
func (p *Pipeline) Close() {
	p.mu.Lock()
	if p.err == nil {
		p.err = ErrClosed
	}
	p.mu.Unlock()
	p.cancel()
}

// sampleOccupancy records one executor-occupancy sample (called by the
// source once per chunk).
func (p *Pipeline) sampleOccupancy() {
	p.occSum.Add(int64(p.executor().Occupancy() * 1e6))
	p.occN.Add(1)
}

// addStage appends a stage, enforcing the source → transforms → sink
// shape at build time.
func (p *Pipeline) addStage(name string, kind stageKind,
	run func(st *stageRec, in <-chan chunk, out chan<- chunk)) *stageRec {
	if p.buildErr != nil {
		return nil
	}
	switch kind {
	case kindSource:
		if len(p.stages) != 0 {
			p.buildErr = fmt.Errorf("pipeline: source %q must be the first stage", name)
			return nil
		}
	default:
		if len(p.stages) == 0 {
			p.buildErr = fmt.Errorf("pipeline: stage %q requires a source first", name)
			return nil
		}
		if p.stages[len(p.stages)-1].kind == kindSink {
			p.buildErr = fmt.Errorf("pipeline: stage %q added after the sink", name)
			return nil
		}
	}
	st := &stageRec{name: name, kind: kind}
	st.run = func(in <-chan chunk, out chan<- chunk) { run(st, in, out) }
	p.stages = append(p.stages, st)
	return st
}

// Run executes the pipeline and blocks until the stream completes, the
// sink fails, or Close is called. It returns nil on a completed
// stream, the sink's error, or ErrClosed. Run may be called once.
func (p *Pipeline) Run() error {
	if p.buildErr != nil {
		return p.buildErr
	}
	if len(p.stages) == 0 || p.stages[0].kind != kindSource {
		return errors.New("pipeline: no source stage")
	}
	if p.stages[len(p.stages)-1].kind != kindSink {
		return errors.New("pipeline: no sink stage")
	}
	if !p.state.CompareAndSwap(0, 1) {
		return ErrAlreadyRan
	}
	// Size the recycle list for the worst-case in-flight population:
	// every queue full plus a couple of chunks per stage in hand.
	p.free = make(chan chunk, len(p.stages)*(p.queueDepth()+2)+4)
	if pool := p.pool(); pool != scratch.Off {
		// Pre-populate the list from the caller's goroutine (bounded
		// to a modest byte budget for huge chunk sizes): acquiring and
		// finally releasing the slabs on one stable goroutine keeps
		// them on one scratch shard across runs, so stage goroutines —
		// fresh every run, landing on arbitrary shards — never touch
		// the pool on the chunk path at all.
		fill := cap(p.free)
		if budget := (32 << 20) / (p.chunkSize() * 8); fill > budget {
			fill = budget
		}
		for i := 0; i < fill; i++ {
			buf, h := scratch.GetCap[int64](pool, 0, p.chunkSize())
			p.free <- chunk{buf: buf, h: h}
		}
	}
	e := p.executor()
	t0 := time.Now()
	var wg sync.WaitGroup
	var in chan chunk
	for i, st := range p.stages {
		var out chan chunk
		if i < len(p.stages)-1 {
			out = make(chan chunk, p.queueDepth())
		}
		wg.Add(1)
		stIn, stOut, run := in, out, st.run
		// Stage loops block on channel sends/receives, so they run on
		// dedicated goroutines (exec.Go), not pooled workers; the
		// kernels they invoke dispatch onto the shared pool.
		e.Go(func() {
			defer wg.Done()
			run(stIn, stOut)
		})
		in = out
	}
	wg.Wait()
	// All stages have exited: return every recycled buffer to the
	// scratch pool so a finished (or cancelled) pipeline leaves no
	// bytes on loan.
	for {
		select {
		case c := <-p.free:
			scratch.Put(c.h)
			continue
		default:
		}
		break
	}
	p.wallNs.Store(time.Since(t0).Nanoseconds())
	p.state.Store(2)
	p.mu.Lock()
	err := p.err
	p.mu.Unlock()
	return err
}

// Stats returns the pipeline's counters.
func (p *Pipeline) Stats() Stats {
	s := Stats{
		Stages: make([]StageStats, len(p.stages)),
		Wall:   time.Duration(p.wallNs.Load()),
	}
	for i, st := range p.stages {
		s.Stages[i] = StageStats{
			Name:   st.name,
			Chunks: st.chunks.Load(),
			Elems:  st.elems.Load(),
			Busy:   time.Duration(st.busyNs.Load()),
		}
	}
	if len(p.stages) > 0 {
		s.SourceElems = s.Stages[0].Elems
		s.Chunks = s.Stages[0].Chunks
		s.SinkElems = s.Stages[len(p.stages)-1].Elems
	}
	if n := p.occN.Load(); n > 0 {
		s.Occupancy = float64(p.occSum.Load()) / 1e6 / float64(n)
	}
	return s
}

// runTransform is the shared transform loop: process each chunk (the
// stage owns it; emit at most one chunk per input), flush internal
// state at end-of-stream, and after cancellation keep draining so
// upstream queues empty and every buffered chunk returns to the pool.
func (p *Pipeline) runTransform(st *stageRec, in <-chan chunk, out chan<- chunk,
	process func(c chunk) (chunk, bool), flush func(out chan<- chunk)) {
	defer close(out)
	for c := range in {
		if p.cancelled() {
			p.release(c)
			continue
		}
		n := len(c.buf)
		t0 := time.Now()
		oc, emit := process(c)
		st.note(n, time.Since(t0))
		if emit {
			p.send(out, oc)
		}
	}
	if flush != nil && !p.cancelled() {
		flush(out)
	}
}

// runSink is the shared sink loop: consume (and release) every chunk;
// process errors cancel the pipeline.
func (p *Pipeline) runSink(st *stageRec, in <-chan chunk, process func(buf []int64) error) {
	for c := range in {
		if p.cancelled() {
			p.release(c)
			continue
		}
		t0 := time.Now()
		err := process(c.buf)
		st.note(len(c.buf), time.Since(t0))
		p.release(c)
		if err != nil {
			p.fail(err)
		}
	}
}

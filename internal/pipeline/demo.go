package pipeline

// The reference analytics chain: one definition of the gen → map →
// filter → histogram workload shared by experiment E22
// (internal/core), the parbench -pipeline demo, and the
// BenchmarkTrafficPipeline acceptance benchmark — so all three
// measure the same chain by construction.

// DemoBuckets is the reference chain's histogram width.
const DemoBuckets = 1024

// DemoGen is the reference source: a cheap splitmix-style hash of the
// index (pure, allocation-free).
func DemoGen(i int) int64 { return int64(uint64(i) * 0x9E3779B97F4A7C15 >> 13) }

// DemoMap is the reference map stage (an LCG-style mix).
func DemoMap(v int64) int64 { return v*0x2545F4914F6CDD1D + 0x9E3779B9 }

// DemoPred is the reference filter: keep ~7/8 of the stream.
func DemoPred(v int64) bool { return v&7 != 0 }

// DemoBucket maps a value onto [0, DemoBuckets).
func DemoBucket(v int64) int { return int(uint64(v) >> 54) }

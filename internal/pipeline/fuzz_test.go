package pipeline

import (
	"encoding/binary"
	"sort"
	"testing"

	"repro/internal/par"
)

// FuzzPipelineVsOneShot cross-checks the full streaming pipeline
// against the one-shot kernel composition oracle under fuzzer-chosen
// chunk sizes, queue depths and adversarial inputs: tiny chunks (down
// to 1 element), streams that don't divide evenly, duplicate-heavy and
// extreme values. Every divergence — ordering, carry handling across
// chunk boundaries, run-cascade merging, top-k pruning — is a crash
// for the fuzzer.
func FuzzPipelineVsOneShot(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), []byte{})
	f.Add(uint8(1), uint8(1), uint8(3), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(7), uint8(2), uint8(40), []byte("the quick brown fox jumps over the lazy dog, twice over"))
	f.Add(uint8(255), uint8(3), uint8(200),
		[]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0x80})

	f.Fuzz(func(t *testing.T, csRaw, qdRaw, kRaw uint8, data []byte) {
		cs := 1 + int(csRaw)%300
		qd := 1 + int(qdRaw)%4
		xs := make([]int64, len(data)/8)
		for i := range xs {
			xs[i] = int64(binary.LittleEndian.Uint64(data[i*8:]))
		}
		cfg := Config{ChunkSize: cs, QueueDepth: qd,
			Opts: par.Options{Procs: 4, SerialCutoff: 1, Grain: 16}}

		mapF := func(v int64) int64 { return v ^ 0x5bf0363db49d9b17 }
		pred := func(v int64) bool { return v&3 != 0 }

		// Oracle: one-shot composition on materialized intermediates.
		var mapped []int64
		for _, v := range xs {
			if m := mapF(v); pred(m) {
				mapped = append(mapped, m)
			}
		}
		wantScan := append([]int64(nil), mapped...)
		var acc int64
		for i, v := range wantScan {
			acc += v
			wantScan[i] = acc
		}
		wantSorted := append([]int64(nil), wantScan...)
		sort.Slice(wantSorted, func(i, j int) bool { return wantSorted[i] < wantSorted[j] })

		var got []int64
		err := New(cfg).FromSlice(xs).Map(mapF).Filter(pred).RunningSum().Sort().To(&got).Run()
		if err != nil {
			t.Fatalf("pipeline: %v", err)
		}
		if len(got) != len(wantSorted) {
			t.Fatalf("cs=%d qd=%d n=%d: pipeline emitted %d elements, oracle %d",
				cs, qd, len(xs), len(got), len(wantSorted))
		}
		for i := range got {
			if got[i] != wantSorted[i] {
				t.Fatalf("cs=%d qd=%d n=%d: [%d] = %d, oracle %d",
					cs, qd, len(xs), i, got[i], wantSorted[i])
			}
		}

		// TopK against the oracle's sorted prefix.
		if len(xs) > 0 {
			k := 1 + int(kRaw)%(len(xs)+8) // sometimes > stream length
			var topk []int64
			err := New(cfg).FromSlice(xs).Map(mapF).Filter(pred).TopK(k).To(&topk).Run()
			if err != nil {
				t.Fatalf("topk pipeline: %v", err)
			}
			want := wantSortedOf(mapped)
			if k < len(want) {
				want = want[:k]
			}
			if len(topk) != len(want) {
				t.Fatalf("topk k=%d: got %d elements, want %d", k, len(topk), len(want))
			}
			for i := range topk {
				if topk[i] != want[i] {
					t.Fatalf("topk k=%d: [%d] = %d, want %d", k, i, topk[i], want[i])
				}
			}
		}
	})
}

func wantSortedOf(xs []int64) []int64 {
	out := append([]int64(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

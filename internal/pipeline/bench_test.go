package pipeline

import (
	"testing"

	"repro/internal/par"
	"repro/internal/psort"
)

// BenchmarkTrafficPipeline is the acceptance benchmark for the
// streaming runtime: the analytics chain gen → map → filter →
// histogram (+ running sum sink) executed two ways over the same
// workload.
//
//   - Materialized: the one-shot kernel composition — every stage is a
//     whole-array kernel call with a full-size intermediate allocated
//     between stages, each pass streaming the array through DRAM.
//   - Chunked: the same chain as a pipeline, fused over cache-sized
//     chunks recycled through the scratch pool.
//
// Run with -benchmem: chunked must win on both ns/op (the
// intermediates stay cache-resident and the GC never sees them) and
// B/op (no per-stage O(n) allocations).
const (
	benchN  = 1 << 21 // 16 MiB per materialized intermediate
	benchCS = 8192    // 64 KiB chunks
)

func BenchmarkTrafficPipeline(b *testing.B) {
	b.Run("Materialized", func(b *testing.B) {
		hist := make([]int, DemoBuckets)
		var sum int64
		opts := par.Options{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Stage 1: generate a fully materialized input.
			xs := make([]int64, benchN)
			par.For(benchN, opts, func(j int) { xs[j] = DemoGen(j) })
			// Stage 2: map into a second full-size array.
			ys := par.Map(xs, opts, DemoMap)
			// Stage 3: filter into a third.
			zs := par.Pack(ys, opts, DemoPred)
			// Stage 4: aggregate.
			par.HistogramInto(hist, zs, opts, DemoBucket)
			sum = par.Sum(zs, opts)
		}
		_ = sum
	})
	b.Run("Chunked", func(b *testing.B) {
		hist := make([]int, DemoBuckets)
		var sum int64
		cfg := Config{ChunkSize: benchCS,
			Opts: par.Options{SerialCutoff: benchCS}}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var s int64
			p := New(cfg).
				FromFunc(benchN, DemoGen).
				Map(DemoMap).
				Filter(DemoPred).
				Tee(func(buf []int64) {
					for _, v := range buf {
						s += v
					}
				}).
				ToHistogram(hist, DemoBucket)
			if err := p.Run(); err != nil {
				b.Fatal(err)
			}
			sum = s
		}
		_ = sum
	})
}

// BenchmarkPipelineSortStream measures the blocking-operator path: the
// chunked sort-merge cascade against the one-shot sort over a
// materialized copy.
func BenchmarkPipelineSortStream(b *testing.B) {
	const n = 1 << 19
	b.Run("Materialized", func(b *testing.B) {
		opts := par.Options{}
		out := make([]int64, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			xs := make([]int64, n)
			par.For(n, opts, func(j int) { xs[j] = DemoGen(j) })
			copy(out, xs)
			psort.SampleSort(out, opts)
		}
	})
	b.Run("Chunked", func(b *testing.B) {
		cfg := Config{ChunkSize: benchCS, Opts: par.Options{SerialCutoff: benchCS}}
		out := make([]int64, 0, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out = out[:0]
			p := New(cfg).FromFunc(n, DemoGen).Sort().To(&out)
			if err := p.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

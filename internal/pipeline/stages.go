package pipeline

import (
	"fmt"
	"time"

	"repro/internal/par"
	"repro/internal/psel"
	"repro/internal/psort"
	"repro/internal/scratch"
	"repro/internal/seq"
)

// Stage bodies hoist their kernel closures out of the per-chunk loop
// (capturing loop state through pointer cells), so steady-state chunk
// processing creates no new closure frames: with intra-chunk work on
// the serial path (Opts.SerialCutoff >= ChunkSize, or a converged
// adaptive controller that decided serial) a chunk's whole journey
// through the pipeline allocates nothing.

// emitSlice streams xs into out in chunk-sized pieces, honoring
// cancellation. A non-nil each observes every emitted chunk (element
// count and time spent producing it, excluding the queue wait).
func (p *Pipeline) emitSlice(out chan<- chunk, xs []int64, each func(n int, d time.Duration)) {
	size := p.chunkSize()
	for off := 0; off < len(xs); off += size {
		if p.cancelled() {
			return
		}
		var t0 time.Time
		if each != nil {
			t0 = time.Now()
		}
		n := min(size, len(xs)-off)
		c := p.newChunk()
		c.buf = c.buf[:n]
		copy(c.buf, xs[off:off+n])
		if each != nil {
			each(n, time.Since(t0))
		}
		if !p.send(out, c) {
			return
		}
	}
}

// FromSlice streams xs through the pipeline, copying it into pooled
// chunks; xs is never modified or retained.
func (p *Pipeline) FromSlice(xs []int64) *Pipeline {
	p.addStage("source", kindSource, func(st *stageRec, _ <-chan chunk, out chan<- chunk) {
		defer close(out)
		p.emitSlice(out, xs, func(n int, d time.Duration) {
			st.note(n, d)
			p.sampleOccupancy()
		})
	})
	return p
}

// FromFunc streams n generated elements: element i is f(i), computed
// chunk by chunk with the source's parallel loop. f must be pure.
func (p *Pipeline) FromFunc(n int, f func(i int) int64) *Pipeline {
	if n < 0 {
		p.buildFail(fmt.Errorf("pipeline: FromFunc with n = %d", n))
		return p
	}
	p.addStage("source", kindSource, func(st *stageRec, _ <-chan chunk, out chan<- chunk) {
		defer close(out)
		opts := p.stageOpts(siteSource)
		size := p.chunkSize()
		var (
			buf  []int64
			base int
		)
		body := func(i int) { buf[i] = f(base + i) }
		for off := 0; off < n; off += size {
			if p.cancelled() {
				return
			}
			m := min(size, n-off)
			t0 := time.Now()
			c := p.newChunk()
			c.buf = c.buf[:m]
			if p.serialChunk(m) {
				for i := 0; i < m; i++ {
					c.buf[i] = f(off + i)
				}
			} else {
				buf, base = c.buf, off
				par.For(m, opts, body)
			}
			st.note(m, time.Since(t0))
			p.sampleOccupancy()
			if !p.send(out, c) {
				return
			}
		}
	})
	return p
}

// Map applies f to every element in place. f must be pure.
func (p *Pipeline) Map(f func(int64) int64) *Pipeline {
	p.addStage("map", kindTransform, func(st *stageRec, in <-chan chunk, out chan<- chunk) {
		opts := p.stageOpts(siteMap)
		var buf []int64
		body := func(i int) { buf[i] = f(buf[i]) }
		p.runTransform(st, in, out, func(c chunk) (chunk, bool) {
			if p.serialChunk(len(c.buf)) {
				for i, v := range c.buf {
					c.buf[i] = f(v)
				}
				return c, true
			}
			buf = c.buf
			par.For(len(buf), opts, body)
			return c, true
		}, nil)
	})
	return p
}

// Filter keeps only the elements satisfying pred (stable). pred must
// be pure — the parallel pack evaluates it twice per element.
func (p *Pipeline) Filter(pred func(int64) bool) *Pipeline {
	p.addStage("filter", kindTransform, func(st *stageRec, in <-chan chunk, out chan<- chunk) {
		opts := p.stageOpts(siteFilter)
		p.runTransform(st, in, out, func(c chunk) (chunk, bool) {
			oc := p.newChunk()
			dst := oc.buf[:len(c.buf)]
			var k int
			if p.serialChunk(len(c.buf)) {
				for _, v := range c.buf {
					if pred(v) {
						dst[k] = v
						k++
					}
				}
			} else {
				k = par.PackInto(dst, c.buf, opts, pred)
			}
			p.release(c)
			if k == 0 {
				p.release(oc)
				return chunk{}, false
			}
			oc.buf = dst[:k]
			return oc, true
		}, nil)
	})
	return p
}

// RunningSum replaces every element with the running (inclusive)
// prefix sum of the whole stream — the streaming form of
// par.ScanInclusive, with the carry threaded across chunks.
func (p *Pipeline) RunningSum() *Pipeline {
	p.addStage("runningsum", kindTransform, func(st *stageRec, in <-chan chunk, out chan<- chunk) {
		opts := p.stageOpts(siteScan)
		var carry int64
		add := func(a, b int64) int64 { return a + b }
		p.runTransform(st, in, out, func(c chunk) (chunk, bool) {
			if len(c.buf) == 0 {
				return c, true
			}
			if p.serialChunk(len(c.buf)) {
				acc := carry
				for i, v := range c.buf {
					acc += v
					c.buf[i] = acc
				}
			} else {
				// Fold the carry into the first element: the scan's
				// identity seeds every worker block, so it cannot
				// carry state across chunks.
				c.buf[0] += carry
				par.ScanInclusive(c.buf, c.buf, opts, 0, add)
			}
			carry = c.buf[len(c.buf)-1]
			return c, true
		}, nil)
	})
	return p
}

// Tee calls observe on every chunk as it flows past, unmodified — the
// fan-out hook for side aggregations. observe must not retain or
// mutate the slice.
func (p *Pipeline) Tee(observe func(buf []int64)) *Pipeline {
	p.addStage("tee", kindTransform, func(st *stageRec, in <-chan chunk, out chan<- chunk) {
		p.runTransform(st, in, out, func(c chunk) (chunk, bool) {
			observe(c.buf)
			return c, true
		}, nil)
	})
	return p
}

// run is one sorted run held by the sort stage. fromChunk marks a
// buffer that arrived as a pipeline chunk (and must go back to the
// chunk recycle list, not the merge-spare list).
type run struct {
	buf       []int64
	h         scratch.Handle
	fromChunk bool
}

// Sort re-emits the whole stream in ascending order. It is the
// pipeline's blocking operator: each incoming chunk is sorted as it
// arrives and pushed onto a run stack that carry-merges
// comparable-size runs with par.Merge (so merge work overlaps upstream
// production), and the final run is emitted in chunks at end-of-stream.
// State is O(stream length), the inherent cost of sorting.
func (p *Pipeline) Sort() *Pipeline {
	p.addStage("sort", kindTransform, func(st *stageRec, in <-chan chunk, out chan<- chunk) {
		opts := p.stageOpts(nil) // psort/par.Merge bring their own sites
		less := func(x, y int64) bool { return x < y }
		runs := make([]run, 0, 64)
		// spares recycles freed merge buffers stage-locally (first fit
		// by capacity): the cascade reuses each size class many times
		// per stream, and going back through the scratch pool from a
		// fresh stage goroutine would land on an arbitrary shard.
		spares := make([]run, 0, 8)
		getRun := func(n int) run {
			for i := range spares {
				if cap(spares[i].buf) >= n {
					r := spares[i]
					spares[i] = spares[len(spares)-1]
					spares = spares[:len(spares)-1]
					r.buf = r.buf[:n]
					return r
				}
			}
			buf, h := scratch.GetCap[int64](p.pool(), n, n)
			return run{buf: buf, h: h}
		}
		putRun := func(r run) {
			if r.fromChunk {
				p.release(chunk{buf: r.buf, h: r.h})
				return
			}
			if len(spares) < cap(spares) {
				spares = append(spares, r)
				return
			}
			scratch.Put(r.h)
		}
		// Whatever path exits the stage, every held buffer goes back.
		defer func() {
			for _, r := range runs {
				putRun(r)
			}
			for _, r := range spares {
				scratch.Put(r.h)
			}
		}()
		mergeTop := func() {
			k := len(runs)
			a, b := runs[k-2], runs[k-1]
			dst := getRun(len(a.buf) + len(b.buf))
			par.Merge(dst.buf, a.buf, b.buf, opts, less)
			putRun(a)
			putRun(b)
			runs = append(runs[:k-2], dst)
		}
		p.runTransform(st, in, out, func(c chunk) (chunk, bool) {
			p.sortChunk(c.buf, opts)
			runs = append(runs, run{buf: c.buf, h: c.h, fromChunk: true})
			// Carry-merge while the run below is within 2x: keeps the
			// stack logarithmic and the total merge work O(n log n).
			for len(runs) >= 2 && len(runs[len(runs)-2].buf) <= 2*len(runs[len(runs)-1].buf) {
				mergeTop()
			}
			return chunk{}, false
		}, func(out chan<- chunk) {
			for len(runs) >= 2 {
				mergeTop()
			}
			if len(runs) == 0 {
				return
			}
			p.emitSlice(out, runs[0].buf, nil)
		})
	})
	return p
}

// TopK reduces the stream to its k smallest elements, emitted sorted
// at end-of-stream. Candidates accumulate in a bounded buffer that is
// pruned back to k with psel.Select whenever it fills, so state is
// O(k + ChunkSize) regardless of stream length. The prune runs inside
// the stage's own adaptive region with the controller passed through —
// the reentrancy guard keeps psel's inner sites from recording there.
func (p *Pipeline) TopK(k int) *Pipeline {
	if k <= 0 {
		p.buildFail(fmt.Errorf("pipeline: TopK with k = %d", k))
		return p
	}
	p.addStage("topk", kindTransform, func(st *stageRec, in <-chan chunk, out chan<- chunk) {
		opts := p.stageOpts(nil)
		bound := k + max(k, p.chunkSize())
		cand, candH := scratch.GetCap[int64](p.pool(), 0, bound+p.chunkSize())
		defer scratch.Put(candH)
		prune := func() {
			if len(cand) <= k {
				return
			}
			tuned, m := par.BeginAdaptive(siteTopK, len(cand), p.stageOpts(siteTopK))
			tuned.Adaptive = p.cfg.Opts.Adaptive // nested sites stay quiet (reentrancy guard)
			v := psel.Select(cand, k-1, tuned)
			m.Done()
			// Keep everything below the k-th value, then pad with
			// copies of it: exactly the k smallest as a multiset.
			w := 0
			for _, x := range cand {
				if x < v {
					cand[w] = x
					w++
				}
			}
			for ; w < k; w++ {
				cand[w] = v
			}
			cand = cand[:k]
		}
		p.runTransform(st, in, out, func(c chunk) (chunk, bool) {
			cand = append(cand, c.buf...)
			p.release(c)
			if len(cand) > bound {
				prune()
			}
			return chunk{}, false
		}, func(out chan<- chunk) {
			prune()
			p.sortChunk(cand, opts)
			p.emitSlice(out, cand, nil)
		})
	})
	return p
}

// sortChunk sorts buf with the parallel sorter, or the sequential
// baseline when the pipeline's Options ask for serial chunks (psort
// reads Procs but not SerialCutoff).
func (p *Pipeline) sortChunk(buf []int64, opts par.Options) {
	if p.serialChunk(len(buf)) {
		seq.Quicksort(buf)
		return
	}
	psort.SampleSort(buf, opts)
}

// To appends the whole stream to *dst, in order.
func (p *Pipeline) To(dst *[]int64) *Pipeline {
	p.addStage("collect", kindSink, func(st *stageRec, in <-chan chunk, _ chan<- chunk) {
		p.runSink(st, in, func(buf []int64) error {
			*dst = append(*dst, buf...)
			return nil
		})
	})
	return p
}

// ToFunc hands every chunk to fn in stream order. A non-nil error
// cancels the pipeline and becomes Run's return value. fn must not
// retain buf — the buffer is recycled after the call.
func (p *Pipeline) ToFunc(fn func(buf []int64) error) *Pipeline {
	p.addStage("sink", kindSink, func(st *stageRec, in <-chan chunk, _ chan<- chunk) {
		p.runSink(st, in, fn)
	})
	return p
}

// ToHistogram accumulates a running histogram of the stream into out
// (len(out) buckets, fully overwritten at Run start). bucket must be
// pure and return values in [0, len(out)).
func (p *Pipeline) ToHistogram(out []int, bucket func(int64) int) *Pipeline {
	p.addStage("histogram", kindSink, func(st *stageRec, in <-chan chunk, _ chan<- chunk) {
		opts := p.stageOpts(siteHist)
		clear(out)
		tmp, h := scratch.Get[int](p.pool(), len(out))
		defer scratch.Put(h)
		p.runSink(st, in, func(buf []int64) error {
			if p.serialChunk(len(buf)) {
				for _, v := range buf {
					out[bucket(v)]++
				}
				return nil
			}
			par.HistogramInto(tmp, buf, opts, bucket)
			for i, v := range tmp {
				out[i] += v
			}
			return nil
		})
	})
	return p
}

// ToSum accumulates the running sum of the stream into *out
// (overwritten at Run start).
func (p *Pipeline) ToSum(out *int64) *Pipeline {
	p.addStage("sum", kindSink, func(st *stageRec, in <-chan chunk, _ chan<- chunk) {
		opts := p.stageOpts(siteSum)
		*out = 0
		add := func(a, b int64) int64 { return a + b }
		var buf []int64
		body := func(i int) int64 { return buf[i] }
		p.runSink(st, in, func(b []int64) error {
			if p.serialChunk(len(b)) {
				var acc int64
				for _, v := range b {
					acc += v
				}
				*out += acc
				return nil
			}
			buf = b
			*out += par.Reduce(len(b), opts, 0, add, body)
			return nil
		})
	})
	return p
}

// Discard consumes the stream, counting it in Stats but keeping
// nothing — the sink for pipelines whose aggregations live in Tee
// observers.
func (p *Pipeline) Discard() *Pipeline {
	p.addStage("discard", kindSink, func(st *stageRec, in <-chan chunk, _ chan<- chunk) {
		p.runSink(st, in, func([]int64) error { return nil })
	})
	return p
}

// buildFail records the first build error (returned by Run).
func (p *Pipeline) buildFail(err error) {
	if p.buildErr == nil {
		p.buildErr = err
	}
}

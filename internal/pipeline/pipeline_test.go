package pipeline

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/adapt"
	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/racecheck"
	"repro/internal/scratch"
)

// input builds a deterministic, duplicate-rich test stream.
func input(n int) []int64 {
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i*2654435761) % 9973
	}
	return xs
}

// oracle computes the one-shot composition the pipeline must match:
// map, filter, sort — plus the histogram and sum of the survivors.
func oracle(xs []int64, mapF func(int64) int64, pred func(int64) bool,
	buckets int, bucket func(int64) int) (sorted []int64, hist []int, sum int64) {
	for _, v := range xs {
		v = mapF(v)
		if pred(v) {
			sorted = append(sorted, v)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	hist = make([]int, buckets)
	for _, v := range sorted {
		hist[bucket(v)]++
		sum += v
	}
	return sorted, hist, sum
}

func eq64(t *testing.T, what string, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %d, want %d", what, i, got[i], want[i])
		}
	}
}

// exploring returns a mid-exploration controller so repeated chunks
// sample different candidates while results must stay identical.
func exploring() *adapt.Controller {
	return adapt.New(adapt.Config{Epsilon: 1, ConvergeAfter: 1 << 30, Seed: 31415})
}

// matrix is the pipeline configuration axis: chunk sizes from
// adversarially tiny to larger than the stream, queue depths including
// 1 (max backpressure), serial and parallel intra-chunk work, scratch
// on/off, and the adaptive runtime mid-exploration.
func matrix() []Config {
	var out []Config
	for _, cs := range []int{1, 3, 64, 1021, 8192} {
		for _, qd := range []int{1, 4} {
			out = append(out, Config{ChunkSize: cs, QueueDepth: qd,
				Opts: par.Options{Procs: 4, SerialCutoff: 1, Grain: 32}})
		}
	}
	out = append(out,
		Config{ChunkSize: 512, Opts: par.Options{Procs: 1}},
		Config{ChunkSize: 512, Opts: par.Options{Procs: 4, SerialCutoff: 512}},
		Config{ChunkSize: 512, Opts: par.Options{Procs: 4, SerialCutoff: 1, Scratch: scratch.Off}},
		Config{ChunkSize: 512, Opts: par.Options{Procs: 4, SerialCutoff: 1, Policy: par.Dynamic}},
		Config{ChunkSize: 512, Opts: par.Options{Procs: 4, Adaptive: exploring()}},
	)
	return out
}

func cfgName(c Config) string {
	name := fmt.Sprintf("cs%d/qd%d/p%d", c.ChunkSize, c.QueueDepth, c.Opts.Procs)
	if c.Opts.Scratch == scratch.Off {
		name += "/noscratch"
	}
	if c.Opts.Adaptive != nil {
		name += "/adaptive"
	}
	if c.Opts.SerialCutoff >= c.ChunkSize && c.ChunkSize > 0 {
		name += "/serialchunk"
	}
	return name
}

// TestPipelineVsOneShot is the core differential test: the full
// analytics chain (map → filter → sort → collect + tee'd histogram and
// sum) against the one-shot composition, across the config matrix and
// several stream lengths including empty, single, odd, and
// not-a-multiple-of-chunk sizes.
func TestPipelineVsOneShot(t *testing.T) {
	mapF := func(v int64) int64 { return v*3 + 1 }
	pred := func(v int64) bool { return v&3 != 0 }
	const buckets = 64
	bucket := func(v int64) int { return int(uint64(v) % buckets) }

	sizes := []int{0, 1, 5, 1021, 30000}
	if testing.Short() {
		sizes = []int{0, 1, 5, 1021, 6000}
	}
	for _, cfg := range matrix() {
		t.Run(cfgName(cfg), func(t *testing.T) {
			for _, n := range sizes {
				xs := input(n)
				wantSorted, wantHist, wantSum := oracle(xs, mapF, pred, buckets, bucket)

				var got []int64
				hist := make([]int, buckets)
				var sum int64
				p := New(cfg).FromSlice(xs).Map(mapF).Filter(pred).Sort().
					Tee(func(buf []int64) {
						for _, v := range buf {
							sum += v
						}
					}).
					ToHistogram(hist, bucket)
				// Histogram is the sink; collect via a second run for the
				// sorted stream itself.
				if err := p.Run(); err != nil {
					t.Fatalf("n=%d: Run: %v", n, err)
				}
				p2 := New(cfg).FromSlice(xs).Map(mapF).Filter(pred).Sort().To(&got)
				if err := p2.Run(); err != nil {
					t.Fatalf("n=%d: Run(collect): %v", n, err)
				}

				eq64(t, fmt.Sprintf("n=%d sorted stream", n), got, wantSorted)
				for b := range hist {
					if hist[b] != wantHist[b] {
						t.Fatalf("n=%d: hist[%d] = %d, want %d", n, b, hist[b], wantHist[b])
					}
				}
				if sum != wantSum {
					t.Fatalf("n=%d: tee sum = %d, want %d", n, sum, wantSum)
				}
			}
		})
	}
}

// TestFromFuncSource checks the generated source against FromSlice.
func TestFromFuncSource(t *testing.T) {
	const n = 10000
	f := func(i int) int64 { return int64(i*i) % 4099 }
	var a, b []int64
	if err := New(Config{ChunkSize: 777}).FromFunc(n, f).To(&a).Run(); err != nil {
		t.Fatal(err)
	}
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = f(i)
	}
	if err := New(Config{ChunkSize: 777}).FromSlice(xs).To(&b).Run(); err != nil {
		t.Fatal(err)
	}
	eq64(t, "FromFunc vs FromSlice", a, b)
}

// TestRunningSumCarry pins the cross-chunk carry: the streaming prefix
// sum over many chunks must equal the one-shot scan.
func TestRunningSumCarry(t *testing.T) {
	const n = 12345
	xs := input(n)
	want := make([]int64, n)
	var acc int64
	for i, v := range xs {
		acc += v
		want[i] = acc
	}
	for _, cs := range []int{1, 7, 512, 8192} {
		var got []int64
		err := New(Config{ChunkSize: cs, Opts: par.Options{Procs: 4, SerialCutoff: 1}}).
			FromSlice(xs).RunningSum().To(&got).Run()
		if err != nil {
			t.Fatal(err)
		}
		eq64(t, fmt.Sprintf("running sum cs=%d", cs), got, want)
	}
}

// TestSortMergeCascade drives the sort stage through a deep run stack
// (many odd-size chunks) and checks full sortedness and multiset
// equality.
func TestSortMergeCascade(t *testing.T) {
	n := 37*1021 + 13
	if testing.Short() {
		n = 11*1021 + 13
	}
	xs := input(n)
	want := append([]int64(nil), xs...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	var got []int64
	err := New(Config{ChunkSize: 1021, Opts: par.Options{Procs: 4, SerialCutoff: 1}}).
		FromSlice(xs).Sort().To(&got).Run()
	if err != nil {
		t.Fatal(err)
	}
	eq64(t, "sort cascade", got, want)
}

// TestTopK checks the bounded top-k stage against the sorted prefix,
// including duplicate-heavy streams, k larger than the stream, and
// k == n.
func TestTopK(t *testing.T) {
	const n = 20000
	xs := input(n) // duplicate-rich by construction
	want := append([]int64(nil), xs...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for _, k := range []int{1, 10, 4096, n, n + 500} {
		var got []int64
		err := New(Config{ChunkSize: 1024, Opts: par.Options{Procs: 4, SerialCutoff: 1}}).
			FromSlice(xs).TopK(k).To(&got).Run()
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		wantK := want
		if k < n {
			wantK = want[:k]
		}
		eq64(t, fmt.Sprintf("topk k=%d", k), got, wantK)
	}
}

// TestToSum checks the reduce sink.
func TestToSum(t *testing.T) {
	xs := input(9999)
	var want int64
	for _, v := range xs {
		want += v
	}
	var got int64
	if err := New(Config{ChunkSize: 256}).FromSlice(xs).ToSum(&got).Run(); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

// TestBuildErrors pins the builder's shape validation.
func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name string
		p    *Pipeline
	}{
		{"no source", New(Config{}).Map(func(v int64) int64 { return v })},
		{"no sink", New(Config{}).FromSlice([]int64{1})},
		{"empty", New(Config{})},
		{"two sources", New(Config{}).FromSlice([]int64{1}).FromSlice([]int64{2})},
		{"stage after sink", New(Config{}).FromSlice([]int64{1}).Discard().Map(func(v int64) int64 { return v })},
		{"two sinks", New(Config{}).FromSlice([]int64{1}).Discard().Discard()},
		{"bad topk", New(Config{}).FromSlice([]int64{1}).TopK(0).Discard()},
		{"bad fromfunc", New(Config{}).FromFunc(-1, func(int) int64 { return 0 }).Discard()},
	}
	for _, c := range cases {
		if err := c.p.Run(); err == nil {
			t.Errorf("%s: Run succeeded, want error", c.name)
		}
	}
}

// TestRunOnce pins the single-shot contract.
func TestRunOnce(t *testing.T) {
	var got []int64
	p := New(Config{}).FromSlice(input(100)).To(&got)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err != ErrAlreadyRan {
		t.Fatalf("second Run = %v, want ErrAlreadyRan", err)
	}
}

// TestStats sanity-checks the counters: chunk counts, element flow,
// and wall time.
func TestStats(t *testing.T) {
	const n, cs = 10000, 512
	xs := input(n)
	var got []int64
	p := New(Config{ChunkSize: cs, Opts: par.Options{Procs: 2}}).
		FromSlice(xs).Filter(func(v int64) bool { return v&1 == 0 }).To(&got)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	wantChunks := int64((n + cs - 1) / cs)
	if s.Chunks != wantChunks {
		t.Errorf("source chunks = %d, want %d", s.Chunks, wantChunks)
	}
	if s.SourceElems != n {
		t.Errorf("source elems = %d, want %d", s.SourceElems, n)
	}
	if s.SinkElems != int64(len(got)) {
		t.Errorf("sink elems = %d, want %d (collected)", s.SinkElems, len(got))
	}
	if s.Wall <= 0 {
		t.Errorf("wall = %v, want > 0", s.Wall)
	}
	if s.Throughput() <= 0 {
		t.Errorf("throughput = %v, want > 0", s.Throughput())
	}
	if len(s.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(s.Stages))
	}
	if s.Stages[1].Name != "filter" || s.Stages[1].Elems != n {
		t.Errorf("filter stage stats = %+v, want %d elems", s.Stages[1], n)
	}
}

// TestSteadyStateAllocsPerChunk is the acceptance pin for the
// zero-allocation chunk path: in the steady-traffic configuration
// (serial intra-chunk kernels, pooled scratch), processing more chunks
// must not allocate more — the marginal cost of a chunk is zero
// allocations. Measured as the difference between a long and a short
// run of the same pipeline shape, which cancels the O(stages) per-run
// setup (goroutines, queues, run bookkeeping).
func TestSteadyStateAllocsPerChunk(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("race instrumentation allocates")
	}
	const cs = 1024
	cfg := Config{ChunkSize: cs, QueueDepth: 2,
		Opts: par.Options{Procs: 4, SerialCutoff: cs}}
	mapF := func(v int64) int64 { return v*3 + 1 }
	pred := func(v int64) bool { return v&7 != 0 }
	hist := make([]int, 128)
	bucket := func(v int64) int { return int(uint64(v) % 128) }

	run := func(chunks int) func() {
		xs := input(cs * chunks)
		return func() {
			p := New(cfg).FromSlice(xs).Map(mapF).Filter(pred).RunningSum().
				ToHistogram(hist, bucket)
			if err := p.Run(); err != nil {
				t.Fatal(err)
			}
		}
	}
	short, long := run(16), run(64)
	short() // warm the scratch pool and executor
	long()
	a := testing.AllocsPerRun(10, short)
	b := testing.AllocsPerRun(10, long)
	perChunk := (b - a) / float64(64-16)
	t.Logf("allocs: %d-chunk run %.1f, %d-chunk run %.1f (%.3f allocs/chunk)", 16, a, 64, b, perChunk)
	// 0.05 tolerates at most one stray runtime-internal allocation per
	// ~50 chunks of measurement noise; a real per-chunk allocation
	// (closure frame, buffer, channel box) would read as >= 1.0.
	if perChunk > 0.05 {
		t.Errorf("steady-state chunk processing allocates %.3f allocs/chunk, want 0", perChunk)
	}
}

// TestSortStageSteadyAllocs extends the zero-marginal-allocation pin
// to the sort stage's run cascade: merge buffers come from the pool,
// so doubling the stream must not add per-chunk allocations. The
// tolerance is looser than the flowing-chunk test's because the
// cascade's largest run slabs are re-acquired by a fresh stage
// goroutine each run, which can land on a different scratch shard
// than the one the previous run's slabs were parked on (a bounded
// O(log chunks) per-run effect, not a per-chunk one).
func TestSortStageSteadyAllocs(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("race instrumentation allocates")
	}
	const cs = 1024
	cfg := Config{ChunkSize: cs, QueueDepth: 2,
		Opts: par.Options{Procs: 4, SerialCutoff: 1 << 30}}
	run := func(chunks int) func() {
		xs := input(cs * chunks)
		out := make([]int64, 0, len(xs))
		return func() {
			out = out[:0]
			p := New(cfg).FromSlice(xs).Sort().To(&out)
			if err := p.Run(); err != nil {
				t.Fatal(err)
			}
		}
	}
	short, long := run(16), run(32)
	short()
	long()
	long() // second warm pass: the merge cascade's largest runs
	a := testing.AllocsPerRun(10, short)
	b := testing.AllocsPerRun(10, long)
	perChunk := (b - a) / float64(32-16)
	t.Logf("sort allocs: 16-chunk %.1f, 32-chunk %.1f (%.3f allocs/chunk)", a, b, perChunk)
	if perChunk > 0.5 {
		t.Errorf("sort stage allocates %.3f allocs/chunk at steady state, want ~0", perChunk)
	}
}

// TestAdaptivePipelineDeterminism runs the same stream twice under a
// mid-exploration controller — different candidate schedules per
// chunk — and requires identical output, the pipeline extension of the
// difftest determinism contract.
func TestAdaptivePipelineDeterminism(t *testing.T) {
	xs := gen.Ints(20000, gen.Uniform, 7)
	ctl := exploring()
	runOnce := func() []int64 {
		var got []int64
		err := New(Config{ChunkSize: 701, Opts: par.Options{Procs: 4, Adaptive: ctl}}).
			FromSlice(xs).Map(func(v int64) int64 { return v >> 3 }).
			Filter(func(v int64) bool { return v&1 == 0 }).Sort().To(&got).Run()
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	first := runOnce()
	for round := 0; round < 3; round++ {
		eq64(t, fmt.Sprintf("adaptive round %d", round), runOnce(), first)
	}
}

// Package pipeline is the streaming dataflow runtime: a composable
// chain of stages (source → transforms → sink) that processes inputs
// in cache-sized chunks instead of fully materialized arrays, turning
// the repository's one-shot kernels into a sustained-traffic engine.
//
// Motivation. Every kernel layer so far — the par primitives, the
// sorts, selection, the graph sweeps — is a one-shot call on a whole
// input: a multi-stage workload (generate → filter → sort → histogram)
// pays a full barrier between stages, allocates a full-size
// intermediate per stage, and streams every intermediate through DRAM.
// The pipeline runtime fuses such chains: data flows between stages in
// chunks small enough to stay cache-resident, stages run concurrently
// (each on its own dedicated goroutine routed through the shared
// executor, the same discipline as the BSP virtual processors), and
// the only full-size materialization left is whatever the sink itself
// demands.
//
// Mechanics.
//
//   - Chunks: a chunk is a scratch-pooled []int64 of at most
//     Config.ChunkSize elements plus its scratch.Handle. Buffers are
//     recycled through internal/scratch, so steady-state chunk
//     processing allocates nothing — the generation stamps turn
//     ownership bugs into panics instead of corruption.
//   - Backpressure: stages are connected by bounded queues of
//     Config.QueueDepth chunks. A fast producer blocks on a full
//     queue; nothing in the pipeline buffers unboundedly (the sort and
//     top-k stages hold state proportional to their algorithmic needs,
//     which for sort is the stream itself).
//   - Shutdown: Close (or a sink error) cancels the run. Producers
//     never block on a dead consumer — every send selects against the
//     cancel channel — and every stage drains its input to release
//     in-flight chunk buffers back to the pool before exiting, so a
//     cancelled pipeline leaves no scratch bytes on loan and no
//     goroutine behind.
//   - Tuning: each stage runs its kernels under its own adaptive call
//     site (Config.Opts.Adaptive), so the tuning runtime learns each
//     stage's behavior under the pipeline's own induced load. Stages
//     that wrap kernels with internal sites (sort, top-k) pass the
//     controller through; the reentrancy guard in par.BeginAdaptive
//     keeps nested regions from recording.
//
// Stages wrap the existing kernels — Map/Filter via par.For and
// par.PackInto, Sort via psort plus a par.Merge run cascade,
// RunningSum via par.ScanInclusive with a carried prefix, TopK via
// psel.Select pruning, histogram/reduce sinks via par.HistogramInto
// and par.Reduce — so the pipeline inherits their schedules, scratch
// reuse and determinism; chunking changes timings, never results.
//
// Layering: pipeline consumes exec (stage goroutines and kernel
// dispatch), scratch (chunk buffers), par/psort/psel (intra-chunk
// kernels) and adapt (stage sites); it feeds core experiment E22,
// the serve runtime's long-request route, and the repro facade
// (NewPipeline).
package pipeline

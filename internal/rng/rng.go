package rng

import "math"

// golden is the odd approximation of 2^64/phi used by SplitMix64.
const golden = 0x9E3779B97F4A7C15

// Rand is a splittable SplitMix64 generator. The zero value is a valid
// generator seeded with 0; use New for an explicit seed.
type Rand struct {
	state uint64
	gamma uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: mix64(seed), gamma: mixGamma(seed + golden)}
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	if r.gamma == 0 {
		// Zero-value Rand: lazily adopt the default odd gamma.
		r.gamma = golden
	}
	r.state += r.gamma
	return mix64(r.state)
}

// Split returns a new generator whose stream is statistically independent
// of the receiver's. Both generators remain usable.
func (r *Rand) Split() *Rand {
	s := r.Uint64()
	g := mixGamma(r.Uint64())
	return &Rand{state: s, gamma: g}
}

// Int63 returns a non-negative random int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's
// multiply-shift rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Lemire rejection: compute high 64 bits of x*n with rejection on
	// the low word to remove modulo bias.
	thresh := -n % n
	for {
		x := r.Uint64()
		hi, lo := mul64(x, n)
		if lo >= thresh {
			return hi
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the
// Marsaglia polar method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponentially distributed variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle permutes n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// mix64 is the SplitMix64 finalizer (a bijection on uint64).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// mixGamma derives an odd gamma with enough bit transitions to be a good
// Weyl increment, per the SplitMix64 paper.
func mixGamma(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xFF51AFD7ED558CCD
	z = (z ^ (z >> 33)) * 0xC4CEB9FE1A85EC53
	z = (z ^ (z >> 33)) | 1
	if popcount(z^(z>>1)) < 24 {
		z ^= 0xAAAAAAAAAAAAAAAA
	}
	return z
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

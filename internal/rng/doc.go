// Package rng provides a small, fast, deterministic, splittable
// pseudo-random number generator for reproducible parallel experiments.
//
// Reproducibility is central to the algorithm-engineering loop: every
// workload in this repository is generated from an explicit seed, and
// parallel generators obtain statistically independent streams by
// splitting rather than by sharing (and locking) one generator.
//
// The core generator is SplitMix64 (Steele, Lea, Flood: "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014), which passes BigCrush,
// has a period of 2^64, and splits in O(1).
//
// Layering: rng is a leaf utility package; it feeds gen's
// workload generators, psort's splitter sampling, psel's pivot
// choice and adapt's exploration policy.
package rng

package rng

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values out of 1000", same)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r Rand
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-value Rand produced repeats: %d unique of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s := r.Split()
	// The two streams should not be identical prefixes of each other.
	var av, bv [64]uint64
	for i := range av {
		av[i] = r.Uint64()
		bv[i] = s.Uint64()
	}
	eq := 0
	for i := range av {
		if av[i] == bv[i] {
			eq++
		}
	}
	if eq > 2 {
		t.Fatalf("split streams look correlated: %d/64 equal values", eq)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 10, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(11)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(8); v >= 8 {
			t.Fatalf("Uint64n(8) = %d", v)
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared-ish sanity test over 10 buckets.
	r := New(5)
	const n, buckets = 100000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Uint64n(buckets)]++
	}
	exp := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-exp) > 5*math.Sqrt(exp) {
			t.Fatalf("bucket %d count %d too far from expectation %.0f", b, c, exp)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid element %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestMix64Bijective(t *testing.T) {
	// Property: mix64 is injective on a random sample (it is a bijection,
	// so no two distinct inputs may collide).
	seen := map[uint64]uint64{}
	r := New(29)
	for i := 0; i < 10000; i++ {
		x := r.Uint64()
		y := mix64(x)
		if prev, ok := seen[y]; ok && prev != x {
			t.Fatalf("mix64 collision: mix64(%d) == mix64(%d)", prev, x)
		}
		seen[y] = x
	}
}

func TestMulti64MatchesBits(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		whi, wlo := bits.Mul64(a, b)
		return hi == whi && lo == wlo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGammaAlwaysOdd(t *testing.T) {
	f := func(z uint64) bool { return mixGamma(z)&1 == 1 }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

package adapt

import "testing"

func TestVariantSweepCoversAllVariants(t *testing.T) {
	c := New(Config{Seed: 7})
	site := NewVariantSite("test.sweep", 3)
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		idx, tok := c.DecideVariant(site, 5, 0)
		if idx < 0 || idx >= 3 {
			t.Fatalf("variant index %d out of range", idx)
		}
		seen[idx] = true
		if !tok.Valid() {
			t.Fatalf("sweep decision %d returned no token", i)
		}
		c.Record(tok, 1e-3, 1000)
	}
	if len(seen) != 3 {
		t.Fatalf("first sweep hit %d/3 variants: %v", len(seen), seen)
	}
}

func TestVariantLearnsCheapest(t *testing.T) {
	c := New(Config{ConvergeAfter: 12, Seed: 3})
	site := NewVariantSite("test.learn", 3)
	// Variant 1 is 10x cheaper than the others; feed synthetic timings
	// until convergence and check the class locks onto it.
	cost := []float64{1e-2, 1e-3, 1e-2}
	for i := 0; i < 40; i++ {
		idx, tok := c.DecideVariant(site, 9, 0)
		c.Record(tok, cost[idx], 1000)
	}
	best, ok := c.BestVariant(site, 9)
	if !ok || best != 1 {
		t.Fatalf("BestVariant = %d, %v; want 1, true", best, ok)
	}
	if v := c.ClassVisits(site, 9); v < 3 {
		t.Fatalf("ClassVisits = %d, want >= 3", v)
	}
}

func TestVariantClassesIndependent(t *testing.T) {
	c := New(Config{ConvergeAfter: 9, Seed: 5})
	site := NewVariantSite("test.classes", 2)
	// Class 0 prefers variant 0, class 1 prefers variant 1.
	for i := 0; i < 30; i++ {
		for class := 0; class < 2; class++ {
			idx, tok := c.DecideVariant(site, class, 0)
			cost := 1e-3
			if idx != class {
				cost = 1e-2
			}
			c.Record(tok, cost, 1000)
		}
	}
	for class := 0; class < 2; class++ {
		if best, ok := c.BestVariant(site, class); !ok || best != class {
			t.Fatalf("class %d: BestVariant = %d, %v; want %d, true", class, best, ok, class)
		}
	}
}

func TestVariantHighLoadReturnsBestUntimed(t *testing.T) {
	c := New(Config{Seed: 2})
	site := NewVariantSite("test.load", 2)
	idx, tok := c.DecideVariant(site, 0, 0.99)
	if tok.Valid() {
		t.Fatal("high-load variant decision returned a timing token")
	}
	if idx != 0 {
		t.Fatalf("high-load decision = %d, want current best 0", idx)
	}
	if c.Stats().Degraded != 1 {
		t.Fatalf("Degraded = %d, want 1", c.Stats().Degraded)
	}
}

func TestVariantClassClamped(t *testing.T) {
	c := New(Config{Seed: 4})
	site := NewVariantSite("test.clamp", 2)
	for _, class := range []int{-5, 0, maxSizeClass, maxSizeClass + 40} {
		idx, tok := c.DecideVariant(site, class, 0)
		if idx < 0 || idx >= 2 {
			t.Fatalf("class %d: index %d out of range", class, idx)
		}
		c.Record(tok, 1e-3, 100)
	}
	if v := c.ClassVisits(site, -5); v == 0 {
		t.Fatal("negative class did not clamp to class 0")
	}
	if v := c.ClassVisits(site, maxSizeClass+40); v == 0 {
		t.Fatal("oversized class did not clamp to the top class")
	}
}

func TestNewVariantSitePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewVariantSite(0) did not panic")
		}
	}()
	NewVariantSite("test.zero", 0)
}

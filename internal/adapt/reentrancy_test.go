// Reentrancy guard tests: a kernel with its own adaptive sites (psel's
// count/pack phases, par.Merge) invoked inside another site's open
// measured region must neither record timings nor advance exploration —
// nested Begin/Measure must not corrupt the EWMA of the outer site, and
// the inner sites must not burn their deterministic sweep on timings
// that include the outer call's framing.
//
// The guard lives in par.BeginAdaptive (the returned Options carry a
// reentrancy mark), but its observable contract is the controller's:
// which (site, size-class) classes record visits. These tests pin that
// contract through the real kernel entry points, which is why they live
// in adapt's external test package.
package adapt_test

import (
	"testing"

	"repro/internal/adapt"
	"repro/internal/par"
	"repro/internal/psel"
)

// exploring returns a controller pinned mid-exploration so every
// non-nested call records (epsilon 1, never converges).
func exploring() *adapt.Controller {
	return adapt.New(adapt.Config{Epsilon: 1, ConvergeAfter: 1 << 30, Seed: 99})
}

func testInput(n int) []int64 {
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i*2654435761) % 9973
	}
	return xs
}

// TestNestedRegionRecordsOuterOnly: an inner primitive run with
// Adaptive restored inside an outer region must leave the inner site's
// class untouched while the outer site records one visit per call.
func TestNestedRegionRecordsOuterOnly(t *testing.T) {
	ctl := exploring()
	outer := adapt.NewSite("reentrancy.outer", adapt.KindWorkers)
	inner := adapt.NewSite("reentrancy.inner", adapt.KindWorkers)
	const n = 1 << 14
	xs := testInput(n)
	opts := par.Options{Procs: 4, SerialCutoff: 1, Adaptive: ctl}

	const calls = 6
	for i := 0; i < calls; i++ {
		tuned, m := par.BeginAdaptive(outer, n, opts)
		// The psel pattern: restore the controller so the nested
		// primitive's own site would tune if it were not nested.
		tuned.Adaptive = ctl
		tuned.Site = inner
		par.Sum(xs, tuned)
		m.Done()
	}
	if got := ctl.Visits(outer, n); got != calls {
		t.Errorf("outer site visits = %d, want %d", got, calls)
	}
	if got := ctl.Visits(inner, n); got != 0 {
		t.Errorf("inner site visits = %d inside outer region, want 0", got)
	}
}

// TestNestedSameSiteDoesNotDoubleCount: reentrant nesting on one site
// (a recursive kernel measuring itself) must record exactly the outer
// call, never the inner one — a same-class double Record would mix
// whole-call and inner-fragment timings into one EWMA.
func TestNestedSameSiteDoesNotDoubleCount(t *testing.T) {
	ctl := exploring()
	site := adapt.NewSite("reentrancy.same", adapt.KindWorkers)
	const n = 1 << 14
	xs := testInput(n)
	opts := par.Options{Procs: 4, SerialCutoff: 1, Adaptive: ctl}

	const calls = 5
	for i := 0; i < calls; i++ {
		tuned, m := par.BeginAdaptive(site, n, opts)
		tuned.Adaptive = ctl
		tuned.Site = site // same site, nested
		par.Sum(xs, tuned)
		m.Done()
	}
	if got := ctl.Visits(site, n); got != calls {
		t.Errorf("site visits = %d after %d nested same-site calls, want %d (no double count)",
			got, calls, calls)
	}
}

// TestPselAndMergeSitesQuietInsideRegion drives the two kernels the
// issue names — psel.Select (which deliberately keeps Adaptive set on
// its count/pack phases) and par.Merge — inside an open region and
// asserts neither makes a single controller decision there.
func TestPselAndMergeSitesQuietInsideRegion(t *testing.T) {
	ctl := exploring()
	outer := adapt.NewSite("reentrancy.stage", adapt.KindWorkers)
	const n = 1 << 14
	xs := testInput(n)
	a := testInput(n / 2)
	b := testInput(n / 2)
	// par.Merge needs sorted runs; build them cheaply.
	seqSorted := func(v []int64) []int64 {
		out := append([]int64(nil), v...)
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j] < out[j-1]; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out
	}
	as, bs := seqSorted(a[:512]), seqSorted(b[:512])
	dst := make([]int64, len(as)+len(bs))

	opts := par.Options{Procs: 4, SerialCutoff: 1, Adaptive: ctl}
	tuned, m := par.BeginAdaptive(outer, n, opts)
	tuned.Adaptive = ctl // pass the controller through, psel-style
	base := ctl.Stats().Decisions

	got := psel.Select(xs, n/2, tuned)
	par.Merge(dst, as, bs, tuned, func(x, y int64) bool { return x < y })
	m.Done()

	if d := ctl.Stats().Decisions - base; d != 0 {
		t.Errorf("inner kernels made %d controller decisions inside an open region, want 0", d)
	}
	if want := psel.SelectSeq(xs, n/2); got != want {
		t.Errorf("Select inside region = %d, want %d", got, want)
	}
	for i := 1; i < len(dst); i++ {
		if dst[i] < dst[i-1] {
			t.Fatalf("Merge inside region produced unsorted output at %d", i)
		}
	}
	if v := ctl.Visits(outer, n); v != 1 {
		t.Errorf("outer site visits = %d, want 1", v)
	}
}

// TestVisitsIntrospection pins the helper itself: unseen classes report
// zero, non-nested adaptive calls record.
func TestVisitsIntrospection(t *testing.T) {
	ctl := exploring()
	site := adapt.NewSite("reentrancy.visits", adapt.KindWorkers)
	if got := ctl.Visits(site, 1024); got != 0 {
		t.Fatalf("unseen class visits = %d, want 0", got)
	}
	const n = 1 << 14
	xs := testInput(n)
	opts := par.Options{Procs: 4, SerialCutoff: 1, Adaptive: ctl, Site: site}
	par.Sum(xs, opts)
	par.Sum(xs, opts)
	if got := ctl.Visits(site, n); got != 2 {
		t.Errorf("visits = %d after 2 recorded calls, want 2", got)
	}
	// A different size class is independent.
	if got := ctl.Visits(site, 8); got != 0 {
		t.Errorf("other size-class visits = %d, want 0", got)
	}
}

package adapt

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// cost is the synthetic per-element time oracle used by the
// convergence tests: one candidate is an order of magnitude faster
// than the rest, so the controller must find it.
func rangeCost(d Decision, bestGrain, bestPolicy int) float64 {
	if !d.Serial && d.Grain == bestGrain && d.Policy == bestPolicy {
		return 1e-9
	}
	return 1e-8
}

func TestConvergesToBestRangeCandidate(t *testing.T) {
	ctl := New(Config{Seed: 7})
	site := NewSite("test.range", KindRange)
	const n, p = 1 << 14, 8
	for i := 0; i < 200; i++ {
		d, tok := ctl.Decide(site, n, p, 0)
		if tok.Valid() {
			ctl.Record(tok, rangeCost(d, 4096, policyDynamic)*float64(n), n)
		}
	}
	if !ctl.Converged(site, n) {
		t.Fatalf("not converged after 200 recorded calls")
	}
	d, tok := ctl.Decide(site, n, p, 0)
	if tok.Valid() {
		t.Errorf("converged decision still wants measurement")
	}
	if d.Serial || d.Grain != 4096 || d.Policy != policyDynamic {
		t.Errorf("converged to %+v, want grain=4096 policy=dynamic", d)
	}
	if d.Procs != p {
		t.Errorf("converged Procs = %d, want %d", d.Procs, p)
	}
}

func TestConvergesToSerialWhenSerialWins(t *testing.T) {
	ctl := New(Config{Seed: 3})
	site := NewSite("test.workers", KindWorkers)
	const n, p = 512, 4
	for i := 0; i < 200; i++ {
		_, tok := ctl.Decide(site, n, p, 0)
		if !tok.Valid() {
			continue
		}
		// Serial is candidate 0; make it the only fast one.
		secs := 1e-8 * float64(n)
		if tok.cand == 0 {
			secs = 1e-9 * float64(n)
		}
		ctl.Record(tok, secs, n)
	}
	d, _ := ctl.Decide(site, n, p, 0)
	if !d.Serial || d.Procs != 1 {
		t.Errorf("converged to %+v, want serial", d)
	}
}

func TestLoadDegradation(t *testing.T) {
	ctl := New(Config{})
	site := NewSite("test.load", KindRange)
	const n, p = 1 << 16, 8

	// Saturated pool: serial, no token, counted as degraded.
	d, tok := ctl.Decide(site, n, p, 1.0)
	if !d.Degraded || !d.Serial || tok.Valid() {
		t.Errorf("load=1.0: got %+v valid=%v, want degraded serial unmeasured", d, tok.Valid())
	}
	// Moderate overshoot: fewer workers, widest grain, static policy.
	d, tok = ctl.Decide(site, n, p, 0.85)
	if !d.Degraded || tok.Valid() {
		t.Fatalf("load=0.85: got %+v valid=%v, want degraded unmeasured", d, tok.Valid())
	}
	if !d.Serial {
		if d.Procs >= p {
			t.Errorf("load=0.85: Procs = %d, want < %d", d.Procs, p)
		}
		if d.Grain != rangeGrains[len(rangeGrains)-1] || d.Policy != policyStatic {
			t.Errorf("load=0.85: got grain=%d policy=%d, want widest grain, static", d.Grain, d.Policy)
		}
	}
	// Load drops: the site re-expands to normal (measured) decisions.
	_, tok = ctl.Decide(site, n, p, 0.1)
	if !tok.Valid() {
		t.Errorf("low load after degradation should resume measured decisions")
	}
	if got := ctl.Stats().Degraded; got != 2 {
		t.Errorf("Stats.Degraded = %d, want 2", got)
	}
}

func TestSizeClassesLearnIndependently(t *testing.T) {
	ctl := New(Config{})
	site := NewSite("test.classes", KindWorkers)
	ctl.Decide(site, 100, 4, 0)
	ctl.Decide(site, 200_000, 4, 0)
	ctl.Decide(site, 100, 4, 0) // same class as the first
	st := ctl.Stats()
	if st.Sites != 1 || st.Classes != 2 {
		t.Errorf("Stats = %+v, want 1 site, 2 classes", st)
	}
}

func TestSiteForPCIsStable(t *testing.T) {
	a := SiteForPC(0x1234)
	b := SiteForPC(0x1234)
	c := SiteForPC(0x5678)
	if a != b {
		t.Errorf("same pc produced distinct sites")
	}
	if a == c {
		t.Errorf("distinct pcs shared a site")
	}
	if a.Kind() != KindRange {
		t.Errorf("pc site kind = %v, want KindRange", a.Kind())
	}
}

// TestWorkerLatticeDedupesSmallP pins the small-p collapse: at p=2
// every worker share clamps to 2 workers, so only serial and one
// parallel candidate should stay active (measuring three copies of the
// same configuration would waste the exploration budget).
func TestWorkerLatticeDedupesSmallP(t *testing.T) {
	ctl := New(Config{})
	site := NewSite("test.dedup", KindWorkers)
	cs := ctl.class(site, 1<<12, 2)
	if len(cs.active) != 2 || cs.active[0] != 0 {
		t.Fatalf("active candidates at p=2 = %v, want [0 1]", cs.active)
	}
	// At p=8 all shares are distinct (8, 4, 2 workers).
	cs = ctl.class(NewSite("test.dedup8", KindWorkers), 1<<12, 8)
	if len(cs.active) != 4 {
		t.Fatalf("active candidates at p=8 = %v, want all four", cs.active)
	}
	// Inactive duplicate slots must never win the argmin.
	for i, e := range ctl.class(site, 1<<12, 2).ewma {
		active := i == 0 || i == 1
		if active == math.IsInf(e, 1) {
			t.Fatalf("ewma[%d] = %v, active=%v", i, e, active)
		}
	}
}

// TestConcurrentSiteCreation hammers first-sight site registration
// from many goroutines: the cache's lock-free read path must never
// observe a slice element being written (run under -race).
func TestConcurrentSiteCreation(t *testing.T) {
	ctl := New(Config{})
	sites := make([]*Site, 16)
	for i := range sites {
		sites[i] = NewSite(fmt.Sprintf("test.concurrent-create.%d", i), KindRange)
	}
	var start, wg sync.WaitGroup
	start.Add(1)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			start.Wait()
			for i := 0; i < 200; i++ {
				s := sites[(g+i)%len(sites)]
				d, tok := ctl.Decide(s, 1<<(8+i%6), 4, 0)
				if tok.Valid() {
					ctl.Record(tok, rangeCost(d, 1024, policyStatic)*1024, 1024)
				}
			}
		}(g)
	}
	start.Done()
	wg.Wait()
	if st := ctl.Stats(); st.Sites != int64(len(sites)) {
		t.Fatalf("Sites = %d, want %d", st.Sites, len(sites))
	}
}

func TestConcurrentDecideRecord(t *testing.T) {
	ctl := New(Config{})
	site := NewSite("test.concurrent", KindRange)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 1 << (10 + g%4)
			for i := 0; i < 500; i++ {
				d, tok := ctl.Decide(site, n, 8, 0)
				if tok.Valid() {
					ctl.Record(tok, rangeCost(d, 1024, policyStatic)*float64(n), n)
				}
			}
		}(g)
	}
	wg.Wait()
	st := ctl.Stats()
	if st.Decisions != 8*500 {
		t.Errorf("Decisions = %d, want %d", st.Decisions, 8*500)
	}
	if st.Classes != 4 {
		t.Errorf("Classes = %d, want 4", st.Classes)
	}
}

func TestPriorPrefersSerialForTinyInputs(t *testing.T) {
	// With the default prior, a 100-element loop should be seeded
	// serial: the barrier dwarfs the work.
	pr := defaultPrior()
	serial := pr.predict(KindWorkers, 0, 100, 8)
	full := pr.predict(KindWorkers, 1, 100, 8)
	if serial >= full {
		t.Errorf("prior: serial %.3g >= parallel %.3g for n=100", serial, full)
	}
	// And a 16M-element loop should be seeded parallel.
	serial = pr.predict(KindWorkers, 0, 1<<24, 8)
	full = pr.predict(KindWorkers, 1, 1<<24, 8)
	if full >= serial {
		t.Errorf("prior: parallel %.3g >= serial %.3g for n=1<<24", full, serial)
	}
}

func TestCandidateDecisionEdges(t *testing.T) {
	// p == 1 collapses every candidate to serial.
	for idx := 0; idx < latticeSize(KindRange); idx++ {
		if d := candidateDecision(KindRange, idx, 1000, 1); !d.Serial {
			t.Fatalf("candidate %d with p=1 not serial: %+v", idx, d)
		}
	}
	// Worker shares never drop below 2 workers on the parallel side.
	for idx := 1; idx < latticeSize(KindWorkers); idx++ {
		if d := candidateDecision(KindWorkers, idx, 1000, 2); d.Procs < 2 {
			t.Fatalf("candidate %d: procs %d < 2", idx, d.Procs)
		}
	}
}

func TestBestReflectsRecordedFeedback(t *testing.T) {
	ctl := New(Config{Seed: 11})
	site := NewSite("test.best", KindWorkers)
	const n, p = 1 << 13, 8
	if _, ok := ctl.Best(site, n, p); ok {
		t.Fatalf("Best ok before any Decide")
	}
	for i := 0; i < 100; i++ {
		_, tok := ctl.Decide(site, n, p, 0)
		if !tok.Valid() {
			continue
		}
		secs := 1e-8 * float64(n)
		if int(tok.cand) == 1 { // full parallelism candidate
			secs = 1e-9 * float64(n)
		}
		ctl.Record(tok, secs, n)
	}
	d, ok := ctl.Best(site, n, p)
	if !ok || d.Serial || d.Procs != p {
		t.Errorf("Best = %+v ok=%v, want full-parallelism candidate", d, ok)
	}
}

package adapt

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/machine"
	"repro/internal/rng"
)

// Kind classifies the shape of parallel loop a site tunes, which
// selects its candidate lattice.
type Kind uint8

const (
	// KindRange tunes a scheduled loop (par.ForRange / par.For):
	// candidates are (grain, policy) pairs plus the serial fallback.
	KindRange Kind = iota
	// KindWorkers tunes a blocked fork/join kernel (par.ForWorkers
	// callers such as scan, pack, histogram, the sorts): candidates are
	// worker-count shares of the requested parallelism plus serial.
	KindWorkers
	// KindVariant selects among whole algorithm variants of one kernel
	// (sample sort vs radix sort vs counting sort): candidates are the
	// variants themselves, declared per site with NewVariantSite, and
	// the class index is a caller-supplied input feature (key width,
	// size bucket) instead of the length's size class. Variant sites
	// are consulted through DecideVariant, not Decide — algorithm
	// choice is orthogonal to parallelism, so it applies even at p=1.
	KindVariant
)

// Site names one adaptive call site. Sites are cheap, immutable
// identities; the per-controller state they key lives in the
// controller's cache. Declare one per kernel call site as a package
// variable, or let par derive one from the program counter.
type Site struct {
	name     string
	kind     Kind
	id       uint32
	variants int // candidate count of a KindVariant site; 0 otherwise
}

// siteIDs allocates process-global site identities so any controller
// can index its cache by them.
var siteIDs atomic.Uint32

// NewSite declares an adaptive call site with a stable name (used in
// stats and tests) and lattice kind.
func NewSite(name string, kind Kind) *Site {
	return &Site{name: name, kind: kind, id: siteIDs.Add(1) - 1}
}

// Name returns the site's declared name.
func (s *Site) Name() string { return s.name }

// Kind returns the site's lattice kind.
func (s *Site) Kind() Kind { return s.kind }

// PC-derived sites are process-global: a program counter is a global
// identity, so two controllers observing the same loop share the Site
// (but not the learned state, which is per-controller).
var (
	pcMu    sync.RWMutex
	pcSites = map[uintptr]*Site{}
)

// SiteForPC returns the (KindRange) site for a loop identified by its
// caller's program counter, creating it on first sight. The read path
// is lock-shared and allocation-free, so it is safe on kernel fast
// paths.
func SiteForPC(pc uintptr) *Site {
	pcMu.RLock()
	s := pcSites[pc]
	pcMu.RUnlock()
	if s != nil {
		return s
	}
	pcMu.Lock()
	defer pcMu.Unlock()
	if s = pcSites[pc]; s == nil {
		name := fmt.Sprintf("pc:%#x", pc)
		if fn := runtime.FuncForPC(pc); fn != nil {
			file, line := fn.FileLine(pc)
			_ = file
			name = fmt.Sprintf("%s:%d", fn.Name(), line)
		}
		s = NewSite(name, KindRange)
		pcSites[pc] = s
	}
	return s
}

// Decision is the controller's answer for one call: either run serial,
// or run parallel with the given worker count and (for KindRange
// sites) grain and schedule policy.
type Decision struct {
	// Serial requests the sequential path (Procs is 1).
	Serial bool
	// Procs is the worker count to run with.
	Procs int
	// Grain is the chunk/leaf size to use; 0 means leave the caller's
	// configured grain untouched (KindWorkers lattices do not tune it).
	Grain int
	// Policy is the schedule, as an index into par.Policies order
	// (0 static, 1 cyclic, 2 dynamic, 3 guided); -1 means leave the
	// caller's configured policy untouched.
	Policy int
	// Explore marks an exploration pick (a non-greedy candidate).
	Explore bool
	// Degraded marks a load-shedding decision (high executor
	// occupancy); degraded calls are not measured.
	Degraded bool
}

// Token links a measured call back to the (site, size-class, candidate)
// it must credit. The zero Token is inert: converged and degraded
// decisions return it, and Record ignores it.
type Token struct {
	cs   *classState
	cand int32
}

// Valid reports whether the decision wants a timing fed back through
// Record.
func (t Token) Valid() bool { return t.cs != nil }

// Config tunes a Controller. The zero value selects the defaults
// documented on each field.
type Config struct {
	// Epsilon is the initial exploration probability after the first
	// full sweep of the lattice; it decays linearly to zero at
	// ConvergeAfter recorded calls. Default 0.2. Set it to 1 (with a
	// huge ConvergeAfter) to explore forever, which is what the
	// differential tests do to exercise mid-exploration behavior.
	Epsilon float64
	// ConvergeAfter is the number of recorded calls per
	// (site, size-class) after which the class switches to pure
	// exploitation (no more exploration, no more timing). Default 48.
	ConvergeAfter int
	// HighLoad is the executor occupancy at or above which decisions
	// degrade toward serial instead of consulting the lattice.
	// Default 0.75.
	HighLoad float64
	// Seed makes exploration reproducible. Default 1.
	Seed uint64
}

func (c Config) epsilon() float64 {
	if c.Epsilon > 0 {
		return c.Epsilon
	}
	return 0.2
}

func (c Config) convergeAfter() int {
	if c.ConvergeAfter > 0 {
		return c.ConvergeAfter
	}
	return 48
}

func (c Config) highLoad() float64 {
	if c.HighLoad > 0 {
		return c.HighLoad
	}
	return 0.75
}

func (c Config) seed() uint64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return 1
}

// maxSizeClass bounds the size-class index (bits.Len of the length).
const maxSizeClass = 63

// sizeClass buckets n into its power-of-two magnitude.
func sizeClass(n int) int {
	c := bits.Len(uint(n))
	if c > maxSizeClass {
		c = maxSizeClass
	}
	return c
}

// siteEntry is one site's per-controller cache row: a lazily filled
// slot per size class.
type siteEntry struct {
	classes [maxSizeClass + 1]atomic.Pointer[classState]
}

// classState is the learned state of one (site, size-class): the
// per-candidate cost estimates and the exploration bookkeeping.
type classState struct {
	kind Kind

	mu     sync.Mutex
	rnd    *rng.Rand
	picks  int32     // decisions handed out (sweep + epsilon schedule)
	visits int32     // measurements recorded (drives convergence)
	ewma   []float64 // estimated seconds per element, per candidate
	trials []int32   // recorded measurements per candidate
	// active lists the candidate indices distinct at this class's
	// creation-time p (duplicate worker shares collapse); inactive
	// slots hold +Inf estimates so they can never win the argmin.
	active []int32

	bestIdx   atomic.Int32
	converged atomic.Bool
}

// Controller owns one adaptive tuning cache. It is safe for concurrent
// use by any number of goroutines; the converged read path is
// lock-free and allocation-free.
type Controller struct {
	cfg   Config
	prior atomic.Pointer[Prior]

	mu      sync.Mutex // guards entries growth
	entries atomic.Pointer[[]*siteEntry]

	sites        atomic.Int64
	classes      atomic.Int64
	decisions    atomic.Int64
	explorations atomic.Int64
	degraded     atomic.Int64
	converged    atomic.Int64
}

// New creates a controller with the given configuration.
func New(cfg Config) *Controller {
	c := &Controller{cfg: cfg}
	p := defaultPrior()
	c.prior.Store(&p)
	return c
}

var (
	defaultOnce sync.Once
	defaultCtl  *Controller
)

// Default returns the process-wide shared controller that
// par.Options.Adaptive users get from repro.Adaptive() and
// cmd/parbench -adapt=on.
func Default() *Controller {
	defaultOnce.Do(func() { defaultCtl = New(Config{}) })
	return defaultCtl
}

// Prior is the cost-model seed mapping abstract machine parameters to
// wall-clock guesses: secPerOp for one element of work, secPerWord for
// one word moved, secPerBarrier for one fork/join or superstep
// barrier. It plays the role core.Calibration plays offline.
type Prior struct {
	SecPerOp      float64
	SecPerWord    float64
	SecPerBarrier float64
}

// defaultPrior is a deliberately rough modern-CPU guess; it only
// shapes the first few decisions, after which measurements take over.
func defaultPrior() Prior {
	return Prior{SecPerOp: 1e-9, SecPerWord: 5e-10, SecPerBarrier: 2e-6}
}

// SetPrior replaces the cost-model seed with a fitted one: secPerOp
// from a calibration's A coefficient and the communication/barrier
// terms from the BSP parameters it implies (core.Calibration.BSPParams
// produces exactly this pair). Classes created before SetPrior keep
// their old seeds; measured feedback erases the difference either way.
func (c *Controller) SetPrior(secPerOp float64, bsp machine.BSPParams) {
	if secPerOp <= 0 {
		return
	}
	p := Prior{
		SecPerOp:      secPerOp,
		SecPerWord:    bsp.G * secPerOp,
		SecPerBarrier: bsp.L * secPerOp,
	}
	if p.SecPerWord <= 0 {
		p.SecPerWord = defaultPrior().SecPerWord
	}
	if p.SecPerBarrier <= 0 {
		p.SecPerBarrier = defaultPrior().SecPerBarrier
	}
	c.prior.Store(&p)
}

// Stats is a snapshot of a controller's counters.
type Stats struct {
	// Sites is the number of distinct call sites seen.
	Sites int64
	// Classes is the number of (site, size-class) cache entries.
	Classes int64
	// Decisions counts all Decide calls.
	Decisions int64
	// Explorations counts non-greedy candidate picks (including the
	// initial deterministic sweep).
	Explorations int64
	// Degraded counts load-shedding decisions.
	Degraded int64
	// Converged is the number of classes in pure exploitation.
	Converged int64
}

// Stats returns a snapshot of the controller's counters.
func (c *Controller) Stats() Stats {
	return Stats{
		Sites:        c.sites.Load(),
		Classes:      c.classes.Load(),
		Decisions:    c.decisions.Load(),
		Explorations: c.explorations.Load(),
		Degraded:     c.degraded.Load(),
		Converged:    c.converged.Load(),
	}
}

// Decide picks the parameters for one call of n elements at site,
// requested with p workers, under the given executor occupancy. It
// returns the decision and, when the call should be timed, a Token to
// pass to Record with the measured duration. n and p must be >= 1.
func (c *Controller) Decide(site *Site, n, p int, load float64) (Decision, Token) {
	c.decisions.Add(1)
	cs := c.class(site, n, p)
	if load >= c.cfg.highLoad() {
		c.degraded.Add(1)
		return c.degrade(site.kind, n, p, load), Token{}
	}
	if cs.converged.Load() {
		return candidateDecision(site.kind, int(cs.bestIdx.Load()), n, p), Token{}
	}
	cs.mu.Lock()
	idx, explore := cs.pick(c.cfg)
	cs.mu.Unlock()
	if explore {
		c.explorations.Add(1)
	}
	d := candidateDecision(site.kind, idx, n, p)
	d.Explore = explore
	return d, Token{cs: cs, cand: int32(idx)}
}

// pick chooses a candidate index under cs.mu: first one deterministic
// sweep through the active lattice, then epsilon-greedy with a
// linearly decaying epsilon.
func (cs *classState) pick(cfg Config) (idx int, explore bool) {
	k := len(cs.active)
	v := int(cs.picks)
	cs.picks++
	if v < k {
		return int(cs.active[v]), true
	}
	eps := cfg.epsilon() * (1 - float64(v)/float64(cfg.convergeAfter()))
	if eps > 0 && cs.rnd.Float64() < eps {
		return int(cs.active[cs.rnd.Intn(k)]), true
	}
	return int(cs.bestIdx.Load()), false
}

// ewmaAlpha weights a new measurement against the running estimate.
const ewmaAlpha = 0.3

// Record feeds the measured wall-clock seconds of a call of n elements
// back into the candidate the token names. Zero tokens (converged or
// degraded decisions) and degenerate measurements are ignored.
func (c *Controller) Record(tok Token, seconds float64, n int) {
	cs := tok.cs
	if cs == nil || n <= 0 || seconds <= 0 {
		return
	}
	perElem := seconds / float64(n)
	cs.mu.Lock()
	i := tok.cand
	cs.trials[i]++
	if cs.trials[i] == 1 {
		// First real measurement replaces the model's guess outright.
		cs.ewma[i] = perElem
	} else {
		cs.ewma[i] += ewmaAlpha * (perElem - cs.ewma[i])
	}
	best := 0
	for j := 1; j < len(cs.ewma); j++ {
		if cs.ewma[j] < cs.ewma[best] {
			best = j
		}
	}
	cs.bestIdx.Store(int32(best))
	cs.visits++
	if int(cs.visits) >= c.cfg.convergeAfter() && !cs.converged.Load() {
		cs.converged.Store(true)
		c.converged.Add(1)
	}
	cs.mu.Unlock()
}

// Converged reports whether the (site, size-class) for inputs of
// length n has reached pure exploitation (for tests and callers that
// want to pre-warm).
func (c *Controller) Converged(site *Site, n int) bool {
	es := c.entries.Load()
	if es == nil || int(site.id) >= len(*es) {
		return false
	}
	e := (*es)[site.id]
	if e == nil {
		return false
	}
	cs := e.classes[sizeClass(n)].Load()
	return cs != nil && cs.converged.Load()
}

// Visits returns the number of measurements recorded for the
// (site, size-class) of inputs of length n — 0 when the class has
// never been seen. It is the introspection hook the reentrancy-guard
// and convergence tests use to assert exactly which sites learned
// from a call.
func (c *Controller) Visits(site *Site, n int) int {
	es := c.entries.Load()
	if es == nil || int(site.id) >= len(*es) {
		return 0
	}
	e := (*es)[site.id]
	if e == nil {
		return 0
	}
	cs := e.classes[sizeClass(n)].Load()
	if cs == nil {
		return 0
	}
	cs.mu.Lock()
	v := int(cs.visits)
	cs.mu.Unlock()
	return v
}

// Best returns the converged (or current best) decision for inputs of
// length n at site with p requested workers, without counting as a
// decision; ok is false when the class has never been seen.
func (c *Controller) Best(site *Site, n, p int) (Decision, bool) {
	es := c.entries.Load()
	if es == nil || int(site.id) >= len(*es) {
		return Decision{}, false
	}
	e := (*es)[site.id]
	if e == nil {
		return Decision{}, false
	}
	cs := e.classes[sizeClass(n)].Load()
	if cs == nil {
		return Decision{}, false
	}
	return candidateDecision(site.kind, int(cs.bestIdx.Load()), n, p), true
}

// class returns the (site, size-class) state, creating it on first
// sight.
func (c *Controller) class(site *Site, n, p int) *classState {
	return c.classAt(site, sizeClass(n), n, p)
}

// classAt returns the (site, class) state for an explicit class index,
// creating it on first sight. The hit path is two atomic loads and two
// bounds checks.
func (c *Controller) classAt(site *Site, sc, n, p int) *classState {
	if es := c.entries.Load(); es != nil && int(site.id) < len(*es) {
		if e := (*es)[site.id]; e != nil {
			if cs := e.classes[sc].Load(); cs != nil {
				return cs
			}
		}
	}
	return c.makeClass(site, sc, n, p)
}

func (c *Controller) makeClass(site *Site, sc, n, p int) *classState {
	c.mu.Lock()
	defer c.mu.Unlock()
	var cur []*siteEntry
	if es := c.entries.Load(); es != nil {
		cur = *es
	}
	var e *siteEntry
	if int(site.id) < len(cur) {
		e = cur[site.id]
	}
	if e == nil {
		// Publish a fresh slice rather than writing the shared one in
		// place: class() reads the published slice lock-free, so an
		// element must never change after its slice is visible.
		grown := make([]*siteEntry, max(len(cur), int(site.id)+1))
		copy(grown, cur)
		e = &siteEntry{}
		grown[site.id] = e
		c.entries.Store(&grown)
		c.sites.Add(1)
	}
	if cs := e.classes[sc].Load(); cs != nil {
		return cs
	}
	cs := c.newClassState(site, sc, n, p)
	e.classes[sc].Store(cs)
	c.classes.Add(1)
	return cs
}

// newClassState seeds a class's candidate estimates from the machine
// model prior at the class's representative size.
func (c *Controller) newClassState(site *Site, sc, n, p int) *classState {
	k := site.latticeSize()
	cs := &classState{
		kind:   site.kind,
		rnd:    rng.New(c.cfg.seed() ^ uint64(site.id)*0x9E3779B97F4A7C15 ^ uint64(sc)<<32),
		ewma:   make([]float64, k),
		trials: make([]int32, k),
		active: site.activeCandidates(p),
	}
	pr := *c.prior.Load()
	rep := classRep(sc)
	for i := range cs.ewma {
		cs.ewma[i] = math.Inf(1)
	}
	best := int(cs.active[0])
	for _, i := range cs.active {
		cs.ewma[i] = pr.predict(site.kind, int(i), rep, p)
		if cs.ewma[i] < cs.ewma[best] {
			best = int(i)
		}
	}
	cs.bestIdx.Store(int32(best))
	return cs
}

// classRep is the representative length of a size class (its geometric
// midpoint), used to evaluate the prior.
func classRep(sc int) int {
	if sc <= 1 {
		return 1
	}
	return 3 << (sc - 2) // 1.5 * 2^(sc-1)
}

// degrade is the load-shedding rule: shrink the worker count in
// proportion to the occupancy overshoot above HighLoad, pin the widest
// grain and the cheapest schedule, and fall back to serial entirely
// once the pool is saturated. Degraded decisions carry no token: a
// timing taken on a busy pool measures the load, not the candidate.
func (c *Controller) degrade(kind Kind, n, p int, load float64) Decision {
	hl := c.cfg.highLoad()
	excess := (load - hl) / (1 - hl)
	if excess > 1 {
		excess = 1
	}
	eff := int(float64(p) * (1 - excess))
	if eff <= 1 {
		return Decision{Serial: true, Procs: 1, Policy: -1, Degraded: true}
	}
	d := Decision{Procs: eff, Policy: -1, Degraded: true}
	if kind == KindRange {
		d.Grain = rangeGrains[len(rangeGrains)-1]
		d.Policy = policyStatic
	}
	return d
}

package adapt

import "math"

// The candidate lattices. Candidate 0 is always the serial fallback —
// the learned serial cutoff is simply "the size classes where serial
// wins". The remaining candidates enumerate the parameters the offline
// sweeps (core.TuneGrain, core.TunePolicy) enumerate by hand.

// rangeGrains are the grain candidates of the KindRange lattice,
// straddling par.DefaultGrain by two powers of four.
var rangeGrains = []int{256, 1024, 4096, 16384}

// Schedule policy indices, mirroring the declaration order of
// par.Policies (par cannot be imported here — it imports adapt — so
// the contract is pinned by TestPolicyOrderMatchesPar in par).
const (
	policyStatic  = 0
	policyCyclic  = 1
	policyDynamic = 2
	policyGuided  = 3
	numPolicies   = 4
)

// workerShares are the divisors of the requested worker count tried by
// the KindWorkers lattice (full, half, quarter parallelism).
var workerShares = []int{1, 2, 4}

// latticeSize returns the candidate count for a lattice kind.
func latticeSize(kind Kind) int {
	if kind == KindWorkers {
		return 1 + len(workerShares)
	}
	return 1 + len(rangeGrains)*numPolicies
}

// latticeSize returns the site's candidate count: the per-site variant
// count for KindVariant sites, the kind's fixed lattice otherwise.
func (s *Site) latticeSize() int {
	if s.kind == KindVariant {
		return s.variants
	}
	return latticeSize(s.kind)
}

// activeCandidates lists the site's candidate indices worth learning
// for a class created with p requested workers. Every variant of a
// KindVariant site is always active: variants are whole algorithms
// (each with its own serial fallback), so none collapses with p.
func (s *Site) activeCandidates(p int) []int32 {
	if s.kind == KindVariant {
		out := make([]int32, s.variants)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	return activeCandidates(s.kind, p)
}

// activeCandidates lists the lattice indices worth learning for a
// class created with p requested workers. Range candidates are always
// distinct; worker shares collapse when p is small (at p=2 every share
// clamps to 2 workers), and measuring three copies of the same
// configuration would waste the exploration budget, so only the first
// index per effective worker count stays active. p may drift across
// later calls to the same class; the dedup set keyed on the creation-
// time p stays — shares that collapse at one p collapse at nearby ones.
func activeCandidates(kind Kind, p int) []int32 {
	k := latticeSize(kind)
	if kind != KindWorkers {
		out := make([]int32, k)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	out := []int32{0}
	seen := map[int]bool{}
	for i := 1; i < k; i++ {
		w := p / workerShares[i-1]
		if w < 2 {
			w = 2
		}
		if !seen[w] {
			seen[w] = true
			out = append(out, int32(i))
		}
	}
	return out
}

// candidateDecision materializes lattice candidate idx for a call of n
// elements with p requested workers.
func candidateDecision(kind Kind, idx, n, p int) Decision {
	if idx <= 0 || p <= 1 {
		return Decision{Serial: true, Procs: 1, Grain: 0, Policy: -1}
	}
	if kind == KindWorkers {
		w := p / workerShares[idx-1]
		if w < 2 {
			w = 2
		}
		return Decision{Procs: w, Policy: -1}
	}
	i := idx - 1
	return Decision{Procs: p, Grain: rangeGrains[i/numPolicies], Policy: i % numPolicies}
}

// predict evaluates the machine-model prior for one candidate at a
// representative input length. The formulas are the standard
// decomposition — per-element work, amortized fork/join barrier, and
// per-chunk scheduling overhead — expressed in seconds per element so
// estimates are comparable across the sizes sharing a class. They are
// priors, not truths: the first measurement of a candidate replaces
// them outright.
func (pr Prior) predict(kind Kind, idx, n, p int) float64 {
	if n < 1 {
		n = 1
	}
	if kind == KindVariant {
		// Variants share one prior: the model has no opinion between
		// algorithms, so the deterministic sweep and the EWMA argmin
		// decide from measurements alone.
		return pr.SecPerOp
	}
	if idx <= 0 {
		return pr.SecPerOp // serial: no barrier, no chunks
	}
	fn := float64(n)
	if kind == KindWorkers {
		w := p / workerShares[idx-1]
		if w < 2 {
			w = 2
		}
		fw := float64(w)
		// Blocked kernel: parallel sweep + fork/join + sequential
		// combine of the w partials.
		return pr.SecPerOp/fw + (pr.SecPerBarrier+pr.SecPerOp*fw)/fn
	}
	i := idx - 1
	grain := float64(rangeGrains[i/numPolicies])
	pol := i % numPolicies
	fp := float64(p)
	chunks := 1.0
	perChunk := 0.0
	switch pol {
	case policyStatic:
		chunks = fp
		perChunk = 20 * pr.SecPerOp
	case policyCyclic:
		chunks = fn / grain
		// Round-robin dealing: no atomics, but strided traversal costs
		// locality — charge a word per chunk boundary.
		perChunk = 20*pr.SecPerOp + 2*pr.SecPerWord*grain
	case policyDynamic:
		chunks = fn / grain
		perChunk = 40 * pr.SecPerOp // shared-cursor atomic per chunk
	case policyGuided:
		// Exponentially shrinking chunks: ~2p log(n/(2p·grain)) grabs
		// before the floor, then grain-sized chunks.
		c := 2 * fp * math.Log2(math.Max(2, fn/(2*fp*grain)))
		if flo := fn / grain; c > flo {
			c = flo
		}
		chunks = c + fp
		perChunk = 50 * pr.SecPerOp // CAS loop per grab
	}
	if chunks < 1 {
		chunks = 1
	}
	return pr.SecPerOp/fp + (pr.SecPerBarrier+chunks*perChunk)/fn
}

package adapt

import "fmt"

// Algorithm-variant sites: the lattice dimension the kernel registry
// adds on top of grain/policy/workers tuning. A variant site's
// candidates are whole algorithm implementations of one kernel
// (sample sort vs radix sort vs counting sort); its class index is a
// caller-supplied input feature (key width × size bucket) rather than
// the input length's size class, because which algorithm wins depends
// on the distribution of the data, not just its volume. Variant
// decisions are consulted even at p=1 — a counting sort beats a
// comparison sort on narrow keys with or without parallelism.

// NewVariantSite declares an adaptive site whose candidates are the
// variants of one kernel. variants must be >= 1; index 0 is the
// kernel's general-purpose default, the one a caller without a
// controller gets.
func NewVariantSite(name string, variants int) *Site {
	if variants < 1 {
		panic(fmt.Sprintf("adapt: NewVariantSite(%q, %d): need at least one variant", name, variants))
	}
	return &Site{name: name, kind: KindVariant, id: siteIDs.Add(1) - 1, variants: variants}
}

// Variants returns the candidate count of a variant site (0 for sites
// of other kinds).
func (s *Site) Variants() int { return s.variants }

// clampClass bounds a caller-supplied feature class to the cache's
// class range.
func clampClass(class int) int {
	if class < 0 {
		return 0
	}
	if class > maxSizeClass {
		return maxSizeClass
	}
	return class
}

// DecideVariant picks which algorithm variant to run for one call at a
// variant site. class is the caller's input-feature index (clamped to
// [0, 63]); load is the executor occupancy. It returns the variant
// index and, when the call should be timed, a Token to pass to Record
// with the measured duration — the same sweep / epsilon-greedy / EWMA
// machinery Decide uses, applied to algorithms instead of schedules.
// Under high load it returns the current best untimed: a timing taken
// on a busy pool measures the load, not the algorithm.
func (c *Controller) DecideVariant(site *Site, class int, load float64) (int, Token) {
	c.decisions.Add(1)
	sc := clampClass(class)
	cs := c.classAt(site, sc, classRep(sc), 1)
	if load >= c.cfg.highLoad() {
		c.degraded.Add(1)
		return int(cs.bestIdx.Load()), Token{}
	}
	if cs.converged.Load() {
		return int(cs.bestIdx.Load()), Token{}
	}
	cs.mu.Lock()
	idx, explore := cs.pick(c.cfg)
	cs.mu.Unlock()
	if explore {
		c.explorations.Add(1)
	}
	return idx, Token{cs: cs, cand: int32(idx)}
}

// BestVariant returns the current best variant index for a feature
// class without counting as a decision; ok is false when the class has
// never been seen.
func (c *Controller) BestVariant(site *Site, class int) (int, bool) {
	cs := c.peekClass(site, clampClass(class))
	if cs == nil {
		return 0, false
	}
	return int(cs.bestIdx.Load()), true
}

// ClassVisits returns the number of measurements recorded for an
// explicit (site, class) pair — the introspection hook variant-site
// tests use, mirroring Visits for length-classed sites.
func (c *Controller) ClassVisits(site *Site, class int) int {
	cs := c.peekClass(site, clampClass(class))
	if cs == nil {
		return 0
	}
	cs.mu.Lock()
	v := int(cs.visits)
	cs.mu.Unlock()
	return v
}

// peekClass returns the (site, class) state without creating it.
func (c *Controller) peekClass(site *Site, sc int) *classState {
	es := c.entries.Load()
	if es == nil || int(site.id) >= len(*es) {
		return nil
	}
	e := (*es)[site.id]
	if e == nil {
		return nil
	}
	return e.classes[sc].Load()
}

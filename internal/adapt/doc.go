// Package adapt is the online load-aware tuning runtime: a
// per-call-site controller that picks the parameters the offline
// engineering loop (core.TuneGrain / core.TunePolicy) picks by hand —
// grain size, schedule policy, worker count and the serial cutoff —
// per call, per input size, and per current executor load.
//
// The paper's discipline is "measure, don't guess". The offline sweeps
// honor it once, at development time, for one machine and one input
// size; every production call site then hard-codes the answer. adapt
// closes the loop at run time instead:
//
//   - Prior: each candidate parameter setting is seeded with a
//     predicted cost from the machine model (internal/machine BSP
//     parameters, fitted by core.Fit), so the very first calls already
//     exploit a sensible choice instead of a blind default.
//   - Feedback: non-degraded calls are timed, and the measurement
//     refines the candidate's cost estimate (an EWMA of seconds per
//     element). Selection is epsilon-greedy over the candidate lattice:
//     one deterministic sweep tries every candidate once, a decaying
//     exploration rate then revisits random candidates, and after
//     ConvergeAfter recorded calls the (site, size-class) converges to
//     pure exploitation — the fast path is two atomic loads and no
//     timing at all.
//   - Load: when the executor's occupancy gauge reports a busy pool
//     (exec.Executor.Occupancy), decisions degrade toward fewer
//     workers, larger grains and ultimately serial execution instead of
//     piling more fork/joins onto saturated workers; degraded calls are
//     not measured (their timings would poison the cache) and the site
//     re-expands as soon as load drops.
//
// The cache is keyed by (site, size-class): a Site names one kernel
// call site (either declared explicitly with NewSite or derived from
// the caller's program counter by SiteForPC), and the size class is the
// power-of-two bucket of the input length, so a site serving mixed
// request sizes learns a separate answer for each magnitude.
//
// Determinism: the controller only ever changes how work is scheduled
// — worker count, chunking, schedule policy, serial fallback. Every
// kernel in this repository is deterministic with respect to its
// results under all of those (that is the differential oracle suite's
// contract, internal/difftest), so adaptation changes timings, never
// outputs.
//
// Layering: adapt sits beside the executor runtime — it consumes
// machine (cost-model priors), rng (exploration) and exec's
// Occupancy gauge — and is consumed through par.Options.Adaptive by
// every kernel layer (par primitives, psort/psel/plist/pmat/
// pstencil/pgraph sites), the pipeline stages, and the serve
// runtime's batch loop. The repro facade exposes it as
// repro.Adaptive()/NewAdaptiveController.
package adapt

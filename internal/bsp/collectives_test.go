package bsp

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/seq"
)

func TestGatherCollective(t *testing.T) {
	for _, p := range []int{1, 2, 7, 16} {
		got, stats := Gather(func(rank int) int64 { return int64(rank * rank) }, p)
		for i := 0; i < p; i++ {
			if got[i] != int64(i*i) {
				t.Fatalf("p=%d: gather[%d] = %d", p, i, got[i])
			}
		}
		if stats.Supersteps() != 1 {
			t.Fatalf("gather supersteps = %d", stats.Supersteps())
		}
		if h := stats.Trace[0].H; h != float64(p) {
			t.Fatalf("gather h = %v, want %d (root receives P)", h, p)
		}
	}
}

func TestAllToAllCollective(t *testing.T) {
	const p = 5
	got, stats := AllToAll(func(from, to int) int64 { return int64(from*100 + to) }, p)
	for to := 0; to < p; to++ {
		for from := 0; from < p; from++ {
			if got[to][from] != int64(from*100+to) {
				t.Fatalf("alltoall[%d][%d] = %d", to, from, got[to][from])
			}
		}
	}
	if h := stats.Trace[0].H; h != p {
		t.Fatalf("alltoall h = %v, want %d", h, p)
	}
}

func TestBSPListRankMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		for _, n := range []int{1, 2, 10, 100, 1000} {
			l := gen.RandomList(n, uint64(n)+uint64(p))
			got, stats := ListRank(l.Next, l.Head, p)
			want := seq.ListRank(l)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("p=%d n=%d: rank[%d] = %d, want %d", p, n, i, got[i], want[i])
				}
			}
			if stats.Supersteps() == 0 {
				t.Fatal("no supersteps recorded")
			}
		}
	}
}

func TestBSPListRankEmpty(t *testing.T) {
	ranks, _ := ListRank(nil, 0, 4)
	if ranks != nil {
		t.Fatalf("empty list ranks = %v", ranks)
	}
}

func TestBSPListRankCommunicationGrowsWithP(t *testing.T) {
	// With one processor there is no remote successor traffic; with many
	// processors nearly every jump is remote — the h totals must reflect
	// that (the kernel's defining cost behavior).
	l := gen.RandomList(4096, 9)
	_, s1 := ListRank(l.Next, l.Head, 1)
	_, s8 := ListRank(l.Next, l.Head, 8)
	if s1.TotalH() != 0 {
		t.Fatalf("P=1 list rank communicated h=%v", s1.TotalH())
	}
	if s8.TotalH() == 0 {
		t.Fatal("P=8 list rank shows no communication")
	}
}

func TestMatmulRowBlockMatchesSequential(t *testing.T) {
	for _, n := range []int{4, 16, 33} {
		for _, p := range []int{1, 2, 4} {
			a := gen.RandomMatrix(n, n, uint64(n))
			b := gen.RandomMatrix(n, n, uint64(n)+1)
			got, stats := MatmulRowBlock(a.Data, b.Data, n, p)
			want := seq.Matmul(a, b)
			for i := range want.Data {
				d := got[i] - want.Data[i]
				if d > 1e-9 || d < -1e-9 {
					t.Fatalf("n=%d p=%d: mismatch at %d", n, p, i)
				}
			}
			if stats.Supersteps() != p+1 {
				t.Fatalf("n=%d p=%d: supersteps = %d, want %d", n, p, stats.Supersteps(), p+1)
			}
		}
	}
}

func TestMatmulRowBlockHRelation(t *testing.T) {
	// Each panel broadcast sends (n/P)·n words to P-1 receivers: the
	// sender's outgoing volume (P-1)·n²/P dominates the h-relation.
	const n, p = 32, 4
	a := gen.RandomMatrix(n, n, 1)
	b := gen.RandomMatrix(n, n, 2)
	_, stats := MatmulRowBlock(a.Data, b.Data, n, p)
	wantPerStep := float64((p - 1) * (n / p) * n)
	for s, st := range stats.Trace[:p] {
		if st.H != wantPerStep {
			t.Fatalf("superstep %d: h = %v, want %v", s, st.H, wantPerStep)
		}
	}
	if last := stats.Trace[p]; last.H != 0 {
		t.Fatalf("final barrier superstep has h = %v", last.H)
	}
	// Total compute across supersteps ≈ n³/P per processor.
	if w := stats.TotalW(); w != float64(n*n*n/p) {
		t.Fatalf("total W = %v, want %v", w, n*n*n/p)
	}
}

func TestSendWordsAccounting(t *testing.T) {
	stats := Run(2, func(c *Proc[int]) {
		if c.ID() == 0 {
			c.SendWords(1, 7, 100)
		}
		c.Sync()
	})
	if h := stats.Trace[0].H; h != 100 {
		t.Fatalf("weighted send h = %v, want 100", h)
	}
}

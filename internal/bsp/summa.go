package bsp

import "repro/internal/exec"

// MatmulSUMMA multiplies dense n×n matrices on a q×q grid of virtual
// processors (P = q²) with the SUMMA algorithm (van de Geijn & Watts
// 1995): in step k the owners of A's block-column k broadcast their
// panels along processor rows, the owners of B's block-row k broadcast
// along processor columns, and every processor accumulates into its own
// C block.
//
// This is the 2D answer to the 1D row-block kernel's weak-scaling
// collapse (experiment E15): per step each owner ships (q−1) copies of
// an (n/q)² block, so total traffic is Θ(n²·q) versus the row-block
// algorithm's Θ(n²·P) — a factor √P less communication at equal
// processor count, which is the entire point of 2D decompositions.
func MatmulSUMMA(a, b []float64, n, q int) ([]float64, *Stats) {
	return MatmulSUMMAOn(nil, a, b, n, q)
}

// MatmulSUMMAOn is MatmulSUMMA on executor e (nil = default); see RunOn.
func MatmulSUMMAOn(e *exec.Executor, a, b []float64, n, q int) ([]float64, *Stats) {
	if q < 1 {
		q = 1
	}
	p := q * q
	cOut := make([]float64, n*n)
	block := func(i int) (int, int) { return i * n / q, (i + 1) * n / q }
	stats := RunOn(e, p, func(c *Proc[panel]) {
		row := c.ID() / q
		col := c.ID() % q
		r0, r1 := block(row)
		c0, c1 := block(col)
		for k := 0; k < q; k++ {
			k0, k1 := block(k)
			// Broadcast A block (row, k) along processor row `row`.
			if col == k {
				words := (r1 - r0) * (k1 - k0)
				for to := 0; to < q; to++ {
					if to == col {
						continue
					}
					c.SendWords(row*q+to, panel{isA: true, rows: extract(a, n, r0, r1, k0, k1)}, words)
				}
			}
			// Broadcast B block (k, col) along processor column `col`.
			if row == k {
				words := (k1 - k0) * (c1 - c0)
				for to := 0; to < q; to++ {
					if to == row {
						continue
					}
					c.SendWords(to*q+col, panel{isA: false, rows: extract(b, n, k0, k1, c0, c1)}, words)
				}
			}
			inbox := c.Sync()
			var ap, bp []float64
			if col == k {
				ap = extract(a, n, r0, r1, k0, k1)
			}
			if row == k {
				bp = extract(b, n, k0, k1, c0, c1)
			}
			for _, m := range inbox {
				if m.isA {
					ap = m.rows
				} else {
					bp = m.rows
				}
			}
			// C(r0:r1, c0:c1) += ap (r×k) × bp (k×c).
			kw := k1 - k0
			cw := c1 - c0
			ops := 0
			for i := 0; i < r1-r0; i++ {
				crow := cOut[(r0+i)*n+c0 : (r0+i)*n+c1]
				arow := ap[i*kw : (i+1)*kw]
				for kk := 0; kk < kw; kk++ {
					aik := arow[kk]
					brow := bp[kk*cw : (kk+1)*cw]
					for j := 0; j < cw; j++ {
						crow[j] += aik * brow[j]
					}
				}
				ops += kw * cw
			}
			c.Charge(ops)
		}
		// Final barrier commits the last step's compute charge.
		c.Sync()
	})
	return cOut, stats
}

// panel carries one matrix block, flagged by operand.
type panel struct {
	isA  bool
	rows []float64
}

// extract copies the (r0:r1, c0:c1) block of an n-column row-major
// matrix into a dense (r1-r0)×(c1-c0) buffer.
func extract(m []float64, n, r0, r1, c0, c1 int) []float64 {
	w := c1 - c0
	out := make([]float64, (r1-r0)*w)
	for i := r0; i < r1; i++ {
		copy(out[(i-r0)*w:(i-r0+1)*w], m[i*n+c0:i*n+c1])
	}
	return out
}

package bsp

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/machine"
	"repro/internal/seq"
)

func TestMatmulSUMMAMatchesSequential(t *testing.T) {
	for _, n := range []int{4, 16, 30, 33} {
		for _, q := range []int{1, 2, 3} {
			a := gen.RandomMatrix(n, n, uint64(n))
			b := gen.RandomMatrix(n, n, uint64(n)+1)
			got, stats := MatmulSUMMA(a.Data, b.Data, n, q)
			want := seq.Matmul(a, b)
			for i := range want.Data {
				d := got[i] - want.Data[i]
				if d > 1e-9 || d < -1e-9 {
					t.Fatalf("n=%d q=%d: mismatch at %d", n, q, i)
				}
			}
			if stats.Supersteps() != q+1 {
				t.Fatalf("n=%d q=%d: supersteps = %d, want %d", n, q, stats.Supersteps(), q+1)
			}
		}
	}
}

func TestSUMMACommunicationBeatsRowBlock(t *testing.T) {
	// The headline property: at equal processor count P = q², SUMMA
	// moves ~√P times fewer words than the 1D row-block algorithm.
	const n, q = 64, 4 // P = 16
	a := gen.RandomMatrix(n, n, 1)
	b := gen.RandomMatrix(n, n, 2)
	_, summa := MatmulSUMMA(a.Data, b.Data, n, q)
	_, rowblk := MatmulRowBlock(a.Data, b.Data, n, q*q)
	if summa.TotalH() >= rowblk.TotalH() {
		t.Fatalf("SUMMA h = %v not below row-block h = %v", summa.TotalH(), rowblk.TotalH())
	}
	ratio := rowblk.TotalH() / summa.TotalH()
	if ratio < 2 {
		t.Fatalf("communication ratio = %v, want >= 2 (√P-ish)", ratio)
	}
	// Same compute volume per processor class: total W within 2x.
	if summa.TotalW() > 2*rowblk.TotalW() || rowblk.TotalW() > 2*summa.TotalW() {
		t.Fatalf("W diverged: summa %v vs rowblock %v", summa.TotalW(), rowblk.TotalW())
	}
}

func TestSUMMACostScalesWithGrid(t *testing.T) {
	const n = 60
	a := gen.RandomMatrix(n, n, 3)
	b := gen.RandomMatrix(n, n, 4)
	params := machine.BSPParams{G: 2, L: 2000}
	_, s1 := MatmulSUMMA(a.Data, b.Data, n, 1)
	_, s3 := MatmulSUMMA(a.Data, b.Data, n, 3)
	params.P = 1
	c1 := s1.Cost(params)
	params.P = 9
	c9 := s3.Cost(params)
	if c9 >= c1 {
		t.Fatalf("9-proc SUMMA cost %v not below 1-proc %v", c9, c1)
	}
}

package bsp

import (
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/machine"
)

func TestRunBasicBarrier(t *testing.T) {
	// Every processor increments a private slot each superstep; after k
	// supersteps all slots must be k (barrier keeps procs in lockstep).
	const p, k = 8, 5
	counts := make([]int, p)
	Run(p, func(c *Proc[int]) {
		for step := 0; step < k; step++ {
			counts[c.ID()]++
			c.Sync()
		}
	})
	for i, v := range counts {
		if v != k {
			t.Fatalf("proc %d ran %d supersteps, want %d", i, v, k)
		}
	}
}

func TestMessageDelivery(t *testing.T) {
	// Ring: each proc sends its id to the next; everyone must receive
	// exactly the predecessor's id.
	const p = 6
	got := make([]int, p)
	Run(p, func(c *Proc[int]) {
		next := (c.ID() + 1) % c.NProcs()
		c.Send(next, c.ID())
		inbox := c.Sync()
		if len(inbox) != 1 {
			t.Errorf("proc %d received %d messages", c.ID(), len(inbox))
			return
		}
		got[c.ID()] = inbox[0]
	})
	for i := 0; i < p; i++ {
		want := (i - 1 + p) % p
		if got[i] != want {
			t.Fatalf("proc %d received %d, want %d", i, got[i], want)
		}
	}
}

func TestMessagesNotDeliveredEarly(t *testing.T) {
	// A message sent in superstep 1 must not be visible until after the
	// first Sync, and must not persist past the following Sync.
	Run(2, func(c *Proc[int]) {
		if c.ID() == 0 {
			c.Send(1, 42)
		}
		first := c.Sync()
		second := c.Sync()
		if c.ID() == 1 {
			if len(first) != 1 || first[0] != 42 {
				t.Errorf("superstep 2 inbox = %v", first)
			}
			if len(second) != 0 {
				t.Errorf("stale messages redelivered: %v", second)
			}
		}
	})
}

func TestTraceRecordsWorkAndH(t *testing.T) {
	stats := Run(4, func(c *Proc[int]) {
		c.Charge(100 * (c.ID() + 1)) // max 400
		if c.ID() == 0 {
			for to := 1; to < 4; to++ {
				c.Send(to, 7)
			}
		}
		c.Sync()
	})
	if stats.Supersteps() != 1 {
		t.Fatalf("supersteps = %d", stats.Supersteps())
	}
	s := stats.Trace[0]
	if s.W != 400 {
		t.Fatalf("W = %v, want 400 (max over procs)", s.W)
	}
	if s.H != 3 {
		t.Fatalf("H = %v, want 3 (root sends 3 words)", s.H)
	}
}

func TestEarlyExitDoesNotDeadlock(t *testing.T) {
	// Proc 1 exits immediately; procs 0 and 2 still complete a superstep.
	done := make([]bool, 3)
	Run(3, func(c *Proc[int]) {
		if c.ID() == 1 {
			done[1] = true
			return
		}
		c.Sync()
		done[c.ID()] = true
	})
	for i, d := range done {
		if !d {
			t.Fatalf("proc %d did not finish", i)
		}
	}
}

func TestScanMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8, 16} {
		for _, n := range []int{0, 1, 5, 100, 1000} {
			xs := gen.Ints(n, gen.Uniform, 42)
			for i := range xs {
				xs[i] %= 1000 // avoid overflow noise in the test oracle
			}
			got, stats := Scan(xs, p)
			var acc int64
			for i, x := range xs {
				acc += x
				if got[i] != acc {
					t.Fatalf("p=%d n=%d: scan[%d] = %d, want %d", p, n, i, got[i], acc)
				}
			}
			if stats.Supersteps() != 2 {
				t.Fatalf("p=%d: scan used %d supersteps, want 2", p, stats.Supersteps())
			}
		}
	}
}

func TestScanHRelation(t *testing.T) {
	_, stats := Scan(gen.Ints(1000, gen.Uniform, 1), 8)
	// Superstep 1 is an all-to-all of partials: every proc sends and
	// receives P words, so h = 8.
	if h := stats.Trace[0].H; h != 8 {
		t.Fatalf("scan superstep-1 h = %v, want 8", h)
	}
}

func TestSumAllReduce(t *testing.T) {
	xs := gen.Ints(5000, gen.Uniform, 9)
	var want int64
	for i := range xs {
		xs[i] %= 1 << 20
		want += xs[i]
	}
	got, stats := SumAllReduce(xs, 7)
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if stats.Supersteps() != 3 {
		t.Fatalf("supersteps = %d", stats.Supersteps())
	}
}

func TestBroadcasts(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8, 16} {
		direct, ds := BroadcastDirect(99, p)
		tree, ts := BroadcastTree(99, p)
		for i := 0; i < p; i++ {
			if direct[i] != 99 {
				t.Fatalf("direct p=%d: proc %d missing value", p, i)
			}
			if tree[i] != 99 {
				t.Fatalf("tree p=%d: proc %d missing value", p, i)
			}
		}
		if p > 2 {
			// Tree trades more supersteps (latency) for lower h (gap).
			if ts.Supersteps() <= ds.Supersteps() {
				t.Fatalf("p=%d: tree supersteps %d <= direct %d", p, ts.Supersteps(), ds.Supersteps())
			}
			if maxH(ts) >= maxH(ds) {
				t.Fatalf("p=%d: tree max h %v >= direct %v", p, maxH(ts), maxH(ds))
			}
		}
	}
}

func maxH(s *Stats) float64 {
	m := 0.0
	for _, st := range s.Trace {
		if st.H > m {
			m = st.H
		}
	}
	return m
}

func TestSampleSortSorts(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		for _, d := range []gen.Distribution{gen.Uniform, gen.Sorted, gen.Zipf, gen.FewUnique} {
			xs := gen.Ints(2000, d, 77)
			buckets, _ := SampleSort(xs, p)
			var got []int64
			for rank := 0; rank < p; rank++ {
				// Bucket boundaries must respect rank order.
				if rank > 0 && len(buckets[rank]) > 0 && len(buckets[rank-1]) > 0 {
					if buckets[rank-1][len(buckets[rank-1])-1] > buckets[rank][0] {
						t.Fatalf("p=%d %v: bucket %d overlaps %d", p, d, rank-1, rank)
					}
				}
				got = append(got, buckets[rank]...)
			}
			want := append([]int64(nil), xs...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(got) != len(want) {
				t.Fatalf("p=%d %v: lost elements: %d of %d", p, d, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("p=%d %v: mismatch at %d", p, d, i)
				}
			}
		}
	}
}

func TestCostEvaluation(t *testing.T) {
	_, stats := Scan(gen.Ints(10000, gen.Uniform, 3), 8)
	cheap := machine.BSPParams{P: 8, G: 1, L: 10}
	pricey := machine.BSPParams{P: 8, G: 100, L: 100000}
	if stats.Cost(cheap) >= stats.Cost(pricey) {
		t.Fatal("cost must increase with g and l")
	}
	if stats.TotalW() <= 0 || stats.TotalH() <= 0 {
		t.Fatal("trace totals must be positive")
	}
}

func TestScanCostScalesDownWithP(t *testing.T) {
	// The whole point of the simulated machine: per-superstep max work
	// drops as P grows (until communication dominates).
	xs := gen.Ints(1<<14, gen.Uniform, 5)
	_, s2 := Scan(xs, 2)
	_, s16 := Scan(xs, 16)
	if s16.TotalW() >= s2.TotalW() {
		t.Fatalf("W(16 procs) = %v should be < W(2 procs) = %v", s16.TotalW(), s2.TotalW())
	}
}

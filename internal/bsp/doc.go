// Package bsp implements a Bulk-Synchronous Parallel runtime on virtual
// processors (goroutines), the repository's simulated parallel machine.
//
// Why simulate: the methodology's experiments require scaling curves over
// processor counts that exceed the physical cores available (this
// reproduction may run on a single-core container). The BSP runtime
// executes the same superstep-structured algorithms on P virtual
// processors while *accounting* model costs exactly — per superstep it
// records the maximum local work w and the maximum h-relation h, so the
// BSP cost Σ (w + g·h + l) is available for any machine parameters
// (g, l) regardless of the host's physical parallelism. Predicted curves
// are therefore deterministic and host-independent; wall-clock
// measurements of the real goroutine execution are reported alongside.
//
// Programming model (SPMD, following BSPlib): Run starts P copies of the
// program. Within a superstep a processor computes locally (declaring
// abstract operation counts via Charge) and queues messages with Send;
// Sync ends the superstep, delivers messages, and returns the processor's
// inbox for the next superstep. All processors must execute the same
// number of Sync calls; a processor that returns early simply stops
// participating (its arrivals are treated as implicit empty supersteps).
//
// Layering: bsp consumes machine (BSP cost parameters) and exec
// (virtual processors run on executor-accounted blocking
// goroutines); it feeds the core experiment suite's
// virtual-processor sweeps and examples/bsppredict.
package bsp

package bsp

import (
	"sort"

	"repro/internal/exec"
)

// Kernels implemented directly in the BSP model. Input arrays live in the
// host's shared memory (virtual processors may read their own block
// without communication, mirroring a block distribution); all
// inter-processor data flow goes through Send/Sync so the h-relations —
// the quantity the model charges for — are faithfully those of a
// distributed-memory execution.

// tagged carries a value with its sender rank.
type tagged struct {
	from int
	val  int64
}

// Scan computes the inclusive prefix sums of xs on p virtual processors
// using the classic two-superstep block algorithm:
//
//	superstep 1: local reduce; exchange partials (h = P);
//	superstep 2: offset = sum of lower-ranked partials; local rescan.
//
// It returns the result and the cost trace.
func Scan(xs []int64, p int) ([]int64, *Stats) { return ScanOn(nil, xs, p) }

// ScanOn is Scan with the virtual processors routed through executor e
// (nil means the shared default pool); see RunOn.
func ScanOn(e *exec.Executor, xs []int64, p int) ([]int64, *Stats) {
	n := len(xs)
	dst := make([]int64, n)
	stats := RunOn(e, p, func(c *Proc[tagged]) {
		id, np := c.ID(), c.NProcs()
		lo := id * n / np
		hi := (id + 1) * n / np
		// Superstep 1: local reduction, broadcast partial.
		var local int64
		for i := lo; i < hi; i++ {
			local += xs[i]
		}
		c.Charge(hi - lo)
		for to := 0; to < np; to++ {
			c.Send(to, tagged{from: id, val: local})
		}
		inbox := c.Sync()
		// Superstep 2: offset from lower ranks, rescan block.
		var offset int64
		for _, m := range inbox {
			if m.from < id {
				offset += m.val
			}
		}
		c.Charge(np)
		acc := offset
		for i := lo; i < hi; i++ {
			acc += xs[i]
			dst[i] = acc
		}
		c.Charge(hi - lo)
		c.Sync()
	})
	return dst, stats
}

// SumAllReduce computes the global sum of xs with a reduce-to-root then
// broadcast (two supersteps, h = P each), returning the sum as seen by
// every processor (validated internally) and the trace.
func SumAllReduce(xs []int64, p int) (int64, *Stats) { return SumAllReduceOn(nil, xs, p) }

// SumAllReduceOn is SumAllReduce on executor e (nil = default); see RunOn.
func SumAllReduceOn(e *exec.Executor, xs []int64, p int) (int64, *Stats) {
	n := len(xs)
	results := make([]int64, p)
	stats := RunOn(e, p, func(c *Proc[tagged]) {
		id, np := c.ID(), c.NProcs()
		lo := id * n / np
		hi := (id + 1) * n / np
		var local int64
		for i := lo; i < hi; i++ {
			local += xs[i]
		}
		c.Charge(hi - lo)
		c.Send(0, tagged{from: id, val: local})
		inbox := c.Sync()
		if id == 0 {
			var total int64
			for _, m := range inbox {
				total += m.val
			}
			c.Charge(np)
			for to := 0; to < np; to++ {
				c.Send(to, tagged{val: total})
			}
		}
		inbox = c.Sync()
		results[id] = inbox[0].val
		c.Sync()
	})
	return results[0], stats
}

// BroadcastDirect sends val from rank 0 to all others in one superstep
// with h = P (the root sends P-1 words).
func BroadcastDirect(val int64, p int) ([]int64, *Stats) { return BroadcastDirectOn(nil, val, p) }

// BroadcastDirectOn is BroadcastDirect on executor e (nil = default).
func BroadcastDirectOn(e *exec.Executor, val int64, p int) ([]int64, *Stats) {
	out := make([]int64, p)
	stats := RunOn(e, p, func(c *Proc[tagged]) {
		id, np := c.ID(), c.NProcs()
		if id == 0 {
			for to := 1; to < np; to++ {
				c.Send(to, tagged{val: val})
			}
			out[0] = val
		}
		inbox := c.Sync()
		if id != 0 {
			out[id] = inbox[0].val
		}
	})
	return out, stats
}

// BroadcastTree sends val from rank 0 to all others along a binomial
// tree: ceil(log2 P) supersteps with h = 1 each. Experiment E13 contrasts
// its cost with BroadcastDirect under varying (g, l): the tree wins when
// g·P dominates, the direct form when l dominates.
func BroadcastTree(val int64, p int) ([]int64, *Stats) { return BroadcastTreeOn(nil, val, p) }

// BroadcastTreeOn is BroadcastTree on executor e (nil = default).
func BroadcastTreeOn(e *exec.Executor, val int64, p int) ([]int64, *Stats) {
	out := make([]int64, p)
	stats := RunOn(e, p, func(c *Proc[tagged]) {
		id, np := c.ID(), c.NProcs()
		have := id == 0
		if have {
			out[0] = val
		}
		for round := 1; round < np; round *= 2 {
			if have && id+round < np {
				c.Send(id+round, tagged{val: val})
			}
			inbox := c.Sync()
			if !have && len(inbox) > 0 {
				out[id] = inbox[0].val
				have = true
			}
		}
	})
	return out, stats
}

// SampleSort sorts xs on p virtual processors with the textbook BSP
// sample sort:
//
//	superstep 1: local sort; send p-1 regular samples to rank 0;
//	superstep 2: rank 0 sorts samples, broadcasts p-1 splitters;
//	superstep 3: all-to-all bucket exchange by splitter;
//	superstep 4: local merge of received buckets.
//
// It returns the per-processor sorted buckets (concatenation in rank
// order is the sorted array) and the trace.
func SampleSort(xs []int64, p int) ([][]int64, *Stats) { return SampleSortOn(nil, xs, p) }

// SampleSortOn is SampleSort on executor e (nil = default); see RunOn.
func SampleSortOn(e *exec.Executor, xs []int64, p int) ([][]int64, *Stats) {
	n := len(xs)
	out := make([][]int64, p)
	stats := RunOn(e, p, func(c *Proc[tagged]) {
		id, np := c.ID(), c.NProcs()
		lo := id * n / np
		hi := (id + 1) * n / np
		local := append([]int64(nil), xs[lo:hi]...)
		sort.Slice(local, func(i, j int) bool { return local[i] < local[j] })
		c.Charge(costNLogN(len(local)))

		// Superstep 1: regular sampling.
		for s := 1; s < np; s++ {
			idx := s * len(local) / np
			var v int64
			if len(local) > 0 {
				if idx >= len(local) {
					idx = len(local) - 1
				}
				v = local[idx]
			}
			c.Send(0, tagged{from: id, val: v})
		}
		inbox := c.Sync()

		// Superstep 2: rank 0 selects and broadcasts splitters.
		if id == 0 {
			samples := make([]int64, 0, len(inbox))
			for _, m := range inbox {
				samples = append(samples, m.val)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			c.Charge(costNLogN(len(samples)))
			for s := 1; s < np; s++ {
				idx := s * len(samples) / np
				if idx >= len(samples) {
					idx = len(samples) - 1
				}
				for to := 0; to < np; to++ {
					c.Send(to, tagged{from: s - 1, val: samples[idx]})
				}
			}
		}
		inbox = c.Sync()
		splitters := make([]int64, np-1)
		for _, m := range inbox {
			splitters[m.from] = m.val
		}

		// Superstep 3: all-to-all bucket exchange.
		for _, v := range local {
			dest := sort.Search(len(splitters), func(i int) bool { return v < splitters[i] })
			c.Send(dest, tagged{val: v})
		}
		c.Charge(len(local))
		inbox = c.Sync()

		// Superstep 4: local sort of the received bucket.
		bucket := make([]int64, 0, len(inbox))
		for _, m := range inbox {
			bucket = append(bucket, m.val)
		}
		sort.Slice(bucket, func(i, j int) bool { return bucket[i] < bucket[j] })
		c.Charge(costNLogN(len(bucket)))
		out[id] = bucket
		c.Sync()
	})
	return out, stats
}

// costNLogN returns an integer n·log2(n) operation estimate for charging
// comparison sorts.
func costNLogN(n int) int {
	if n < 2 {
		return n
	}
	lg := 0
	for v := n; v > 1; v >>= 1 {
		lg++
	}
	return n * lg
}

package bsp

import "repro/internal/exec"

// Collective communication patterns expressed as reusable in-superstep
// helpers plus standalone traced kernels. The collectives mirror the
// message-passing repertoire the 1996-era libraries (Oxford BSPlib,
// Green BSP) shipped: gather, all-to-all, and total exchange patterns
// whose h-relations the model charges differently — which is precisely
// what makes them good validation kernels.

// Gather collects one value per processor at the root (rank 0): one
// superstep, h = P at the root. It returns the gathered values indexed
// by rank (valid at every processor's return for convenience; only the
// root pays the h-relation).
func Gather(local func(rank int) int64, p int) ([]int64, *Stats) { return GatherOn(nil, local, p) }

// GatherOn is Gather on executor e (nil = default); see RunOn.
func GatherOn(e *exec.Executor, local func(rank int) int64, p int) ([]int64, *Stats) {
	out := make([]int64, p)
	stats := RunOn(e, p, func(c *Proc[tagged]) {
		id := c.ID()
		v := local(id)
		c.Send(0, tagged{from: id, val: v})
		inbox := c.Sync()
		if id == 0 {
			for _, m := range inbox {
				out[m.from] = m.val
			}
		}
	})
	return out, stats
}

// AllToAll performs a total exchange: processor i sends value f(i, j) to
// every processor j. One superstep with h = P (each processor sends and
// receives P words). Returns the matrix received[j][i] = f(i, j).
func AllToAll(f func(from, to int) int64, p int) ([][]int64, *Stats) { return AllToAllOn(nil, f, p) }

// AllToAllOn is AllToAll on executor e (nil = default); see RunOn.
func AllToAllOn(e *exec.Executor, f func(from, to int) int64, p int) ([][]int64, *Stats) {
	out := make([][]int64, p)
	stats := RunOn(e, p, func(c *Proc[tagged]) {
		id, np := c.ID(), c.NProcs()
		for to := 0; to < np; to++ {
			c.Send(to, tagged{from: id, val: f(id, to)})
		}
		inbox := c.Sync()
		row := make([]int64, np)
		for _, m := range inbox {
			row[m.from] = m.val
		}
		out[id] = row
	})
	return out, stats
}

// ListRank ranks an array-embedded linked list on p virtual processors
// with distributed pointer jumping. Nodes are block-distributed by
// index; each jumping round a processor requests the (next, dist) pair
// of every remote successor, then advances — 2 supersteps per round,
// ceil(log2 n)+1 rounds, h up to 2·n/p. This is the communication-heavy
// kernel of the suite: its BSP cost is dominated by g·h per round,
// predicting that distributed list ranking only pays off at very large
// n/P — the classic result the case study teaches.
func ListRank(next []int, head int, p int) ([]int, *Stats) { return ListRankOn(nil, next, head, p) }

// ListRankOn is ListRank on executor e (nil = default); see RunOn.
func ListRankOn(e *exec.Executor, next []int, head int, p int) ([]int, *Stats) {
	n := len(next)
	if n == 0 {
		return nil, RunOn(e, p, func(c *Proc[pair]) {})
	}
	// Shared state arrays; each processor writes only its own block.
	nxt := append([]int(nil), next...)
	dist := make([]int, n)
	for i := range dist {
		if next[i] != i {
			dist[i] = 1
		}
	}
	nxt2 := make([]int, n)
	dist2 := make([]int, n)
	rounds := 0
	for span := 1; span < n; span *= 2 {
		rounds++
	}
	rounds++
	stats := RunOn(e, p, func(c *Proc[pair]) {
		id, np := c.ID(), c.NProcs()
		lo := id * n / np
		hi := (id + 1) * n / np
		owner := func(i int) int { return min((i*np)/n, np-1) }
		// owner inversion must agree with the block split; recompute
		// exactly: node i belongs to the w with w*n/np <= i < (w+1)*n/np.
		ownerExact := func(i int) int {
			w := owner(i)
			for w > 0 && i < w*n/np {
				w--
			}
			for w < np-1 && i >= (w+1)*n/np {
				w++
			}
			return w
		}
		for r := 0; r < rounds; r++ {
			// Superstep A: request successor info for remote successors.
			for i := lo; i < hi; i++ {
				s := nxt[i]
				w := ownerExact(s)
				if w != id {
					c.Send(w, pair{a: i, b: s})
				}
			}
			c.Charge(hi - lo)
			inbox := c.Sync()
			// Superstep B: answer requests with (next[s], dist[s]).
			for _, m := range inbox {
				// m.a = requesting node, m.b = successor we own.
				w := ownerExact(m.a)
				c.Send(w, pair{a: m.a, b: m.b, c1: nxt[m.b], c2: dist[m.b]})
			}
			c.Charge(len(inbox))
			inbox = c.Sync()
			// Apply the jump: local successors read directly, remote
			// ones from replies.
			for i := lo; i < hi; i++ {
				s := nxt[i]
				if ownerExact(s) == id {
					dist2[i] = dist[i] + dist[s]
					nxt2[i] = nxt[s]
				} else {
					// Filled in from replies below; default to no-op.
					dist2[i] = dist[i]
					nxt2[i] = nxt[i]
				}
				if s == i { // tail
					dist2[i] = dist[i]
					nxt2[i] = i
				}
			}
			for _, m := range inbox {
				i := m.a
				dist2[i] = dist[i] + m.c2
				nxt2[i] = m.c1
			}
			c.Charge(hi - lo + len(inbox))
			c.Sync()
			// Round barrier: swap buffers. Every processor swaps its own
			// block only (disjoint), after the barrier above ensures all
			// reads of the old arrays are done.
			for i := lo; i < hi; i++ {
				nxt[i], nxt2[i] = nxt2[i], nxt[i]
				dist[i], dist2[i] = dist2[i], dist[i]
			}
			c.Sync()
		}
	})
	// Convert distance-to-tail into rank-from-head.
	total := dist[head]
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = total - dist[i]
	}
	return ranks, stats
}

// pair is a small message carrying up to four ints.
type pair struct {
	a, b, c1, c2 int
}

// MatmulRowBlock multiplies dense n×n matrices with a row-block
// distribution: each processor owns n/P rows of A and C and receives all
// of B column-panels via an all-to-all-style broadcast from the owner of
// each panel — modeling B as block-distributed too. Supersteps: P (one
// per panel round-robin broadcast), h = n·n/P words per superstep. The
// compute/communication ratio n/P per word is the textbook BSP matmul
// analysis.
func MatmulRowBlock(a, b []float64, n, p int) ([]float64, *Stats) {
	return MatmulRowBlockOn(nil, a, b, n, p)
}

// MatmulRowBlockOn is MatmulRowBlock on executor e (nil = default).
func MatmulRowBlockOn(e *exec.Executor, a, b []float64, n, p int) ([]float64, *Stats) {
	cOut := make([]float64, n*n)
	stats := RunOn(e, p, func(c *Proc[panelMsg]) {
		id, np := c.ID(), c.NProcs()
		rLo := id * n / np
		rHi := (id + 1) * n / np
		for round := 0; round < np; round++ {
			// Panel owner broadcasts its row-panel of B.
			pLo := round * n / np
			pHi := (round + 1) * n / np
			if id == round {
				words := (pHi - pLo) * n
				for to := 0; to < np; to++ {
					if to == id {
						continue
					}
					c.SendWords(to, panelMsg{lo: pLo, rows: b[pLo*n : pHi*n]}, words)
				}
			}
			inbox := c.Sync()
			panel := b[pLo*n : pHi*n]
			if id != round {
				if len(inbox) != 1 {
					panic("bsp: matmul panel missing")
				}
				panel = inbox[0].rows
			}
			// Multiply-accumulate with the received panel.
			ops := 0
			for i := rLo; i < rHi; i++ {
				for k := pLo; k < pHi; k++ {
					aik := a[i*n+k]
					prow := panel[(k-pLo)*n:]
					crow := cOut[i*n:]
					for j := 0; j < n; j++ {
						crow[j] += aik * prow[j]
					}
				}
				ops += (pHi - pLo) * n
			}
			c.Charge(ops)
		}
		// Final barrier so the last round's compute charge is recorded
		// (charges are committed at Sync).
		c.Sync()
	})
	return cOut, stats
}

// panelMsg carries a B row-panel; SendWords charges its full word
// volume to the h-relation.
type panelMsg struct {
	lo   int
	rows []float64
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

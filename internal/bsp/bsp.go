package bsp

import (
	"sync"

	"repro/internal/exec"
	"repro/internal/machine"
)

// Stats is the cost trace of one Run: per-superstep maxima from which
// BSP cost is computed for any machine parameters.
type Stats struct {
	Trace []machine.Superstep
}

// Supersteps returns the number of recorded supersteps.
func (s *Stats) Supersteps() int { return len(s.Trace) }

// Cost evaluates the recorded trace under params.
func (s *Stats) Cost(params machine.BSPParams) float64 {
	return params.TotalCost(s.Trace)
}

// TotalW returns the summed per-superstep maximum local work.
func (s *Stats) TotalW() float64 {
	t := 0.0
	for _, st := range s.Trace {
		t += st.W
	}
	return t
}

// TotalH returns the summed per-superstep maximum h-relation.
func (s *Stats) TotalH() float64 {
	t := 0.0
	for _, st := range s.Trace {
		t += st.H
	}
	return t
}

// Proc is one virtual processor's handle. Methods must only be called
// from the goroutine running this processor's program.
type Proc[M any] struct {
	id    int
	coord *coordinator[M]

	outbox   map[int][]M
	outWords map[int]float64
	sent     float64
	ops      float64
	inbox    []M
}

// ID returns this processor's rank in [0, P).
func (c *Proc[M]) ID() int { return c.id }

// NProcs returns the machine size P.
func (c *Proc[M]) NProcs() int { return c.coord.p }

// Charge declares ops units of local computation in this superstep.
func (c *Proc[M]) Charge(ops int) { c.ops += float64(ops) }

// Send queues one message (one abstract word) for processor `to`,
// delivered at the next Sync.
func (c *Proc[M]) Send(to int, msg M) { c.SendWords(to, msg, 1) }

// SendWords queues one message counted as `words` abstract words in the
// h-relation — used by kernels whose messages carry bulk payloads
// (e.g. matrix panels), so the model charges their true volume.
func (c *Proc[M]) SendWords(to int, msg M, words int) {
	c.outbox[to] = append(c.outbox[to], msg)
	c.outWords[to] += float64(words)
	c.sent += float64(words)
}

// Inbox returns the messages delivered by the most recent Sync. The
// slice is owned by the processor until the next Sync.
func (c *Proc[M]) Inbox() []M { return c.inbox }

// Sync ends the superstep: messages are exchanged, model costs recorded,
// and all processors advance together. It returns the new inbox.
func (c *Proc[M]) Sync() []M {
	c.inbox = c.coord.sync(c.id, c.outbox, c.outWords, c.sent, c.ops)
	c.outbox = make(map[int][]M)
	c.outWords = make(map[int]float64)
	c.sent = 0
	c.ops = 0
	return c.inbox
}

// Run executes prog on p virtual processors and returns the cost trace.
func Run[M any](p int, prog func(c *Proc[M])) *Stats {
	return RunOn[M](nil, p, prog)
}

// RunOn executes prog on p virtual processors, routing their
// goroutines through executor e (nil means exec.Default()). Virtual
// processors park on the superstep barrier waiting for their siblings,
// so they need dedicated goroutines rather than slots of the
// fixed-size pool — p routinely exceeds the physical worker count
// (that is the point of the simulator) and pooled dispatch would
// deadlock at the first Sync. Executor.Go provides exactly that:
// dedicated goroutines, but accounted on the shared runtime so servers
// can observe all parallel activity in one place.
func RunOn[M any](e *exec.Executor, p int, prog func(c *Proc[M])) *Stats {
	if p < 1 {
		p = 1
	}
	if e == nil {
		e = exec.Default()
	}
	coord := newCoordinator[M](p)
	var wg sync.WaitGroup
	wg.Add(p)
	for id := 0; id < p; id++ {
		id := id
		e.Go(func() {
			defer wg.Done()
			c := &Proc[M]{id: id, coord: coord, outbox: make(map[int][]M), outWords: make(map[int]float64)}
			prog(c)
			coord.exit(id)
		})
	}
	wg.Wait()
	return &Stats{Trace: coord.trace}
}

// coordinator implements the reusable barrier with message routing and
// cost accounting.
type coordinator[M any] struct {
	mu   sync.Mutex
	cond *sync.Cond
	p    int

	arrived    int
	done       int
	generation int

	next      [][]M     // staged inboxes for the coming superstep
	current   [][]M     // inboxes delivered at the last barrier
	maxOps    float64   // max local work among arrivals this superstep
	sentBy    []float64 // words sent per proc this superstep
	recvWords []float64 // words staged for each proc this superstep
	trace     []machine.Superstep
}

func newCoordinator[M any](p int) *coordinator[M] {
	c := &coordinator[M]{
		p:         p,
		next:      make([][]M, p),
		current:   make([][]M, p),
		sentBy:    make([]float64, p),
		recvWords: make([]float64, p),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// sync is called by processor id at the end of a superstep.
func (c *coordinator[M]) sync(id int, outbox map[int][]M, outWords map[int]float64, sent, ops float64) []M {
	c.mu.Lock()
	defer c.mu.Unlock()
	for to, msgs := range outbox {
		c.next[to] = append(c.next[to], msgs...)
	}
	for to, w := range outWords {
		c.recvWords[to] += w
	}
	c.sentBy[id] = sent
	if ops > c.maxOps {
		c.maxOps = ops
	}
	c.arrived++
	gen := c.generation
	if c.arrived+c.done == c.p {
		c.completeStep()
	} else {
		for c.generation == gen {
			c.cond.Wait()
		}
	}
	inbox := c.current[id]
	c.current[id] = nil
	return inbox
}

// exit marks processor id as finished; it no longer participates in
// barriers.
func (c *coordinator[M]) exit(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done++
	if c.arrived > 0 && c.arrived+c.done == c.p {
		c.completeStep()
	}
}

// completeStep finalizes the superstep under c.mu: computes the model
// maxima, installs inboxes, and releases the barrier.
func (c *coordinator[M]) completeStep() {
	// h-relation: max over procs of max(words sent, words received).
	h := 0.0
	for i := 0; i < c.p; i++ {
		m := c.sentBy[i]
		if c.recvWords[i] > m {
			m = c.recvWords[i]
		}
		if m > h {
			h = m
		}
		c.sentBy[i] = 0
		c.recvWords[i] = 0
	}
	c.trace = append(c.trace, machine.Superstep{W: c.maxOps, H: h})
	c.current, c.next = c.next, make([][]M, c.p)
	c.maxOps = 0
	c.arrived = 0
	c.generation++
	c.cond.Broadcast()
}

package genio

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"repro/internal/gen"
	"repro/internal/graph"
)

// ErrFormat reports malformed input.
var ErrFormat = errors.New("genio: malformed input")

// WriteInts writes one integer per line.
func WriteInts(w io.Writer, xs []int64) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, v := range xs {
		if _, err := fmt.Fprintln(bw, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadInts reads integers until EOF.
func ReadInts(r io.Reader) ([]int64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var out []int64
	for {
		var v int64
		_, err := fmt.Fscan(br, &v)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%w: value %d: %v", ErrFormat, len(out), err)
		}
		out = append(out, v)
	}
}

// WriteGraph writes the graph format. Weights are written as given
// (1 for unweighted graphs).
func WriteGraph(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintln(bw, g.N(), g.M()); err != nil {
		return err
	}
	var werr error
	g.ForEdges(func(u, v int, wt float64) {
		if werr != nil {
			return
		}
		_, werr = fmt.Fprintln(bw, u, v, wt)
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ReadGraph reads the graph format. weighted selects whether the parsed
// weights are stored or discarded.
func ReadGraph(r io.Reader, weighted bool) (*graph.Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var n, m int
	if _, err := fmt.Fscan(br, &n, &m); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrFormat, err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("%w: negative header (n=%d m=%d)", ErrFormat, n, m)
	}
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		var u, v int
		var wt float64
		if _, err := fmt.Fscan(br, &u, &v, &wt); err != nil {
			return nil, fmt.Errorf("%w: edge %d: %v", ErrFormat, i, err)
		}
		edges = append(edges, graph.Edge{U: u, V: v, W: wt})
	}
	g, err := graph.Build(n, edges, weighted)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return g, nil
}

// WriteList writes the list format.
func WriteList(w io.Writer, l *gen.List) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintln(bw, l.Len(), l.Head); err != nil {
		return err
	}
	for _, nx := range l.Next {
		if _, err := fmt.Fprintln(bw, nx); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadList reads the list format and validates that it is a single
// well-formed list: exactly one self-looping tail, head in range, all
// successors in range, and all nodes reachable from the head.
func ReadList(r io.Reader) (*gen.List, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var n, head int
	if _, err := fmt.Fscan(br, &n, &head); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrFormat, err)
	}
	if n < 0 || (n > 0 && (head < 0 || head >= n)) {
		return nil, fmt.Errorf("%w: bad header (n=%d head=%d)", ErrFormat, n, head)
	}
	next := make([]int, n)
	for i := range next {
		if _, err := fmt.Fscan(br, &next[i]); err != nil {
			return nil, fmt.Errorf("%w: node %d: %v", ErrFormat, i, err)
		}
		if next[i] < 0 || next[i] >= n {
			return nil, fmt.Errorf("%w: successor %d out of range at node %d", ErrFormat, next[i], i)
		}
	}
	l := &gen.List{Next: next, Head: head}
	if n > 0 {
		// Validate single-list structure by walking from head.
		seen := 0
		v := head
		for {
			seen++
			if seen > n {
				return nil, fmt.Errorf("%w: cycle detected", ErrFormat)
			}
			if next[v] == v {
				break
			}
			v = next[v]
		}
		if seen != n {
			return nil, fmt.Errorf("%w: only %d of %d nodes reachable from head", ErrFormat, seen, n)
		}
	}
	return l, nil
}

// Package genio reads and writes the suite's workloads in simple
// line-oriented text formats, so experiments can be re-run on byte-
// identical inputs on other machines or inspected with standard tools.
//
// Formats (all whitespace-separated decimal):
//
//	array: one integer per line
//	graph: "n m" header, then one "u v w" line per undirected edge
//	list:  "n head" header, then one successor index per line
//
// Layering: genio consumes gen's workload types; it feeds
// cmd/pargen and any harness that replays workloads across
// processes or machines.
package genio

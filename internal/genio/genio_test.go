package genio

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestIntsRoundTrip(t *testing.T) {
	want := gen.Ints(1000, gen.Gaussian, 3) // includes negatives
	var buf bytes.Buffer
	if err := WriteInts(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInts(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d of %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestIntsEmptyAndGarbage(t *testing.T) {
	got, err := ReadInts(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty: %v, %v", got, err)
	}
	if _, err := ReadInts(strings.NewReader("12 potato")); !errors.Is(err, ErrFormat) {
		t.Fatalf("garbage accepted: %v", err)
	}
}

func TestGraphRoundTrip(t *testing.T) {
	want := gen.ErdosRenyi(300, 6, true, 7)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("shape: got %v want %v", got, want)
	}
	// Same total weight and same degree sequence.
	var ws, wg float64
	want.ForEdges(func(_, _ int, w float64) { ws += w })
	got.ForEdges(func(_, _ int, w float64) { wg += w })
	if diff := ws - wg; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("weights: %v vs %v", ws, wg)
	}
	for v := 0; v < want.N(); v++ {
		if got.Degree(v) != want.Degree(v) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
	// Partitions agree.
	a := got.ConnectedComponentsRef()
	b := want.ConnectedComponentsRef()
	for i := range a {
		if (a[i] == a[0]) != (b[i] == b[0]) {
			t.Fatal("component structure differs")
		}
	}
}

func TestGraphUnweightedRead(t *testing.T) {
	g := gen.Grid2D(5, 5, false, 1)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if got.Weighted() {
		t.Fatal("unweighted read produced weights")
	}
}

func TestGraphErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"neg header":    "-1 2",
		"truncated":     "3 2\n0 1 1.0\n",
		"out of range":  "2 1\n0 9 1.0\n",
		"garbage edge":  "2 1\nzero one 1.0\n",
		"garbage count": "two 1\n",
	}
	for name, in := range cases {
		if _, err := ReadGraph(strings.NewReader(in), false); !errors.Is(err, ErrFormat) {
			t.Fatalf("%s: err = %v, want ErrFormat", name, err)
		}
	}
}

func TestListRoundTrip(t *testing.T) {
	want := gen.RandomList(500, 9)
	var buf bytes.Buffer
	if err := WriteList(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Head != want.Head || got.Len() != want.Len() {
		t.Fatal("header mismatch")
	}
	for i := range want.Next {
		if got.Next[i] != want.Next[i] {
			t.Fatalf("next mismatch at %d", i)
		}
	}
}

func TestListValidation(t *testing.T) {
	cases := map[string]string{
		"bad head":       "3 9\n1\n2\n2\n",
		"succ range":     "2 0\n5\n1\n",
		"cycle":          "3 0\n1\n2\n0\n",
		"unreachable":    "3 0\n0\n2\n2\n", // head is its own tail; nodes 1,2 unreachable
		"truncated":      "3 0\n1\n",
		"garbage header": "x y\n",
	}
	for name, in := range cases {
		if _, err := ReadList(strings.NewReader(in)); !errors.Is(err, ErrFormat) {
			t.Fatalf("%s: err = %v, want ErrFormat", name, err)
		}
	}
	// n=0 is fine.
	l, err := ReadList(strings.NewReader("0 0\n"))
	if err != nil || l.Len() != 0 {
		t.Fatalf("empty list: %v %v", l, err)
	}
}

func TestWriteGraphMatchesManualFormat(t *testing.T) {
	g := graph.MustBuild(3, []graph.Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}}, true)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	want := "3 2\n0 1 2\n1 2 3\n"
	if buf.String() != want {
		t.Fatalf("format = %q, want %q", buf.String(), want)
	}
}

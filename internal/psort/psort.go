package psort

import (
	"sort"

	"repro/internal/adapt"
	"repro/internal/exec"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/scratch"
	"repro/internal/seq"
)

// oversample is the number of random samples drawn per splitter; larger
// values even out bucket sizes at the cost of splitter-selection time.
const oversample = 32

// Adaptive call sites: each sort is one decision covering its whole
// count/scan/scatter pipeline — the controller tunes the worker count
// (and for merge sort the leaf grain) per input-size class, and sheds
// parallelism when the executor is busy with other requests.
var (
	siteSampleSort = adapt.NewSite("psort.SampleSort", adapt.KindWorkers)
	siteMergeSort  = adapt.NewSite("psort.MergeSort", adapt.KindRange)
	siteRadixSort  = adapt.NewSite("psort.RadixSort", adapt.KindWorkers)
)

// SampleSort sorts xs in place using opts.Procs workers. All
// temporaries — sample, splitters, the p×p count/offset matrices and
// the n-element scatter buffer — come from the scratch pool, so
// repeated sorts allocate nothing at steady state.
func SampleSort(xs []int64, opts par.Options) {
	n := len(xs)
	opts, m := par.BeginAdaptive(siteSampleSort, n, opts)
	defer m.Done()
	p := workers(opts, n)
	if p == 1 || n < 2048 {
		seq.Quicksort(xs)
		return
	}
	a := scratch.AcquireArena(opts.ScratchPool())
	defer a.Release()

	// 1. Splitter selection: sort a random sample, take p-1 regular
	// splitters. Deterministic seed keeps runs reproducible.
	r := rng.New(uint64(n)*0x9E3779B9 + uint64(p))
	sample := scratch.Make[int64](a, p*oversample)
	for i := range sample {
		sample[i] = xs[r.Intn(n)]
	}
	seq.Quicksort(sample)
	splitters := scratch.Make[int64](a, p-1)
	for i := 1; i < p; i++ {
		splitters[i-1] = sample[i*oversample]
	}

	// 2. Count phase: each worker histograms its block over the buckets.
	// counts is a flat p×p matrix (row = worker, column = bucket).
	counts := scratch.Make[int](a, p*p)
	par.ForWorkers(p, opts, func(w int) {
		lo, hi := w*n/p, (w+1)*n/p
		c := counts[w*p : (w+1)*p]
		clear(c)
		for i := lo; i < hi; i++ {
			c[bucketOf(xs[i], splitters)]++
		}
	})

	// 3. Placement: exclusive scan in (bucket-major, worker-minor) order
	// gives every (worker, bucket) pair a disjoint output range, making
	// the scatter phase write-race-free and stable.
	offsets := scratch.Make[int](a, p*p)
	pos := 0
	bucketStart := scratch.Make[int](a, p+1)
	for b := 0; b < p; b++ {
		bucketStart[b] = pos
		for w := 0; w < p; w++ {
			offsets[w*p+b] = pos
			pos += counts[w*p+b]
		}
	}
	bucketStart[p] = pos

	// 4. Scatter into a scratch buffer.
	buf := scratch.Make[int64](a, n)
	par.ForWorkers(p, opts, func(w int) {
		lo, hi := w*n/p, (w+1)*n/p
		off := offsets[w*p : (w+1)*p]
		for i := lo; i < hi; i++ {
			b := bucketOf(xs[i], splitters)
			buf[off[b]] = xs[i]
			off[b]++
		}
	})

	// 5. Per-bucket sorts, dynamically scheduled: bucket sizes vary, so
	// dynamic scheduling absorbs the residual imbalance.
	par.For(p, par.Options{Procs: p, Policy: par.Dynamic, Grain: 1, SerialCutoff: 1,
		Executor: opts.Executor, Scratch: opts.Scratch}, func(b int) {
		seq.Quicksort(buf[bucketStart[b]:bucketStart[b+1]])
	})
	copy(xs, buf)
}

// bucketOf returns the index of the first splitter greater than v (binary
// search), i.e. the destination bucket.
func bucketOf(v int64, splitters []int64) int {
	lo, hi := 0, len(splitters)
	for lo < hi {
		mid := (lo + hi) / 2
		if v < splitters[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// MergeSort sorts xs in place with a fork/join merge sort whose merges
// use the parallel merge-path primitive. grain below which it falls back
// to the sequential quicksort is taken from opts.Grain (default 4096).
func MergeSort(xs []int64, opts par.Options) {
	n := len(xs)
	opts, m := par.BeginAdaptive(siteMergeSort, n, opts)
	defer m.Done()
	p := workers(opts, n)
	grain := opts.Grain
	if grain <= 0 {
		grain = 4096
	}
	if p == 1 || n <= grain {
		seq.Quicksort(xs)
		return
	}
	a := scratch.AcquireArena(opts.ScratchPool())
	defer a.Release()
	buf := scratch.Make[int64](a, n)
	e := opts.Executor
	if e == nil {
		e = exec.Default()
	}
	mergeSortRec(xs, buf, p, grain, e, opts.Scratch)
}

// mergeSortRec sorts xs using buf as scratch; result lands in xs.
// procs is the parallelism budget for this subtree. The two halves are
// forked as slots of one executor Run — the caller sorts one half
// itself and a pooled helper (when one is free) sorts the other, so
// the recursion spawns no goroutines and degrades to sequential
// execution when the pool is saturated.
func mergeSortRec(xs, buf []int64, procs, grain int, e *exec.Executor, sp *scratch.Pool) {
	n := len(xs)
	if procs <= 1 || n <= grain {
		seq.Quicksort(xs)
		return
	}
	mid := n / 2
	e.Run(2, func(half int) {
		if half == 0 {
			mergeSortRec(xs[mid:], buf[mid:], procs-procs/2, grain, e, sp)
		} else {
			mergeSortRec(xs[:mid], buf[:mid], procs/2, grain, e, sp)
		}
	})
	// Parallel stable merge into buf, then copy back. grain doubles as
	// the merge's serial cutoff: below it the recursion already ran
	// sequentially, so the merge should too.
	par.Merge(buf, xs[:mid], xs[mid:],
		par.Options{Procs: procs, Grain: grain, SerialCutoff: grain, Executor: e, Scratch: sp},
		func(a, b int64) bool { return a < b })
	copyParallel(xs, buf, procs, e, sp)
}

func copyParallel(dst, src []int64, procs int, e *exec.Executor, sp *scratch.Pool) {
	par.ForRange(len(src), par.Options{Procs: procs, Grain: 1 << 16, SerialCutoff: 1 << 16,
		Executor: e, Scratch: sp}, func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// RadixSort sorts xs in place with a parallel LSD radix sort using 8-bit
// digits. Each pass histograms per worker, computes (digit-major,
// worker-minor) offsets so the scatter is stable and race-free, then
// scatters — the same count/scan/scatter skeleton as sample sort, which
// is why the methodology treats "counting + prefix sums + scatter" as the
// fundamental parallel pattern.
func RadixSort(xs []int64, opts par.Options) {
	n := len(xs)
	opts, m := par.BeginAdaptive(siteRadixSort, n, opts)
	defer m.Done()
	p := workers(opts, n)
	if p == 1 || n < 2048 {
		seq.RadixSort(xs)
		return
	}
	const bits = 8
	const buckets = 1 << bits
	const mask = buckets - 1
	a := scratch.AcquireArena(opts.ScratchPool())
	defer a.Release()
	buf := scratch.Make[int64](a, n)
	src, dst := xs, buf
	// counts is a flat p×buckets matrix (row = worker, column = digit).
	counts := scratch.Make[int](a, p*buckets)
	for shift := 0; shift < 64; shift += bits {
		// Count phase.
		par.ForWorkers(p, opts, func(w int) {
			c := counts[w*buckets : (w+1)*buckets]
			clear(c)
			lo, hi := w*n/p, (w+1)*n/p
			for i := lo; i < hi; i++ {
				c[(flip(src[i])>>shift)&mask]++
			}
		})
		// Skip degenerate passes (all keys share the digit).
		first := (flip(src[0]) >> shift) & mask
		allSame := true
		for w := 0; w < p && allSame; w++ {
			for b := 0; b < buckets; b++ {
				if counts[w*buckets+b] != 0 && uint64(b) != first {
					allSame = false
					break
				}
			}
		}
		if allSame {
			continue
		}
		// Offsets: digit-major, worker-minor exclusive scan.
		pos := 0
		for b := 0; b < buckets; b++ {
			for w := 0; w < p; w++ {
				counts[w*buckets+b], pos = pos, pos+counts[w*buckets+b]
			}
		}
		// Scatter phase.
		par.ForWorkers(p, opts, func(w int) {
			lo, hi := w*n/p, (w+1)*n/p
			off := counts[w*buckets : (w+1)*buckets]
			for i := lo; i < hi; i++ {
				b := (flip(src[i]) >> shift) & mask
				dst[off[b]] = src[i]
				off[b]++
			}
		})
		src, dst = dst, src
	}
	if &src[0] != &xs[0] {
		copy(xs, src)
	}
}

func flip(v int64) uint64 { return uint64(v) ^ (1 << 63) }

// IsSortedParallel verifies order with a parallel reduction; used by the
// harness to validate outputs without serial bottleneck.
func IsSortedParallel(xs []int64, opts par.Options) bool {
	if len(xs) < 2 {
		return true
	}
	violations := par.Count(len(xs)-1, opts, func(i int) bool { return xs[i] > xs[i+1] })
	return violations == 0
}

// Sorter names one sorting implementation for the experiment tables.
type Sorter struct {
	Name string
	Sort func(xs []int64, opts par.Options)
}

// Sorters lists the parallel sorters plus sequential baselines, in the
// row order of experiment E2.
var Sorters = []Sorter{
	{"seq-quicksort", func(xs []int64, _ par.Options) { seq.Quicksort(xs) }},
	{"seq-mergesort", func(xs []int64, _ par.Options) { seq.Mergesort(xs) }},
	{"seq-radix", func(xs []int64, _ par.Options) { seq.RadixSort(xs) }},
	{"samplesort", SampleSort},
	{"mergesort", MergeSort},
	{"radix", RadixSort},
	{"counting", CountingSort},
	{"stdlib", func(xs []int64, _ par.Options) {
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	}},
}

func workers(opts par.Options, n int) int {
	p := opts.Procs
	if p <= 0 {
		p = defaultProcs()
	}
	if p > n && n > 0 {
		p = n
	}
	return p
}

package psort

import (
	"repro/internal/sched"
	"repro/internal/seq"
)

// QuickSortSteal sorts xs in place using fork/join quicksort on a
// work-stealing pool: partition, then spawn both sides as tasks. No join
// is needed — partition-exchange quicksort is in-place and each subtask
// owns a disjoint slice, so the sort is complete exactly when the pool's
// task count drains to zero.
//
// This is the task-parallel counterpart of the loop-parallel sorters:
// recursion trees from quicksort's uneven partitions are precisely the
// irregular workloads work stealing exists for (experiment E12's
// companion in the sorting domain).
func QuickSortSteal(xs []int64, pool *sched.Pool) {
	if len(xs) < 2 {
		return
	}
	grain := len(xs) / (8 * pool.Procs())
	if grain < 4096 {
		grain = 4096
	}
	var sortTask func(s []int64) sched.Task
	sortTask = func(s []int64) sched.Task {
		return func(w *sched.Worker) {
			for len(s) > grain {
				p := hoarePartition(s)
				// Spawn the smaller side; continue with the larger —
				// bounds spawned-task count while keeping the deque
				// stocked for thieves.
				if p < len(s)-p {
					w.Spawn(sortTask(s[:p]))
					s = s[p:]
				} else {
					w.Spawn(sortTask(s[p:]))
					s = s[:p]
				}
			}
			seq.Quicksort(s)
		}
	}
	pool.Run(sortTask(xs))
}

// hoarePartition partitions s with the classic Hoare scheme (pivot moved
// to s[0], median of three) and returns the split index p: every element
// of s[:p] is <= every element of s[p:], with 0 < p < len(s) guaranteed
// for len(s) >= 2 — the guarantee that makes the recursion terminate on
// any input, including all-equal keys.
func hoarePartition(s []int64) int {
	n := len(s)
	// Move the median of {first, middle, last} to s[0] as the pivot.
	mid := n / 2
	if s[mid] < s[0] {
		s[mid], s[0] = s[0], s[mid]
	}
	if s[n-1] < s[0] {
		s[n-1], s[0] = s[0], s[n-1]
	}
	if s[mid] < s[n-1] {
		s[mid], s[n-1] = s[n-1], s[mid]
	}
	s[0], s[n-1] = s[n-1], s[0] // median now at s[0]
	pivot := s[0]
	i, j := -1, n
	for {
		for {
			i++
			if s[i] >= pivot {
				break
			}
		}
		for {
			j--
			if s[j] <= pivot {
				break
			}
		}
		if i >= j {
			// Hoare invariant with pivot == s[0]: 0 <= j < n-1, so the
			// split p = j+1 is interior.
			return j + 1
		}
		s[i], s[j] = s[j], s[i]
	}
}

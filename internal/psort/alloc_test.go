package psort

import (
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/racecheck"
	"repro/internal/scratch"
)

// Steady-state allocation caps for the sorts: once the scratch pool is
// warm, a sort may allocate only its O(1) closure frames — the
// n-element double buffers and p×buckets count matrices that used to
// be reallocated per call all come from the pool. (Measured on this
// tree: SampleSort 7, MergeSort 10, RadixSort 32 small frames; the
// caps leave headroom for scheduler jitter.)
func TestSortSteadyStateAllocs(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("race instrumentation allocates")
	}
	xs := gen.Ints(1<<16, gen.Uniform, 42)
	buf := make([]int64, len(xs))
	opts := par.Options{Procs: 4}
	cases := []struct {
		name  string
		limit float64
		sort  func([]int64, par.Options)
	}{
		{"SampleSort", 12, SampleSort},
		{"MergeSort", 20, MergeSort},
		// RadixSort issues 16 fork/joins per call (2 per digit pass), so
		// straggler-delayed runState recycling adds a little jitter on
		// top of its ~32 closure frames.
		{"RadixSort", 64, RadixSort},
	}
	for _, c := range cases {
		run := func() {
			copy(buf, xs)
			c.sort(buf, opts)
		}
		run() // warm
		if got := testing.AllocsPerRun(10, run); got > c.limit {
			t.Errorf("%s: %.1f allocs/run at steady state, want <= %.0f", c.name, got, c.limit)
		}
	}
}

// TestSortScratchBytesReduction checks the headline claim at the sort
// level: with the pool on, steady-state bytes per sort drop by well
// over 90% versus the allocate-per-call baseline (each sort's scatter
// buffer alone is 8n bytes).
func TestSortScratchBytesReduction(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("race instrumentation allocates")
	}
	xs := gen.Ints(1<<15, gen.Uniform, 7)
	buf := make([]int64, len(xs))
	on := par.Options{Procs: 4}
	off := par.Options{Procs: 4, Scratch: scratch.Off}
	measure := func(opts par.Options) float64 {
		run := func() {
			copy(buf, xs)
			SampleSort(buf, opts)
		}
		run()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < 20; i++ {
			run()
		}
		runtime.ReadMemStats(&after)
		return float64(after.TotalAlloc-before.TotalAlloc) / 20
	}
	got := measure(on)
	base := measure(off)
	t.Logf("SampleSort: %.0f B/call with scratch vs %.0f B/call without", got, base)
	if got > base*0.10 {
		t.Errorf("scratch saves only %.0f%% of bytes, want >= 90%%", 100*(1-got/base))
	}
}

package psort

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/sched"
)

func TestQuickSortStealAllDistributions(t *testing.T) {
	pool := sched.NewPool(4)
	for _, d := range gen.Distributions {
		for _, n := range []int{0, 1, 2, 3, 100, 5000, 100000} {
			xs := gen.Ints(n, d, 77)
			want := sortedCopy(xs)
			QuickSortSteal(xs, pool)
			for i := range want {
				if xs[i] != want[i] {
					t.Fatalf("%v n=%d: mismatch at %d", d, n, i)
				}
			}
		}
	}
}

func TestQuickSortStealAcrossPools(t *testing.T) {
	xs0 := gen.Ints(50000, gen.Zipf, 3)
	want := sortedCopy(xs0)
	for _, p := range []int{1, 2, 8} {
		pool := sched.NewPool(p)
		xs := append([]int64(nil), xs0...)
		QuickSortSteal(xs, pool)
		for i := range want {
			if xs[i] != want[i] {
				t.Fatalf("procs=%d: mismatch at %d", p, i)
			}
		}
	}
}

func TestQuickSortStealQuick(t *testing.T) {
	pool := sched.NewPool(3)
	f := func(raw []int64) bool {
		xs := append([]int64(nil), raw...)
		want := sortedCopy(xs)
		QuickSortSteal(xs, pool)
		for i := range want {
			if xs[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHoarePartitionInvariants(t *testing.T) {
	for _, tc := range [][]int64{
		{2, 1}, {1, 2}, {3, 3, 3, 3}, {5, 1, 4, 2, 3}, {1, 1, 2, 2, 1, 1},
	} {
		xs := append([]int64(nil), tc...)
		p := hoarePartition(xs)
		if p <= 0 || p >= len(xs) {
			t.Fatalf("%v: split %d not interior", tc, p)
		}
		maxLeft := xs[0]
		for _, v := range xs[:p] {
			if v > maxLeft {
				maxLeft = v
			}
		}
		for _, v := range xs[p:] {
			if v < maxLeft {
				// Partition property: everything left <= everything
				// right is too strong for Hoare (equal keys may split
				// arbitrarily); check against the recomputed boundary.
				minRight := xs[p]
				for _, w := range xs[p:] {
					if w < minRight {
						minRight = w
					}
				}
				if maxLeft > minRight {
					t.Fatalf("%v -> %v | %v: left max %d > right min %d",
						tc, xs[:p], xs[p:], maxLeft, minRight)
				}
				break
			}
		}
	}
}

func TestHoarePartitionAllEqualTerminates(t *testing.T) {
	xs := make([]int64, 10000)
	p := hoarePartition(xs)
	if p <= 0 || p >= len(xs) {
		t.Fatalf("all-equal split %d", p)
	}
	pool := sched.NewPool(2)
	QuickSortSteal(xs, pool) // must terminate
	if !sort.SliceIsSorted(xs, func(i, j int) bool { return xs[i] < xs[j] }) {
		t.Fatal("unsorted")
	}
}

package psort

import (
	"repro/internal/adapt"
	"repro/internal/par"
	"repro/internal/scratch"
)

// siteCountingSort covers the whole count/regenerate pipeline, like
// the other sort sites.
var siteCountingSort = adapt.NewSite("psort.CountingSort", adapt.KindWorkers)

// CountingMaxRange is the key spread (max-min) at or above which
// CountingSort falls back to RadixSort: past it the counting array
// dwarfs the input and the O(n + range) bound stops being a win.
const CountingMaxRange = 1 << 20

// parCountRange bounds the spread for the parallel count phase: the
// per-worker count matrix is p*range ints, so wide-but-allowed ranges
// count serially instead of burning scratch on mostly-zero rows.
const parCountRange = 1 << 16

// CountingSort sorts xs in place by key counting: one pass to count
// occurrences of each value in [min, max], one pass over the counts to
// regenerate xs in order. O(n + range) with no comparisons — the
// narrow-key specialist of the sorter roster. Keys spreading wider
// than CountingMaxRange fall back to RadixSort, so it is safe to call
// on any input (which is what lets the adaptive variant lattice
// explore it blindly).
func CountingSort(xs []int64, opts par.Options) {
	n := len(xs)
	if n < 2 {
		return
	}
	opts, m := par.BeginAdaptive(siteCountingSort, n, opts)
	defer m.Done()
	min, max := xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < min {
			min = v
		} else if v > max {
			max = v
		}
	}
	// Two's-complement subtraction is exact for any int64 pair: the
	// true spread always fits in uint64.
	spread := uint64(max) - uint64(min)
	if spread >= CountingMaxRange {
		RadixSort(xs, opts)
		return
	}
	k := int(spread) + 1
	p := workers(opts, n)
	a := scratch.AcquireArena(opts.ScratchPool())
	defer a.Release()
	counts := scratch.MakeZeroed[int](a, k)
	if p > 1 && n >= 2048 && k <= parCountRange {
		// Parallel count: per-worker rows, serially folded. The fold is
		// O(p*k), cheap next to the O(n) passes at these spreads.
		rows := scratch.MakeZeroed[int](a, p*k)
		par.ForWorkers(p, opts, func(w int) {
			c := rows[w*k : (w+1)*k]
			for i := w * n / p; i < (w+1)*n/p; i++ {
				c[uint64(xs[i])-uint64(min)]++
			}
		})
		for w := 0; w < p; w++ {
			row := rows[w*k : (w+1)*k]
			for v, c := range row {
				counts[v] += c
			}
		}
	} else {
		for _, v := range xs {
			counts[uint64(v)-uint64(min)]++
		}
	}
	// Regenerate: keys are the values, so the sorted output is implied
	// by the counts alone.
	i := 0
	for v, c := range counts {
		key := min + int64(v)
		for ; c > 0; c-- {
			xs[i] = key
			i++
		}
	}
}

package psort

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/par"
)

func sortedCopy(xs []int64) []int64 {
	want := append([]int64(nil), xs...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	return want
}

func TestAllSortersAllDistributions(t *testing.T) {
	for _, s := range Sorters {
		for _, d := range gen.Distributions {
			for _, n := range []int{0, 1, 2, 100, 5000} {
				xs := gen.Ints(n, d, 1234)
				want := sortedCopy(xs)
				s.Sort(xs, par.Options{Procs: 4})
				for i := range want {
					if xs[i] != want[i] {
						t.Fatalf("%s on %v n=%d: mismatch at index %d", s.Name, d, n, i)
					}
				}
			}
		}
	}
}

func TestSortersAcrossProcs(t *testing.T) {
	xs0 := gen.Ints(20000, gen.Uniform, 5)
	want := sortedCopy(xs0)
	for _, s := range Sorters {
		for _, p := range []int{1, 2, 3, 7, 8} {
			xs := append([]int64(nil), xs0...)
			s.Sort(xs, par.Options{Procs: p})
			for i := range want {
				if xs[i] != want[i] {
					t.Fatalf("%s procs=%d: mismatch at %d", s.Name, p, i)
				}
			}
		}
	}
}

func TestSampleSortQuick(t *testing.T) {
	f := func(raw []int64, procs uint8) bool {
		xs := append([]int64(nil), raw...)
		want := sortedCopy(xs)
		SampleSort(xs, par.Options{Procs: int(procs%8) + 1})
		for i := range want {
			if xs[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeSortLargeCrossesGrain(t *testing.T) {
	xs := gen.Ints(100000, gen.Zipf, 17)
	want := sortedCopy(xs)
	MergeSort(xs, par.Options{Procs: 8, Grain: 1024})
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestRadixSortNegativeKeys(t *testing.T) {
	xs := []int64{}
	for i := -5000; i < 5000; i++ {
		xs = append(xs, int64(-i*7))
	}
	want := sortedCopy(xs)
	RadixSort(xs, par.Options{Procs: 4})
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("mismatch at %d: %d vs %d", i, xs[i], want[i])
		}
	}
}

func TestBucketOf(t *testing.T) {
	splitters := []int64{10, 20, 30}
	cases := map[int64]int{5: 0, 10: 1, 15: 1, 20: 2, 29: 2, 30: 3, 99: 3}
	for v, want := range cases {
		if got := bucketOf(v, splitters); got != want {
			t.Fatalf("bucketOf(%d) = %d, want %d", v, got, want)
		}
	}
	if bucketOf(5, nil) != 0 {
		t.Fatal("bucketOf with no splitters")
	}
}

func TestIsSortedParallel(t *testing.T) {
	opts := par.Options{Procs: 4, Grain: 16}
	if !IsSortedParallel([]int64{1, 2, 2, 3}, opts) {
		t.Fatal("sorted slice reported unsorted")
	}
	if IsSortedParallel([]int64{1, 3, 2}, opts) {
		t.Fatal("unsorted slice reported sorted")
	}
	if !IsSortedParallel(nil, opts) || !IsSortedParallel([]int64{7}, opts) {
		t.Fatal("degenerate slices")
	}
	big := gen.Ints(100000, gen.Uniform, 3)
	SampleSort(big, opts)
	if !IsSortedParallel(big, opts) {
		t.Fatal("sample sort output unsorted")
	}
}

func TestSampleSortDeterministic(t *testing.T) {
	a := gen.Ints(50000, gen.Uniform, 9)
	b := append([]int64(nil), a...)
	SampleSort(a, par.Options{Procs: 4})
	SampleSort(b, par.Options{Procs: 4})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic output at %d", i)
		}
	}
}

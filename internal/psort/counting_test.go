package psort

import (
	"slices"
	"testing"

	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/rng"
)

func TestCountingSortNarrowKeys(t *testing.T) {
	r := rng.New(11)
	for _, n := range []int{0, 1, 2, 63, 4096, 1 << 15} {
		for _, procs := range []int{1, 4} {
			xs := make([]int64, n)
			for i := range xs {
				xs[i] = int64(r.Intn(1 << 16)) // uint16-range keys
			}
			want := slices.Clone(xs)
			slices.Sort(want)
			CountingSort(xs, par.Options{Procs: procs, SerialCutoff: 1})
			if !slices.Equal(xs, want) {
				t.Fatalf("n=%d procs=%d: counting sort wrong", n, procs)
			}
		}
	}
}

func TestCountingSortNegativeKeys(t *testing.T) {
	r := rng.New(12)
	xs := make([]int64, 8192)
	for i := range xs {
		xs[i] = int64(r.Intn(1<<12)) - (1 << 11)
	}
	want := slices.Clone(xs)
	slices.Sort(want)
	CountingSort(xs, par.Options{Procs: 4, SerialCutoff: 1})
	if !slices.Equal(xs, want) {
		t.Fatal("counting sort wrong on negative keys")
	}
}

func TestCountingSortWideKeysFallsBack(t *testing.T) {
	// Full-range keys exceed CountingMaxRange; the radix fallback must
	// still sort correctly (including extreme values whose spread wraps
	// near the uint64 limit).
	xs := gen.Ints(1<<14, gen.Uniform, 13)
	xs[0], xs[1] = -1<<63, 1<<63-1
	want := slices.Clone(xs)
	slices.Sort(want)
	CountingSort(xs, par.Options{Procs: 4, SerialCutoff: 1})
	if !slices.Equal(xs, want) {
		t.Fatal("counting sort wrong on wide keys")
	}
}

func TestCountingSortBoundarySpread(t *testing.T) {
	// Spread exactly CountingMaxRange-1 stays on the counting path;
	// exactly CountingMaxRange falls back. Both must sort.
	for _, spread := range []int64{CountingMaxRange - 1, CountingMaxRange} {
		xs := []int64{0, spread, 3, spread - 1, 0, 7}
		want := slices.Clone(xs)
		slices.Sort(want)
		CountingSort(xs, par.Options{Procs: 2, SerialCutoff: 1})
		if !slices.Equal(xs, want) {
			t.Fatalf("spread=%d: counting sort wrong: %v", spread, xs)
		}
	}
}

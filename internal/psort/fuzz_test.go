package psort

import (
	"encoding/binary"
	"testing"

	"repro/internal/adapt"
	"repro/internal/par"
	"repro/internal/seq"
)

// fuzzCtl keeps the adaptive controller mid-exploration for the whole
// fuzzing session: every execution may sort under a different
// candidate (serial, different worker shares, different merge leaf
// grains), and the output must always match the sequential oracle.
var fuzzCtl = adapt.New(adapt.Config{Epsilon: 1, ConvergeAfter: 1 << 30, Seed: 0xF422})

// decodeKeys turns fuzz bytes into int64 keys (8 bytes each, tail
// bytes dropped).
func decodeKeys(data []byte) []int64 {
	xs := make([]int64, len(data)/8)
	for i := range xs {
		xs[i] = int64(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return xs
}

func encodeKeys(xs []int64) []byte {
	data := make([]byte, len(xs)*8)
	for i, x := range xs {
		binary.LittleEndian.PutUint64(data[i*8:], uint64(x))
	}
	return data
}

// FuzzSortAdaptive cross-checks every parallel sort, running in
// adaptive mode mid-exploration, against the sequential oracle on
// fuzzer-mutated inputs, seeded with the classic adversarial shapes.
func FuzzSortAdaptive(f *testing.F) {
	sorted := make([]int64, 600)
	reverse := make([]int64, 600)
	equal := make([]int64, 600)
	singleRun := make([]int64, 600)
	for i := range sorted {
		sorted[i] = int64(i)
		reverse[i] = int64(len(reverse) - i)
		equal[i] = 42
		// One sorted run with a single displaced element at the end —
		// the "almost sorted" shape that trips lazy cutoff logic.
		singleRun[i] = int64(i)
	}
	singleRun[len(singleRun)-1] = -1
	f.Add(encodeKeys(sorted))
	f.Add(encodeKeys(reverse))
	f.Add(encodeKeys(equal))
	f.Add(encodeKeys(singleRun))
	f.Add(encodeKeys([]int64{}))
	f.Add(encodeKeys([]int64{1 << 62, -(1 << 62), 0, -1, 1}))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		xs := decodeKeys(data)
		want := append([]int64(nil), xs...)
		seq.Quicksort(want)
		opts := par.Options{Procs: 4, Adaptive: fuzzCtl}
		for _, s := range []struct {
			name string
			sort func([]int64, par.Options)
		}{{"samplesort", SampleSort}, {"mergesort", MergeSort}, {"radix", RadixSort}} {
			got := append([]int64(nil), xs...)
			s.sort(got, opts)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: [%d] = %d, want %d (n=%d)", s.name, i, got[i], want[i], len(xs))
				}
			}
		}
	})
}

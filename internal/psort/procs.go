package psort

import "runtime"

// defaultProcs returns the default worker count (GOMAXPROCS).
func defaultProcs() int { return runtime.GOMAXPROCS(0) }

// Package psort implements the parallel sorting case study: sample sort,
// parallel merge sort, and parallel LSD radix sort, each engineered
// against the sequential baselines in internal/seq.
//
// The three algorithms span the design space the methodology explores:
//
//   - Sample sort is the classic distribution sort for parallel machines:
//     splitter selection makes bucket sizes even with high probability, so
//     the final per-bucket sorts are balanced and independent.
//   - Parallel merge sort is the work-efficient fork/join comparison sort;
//     its merges become parallel (merge-path) near the root where only a
//     few large runs remain.
//   - Radix sort is the non-comparison contender: O(n · 64/r) work, but
//     each pass is a full memory shuffle, so it wins only when keys are
//     short or memory bandwidth is plentiful.
//
// Experiments E2 and E3 compare them across input distributions and
// processor counts.
//
// Layering: psort consumes par (fork/join, merge), sched (the
// steal-based sort), scratch (samples, count matrices, double
// buffers), seq (serial fallbacks) and rng (sampling); it feeds
// core's sorting experiments, pipeline's Sort stage, the serve
// traffic benchmark and the repro facade's three sorts.
package psort

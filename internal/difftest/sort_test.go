package difftest

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/psel"
	"repro/internal/psort"
	"repro/internal/seq"
)

// The comparison sorts that are kernel-registry variants (sample,
// radix, counting) get their differential coverage from the
// registry-derived matrix in registry_test.go; this file keeps the
// primitives the registry does not wrap.

// sortDists is the adversarial distribution axis.
var sortDists = []gen.Distribution{gen.Uniform, gen.Sorted, gen.Reversed, gen.FewUnique}

func TestDiffMergeSort(t *testing.T) {
	matrix := smallMatrix()
	for _, n := range sizes() {
		for _, d := range sortDists {
			xs := gen.Ints(n, d, uint64(n)+uint64(d)*31+1)
			want := append([]int64(nil), xs...)
			seq.Quicksort(want)
			t.Run(fmt.Sprintf("n%d/%s", n, d), func(t *testing.T) {
				forEach(t, matrix, func(t *testing.T, opts par.Options) {
					got := append([]int64(nil), xs...)
					psort.MergeSort(got, opts)
					eqInt64(t, "mergesort", got, want)
				})
			})
		}
	}
}

func TestDiffSelect(t *testing.T) {
	matrix := smallMatrix()
	for _, n := range sizes() {
		if n == 0 {
			continue // Select panics on empty input by contract
		}
		xs := input(n)
		sorted := append([]int64(nil), xs...)
		seq.Quicksort(sorted)
		ks := []int{0, n / 2, n - 1}
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			forEach(t, matrix, func(t *testing.T, opts par.Options) {
				for _, k := range ks {
					if got := psel.Select(xs, k, opts); got != sorted[k] {
						t.Fatalf("Select(k=%d) = %d, want %d", k, got, sorted[k])
					}
					if got := psel.SelectSeq(xs, k); got != sorted[k] {
						t.Fatalf("SelectSeq(k=%d) = %d, want %d", k, got, sorted[k])
					}
				}
			})
		})
	}
}

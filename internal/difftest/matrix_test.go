package difftest

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/pmat"
	"repro/internal/pstencil"
	"repro/internal/seq"
)

// matSizes: the matmul size axis (n×n); 1 exercises degenerate tiles,
// odd sizes exercise ragged edge blocks.
func matSizes() []int {
	if testing.Short() {
		return []int{1, 2, 17, 48}
	}
	return []int{1, 2, 17, 48, 97}
}

func TestDiffMatmul(t *testing.T) {
	matrix := smallMatrix()
	for _, n := range matSizes() {
		a := gen.RandomMatrix(n, n, uint64(n)+41)
		b := gen.RandomMatrix(n, n, uint64(n)+43)
		want := seq.Matmul(a, b)
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			forEach(t, matrix, func(t *testing.T, opts par.Options) {
				// Row-parallel matmul accumulates each output cell in the
				// same k-ascending order as the oracle, so equality is
				// exact — parallelism must not change a single bit.
				if got := pmat.Mul(a, b, pmat.Config{Opts: opts}); !got.Equal(want, 0) {
					t.Fatal("Mul differs from sequential oracle")
				}
				if got := pmat.Mul(a, b, pmat.Config{Block: 7, Opts: opts}); !got.Equal(want, 0) {
					t.Fatal("Mul(block=7) differs from sequential oracle")
				}
				if got := pmat.MulNaive(a, b, opts); !got.Equal(want, 0) {
					t.Fatal("MulNaive differs from sequential oracle")
				}
			})
		})
	}
}

func TestDiffStencil(t *testing.T) {
	matrix := smallMatrix()
	gridSizes := []int{3, 4, 17, 65}
	const iters = 5
	for _, n := range gridSizes {
		g := gen.HotPlateGrid(n)
		want := seq.Jacobi(g, iters)
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			forEach(t, matrix, func(t *testing.T, opts par.Options) {
				got := pstencil.Jacobi(g, iters, opts)
				for i := range got.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("Jacobi cell %d = %g, want %g", i, got.Data[i], want.Data[i])
					}
				}
			})
		})
	}
}

package difftest

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/seq"
)

func input(n int) []int64 {
	return gen.Ints(n, gen.Uniform, uint64(n)*13+7)
}

func TestDiffScan(t *testing.T) {
	matrix := fullMatrix()
	for _, n := range sizes() {
		xs := input(n)
		wantIncl := make([]int64, n)
		seq.Scan(wantIncl, xs)
		wantExcl := make([]int64, n)
		var acc int64
		for i, x := range xs {
			wantExcl[i] = acc
			acc += x
		}
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			forEach(t, matrix, func(t *testing.T, opts par.Options) {
				dst := make([]int64, n)
				par.ScanInclusive(dst, xs, opts, 0, func(a, b int64) int64 { return a + b })
				eqInt64(t, "inclusive", dst, wantIncl)
				par.ScanExclusive(dst, xs, opts, 0, func(a, b int64) int64 { return a + b })
				eqInt64(t, "exclusive", dst, wantExcl)
			})
		})
	}
}

func TestDiffReduce(t *testing.T) {
	matrix := fullMatrix()
	for _, n := range sizes() {
		xs := input(n)
		var wantSum int64
		for _, x := range xs {
			wantSum += x
		}
		wantCount := 0
		for _, x := range xs {
			if x&3 == 0 {
				wantCount++
			}
		}
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			forEach(t, matrix, func(t *testing.T, opts par.Options) {
				if got := par.Sum(xs, opts); got != wantSum {
					t.Fatalf("Sum = %d, want %d", got, wantSum)
				}
				got := par.Count(n, opts, func(i int) bool { return xs[i]&3 == 0 })
				if got != wantCount {
					t.Fatalf("Count = %d, want %d", got, wantCount)
				}
			})
		})
	}
}

func TestDiffPack(t *testing.T) {
	matrix := fullMatrix()
	pred := func(v int64) bool { return v&1 == 0 }
	for _, n := range sizes() {
		xs := input(n)
		var want []int64
		var wantIdx []int
		for i, x := range xs {
			if pred(x) {
				want = append(want, x)
				wantIdx = append(wantIdx, i)
			}
		}
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			forEach(t, matrix, func(t *testing.T, opts par.Options) {
				eqInt64(t, "Pack", par.Pack(xs, opts, pred), want)
				dst := make([]int64, n)
				k := par.PackInto(dst, xs, opts, pred)
				eqInt64(t, "PackInto", dst[:k], want)
				eqInts(t, "PackIndex", par.PackIndex(n, opts, func(i int) bool { return pred(xs[i]) }), wantIdx)
				idx := make([]int, n)
				k = par.PackIndexInto(idx, n, opts, func(i int) bool { return pred(xs[i]) })
				eqInts(t, "PackIndexInto", idx[:k], wantIdx)
			})
		})
	}
}

func TestDiffHistogram(t *testing.T) {
	matrix := fullMatrix()
	const buckets = 97 // prime: uneven merge bands
	bucket := func(v int64) int { return int(uint64(v) % buckets) }
	for _, n := range sizes() {
		xs := input(n)
		want := make([]int, buckets)
		for _, x := range xs {
			want[bucket(x)]++
		}
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			forEach(t, matrix, func(t *testing.T, opts par.Options) {
				eqInts(t, "Histogram", par.Histogram(xs, buckets, opts, bucket), want)
				out := make([]int, buckets)
				par.HistogramInto(out, xs, opts, bucket)
				eqInts(t, "HistogramInto", out, want)
			})
		})
	}
}

func TestDiffMerge(t *testing.T) {
	matrix := fullMatrix()
	for _, n := range sizes() {
		a := input(n)
		b := input(n / 2)
		seq.Quicksort(a)
		seq.Quicksort(b)
		want := make([]int64, len(a)+len(b))
		i, j := 0, 0
		for k := range want {
			if j >= len(b) || (i < len(a) && a[i] <= b[j]) {
				want[k] = a[i]
				i++
			} else {
				want[k] = b[j]
				j++
			}
		}
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			forEach(t, matrix, func(t *testing.T, opts par.Options) {
				dst := make([]int64, len(a)+len(b))
				par.Merge(dst, a, b, opts, func(x, y int64) bool { return x < y })
				eqInt64(t, "Merge", dst, want)
			})
		})
	}
}

// Package difftest is the differential oracle test suite: every
// parallel kernel in the repository is cross-checked against its
// sequential oracle (internal/seq, or a transparent reference loop)
// over the full configuration matrix — sizes {0, 1, small, odd,
// large}, every par.Policy, worker counts {1, 2, GOMAXPROCS}, scratch
// on/off, and the adaptive tuning runtime mid-exploration, where the
// controller may pick a different candidate on every call and the
// results must nonetheless be bit-identical while only timings vary.
//
// This is the determinism contract internal/adapt relies on (it may
// change schedules freely because schedules never change results) made
// executable. The package contains only tests; there is no library
// code to import.
package difftest

package difftest

import (
	"fmt"
	"testing"

	"repro/internal/kernel"
	"repro/internal/par"
)

// seedCount is the input-shape axis for registry kernels: each
// kernel's Gen maps seeds to different distributions, key widths and
// sortedness regimes (the sort kernel rotates uniform / nearly-sorted
// / reversed / few-unique and narrows keys on odd seeds), so sweeping
// seeds sweeps the adversarial inputs the hand-rolled tests used to
// enumerate by hand.
const seedCount = 4

// TestDiffRegistryKernels is the registry-derived differential
// matrix: every registered kernel × size × seed × configuration,
// with the dispatched entrypoint checked against the kernel's serial
// oracle. Registering a kernel buys this coverage with no edits here.
func TestDiffRegistryKernels(t *testing.T) {
	matrix := smallMatrix()
	for _, k := range kernel.All() {
		t.Run(k.Name, func(t *testing.T) {
			for _, n := range sizes() {
				for seed := uint64(0); seed < seedCount; seed++ {
					want := k.Gen(n, seed)
					k.Serial(want)
					t.Run(fmt.Sprintf("n%d/seed%d", n, seed), func(t *testing.T) {
						forEach(t, matrix, func(t *testing.T, opts par.Options) {
							got := k.Gen(n, seed)
							if k.Validate != nil {
								if err := k.Validate(got); err != nil {
									t.Fatalf("Gen produced invalid args: %v", err)
								}
							}
							k.Run(got, opts)
							if err := k.Check(got, want); err != nil {
								t.Fatal(err)
							}
						})
					})
				}
			}
		})
	}
}

// TestDiffRegistryVariants oracle-checks every algorithm variant
// individually — dispatch may route around a broken variant for whole
// input regimes, so each one is pinned against the serial oracle on
// every input shape, not just the shapes the lattice sends it.
func TestDiffRegistryVariants(t *testing.T) {
	for _, k := range kernel.All() {
		if len(k.Variants) < 2 {
			continue // single variant: already covered by the dispatched matrix
		}
		t.Run(k.Name, func(t *testing.T) {
			for i, v := range k.Variants {
				t.Run(v.Name, func(t *testing.T) {
					for _, n := range sizes() {
						for seed := uint64(0); seed < seedCount; seed++ {
							want := k.Gen(n, seed)
							k.Serial(want)
							for _, p := range procCounts() {
								got := k.Gen(n, seed)
								k.RunVariant(i, got, par.Options{Procs: p, Grain: 64, SerialCutoff: 1})
								if err := k.Check(got, want); err != nil {
									t.Fatalf("n%d/seed%d/p%d: %v", n, seed, p, err)
								}
							}
						}
					}
				})
			}
		})
	}
}

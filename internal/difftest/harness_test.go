package difftest

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/adapt"
	"repro/internal/par"
	"repro/internal/scratch"
)

// sizes is the differential size axis: empty, singleton, small,
// odd/prime (exercises uneven block splits), and large enough that
// every configuration actually takes its parallel path.
func sizes() []int {
	large := 40_000
	if testing.Short() {
		large = 8_000
	}
	return []int{0, 1, 5, 63, 1021, large}
}

// procCounts is the worker-count axis.
func procCounts() []int {
	g := runtime.GOMAXPROCS(0)
	if g <= 2 {
		// Few-core runner: still exercise a proper fan-out.
		return []int{1, 2, 4}
	}
	return []int{1, 2, g}
}

// cfg is one cell of the configuration matrix.
type cfg struct {
	name string
	opts par.Options
	// rounds repeats the kernel call; >1 for the adaptive cells, where
	// mid-exploration rounds may each take a different candidate and
	// must all produce identical results.
	rounds int
}

// exploring returns a controller pinned mid-exploration (epsilon 1,
// never converges), so repeated rounds sample different candidates.
func exploring() *adapt.Controller {
	return adapt.New(adapt.Config{Epsilon: 1, ConvergeAfter: 1 << 30, Seed: 271828})
}

// fullMatrix is the complete configuration axis for the cheap array
// kernels: every policy × worker count × scratch mode, plus the
// adaptive mode (policy is the controller's to pick, so it replaces
// the policy axis there).
func fullMatrix() []cfg {
	var out []cfg
	for _, p := range procCounts() {
		for _, sc := range []struct {
			name string
			pool *scratch.Pool
		}{{"scratch", nil}, {"noscratch", scratch.Off}} {
			for _, pol := range par.Policies {
				out = append(out, cfg{
					name: fmt.Sprintf("p%d/%s/%s", p, sc.name, pol),
					opts: par.Options{Procs: p, Policy: pol, Grain: 64,
						SerialCutoff: 1, Scratch: sc.pool},
					rounds: 1,
				})
			}
			out = append(out, cfg{
				name:   fmt.Sprintf("p%d/%s/adaptive", p, sc.name),
				opts:   par.Options{Procs: p, Scratch: sc.pool, Adaptive: exploring()},
				rounds: 4,
			})
		}
	}
	return out
}

// smallMatrix is the trimmed axis for the expensive kernels (sorts,
// graphs, matrices): two policies stand in for the schedule axis, and
// the adaptive cells stay.
func smallMatrix() []cfg {
	var out []cfg
	for _, p := range procCounts() {
		for _, pol := range []par.Policy{par.Static, par.Dynamic} {
			out = append(out, cfg{
				name:   fmt.Sprintf("p%d/%s", p, pol),
				opts:   par.Options{Procs: p, Policy: pol, Grain: 64, SerialCutoff: 1},
				rounds: 1,
			})
		}
		out = append(out, cfg{
			name:   fmt.Sprintf("p%d/noscratch", p),
			opts:   par.Options{Procs: p, Scratch: scratch.Off},
			rounds: 1,
		})
		out = append(out, cfg{
			name:   fmt.Sprintf("p%d/adaptive", p),
			opts:   par.Options{Procs: p, Adaptive: exploring()},
			rounds: 3,
		})
	}
	return out
}

// forEach runs body once per (config, round), labeled for failure
// triage.
func forEach(t *testing.T, matrix []cfg, body func(t *testing.T, opts par.Options)) {
	t.Helper()
	for _, c := range matrix {
		t.Run(c.name, func(t *testing.T) {
			for round := 0; round < c.rounds; round++ {
				body(t, c.opts)
			}
		})
	}
}

func eqInt64(t *testing.T, what string, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %d, want %d", what, i, got[i], want[i])
		}
	}
}

func eqInts(t *testing.T, what string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %d, want %d", what, i, got[i], want[i])
		}
	}
}

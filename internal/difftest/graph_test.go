package difftest

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pgraph"
	"repro/internal/plist"
	"repro/internal/seq"
)

// graphSizes trims the size axis for graph kernels (generation
// dominates past a few thousand nodes; parallel paths engage well
// before that).
func graphSizes() []int {
	if testing.Short() {
		return []int{1, 2, 33, 500}
	}
	return []int{1, 2, 33, 509, 4000}
}

func TestDiffListRank(t *testing.T) {
	matrix := smallMatrix()
	for _, n := range graphSizes() {
		l := gen.RandomList(n, uint64(n)*5+3)
		want := seq.ListRank(l)
		eqInts(t, "oracle-vs-reference", want, l.RanksRef())
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			forEach(t, matrix, func(t *testing.T, opts par.Options) {
				eqInts(t, "Rank", plist.Rank(l, opts), want)
			})
		})
	}
}

// bfsOracle is a textbook queue BFS producing hop distances.
func bfsOracle(g *graph.Graph, src int) []int32 {
	depth := make([]int32, g.N())
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(int(v)) {
			if depth[w] == -1 {
				depth[w] = depth[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return depth
}

func TestDiffBFS(t *testing.T) {
	matrix := smallMatrix()
	for _, n := range graphSizes() {
		g := gen.ErdosRenyi(n, 4, false, uint64(n)+11)
		want := bfsOracle(g, 0)
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			forEach(t, matrix, func(t *testing.T, opts par.Options) {
				got := pgraph.BFS(g, 0, opts)
				if len(got) != len(want) {
					t.Fatalf("BFS len %d, want %d", len(got), len(want))
				}
				for v := range got {
					if got[v] != want[v] {
						t.Fatalf("BFS depth[%d] = %d, want %d", v, got[v], want[v])
					}
				}
			})
		})
	}
}

func TestDiffCC(t *testing.T) {
	matrix := smallMatrix()
	for _, n := range graphSizes() {
		// Components generator guarantees multiple components when the
		// size permits; ErdosRenyi covers the sparse connected-ish case.
		graphs := []*graph.Graph{gen.ErdosRenyi(n, 2, false, uint64(n)+17)}
		if n >= 32 {
			graphs = append(graphs, gen.Components(4, n/4, 3, uint64(n)+23))
		}
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			for gi, g := range graphs {
				want := seq.ConnectedComponentsBFS(g)
				forEach(t, matrix, func(t *testing.T, opts par.Options) {
					if got := pgraph.CCHook(g, opts); !pgraph.SamePartition(got, want) {
						t.Fatalf("graph %d: CCHook partition mismatch", gi)
					}
					if got := pgraph.CCLabelProp(g, opts); !pgraph.SamePartition(got, want) {
						t.Fatalf("graph %d: CCLabelProp partition mismatch", gi)
					}
				})
			}
		})
	}
}

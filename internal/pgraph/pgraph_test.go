package pgraph

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/seq"
)

var testOpts = par.Options{Procs: 4, Grain: 64}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"er-sparse":  gen.ErdosRenyi(2000, 2, false, 1),  // many components
		"er-dense":   gen.ErdosRenyi(1000, 16, false, 2), // one giant component
		"rmat":       gen.RMAT(10, 8, false, 3),
		"grid":       gen.Grid2D(40, 50, false, 4),
		"tree":       gen.RandomTree(1500, false, 5),
		"components": gen.Components(5, 200, 8, 6),
	}
}

func TestCCAlgorithmsMatchReference(t *testing.T) {
	for name, g := range testGraphs() {
		ref := g.ConnectedComponentsRef()
		for algName, fn := range map[string]func(*graph.Graph, par.Options) []int32{
			"labelprop": CCLabelProp,
			"hook":      CCHook,
		} {
			got := fn(g, testOpts)
			if !SamePartition(got, ref) {
				t.Fatalf("%s on %s: partition mismatch", algName, name)
			}
		}
	}
}

func TestCCAcrossProcs(t *testing.T) {
	g := gen.RMAT(11, 4, false, 9)
	ref := g.ConnectedComponentsRef()
	for _, p := range []int{1, 2, 8} {
		opts := par.Options{Procs: p, Grain: 32}
		if !SamePartition(CCLabelProp(g, opts), ref) {
			t.Fatalf("labelprop procs=%d mismatch", p)
		}
		if !SamePartition(CCHook(g, opts), ref) {
			t.Fatalf("hook procs=%d mismatch", p)
		}
	}
}

func TestCCComponentsExactCount(t *testing.T) {
	g := gen.Components(7, 150, 8, 11)
	if got := CountComponents(CCLabelProp(g, testOpts)); got != 7 {
		t.Fatalf("labelprop found %d components, want 7", got)
	}
	if got := CountComponents(CCHook(g, testOpts)); got != 7 {
		t.Fatalf("hook found %d components, want 7", got)
	}
}

func TestCCQuick(t *testing.T) {
	f := func(seed uint64, procs uint8) bool {
		g := gen.ErdosRenyi(300, 3, false, seed)
		ref := g.ConnectedComponentsRef()
		opts := par.Options{Procs: int(procs%8) + 1, Grain: 16}
		return SamePartition(CCLabelProp(g, opts), ref) &&
			SamePartition(CCHook(g, opts), ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSamePartitionNegativeCases(t *testing.T) {
	if SamePartition([]int32{0, 0}, []int{0, 1}) {
		t.Fatal("merged vs split accepted")
	}
	if SamePartition([]int32{0, 1}, []int{0, 0}) {
		t.Fatal("split vs merged accepted")
	}
	if SamePartition([]int32{0}, []int{0, 0}) {
		t.Fatal("length mismatch accepted")
	}
	if !SamePartition([]int32{5, 5, 9}, []int{1, 1, 2}) {
		t.Fatal("relabelled identical partition rejected")
	}
}

func TestBFSDepthsMatchSequential(t *testing.T) {
	for name, g := range testGraphs() {
		got := BFS(g, 0, testOpts)
		want := bfsRef(g, 0)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: depth[%d] = %d, want %d", name, v, got[v], want[v])
			}
		}
	}
}

func TestBFSGridDiameter(t *testing.T) {
	// On a rows x cols grid from corner 0, the max depth is
	// (rows-1)+(cols-1).
	g := gen.Grid2D(30, 20, false, 1)
	depth := BFS(g, 0, testOpts)
	if ecc := Eccentricity(depth); ecc != 48 {
		t.Fatalf("grid eccentricity = %d, want 48", ecc)
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := gen.Components(2, 50, 6, 13) // two disjoint clusters
	depth := BFS(g, 0, testOpts)
	sawUnreachable := false
	for v := 50; v < 100; v++ {
		if depth[v] == -1 {
			sawUnreachable = true
		} else {
			t.Fatalf("node %d in other component has depth %d", v, depth[v])
		}
	}
	if !sawUnreachable {
		t.Fatal("expected unreachable nodes")
	}
}

// bfsRef is a simple sequential BFS oracle.
func bfsRef(g *graph.Graph, src int) []int32 {
	n := g.N()
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(int(v)) {
			if depth[u] == -1 {
				depth[u] = depth[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return depth
}

func TestMSTBoruvkaMatchesKruskal(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4} {
		g := gen.ErdosRenyi(800, 8, true, seed)
		want := seq.MSTKruskal(g)
		got := MSTBoruvka(g, testOpts)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("seed %d: Boruvka %v != Kruskal %v", seed, got, want)
		}
	}
}

func TestMSTBoruvkaOnTreeAndGrid(t *testing.T) {
	tree := gen.RandomTree(500, true, 7)
	var treeTotal float64
	tree.ForEdges(func(_, _ int, w float64) { treeTotal += w })
	if got := MSTBoruvka(tree, testOpts); math.Abs(got-treeTotal) > 1e-9 {
		t.Fatalf("tree MST = %v, want %v", got, treeTotal)
	}
	grid := gen.Grid2D(20, 20, true, 8)
	want := seq.MSTKruskal(grid)
	if got := MSTBoruvka(grid, testOpts); math.Abs(got-want) > 1e-9*(1+want) {
		t.Fatalf("grid MST = %v, want %v", got, want)
	}
}

func TestMSTBoruvkaDisconnected(t *testing.T) {
	g := gen.Components(3, 100, 6, 21)
	// Unweighted components graph: build a weighted version by reusing
	// edges with weight 1; forest weight = n - #components.
	edges := g.Edges()
	wg := graph.MustBuild(g.N(), edges, true)
	got := MSTBoruvka(wg, testOpts)
	want := float64(g.N() - 3)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("forest weight = %v, want %v", got, want)
	}
}

func TestMSTAcrossProcs(t *testing.T) {
	g := gen.ErdosRenyi(600, 10, true, 31)
	want := seq.MSTKruskal(g)
	for _, p := range []int{1, 2, 8} {
		got := MSTBoruvka(g, par.Options{Procs: p, Grain: 32})
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("procs=%d: %v != %v", p, got, want)
		}
	}
}

func TestGraphBuildErrors(t *testing.T) {
	if _, err := graph.Build(2, []graph.Edge{{U: 0, V: 5}}, false); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestGraphAccessors(t *testing.T) {
	g := graph.MustBuild(3, []graph.Edge{{U: 0, V: 1, W: 2.5}, {U: 1, V: 2, W: 1.5}}, true)
	if g.N() != 3 || g.M() != 2 || !g.Weighted() {
		t.Fatalf("summary: %v", g)
	}
	if g.Degree(1) != 2 || g.MaxDegree() != 2 {
		t.Fatal("degrees wrong")
	}
	ws := g.NeighborWeights(0)
	if len(ws) != 1 || ws[0] != 2.5 {
		t.Fatalf("weights: %v", ws)
	}
	count := 0
	var sum float64
	g.ForEdges(func(u, v int, w float64) { count++; sum += w })
	if count != 2 || sum != 4 {
		t.Fatalf("ForEdges count=%d sum=%v", count, sum)
	}
	g.SortAdjacency()
	nb := g.Neighbors(1)
	if nb[0] != 0 || nb[1] != 2 {
		t.Fatalf("sorted adjacency: %v", nb)
	}
}

package pgraph

import (
	"math"

	"repro/internal/graph"
	"repro/internal/par"
)

// PageRankResult carries the converged ranks and iteration count.
type PageRankResult struct {
	Ranks []float64
	Iters int
}

// PageRank computes PageRank by synchronous power iteration with the
// standard damping formulation, treating the undirected graph as having
// an edge in both directions. Dangling mass (isolated nodes) is
// redistributed uniformly. Iteration stops when the L1 change falls
// below tol or maxIters is reached.
//
// The kernel is the canonical "sparse matrix-vector product per round"
// workload: per-round work is Θ(m) with degree-skewed per-node cost, so
// it inherits every load-balancing concern the scheduling experiments
// study, plus a global reduction (the dangling/L1 terms) per round.
func PageRank(g *graph.Graph, damping, tol float64, maxIters int, opts par.Options) PageRankResult {
	n := g.N()
	if n == 0 {
		return PageRankResult{}
	}
	cur := make([]float64, n)
	next := make([]float64, n)
	inv := 1 / float64(n)
	par.For(n, opts, func(v int) { cur[v] = inv })

	for it := 1; it <= maxIters; it++ {
		// Dangling mass: rank of degree-0 nodes spreads uniformly.
		dangling := par.Reduce(n, opts, 0.0,
			func(a, b float64) float64 { return a + b },
			func(v int) float64 {
				if g.Degree(v) == 0 {
					return cur[v]
				}
				return 0
			})
		base := (1-damping)*inv + damping*dangling*inv

		// Pull step: next[v] = base + d * Σ_{u∈N(v)} cur[u]/deg(u).
		par.For(n, opts, func(v int) {
			sum := 0.0
			for _, u := range g.Neighbors(v) {
				sum += cur[u] / float64(g.Degree(int(u)))
			}
			next[v] = base + damping*sum
		})

		delta := par.Reduce(n, opts, 0.0,
			func(a, b float64) float64 { return a + b },
			func(v int) float64 { return math.Abs(next[v] - cur[v]) })
		cur, next = next, cur
		if delta < tol {
			return PageRankResult{Ranks: cur, Iters: it}
		}
	}
	return PageRankResult{Ranks: cur, Iters: maxIters}
}

// TriangleCount returns the number of triangles in g using the standard
// node-iterator-with-orientation algorithm: orient each edge from lower
// to higher degree (ties by id), then for every node intersect the
// sorted forward-adjacency lists of its forward neighbors. Orientation
// bounds per-node forward degree by O(√m), the arboricity argument that
// makes the algorithm practical on skewed graphs — and the per-node work
// skew it retains is exactly why the harness pairs it with the dynamic
// schedule.
//
// The graph's adjacency lists must not contain duplicate parallel edges
// for exact counts (generators with multi-edges produce upper bounds).
func TriangleCount(g *graph.Graph, opts par.Options) int64 {
	n := g.N()
	// Build forward adjacency: u -> v iff (deg(u), u) < (deg(v), v).
	forward := make([][]int32, n)
	less := func(a, b int32) bool {
		da, db := g.Degree(int(a)), g.Degree(int(b))
		if da != db {
			return da < db
		}
		return a < b
	}
	par.For(n, opts, func(u int) {
		var fwd []int32
		for _, v := range g.Neighbors(u) {
			if less(int32(u), v) {
				fwd = append(fwd, v)
			}
		}
		// Sort ascending by (degree, id) so intersections can merge.
		insertionSortBy(fwd, less)
		forward[u] = fwd
	})
	// Count: for each u, for each pair (v, w) in forward(u) with v→w,
	// check w ∈ forward(v) by sorted merge.
	dynOpts := opts
	dynOpts.Policy = par.Dynamic
	if dynOpts.Grain <= 0 || dynOpts.Grain > 256 {
		dynOpts.Grain = 256
	}
	total := par.Reduce(n, dynOpts, int64(0),
		func(a, b int64) int64 { return a + b },
		func(u int) int64 {
			fu := forward[u]
			var count int64
			for _, v := range fu {
				fv := forward[v]
				count += intersectSorted(fu, fv, less)
			}
			return count
		})
	return total
}

// intersectSorted counts common elements of two lists sorted by less.
func intersectSorted(a, b []int32, less func(x, y int32) bool) int64 {
	var count int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case less(a[i], b[j]):
			i++
		case less(b[j], a[i]):
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

func insertionSortBy(xs []int32, less func(a, b int32) bool) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && less(xs[j], xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

package pgraph

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
)

func TestPageRankSumsToOne(t *testing.T) {
	for _, g := range testGraphs() {
		res := PageRank(g, 0.85, 1e-10, 500, testOpts)
		sum := 0.0
		for _, r := range res.Ranks {
			if r < 0 {
				t.Fatal("negative rank")
			}
			sum += r
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("ranks sum to %v", sum)
		}
		if res.Iters <= 0 {
			t.Fatal("no iterations recorded")
		}
	}
}

func TestPageRankUniformOnRegularGraph(t *testing.T) {
	// On a vertex-transitive graph (a cycle), all ranks are equal.
	n := 100
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{U: i, V: (i + 1) % n}
	}
	g := graph.MustBuild(n, edges, false)
	res := PageRank(g, 0.85, 1e-12, 1000, testOpts)
	for v, r := range res.Ranks {
		if math.Abs(r-1.0/float64(n)) > 1e-9 {
			t.Fatalf("cycle rank[%d] = %v, want %v", v, r, 1.0/float64(n))
		}
	}
}

func TestPageRankStarCenterHighest(t *testing.T) {
	// Star: the hub must out-rank every leaf.
	n := 50
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: 0, V: v})
	}
	g := graph.MustBuild(n, edges, false)
	res := PageRank(g, 0.85, 1e-12, 1000, testOpts)
	for v := 1; v < n; v++ {
		if res.Ranks[0] <= res.Ranks[v] {
			t.Fatalf("hub rank %v <= leaf rank %v", res.Ranks[0], res.Ranks[v])
		}
	}
}

func TestPageRankMatchesSequentialReference(t *testing.T) {
	g := gen.ErdosRenyi(500, 6, false, 3)
	res := PageRank(g, 0.85, 1e-12, 2000, testOpts)
	want := pageRankRef(g, 0.85, 1e-12, 2000)
	for v := range want {
		if math.Abs(res.Ranks[v]-want[v]) > 1e-8 {
			t.Fatalf("rank[%d] = %v, want %v", v, res.Ranks[v], want[v])
		}
	}
}

func TestPageRankDeterministicAcrossProcs(t *testing.T) {
	// Identical results regardless of worker count would require ordered
	// floating-point reduction; we require agreement to tight tolerance.
	g := gen.RMAT(10, 8, false, 5)
	a := PageRank(g, 0.85, 1e-12, 300, par.Options{Procs: 1})
	b := PageRank(g, 0.85, 1e-12, 300, par.Options{Procs: 8, Grain: 16})
	for v := range a.Ranks {
		if math.Abs(a.Ranks[v]-b.Ranks[v]) > 1e-9 {
			t.Fatalf("procs changed rank[%d]: %v vs %v", v, a.Ranks[v], b.Ranks[v])
		}
	}
}

func TestPageRankEmpty(t *testing.T) {
	g := graph.MustBuild(0, nil, false)
	if res := PageRank(g, 0.85, 1e-9, 10, testOpts); res.Ranks != nil {
		t.Fatal("empty graph should return zero result")
	}
}

// pageRankRef is a plain sequential implementation used as an oracle.
func pageRankRef(g *graph.Graph, damping, tol float64, maxIters int) []float64 {
	n := g.N()
	cur := make([]float64, n)
	next := make([]float64, n)
	inv := 1 / float64(n)
	for v := range cur {
		cur[v] = inv
	}
	for it := 0; it < maxIters; it++ {
		dangling := 0.0
		for v := 0; v < n; v++ {
			if g.Degree(v) == 0 {
				dangling += cur[v]
			}
		}
		base := (1-damping)*inv + damping*dangling*inv
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range g.Neighbors(v) {
				sum += cur[u] / float64(g.Degree(int(u)))
			}
			next[v] = base + damping*sum
		}
		delta := 0.0
		for v := range cur {
			delta += math.Abs(next[v] - cur[v])
		}
		cur, next = next, cur
		if delta < tol {
			break
		}
	}
	return cur
}

func TestTriangleCountKnownGraphs(t *testing.T) {
	// A single triangle.
	tri := graph.MustBuild(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}, false)
	if got := TriangleCount(tri, testOpts); got != 1 {
		t.Fatalf("triangle graph count = %d", got)
	}
	// K4 has 4 triangles.
	var k4Edges []graph.Edge
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			k4Edges = append(k4Edges, graph.Edge{U: i, V: j})
		}
	}
	k4 := graph.MustBuild(4, k4Edges, false)
	if got := TriangleCount(k4, testOpts); got != 4 {
		t.Fatalf("K4 count = %d", got)
	}
	// A path has none.
	path := graph.MustBuild(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}}, false)
	if got := TriangleCount(path, testOpts); got != 0 {
		t.Fatalf("path count = %d", got)
	}
	// Grid meshes (4-neighbor) have no triangles.
	grid := gen.Grid2D(15, 15, false, 1)
	if got := TriangleCount(grid, testOpts); got != 0 {
		t.Fatalf("grid count = %d", got)
	}
}

func TestTriangleCountMatchesBruteForce(t *testing.T) {
	g := gen.RandomTree(50, false, 2) // no triangles in trees
	if got := TriangleCount(g, testOpts); got != 0 {
		t.Fatalf("tree count = %d", got)
	}
	// Small dense-ish graph vs O(n^3) brute force. Deduplicate edges
	// first (TriangleCount requires a simple graph).
	er := gen.ErdosRenyi(60, 8, false, 3)
	adj := make([][]bool, 60)
	for i := range adj {
		adj[i] = make([]bool, 60)
	}
	var simple []graph.Edge
	er.ForEdges(func(u, v int, _ float64) {
		if !adj[u][v] && u != v {
			adj[u][v], adj[v][u] = true, true
			simple = append(simple, graph.Edge{U: u, V: v})
		}
	})
	sg := graph.MustBuild(60, simple, false)
	var want int64
	for i := 0; i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			if !adj[i][j] {
				continue
			}
			for k := j + 1; k < 60; k++ {
				if adj[j][k] && adj[i][k] {
					want++
				}
			}
		}
	}
	if got := TriangleCount(sg, testOpts); got != want {
		t.Fatalf("count = %d, brute force = %d", got, want)
	}
}

func TestTriangleCountAcrossProcs(t *testing.T) {
	g := gen.Grid2D(10, 10, false, 1)
	// Add diagonals to create triangles: connect (i,j)-(i+1,j+1).
	var edges []graph.Edge
	g.ForEdges(func(u, v int, _ float64) { edges = append(edges, graph.Edge{U: u, V: v}) })
	id := func(i, j int) int { return i*10 + j }
	for i := 0; i+1 < 10; i++ {
		for j := 0; j+1 < 10; j++ {
			edges = append(edges, graph.Edge{U: id(i, j), V: id(i+1, j+1)})
		}
	}
	dg := graph.MustBuild(100, edges, false)
	want := TriangleCount(dg, par.Options{Procs: 1})
	if want == 0 {
		t.Fatal("diagonal grid should have triangles")
	}
	for _, p := range []int{2, 4, 8} {
		if got := TriangleCount(dg, par.Options{Procs: p, Grain: 4}); got != want {
			t.Fatalf("procs=%d: %d != %d", p, got, want)
		}
	}
}

package pgraph

import (
	"sync/atomic"

	"repro/internal/adapt"
	"repro/internal/graph"
	"repro/internal/par"
)

// Adaptive call sites for the connectivity kernels' round loops. The
// degree-dependent hook/propagate rounds and the uniform shortcut
// rounds have different cost shapes, so they learn separately.
var (
	siteCCProp     = adapt.NewSite("pgraph.CCLabelProp.round", adapt.KindWorkers)
	siteCCHook     = adapt.NewSite("pgraph.CCHook.hook", adapt.KindRange)
	siteCCShortcut = adapt.NewSite("pgraph.CCHook.shortcut", adapt.KindWorkers)
)

// CCLabelProp computes connected components by synchronous label
// propagation: every node repeatedly adopts the minimum label in its
// closed neighborhood until a fixpoint. Rounds are Jacobi-style (read
// previous labels, write next labels), so the result is deterministic
// and race-free; the price is Θ(diameter) rounds.
// Returned labels are component-minimum node ids.
func CCLabelProp(g *graph.Graph, opts par.Options) []int32 {
	n := g.N()
	cur := make([]int32, n)
	next := make([]int32, n)
	par.For(n, opts, func(v int) { cur[v] = int32(v) })
	roundOpts := opts
	roundOpts.Site = siteCCProp
	for {
		changed := par.Count(n, roundOpts, func(v int) bool {
			m := cur[v]
			for _, w := range g.Neighbors(v) {
				if cur[w] < m {
					m = cur[w]
				}
			}
			next[v] = m
			return m != cur[v]
		})
		cur, next = next, cur
		if changed == 0 {
			break
		}
	}
	return cur
}

// CCHook computes connected components with the hook-and-shortcut scheme
// (a practical Shiloach–Vishkin variant, cf. FastSV): each round hooks
// every edge's larger root under the smaller via atomic min-CAS, then
// shortcuts parent chains by pointer jumping. Rounds are O(log n)
// regardless of diameter — the asymptotic advantage over label
// propagation that experiment E5 measures on meshes.
// Returned labels are the component roots' node ids.
func CCHook(g *graph.Graph, opts par.Options) []int32 {
	n := g.N()
	parent := make([]atomic.Int32, n)
	par.For(n, opts, func(v int) { parent[v].Store(int32(v)) })

	root := func(v int32) int32 {
		for {
			p := parent[v].Load()
			if p == v {
				return v
			}
			v = p
		}
	}

	hookOpts := opts
	hookOpts.Site = siteCCHook
	shortcutOpts := opts
	shortcutOpts.Site = siteCCShortcut
	for {
		// Hook phase: for every edge, attach the larger root beneath the
		// smaller. CAS-min keeps the parent forest consistent under
		// concurrent hooks.
		hooked := int64(0)
		var hookedAtomic atomic.Int64
		par.For(n, hookOpts, func(u int) {
			local := int64(0)
			ru := root(int32(u))
			for _, w := range g.Neighbors(u) {
				rw := root(w)
				hi, lo := ru, rw
				if hi == lo {
					continue
				}
				if hi < lo {
					hi, lo = lo, hi
				}
				// Attach hi under lo if that improves hi's parent.
				for {
					cur := parent[hi].Load()
					if cur <= lo {
						break
					}
					if parent[hi].CompareAndSwap(cur, lo) {
						local++
						break
					}
				}
				ru = root(int32(u))
			}
			if local > 0 {
				hookedAtomic.Add(local)
			}
		})
		hooked = hookedAtomic.Load()

		// Shortcut phase: full pointer jumping until the forest is
		// flat (every node points at its root).
		for {
			jumped := par.Count(n, shortcutOpts, func(v int) bool {
				p := parent[v].Load()
				gp := parent[p].Load()
				if p != gp {
					parent[v].Store(gp)
					return true
				}
				return false
			})
			if jumped == 0 {
				break
			}
		}
		if hooked == 0 {
			break
		}
	}
	out := make([]int32, n)
	par.For(n, opts, func(v int) { out[v] = parent[v].Load() })
	return out
}

// CountComponents returns the number of distinct labels.
func CountComponents(labels []int32) int {
	seen := make(map[int32]struct{})
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}

// SamePartition reports whether two labelings induce identical partitions
// (used by tests and the harness to cross-validate CC algorithms).
func SamePartition(a []int32, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int32]int{}
	rev := map[int]int32{}
	for i := range a {
		if v, ok := fwd[a[i]]; ok && v != b[i] {
			return false
		}
		if v, ok := rev[b[i]]; ok && v != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

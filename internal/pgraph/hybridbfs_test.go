package pgraph

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/par"
)

func TestBFSHybridMatchesPlainBFS(t *testing.T) {
	for name, g := range testGraphs() {
		want := BFS(g, 0, testOpts)
		for _, alpha := range []int{0, 1, 14, 1000000} {
			got := BFSHybrid(g, 0, alpha, testOpts)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s alpha=%d: depth[%d] = %d, want %d", name, alpha, v, got[v], want[v])
				}
			}
		}
	}
}

func TestBFSHybridForcedBottomUp(t *testing.T) {
	// alpha so large that threshold ≈ 0: every level runs bottom-up.
	g := gen.ErdosRenyi(3000, 10, false, 7)
	want := bfsRef(g, 0)
	got := BFSHybrid(g, 0, 1<<30, par.Options{Procs: 4, Grain: 64})
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("bottom-up depth[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestBFSHybridForcedTopDown(t *testing.T) {
	// alpha=1: threshold = m, frontier edges can never exceed it (they
	// equal it at most), so the traversal stays top-down.
	g := gen.Grid2D(40, 40, false, 3)
	want := bfsRef(g, 0)
	got := BFSHybrid(g, 0, 1, par.Options{Procs: 4, Grain: 64})
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("top-down depth[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestBFSHybridAcrossProcs(t *testing.T) {
	g := gen.RMAT(11, 8, false, 9)
	want := BFSHybrid(g, 0, 14, par.Options{Procs: 1})
	for _, p := range []int{2, 8} {
		got := BFSHybrid(g, 0, 14, par.Options{Procs: p, Grain: 32})
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("procs=%d: depth mismatch at %d", p, v)
			}
		}
	}
}

func TestBFSHybridUnreachable(t *testing.T) {
	g := gen.Components(2, 100, 6, 5)
	got := BFSHybrid(g, 0, 14, testOpts)
	for v := 100; v < 200; v++ {
		if got[v] != -1 {
			t.Fatalf("other component reached: depth[%d] = %d", v, got[v])
		}
	}
}

// Package pgraph implements the parallel graph case studies: connected
// components (synchronous label propagation and hook-and-shortcut),
// level-synchronous parallel BFS, and Borůvka's minimum-spanning-tree
// algorithm, all engineered against the sequential baselines in
// internal/seq.
//
// Graph algorithms are where the methodology's structural concerns bite
// hardest: work per node is degree-dependent (load imbalance on power-law
// graphs), convergence is diameter-dependent (label propagation on meshes
// needs Θ(diameter) rounds), and synchronization strategy (synchronous
// double buffering vs. asynchronous atomics) trades determinism against
// convergence speed. Experiments E5 and E6 explore these axes.
//
// Layering: pgraph consumes graph (CSR), par (frontier loops),
// scratch (ping-pong frontiers and slot arenas) and seq (small-
// input fallbacks); it feeds core's graph experiments, the serve
// runtime's BFS requests and the repro facade.
package pgraph

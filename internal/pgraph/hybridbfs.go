package pgraph

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/scratch"
)

// BFSHybrid is a direction-optimizing BFS (Beamer, Asanović, Patterson
// 2012): it expands small frontiers top-down (scan the frontier's edges)
// and large frontiers bottom-up (every unvisited vertex scans its own
// neighbors for a frontier parent). On low-diameter graphs the frontier
// briefly contains most of the graph, and bottom-up steps then examine
// only one edge per vertex on average instead of the frontier's entire
// edge set — the classic constant-factor win this ablation measures
// against the plain level-synchronous BFS.
//
// The frontier buffers, the bottom-up pack destination and the
// in-frontier bitmap are all scratch-pooled (par.PackIndexInto does the
// packing allocation-free), so levels allocate nothing at steady state.
//
// alpha is the top-down→bottom-up switch threshold: a level runs
// bottom-up when the frontier's edge count exceeds m/alpha (14 is the
// published default; 0 selects it).
func BFSHybrid(g *graph.Graph, src int, alpha int, opts par.Options) []int32 {
	n := g.N()
	if alpha <= 0 {
		alpha = 14
	}
	depth := make([]int32, n)
	par.For(n, opts, func(v int) { depth[v] = -1 })
	visited := make([]atomic.Bool, n)
	visited[src].Store(true)
	depth[src] = 0

	a := scratch.AcquireArena(opts.ScratchPool())
	defer a.Release()
	frontier := scratch.MakeCap[int32](a, 1, n)
	next := scratch.MakeCap[int32](a, 0, n)
	packed := scratch.Make[int](a, n)            // bottom-up pack destination
	inFrontier := scratch.MakeZeroed[bool](a, n) // rebuilt before each bottom-up level
	frontier[0] = int32(src)
	frontierEdges := g.Degree(src)
	threshold := g.M() / alpha

	for level := int32(1); len(frontier) > 0; level++ {
		if frontierEdges > threshold {
			// Bottom-up. The frontier bitmap is written before the
			// parallel phase and only read inside it; each unvisited
			// vertex writes exclusively its own depth/visited slots, so
			// the level is race-free without per-edge atomics.
			for _, v := range frontier {
				inFrontier[v] = true
			}
			// The predicate must be pure: PackIndexInto may evaluate it
			// more than once (count pass + fill pass). Depth/visited
			// updates are applied afterwards over the packed result.
			found := par.PackIndexInto(packed, n, opts, func(v int) bool {
				if visited[v].Load() {
					return false
				}
				for _, u := range g.Neighbors(v) {
					if inFrontier[u] {
						return true
					}
				}
				return false
			})
			discovered := packed[:found]
			par.For(found, opts, func(i int) {
				v := discovered[i]
				depth[v] = level
				visited[v].Store(true)
			})
			for _, v := range frontier {
				inFrontier[v] = false
			}
			frontier = frontier[:0]
			frontierEdges = 0
			for _, v := range discovered {
				frontier = append(frontier, int32(v))
				frontierEdges += g.Degree(v)
			}
		} else {
			frontier, next = expand(g, frontier, visited, depth, level, opts, next[:0]), frontier
			frontierEdges = 0
			for _, v := range frontier {
				frontierEdges += g.Degree(int(v))
			}
		}
	}
	return depth
}

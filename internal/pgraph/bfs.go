package pgraph

import (
	"sync"
	"sync/atomic"

	"repro/internal/adapt"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/scratch"
)

// siteBFSExpand keys the per-level frontier expansion: frontier sizes
// swing by orders of magnitude within one BFS, so each level consults
// the controller for the class of its own frontier — small fringe
// levels converge to serial while the bulge stays parallel.
var siteBFSExpand = adapt.NewSite("pgraph.BFS.expand", adapt.KindWorkers)

// BFS performs a level-synchronous parallel breadth-first search from
// src, returning each node's depth (-1 if unreachable). Each level
// expands the frontier in parallel; visited claims use CAS so every node
// is discovered exactly once. Depths are deterministic (level-synchronous
// BFS assigns the unique hop distance) even though the discovery order
// within a level — and hence the frontier's internal order — is not.
//
// The two frontier buffers ping-pong through a scratch arena and the
// per-worker discovery staging lives in worker-local slot arenas, so
// the per-level loop allocates nothing at steady state; only the
// returned depth array is fresh.
func BFS(g *graph.Graph, src int, opts par.Options) []int32 {
	n := g.N()
	depth := make([]int32, n)
	par.For(n, opts, func(v int) { depth[v] = -1 })
	visited := make([]atomic.Bool, n)

	a := scratch.AcquireArena(opts.ScratchPool())
	defer a.Release()
	frontier := scratch.MakeCap[int32](a, 1, n)
	next := scratch.MakeCap[int32](a, 0, n)
	frontier[0] = int32(src)
	visited[src].Store(true)
	depth[src] = 0

	for level := int32(1); len(frontier) > 0; level++ {
		frontier, next = expand(g, frontier, visited, depth, level, opts, next[:0]), frontier
	}
	return depth
}

// expand produces the next frontier from the current one into next
// (cap(next) must be at least g.N()). Work is partitioned over
// frontier vertices; each worker stages its discoveries in a buffer
// from its slot arena — sized by its block's out-degree sum, so the
// stage never grows — and flushes them to next under a mutex once per
// worker, avoiding a shared synchronized queue on the discovery path.
func expand(g *graph.Graph, frontier []int32, visited []atomic.Bool, depth []int32, level int32, opts par.Options, next []int32) []int32 {
	nf := len(frontier)
	opts, m := par.BeginAdaptive(siteBFSExpand, nf, opts)
	defer m.Done()
	p := opts.Procs
	if p <= 0 {
		p = 1
	}
	if p > nf {
		p = nf
	}
	var mu sync.Mutex
	par.ForWorkersArena(p, opts, func(w int, wa *scratch.Arena) {
		lo, hi := w*nf/p, (w+1)*nf/p
		bound := 0
		for i := lo; i < hi; i++ {
			bound += g.Degree(int(frontier[i]))
		}
		out := scratch.MakeCap[int32](wa, 0, bound)
		for i := lo; i < hi; i++ {
			v := frontier[i]
			for _, u := range g.Neighbors(int(v)) {
				if !visited[u].Load() && visited[u].CompareAndSwap(false, true) {
					depth[u] = level
					out = append(out, u)
				}
			}
		}
		mu.Lock()
		next = append(next, out...)
		mu.Unlock()
	})
	return next
}

// Eccentricity returns the maximum finite depth in a BFS depth array,
// i.e. the eccentricity of the source within its component.
func Eccentricity(depth []int32) int32 {
	var m int32
	for _, d := range depth {
		if d > m {
			m = d
		}
	}
	return m
}

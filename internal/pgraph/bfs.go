package pgraph

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
)

// BFS performs a level-synchronous parallel breadth-first search from
// src, returning each node's depth (-1 if unreachable). Each level
// expands the frontier in parallel; visited claims use CAS so every node
// is discovered exactly once. Depths are deterministic (level-synchronous
// BFS assigns the unique hop distance) even though the discovery order
// within a level is not.
func BFS(g *graph.Graph, src int, opts par.Options) []int32 {
	n := g.N()
	depth := make([]int32, n)
	par.For(n, opts, func(v int) { depth[v] = -1 })
	visited := make([]atomic.Bool, n)

	frontier := []int32{int32(src)}
	visited[src].Store(true)
	depth[src] = 0

	for level := int32(1); len(frontier) > 0; level++ {
		frontier = expand(g, frontier, visited, depth, level, opts)
	}
	return depth
}

// expand produces the next frontier from the current one. Work is
// partitioned over frontier vertices; each worker accumulates discoveries
// locally and the per-worker slices are concatenated — the standard
// two-phase frontier construction avoiding a shared synchronized queue.
func expand(g *graph.Graph, frontier []int32, visited []atomic.Bool, depth []int32, level int32, opts par.Options) []int32 {
	nf := len(frontier)
	p := opts.Procs
	if p <= 0 {
		p = 1
	}
	if p > nf {
		p = nf
	}
	locals := make([][]int32, p)
	par.ForWorkers(p, opts, func(w int) {
		lo, hi := w*nf/p, (w+1)*nf/p
		var out []int32
		for i := lo; i < hi; i++ {
			v := frontier[i]
			for _, u := range g.Neighbors(int(v)) {
				if !visited[u].Load() && visited[u].CompareAndSwap(false, true) {
					depth[u] = level
					out = append(out, u)
				}
			}
		}
		locals[w] = out
	})
	total := 0
	for _, l := range locals {
		total += len(l)
	}
	next := make([]int32, 0, total)
	for _, l := range locals {
		next = append(next, l...)
	}
	return next
}

// Eccentricity returns the maximum finite depth in a BFS depth array,
// i.e. the eccentricity of the source within its component.
func Eccentricity(depth []int32) int32 {
	var m int32
	for _, d := range depth {
		if d > m {
			m = d
		}
	}
	return m
}

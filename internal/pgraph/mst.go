package pgraph

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/seq"
)

// MSTBoruvka computes the total weight of a minimum spanning forest with
// Borůvka's algorithm: each round every component selects its minimum
// outgoing edge in parallel, the selected edges are contracted through a
// union-find, and rounds repeat until no component has an outgoing edge.
// At most ceil(log2 n) rounds, each with O(m) parallel work — the
// textbook parallel MST that experiment E6 compares against Kruskal and
// Prim.
//
// The per-component minimum is maintained as an atomic edge *index* with
// a CAS retry loop comparing exact weights (ties broken by index, making
// the selection deterministic): no locks, no precision loss.
func MSTBoruvka(g *graph.Graph, opts par.Options) float64 {
	n := g.N()
	edges := g.Edges()
	m := len(edges)
	uf := seq.NewUnionFind(n)

	less := func(a, b int) bool {
		if edges[a].W != edges[b].W {
			return edges[a].W < edges[b].W
		}
		return a < b
	}

	best := make([]atomic.Int64, n) // best[c] = edge index, -1 = none
	comp := make([]int32, n)        // component id per node, per round
	total := 0.0
	for {
		// Refresh component ids. Find is not thread-safe (path
		// compression mutates), so snapshot sequentially; this is
		// O(n·α) per round, outside the parallel hot loop.
		for v := 0; v < n; v++ {
			comp[v] = int32(uf.Find(v))
		}
		par.For(n, opts, func(v int) { best[v].Store(-1) })

		// Parallel min-edge selection over all edges.
		par.ForRange(m, opts, func(lo, hi int) {
			for e := lo; e < hi; e++ {
				cu := comp[edges[e].U]
				cv := comp[edges[e].V]
				if cu == cv {
					continue
				}
				atomicMinEdge(&best[cu], e, less)
				atomicMinEdge(&best[cv], e, less)
			}
		})

		// Contraction: apply every component representative's chosen
		// edge. Union-find mutation is sequential and cheap (at most
		// one edge per component).
		added := 0
		for v := 0; v < n; v++ {
			if int(comp[v]) != v {
				continue // not a representative this round
			}
			e := best[v].Load()
			if e < 0 {
				continue
			}
			if uf.Union(edges[e].U, edges[e].V) {
				total += edges[e].W
				added++
			}
		}
		if added == 0 {
			break
		}
	}
	return total
}

// atomicMinEdge lowers *a to edge e if e is strictly smaller under less.
func atomicMinEdge(a *atomic.Int64, e int, less func(a, b int) bool) {
	for {
		cur := a.Load()
		if cur >= 0 && !less(e, int(cur)) {
			return
		}
		if a.CompareAndSwap(cur, int64(e)) {
			return
		}
	}
}

package rescache

import (
	"math/bits"
	"sync"

	"repro/internal/kernel"
	"repro/internal/scratch"
)

// DefaultMaxBytes bounds a cache whose Config leaves MaxBytes zero.
const DefaultMaxBytes = 64 << 20

// entryOverhead approximates the per-entry bookkeeping cost (key
// strings, list links, map slot) charged against MaxBytes, so a flood
// of scalar entries is still bounded.
const entryOverhead = 128

// Config parameterizes New.
type Config struct {
	// Pool supplies entry buffers; nil means scratch.Default().
	Pool *scratch.Pool
	// MaxBytes bounds the cache's payload plus per-entry overhead;
	// zero means DefaultMaxBytes.
	MaxBytes int64
}

// Token is Lookup's miss-side receipt: the fingerprint and generation
// of the input at lookup time, captured before the kernel mutates it
// in place. Insert stores under exactly this (fp, gen) pair and drops
// the result if the tenant's generation has moved on.
type Token struct {
	fp, gen uint64
	ok      bool
}

// Valid reports whether the token came from a cacheable miss — the
// only tokens worth passing to Insert.
func (t Token) Valid() bool { return t.ok }

// Stats is a point-in-time snapshot of cache activity.
type Stats struct {
	// Entries and Bytes describe current occupancy.
	Entries int
	Bytes   int64
	// Hits and Misses count Lookup outcomes on cacheable calls;
	// uncacheable calls count as neither.
	Hits   uint64
	Misses uint64
	// Inserts counts stored results; Evictions counts entries dropped
	// for space; Invalidations counts entries swept by Bump.
	Inserts       uint64
	Evictions     uint64
	Invalidations uint64
}

// key identifies one entry. A comparable struct (no pointers into the
// cache) so Lookup builds it on the stack and probes the map without
// allocating — the hit path's 0 allocs/op depends on this.
type key struct {
	tenant, kern string
	fp, gen      uint64
}

type entry struct {
	key        key
	out        kernel.OutField
	buf        []int64 // OutXs / OutDst payload
	h          scratch.Handle
	scalar     int64 // OutScalar payload
	bytes      int64
	prev, next *entry
}

// Cache is a bounded, generation-stamped result cache. One Cache is
// safely shared by every shard of a sharded server; all methods are
// concurrency-safe.
type Cache struct {
	pool *scratch.Pool
	max  int64

	mu         sync.Mutex
	m          map[key]*entry
	gens       map[string]uint64 // per-tenant generation; grows only on Bump
	head, tail *entry            // LRU list, head = most recent
	bytes      int64

	hits, misses, inserts, evictions, invalidations uint64
}

// New builds a cache from cfg, applying defaults for zero fields.
func New(cfg Config) *Cache {
	if cfg.Pool == nil {
		cfg.Pool = scratch.Default()
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	return &Cache{
		pool: cfg.Pool,
		max:  cfg.MaxBytes,
		m:    make(map[key]*entry),
		gens: make(map[string]uint64),
	}
}

// Cacheable reports whether this call can be cached at all: the
// kernel declares a CacheSpec and the record carries no
// unfingerprintable inputs (bucket function, graph).
func Cacheable(k *kernel.Kernel, a *kernel.Args) bool {
	return k != nil && k.Cache != nil && a.Bucket == nil && a.G == nil
}

// mix is splitmix64's finalizer — the fingerprint's scalar mixer and
// lane combiner.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Fingerprint round constants (xxHash64's primes) and per-lane
// initializers. Four independent accumulators matter for latency, not
// strength: a single mix-per-word chain is a serial dependency ~7ns
// deep per element, which put an O(n) half-microsecond-per-KiB floor
// under every cache *hit* — the lanes run in parallel in the pipeline
// and bring the probe under the cheapest kernel's own O(n) pass.
const (
	fpPrime1 = 0x9E3779B185EBCA87
	fpPrime2 = 0xC2B2AE3D27D4EB4F
	fpInit0  = 0x60EA27EEADC0B5D6 // fpPrime1 + fpPrime2 mod 2^64
	fpInit1  = fpPrime2
	fpInit2  = 0
	fpInit3  = 0xE220A8397B1DCDAF
)

// fpRound folds one input word into a lane (xxHash64's round: the
// rotate moves high-bit differences down where the multiply can
// spread them, so no single-bit flip can cancel a later one).
func fpRound(acc, v uint64) uint64 {
	return bits.RotateLeft64(acc+v*fpPrime2, 31) * fpPrime1
}

// fingerprint hashes the fingerprintable input fields: length and
// contents of Xs, K, Seed. Dst is deliberately excluded — it is output
// space, and callers legitimately vary its length between identical
// queries.
func fingerprint(a *kernel.Args) uint64 {
	xs := a.Xs
	var a0, a1, a2, a3 uint64 = fpInit0, fpInit1, fpInit2, fpInit3
	i := 0
	for ; i+4 <= len(xs); i += 4 {
		a0 = fpRound(a0, uint64(xs[i]))
		a1 = fpRound(a1, uint64(xs[i+1]))
		a2 = fpRound(a2, uint64(xs[i+2]))
		a3 = fpRound(a3, uint64(xs[i+3]))
	}
	h := bits.RotateLeft64(a0, 1) + bits.RotateLeft64(a1, 7) +
		bits.RotateLeft64(a2, 12) + bits.RotateLeft64(a3, 18)
	for ; i < len(xs); i++ {
		h = fpRound(h, uint64(xs[i]))
	}
	h = mix(h ^ uint64(len(xs)))
	h = mix(h ^ uint64(int64(a.K)))
	h = mix(h ^ a.Seed)
	return h
}

// Lookup probes the cache for (tenant, k, a's current input). On a hit
// it restores the cached output into a and returns (Token{}, true): no
// kernel work is needed. On a cacheable miss it returns a valid Token
// for a later Insert. Uncacheable calls return an invalid token and
// count as neither hit nor miss.
func (c *Cache) Lookup(tenant string, k *kernel.Kernel, a *kernel.Args) (Token, bool) {
	if !Cacheable(k, a) {
		return Token{}, false
	}
	fp := fingerprint(a)

	c.mu.Lock()
	defer c.mu.Unlock()
	gen := c.gens[tenant]
	e, ok := c.m[key{tenant: tenant, kern: k.Name, fp: fp, gen: gen}]
	if ok && c.restoreLocked(e, a) {
		c.moveFrontLocked(e)
		c.hits++
		return Token{}, true
	}
	c.misses++
	return Token{fp: fp, gen: gen, ok: true}, false
}

// restoreLocked copies e's payload into a. It refuses (a defensive
// miss) if the record's shape cannot receive the payload — possible
// only under a fingerprint collision, but cheap to rule out.
func (c *Cache) restoreLocked(e *entry, a *kernel.Args) bool {
	switch e.out {
	case kernel.OutXs:
		if len(e.buf) != len(a.Xs) {
			return false
		}
		copy(a.Xs, e.buf)
	case kernel.OutDst:
		if cap(a.Dst) < len(e.buf) {
			return false
		}
		a.Dst = a.Dst[:len(e.buf)]
		copy(a.Dst, e.buf)
	case kernel.OutScalar:
		a.Out = e.scalar
	}
	return true
}

// Insert stores a's output under the token captured at Lookup. The
// store is dropped if the token is invalid, the tenant's generation
// has been bumped since (the result was computed against invalidated
// input), or an equal entry already exists.
func (c *Cache) Insert(tenant string, k *kernel.Kernel, tok Token, a *kernel.Args) {
	if !tok.ok || k.Cache == nil {
		return
	}
	e := &entry{
		key: key{tenant: tenant, kern: k.Name, fp: tok.fp, gen: tok.gen},
		out: k.Cache.Out,
	}
	var src []int64
	switch e.out {
	case kernel.OutXs:
		src = a.Xs
	case kernel.OutDst:
		src = a.Dst
	case kernel.OutScalar:
		e.scalar = a.Out
	}
	if src != nil {
		// Copy outside the lock; a failed insert just returns the buffer.
		e.buf, e.h = scratch.Get[int64](c.pool, len(src))
		copy(e.buf, src)
	}
	e.bytes = int64(8*len(e.buf)) + entryOverhead
	if e.bytes > c.max {
		scratch.Put(e.h)
		return
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gens[tenant] != tok.gen {
		// A Bump raced the kernel run: this result reflects invalidated
		// input and must not be stored.
		scratch.Put(e.h)
		return
	}
	if _, dup := c.m[e.key]; dup {
		scratch.Put(e.h)
		return
	}
	for c.bytes+e.bytes > c.max && c.tail != nil {
		c.dropLocked(c.tail)
		c.evictions++
	}
	c.m[e.key] = e
	c.pushFrontLocked(e)
	c.bytes += e.bytes
	c.inserts++
}

// Bump advances tenant's generation, invalidating every entry the
// tenant has: correctness is the key mismatch (a bumped generation is
// never observed again), and an eager sweep frees the memory now
// rather than waiting for LRU pressure. Returns the new generation.
func (c *Cache) Bump(tenant string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[tenant]++
	for e := c.head; e != nil; {
		next := e.next
		if e.key.tenant == tenant {
			c.dropLocked(e)
			c.invalidations++
		}
		e = next
	}
	return c.gens[tenant]
}

// Generation returns tenant's current generation.
func (c *Cache) Generation(tenant string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gens[tenant]
}

// Stats snapshots current occupancy and lifetime counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:       len(c.m),
		Bytes:         c.bytes,
		Hits:          c.hits,
		Misses:        c.misses,
		Inserts:       c.inserts,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}

// dropLocked unlinks e, deletes it from the map and returns its buffer
// to the pool.
func (c *Cache) dropLocked(e *entry) {
	c.unlinkLocked(e)
	delete(c.m, e.key)
	c.bytes -= e.bytes
	scratch.Put(e.h)
	e.buf = nil
}

func (c *Cache) pushFrontLocked(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlinkLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveFrontLocked(e *entry) {
	if c.head == e {
		return
	}
	c.unlinkLocked(e)
	c.pushFrontLocked(e)
}

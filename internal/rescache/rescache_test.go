package rescache

import (
	"testing"

	"repro/internal/kernel"
)

// prime computes k on a fresh record and inserts the result, returning
// a pristine copy of the same input for lookup.
func prime(t *testing.T, c *Cache, tenant, name string, n int, seed uint64) *kernel.Args {
	t.Helper()
	k := kernel.MustLookup(name)
	a := k.Gen(n, seed)
	tok, hit := c.Lookup(tenant, k, a)
	if hit {
		t.Fatalf("%s: unexpected hit on empty cache", name)
	}
	if !tok.Valid() {
		t.Fatalf("%s: miss token invalid for cacheable kernel", name)
	}
	k.Serial(a)
	c.Insert(tenant, k, tok, a)
	return k.Gen(n, seed)
}

// TestHitRestoresEveryOutField runs the full miss-compute-insert-hit
// cycle for one kernel of each output shape and checks the restored
// record against a serial recompute.
func TestHitRestoresEveryOutField(t *testing.T) {
	for _, name := range []string{"sort", "scan", "sum", "topk", "select", "gups"} {
		t.Run(name, func(t *testing.T) {
			c := New(Config{})
			k := kernel.MustLookup(name)
			a := prime(t, c, "t0", name, 256, 7)
			if _, hit := c.Lookup("t0", k, a); !hit {
				t.Fatal("second lookup of identical input missed")
			}
			want := k.Gen(256, 7)
			k.Serial(want)
			if err := k.Check(a, want); err != nil {
				t.Fatalf("restored output diverges from recompute: %v", err)
			}
			st := c.Stats()
			if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 {
				t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 insert", st)
			}
		})
	}
}

// TestUncacheableKernel: a kernel without a CacheSpec (or with a
// function/graph input) yields an invalid token and no counters move.
func TestUncacheableKernel(t *testing.T) {
	c := New(Config{})
	k := kernel.MustLookup("histogram")
	a := k.Gen(64, 1)
	tok, hit := c.Lookup("t0", k, a)
	if hit || tok.Valid() {
		t.Fatal("histogram (function input) reported cacheable")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("uncacheable lookup moved counters: %+v", st)
	}
}

// TestTenantsAreIsolated: one tenant's entry is invisible to another.
func TestTenantsAreIsolated(t *testing.T) {
	c := New(Config{})
	k := kernel.MustLookup("sum")
	a := prime(t, c, "alice", "sum", 128, 3)
	if _, hit := c.Lookup("bob", k, a); hit {
		t.Fatal("bob hit alice's entry")
	}
}

// TestBumpInvalidates: a generation bump turns a guaranteed hit into a
// miss and sweeps the tenant's entries, leaving other tenants intact.
func TestBumpInvalidates(t *testing.T) {
	c := New(Config{})
	k := kernel.MustLookup("sort")
	a := prime(t, c, "alice", "sort", 128, 3)
	b := prime(t, c, "bob", "sort", 128, 4)
	if g := c.Bump("alice"); g != 1 {
		t.Fatalf("first bump -> generation %d, want 1", g)
	}
	if _, hit := c.Lookup("alice", k, a); hit {
		t.Fatal("hit survived a generation bump")
	}
	if _, hit := c.Lookup("bob", k, b); !hit {
		t.Fatal("bob's entry swept by alice's bump")
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
}

// TestStaleTokenInsertDropped is the migration-safety property: a
// result computed against pre-bump input must not be stored under the
// post-bump generation.
func TestStaleTokenInsertDropped(t *testing.T) {
	c := New(Config{})
	k := kernel.MustLookup("sum")
	a := k.Gen(64, 9)
	tok, _ := c.Lookup("t0", k, a)
	c.Bump("t0") // races the (conceptual) kernel run
	k.Serial(a)
	c.Insert("t0", k, tok, a)
	if st := c.Stats(); st.Inserts != 0 || st.Entries != 0 {
		t.Fatalf("stale-token insert was stored: %+v", st)
	}
}

// TestLRUEviction: a tight budget evicts the least-recently-used
// entry first, and touching an entry protects it.
func TestLRUEviction(t *testing.T) {
	const n = 64
	entryBytes := int64(8*n) + entryOverhead
	c := New(Config{MaxBytes: 2 * entryBytes})
	k := kernel.MustLookup("sort")

	a0 := prime(t, c, "t0", "sort", n, 0)
	prime(t, c, "t0", "sort", n, 1)
	if _, hit := c.Lookup("t0", k, a0); !hit { // a0 becomes MRU
		t.Fatal("a0 missed before eviction")
	}
	prime(t, c, "t0", "sort", n, 2) // evicts a1 (LRU)

	if _, hit := c.Lookup("t0", k, k.Gen(n, 1)); hit {
		t.Fatal("LRU entry survived eviction")
	}
	for _, seed := range []uint64{0, 2} {
		if _, hit := c.Lookup("t0", k, k.Gen(n, seed)); !hit {
			t.Fatalf("retained entry seed=%d missed", seed)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries", st)
	}
	if st.Bytes > c.max {
		t.Fatalf("bytes %d exceeds budget %d", st.Bytes, c.max)
	}
}

// TestOversizedEntryNotStored: an entry larger than the whole budget
// is refused rather than evicting everything.
func TestOversizedEntryNotStored(t *testing.T) {
	c := New(Config{MaxBytes: 256})
	k := kernel.MustLookup("sort")
	a := k.Gen(1024, 5)
	tok, _ := c.Lookup("t0", k, a)
	k.Serial(a)
	c.Insert("t0", k, tok, a)
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("oversized entry stored: %+v", st)
	}
}

// TestDuplicateInsertDropped: two concurrent misses on the same input
// both compute; only the first result is stored.
func TestDuplicateInsertDropped(t *testing.T) {
	c := New(Config{})
	k := kernel.MustLookup("sum")
	a1, a2 := k.Gen(64, 6), k.Gen(64, 6)
	tok1, _ := c.Lookup("t0", k, a1)
	tok2, _ := c.Lookup("t0", k, a2)
	k.Serial(a1)
	k.Serial(a2)
	c.Insert("t0", k, tok1, a1)
	c.Insert("t0", k, tok2, a2)
	if st := c.Stats(); st.Inserts != 1 || st.Entries != 1 {
		t.Fatalf("duplicate insert stored: %+v", st)
	}
}

// TestLookupHitAllocs pins the hit path at 0 allocs/op — the property
// serve's fast path is built on. Retried to absorb GC jitter.
func TestLookupHitAllocs(t *testing.T) {
	c := New(Config{})
	k := kernel.MustLookup("sum")
	a := prime(t, c, "t0", "sum", 512, 11)
	for i := 0; i < 64; i++ { // warm up
		if _, hit := c.Lookup("t0", k, a); !hit {
			t.Fatal("warmup lookup missed")
		}
	}
	var allocs float64
	for attempt := 0; attempt < 3; attempt++ {
		allocs = testing.AllocsPerRun(100, func() {
			if _, hit := c.Lookup("t0", k, a); !hit {
				panic("hit path missed")
			}
		})
		if allocs == 0 {
			return
		}
	}
	t.Fatalf("Lookup hit path allocates %v allocs/op, want 0", allocs)
}

// TestFingerprintIgnoresDstLength: the same query with a differently
// sized destination is still a hit (Dst is output space, not input).
func TestFingerprintIgnoresDstLength(t *testing.T) {
	c := New(Config{})
	k := kernel.MustLookup("topk")
	a := prime(t, c, "t0", "topk", 256, 2)
	a.Dst = make([]int64, 0, len(a.Xs)) // different len/cap, same input
	if _, hit := c.Lookup("t0", k, a); !hit {
		t.Fatal("varying Dst capacity broke the fingerprint")
	}
	want := k.Gen(256, 2)
	k.Serial(want)
	if err := k.Check(a, want); err != nil {
		t.Fatalf("restored into resized Dst diverges: %v", err)
	}
}

// TestGenerationsAdvanceIndependently documents per-tenant counters.
func TestGenerationsAdvanceIndependently(t *testing.T) {
	c := New(Config{})
	for i := 0; i < 3; i++ {
		c.Bump("alice")
	}
	c.Bump("bob")
	if g := c.Generation("alice"); g != 3 {
		t.Fatalf("alice generation = %d, want 3", g)
	}
	if g := c.Generation("bob"); g != 1 {
		t.Fatalf("bob generation = %d, want 1", g)
	}
	if g := c.Generation("carol"); g != 0 {
		t.Fatalf("carol generation = %d, want 0", g)
	}
}

// Package rescache is a generation-stamped result cache for kernel
// calls: a repeated request — same tenant, same kernel, same input —
// is served from a stored copy of the output with zero kernel work.
//
// # Keying and generations
//
// An entry is keyed on (tenant, kernel, input fingerprint, tenant
// generation). The fingerprint hashes the kernel's declared input
// fields (Xs, K, Seed — see kernel.CacheSpec); kernels whose inputs
// include a function or a graph cannot be fingerprinted and are never
// cached. The generation is a per-tenant counter: Bump invalidates
// every entry the tenant has, in O(1) for correctness (the generation
// in the key no longer matches) plus an eager sweep that frees the
// memory immediately. A bumped generation can never be observed again,
// so stale hits are impossible by construction.
//
// # Tokens and concurrent invalidation
//
// Lookup is called before the kernel runs and, on a miss, returns a
// Token capturing (fingerprint, generation) of the input at that
// instant — before the kernel mutates it in place. Insert re-checks
// under the cache lock that the tenant's generation still equals the
// token's; an insert racing a Bump is dropped, not stored. This is
// what makes the cache safe across sharded migration: a thief shard
// shares the same Cache, and any result computed against pre-bump
// input can never be inserted under the post-bump generation.
//
// # Memory
//
// Entry buffers come from a scratch.Pool and the cache is bounded by
// MaxBytes with LRU eviction, so it borrows the serving runtime's
// size-class recycling instead of growing the heap without bound.
package rescache

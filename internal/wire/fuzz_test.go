package wire

import (
	"errors"
	"testing"

	"repro/internal/kernel"
)

// FuzzFrameDecode throws arbitrary bytes at the request decoder. The
// contract under test: whatever arrives, the decoder either returns a
// well-formed Request or one of the typed errors — it never panics,
// never over-reads, and never turns hostile counts into huge
// allocations (the graph node cap and section bounds checks are what
// this fuzzer exercises). Seeds cover every registered kernel's
// encoded Gen output plus the classic framing attacks.
func FuzzFrameDecode(f *testing.F) {
	for _, k := range kernel.All() {
		a := k.Gen(64, 11)
		frame, err := AppendRequest(nil, 1, "fuzz-tenant", k, a, nil, 0)
		if err != nil {
			f.Fatalf("seed encode %s: %v", k.Name, err)
		}
		f.Add(frame[4:])
	}
	if frame, err := AppendRequest(nil, 2, "t", kernel.MustLookup("sort"),
		kernel.MustLookup("sort").Gen(16, 3), &kernel.Delta{Append: []int64{1, 2}}, 5000); err == nil {
		f.Add(frame[4:])
	}
	f.Add([]byte{})
	f.Add([]byte{frameMagic})
	f.Add(make([]byte, headerSize)) // zero header: bad magic
	f.Fuzz(func(t *testing.T, body []byte) {
		dec := NewDecoder()
		req, err := dec.DecodeRequest(body)
		if err != nil {
			// Every failure must be one of the typed sentinels so a
			// listener can tell protocol mismatch from a bad frame.
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrBadVersion) &&
				!errors.Is(err, ErrBadOrder) && !errors.Is(err, ErrTruncated) &&
				!errors.Is(err, ErrBadFrame) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if req.Kernel == nil {
			t.Fatalf("nil kernel on successful decode")
		}
		// A decoded record must at least survive the kernel's own
		// validator without panicking (errors are fine: the listener
		// would bounce them as error frames).
		if req.Kernel.Validate != nil {
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("Validate panicked on decoded args: %v", p)
					}
				}()
				_ = req.Kernel.Validate(&req.Args)
			}()
		}
	})
}

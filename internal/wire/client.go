package wire

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/kernel"
)

// Client speaks the wire protocol from the caller's side of a socket.
// It presents the same budget-carrying call surface as the serving
// layer (it satisfies Backend), so code written against a
// serve.Server runs unchanged against a remote one. Calls are
// serialized per client — the protocol is strictly request/response
// on one connection — so concurrency comes from one Client per
// goroutine (or a small pool), mirroring how the listener scales by
// connection.
type Client struct {
	mu   sync.Mutex
	c    net.Conn
	id   uint64
	lenb [4]byte
	// Reused frame buffers: write, read, and stream reassembly. Warm
	// round trips with stable payload sizes allocate nothing.
	wbuf, rbuf, sbuf []byte
	maxFrame         int
}

var _ Backend = (*Client)(nil)

// Dial connects to a wire listener ("tcp", "host:port" or "unix",
// "/path.sock").
func Dial(network, addr string) (*Client, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewClient(c), nil
}

// NewClient wraps an established connection. It takes ownership:
// Close closes the connection.
func NewClient(c net.Conn) *Client {
	return &Client{c: c, maxFrame: DefaultMaxFrame}
}

// Close closes the underlying connection.
func (cl *Client) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.c.Close()
}

// Call sends one request and decodes the reply into a — the remote
// mirror of serve's Call, inheriting the server-side SLO.
func (cl *Client) Call(tenant string, k *kernel.Kernel, a *kernel.Args) error {
	return cl.roundTrip(tenant, k, a, nil, 0)
}

// CallBudget is Call with a per-request deadline budget carried in
// the frame metadata: the server's admission ladder enforces it as if
// it were that request's SLO.
func (cl *Client) CallBudget(tenant string, k *kernel.Kernel, a *kernel.Args, budget time.Duration) error {
	return cl.roundTrip(tenant, k, a, nil, budget)
}

// CallDelta sends one incremental request (serve.CallDelta over the
// wire). The reply may be larger than the request — a sorted-merge
// append grows Xs — in which case the decoded slice grows too.
func (cl *Client) CallDelta(tenant string, k *kernel.Kernel, a *kernel.Args, d *kernel.Delta) error {
	return cl.roundTrip(tenant, k, a, d, 0)
}

// CallDeltaBudget is CallDelta with a deadline budget.
func (cl *Client) CallDeltaBudget(tenant string, k *kernel.Kernel, a *kernel.Args, d *kernel.Delta, budget time.Duration) error {
	return cl.roundTrip(tenant, k, a, d, budget)
}

// roundTrip writes one request frame and reads frames until the
// response completes: one response frame, or a run of chunk frames
// closed by the geometry frame, or an error frame mapped back to the
// serve sentinels.
func (cl *Client) roundTrip(tenant string, k *kernel.Kernel, a *kernel.Args, d *kernel.Delta, budget time.Duration) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.id++
	out, err := AppendRequest(cl.wbuf[:0], cl.id, tenant, k, a, d, budget)
	cl.wbuf = out
	if err != nil {
		return err
	}
	if _, err := cl.c.Write(out); err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	stream := cl.sbuf[:0]
	for {
		if _, err := io.ReadFull(cl.c, cl.lenb[:]); err != nil {
			return fmt.Errorf("wire: read: %w", err)
		}
		n := int(nativeOrder.Uint32(cl.lenb[:]))
		if n < headerSize || n > cl.maxFrame {
			return fmt.Errorf("%w: response frame length %d", ErrFrameTooLarge, n)
		}
		cl.rbuf = ensure(cl.rbuf, n)
		body := cl.rbuf
		if _, err := io.ReadFull(cl.c, body); err != nil {
			return fmt.Errorf("wire: read: %w", err)
		}
		h, err := DecodeHeader(body)
		if err != nil {
			return err
		}
		if h.ID != cl.id {
			return fmt.Errorf("%w: response id %d, want %d", ErrBadFrame, h.ID, cl.id)
		}
		switch h.Type {
		case frameResponse:
			return decodeSectionsInto(body, headerSize, a, nil)
		case frameChunk:
			off := int(h.Aux)
			payload := body[headerSize:]
			if off < 0 || h.Aux > uint64(cl.maxFrame) || off+len(payload) > cl.maxFrame {
				return fmt.Errorf("%w: chunk offset %d", ErrBadFrame, h.Aux)
			}
			stream = ensure(stream, max(len(stream), off+len(payload)))
			copy(stream[off:], payload)
			cl.sbuf = stream
		case frameEnd:
			cl.sbuf = stream
			return decodeSectionsInto(body, headerSize, a, stream)
		case frameError:
			return DecodeError(h, body)
		default:
			return fmt.Errorf("%w: frame type %d mid-response", ErrBadFrame, h.Type)
		}
	}
}

package wire

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/kernel"
	"repro/internal/scratch"
	"repro/internal/serve"
)

// The serve sentinels under local names, so the codec can map remote
// error codes without importing serve in every file that mentions
// them.
var (
	errRejected = serve.ErrRejected
	errDeadline = serve.ErrDeadlineExceeded
	errClosed   = serve.ErrClosed
)

// Backend is what the listener serves onto: the budget-carrying call
// surface shared by serve.Server and serve.Sharded. The listener
// passes each frame's deadline budget straight through, so the
// admission ladder sees the remote client's SLO.
type Backend interface {
	CallBudget(tenant string, k *kernel.Kernel, a *kernel.Args, budget time.Duration) error
	CallDeltaBudget(tenant string, k *kernel.Kernel, a *kernel.Args, d *kernel.Delta, budget time.Duration) error
}

var (
	_ Backend = (*serve.Server)(nil)
	_ Backend = (*serve.Sharded)(nil)
)

// Config shapes a Listener. The zero value is ready: default frame
// bound, default streaming thresholds, the process-default scratch
// pool.
type Config struct {
	// MaxFrame bounds a single frame body in bytes. <= 0 means
	// DefaultMaxFrame. A peer announcing a larger frame is sent an
	// error and disconnected — the length prefix is the only thing
	// read on trust, so it is the one field with a hard ceiling.
	MaxFrame int
	// StreamCutoff is the response-payload size in bytes at or above
	// which the reply is streamed as chunk frames instead of one
	// materialized frame. 0 means DefaultStreamCutoff; negative
	// disables streaming.
	StreamCutoff int
	// StreamChunk is the payload size of one chunk frame. <= 0 means
	// DefaultStreamChunk.
	StreamChunk int
	// Scratch is the slab pool connection read/write buffers are
	// drawn from (and returned to on disconnect). nil means the
	// process-wide default pool.
	Scratch *scratch.Pool
}

const (
	// DefaultStreamCutoff is where responses switch to chunked
	// streaming: past the pipeline-cutoff scale, materializing the
	// reply next to the request doubles the slab footprint for no
	// latency win.
	DefaultStreamCutoff = 1 << 20
	// DefaultStreamChunk is one chunk frame's payload.
	DefaultStreamChunk = 64 << 10
)

func (c Config) maxFrame() int {
	if c.MaxFrame > 0 {
		return c.MaxFrame
	}
	return DefaultMaxFrame
}

func (c Config) streamCutoff() int {
	if c.StreamCutoff < 0 {
		return 1 << 62 // never
	}
	if c.StreamCutoff == 0 {
		return DefaultStreamCutoff
	}
	return c.StreamCutoff
}

func (c Config) streamChunk() int {
	if c.StreamChunk > 0 {
		return c.StreamChunk
	}
	return DefaultStreamChunk
}

func (c Config) pool() *scratch.Pool {
	if c.Scratch != nil {
		return c.Scratch
	}
	return scratch.Default()
}

// Stats is a snapshot of a Listener's counters and gauges.
type Stats struct {
	// Conns counts connections ever accepted; ActiveConns is the
	// gauge of currently-open ones (a leak detector's anchor).
	Conns, ActiveConns int64
	// Requests counts decoded request frames; InFlight is the gauge
	// of requests currently inside the backend.
	Requests, InFlight int64
	// Responses, Chunks and Errors count frames written back.
	Responses, Chunks, Errors int64
}

// Listener serves wire frames from TCP or Unix connections onto a
// Backend: one reader goroutine per connection, synchronous
// read → decode-in-place → call → respond, with the connection's
// buffers drawn from the scratch pool and returned on disconnect.
type Listener struct {
	ln      net.Listener
	backend Backend
	cfg     Config

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closing bool
	wg      sync.WaitGroup

	conns_    atomic.Int64
	active    atomic.Int64
	requests  atomic.Int64
	inflight  atomic.Int64
	responses atomic.Int64
	chunks    atomic.Int64
	errs      atomic.Int64
}

// Listen starts a Listener on the given network/address ("tcp",
// "127.0.0.1:0" or "unix", "/tmp/parserve.sock") serving backend.
func Listen(network, addr string, backend Backend, cfg Config) (*Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return Serve(ln, backend, cfg), nil
}

// Serve wraps an already-listening net.Listener. It takes ownership:
// closing the wire.Listener closes ln.
func Serve(ln net.Listener, backend Backend, cfg Config) *Listener {
	l := &Listener{ln: ln, backend: backend, cfg: cfg, conns: make(map[net.Conn]struct{})}
	l.wg.Add(1)
	go l.acceptLoop()
	return l
}

// Addr returns the bound address (useful with ":0" listeners).
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// Stats returns a snapshot of the listener's counters.
func (l *Listener) Stats() Stats {
	return Stats{
		Conns:       l.conns_.Load(),
		ActiveConns: l.active.Load(),
		Requests:    l.requests.Load(),
		InFlight:    l.inflight.Load(),
		Responses:   l.responses.Load(),
		Chunks:      l.chunks.Load(),
		Errors:      l.errs.Load(),
	}
}

// Close drains and shuts down: stop accepting, wake every blocked
// reader (in-flight requests finish and their responses are written
// first — only the read side is deadlined), wait for the readers to
// exit, then return. Idempotent.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closing {
		l.mu.Unlock()
		l.wg.Wait()
		return nil
	}
	l.closing = true
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	err := l.ln.Close()
	for _, c := range conns {
		c.SetReadDeadline(time.Unix(0, 1))
	}
	l.wg.Wait()
	return err
}

func (l *Listener) acceptLoop() {
	defer l.wg.Done()
	for {
		c, err := l.ln.Accept()
		if err != nil {
			return
		}
		l.mu.Lock()
		if l.closing {
			l.mu.Unlock()
			c.Close()
			return
		}
		l.conns[c] = struct{}{}
		l.wg.Add(1)
		l.mu.Unlock()
		l.conns_.Add(1)
		l.active.Add(1)
		go l.serveConn(c)
	}
}

func (l *Listener) dropConn(c net.Conn) {
	c.Close()
	l.mu.Lock()
	delete(l.conns, c)
	l.mu.Unlock()
	l.active.Add(-1)
	l.wg.Done()
}

// slabFor returns a byte slice with capacity at least need, reusing
// cur when it is big enough and otherwise swapping the slab for a
// larger class. The returned slice is at full slab capacity.
func slabFor(pool *scratch.Pool, cur []byte, h *scratch.Handle, need int) []byte {
	if cap(cur) >= need {
		return cur[:cap(cur)]
	}
	if cur != nil {
		scratch.Put(*h)
	}
	b, nh := scratch.Get[byte](pool, need)
	*h = nh
	return b[:cap(b)]
}

// fatalDecode reports whether a decode error means the peer speaks a
// different protocol (or endianness) and the connection should drop,
// as opposed to one malformed frame on an otherwise intact stream.
func fatalDecode(err error) bool {
	return errors.Is(err, ErrBadMagic) || errors.Is(err, ErrBadVersion) || errors.Is(err, ErrBadOrder)
}

func errorCode(err error) int {
	switch {
	case errors.Is(err, errRejected):
		return codeRejected
	case errors.Is(err, errDeadline):
		return codeDeadline
	case errors.Is(err, errClosed):
		return codeClosed
	}
	return codeOther
}

// serveConn is one connection's reader loop: length prefix, body into
// the connection's slab, decode in place, call the backend, write the
// reply from the connection's write slab. Strictly serial per
// connection — that is what makes slab reuse safe with a zero-copy
// decoder — so pipelining across requests comes from opening more
// connections, not from more goroutines per socket.
func (l *Listener) serveConn(c net.Conn) {
	defer l.dropConn(c)
	pool := l.cfg.pool()
	dec := NewDecoder()
	var (
		rbuf, wbuf []byte
		rh, wh     scratch.Handle
		lenb       [4]byte
	)
	defer func() {
		if rbuf != nil {
			scratch.Put(rh)
		}
		if wbuf != nil {
			scratch.Put(wh)
		}
	}()
	for {
		if _, err := io.ReadFull(c, lenb[:]); err != nil {
			return // EOF, abrupt disconnect, or Close's read deadline
		}
		n := int(nativeOrder.Uint32(lenb[:]))
		if n < headerSize || n > l.cfg.maxFrame() {
			// An insane length prefix means the stream cannot be
			// re-synchronized; report and hang up.
			wbuf = slabFor(pool, wbuf, &wh, 4+headerSize+64)
			out := AppendError(wbuf[:0], 0, codeOther, ErrFrameTooLarge.Error())
			c.Write(out)
			l.errs.Add(1)
			return
		}
		rbuf = slabFor(pool, rbuf, &rh, n)
		body := rbuf[:n]
		if _, err := io.ReadFull(c, body); err != nil {
			return
		}
		req, err := dec.DecodeRequest(body)
		if err != nil {
			wbuf = slabFor(pool, wbuf, &wh, 4+headerSize+len(err.Error()))
			out := AppendError(wbuf[:0], 0, codeOther, err.Error())
			if _, werr := c.Write(out); werr != nil {
				return
			}
			l.errs.Add(1)
			if fatalDecode(err) {
				return
			}
			continue
		}
		l.requests.Add(1)
		l.inflight.Add(1)
		if req.IsDelta {
			err = l.backend.CallDeltaBudget(req.Tenant, req.Kernel, &req.Args, &req.Delta, req.Budget)
		} else {
			err = l.backend.CallBudget(req.Tenant, req.Kernel, &req.Args, req.Budget)
		}
		l.inflight.Add(-1)
		if err != nil {
			wbuf = slabFor(pool, wbuf, &wh, 4+headerSize+len(err.Error()))
			out := AppendError(wbuf[:0], req.ID, errorCode(err), err.Error())
			if _, werr := c.Write(out); werr != nil {
				return
			}
			l.errs.Add(1)
			continue
		}
		if !l.writeResponse(c, pool, &wbuf, &wh, req.ID, req.Kernel, &req.Args) {
			return
		}
	}
}

// planBytes returns the raw bytes of the planned response section.
func planBytes(p respPlan, a *kernel.Args) []byte {
	switch p.tag {
	case secXs:
		return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(a.Xs))), 8*len(a.Xs))
	case secDst:
		return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(a.Dst))), 8*len(a.Dst))
	case secHist:
		if strconv64 {
			return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(a.Hist))), 8*len(a.Hist))
		}
		return nil
	case secDist:
		return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(a.Dist))), 4*len(a.Dist))
	}
	return nil
}

// writeResponse sends one reply: a single response frame, or — when
// the payload crosses the stream cutoff — chunk frames walking the
// section bytes followed by the closing geometry frame. Chunked and
// one-shot replies decode to identical Args on the client. Returns
// false when the connection is dead.
func (l *Listener) writeResponse(c net.Conn, pool *scratch.Pool, wbuf *[]byte, wh *scratch.Handle, id uint64, k *kernel.Kernel, a *kernel.Args) bool {
	p := planResponse(k, a)
	raw := planBytes(p, a)
	if p.tag != 0 && raw != nil && len(raw) >= l.cfg.streamCutoff() {
		cs := l.cfg.streamChunk()
		*wbuf = slabFor(pool, *wbuf, wh, 4+headerSize+cs)
		for off := 0; off < len(raw); off += cs {
			end := min(off+cs, len(raw))
			out := AppendChunk((*wbuf)[:0], id, off, raw[off:end])
			if _, err := c.Write(out); err != nil {
				return false
			}
			l.chunks.Add(1)
		}
		out := AppendStreamEnd((*wbuf)[:0], id, p, planCount(p, a), a)
		if _, err := c.Write(out); err != nil {
			return false
		}
		l.responses.Add(1)
		return true
	}
	*wbuf = slabFor(pool, *wbuf, wh, 4+headerSize+sectionSize(32)+sectionSize(p.payload))
	out := AppendResponse((*wbuf)[:0], id, k, a)
	if _, err := c.Write(out); err != nil {
		return false
	}
	l.responses.Add(1)
	return true
}

package wire

import (
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/kernel"
	"repro/internal/loadgen"
	"repro/internal/scratch"
	"repro/internal/serve"
)

// wireBenchRate is the offered open-loop load in requests/second —
// matched across the in-process and wire modes so their corrected
// tails are comparable (the acceptance bar is wire p99 within 2x of
// in-process at the same offered load).
const wireBenchRate = 1000.0

const wireBenchWorkers = 4

// BenchmarkTrafficServeWire is the front-door latency ladder: the
// same open-loop mixed traffic served in-process, over a loopback
// socket, and over a loopback socket with chunked response streaming
// forced on. ns/op tracks the schedule; the honest numbers are the
// corrected/uncorrected p99 metrics. The codec mode isolates the
// frame layer itself — encode+decode round trips with allocs/op
// visible, pinning the zero-copy claim in the published numbers.
func BenchmarkTrafficServeWire(b *testing.B) {
	b.Run("mode=inproc", func(b *testing.B) { benchWireOpenLoop(b, modeInproc) })
	b.Run("mode=wire", func(b *testing.B) { benchWireOpenLoop(b, modeWire) })
	b.Run("mode=wire-stream", func(b *testing.B) { benchWireOpenLoop(b, modeWireStream) })
	b.Run("mode=codec", benchWireCodec)
}

const (
	modeInproc = iota
	modeWire
	modeWireStream
)

func benchWireOpenLoop(b *testing.B, mode int) {
	const n = 2 << 10
	gen := kernel.MustLookup("sort").Gen(n, 42)
	base := gen.Xs
	e := exec.New(wireBenchWorkers)
	defer e.Close()
	s := serve.New(serve.Config{Executor: e, Scratch: scratch.New(), Workers: wireBenchWorkers,
		BatchWindow: 200 * time.Microsecond})
	defer s.Close()

	var l *Listener
	if mode != modeInproc {
		cfg := Config{}
		if mode == modeWireStream {
			// Force every sort reply through the chunk path.
			cfg.StreamCutoff = 1024
			cfg.StreamChunk = 8 << 10
		}
		var err error
		l, err = Listen("tcp", "127.0.0.1:0", s, cfg)
		if err != nil {
			b.Fatalf("Listen: %v", err)
		}
		defer l.Close()
	}

	sortK := kernel.MustLookup("sort")
	histK := kernel.MustLookup("histogram")
	// Open-loop arrivals overlap, so every in-flight request needs its
	// own payload buffers — and its own connection in the wire modes,
	// because one connection serves one request at a time. The freelist
	// is a channel, not a sync.Pool: a GC-emptied pool would drop warm
	// clients (leaking their connections) and force bursts of re-dials,
	// charging collector timing to the wire tail.
	type bufs struct {
		args kernel.Args
		hist []int
		cl   *Client
	}
	free := make(chan *bufs, 128)
	getBufs := func() *bufs {
		select {
		case bf := <-free:
			return bf
		default:
		}
		bf := &bufs{hist: make([]int, 1024)}
		bf.args.Xs = make([]int64, n)
		if mode != modeInproc {
			cl, err := Dial("tcp", l.Addr().String())
			if err != nil {
				// Runs on a loadgen goroutine, where b.Fatalf is illegal.
				panic(err)
			}
			bf.cl = cl
		}
		return bf
	}
	putBufs := func(bf *bufs) {
		select {
		case free <- bf:
		default:
			if bf.cl != nil {
				bf.cl.Close()
			}
		}
	}
	defer func() {
		close(free)
		for bf := range free {
			if bf.cl != nil {
				bf.cl.Close()
			}
		}
	}()

	sched := loadgen.Constant(b.N, wireBenchRate)
	b.ResetTimer()
	res := loadgen.Run(sched, func(i int) error {
		bf := getBufs()
		defer putBufs(bf)
		copy(bf.args.Xs, base)
		tenant := string(rune('a' + i%4))
		a := &bf.args
		a.Hist = nil
		a.Bucket = nil
		if i%2 != 0 {
			a.Hist = bf.hist
			a.Bucket = canonBucket1024
		}
		k := sortK
		if i%2 != 0 {
			k = histK
		}
		if mode == modeInproc {
			return s.Call(tenant, k, a)
		}
		return bf.cl.Call(tenant, k, a)
	})
	b.StopTimer()

	rep := res.Summarize(sched)
	b.ReportMetric(rep.CorrectedP99*1e9, "p99corr-ns")
	b.ReportMetric(rep.UncorrectedP99*1e9, "p99uncorr-ns")
	if fails := res.Failed(func(error) bool { return true }); fails > 0 {
		b.Fatalf("%d requests failed", fails)
	}
}

var canonBucket1024 = CanonicalBucket(1024)

// benchWireCodec measures the frame layer alone: one warm
// request-encode/decode plus response-encode/decode per op, with
// allocs/op reported — the number the zero-copy design is judged by.
func benchWireCodec(b *testing.B) {
	k := kernel.MustLookup("sort")
	a := k.Gen(2<<10, 42)
	dec := NewDecoder()
	var reqBuf, respBuf []byte
	var err error
	reqBuf, err = AppendRequest(reqBuf, 1, "tenant", k, a, nil, time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	body := make([]byte, len(reqBuf))
	out := kernel.Args{Xs: make([]int64, len(a.Xs))}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqBuf, _ = AppendRequest(reqBuf[:0], uint64(i), "tenant", k, a, nil, time.Millisecond)
		n := copy(body, reqBuf[4:])
		req, err := dec.DecodeRequest(body[:n])
		if err != nil {
			b.Fatal(err)
		}
		respBuf = AppendResponse(respBuf[:0], req.ID, req.Kernel, &req.Args)
		n = copy(body, respBuf[4:])
		if _, err := DecodeResponseInto(body[:n], &out); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(reqBuf)))
}

package wire

import (
	"errors"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/par"
)

// parOptions runs kernels serially in tests: the codec is what is
// under test, not the executor.
func parOptions() par.Options {
	return par.Options{Procs: 1, SerialCutoff: 1 << 62}
}

// decodeFrame strips the length prefix a full Append* frame carries
// and hands the body to the decoder, checking the prefix is honest.
func decodeFrame(t *testing.T, frame []byte) []byte {
	t.Helper()
	if len(frame) < 4 {
		t.Fatalf("frame too short for a length prefix: %d bytes", len(frame))
	}
	n := int(nativeOrder.Uint32(frame))
	if n != len(frame)-4 {
		t.Fatalf("length prefix %d, body %d", n, len(frame)-4)
	}
	return frame[4:]
}

func sameInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRequestRoundTrip pins encode→decode identity over every
// registered kernel's generated argument record: slices, scalars and
// graph topology survive the wire byte-for-byte, and the bucket
// function (which cannot cross a socket) is replaced by the canonical
// one with identical behavior on the generator's records.
func TestRequestRoundTrip(t *testing.T) {
	for _, k := range kernel.All() {
		t.Run(k.Name, func(t *testing.T) {
			a := k.Gen(257, 42)
			frame, err := AppendRequest(nil, 7, "tenant-a", k, a, nil, 3*time.Millisecond)
			if err != nil {
				t.Fatalf("AppendRequest: %v", err)
			}
			body := decodeFrame(t, frame)
			req, err := NewDecoder().DecodeRequest(body)
			if err != nil {
				t.Fatalf("DecodeRequest: %v", err)
			}
			if req.ID != 7 || req.Tenant != "tenant-a" || req.Kernel != k {
				t.Fatalf("identity: id=%d tenant=%q kernel=%v", req.ID, req.Tenant, req.Kernel)
			}
			if req.Budget != 3*time.Millisecond {
				t.Fatalf("budget = %v, want 3ms", req.Budget)
			}
			got, want := &req.Args, a
			if !sameInt64s(got.Xs, want.Xs) {
				t.Fatalf("Xs differ: %d vs %d elems", len(got.Xs), len(want.Xs))
			}
			if !sameInt64s(got.Dst, want.Dst) {
				t.Fatalf("Dst differ")
			}
			if len(got.Hist) != len(want.Hist) {
				t.Fatalf("Hist len %d, want %d", len(got.Hist), len(want.Hist))
			}
			for i := range got.Hist {
				if got.Hist[i] != want.Hist[i] {
					t.Fatalf("Hist[%d] = %d, want %d", i, got.Hist[i], want.Hist[i])
				}
			}
			if len(got.Dist) != len(want.Dist) {
				t.Fatalf("Dist len %d, want %d", len(got.Dist), len(want.Dist))
			}
			if got.K != want.K || got.Src != want.Src || got.Out != want.Out || got.Seed != want.Seed {
				t.Fatalf("scalars differ: %+v vs %+v", got, want)
			}
			if (got.G == nil) != (want.G == nil) {
				t.Fatalf("graph presence differs")
			}
			if want.G != nil {
				if got.G.N() != want.G.N() || got.G.M() != want.G.M() {
					t.Fatalf("graph shape %d/%d, want %d/%d", got.G.N(), got.G.M(), want.G.N(), want.G.M())
				}
				ge, we := got.G.Edges(), want.G.Edges()
				for i := range we {
					if ge[i].U != we[i].U || ge[i].V != we[i].V {
						t.Fatalf("edge %d: %v vs %v", i, ge[i], we[i])
					}
				}
			}
			if want.Bucket != nil {
				if got.Bucket == nil {
					t.Fatalf("bucket not installed for %s", k.Name)
				}
				for _, v := range append(append([]int64{}, want.Xs...), -1, 0, 1, 1<<40, -1<<40) {
					if got.Bucket(v) != want.Bucket(v) {
						t.Fatalf("bucket(%d) = %d, want %d", v, got.Bucket(v), want.Bucket(v))
					}
				}
			}
		})
	}
}

// TestDeltaRoundTrip pins the delta sections: append payloads and
// edge lists survive and the delta flag is honored.
func TestDeltaRoundTrip(t *testing.T) {
	k := kernel.MustLookup("sort")
	a := k.Gen(64, 9)
	k.Run(a, parOptions())
	d := &kernel.Delta{Append: []int64{5, -3, 99}}
	frame, err := AppendRequest(nil, 1, "t", k, a, d, 0)
	if err != nil {
		t.Fatalf("AppendRequest: %v", err)
	}
	req, err := NewDecoder().DecodeRequest(decodeFrame(t, frame))
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if !req.IsDelta {
		t.Fatalf("delta flag lost")
	}
	if !sameInt64s(req.Delta.Append, d.Append) {
		t.Fatalf("delta append differs: %v", req.Delta.Append)
	}
}

// TestResponseRoundTrip pins one-shot response decoding for each
// output shape: in-place Xs (sort), Dst (scan/topk), Hist, Dist
// (bfs), and scalar-only (sum/select).
func TestResponseRoundTrip(t *testing.T) {
	for _, name := range []string{"sort", "scan", "histogram", "bfs", "sum", "topk", "cc"} {
		t.Run(name, func(t *testing.T) {
			k := kernel.MustLookup(name)
			a := k.Gen(193, 3)
			k.Run(a, parOptions())
			frame := AppendResponse(nil, 11, k, a)
			var got kernel.Args
			// Seed the caller-side record the way a client would: same
			// input geometry, outputs to be overwritten.
			got.Xs = make([]int64, len(a.Xs))
			got.Dst = make([]int64, len(a.Dst))
			got.Hist = make([]int, len(a.Hist))
			h, err := DecodeResponseInto(decodeFrame(t, frame), &got)
			if err != nil {
				t.Fatalf("DecodeResponseInto: %v", err)
			}
			if h.ID != 11 {
				t.Fatalf("id = %d", h.ID)
			}
			p := planResponse(k, a)
			switch p.tag {
			case secXs:
				if !sameInt64s(got.Xs, a.Xs) {
					t.Fatalf("Xs differ")
				}
			case secDst:
				if !sameInt64s(got.Dst, a.Dst) {
					t.Fatalf("Dst differ")
				}
			case secHist:
				for i := range a.Hist {
					if got.Hist[i] != a.Hist[i] {
						t.Fatalf("Hist[%d] differs", i)
					}
				}
			case secDist:
				if len(got.Dist) != len(a.Dist) {
					t.Fatalf("Dist len %d, want %d", len(got.Dist), len(a.Dist))
				}
				for i := range a.Dist {
					if got.Dist[i] != a.Dist[i] {
						t.Fatalf("Dist[%d] differs", i)
					}
				}
			}
			if got.Out != a.Out || got.Seed != a.Seed {
				t.Fatalf("scalars differ: out %d vs %d", got.Out, a.Out)
			}
		})
	}
}

// TestDecodeTypedErrors pins the loud-rejection contract: bad magic,
// bad version, cross-endian sentinel, truncation and hostile section
// counts each land on their typed error, never a panic.
func TestDecodeTypedErrors(t *testing.T) {
	k := kernel.MustLookup("sort")
	a := k.Gen(32, 1)
	frame, err := AppendRequest(nil, 1, "t", k, a, nil, 0)
	if err != nil {
		t.Fatalf("AppendRequest: %v", err)
	}
	body := frame[4:]
	dec := NewDecoder()

	mut := func(f func(b []byte)) []byte {
		cp := append([]byte(nil), body...)
		f(cp)
		return cp
	}
	cases := []struct {
		name string
		body []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short-header", body[:headerSize-1], ErrTruncated},
		{"bad-magic", mut(func(b []byte) { b[0] = 0x00 }), ErrBadMagic},
		{"bad-version", mut(func(b []byte) { b[1] = 99 }), ErrBadVersion},
		{"cross-endian", mut(func(b []byte) { b[4], b[5] = b[5], b[4] }), ErrBadOrder},
		{"bad-type", mut(func(b []byte) { b[2] = 42 }), ErrBadFrame},
		{"truncated-section", body[:len(body)-8], ErrTruncated},
		{"oversized-count", mut(func(b []byte) {
			// The Xs section header sits right after the padded names;
			// inflate its count far past the body.
			off := headerSize + align8(2+len("sort")+len("t"))
			nativeOrder.PutUint32(b[off+4:], 1<<30)
		}), ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := dec.DecodeRequest(tc.body)
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestCodecSteadyStateAllocs pins the zero-copy contract directly on
// the codec: a warm encode+decode round trip of a request frame and a
// response frame allocates nothing (slab-aliased decode, reused
// buffers, interned tenant, cached bucket closure).
func TestCodecSteadyStateAllocs(t *testing.T) {
	sort := kernel.MustLookup("sort")
	hist := kernel.MustLookup("histogram")
	sa := sort.Gen(512, 5)
	ha := hist.Gen(512, 6)
	dec := NewDecoder()
	var reqBuf, respBuf []byte
	var err error
	// Warm every path once: buffers sized, tenant interned, bucket
	// closure cached.
	warm := func() {
		reqBuf, err = AppendRequest(reqBuf[:0], 1, "tenant", sort, sa, nil, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if _, err = dec.DecodeRequest(reqBuf[4:]); err != nil {
			t.Fatal(err)
		}
		reqBuf, err = AppendRequest(reqBuf[:0], 2, "tenant", hist, ha, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err = dec.DecodeRequest(reqBuf[4:]); err != nil {
			t.Fatal(err)
		}
		respBuf = AppendResponse(respBuf[:0], 1, sort, sa)
		var out kernel.Args
		out.Xs = make([]int64, len(sa.Xs))
		if _, err = DecodeResponseInto(respBuf[4:], &out); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	// The decoder sees frame bodies at slab offset 0 (the listener
	// reads the 4-byte prefix into a separate array), so the pin
	// copies each body into an 8-aligned buffer exactly like the read
	// path does — decoding at frame[4:] would hit the misaligned-copy
	// fallback and measure the wrong thing.
	body := make([]byte, 1<<16)
	out := kernel.Args{Xs: make([]int64, len(sa.Xs))}
	allocs := testing.AllocsPerRun(200, func() {
		reqBuf, _ = AppendRequest(reqBuf[:0], 3, "tenant", sort, sa, nil, time.Millisecond)
		n := copy(body, reqBuf[4:])
		if _, err := dec.DecodeRequest(body[:n]); err != nil {
			t.Fatal(err)
		}
		reqBuf, _ = AppendRequest(reqBuf[:0], 4, "tenant", hist, ha, nil, 0)
		n = copy(body, reqBuf[4:])
		if _, err := dec.DecodeRequest(body[:n]); err != nil {
			t.Fatal(err)
		}
		respBuf = AppendResponse(respBuf[:0], 3, sort, sa)
		n = copy(body, respBuf[4:])
		if _, err := DecodeResponseInto(body[:n], &out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("codec round trip allocates %.1f per run, want 0", allocs)
	}
}

// Package wire is the network front door: a length-prefixed binary
// frame codec plus a Listener that serves framed requests over TCP or
// Unix sockets onto an existing serve.Server or serve.Sharded, and a
// Client that speaks the same frames from the other end.
//
// The codec is built for the read path to be zero-copy: a request
// frame's body is read into a connection-owned slab drawn from
// internal/scratch, and the decoder aliases the payload sections
// directly as kernel.Args slices (unsafe casts of the 8-aligned slab,
// the same trick scratch itself uses to carve typed buffers from
// pooled byte slabs). The kernel then runs in place on the slab; no
// per-request copy or allocation happens between the socket and the
// batch slot. The slab is reused for the next frame only after the
// response has been written, so aliasing is safe by construction: one
// reader goroutine per connection serializes read → decode → call →
// respond, and concurrency comes from many connections, exactly like
// the double-buffered serving loops this layer is modeled on.
//
// Frame metadata carries an optional per-request deadline budget.
// The listener stamps it into the admission path via CallBudget, so
// the serve deadline ladder — door refusal on predicted wait, queue
// expiry at batch formation, stamps riding migration to thief shards
// — works end-to-end from a remote client. Budget-less frames inherit
// the server's configured SLO.
//
// Responses travel through pooled per-connection write buffers.
// Large replies (a pipeline-routed sort's output, say) are streamed
// as chunked frames instead of one materialized reply: raw payload
// chunks at increasing offsets, then a closing frame carrying the
// scalars and the section geometry. The client reassembles them into
// the same bytes a one-shot reply would have carried.
//
// The decoder never panics on hostile input: every length, offset and
// count is bounds-checked, and malformed frames fail loudly with the
// typed errors (ErrBadMagic, ErrTruncated, ErrFrameTooLarge, ...).
// Frames use native byte order (that is what makes the in-place cast
// legal) and carry an order sentinel so a cross-endian peer is
// rejected with ErrBadOrder instead of silently misread.
package wire

package wire

import (
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/par"
	"repro/internal/scratch"
	"repro/internal/serve"
)

// The gate kernel parks every request inside its batch slot until the
// test opens the gate — the socket-level equivalent of the serve
// suite's deadlineGate bucket, registered once for this test binary.
// It is what lets deadline and migration tests hold a dispatcher
// mid-batch deterministically from the far side of a socket.
var gate struct {
	mu sync.Mutex
	ch chan struct{}
}

// gateReset arms a fresh gate and returns the function that opens it.
func gateReset() func() {
	gate.mu.Lock()
	ch := make(chan struct{})
	gate.ch = ch
	gate.mu.Unlock()
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

func gatePark() {
	gate.mu.Lock()
	ch := gate.ch
	gate.mu.Unlock()
	if ch != nil {
		<-ch
	}
}

var gateKernel = kernel.Register(kernel.Kernel{
	Name:     "wiregate",
	Title:    "test kernel that parks until the gate opens",
	Variants: []kernel.Variant{{Name: "park", Run: func(a *kernel.Args, _ par.Options) { gatePark() }}},
	Serial:   func(a *kernel.Args) { gatePark() },
	Gen:      func(n int, seed uint64) *kernel.Args { return &kernel.Args{Xs: []int64{int64(seed)}} },
	Check:    func(got, want *kernel.Args) error { return nil },
})

// newWire spins a Server (or uses the one given) behind a TCP
// listener and returns a connected client, with cleanup registered.
func newWire(t *testing.T, backend Backend, cfg Config) (*Listener, *Client) {
	t.Helper()
	l, err := Listen("tcp", "127.0.0.1:0", backend, cfg)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	cl, err := Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return l, cl
}

// TestWireEndToEnd drives every servable kernel shape through a real
// socket and compares against a local run of the same record: the
// wire path must be semantically invisible.
func TestWireEndToEnd(t *testing.T) {
	s := serve.New(serve.Config{})
	defer s.Close()
	_, cl := newWire(t, s, Config{})

	for _, name := range []string{"sort", "select", "histogram", "scan", "sum", "bfs", "topk", "cc", "gups"} {
		t.Run(name, func(t *testing.T) {
			k := kernel.MustLookup(name)
			local := k.Gen(301, 7)
			remote := k.Gen(301, 7)
			k.Run(local, parOptions())
			if err := cl.Call("tenant-e2e", k, remote); err != nil {
				t.Fatalf("wire call: %v", err)
			}
			if err := k.Check(remote, local); err != nil {
				t.Fatalf("wire result differs from local: %v", err)
			}
		})
	}
}

// TestWireCallDelta pins the incremental path over the socket: the
// response to a delta request carries the grown, merged output.
func TestWireCallDelta(t *testing.T) {
	s := serve.New(serve.Config{})
	defer s.Close()
	_, cl := newWire(t, s, Config{})

	k := kernel.MustLookup("sort")
	a := k.Gen(128, 3)
	if err := cl.Call("t", k, a); err != nil {
		t.Fatalf("initial sort: %v", err)
	}
	want := append([]int64(nil), a.Xs...)
	want = append(want, -7, 1000, 5)
	local := &kernel.Args{Xs: append([]int64(nil), a.Xs...)}
	if err := k.RunDelta(local, &kernel.Delta{Append: []int64{-7, 1000, 5}}, parOptions()); err != nil {
		t.Fatalf("local delta: %v", err)
	}
	if err := cl.CallDelta("t", k, a, &kernel.Delta{Append: []int64{-7, 1000, 5}}); err != nil {
		t.Fatalf("wire delta: %v", err)
	}
	if len(a.Xs) != len(local.Xs) {
		t.Fatalf("delta reply len %d, want %d", len(a.Xs), len(local.Xs))
	}
	for i := range a.Xs {
		if a.Xs[i] != local.Xs[i] {
			t.Fatalf("Xs[%d] = %d, want %d", i, a.Xs[i], local.Xs[i])
		}
	}
}

// TestWireStreamedByteIdentical pins the chunked response path: the
// same request served by a streaming listener and a one-shot listener
// must decode to identical results, and the streaming listener must
// actually have streamed.
func TestWireStreamedByteIdentical(t *testing.T) {
	s := serve.New(serve.Config{})
	defer s.Close()
	oneShot, clOne := newWire(t, s, Config{})
	streaming, clStream := newWire(t, s, Config{StreamCutoff: 1024, StreamChunk: 4096})

	k := kernel.MustLookup("sort")
	a1 := k.Gen(50_000, 21)
	a2 := k.Gen(50_000, 21)
	if err := clOne.Call("t", k, a1); err != nil {
		t.Fatalf("one-shot: %v", err)
	}
	if err := clStream.Call("t", k, a2); err != nil {
		t.Fatalf("streamed: %v", err)
	}
	if len(a1.Xs) != len(a2.Xs) {
		t.Fatalf("lengths differ: %d vs %d", len(a1.Xs), len(a2.Xs))
	}
	for i := range a1.Xs {
		if a1.Xs[i] != a2.Xs[i] {
			t.Fatalf("Xs[%d]: one-shot %d, streamed %d", i, a1.Xs[i], a2.Xs[i])
		}
	}
	if st := streaming.Stats(); st.Chunks == 0 {
		t.Fatalf("streaming listener sent no chunks: %+v", st)
	}
	if st := oneShot.Stats(); st.Chunks != 0 {
		t.Fatalf("one-shot listener sent chunks: %+v", st)
	}
}

// TestWireDeadlineDoorRefusal pins the door rung end-to-end: warm the
// service-time EWMA with real traffic, then a wire-stamped budget too
// small for even one predicted service time is refused at the door —
// the client sees serve.ErrDeadlineExceeded through errors.Is, and
// the server counts a door refusal, not a queue expiry.
func TestWireDeadlineDoorRefusal(t *testing.T) {
	s := serve.New(serve.Config{})
	defer s.Close()
	_, cl := newWire(t, s, Config{})

	k := kernel.MustLookup("sort")
	for i := 0; i < 5; i++ {
		a := k.Gen(4096, uint64(i))
		if err := cl.Call("t", k, a); err != nil {
			t.Fatalf("warm call %d: %v", i, err)
		}
	}
	a := k.Gen(4096, 99)
	err := cl.CallBudget("t", k, a, time.Nanosecond)
	if !errors.Is(err, serve.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	st := s.Stats()
	if st.DeadlineRejected != 1 {
		t.Fatalf("DeadlineRejected = %d, want 1 (stats %+v)", st.DeadlineRejected, st)
	}
	if st.Expired != 0 {
		t.Fatalf("Expired = %d, want 0 — refusal must happen at the door", st.Expired)
	}
}

// TestWireBudgetlessInheritsSLO is the regression pin that frames
// without a budget inherit Config.SLO: under a 1ns server SLO a
// budget-less request expires, while the same request carrying its
// own generous wire budget overrides the SLO and completes.
func TestWireBudgetlessInheritsSLO(t *testing.T) {
	s := serve.New(serve.Config{SLO: time.Nanosecond})
	defer s.Close()
	_, cl := newWire(t, s, Config{})

	k := kernel.MustLookup("sort")
	a := k.Gen(64, 1)
	if err := cl.CallBudget("t", k, a, time.Minute); err != nil {
		t.Fatalf("budgeted call must override the 1ns SLO: %v", err)
	}
	err := cl.Call("t", k, k.Gen(64, 2))
	if !errors.Is(err, serve.ErrDeadlineExceeded) {
		t.Fatalf("budget-less err = %v, want ErrDeadlineExceeded (inherited SLO)", err)
	}
	if st := s.Stats(); st.Expired == 0 && st.DeadlineRejected == 0 {
		t.Fatalf("no deadline enforcement recorded: %+v", st)
	}
}

// TestWireBudgetExpiresInQueue pins the middle rung over a socket: a
// budget-stamped request that sits queued behind a parked batch past
// its budget is dropped at the next batch formation.
func TestWireBudgetExpiresInQueue(t *testing.T) {
	open := gateReset()
	defer open()
	s := serve.New(serve.Config{})
	defer s.Close()
	l, clGate := newWire(t, s, Config{})
	_, clB := newWire1(t, l)

	done := make(chan error, 1)
	go func() { done <- clGate.Call("t", gateKernel, &kernel.Args{Xs: []int64{1}}) }()
	waitFor(t, time.Second, func() bool { return s.Stats().Batches >= 1 })

	k := kernel.MustLookup("sort")
	errc := make(chan error, 1)
	go func() { errc <- clB.CallBudget("t", k, k.Gen(64, 5), 2*time.Millisecond) }()
	waitFor(t, time.Second, func() bool { return s.Stats().Accepted >= 2 })
	time.Sleep(10 * time.Millisecond) // let the 2ms budget lapse while parked
	open()
	if err := <-done; err != nil {
		t.Fatalf("gate request: %v", err)
	}
	err := <-errc
	if !errors.Is(err, serve.ErrDeadlineExceeded) {
		t.Fatalf("queued err = %v, want ErrDeadlineExceeded", err)
	}
	if st := s.Stats(); st.Expired != 1 {
		t.Fatalf("Expired = %d, want 1 (stats %+v)", st.Expired, st)
	}
}

// newWire1 dials another client at an existing listener.
func newWire1(t *testing.T, l *Listener) (*Listener, *Client) {
	t.Helper()
	cl, err := Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return l, cl
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached within %v", d)
		}
		time.Sleep(time.Millisecond)
	}
}

// hotTenantFor finds a tenant name homed on shard 0 of g.
func hotTenantFor(g *serve.Sharded) string {
	for i := 0; ; i++ {
		name := fmt.Sprintf("hot-%d", i)
		if g.HomeShard(name) == 0 {
			return name
		}
	}
}

// TestWireMigrationCarriesStamps mirrors the serve suite's
// TestMigrationKeepsDeadlineStamps over real sockets, with organic
// migration instead of white-box hooks: the home shard's dispatcher
// is parked inside a gate batch, budget-stamped wire requests pile up
// on its queue, and the diffusive balancer (hysteresis 1) walks them
// to the idle sibling — whose batch formation enforces the stamps the
// home shard admitted. The proof the stamps rode: clients receive
// ErrDeadlineExceeded while the home dispatcher is still parked, so
// only a thief shard can have expired them.
func TestWireMigrationCarriesStamps(t *testing.T) {
	open := gateReset()
	defer open()
	g := serve.NewSharded(serve.ShardedConfig{
		Shards:            2,
		ShardProcs:        1,
		MigrateHysteresis: 1,
	})
	defer g.Close()
	l, err := Listen("tcp", "127.0.0.1:0", g, Config{})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	tenant := hotTenantFor(g)

	clGate, err := Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer clGate.Close()
	done := make(chan error, 1)
	go func() { done <- clGate.Call(tenant, gateKernel, &kernel.Args{Xs: []int64{1}}) }()
	waitFor(t, time.Second, func() bool { return g.Stats().PerShard[0].Batches >= 1 })

	// Six concurrent budget-stamped victims: admitted cold (EWMA
	// unwarmed) with 1ns stamps, queued behind the parked batch. The
	// submit piggyback sees the deepening queue and pushes victims to
	// shard 1.
	const victims = 6
	k := kernel.MustLookup("sort")
	errc := make(chan error, victims)
	for i := 0; i < victims; i++ {
		go func(i int) {
			cl, err := Dial("tcp", l.Addr().String())
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			errc <- cl.CallBudget(tenant, k, k.Gen(64, uint64(i)), time.Nanosecond)
		}(i)
	}
	// At least one victim must be expired by the thief while the home
	// dispatcher is still parked.
	select {
	case err := <-errc:
		if !errors.Is(err, serve.ErrDeadlineExceeded) {
			t.Fatalf("victim err = %v, want ErrDeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("no victim expired while home shard parked; stats %+v", g.Stats())
	}
	st := g.Stats()
	if st.Migrated == 0 {
		t.Fatalf("no requests migrated; stats %+v", st)
	}
	open()
	if err := <-done; err != nil {
		t.Fatalf("gate request: %v", err)
	}
	for i := 1; i < victims; i++ {
		if err := <-errc; err != nil && !errors.Is(err, serve.ErrDeadlineExceeded) {
			t.Fatalf("victim err = %v", err)
		}
	}
	// Expiries are charged to the admitting tenant entry wherever
	// they happened, so the merged accounting still balances.
	st = g.Stats()
	if st.Aggregate.Accepted != st.Aggregate.Completed+st.Aggregate.Expired {
		t.Fatalf("accounting: accepted %d != completed %d + expired %d",
			st.Aggregate.Accepted, st.Aggregate.Completed, st.Aggregate.Expired)
	}
}

// TestWireRaceSuite is the socket-level race exercise: concurrent
// clients with mixed kernels, budgets and deltas against a 4-shard
// listener. Run under -race in CI. At drain, client-side outcomes and
// server-side accounting must balance exactly.
func TestWireRaceSuite(t *testing.T) {
	g := serve.NewSharded(serve.ShardedConfig{Shards: 4})
	defer g.Close()
	l, err := Listen("tcp", "127.0.0.1:0", g, Config{StreamCutoff: 32 << 10})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	const clients = 8
	const perClient = 40
	var ok, deadline, rejected atomic64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial("tcp", l.Addr().String())
			if err != nil {
				t.Errorf("client %d dial: %v", c, err)
				return
			}
			defer cl.Close()
			tenant := fmt.Sprintf("tenant-%d", c%3)
			names := []string{"sort", "sum", "histogram", "scan"}
			record := func(i int, err error) {
				switch {
				case err == nil:
					ok.add(1)
				case errors.Is(err, serve.ErrDeadlineExceeded):
					deadline.add(1)
				case errors.Is(err, serve.ErrRejected):
					rejected.add(1)
				default:
					t.Errorf("client %d req %d: %v", c, i, err)
				}
			}
			for i := 0; i < perClient; i++ {
				k := kernel.MustLookup(names[(c+i)%len(names)])
				a := k.Gen(512+64*(i%7), uint64(c*1000+i))
				switch {
				case i%11 == 5:
					record(i, cl.CallBudget(tenant, k, a, time.Nanosecond))
				case i%13 == 7 && k.Name == "sort":
					// Two wire requests, two outcomes.
					err := cl.Call(tenant, k, a)
					record(i, err)
					if err == nil {
						record(i, cl.CallDelta(tenant, k, a, &kernel.Delta{Append: []int64{int64(i), -int64(i)}}))
					}
				default:
					record(i, cl.Call(tenant, k, a))
				}
			}
		}(c)
	}
	wg.Wait()
	st := g.Stats()
	if st.Aggregate.Accepted != st.Aggregate.Completed+st.Aggregate.Expired {
		t.Fatalf("accounting: accepted %d != completed %d + expired %d",
			st.Aggregate.Accepted, st.Aggregate.Completed, st.Aggregate.Expired)
	}
	refusals := st.Aggregate.Rejected + st.Aggregate.DeadlineRejected + st.Aggregate.Expired
	if got := deadline.load() + rejected.load(); got != refusals {
		t.Fatalf("client-side failures %d != server-side refusals %d (stats %+v)", got, refusals, st.Aggregate)
	}
	ls := l.Stats()
	if ls.InFlight != 0 {
		t.Fatalf("in-flight gauge %d after drain", ls.InFlight)
	}
	if ls.Requests != int64(ok.load())+int64(deadline.load())+int64(rejected.load()) {
		t.Fatalf("listener requests %d != client outcomes %d", ls.Requests, ok.load()+deadline.load()+rejected.load())
	}
}

type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

// TestWireAbruptDisconnect pins the leak contract: a client that dies
// mid-stream leaks neither goroutines nor scratch bytes — the reader
// notices the dead socket, returns its slabs, and the gauges settle
// back to their baselines.
func TestWireAbruptDisconnect(t *testing.T) {
	pool := scratch.New()
	s := serve.New(serve.Config{Scratch: pool})
	defer s.Close()
	l, err := Listen("tcp", "127.0.0.1:0", s, Config{Scratch: pool, StreamCutoff: 8 << 10, StreamChunk: 4 << 10})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	// One clean request first so the serving path's lazy structures
	// (pools, EWMA, tenant entries) exist before the baseline.
	cl, err := Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	k := kernel.MustLookup("sort")
	if err := cl.Call("t", k, k.Gen(65_536, 1)); err != nil {
		t.Fatalf("priming call: %v", err)
	}
	cl.Close()
	waitFor(t, time.Second, func() bool { return l.Stats().ActiveConns == 0 })
	baselineGo := runtime.NumGoroutine()
	baselineBytes := pool.Stats().BytesLive

	for round := 0; round < 4; round++ {
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatalf("raw dial: %v", err)
		}
		frame, err := AppendRequest(nil, 1, "t", k, k.Gen(65_536, uint64(round)), nil, 0)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		if _, err := c.Write(frame); err != nil {
			t.Fatalf("write: %v", err)
		}
		// Read one chunk frame of the streamed reply, then vanish.
		var lenb [4]byte
		if _, err := io.ReadFull(c, lenb[:]); err != nil {
			t.Fatalf("read prefix: %v", err)
		}
		n := int(nativeOrder.Uint32(lenb[:]))
		buf := make([]byte, n)
		if _, err := io.ReadFull(c, buf); err != nil {
			t.Fatalf("read body: %v", err)
		}
		c.Close()
	}
	waitFor(t, 2*time.Second, func() bool { return l.Stats().ActiveConns == 0 })
	waitFor(t, 2*time.Second, func() bool { return pool.Stats().BytesLive <= baselineBytes })
	// Goroutine counts need settling time for netpoller bookkeeping.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baselineGo && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baselineGo {
		t.Fatalf("goroutines %d > baseline %d after disconnects", got, baselineGo)
	}
}

// TestWireCloseDrains pins Close semantics: a request in flight when
// Close is called still completes and its response still arrives;
// afterwards the port stops accepting.
func TestWireCloseDrains(t *testing.T) {
	open := gateReset()
	defer open()
	s := serve.New(serve.Config{})
	defer s.Close()
	l, err := Listen("tcp", "127.0.0.1:0", s, Config{})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	cl, err := Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	addr := l.Addr().String()

	done := make(chan error, 1)
	go func() { done <- cl.Call("t", gateKernel, &kernel.Args{Xs: []int64{1}}) }()
	waitFor(t, time.Second, func() bool { return s.Stats().Batches >= 1 })

	closed := make(chan struct{})
	go func() { l.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatalf("Close returned while a request was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	open()
	if err := <-done; err != nil {
		t.Fatalf("in-flight request failed across Close: %v", err)
	}
	<-closed
	if c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		c.Close()
		t.Fatalf("listener still accepting after Close")
	}
}

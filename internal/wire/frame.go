package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"
	"unsafe"

	"repro/internal/graph"
	"repro/internal/kernel"
)

// Wire format. Every frame is a u32 length prefix (body bytes,
// excluding the prefix itself) followed by the body:
//
//	off  size  field
//	0    1     magic (0x9D)
//	1    1     version (1)
//	2    1     frame type (request/response/chunk/end/error)
//	3    1     flags (bit0 delta, bit1 canonical bucket)
//	4    2     byte-order sentinel (0x0A0B as a native-order u16)
//	6    2     reserved
//	8    8     id (client-chosen; responses echo it)
//	16   8     aux (request: deadline budget in ns; chunk: payload
//	           byte offset; error: remote error code)
//	24   8     reserved
//
// A request body continues with the kernel name and tenant name (each
// a u8 length plus bytes), padded to an 8-byte boundary, then payload
// sections. A response body goes straight to sections. Each section
// is an 8-byte header — u8 tag, u8 flags (bit0: payload streamed in
// separate chunk frames), u16 reserved, u32 element count — followed
// by the payload padded to 8 bytes. Section payloads therefore always
// start 8-aligned relative to the body, which is what lets the
// decoder cast them in place.
//
// Everything is native byte order: the zero-copy cast requires it,
// and the sentinel turns a cross-endian peer into a loud ErrBadOrder
// instead of garbage lengths.
const (
	frameMagic    = 0x9D
	frameVersion  = 1
	orderSentinel = 0x0A0B

	headerSize     = 32
	sectionHdrSize = 8

	// DefaultMaxFrame bounds a single frame's body. It matches the
	// largest scratch size class, so a maximal frame still decodes in
	// place from one pooled slab.
	DefaultMaxFrame = 64 << 20

	// maxGraphNodes caps the node count a graph section may declare.
	maxGraphNodes = 4 << 20
)

// Frame types.
const (
	frameRequest  = 1
	frameResponse = 2
	frameChunk    = 3 // raw payload bytes of a streamed section
	frameEnd      = 4 // closes a streamed response: scalars + geometry
	frameError    = 5
)

// Header flag bits.
const (
	flagDelta  = 1 << 0 // request carries delta sections (CallDelta)
	flagBucket = 1 << 1 // install the canonical histogram bucket
)

// Section flag bits.
const secFlagStreamed = 1 << 0

// Section tags.
const (
	secXs          = 1 // []int64
	secDst         = 2 // []int64
	secHist        = 3 // []int (64-bit on the wire)
	secDist        = 4 // []int32
	secGraph       = 5 // u32 n, u32 reserved, then count (u32,u32) edges
	secScalars     = 6 // K, Src, Out (int64) and Seed (uint64)
	secDeltaAppend = 7 // []int64
	secDeltaEdges  = 8 // count (u32,u32) edges
)

// Remote error codes carried in an error frame's aux field. Codes
// 1..3 map back to the serve sentinels on the client so errors.Is
// works across the socket; everything else arrives as code 4 plus
// the error text.
const (
	codeRejected = 1
	codeDeadline = 2
	codeClosed   = 3
	codeOther    = 4
)

// Typed decode errors. The decoder returns these (wrapped with
// context) instead of panicking, whatever bytes arrive.
var (
	ErrBadMagic      = errors.New("wire: bad magic byte")
	ErrBadVersion    = errors.New("wire: unsupported protocol version")
	ErrBadOrder      = errors.New("wire: byte-order sentinel mismatch (cross-endian peer)")
	ErrFrameTooLarge = errors.New("wire: frame length exceeds limit")
	ErrTruncated     = errors.New("wire: truncated frame")
	ErrBadFrame      = errors.New("wire: malformed frame")
)

var nativeOrder = binary.NativeEndian

// strconv64 gates the []int in-place casts: they are only
// size-correct where int is 64-bit (everywhere this repo targets; the
// copy fallback keeps 32-bit correct if slower).
const strconv64 = strconv.IntSize == 64

// align8 rounds n up to the next multiple of 8.
func align8(n int) int { return (n + 7) &^ 7 }

// aligned8 reports whether the slice's backing array starts on an
// 8-byte boundary — true for every scratch slab and every Go heap
// allocation of at least pointer size, but checked anyway because the
// in-place casts are only legal when it holds.
func aligned8(b []byte) bool {
	if len(b) == 0 {
		return true
	}
	return uintptr(unsafe.Pointer(unsafe.SliceData(b)))%8 == 0
}

// CanonicalBucket returns the histogram bucket function the wire
// protocol transports: value mod bucket-count over the unsigned
// reinterpretation. Arbitrary closures cannot cross a socket, so a
// frame with a Hist section sets the bucket flag and the server
// installs this function; clients whose bucket is power-of-two modular
// (the generator's &0xFF over 256 buckets, the demo's %1024 over 1024)
// get identical histograms.
func CanonicalBucket(buckets int) func(int64) int {
	bucketMu.RLock()
	f := bucketFns[buckets]
	bucketMu.RUnlock()
	if f != nil {
		return f
	}
	bucketMu.Lock()
	defer bucketMu.Unlock()
	if f := bucketFns[buckets]; f != nil {
		return f
	}
	f = func(v int64) int { return int(uint64(v) % uint64(buckets)) }
	bucketFns[buckets] = f
	return f
}

// bucketFns caches canonical bucket closures by bucket count, keeping
// the warm histogram decode path allocation-free (a fresh closure per
// frame would be one heap object per request, and a sync.Map would
// box the int key on every lookup).
var (
	bucketMu  sync.RWMutex
	bucketFns = map[int]func(int64) int{}
)

// --- encoding ---------------------------------------------------------

// ensure grows buf to length n (reallocating only when capacity is
// short, so warm per-connection buffers stay allocation-free).
func ensure(buf []byte, n int) []byte {
	if cap(buf) < n {
		nb := make([]byte, n, max(n, 2*cap(buf)))
		copy(nb, buf)
		return nb
	}
	return buf[:n]
}

func putHeader(b []byte, typ, flags byte, id, aux uint64) {
	b[0] = frameMagic
	b[1] = frameVersion
	b[2] = typ
	b[3] = flags
	nativeOrder.PutUint16(b[4:6], orderSentinel)
	nativeOrder.PutUint16(b[6:8], 0)
	nativeOrder.PutUint64(b[8:16], id)
	nativeOrder.PutUint64(b[16:24], aux)
	nativeOrder.PutUint64(b[24:32], 0)
}

// sectionSize is the on-wire size of one section with payload bytes.
func sectionSize(payload int) int { return sectionHdrSize + align8(payload) }

// putSectionHdr writes a section header at b[off:] and returns the
// offset of the payload.
func putSectionHdr(b []byte, off int, tag, flags byte, count int) int {
	b[off] = tag
	b[off+1] = flags
	nativeOrder.PutUint16(b[off+2:off+4], 0)
	nativeOrder.PutUint32(b[off+4:off+8], uint32(count))
	return off + sectionHdrSize
}

// putInt64s copies xs into b at off (which must be 8-aligned) and
// returns the next 8-aligned offset.
func putInt64s(b []byte, off int, xs []int64) int {
	n := copy(b[off:], unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(xs))), 8*len(xs)))
	return off + align8(n)
}

func putInts(b []byte, off int, xs []int) int {
	if strconv.IntSize == 64 {
		n := copy(b[off:], unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(xs))), 8*len(xs)))
		return off + align8(n)
	}
	for _, v := range xs {
		nativeOrder.PutUint64(b[off:], uint64(int64(v)))
		off += 8
	}
	return off
}

func putInt32s(b []byte, off int, xs []int32) int {
	n := copy(b[off:], unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(xs))), 4*len(xs)))
	return off + align8(n)
}

// graphPayload is the byte size of a graph section body.
func graphPayload(m int) int { return 8 + 8*m }

// putGraph serializes g (unweighted topology only) as n plus its edge
// list; weights do not cross the wire.
func putGraph(b []byte, off int, g *graph.Graph) int {
	nativeOrder.PutUint32(b[off:], uint32(g.N()))
	nativeOrder.PutUint32(b[off+4:], 0)
	off += 8
	for _, e := range g.Edges() {
		nativeOrder.PutUint32(b[off:], uint32(e.U))
		nativeOrder.PutUint32(b[off+4:], uint32(e.V))
		off += 8
	}
	return off
}

func putEdges(b []byte, off int, edges []graph.Edge) int {
	for _, e := range edges {
		nativeOrder.PutUint32(b[off:], uint32(e.U))
		nativeOrder.PutUint32(b[off+4:], uint32(e.V))
		off += 8
	}
	return off
}

func putScalars(b []byte, off int, a *kernel.Args) int {
	nativeOrder.PutUint64(b[off:], uint64(int64(a.K)))
	nativeOrder.PutUint64(b[off+8:], uint64(int64(a.Src)))
	nativeOrder.PutUint64(b[off+16:], uint64(a.Out))
	nativeOrder.PutUint64(b[off+24:], a.Seed)
	return off + 32
}

// requestSize is the body size of a request frame for (k, a, d).
func requestSize(kname, tenant string, a *kernel.Args, d *kernel.Delta) int {
	n := headerSize + align8(2+len(kname)+len(tenant))
	if a.Xs != nil {
		n += sectionSize(8 * len(a.Xs))
	}
	if a.Dst != nil {
		n += sectionSize(8 * len(a.Dst))
	}
	if a.Hist != nil {
		n += sectionSize(8 * len(a.Hist))
	}
	if a.Dist != nil {
		n += sectionSize(4 * len(a.Dist))
	}
	if a.G != nil {
		n += sectionSize(graphPayload(a.G.M()))
	}
	n += sectionSize(32) // scalars, always present
	if d != nil {
		if d.Append != nil {
			n += sectionSize(8 * len(d.Append))
		}
		if d.Edges != nil {
			n += sectionSize(8 * len(d.Edges))
		}
	}
	return n
}

// AppendRequest encodes one request frame — length prefix included —
// onto buf and returns the extended slice. A nil d encodes a plain
// Call; a non-nil d sets the delta flag and appends the delta
// sections. budget (0 for none) rides the aux field as nanoseconds.
// The id is chosen by the caller and echoed by every response frame.
func AppendRequest(buf []byte, id uint64, tenant string, k *kernel.Kernel, a *kernel.Args, d *kernel.Delta, budget time.Duration) ([]byte, error) {
	if k == nil {
		return buf, fmt.Errorf("%w: nil kernel", ErrBadFrame)
	}
	if len(k.Name) > 255 || len(k.Name) == 0 {
		return buf, fmt.Errorf("%w: kernel name length %d", ErrBadFrame, len(k.Name))
	}
	if len(tenant) > 255 {
		return buf, fmt.Errorf("%w: tenant name length %d", ErrBadFrame, len(tenant))
	}
	if budget < 0 {
		budget = 0
	}
	body := requestSize(k.Name, tenant, a, d)
	base := len(buf)
	buf = ensure(buf, base+4+body)
	nativeOrder.PutUint32(buf[base:], uint32(body))
	b := buf[base+4:]
	flags := byte(0)
	if d != nil {
		flags |= flagDelta
	}
	if a.Hist != nil {
		// The bucket function cannot cross the wire; the flag tells the
		// server to install CanonicalBucket(len(Hist)) instead.
		flags |= flagBucket
	}
	putHeader(b, frameRequest, flags, id, uint64(budget))
	off := headerSize
	b[off] = byte(len(k.Name))
	off++
	off += copy(b[off:], k.Name)
	b[off] = byte(len(tenant))
	off++
	off += copy(b[off:], tenant)
	for off%8 != 0 {
		b[off] = 0
		off++
	}
	if a.Xs != nil {
		off = putSectionHdr(b, off, secXs, 0, len(a.Xs))
		off = putInt64s(b, off, a.Xs)
	}
	if a.Dst != nil {
		off = putSectionHdr(b, off, secDst, 0, len(a.Dst))
		off = putInt64s(b, off, a.Dst)
	}
	if a.Hist != nil {
		off = putSectionHdr(b, off, secHist, 0, len(a.Hist))
		off = putInts(b, off, a.Hist)
	}
	if a.Dist != nil {
		off = putSectionHdr(b, off, secDist, 0, len(a.Dist))
		off = putInt32s(b, off, a.Dist)
	}
	if a.G != nil {
		off = putSectionHdr(b, off, secGraph, 0, a.G.M())
		off = putGraph(b, off, a.G)
	}
	off = putSectionHdr(b, off, secScalars, 0, 4)
	off = putScalars(b, off, a)
	if d != nil {
		if d.Append != nil {
			off = putSectionHdr(b, off, secDeltaAppend, 0, len(d.Append))
			off = putInt64s(b, off, d.Append)
		}
		if d.Edges != nil {
			off = putSectionHdr(b, off, secDeltaEdges, 0, len(d.Edges))
			off = putEdges(b, off, d.Edges)
		}
	}
	if off != body {
		return buf, fmt.Errorf("%w: encoded %d bytes, sized %d", ErrBadFrame, off, body)
	}
	return buf, nil
}

// respPlan names the slice section a response carries. The choice is
// kernel-driven: a CacheSpec's Out kind when the kernel has one (the
// cache already had to answer "what is this kernel's output"), else
// Hist for histogram-shaped records, Dist for graph kernels, Xs as
// the in-place default. Scalars always travel.
type respPlan struct {
	tag     byte
	payload int // payload bytes of the slice section (0 = scalars only)
}

func planResponse(k *kernel.Kernel, a *kernel.Args) respPlan {
	if k != nil && k.Cache != nil {
		switch k.Cache.Out {
		case kernel.OutXs:
			return respPlan{secXs, 8 * len(a.Xs)}
		case kernel.OutDst:
			return respPlan{secDst, 8 * len(a.Dst)}
		case kernel.OutScalar:
			return respPlan{0, 0}
		}
	}
	switch {
	case a.Hist != nil:
		return respPlan{secHist, 8 * len(a.Hist)}
	case a.Dist != nil:
		return respPlan{secDist, 4 * len(a.Dist)}
	case a.Dst != nil:
		return respPlan{secDst, 8 * len(a.Dst)}
	default:
		return respPlan{secXs, 8 * len(a.Xs)}
	}
}

func planCount(p respPlan, a *kernel.Args) int {
	switch p.tag {
	case secXs:
		return len(a.Xs)
	case secDst:
		return len(a.Dst)
	case secHist:
		return len(a.Hist)
	case secDist:
		return len(a.Dist)
	}
	return 0
}

// putPlanPayload writes the planned section's payload in place.
func putPlanPayload(b []byte, off int, p respPlan, a *kernel.Args) int {
	switch p.tag {
	case secXs:
		return putInt64s(b, off, a.Xs)
	case secDst:
		return putInt64s(b, off, a.Dst)
	case secHist:
		return putInts(b, off, a.Hist)
	case secDist:
		return putInt32s(b, off, a.Dist)
	}
	return off
}

// AppendResponse encodes a one-shot response frame for a finished
// request: the kernel's output section plus the scalar section.
func AppendResponse(buf []byte, id uint64, k *kernel.Kernel, a *kernel.Args) []byte {
	p := planResponse(k, a)
	body := headerSize + sectionSize(32)
	if p.tag != 0 {
		body += sectionSize(p.payload)
	}
	base := len(buf)
	buf = ensure(buf, base+4+body)
	nativeOrder.PutUint32(buf[base:], uint32(body))
	b := buf[base+4:]
	putHeader(b, frameResponse, 0, id, 0)
	off := headerSize
	if p.tag != 0 {
		off = putSectionHdr(b, off, p.tag, 0, planCount(p, a))
		off = putPlanPayload(b, off, p, a)
	}
	off = putSectionHdr(b, off, secScalars, 0, 4)
	putScalars(b, off, a)
	return buf
}

// AppendStreamEnd encodes the closing frame of a streamed response:
// the output section's header with the streamed flag (geometry, no
// payload — the payload traveled in chunk frames) plus the scalars.
func AppendStreamEnd(buf []byte, id uint64, p respPlan, count int, a *kernel.Args) []byte {
	body := headerSize + sectionSize(0) + sectionSize(32)
	base := len(buf)
	buf = ensure(buf, base+4+body)
	nativeOrder.PutUint32(buf[base:], uint32(body))
	b := buf[base+4:]
	putHeader(b, frameEnd, 0, id, 0)
	off := putSectionHdr(b, headerSize, p.tag, secFlagStreamed, count)
	off = putSectionHdr(b, off, secScalars, 0, 4)
	putScalars(b, off, a)
	return buf
}

// AppendChunk encodes one streamed-payload chunk: raw section bytes
// at byte offset off within the section payload.
func AppendChunk(buf []byte, id uint64, off int, chunk []byte) []byte {
	body := headerSize + len(chunk)
	base := len(buf)
	buf = ensure(buf, base+4+body)
	nativeOrder.PutUint32(buf[base:], uint32(body))
	b := buf[base+4:]
	putHeader(b, frameChunk, 0, id, uint64(off))
	copy(b[headerSize:], chunk)
	return buf
}

// AppendError encodes an error frame: the serve sentinels travel as
// codes (so errors.Is works on the far side), everything else as code
// 4 plus the error text.
func AppendError(buf []byte, id uint64, code int, msg string) []byte {
	body := headerSize + len(msg)
	base := len(buf)
	buf = ensure(buf, base+4+body)
	nativeOrder.PutUint32(buf[base:], uint32(body))
	b := buf[base+4:]
	putHeader(b, frameError, 0, id, uint64(code))
	copy(b[headerSize:], msg)
	return buf
}

// --- decoding ---------------------------------------------------------

// Header is the decoded fixed-size frame header.
type Header struct {
	Type  byte
	Flags byte
	ID    uint64
	Aux   uint64
}

// DecodeHeader validates the fixed header of a frame body.
func DecodeHeader(body []byte) (Header, error) {
	if len(body) < headerSize {
		return Header{}, fmt.Errorf("%w: %d-byte body", ErrTruncated, len(body))
	}
	if body[0] != frameMagic {
		return Header{}, fmt.Errorf("%w: 0x%02x", ErrBadMagic, body[0])
	}
	if body[1] != frameVersion {
		return Header{}, fmt.Errorf("%w: %d", ErrBadVersion, body[1])
	}
	if s := nativeOrder.Uint16(body[4:6]); s != orderSentinel {
		return Header{}, fmt.Errorf("%w: 0x%04x", ErrBadOrder, s)
	}
	h := Header{
		Type:  body[2],
		Flags: body[3],
		ID:    nativeOrder.Uint64(body[8:16]),
		Aux:   nativeOrder.Uint64(body[16:24]),
	}
	if h.Type < frameRequest || h.Type > frameError {
		return Header{}, fmt.Errorf("%w: frame type %d", ErrBadFrame, h.Type)
	}
	return h, nil
}

// section is one decoded section: its tag, flags, element count and
// payload bytes (aliasing the frame body).
type section struct {
	tag, flags byte
	count      int
	payload    []byte
}

// nextSection decodes the section at body[off:], returning it and the
// offset of the following section. Every size is bounds-checked; a
// count whose payload would overflow the body (or an int) is rejected.
func nextSection(body []byte, off int) (section, int, error) {
	if off+sectionHdrSize > len(body) {
		return section{}, 0, fmt.Errorf("%w: section header at %d", ErrTruncated, off)
	}
	s := section{
		tag:   body[off],
		flags: body[off+1],
		count: int(nativeOrder.Uint32(body[off+4 : off+8])),
	}
	off += sectionHdrSize
	var elem int
	switch s.tag {
	case secXs, secDst, secHist, secDeltaAppend:
		elem = 8
	case secDist:
		elem = 4
	case secGraph:
		elem = 8 // per edge; plus an 8-byte (n, reserved) prologue
	case secDeltaEdges:
		elem = 8
	case secScalars:
		if s.count != 4 {
			return section{}, 0, fmt.Errorf("%w: scalar count %d", ErrBadFrame, s.count)
		}
		elem = 8
	default:
		return section{}, 0, fmt.Errorf("%w: section tag %d", ErrBadFrame, s.tag)
	}
	if s.count < 0 || s.count > math.MaxInt32 {
		return section{}, 0, fmt.Errorf("%w: section count %d", ErrBadFrame, s.count)
	}
	payload := 0
	if s.flags&secFlagStreamed == 0 {
		if s.count > (len(body)-off)/elem {
			return section{}, 0, fmt.Errorf("%w: section %d needs %d elems past end", ErrTruncated, s.tag, s.count)
		}
		payload = elem * s.count
		if s.tag == secGraph {
			payload += 8
			if off+payload > len(body) {
				return section{}, 0, fmt.Errorf("%w: graph section", ErrTruncated)
			}
		}
		s.payload = body[off : off+payload]
	}
	next := off + align8(payload)
	if next > len(body) {
		// The final section's padding may be implicit; clamp rather
		// than reject a frame whose last payload ends at the body end.
		next = len(body)
	}
	return s, next, nil
}

// asInt64s reinterprets an 8-aligned payload in place; misaligned
// payloads (impossible for slab-backed bodies, possible for ad-hoc
// callers) are copied.
func asInt64s(payload []byte, count int) []int64 {
	if count == 0 {
		return []int64{}
	}
	if aligned8(payload) {
		return unsafe.Slice((*int64)(unsafe.Pointer(unsafe.SliceData(payload))), count)
	}
	out := make([]int64, count)
	for i := range out {
		out[i] = int64(nativeOrder.Uint64(payload[8*i:]))
	}
	return out
}

func asInts(payload []byte, count int) []int {
	if count == 0 {
		return []int{}
	}
	if strconv.IntSize == 64 && aligned8(payload) {
		return unsafe.Slice((*int)(unsafe.Pointer(unsafe.SliceData(payload))), count)
	}
	out := make([]int, count)
	for i := range out {
		out[i] = int(int64(nativeOrder.Uint64(payload[8*i:])))
	}
	return out
}

func asInt32s(payload []byte, count int) []int32 {
	if count == 0 {
		return []int32{}
	}
	if aligned8(payload) {
		return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(payload))), count)
	}
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(nativeOrder.Uint32(payload[4*i:]))
	}
	return out
}

// decodeGraph rebuilds the CSR graph from a graph section. This is
// the one decode that allocates: CSR construction is inherently a
// copy, and the kernels that take graphs allocate anyway.
func decodeGraph(payload []byte) (*graph.Graph, error) {
	n := int(nativeOrder.Uint32(payload[0:4]))
	m := (len(payload) - 8) / 8
	if n < 0 || n > maxGraphNodes {
		// CSR construction allocates O(n) before it can validate a
		// single edge, so the node count is protocol-capped: a hostile
		// frame must not turn 4 header bytes into a gigabyte of deg[].
		return nil, fmt.Errorf("%w: graph n=%d exceeds %d", ErrBadFrame, n, maxGraphNodes)
	}
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			U: int(nativeOrder.Uint32(payload[8+8*i:])),
			V: int(nativeOrder.Uint32(payload[12+8*i:])),
		}
	}
	g, err := graph.Build(n, edges, false)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return g, nil
}

func decodeScalars(payload []byte, a *kernel.Args) {
	a.K = int(int64(nativeOrder.Uint64(payload[0:8])))
	a.Src = int(int64(nativeOrder.Uint64(payload[8:16])))
	a.Out = int64(nativeOrder.Uint64(payload[16:24]))
	a.Seed = nativeOrder.Uint64(payload[24:32])
}

// Request is a decoded request frame. Its Args slices alias the frame
// body: they are valid until the caller reuses the underlying slab.
type Request struct {
	ID      uint64
	Kernel  *kernel.Kernel
	Tenant  string
	Budget  time.Duration
	Args    kernel.Args
	Delta   kernel.Delta
	IsDelta bool
}

// Decoder decodes request frames. It interns tenant names so the
// strings handed to the serving layer do not alias the reusable slab
// (the server retains tenant names in its accounting maps; slab bytes
// are rewritten by the next frame). The zero value is not ready; use
// NewDecoder.
type Decoder struct {
	tenants map[string]string
}

// NewDecoder returns a Decoder with an empty intern table.
func NewDecoder() *Decoder { return &Decoder{tenants: make(map[string]string)} }

// intern returns a stable string for the byte key, allocating only
// the first time a name is seen (map lookup with a converted []byte
// key does not allocate).
func (d *Decoder) intern(b []byte) string {
	if s, ok := d.tenants[string(b)]; ok {
		return s
	}
	s := string(b)
	d.tenants[s] = s
	return s
}

// DecodeRequest decodes a request frame body in place. The returned
// Request's slices alias body; the kernel must finish with them
// before body is reused. Arbitrary input never panics: malformed
// frames return a typed error.
func (d *Decoder) DecodeRequest(body []byte) (Request, error) {
	h, err := DecodeHeader(body)
	if err != nil {
		return Request{}, err
	}
	if h.Type != frameRequest {
		return Request{}, fmt.Errorf("%w: frame type %d, want request", ErrBadFrame, h.Type)
	}
	if h.Aux > uint64(math.MaxInt64) {
		return Request{}, fmt.Errorf("%w: deadline budget overflow", ErrBadFrame)
	}
	req := Request{ID: h.ID, Budget: time.Duration(h.Aux), IsDelta: h.Flags&flagDelta != 0}
	off := headerSize
	if off >= len(body) {
		return Request{}, fmt.Errorf("%w: missing kernel name", ErrTruncated)
	}
	klen := int(body[off])
	off++
	if off+klen > len(body) {
		return Request{}, fmt.Errorf("%w: kernel name", ErrTruncated)
	}
	kname := body[off : off+klen]
	off += klen
	if off >= len(body) {
		return Request{}, fmt.Errorf("%w: missing tenant name", ErrTruncated)
	}
	tlen := int(body[off])
	off++
	if off+tlen > len(body) {
		return Request{}, fmt.Errorf("%w: tenant name", ErrTruncated)
	}
	req.Tenant = d.intern(body[off : off+tlen])
	off = align8(off + tlen)
	req.Kernel = lookupKernel(kname)
	if req.Kernel == nil {
		return Request{}, fmt.Errorf("%w: unknown kernel %q", ErrBadFrame, string(kname))
	}
	sawScalars := false
	for off < len(body) {
		s, next, err := nextSection(body, off)
		if err != nil {
			return Request{}, err
		}
		if s.flags&secFlagStreamed != 0 {
			return Request{}, fmt.Errorf("%w: streamed section in request", ErrBadFrame)
		}
		switch s.tag {
		case secXs:
			req.Args.Xs = asInt64s(s.payload, s.count)
		case secDst:
			req.Args.Dst = asInt64s(s.payload, s.count)
		case secHist:
			req.Args.Hist = asInts(s.payload, s.count)
		case secDist:
			req.Args.Dist = asInt32s(s.payload, s.count)
		case secGraph:
			if req.Args.G, err = decodeGraph(s.payload); err != nil {
				return Request{}, err
			}
		case secScalars:
			decodeScalars(s.payload, &req.Args)
			sawScalars = true
		case secDeltaAppend:
			req.Delta.Append = asInt64s(s.payload, s.count)
		case secDeltaEdges:
			edges := make([]graph.Edge, s.count)
			for i := range edges {
				edges[i] = graph.Edge{
					U: int(nativeOrder.Uint32(s.payload[8*i:])),
					V: int(nativeOrder.Uint32(s.payload[8*i+4:])),
				}
			}
			req.Delta.Edges = edges
		}
		off = next
	}
	if !sawScalars {
		return Request{}, fmt.Errorf("%w: missing scalar section", ErrBadFrame)
	}
	if h.Flags&flagBucket != 0 && len(req.Args.Hist) > 0 {
		req.Args.Bucket = CanonicalBucket(len(req.Args.Hist))
	}
	if req.IsDelta && req.Delta.Append == nil && req.Delta.Edges == nil {
		return Request{}, fmt.Errorf("%w: delta flag without delta sections", ErrBadFrame)
	}
	return req, nil
}

// lookupKernel resolves a kernel name from raw bytes without
// allocating: the registry snapshot is keyed by string, and a map
// index with a converted []byte key stays on the stack.
var kernelByName map[string]*kernel.Kernel

func lookupKernel(name []byte) *kernel.Kernel {
	if k, ok := kernelByName[string(name)]; ok {
		return k
	}
	// Late registrations (tests registering ad-hoc kernels) fall back
	// to the registry; cache the hit for next time.
	k := kernel.Lookup(string(name))
	if k != nil {
		m := make(map[string]*kernel.Kernel, len(kernelByName)+1)
		for n, v := range kernelByName {
			m[n] = v
		}
		m[k.Name] = k
		kernelByName = m
	}
	return k
}

func init() {
	m := make(map[string]*kernel.Kernel)
	for _, k := range kernel.All() {
		m[k.Name] = k
	}
	kernelByName = m
}

// DecodeResponseInto decodes a one-shot response body (frameResponse)
// into a, copying section payloads into a's slices — growing them
// only when the reply is larger than the caller's buffer (a delta
// append growing Xs, a kernel materializing Dist). Returns the header
// for id matching.
func DecodeResponseInto(body []byte, a *kernel.Args) (Header, error) {
	h, err := DecodeHeader(body)
	if err != nil {
		return h, err
	}
	if h.Type != frameResponse {
		return h, fmt.Errorf("%w: frame type %d, want response", ErrBadFrame, h.Type)
	}
	return h, decodeSectionsInto(body, headerSize, a, nil)
}

// decodeSectionsInto walks sections from off, merging into a. When
// streamed is non-nil, a section with the streamed flag takes its
// payload from streamed instead of the body.
func decodeSectionsInto(body []byte, off int, a *kernel.Args, streamed []byte) error {
	sawScalars := false
	for off < len(body) {
		s, next, err := nextSection(body, off)
		if err != nil {
			return err
		}
		payload := s.payload
		if s.flags&secFlagStreamed != 0 {
			if streamed == nil {
				return fmt.Errorf("%w: streamed section without chunks", ErrBadFrame)
			}
			var elem int
			switch s.tag {
			case secDist:
				elem = 4
			default:
				elem = 8
			}
			if s.count > len(streamed)/elem {
				return fmt.Errorf("%w: streamed payload %d bytes for %d elems", ErrTruncated, len(streamed), s.count)
			}
			payload = streamed[:elem*s.count]
		}
		switch s.tag {
		case secXs:
			a.Xs = copyInt64s(a.Xs, payload, s.count)
		case secDst:
			a.Dst = copyInt64s(a.Dst, payload, s.count)
		case secHist:
			a.Hist = copyInts(a.Hist, payload, s.count)
		case secDist:
			a.Dist = copyInt32s(a.Dist, payload, s.count)
		case secScalars:
			decodeScalars(payload, a)
			sawScalars = true
		default:
			return fmt.Errorf("%w: section tag %d in response", ErrBadFrame, s.tag)
		}
		off = next
	}
	if !sawScalars {
		return fmt.Errorf("%w: response missing scalar section", ErrBadFrame)
	}
	return nil
}

// copyInt64s copies count native-order int64s from payload into dst,
// reusing dst's storage when it fits.
func copyInt64s(dst []int64, payload []byte, count int) []int64 {
	if cap(dst) < count {
		dst = make([]int64, count)
	}
	dst = dst[:count]
	if count == 0 {
		return dst
	}
	copy(unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(dst))), 8*count), payload)
	return dst
}

func copyInts(dst []int, payload []byte, count int) []int {
	if cap(dst) < count {
		dst = make([]int, count)
	}
	dst = dst[:count]
	for i := range dst {
		dst[i] = int(int64(nativeOrder.Uint64(payload[8*i:])))
	}
	return dst
}

func copyInt32s(dst []int32, payload []byte, count int) []int32 {
	if cap(dst) < count {
		dst = make([]int32, count)
	}
	dst = dst[:count]
	if count == 0 {
		return dst
	}
	copy(unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(dst))), 4*count), payload)
	return dst
}

// DecodeError unpacks an error frame into the matching serve sentinel
// (wrapped, so errors.Is works) or a plain error from the carried
// text.
func DecodeError(h Header, body []byte) error {
	msg := ""
	if len(body) > headerSize {
		msg = string(body[headerSize:])
	}
	switch h.Aux {
	case codeRejected:
		return fmt.Errorf("wire: remote: %w", errRejected)
	case codeDeadline:
		return fmt.Errorf("wire: remote: %w", errDeadline)
	case codeClosed:
		return fmt.Errorf("wire: remote: %w", errClosed)
	}
	if msg == "" {
		msg = "unspecified remote error"
	}
	return fmt.Errorf("wire: remote: %s", msg)
}

package machine

import "math"

// LogGP (Alexandrov et al. 1995) extends LogP with a Gap-per-byte
// parameter for long messages: sending k words costs o + (k-1)·G + L + o
// instead of k short-message sends. The extension matters for exactly
// the kernels whose BSP h-relations are dominated by bulk payloads
// (matrix panels, bucket exchanges), and experiment E9's sample-sort
// misprediction is the empirical motivation: a single per-word gap
// cannot model both sparse and bulk traffic.
type LogGPParams struct {
	L  float64 // latency
	O  float64 // per-message overhead
	G  float64 // gap between short messages
	GG float64 // Gap per word within a long message (bandwidth term)
	P  int
}

// LongMessage returns the cost of one k-word message under LogGP.
func (p LogGPParams) LongMessage(k int) float64 {
	if k <= 0 {
		return 0
	}
	return p.O + float64(k-1)*p.GG + p.L + p.O
}

// ShortMessages returns the cost of sending k words as k separate
// messages (the LogP way) for comparison.
func (p LogGPParams) ShortMessages(k int) float64 {
	if k <= 0 {
		return 0
	}
	gap := math.Max(p.O, p.G)
	return float64(k-1)*gap + p.O + p.L + p.O
}

// BulkAdvantage returns the ratio ShortMessages(k)/LongMessage(k) — how
// much message aggregation buys at payload size k.
func (p LogGPParams) BulkAdvantage(k int) float64 {
	lm := p.LongMessage(k)
	if lm == 0 {
		return 0
	}
	return p.ShortMessages(k) / lm
}

// Scalability analysis helpers (Grama/Gupta/Kumar isoefficiency style).

// SerialFraction inverts Amdahl's law: given measured speedup s on p
// processors, return the implied serial fraction f = (p/s - 1)/(p - 1).
// Returns NaN for p < 2 or s <= 0.
func SerialFraction(speedup float64, p int) float64 {
	if p < 2 || speedup <= 0 {
		return math.NaN()
	}
	pf := float64(p)
	return (pf/speedup - 1) / (pf - 1)
}

// Overhead returns the total parallel overhead T_o = p·T_p − T_1 in the
// same units as the inputs; the quantity isoefficiency analysis tracks.
func Overhead(t1, tp float64, p int) float64 {
	return float64(p)*tp - t1
}

// IsoefficiencyN solves, by bisection, for the problem size n at which a
// kernel with work(n) sequential cost and overhead(n, p) parallel
// overhead sustains the target efficiency e on p processors:
//
//	E = T1 / (p·Tp) = work(n) / (work(n) + overhead(n, p))
//
// It returns the smallest n in [1, nMax] achieving efficiency >= e, or
// (nMax, false) if none does. work and overhead must be monotone in n
// with work growing strictly faster for the bisection to be meaningful.
func IsoefficiencyN(e float64, p int, nMax int, work, overhead func(n int, p int) float64) (int, bool) {
	eff := func(n int) float64 {
		w := work(n, p)
		o := overhead(n, p)
		if w+o == 0 {
			return 0
		}
		return w / (w + o)
	}
	if eff(nMax) < e {
		return nMax, false
	}
	lo, hi := 1, nMax
	for lo < hi {
		mid := lo + (hi-lo)/2
		if eff(mid) >= e {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}

// WeakScalingEfficiency returns t1/tp for a weak-scaling pair (problem
// size grown proportionally with p); 1.0 is perfect weak scaling.
func WeakScalingEfficiency(t1, tp float64) float64 {
	if tp == 0 {
		return 0
	}
	return t1 / tp
}

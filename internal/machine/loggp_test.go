package machine

import (
	"math"
	"testing"
)

func TestLongMessageCost(t *testing.T) {
	p := LogGPParams{L: 10, O: 2, G: 4, GG: 0.5, P: 8}
	if got := p.LongMessage(1); got != 2+10+2 {
		t.Fatalf("LongMessage(1) = %v", got)
	}
	if got := p.LongMessage(101); got != 2+100*0.5+10+2 {
		t.Fatalf("LongMessage(101) = %v", got)
	}
	if p.LongMessage(0) != 0 || p.ShortMessages(0) != 0 {
		t.Fatal("zero-length messages should be free")
	}
}

func TestBulkAdvantageGrowsWithSize(t *testing.T) {
	p := LogGPParams{L: 10, O: 2, G: 4, GG: 0.1, P: 8}
	a1 := p.BulkAdvantage(1)
	a100 := p.BulkAdvantage(100)
	a10000 := p.BulkAdvantage(10000)
	if !(a1 <= a100 && a100 < a10000) {
		t.Fatalf("bulk advantage not growing: %v %v %v", a1, a100, a10000)
	}
	// Asymptotically the ratio approaches gap/GG = 4/0.1 = 40.
	if math.Abs(a10000-40) > 2 {
		t.Fatalf("asymptotic advantage = %v, want ~40", a10000)
	}
}

// amdahl mirrors perf.Amdahl; duplicated to avoid a test-only import.
func amdahl(f float64, p int) float64 { return 1 / (f + (1-f)/float64(p)) }

func TestSerialFractionInvertsAmdahl(t *testing.T) {
	for _, f := range []float64{0, 0.1, 0.5, 0.9} {
		for _, p := range []int{2, 8, 64} {
			s := amdahl(f, p)
			got := SerialFraction(s, p)
			if math.Abs(got-f) > 1e-12 {
				t.Fatalf("f=%v p=%d: recovered %v", f, p, got)
			}
		}
	}
	if !math.IsNaN(SerialFraction(2, 1)) || !math.IsNaN(SerialFraction(0, 4)) {
		t.Fatal("invalid inputs must be NaN")
	}
}

func TestOverhead(t *testing.T) {
	// Perfect scaling: overhead 0.
	if got := Overhead(100, 25, 4); got != 0 {
		t.Fatalf("perfect overhead = %v", got)
	}
	// Some overhead.
	if got := Overhead(100, 30, 4); got != 20 {
		t.Fatalf("overhead = %v", got)
	}
}

func TestIsoefficiencyN(t *testing.T) {
	// Model: work = n, overhead = p·log2(p)·1000 (independent of n).
	// Efficiency e needs n >= e/(1-e) · overhead.
	work := func(n, p int) float64 { return float64(n) }
	over := func(n, p int) float64 { return float64(p) * math.Log2(float64(p)) * 1000 }
	n4, ok := IsoefficiencyN(0.8, 4, 1<<30, work, over)
	if !ok {
		t.Fatal("not achievable")
	}
	wantN4 := 0.8 / 0.2 * (4 * 2 * 1000) // 32000
	if math.Abs(float64(n4)-wantN4) > 2 {
		t.Fatalf("iso n at p=4: %d, want ~%v", n4, wantN4)
	}
	// Isoefficiency function grows with p.
	n16, _ := IsoefficiencyN(0.8, 16, 1<<30, work, over)
	if n16 <= n4 {
		t.Fatalf("isoefficiency not growing: n4=%d n16=%d", n4, n16)
	}
	// Unachievable target.
	if _, ok := IsoefficiencyN(0.999999, 4, 10, work, over); ok {
		t.Fatal("impossible efficiency reported achievable")
	}
}

func TestWeakScalingEfficiency(t *testing.T) {
	if WeakScalingEfficiency(10, 10) != 1 {
		t.Fatal("perfect weak scaling")
	}
	if WeakScalingEfficiency(10, 20) != 0.5 {
		t.Fatal("degraded weak scaling")
	}
	if WeakScalingEfficiency(10, 0) != 0 {
		t.Fatal("zero tp")
	}
}

package machine

import "testing"

// l1ish is a 32 KiB, 64-byte-line cache in word units.
var l1ish = CacheModel{Words: 4096, Line: 8}

func TestMatmulNaiveMissRegimes(t *testing.T) {
	// Small n: everything fits, one streaming pass per matrix.
	small := l1ish.MatmulNaiveMisses(32) // 3*32² words
	if small != 3*32*32/8 {
		t.Fatalf("small-n misses = %v", small)
	}
	// Large n: B re-streamed per row — cubic misses.
	big := l1ish.MatmulNaiveMisses(512)
	if big < 512*512*512/8 {
		t.Fatalf("large-n misses = %v, want cubic regime", big)
	}
}

func TestMatmulBlockedBeatsNaiveWhenBSpills(t *testing.T) {
	n := 512
	b := l1ish.BestBlock()
	adv := l1ish.BlockingSpeedupModel(n, b)
	if adv <= 1 {
		t.Fatalf("blocking advantage = %v, want > 1 when B spills", adv)
	}
	// In the fits-in-cache regime the model predicts no win.
	if l1ish.BlockingSpeedupModel(32, 16) > 1 {
		t.Fatal("model predicts blocking win when everything fits")
	}
}

func TestBlockedMissFormula(t *testing.T) {
	n, b := 256, 16
	want := 3.0 * 256 * 256 * 256 / (16 * 8)
	if got := l1ish.MatmulBlockedMisses(n, b); got != want {
		t.Fatalf("blocked misses = %v, want %v", got, want)
	}
	// Oversized tiles degrade to naive.
	if l1ish.MatmulBlockedMisses(256, 4000) != l1ish.MatmulNaiveMisses(256) {
		t.Fatal("oversized block did not fall back to naive")
	}
	if l1ish.MatmulBlockedMisses(256, 0) != l1ish.MatmulNaiveMisses(256) {
		t.Fatal("b=0 did not fall back")
	}
}

func TestBestBlockFitsThreeTiles(t *testing.T) {
	b := l1ish.BestBlock()
	if b%l1ish.Line != 0 {
		t.Fatalf("best block %d not line-aligned", b)
	}
	if 3*b*b > l1ish.Words {
		t.Fatalf("best block %d: three tiles spill", b)
	}
	next := b + l1ish.Line
	if 3*next*next <= l1ish.Words {
		t.Fatalf("best block %d not maximal", b)
	}
}

func TestBlockedMissesMonotoneInBlock(t *testing.T) {
	prev := l1ish.MatmulBlockedMisses(512, 8)
	for _, b := range []int{16, 24, 32} {
		cur := l1ish.MatmulBlockedMisses(512, b)
		if cur >= prev {
			t.Fatalf("misses not decreasing with block size at b=%d", b)
		}
		prev = cur
	}
}

func TestStencilSweepMisses(t *testing.T) {
	if got := l1ish.StencilSweepMisses(128); got != 2*128*128/8 {
		t.Fatalf("stencil misses = %v", got)
	}
}

package machine

// CacheModel is a single-level idealized cache (capacity in float64
// words, line length in words, full associativity, LRU) used to *derive*
// the blocked-matmul design rather than guess at it: the methodology
// requires that the blocking factor come from a model, with the
// measurement (experiment E7) confirming or refuting it.
type CacheModel struct {
	// Words is the cache capacity in 8-byte words.
	Words int
	// Line is the line length in words.
	Line int
}

// MatmulNaiveMisses estimates cache misses for the naive i-k-j triple
// loop on n×n matrices. Per (i, k) iteration the kernel streams row k of
// B (n/L misses when B no longer fits) and row i of C; row i of A is
// reused across k. Two regimes:
//
//   - B fits (n² + 2n ≤ cache): every matrix is loaded once, ≈ 3n²/L.
//   - B does not fit: B's row is evicted between i-iterations, so B is
//     re-streamed per i: ≈ (n³ + 2n²)/L.
func (c CacheModel) MatmulNaiveMisses(n int) float64 {
	nf := float64(n)
	lf := float64(c.Line)
	if n*n+2*n <= c.Words {
		return 3 * nf * nf / lf
	}
	return (nf*nf*nf + 2*nf*nf) / lf
}

// MatmulBlockedMisses estimates misses for b×b tiling: each of the
// (n/b)³ tile multiplications touches 3b² words, loaded once if three
// tiles fit (3b² ≤ cache):
//
//	misses ≈ (n/b)³ · 3b²/L = 3n³/(b·L).
//
// If the tiles do not fit the model degrades to the naive count.
func (c CacheModel) MatmulBlockedMisses(n, b int) float64 {
	if b <= 0 || 3*b*b > c.Words {
		return c.MatmulNaiveMisses(n)
	}
	if b > n {
		b = n
	}
	nf, bf, lf := float64(n), float64(b), float64(c.Line)
	return 3 * nf * nf * nf / (bf * lf)
}

// BestBlock returns the largest block size (a multiple of the line
// length) whose three tiles fit in cache — the model's prescription for
// the blocking factor, to be validated by E7's sweep.
func (c CacheModel) BestBlock() int {
	b := c.Line
	for 3*(b+c.Line)*(b+c.Line) <= c.Words {
		b += c.Line
	}
	return b
}

// BlockingSpeedupModel returns the predicted miss-ratio improvement of
// blocking with factor b over the naive loop (values > 1 mean blocking
// wins). In the regime where B fits in cache it returns <= 1: the model
// itself predicts blocking cannot help — the situation E7 measures on
// hosts with large last-level caches.
func (c CacheModel) BlockingSpeedupModel(n, b int) float64 {
	blocked := c.MatmulBlockedMisses(n, b)
	if blocked == 0 {
		return 0
	}
	return c.MatmulNaiveMisses(n) / blocked
}

// StencilSweepMisses estimates misses for one Jacobi sweep over an n×n
// grid: each sweep streams the read and write grids once, plus one extra
// row of reuse distance — ≈ 2n²/L + lower-order terms — establishing
// that the stencil is bandwidth-bound (arithmetic intensity 4 flops per
// 2 streamed words).
func (c CacheModel) StencilSweepMisses(n int) float64 {
	nf := float64(n)
	return 2 * nf * nf / float64(c.Line)
}

package machine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWorkDepthCompose(t *testing.T) {
	a := WorkDepth{Work: 10, Depth: 2}
	b := WorkDepth{Work: 6, Depth: 5}
	if s := a.Seq(b); s.Work != 16 || s.Depth != 7 {
		t.Fatalf("Seq = %+v", s)
	}
	if p := a.Par(b); p.Work != 16 || p.Depth != 5 {
		t.Fatalf("Par = %+v", p)
	}
}

func TestBrentBounds(t *testing.T) {
	wd := WorkDepth{Work: 1000, Depth: 10}
	if got := wd.Brent(1); got != 1010 {
		t.Fatalf("Brent(1) = %v", got)
	}
	if got := wd.Brent(0); got != wd.Brent(1) {
		t.Fatal("Brent must clamp p < 1")
	}
	// Monotone non-increasing in p, floored at depth.
	prev := math.Inf(1)
	for p := 1; p <= 1024; p *= 2 {
		cur := wd.Brent(p)
		if cur > prev {
			t.Fatalf("Brent not monotone at p=%d", p)
		}
		if cur < wd.Depth {
			t.Fatalf("Brent below depth at p=%d", p)
		}
		prev = cur
	}
}

func TestSpeedupSaturates(t *testing.T) {
	wd := ScanWD(1 << 20)
	s1 := wd.Speedup(1)
	s64 := wd.Speedup(64)
	sInf := wd.Work / wd.Depth
	if s64 <= s1 {
		t.Fatal("speedup should grow with p")
	}
	if wd.Speedup(1<<30) > sInf+1e-9 {
		t.Fatal("speedup exceeded W/D asymptote")
	}
}

func TestKernelWDShapes(t *testing.T) {
	// Work-inefficiency of pointer jumping: ListRank work / n grows with
	// n while Scan work / n is constant.
	r1 := ListRankWD(1<<10).Work / float64(1<<10)
	r2 := ListRankWD(1<<20).Work / float64(1<<20)
	if r2 <= r1 {
		t.Fatal("list ranking should be work-inefficient (n log n)")
	}
	s1 := ScanWD(1<<10).Work / float64(1<<10)
	s2 := ScanWD(1<<20).Work / float64(1<<20)
	if math.Abs(s1-s2) > 1e-9 {
		t.Fatal("scan should be linear work")
	}
	if MatmulWD(100).Work != 2e6 {
		t.Fatalf("MatmulWD(100).Work = %v", MatmulWD(100).Work)
	}
	if CCWD(10, 20).Work <= 0 || SortWD(1000).Depth <= 0 {
		t.Fatal("degenerate kernel costs")
	}
}

func TestBSPCost(t *testing.T) {
	p := BSPParams{P: 4, G: 2, L: 100}
	s := Superstep{W: 50, H: 10}
	if got := p.Cost(s); got != 50+2*10+100 {
		t.Fatalf("Cost = %v", got)
	}
	if got := p.TotalCost([]Superstep{s, s}); got != 2*170 {
		t.Fatalf("TotalCost = %v", got)
	}
}

func TestFitBSPRecoversParameters(t *testing.T) {
	trueG, trueL := 3.5, 250.0
	var steps []Superstep
	var times []float64
	for h := 1.0; h <= 64; h *= 2 {
		s := Superstep{W: 1000 + 10*h, H: h}
		steps = append(steps, s)
		times = append(times, s.W+trueG*s.H+trueL)
	}
	g, l, err := FitBSP(steps, times)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-trueG) > 1e-6 || math.Abs(l-trueL) > 1e-6 {
		t.Fatalf("fit = (%v, %v), want (%v, %v)", g, l, trueG, trueL)
	}
}

func TestFitBSPErrors(t *testing.T) {
	if _, _, err := FitBSP([]Superstep{{W: 1, H: 1}}, []float64{1}); err == nil {
		t.Fatal("underdetermined fit accepted")
	}
	same := []Superstep{{W: 1, H: 5}, {W: 2, H: 5}}
	if _, _, err := FitBSP(same, []float64{10, 20}); err == nil {
		t.Fatal("constant-h fit accepted")
	}
	if _, _, err := FitBSP(same, []float64{10}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestFitBSPClampsNegative(t *testing.T) {
	// Construct observations implying negative g; the fit must clamp.
	steps := []Superstep{{W: 0, H: 1}, {W: 0, H: 10}}
	times := []float64{100, 10}
	g, l, err := FitBSP(steps, times)
	if err != nil {
		t.Fatal(err)
	}
	if g < 0 || l < 0 {
		t.Fatalf("negative parameters not clamped: g=%v l=%v", g, l)
	}
}

func TestLogPPointToPoint(t *testing.T) {
	p := LogPParams{L: 10, O: 2, G: 4, P: 8}
	if got := p.PointToPoint(); got != 14 {
		t.Fatalf("PointToPoint = %v", got)
	}
}

func TestLogPBroadcastProperties(t *testing.T) {
	base := LogPParams{L: 10, O: 2, G: 4}
	prev := 0.0
	for np := 1; np <= 64; np *= 2 {
		p := base
		p.P = np
		cost := p.Broadcast()
		if np == 1 && cost != 0 {
			t.Fatalf("broadcast to self costs %v", cost)
		}
		if cost < prev {
			t.Fatalf("broadcast cost not monotone in P at %d", np)
		}
		prev = cost
	}
	// Broadcast over a tree must beat naive sequential sends for large P.
	p := base
	p.P = 64
	naive := float64(p.P-1)*math.Max(p.O, p.G) + p.O + p.L + p.O
	if p.Broadcast() >= naive {
		t.Fatalf("tree broadcast (%v) not better than naive (%v)", p.Broadcast(), naive)
	}
}

func TestLogPAllReduce(t *testing.T) {
	p := LogPParams{L: 10, O: 2, G: 4, P: 8}
	want := 2 * 3 * (10.0 + 4.0) // 2*log2(8)*(L+2o)
	if got := p.AllReduce(); got != want {
		t.Fatalf("AllReduce = %v, want %v", got, want)
	}
	p.P = 1
	if p.AllReduce() != 0 || p.Barrier() != 0 {
		t.Fatal("single-processor collectives should be free")
	}
}

func TestSeqParQuickProperties(t *testing.T) {
	f := func(w1, d1, w2, d2 uint16) bool {
		a := WorkDepth{Work: float64(w1), Depth: float64(d1)}
		b := WorkDepth{Work: float64(w2), Depth: float64(d2)}
		s, p := a.Seq(b), a.Par(b)
		// Parallel composition never slower than sequential in depth,
		// equal in work.
		return p.Depth <= s.Depth && p.Work == s.Work
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

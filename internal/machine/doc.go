// Package machine implements the abstract parallel machine models used to
// design and predict the performance of the case-study algorithms: PRAM
// work/depth (with Brent's scheduling bound), BSP (Valiant 1990), and
// LogP (Culler et al. 1993).
//
// In the algorithm-engineering loop, models serve two purposes:
//
//  1. Design time: choose between algorithms by comparing their model
//     costs before writing code (e.g. pointer jumping is work-inefficient
//     — Θ(n log n) work — so it can only win when P is large relative to
//     the log n factor).
//  2. Validation time: fit the model's machine parameters from
//     micro-benchmarks, predict each kernel's running time, and compare
//     against measurements. Agreement means the implementation has no
//     hidden performance bug; disagreement is a finding. Experiments E9
//     and E13 perform this validation.
//
// Layering: machine is a leaf modeling package; it feeds bsp (the
// simulated machine's cost accounting), core's calibration fits
// (Fit/Calibration), and adapt's cost priors via
// Controller.SetPrior.
package machine

package machine

import (
	"errors"
	"fmt"
	"math"
)

// WorkDepth is the PRAM-style cost of a computation: total operation
// count (work) and critical-path length (depth/span).
type WorkDepth struct {
	Work  float64
	Depth float64
}

// Seq composes two computations sequentially: work and depth both add.
func (a WorkDepth) Seq(b WorkDepth) WorkDepth {
	return WorkDepth{Work: a.Work + b.Work, Depth: a.Depth + b.Depth}
}

// Par composes two computations in parallel: work adds, depth is the max.
func (a WorkDepth) Par(b WorkDepth) WorkDepth {
	return WorkDepth{Work: a.Work + b.Work, Depth: math.Max(a.Depth, b.Depth)}
}

// Brent returns the classic scheduling bound on execution time with p
// processors, in abstract operation units: T_p <= W/p + D.
func (a WorkDepth) Brent(p int) float64 {
	if p < 1 {
		p = 1
	}
	return a.Work/float64(p) + a.Depth
}

// Speedup returns the model speedup W / T_p (sequential work divided by
// Brent's bound).
func (a WorkDepth) Speedup(p int) float64 {
	t := a.Brent(p)
	if t == 0 {
		return 0
	}
	return a.Work / t
}

// Analytic work/depth for the suite's kernels, parameterized by input
// size. Constants are unit operations; they are calibrated to wall-clock
// via a per-kernel ns/op factor at fit time.

// ScanWD is the blocked two-sweep parallel scan: 2n work, 2n/p + p depth
// in the blocked realization; in pure PRAM terms depth is O(log n), but
// we model the implemented algorithm, not the idealized one.
func ScanWD(n int) WorkDepth {
	return WorkDepth{Work: 2 * float64(n), Depth: 2 * math.Log2(math.Max(2, float64(n)))}
}

// SortWD models comparison sample sort: n log n work, log^2 n depth.
func SortWD(n int) WorkDepth {
	lg := math.Log2(math.Max(2, float64(n)))
	return WorkDepth{Work: float64(n) * lg, Depth: lg * lg}
}

// ListRankWD models pointer jumping: n log n work (the work-inefficiency
// that experiment E4 exhibits), log n depth.
func ListRankWD(n int) WorkDepth {
	lg := math.Log2(math.Max(2, float64(n)))
	return WorkDepth{Work: float64(n) * lg, Depth: lg}
}

// MatmulWD models dense n^3 multiplication with log n reduction depth.
func MatmulWD(n int) WorkDepth {
	f := float64(n)
	return WorkDepth{Work: 2 * f * f * f, Depth: math.Log2(math.Max(2, f))}
}

// CCWD models hook-and-contract connectivity: (n+m) log n work, log^2 n
// depth.
func CCWD(n, m int) WorkDepth {
	lg := math.Log2(math.Max(2, float64(n)))
	return WorkDepth{Work: float64(n+m) * lg, Depth: lg * lg}
}

// BSPParams are the Bulk-Synchronous Parallel machine parameters.
// Costs are expressed in the same unit as w (per-operation time); g is
// the per-word communication gap and l the barrier latency, both in
// operation units.
type BSPParams struct {
	P int     // processors
	G float64 // gap: time per word of h-relation, in op units
	L float64 // barrier synchronization latency, in op units
}

// Superstep is one BSP superstep's observed cost drivers: the maximum
// local computation (operations) and the maximum h-relation (words sent
// or received by any processor).
type Superstep struct {
	W float64 // max local work (operations)
	H float64 // max words communicated by one processor
}

// Cost returns the BSP cost of one superstep: w + g·h + l.
func (p BSPParams) Cost(s Superstep) float64 { return s.W + p.G*s.H + p.L }

// TotalCost sums the cost over a superstep trace.
func (p BSPParams) TotalCost(steps []Superstep) float64 {
	t := 0.0
	for _, s := range steps {
		t += p.Cost(s)
	}
	return t
}

// ErrFitUnderdetermined reports too few observations to fit parameters.
var ErrFitUnderdetermined = errors.New("machine: need at least 2 distinct observations to fit")

// FitBSP estimates (g, l) by least squares from observed superstep costs:
// given per-superstep (w, h, measured time), solve time - w ≈ g·h + l.
// Negative estimates are clamped to zero (measurement noise on a machine
// with cheap communication).
func FitBSP(steps []Superstep, times []float64) (g, l float64, err error) {
	if len(steps) != len(times) || len(steps) < 2 {
		return 0, 0, ErrFitUnderdetermined
	}
	// Least squares of y = g*h + l where y = time - w.
	var sh, sy, shh, shy float64
	n := float64(len(steps))
	distinct := false
	for i, s := range steps {
		y := times[i] - s.W
		sh += s.H
		sy += y
		shh += s.H * s.H
		shy += s.H * y
		if s.H != steps[0].H {
			distinct = true
		}
	}
	if !distinct {
		return 0, 0, fmt.Errorf("%w: all h-relations equal", ErrFitUnderdetermined)
	}
	den := n*shh - sh*sh
	g = (n*shy - sh*sy) / den
	l = (sy - g*sh) / n
	if g < 0 {
		g = 0
	}
	if l < 0 {
		l = 0
	}
	return g, l, nil
}

// LogPParams are the LogP machine parameters (all in operation units):
// L latency, O per-message overhead, G gap between messages, P procs.
type LogPParams struct {
	L float64
	O float64
	G float64
	P int
}

// PointToPoint returns the LogP cost of one small message: 2o + L.
func (p LogPParams) PointToPoint() float64 { return 2*p.O + p.L }

// Broadcast returns the cost of an optimal single-item broadcast to P-1
// receivers under LogP. We build the optimal broadcast tree greedily:
// each informed processor repeatedly sends to new processors, each send
// occupying the sender for max(o, g) and delivering after o+L+o.
func (p LogPParams) Broadcast() float64 {
	if p.P <= 1 {
		return 0
	}
	// Event-driven simulation of the greedy optimal broadcast tree.
	gap := math.Max(p.O, p.G)
	ready := []float64{0} // times at which informed procs can next send
	informed := 1
	last := 0.0
	for informed < p.P {
		// Pick the sender that can send earliest.
		best := 0
		for i, t := range ready {
			if t < ready[best] {
				best = i
			}
		}
		sendAt := ready[best]
		arrive := sendAt + p.O + p.L + p.O
		ready[best] = sendAt + gap
		ready = append(ready, arrive+math.Max(0, gap-p.O))
		informed++
		if arrive > last {
			last = arrive
		}
	}
	return last
}

// AllReduce returns the LogP cost of a reduction + broadcast over a
// binomial tree: 2·ceil(log2 P)·(L + 2o).
func (p LogPParams) AllReduce() float64 {
	if p.P <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(p.P)))
	return 2 * rounds * (p.L + 2*p.O)
}

// Barrier approximates a barrier as an all-reduce of an empty value.
func (p LogPParams) Barrier() float64 { return p.AllReduce() }

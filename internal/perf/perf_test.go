package perf

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Stddev = %v", s.Stddev)
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Median != 2.5 {
		t.Fatalf("Median = %v", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty Summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Median != 7 || s.Stddev != 0 || s.CI95 != 0 {
		t.Fatalf("single Summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); g != 2 {
		t.Fatalf("GeoMean = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("GeoMean(nil) = %v", g)
	}
	if !math.IsNaN(GeoMean([]float64{1, 0})) {
		t.Fatal("GeoMean with zero should be NaN")
	}
}

func TestSpeedupEfficiency(t *testing.T) {
	if Speedup(10, 2) != 5 {
		t.Fatal("Speedup")
	}
	if Efficiency(10, 2, 5) != 1 {
		t.Fatal("Efficiency")
	}
	if Speedup(10, 0) != 0 || Efficiency(1, 1, 0) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestKarpFlatt(t *testing.T) {
	// Perfect speedup => serial fraction 0.
	if e := KarpFlatt(4, 4); math.Abs(e) > 1e-12 {
		t.Fatalf("KarpFlatt(4,4) = %v", e)
	}
	// No speedup at all => serial fraction 1.
	if e := KarpFlatt(1, 8); math.Abs(e-1) > 1e-12 {
		t.Fatalf("KarpFlatt(1,8) = %v", e)
	}
	if !math.IsNaN(KarpFlatt(2, 1)) || !math.IsNaN(KarpFlatt(0, 4)) {
		t.Fatal("invalid KarpFlatt inputs must be NaN")
	}
}

func TestAmdahlGustafson(t *testing.T) {
	// f=0: linear speedup.
	if Amdahl(0, 16) != 16 {
		t.Fatal("Amdahl(0,16)")
	}
	// f=1: no speedup.
	if Amdahl(1, 16) != 1 {
		t.Fatal("Amdahl(1,16)")
	}
	// Gustafson with f=0 is linear.
	if Gustafson(0, 16) != 16 {
		t.Fatal("Gustafson(0,16)")
	}
	if Amdahl(0.5, 0) != 0 {
		t.Fatal("Amdahl p<1")
	}
}

func TestAmdahlMonotoneQuick(t *testing.T) {
	f := func(fr float64, p uint8) bool {
		fr = math.Abs(fr)
		fr -= math.Floor(fr) // into [0,1)
		pp := int(p%64) + 1
		s := Amdahl(fr, pp)
		return s >= 1-1e-12 && s <= float64(pp)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputFormat(t *testing.T) {
	if Throughput(100, 2) != 50 {
		t.Fatal("Throughput")
	}
	if Throughput(100, 0) != 0 {
		t.Fatal("Throughput zero time")
	}
	for _, tc := range []struct {
		sec  float64
		want string
	}{
		{1.5, "1.5s"},
		{0.0015, "1.5ms"},
		{0.0000015, "1.5µs"},
		{0.0000000015, "1.5ns"},
		{1.5e-10, "0.15ns"}, // sub-ns keeps the ns unit, no underflow
		{0, "0ns"},
		{-0.0015, "-1.5ms"}, // sign preserved, unit from the magnitude
		{-2, "-2s"},
	} {
		if got := FormatDuration(tc.sec); got != tc.want {
			t.Fatalf("FormatDuration(%v) = %q, want %q", tc.sec, got, tc.want)
		}
	}
}

// TestPercentileNearestRank pins the nearest-rank contract that the
// latency tables and loadgen reports lean on: exact boundary behavior
// at q=0/100, the textbook ranks in between, and no mutation or
// sorting of the caller's sample.
func TestPercentileNearestRank(t *testing.T) {
	if p := Percentile(nil, 99); p != 0 {
		t.Fatalf("empty Percentile = %v", p)
	}
	if p := Percentile([]float64{7}, 50); p != 7 {
		t.Fatalf("single Percentile = %v", p)
	}
	xs := []float64{40, 10, 30, 20} // unsorted on purpose
	for _, tc := range []struct {
		q, want float64
	}{
		{0, 10},   // q<=0 is the minimum
		{-5, 10},  // negative clamps to the minimum too
		{25, 10},  // ceil(.25*4)=1 -> first
		{50, 20},  // ceil(.50*4)=2 -> second
		{75, 30},  // ceil(.75*4)=3 -> third
		{99, 40},  // ceil(.99*4)=4 -> last
		{100, 40}, // q=100 is the maximum
		{150, 40}, // overshoot clamps to the maximum
	} {
		if got := Percentile(xs, tc.q); got != tc.want {
			t.Fatalf("Percentile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if xs[0] != 40 || xs[1] != 10 || xs[2] != 30 || xs[3] != 20 {
		t.Fatalf("Percentile mutated its input: %v", xs)
	}
}

// TestSummarizeSingleCI pins that a one-sample summary reports zero
// spread rather than NaN — the divide-by-(n-1) edge.
func TestSummarizeSingleCI(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Stddev != 0 || s.CI95 != 0 {
		t.Fatalf("single-sample Summary = %+v", s)
	}
	if math.IsNaN(s.Stddev) || math.IsNaN(s.CI95) {
		t.Fatal("single-sample spread must be 0, not NaN")
	}
}

func TestRunnerRepsAndWarmup(t *testing.T) {
	r := Runner{Warmup: 2, Reps: 5}
	var calls, warmups int
	s := r.Time(func(rep int) {
		calls++
		if rep < 0 {
			warmups++
		}
	})
	if calls != 7 || warmups != 2 || s.N != 5 {
		t.Fatalf("calls=%d warmups=%d N=%d", calls, warmups, s.N)
	}
}

func TestRunnerDefaults(t *testing.T) {
	var r Runner
	calls := 0
	s := r.Time(func(rep int) { calls++ })
	if calls != 4 || s.N != 3 {
		t.Fatalf("default runner: calls=%d N=%d", calls, s.N)
	}
}

func TestMeasureLabels(t *testing.T) {
	r := Runner{Warmup: 1, Reps: 1}
	m := r.Measure(L("kernel", "scan", "p", "4"), func(rep int) {})
	if m.Labels["kernel"] != "scan" || m.Labels["p"] != "4" {
		t.Fatalf("labels = %v", m.Labels)
	}
	if m.Extra == nil {
		t.Fatal("Extra not initialized")
	}
}

func TestLPanicsOnOddArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	L("just-one")
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Tab X", "name", "value")
	tb.AddRowf("scan", 3.14159)
	tb.AddRowf("sort", 42)
	out := tb.String()
	if !strings.Contains(out, "Tab X") || !strings.Contains(out, "3.142") || !strings.Contains(out, "42") {
		t.Fatalf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", `q"z`)
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"q\"\"z\"\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	out := tb.String()
	if !strings.Contains(out, "only") {
		t.Fatal("row lost")
	}
}

package perf

import (
	"fmt"
	"time"
)

// Measurement is one timed execution of a kernel under one configuration.
type Measurement struct {
	// Labels identify the configuration (kernel name, input, P, ...).
	Labels map[string]string
	// Seconds is the summarized wall-clock time over repetitions.
	Seconds Summary
	// Extra carries derived numeric columns (speedup, model cost, ...).
	Extra map[string]float64
}

// Runner executes timed experiments with warmup and repetitions. The
// zero value uses 1 warmup run and 3 measured repetitions.
type Runner struct {
	Warmup int
	Reps   int
}

func (r Runner) warmup() int {
	if r.Warmup > 0 {
		return r.Warmup
	}
	return 1
}

func (r Runner) reps() int {
	if r.Reps > 0 {
		return r.Reps
	}
	return 3
}

// Time measures fn: warmup runs are discarded, then Reps runs are timed.
// fn receives the repetition index (warmups get negative indices) so it
// can vary seeds if desired while keeping run 0 deterministic.
func (r Runner) Time(fn func(rep int)) Summary {
	for w := 0; w < r.warmup(); w++ {
		fn(-1 - w)
	}
	times := make([]float64, r.reps())
	for i := range times {
		start := time.Now()
		fn(i)
		times[i] = time.Since(start).Seconds()
	}
	return Summarize(times)
}

// Measure runs fn like Time and packages the result with labels.
func (r Runner) Measure(labels map[string]string, fn func(rep int)) Measurement {
	return Measurement{
		Labels:  labels,
		Seconds: r.Time(fn),
		Extra:   map[string]float64{},
	}
}

// L is a convenience constructor for label maps:
// perf.L("kernel", "scan", "n", "1e6").
func L(kv ...string) map[string]string {
	if len(kv)%2 != 0 {
		panic("perf: L requires an even number of arguments")
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

// Itoa renders an int for labels without importing strconv everywhere.
func Itoa(v int) string { return fmt.Sprintf("%d", v) }

// Package perf is the experiment harness: it runs measured experiments
// over parameter sweeps with warmup and repetition, computes the summary
// statistics the methodology prescribes (median and mean with dispersion,
// geometric means for ratio aggregation, speedup/efficiency/Karp–Flatt
// metrics), and renders results as aligned text tables and CSV.
//
// Layering: perf is a leaf measurement package; it feeds core's
// experiment tables, cmd/parbench (rendering, CSV, the -serve
// latency percentiles) and cmd/parstudy.
package perf

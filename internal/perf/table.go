package perf

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of string cells and renders them as an aligned
// monospaced table (the format the tools print) or CSV (for downstream
// plotting). Rows are rendered in insertion order.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: strings pass through,
// float64 are rendered %.4g, ints %d, everything else %v.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.4g", v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the aligned text form to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string (for tests and logs).
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// RenderCSV writes the table as RFC-4180-ish CSV (quoting cells that
// contain commas or quotes).
func (t *Table) RenderCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	var b strings.Builder
	cells := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		cells[i] = esc(h)
	}
	b.WriteString(strings.Join(cells, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		for i, c := range row {
			cells[i] = esc(c)
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

package perf

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the q-th percentile (q in [0,100]) of xs by the
// nearest-rank method on a sorted copy, or 0 for an empty sample. It
// is the latency-percentile helper behind the request-serving stats
// lines (core experiment E23, cmd/parbench -serve).
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(q/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Summary holds descriptive statistics of a sample of measurements.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	Min    float64
	Max    float64
	Stddev float64
	// CI95 is the half-width of the 95% confidence interval of the mean
	// under the normal approximation.
	CI95 float64
}

// Summarize computes descriptive statistics; it returns a zero Summary
// for an empty sample.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if n > 1 {
		s.Stddev = math.Sqrt(sq / float64(n-1))
		s.CI95 = 1.96 * s.Stddev / math.Sqrt(float64(n))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return s
}

// GeoMean returns the geometric mean of strictly positive values — the
// correct aggregate for running-time *ratios* across heterogeneous
// workloads (an arithmetic mean of ratios over-weights slow instances).
// It returns 0 for an empty input and NaN if any value is non-positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Speedup is T1/Tp for a strong-scaling measurement.
func Speedup(t1, tp float64) float64 {
	if tp == 0 {
		return 0
	}
	return t1 / tp
}

// Efficiency is Speedup/p, the fraction of linear speedup achieved.
func Efficiency(t1, tp float64, p int) float64 {
	if p <= 0 {
		return 0
	}
	return Speedup(t1, tp) / float64(p)
}

// KarpFlatt computes the experimentally determined serial fraction
// e = (1/s - 1/p) / (1 - 1/p) from speedup s on p processors (Karp &
// Flatt 1990). A rising e over p diagnoses growing parallel overhead, a
// constant e diagnoses an inherently serial fraction — the methodology's
// standard differential diagnosis for poor scaling. Returns NaN for p<2
// or s<=0.
func KarpFlatt(speedup float64, p int) float64 {
	if p < 2 || speedup <= 0 {
		return math.NaN()
	}
	pf := float64(p)
	return (1/speedup - 1/pf) / (1 - 1/pf)
}

// Amdahl predicts speedup on p processors given serial fraction f:
// 1 / (f + (1-f)/p). Used to overlay model curves on measured scaling.
func Amdahl(serialFraction float64, p int) float64 {
	if p < 1 {
		return 0
	}
	return 1 / (serialFraction + (1-serialFraction)/float64(p))
}

// Gustafson predicts scaled speedup p + (1-p)·f for weak scaling.
func Gustafson(serialFraction float64, p int) float64 {
	pf := float64(p)
	return pf + (1-pf)*serialFraction
}

// Throughput converts (items, seconds) to items/second (0 when seconds
// is 0).
func Throughput(items int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(items) / seconds
}

// FormatDuration renders seconds compactly for tables (e.g. "1.23ms").
// Negative values keep their sign with the magnitude's unit — they show
// up when a corrected latency is differenced against an uncorrected
// one, and a raw "-1.5e+06µs" would garble the table.
func FormatDuration(seconds float64) string {
	if seconds < 0 {
		return "-" + FormatDuration(-seconds)
	}
	switch {
	case seconds >= 1:
		return fmt.Sprintf("%.3gs", seconds)
	case seconds >= 1e-3:
		return fmt.Sprintf("%.3gms", seconds*1e3)
	case seconds >= 1e-6:
		return fmt.Sprintf("%.3gµs", seconds*1e6)
	default:
		return fmt.Sprintf("%.3gns", seconds*1e9)
	}
}

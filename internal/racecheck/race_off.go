//go:build !race

// Package racecheck reports whether the race detector is on, so
// allocation-regression tests can skip themselves: race
// instrumentation allocates, which would fail every AllocsPerRun
// assertion spuriously.
package racecheck

// Enabled reports whether the binary was built with -race.
const Enabled = false

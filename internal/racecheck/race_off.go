//go:build !race

package racecheck

// Enabled reports whether the binary was built with -race.
const Enabled = false

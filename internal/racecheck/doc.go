// Package racecheck reports whether the race detector is on, so
// allocation-regression tests can skip themselves: race
// instrumentation allocates, which would fail every AllocsPerRun
// assertion spuriously.
//
// Layering: racecheck is a leaf build-info package; it feeds the
// allocation-regression tests in par, psort, pipeline and exec,
// which skip themselves under -race.
package racecheck

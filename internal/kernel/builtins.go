package kernel

import (
	"fmt"
	"math/bits"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pgraph"
	"repro/internal/pipeline"
	"repro/internal/psel"
	"repro/internal/psort"
	"repro/internal/rng"
	"repro/internal/seq"
)

// The built-in kernel roster: the six request types the serving
// runtime has offered since PR 5, re-declared as registrations. The
// sort kernel is the multi-variant showcase — sample sort (the
// comparison-sort incumbent), LSD radix sort and counting sort enter
// the variant lattice and the adaptive runtime picks per feature
// class. GUPS lives in its own file (gups.go) as the one-registration
// proof.

// eqXs compares the primary slices elementwise.
func eqXs(got, want *Args) error {
	if len(got.Xs) != len(want.Xs) {
		return fmt.Errorf("Xs length %d != %d", len(got.Xs), len(want.Xs))
	}
	for i := range got.Xs {
		if got.Xs[i] != want.Xs[i] {
			return fmt.Errorf("Xs[%d] = %d, want %d", i, got.Xs[i], want.Xs[i])
		}
	}
	return nil
}

// shuffleXs is the shared permutation mutation.
func shuffleXs(a *Args, r *rng.Rand) {
	r.Shuffle(len(a.Xs), func(i, j int) { a.Xs[i], a.Xs[j] = a.Xs[j], a.Xs[i] })
}

// translationDelta is the constant the translation relations add.
const translationDelta = 7

// sortWidthBuckets, sortSizeBuckets and the sorted bit pack the sort
// kernel's dispatch feature. Key width is what makes counting sort
// (and degenerate-pass radix) win; size separates cache regimes; the
// sortedness bit separates inputs where a comparison sort's branch
// predictability beats radix's fixed passes.
func sortFeature(a *Args) int {
	xs := a.Xs
	n := len(xs)
	if n == 0 {
		return 0
	}
	min, max := xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < min {
			min = v
		} else if v > max {
			max = v
		}
	}
	width := bits.Len64(uint64(max) - uint64(min))
	wb := 3
	switch {
	case width <= 8:
		wb = 0
	case width <= 16:
		wb = 1
	case width <= 32:
		wb = 2
	}
	sb := 3
	switch {
	case n < 1<<12:
		sb = 0
	case n < 1<<16:
		sb = 1
	case n < 1<<20:
		sb = 2
	}
	// Sortedness probe: adjacent-pair inversions at ~64 sampled
	// positions. Nearly-sorted data inverts rarely; random data
	// inverts half the time.
	step := n/64 + 1
	inv, pairs := 0, 0
	for i := step; i < n; i += step {
		pairs++
		if xs[i-1] > xs[i] {
			inv++
		}
	}
	sorted := 0
	if pairs > 0 && inv*8 < pairs {
		sorted = 1
	}
	return (wb*4+sb)*2 + sorted
}

// sortDistributions is the input-shape rotation Gen("sort") cycles
// through by seed; odd seeds additionally mask keys to 16 bits so the
// narrow-key regime is always covered.
var sortDistributions = []gen.Distribution{gen.Uniform, gen.NearlySorted, gen.Reversed, gen.FewUnique}

func genSort(n int, seed uint64) *Args {
	xs := gen.Ints(n, sortDistributions[seed%uint64(len(sortDistributions))], seed)
	if seed%2 == 1 {
		for i := range xs {
			xs[i] &= 0xFFFF
		}
	}
	return &Args{Xs: xs}
}

// runSum is the sum adapter. The explicit serial loop at Procs 1 is
// what keeps the serve batch slot allocation-free: par.Sum builds
// reduce closures that escape into par.Reduce, which costs heap even
// when the cutoff sends the whole range down the sequential path.
func runSum(a *Args, o par.Options) {
	if o.Procs == 1 {
		var acc int64
		for _, v := range a.Xs {
			acc += v
		}
		a.Out = acc
		return
	}
	a.Out = par.Sum(a.Xs, o)
}

func streamSort(a *Args, opts par.Options) error {
	// Safe to write the sorted stream back into Xs: the Sort stage is
	// blocking, so the source has fully drained Xs before the sink
	// receives its first chunk.
	off := 0
	p := pipeline.New(pipeline.Config{Opts: opts}).
		FromSlice(a.Xs).
		Sort().
		ToFunc(func(buf []int64) error {
			off += copy(a.Xs[off:], buf)
			return nil
		})
	return p.Run()
}

func init() {
	Register(Kernel{
		Name:  "sort",
		Title: "sort Xs ascending in place",
		Variants: []Variant{
			{Name: "sample", Run: func(a *Args, o par.Options) { psort.SampleSort(a.Xs, o) }},
			{Name: "radix", Run: func(a *Args, o par.Options) { psort.RadixSort(a.Xs, o) }},
			{Name: "counting", Run: func(a *Args, o par.Options) { psort.CountingSort(a.Xs, o) }},
		},
		Serial:  func(a *Args) { seq.Quicksort(a.Xs) },
		Gen:     genSort,
		Check:   eqXs,
		Feature: sortFeature,
		Stream:  streamSort,
		Delta:   sortDelta,
		Cache:   &CacheSpec{Out: OutXs},
		Meta: []MetaRelation{
			{
				Name:   "permutation",
				Mutate: shuffleXs,
				Relate: eqXs,
			},
			{
				Name: "translation",
				Mutate: func(a *Args, _ *rng.Rand) {
					for i := range a.Xs {
						a.Xs[i] += translationDelta
					}
				},
				Relate: func(base, mut *Args) error {
					for i := range base.Xs {
						if mut.Xs[i] != base.Xs[i]+translationDelta {
							return fmt.Errorf("Xs[%d] = %d, want %d", i, mut.Xs[i], base.Xs[i]+translationDelta)
						}
					}
					return nil
				},
			},
		},
	})

	Register(Kernel{
		Name:  "select",
		Title: "K-th smallest of Xs into Out (Xs unmodified)",
		Variants: []Variant{
			{Name: "quickselect", Run: func(a *Args, o par.Options) { a.Out = psel.Select(a.Xs, a.K, o) }},
		},
		Serial: func(a *Args) { a.Out = psel.SelectSeq(a.Xs, a.K) },
		Validate: func(a *Args) error {
			if a.K < 0 || a.K >= len(a.Xs) {
				return fmt.Errorf("kernel: select rank %d out of range [0,%d)", a.K, len(a.Xs))
			}
			return nil
		},
		Gen: func(n int, seed uint64) *Args {
			if n < 1 {
				n = 1
			}
			xs := gen.Ints(n, gen.Uniform, seed)
			return &Args{Xs: xs, K: int(seed) % n}
		},
		Check: func(got, want *Args) error {
			if got.Out != want.Out {
				return fmt.Errorf("Out = %d, want %d", got.Out, want.Out)
			}
			return nil
		},
		Cache: &CacheSpec{Out: OutScalar},
		Meta: []MetaRelation{
			{
				Name:   "permutation",
				Mutate: shuffleXs,
				Relate: func(base, mut *Args) error {
					if base.Out != mut.Out {
						return fmt.Errorf("Out = %d after permutation, want %d", mut.Out, base.Out)
					}
					return nil
				},
			},
		},
	})

	Register(Kernel{
		Name:  "histogram",
		Title: "count Bucket(x) occurrences over Xs into Hist",
		Variants: []Variant{
			{Name: "par", Run: func(a *Args, o par.Options) { par.HistogramInto(a.Hist, a.Xs, o, a.Bucket) }},
		},
		Serial: func(a *Args) {
			clear(a.Hist)
			for _, v := range a.Xs {
				a.Hist[a.Bucket(v)]++
			}
		},
		Validate: func(a *Args) error {
			if a.Bucket == nil {
				return fmt.Errorf("kernel: histogram with nil bucket function")
			}
			if len(a.Hist) == 0 && len(a.Xs) > 0 {
				return fmt.Errorf("kernel: histogram with no buckets")
			}
			return nil
		},
		Gen: func(n int, seed uint64) *Args {
			return &Args{
				Xs:     gen.Ints(n, gen.Zipf, seed),
				Hist:   make([]int, 256),
				Bucket: func(v int64) int { return int(uint64(v) & 0xFF) },
			}
		},
		Check: func(got, want *Args) error {
			if len(got.Hist) != len(want.Hist) {
				return fmt.Errorf("Hist length %d != %d", len(got.Hist), len(want.Hist))
			}
			for i := range got.Hist {
				if got.Hist[i] != want.Hist[i] {
					return fmt.Errorf("Hist[%d] = %d, want %d", i, got.Hist[i], want.Hist[i])
				}
			}
			return nil
		},
		// No CacheSpec: the bucket function cannot be fingerprinted.
		// The mergeable-summary property still gives it a delta path.
		Delta: histogramDelta,
		Meta: []MetaRelation{
			{
				Name:   "permutation",
				Mutate: shuffleXs,
				Relate: func(base, mut *Args) error {
					for i := range base.Hist {
						if base.Hist[i] != mut.Hist[i] {
							return fmt.Errorf("Hist[%d] = %d after permutation, want %d", i, mut.Hist[i], base.Hist[i])
						}
					}
					return nil
				},
			},
		},
	})

	Register(Kernel{
		Name:  "scan",
		Title: "inclusive prefix sums of Xs into Dst",
		Variants: []Variant{
			{Name: "par", Run: func(a *Args, o par.Options) {
				par.ScanInclusive(a.Dst, a.Xs, o, 0, func(x, y int64) int64 { return x + y })
			}},
		},
		Serial: func(a *Args) { seq.Scan(a.Dst, a.Xs) },
		Validate: func(a *Args) error {
			if len(a.Dst) != len(a.Xs) {
				return fmt.Errorf("kernel: scan dst length %d != input length %d", len(a.Dst), len(a.Xs))
			}
			return nil
		},
		Gen: func(n int, seed uint64) *Args {
			return &Args{Xs: gen.Ints(n, gen.Uniform, seed), Dst: make([]int64, n)}
		},
		Check: func(got, want *Args) error {
			for i := range got.Dst {
				if got.Dst[i] != want.Dst[i] {
					return fmt.Errorf("Dst[%d] = %d, want %d", i, got.Dst[i], want.Dst[i])
				}
			}
			return nil
		},
		Delta: scanDelta,
		Cache: &CacheSpec{Out: OutDst},
		Stream: func(a *Args, opts par.Options) error {
			// Dst may alias Xs: the sink's write offset never passes the
			// source's read offset (chunks are copied out of Xs in stream
			// order before they reach the sink).
			off := 0
			p := pipeline.New(pipeline.Config{Opts: opts}).
				FromSlice(a.Xs).
				RunningSum().
				ToFunc(func(buf []int64) error {
					off += copy(a.Dst[off:], buf)
					return nil
				})
			return p.Run()
		},
		Meta: []MetaRelation{
			{
				Name: "linearity",
				Mutate: func(a *Args, _ *rng.Rand) {
					for i := range a.Xs {
						a.Xs[i] *= 3
					}
				},
				Relate: func(base, mut *Args) error {
					// Exact under int64 wraparound: both sides are the same
					// ring element.
					for i := range base.Dst {
						if mut.Dst[i] != 3*base.Dst[i] {
							return fmt.Errorf("Dst[%d] = %d, want %d", i, mut.Dst[i], 3*base.Dst[i])
						}
					}
					return nil
				},
			},
		},
	})

	Register(Kernel{
		Name:  "sum",
		Title: "sum of Xs into Out",
		Variants: []Variant{
			{Name: "par", Run: runSum},
		},
		Serial: func(a *Args) {
			var acc int64
			for _, v := range a.Xs {
				acc += v
			}
			a.Out = acc
		},
		Gen: func(n int, seed uint64) *Args {
			return &Args{Xs: gen.Ints(n, gen.Uniform, seed)}
		},
		Check: func(got, want *Args) error {
			if got.Out != want.Out {
				return fmt.Errorf("Out = %d, want %d", got.Out, want.Out)
			}
			return nil
		},
		Delta: sumDelta,
		Cache: &CacheSpec{Out: OutScalar},
		Meta: []MetaRelation{
			{
				Name:   "permutation",
				Mutate: shuffleXs,
				Relate: func(base, mut *Args) error {
					if base.Out != mut.Out {
						return fmt.Errorf("Out = %d after permutation, want %d", mut.Out, base.Out)
					}
					return nil
				},
			},
		},
	})

	Register(Kernel{
		Name:  "bfs",
		Title: "hop distances from Src in G into Dist (-1 unreachable)",
		Variants: []Variant{
			{Name: "frontier", Run: func(a *Args, o par.Options) { a.Dist = pgraph.BFS(a.G, a.Src, o) }},
		},
		Serial: serialBFS,
		Validate: func(a *Args) error {
			if a.G == nil || a.Src < 0 || a.Src >= a.G.N() {
				return fmt.Errorf("kernel: bfs source %d out of range", a.Src)
			}
			return nil
		},
		Gen:   genBFS,
		Check: checkDist,
		Meta: []MetaRelation{
			{
				// Duplicating an existing edge (or adding a self-loop on an
				// empty edge set) cannot change any hop distance.
				Name:   "duplicate-edge",
				Mutate: duplicateEdge,
				Relate: checkDist,
			},
		},
		Allocates: true, // BFS returns a freshly allocated distance slice
	})
}

// genBFS builds a ring of n nodes plus 2n random chords: connected,
// deterministic, with nontrivial hop distances.
func genBFS(n int, seed uint64) *Args {
	if n < 1 {
		n = 1
	}
	r := rng.New(seed + 1)
	edges := make([]graph.Edge, 0, 3*n)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: v - 1, V: v})
	}
	if n > 2 {
		edges = append(edges, graph.Edge{U: n - 1, V: 0})
		for i := 0; i < 2*n; i++ {
			edges = append(edges, graph.Edge{U: r.Intn(n), V: r.Intn(n)})
		}
	}
	return &Args{G: graph.MustBuild(n, edges, false), Src: 0}
}

// serialBFS is the textbook queue BFS — independent of the parallel
// frontier implementation, which is what makes it an oracle.
func serialBFS(a *Args) {
	g, src := a.G, a.Src
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	a.Dist = dist
}

func checkDist(got, want *Args) error {
	if len(got.Dist) != len(want.Dist) {
		return fmt.Errorf("Dist length %d != %d", len(got.Dist), len(want.Dist))
	}
	for i := range got.Dist {
		if got.Dist[i] != want.Dist[i] {
			return fmt.Errorf("Dist[%d] = %d, want %d", i, got.Dist[i], want.Dist[i])
		}
	}
	return nil
}

func duplicateEdge(a *Args, r *rng.Rand) {
	es := a.G.Edges()
	if len(es) == 0 {
		es = append(es, graph.Edge{U: 0, V: 0})
	} else {
		es = append(es, es[r.Intn(len(es))])
	}
	a.G = graph.MustBuild(a.G.N(), es, false)
}

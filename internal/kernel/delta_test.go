package kernel

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
)

// deltaFor builds a kernel-appropriate update of roughly dk elements:
// appended values for the slice kernels, inserted edges for cc.
func deltaFor(k *Kernel, a *Args, dk int, seed uint64) *Delta {
	if k.Name == "cc" {
		n := a.G.N()
		r := rng.New(seed*31 + 5)
		edges := make([]graph.Edge, dk)
		for i := range edges {
			edges[i] = graph.Edge{U: r.Intn(n), V: r.Intn(n)}
		}
		return &Delta{Edges: edges}
	}
	return &Delta{Append: gen.Ints(dk, gen.Uniform, seed*127+9)}
}

// TestDeltaMatchesFullRecompute is the differential contract of every
// delta adapter: Serial(base) then RunDelta(delta) must leave the
// record's outputs exactly as Serial on the updated input would.
func TestDeltaMatchesFullRecompute(t *testing.T) {
	for _, k := range All() {
		if k.Delta == nil {
			continue
		}
		t.Run(k.Name, func(t *testing.T) {
			for _, n := range []int{0, 1, 5, 100, 1000} {
				for _, dk := range []int{0, 1, 7, 64} {
					for seed := uint64(0); seed < 3; seed++ {
						a := k.Gen(n, seed)
						k.Serial(a)
						d := deltaFor(k, a, dk, seed)
						if err := k.RunDelta(a, d, par.Options{}); err != nil {
							t.Fatalf("n=%d dk=%d seed=%d: RunDelta: %v", n, dk, seed, err)
						}

						want := k.Gen(n, seed) // deterministic: same pristine input
						applyToInput(k, want, d)
						k.Serial(want)
						if err := k.Check(a, want); err != nil {
							t.Fatalf("n=%d dk=%d seed=%d: delta result diverges from full recompute: %v", n, dk, seed, err)
						}
					}
				}
			}
		})
	}
}

// applyToInput rewrites a pristine generated record's *input* to
// include the delta, so Serial on it is the full-recompute oracle.
func applyToInput(k *Kernel, a *Args, d *Delta) {
	if k.Name == "cc" {
		es := append(a.G.Edges(), d.Edges...)
		a.G = graph.MustBuild(a.G.N(), es, false)
		return
	}
	a.Xs = append(a.Xs, d.Append...)
	if k.Name == "scan" {
		a.Dst = make([]int64, len(a.Xs))
	}
}

// TestDeltaRepeatedApplications chains several deltas through one
// record — the standing-query shape — and checks the final state once.
func TestDeltaRepeatedApplications(t *testing.T) {
	for _, k := range All() {
		if k.Delta == nil {
			continue
		}
		t.Run(k.Name, func(t *testing.T) {
			const n = 300
			a := k.Gen(n, 1)
			want := k.Gen(n, 1)
			k.Serial(a)
			for step := uint64(0); step < 5; step++ {
				d := deltaFor(k, a, 17, 100+step)
				if err := k.RunDelta(a, d, par.Options{}); err != nil {
					t.Fatalf("step %d: RunDelta: %v", step, err)
				}
				applyToInput(k, want, d)
			}
			k.Serial(want)
			if err := k.Check(a, want); err != nil {
				t.Fatalf("after 5 chained deltas: %v", err)
			}
		})
	}
}

// TestRunDeltaWithoutAdapter: kernels that declare no delta adapter
// refuse loudly instead of silently no-opping.
func TestRunDeltaWithoutAdapter(t *testing.T) {
	k := MustLookup("select")
	if k.Delta != nil {
		t.Skip("select grew a delta adapter; pick another kernel")
	}
	a := k.Gen(16, 0)
	if err := k.RunDelta(a, &Delta{Append: []int64{1}}, par.Options{}); err == nil {
		t.Fatal("RunDelta on adapterless kernel returned nil error")
	}
}

// TestDeltaEmptyIsNoop: an empty delta leaves the record untouched.
func TestDeltaEmptyIsNoop(t *testing.T) {
	for _, k := range All() {
		if k.Delta == nil {
			continue
		}
		a := k.Gen(64, 2)
		k.Serial(a)
		want := k.Gen(64, 2)
		k.Serial(want)
		var d Delta
		if !d.Empty() {
			t.Fatal("zero Delta not Empty")
		}
		if err := k.RunDelta(a, &d, par.Options{}); err != nil {
			t.Fatalf("%s: empty delta errored: %v", k.Name, err)
		}
		if err := k.Check(a, want); err != nil {
			t.Fatalf("%s: empty delta changed outputs: %v", k.Name, err)
		}
	}
}

// TestCcDeltaRejectsOutOfRangeEdge pins the adapter's bounds check.
func TestCcDeltaRejectsOutOfRangeEdge(t *testing.T) {
	k := MustLookup("cc")
	a := k.Gen(10, 0)
	k.Serial(a)
	bad := &Delta{Edges: []graph.Edge{{U: 0, V: a.G.N()}}}
	if err := k.RunDelta(a, bad, par.Options{}); err == nil {
		t.Fatal("cc delta accepted an out-of-range edge")
	}
}

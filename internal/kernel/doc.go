// Package kernel is the typed kernel-descriptor registry: the single
// place a computational kernel is declared once and threaded through
// every runtime and testing layer.
//
// One Register call declares a kernel's name, its algorithm variants
// (candidates in an adapt variant lattice, so the adaptive runtime
// picks the algorithm — not just grain, policy and workers), its
// serial oracle, argument validation, a deterministic input
// generator, an output checker, an input-feature extractor for
// variant dispatch, an optional streaming-pipeline adapter, and its
// metamorphic relations. The layers then derive everything from the
// descriptor:
//
//   - internal/serve dispatches requests through Kernel.Run instead of
//     a per-kernel op switch, and routes large inputs through
//     Kernel.Stream when the kernel has one;
//   - internal/difftest oracle-checks every registered kernel (and
//     every variant) against Kernel.Serial across its size × policy ×
//     procs matrix;
//   - internal/metatest replays each kernel's MetaRelations across the
//     same matrix;
//   - internal/core's experiment E25 builds its one-shot vs serve vs
//     pipeline table from All();
//   - cmd/parbench lists and demos kernels by name.
//
// Adding a kernel is therefore one registration file: gups.go in this
// package is the proof — the GUPS random-access kernel arrives fully
// threaded (serve request path, difftest oracle, metamorphic
// property, experiment row, parbench demo) with no edits to any of
// those layers.
//
// # Layering
//
// kernel sits above the kernel implementations (psort, psel, pgraph,
// par) and the runtimes they share (adapt, exec, scratch, pipeline),
// and below serve, difftest, metatest, core and cmd/parbench, which
// consume the registry. It must not import serve.
package kernel

package kernel

import (
	"slices"
	"testing"

	"repro/internal/adapt"
	"repro/internal/par"
)

// Variant benchmarks: each algorithm candidate individually, plus the
// adaptive dispatch path with a pre-warmed controller, over the two
// key regimes the sort feature separates. scripts/benchjson.sh turns
// these into BENCH_kernels.json; the acceptance ratio is
// adaptive vs sample on narrow keys.

func benchSortInput(b *testing.B, base []int64, run func(xs []int64)) {
	b.Helper()
	buf := make([]int64, len(base))
	b.SetBytes(int64(8 * len(base)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, base)
		run(buf)
	}
	b.StopTimer()
	if !slices.IsSorted(buf) {
		b.Fatal("benchmarked variant failed to sort")
	}
}

// warmedController converges the sort kernel's variant lattice on base
// before timing starts, so the adaptive benchmark measures steady-state
// dispatch (one feature probe + one table lookup), not exploration.
func warmedController(b *testing.B, base []int64) *adapt.Controller {
	b.Helper()
	k := MustLookup("sort")
	ctl := adapt.New(adapt.Config{ConvergeAfter: 12, Seed: 9})
	xs := make([]int64, len(base))
	for i := 0; i < 24; i++ {
		copy(xs, base)
		k.Run(&Args{Xs: xs}, par.Options{Procs: 1, Adaptive: ctl})
	}
	return ctl
}

func benchSortRegime(b *testing.B, base []int64) {
	k := MustLookup("sort")
	for i, v := range k.Variants {
		i := i
		b.Run(v.Name, func(b *testing.B) {
			benchSortInput(b, base, func(xs []int64) {
				k.RunVariant(i, &Args{Xs: xs}, par.Options{Procs: 1})
			})
		})
	}
	b.Run("adaptive", func(b *testing.B) {
		ctl := warmedController(b, base)
		opts := par.Options{Procs: 1, Adaptive: ctl}
		benchSortInput(b, base, func(xs []int64) {
			k.Run(&Args{Xs: xs}, opts)
		})
	})
}

// BenchmarkSortNarrow16: uniform keys masked to 16 bits — the regime
// where a distribution sort beats the comparison baseline and adaptive
// dispatch should route away from sample.
func BenchmarkSortNarrow16(b *testing.B) {
	benchSortRegime(b, narrowInput(1<<15, 3))
}

// BenchmarkSortWide64: full-range nearly-sorted keys — the regime
// where sample sort's cheap comparisons win and radix pays all eight
// passes; adaptive dispatch should stay on sample.
func BenchmarkSortWide64(b *testing.B) {
	benchSortRegime(b, wideNearlySorted(1<<15, 5))
}

package kernel

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/seq"
)

// Delta is one incremental update to a previously computed argument
// record — the standing-query input shape: a tenant holds a record
// whose outputs are current, new data arrives, and the kernel's delta
// adapter folds it in for the cost of the delta instead of a full
// recompute. Which fields apply depends on the kernel: Append feeds
// the slice kernels (sort, sum, scan, histogram, topk), Edges feeds
// dynamic connectivity (cc).
type Delta struct {
	// Append are values appended to the input stream.
	Append []int64
	// Edges are edges inserted into the graph.
	Edges []graph.Edge
}

// Empty reports whether the delta carries no update.
func (d *Delta) Empty() bool { return len(d.Append) == 0 && len(d.Edges) == 0 }

// OutField names which Args field a kernel's result lives in — what a
// result cache must copy out on insert and restore on hit.
type OutField int

const (
	// OutXs: the result is the primary slice, rewritten in place
	// (sort, gups).
	OutXs OutField = iota
	// OutDst: the result is the Dst slice (scan, topk).
	OutDst
	// OutScalar: the result is the Out scalar only (sum, select).
	OutScalar
)

// CacheSpec declares a kernel cacheable by a result cache: its output
// is a pure function of the fingerprintable input fields (Xs, K,
// Seed), and Out names where that output lands. Kernels whose inputs
// include a function or a graph (histogram, bfs, cc) cannot be
// fingerprinted and leave Kernel.Cache nil.
type CacheSpec struct {
	Out OutField
}

// RunDelta applies one incremental update to a record whose outputs
// are current: afterwards the record is exactly as if Run had executed
// on the updated input (for cc, on G plus every edge inserted so far —
// G itself is immutable and is not rebuilt). It runs the kernel's
// delta adapter; kernels without one return an error. Unlike Run, the
// delta path may allocate (records grow).
func (k *Kernel) RunDelta(a *Args, d *Delta, opts par.Options) error {
	if k.Delta == nil {
		return fmt.Errorf("kernel: %s has no delta adapter", k.Name)
	}
	return k.Delta(a, d, opts)
}

// sortDelta maintains sorted order under appends: sort the appended
// tail, then one backward in-place merge — O(n + k) instead of a full
// re-sort.
func sortDelta(a *Args, d *Delta, _ par.Options) error {
	k := len(d.Append)
	if k == 0 {
		return nil
	}
	n := len(a.Xs)
	a.Xs = append(a.Xs, d.Append...)
	tmp := make([]int64, k)
	copy(tmp, a.Xs[n:])
	seq.Quicksort(tmp)
	// Merge backward, head run in place and the sorted tail in tmp:
	// the write position w = i+j+1 always sits above the head run's
	// unread prefix [0..i], so nothing unconsumed is ever overwritten
	// (merging both runs in place would clobber the tail).
	i, j := n-1, k-1
	for w := n + k - 1; j >= 0; w-- {
		if i >= 0 && a.Xs[i] > tmp[j] {
			a.Xs[w] = a.Xs[i]
			i--
		} else {
			a.Xs[w] = tmp[j]
			j--
		}
	}
	return nil
}

// sumDelta absorbs appended values in O(len(delta)).
func sumDelta(a *Args, d *Delta, _ par.Options) error {
	for _, v := range d.Append {
		a.Out += v
	}
	a.Xs = append(a.Xs, d.Append...)
	return nil
}

// scanDelta extends the prefix sums, continuing the carry from the
// last computed position.
func scanDelta(a *Args, d *Delta, _ par.Options) error {
	if len(a.Dst) != len(a.Xs) {
		return fmt.Errorf("kernel: scan delta on record with dst length %d != input length %d", len(a.Dst), len(a.Xs))
	}
	var carry int64
	if n := len(a.Dst); n > 0 {
		carry = a.Dst[n-1]
	}
	for _, v := range d.Append {
		carry += v
		a.Xs = append(a.Xs, v)
		a.Dst = append(a.Dst, carry)
	}
	return nil
}

// histogramDelta absorbs appended values bucket by bucket — the
// mergeable-summary property of counting.
func histogramDelta(a *Args, d *Delta, _ par.Options) error {
	if a.Bucket == nil {
		return fmt.Errorf("kernel: histogram delta with nil bucket function")
	}
	for _, v := range d.Append {
		a.Hist[a.Bucket(v)]++
	}
	a.Xs = append(a.Xs, d.Append...)
	return nil
}

// topkDelta merges appended candidates into the kept set: the new K
// smallest of the grown input are a subset of the old K smallest plus
// the appended values (an element outside the old top K is dominated
// by K older elements and cannot enter).
func topkDelta(a *Args, d *Delta, _ par.Options) error {
	a.Xs = append(a.Xs, d.Append...)
	if a.K == 0 || len(d.Append) == 0 {
		return nil
	}
	merged := make([]int64, 0, len(a.Dst)+len(d.Append))
	merged = append(merged, a.Dst...)
	merged = append(merged, d.Append...)
	seq.Quicksort(merged)
	if len(merged) > a.K {
		merged = merged[:a.K]
	}
	a.Dst = append(a.Dst[:0], merged...)
	return nil
}

// ccDelta is dynamic connectivity under edge insertions: union-find
// over the current component labels (which are component-minimum node
// ids, so union-by-min preserves the canonical form), then one
// relabeling sweep — O(n + k α) instead of recomputing components
// from scratch. G is not rebuilt; Dist reflects G plus every inserted
// edge.
func ccDelta(a *Args, d *Delta, _ par.Options) error {
	if len(d.Edges) == 0 {
		return nil
	}
	if a.G == nil || len(a.Dist) != a.G.N() {
		return fmt.Errorf("kernel: cc delta on record without current labels")
	}
	parent := make(map[int32]int32, 2*len(d.Edges))
	var find func(x int32) int32
	find = func(x int32) int32 {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	n := len(a.Dist)
	changed := false
	for _, e := range d.Edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return fmt.Errorf("kernel: cc delta edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		ru, rv := find(a.Dist[e.U]), find(a.Dist[e.V])
		if ru == rv {
			continue
		}
		if ru > rv {
			ru, rv = rv, ru
		}
		parent[rv] = ru
		changed = true
	}
	if !changed {
		return nil
	}
	for i, l := range a.Dist {
		a.Dist[i] = find(l)
	}
	return nil
}

package kernel

import (
	"slices"
	"testing"

	"repro/internal/adapt"
	"repro/internal/gen"
	"repro/internal/par"
)

func TestRegistryRoster(t *testing.T) {
	for _, name := range []string{"sort", "select", "histogram", "scan", "sum", "bfs", "gups"} {
		if Lookup(name) == nil {
			t.Errorf("built-in kernel %q not registered", name)
		}
	}
	names := Names()
	if !slices.IsSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	if len(All()) != len(names) {
		t.Errorf("All() has %d kernels, Names() %d", len(All()), len(names))
	}
	if Lookup("no-such-kernel") != nil {
		t.Error("Lookup of unknown name returned a kernel")
	}
}

func TestRegisterRejectsIncompleteAndDuplicate(t *testing.T) {
	mustPanic := func(name string, k Kernel) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(k)
	}
	ok := Kernel{
		Name:     "sort", // duplicate of the built-in
		Variants: []Variant{{Name: "v", Run: func(*Args, par.Options) {}}},
		Serial:   func(*Args) {},
		Gen:      func(int, uint64) *Args { return &Args{} },
		Check:    func(*Args, *Args) error { return nil },
	}
	mustPanic("duplicate", ok)
	missing := ok
	missing.Name = "test-incomplete"
	missing.Serial = nil
	mustPanic("missing serial", missing)
	unnamed := ok
	unnamed.Name = "test-unnamed-variant"
	unnamed.Variants = []Variant{{Run: func(*Args, par.Options) {}}}
	mustPanic("unnamed variant", unnamed)
}

func TestRunWithoutControllerUsesDefaultVariant(t *testing.T) {
	k := MustLookup("sort")
	got := k.Gen(4096, 1)
	want := k.Gen(4096, 1)
	k.Serial(want)
	k.Run(got, par.Options{Procs: 2, SerialCutoff: 1})
	if err := k.Check(got, want); err != nil {
		t.Fatal(err)
	}
}

func TestRunVariantOracleChecksEveryAlgorithm(t *testing.T) {
	k := MustLookup("sort")
	for i, v := range k.Variants {
		for seed := uint64(0); seed < 4; seed++ {
			got := k.Gen(8192, seed)
			want := k.Gen(8192, seed)
			k.Serial(want)
			k.RunVariant(i, got, par.Options{Procs: 2, SerialCutoff: 1})
			if err := k.Check(got, want); err != nil {
				t.Fatalf("variant %s seed %d: %v", v.Name, seed, err)
			}
		}
	}
}

// narrowInput is a uniform uint16-range key array: counting sort's
// home turf.
func narrowInput(n int, seed uint64) []int64 {
	xs := gen.Ints(n, gen.Uniform, seed)
	for i := range xs {
		xs[i] &= 0xFFFF
	}
	return xs
}

// wideNearlySorted is full-range keys in nearly sorted order: the
// comparison sort's home turf (radix still pays all eight passes).
func wideNearlySorted(n int, seed uint64) []int64 {
	xs := gen.Ints(n, gen.Uniform, seed)
	slices.Sort(xs)
	r := seed*2 + 1
	for k := 0; k < n/100; k++ {
		r = r*6364136223846793005 + 1442695040888963407
		i := int(r>>33) % n
		j := (i*7 + 13) % n
		xs[i], xs[j] = xs[j], xs[i]
	}
	return xs
}

// warmSortDispatch drives the sort kernel's variant lattice to
// convergence on copies of base and returns the controller.
func warmSortDispatch(t *testing.T, base []int64, rounds int) *adapt.Controller {
	t.Helper()
	k := MustLookup("sort")
	ctl := adapt.New(adapt.Config{ConvergeAfter: 12, Seed: 9})
	xs := make([]int64, len(base))
	for i := 0; i < rounds; i++ {
		copy(xs, base)
		a := &Args{Xs: xs}
		k.Run(a, par.Options{Procs: 1, Adaptive: ctl})
		if !slices.IsSorted(xs) {
			t.Fatal("dispatched variant failed to sort")
		}
	}
	return ctl
}

func TestVariantDispatchPrefersCountingOnNarrowKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-driven convergence test")
	}
	k := MustLookup("sort")
	base := narrowInput(1<<15, 3)
	class := k.Feature(&Args{Xs: base})
	ctl := warmSortDispatch(t, base, 24)
	best, ok := ctl.BestVariant(k.Site(), class)
	if !ok {
		t.Fatal("variant class never created")
	}
	if best == 0 {
		t.Errorf("narrow keys converged to %q; want a narrow-key specialist (radix or counting)",
			k.Variants[best].Name)
	}
	if v := ctl.ClassVisits(k.Site(), class); v == 0 {
		t.Error("variant site recorded no visits")
	}
}

func TestVariantDispatchPrefersSampleOnWideSortedKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-driven convergence test")
	}
	k := MustLookup("sort")
	base := wideNearlySorted(1<<15, 5)
	class := k.Feature(&Args{Xs: base})
	ctl := warmSortDispatch(t, base, 24)
	best, ok := ctl.BestVariant(k.Site(), class)
	if !ok {
		t.Fatal("variant class never created")
	}
	if best != 0 {
		t.Errorf("wide nearly-sorted keys converged to %q; want sample", k.Variants[best].Name)
	}
}

func TestSortFeatureSeparatesRegimes(t *testing.T) {
	narrow := &Args{Xs: narrowInput(1<<15, 1)}
	wide := &Args{Xs: wideNearlySorted(1<<15, 1)}
	cn, cw := sortFeature(narrow), sortFeature(wide)
	if cn == cw {
		t.Fatalf("narrow and wide inputs share feature class %d", cn)
	}
	for _, a := range []*Args{narrow, wide, {Xs: nil}} {
		if c := sortFeature(a); c < 0 || c > 63 {
			t.Fatalf("feature class %d out of [0, 63]", c)
		}
	}
}

func TestGUPSMatchesSerialAcrossProcs(t *testing.T) {
	k := MustLookup("gups")
	for _, procs := range []int{1, 2, 4} {
		for seed := uint64(0); seed < 3; seed++ {
			got := k.Gen(4096, seed)
			want := k.Gen(4096, seed)
			k.Serial(want)
			k.Run(got, par.Options{Procs: procs, SerialCutoff: 1, Grain: 64})
			if err := k.Check(got, want); err != nil {
				t.Fatalf("procs=%d seed=%d: %v", procs, seed, err)
			}
		}
	}
}

func TestGUPSValidateRejectsBadTables(t *testing.T) {
	k := MustLookup("gups")
	for _, bad := range []*Args{
		{Xs: nil, K: 1},
		{Xs: make([]int64, 3), K: 1},
		{Xs: make([]int64, 4), K: -1},
	} {
		if err := k.Validate(bad); err == nil {
			t.Errorf("Validate accepted table len %d, K %d", len(bad.Xs), bad.K)
		}
	}
	if err := k.Validate(k.Gen(1000, 1)); err != nil {
		t.Errorf("Validate rejected generated args: %v", err)
	}
}

func TestArgsLen(t *testing.T) {
	if (&Args{Xs: make([]int64, 5)}).Len() != 5 {
		t.Error("Len != len(Xs)")
	}
	b := MustLookup("bfs").Gen(17, 0)
	if b.Len() != 17 {
		t.Errorf("graph Len = %d, want 17", b.Len())
	}
}

package kernel

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/psel"
	"repro/internal/seq"
)

// top-k — the K smallest elements of Xs, ascending, into Dst[:K] (Xs
// unmodified). It exists for the standing-query path: the kept set is
// a mergeable summary, so appended chunks fold in via topkDelta for
// O(K + delta) instead of a rescan, and the full result is small
// enough to result-cache whole. One registration file, per the GUPS
// model: serve, difftest, metatest, E25 and parbench pick it up from
// the descriptor.

// runTopK selects the rank-(K-1) threshold, gathers the strictly
// smaller elements (at most K-1 of them) and pads with the threshold
// value up to K — exactly the multiset of the K smallest. Gather and
// pad stay within Dst's capacity, so a serve batch slot runs it at
// 0 allocs/op.
func runTopK(a *Args, o par.Options) {
	k := a.K
	if k == 0 {
		a.Dst = a.Dst[:0]
		return
	}
	t := psel.Select(a.Xs, k-1, o)
	out := a.Dst[:0]
	for _, v := range a.Xs {
		if v < t {
			out = append(out, v)
		}
	}
	for len(out) < k {
		out = append(out, t)
	}
	seq.Quicksort(out)
	a.Dst = out
}

// serialTopK is the independent oracle: full copy, full sort, take K.
func serialTopK(a *Args) {
	tmp := make([]int64, len(a.Xs))
	copy(tmp, a.Xs)
	seq.Quicksort(tmp)
	a.Dst = append(a.Dst[:0], tmp[:a.K]...)
}

func init() {
	Register(Kernel{
		Name:  "topk",
		Title: "K smallest of Xs ascending into Dst[:K] (Xs unmodified)",
		Variants: []Variant{
			{Name: "select+gather", Run: runTopK},
		},
		Serial: serialTopK,
		Validate: func(a *Args) error {
			if a.K < 0 || a.K > len(a.Xs) {
				return fmt.Errorf("kernel: topk count %d out of range [0,%d]", a.K, len(a.Xs))
			}
			if cap(a.Dst) < a.K {
				return fmt.Errorf("kernel: topk dst capacity %d < K=%d", cap(a.Dst), a.K)
			}
			return nil
		},
		Gen: func(n int, seed uint64) *Args {
			k := 16 + int(seed)%17
			if k > n {
				k = n
			}
			return &Args{
				Xs:  gen.Ints(n, gen.Uniform, seed),
				Dst: make([]int64, k),
				K:   k,
			}
		},
		Check: func(got, want *Args) error {
			if len(got.Dst) != len(want.Dst) {
				return fmt.Errorf("Dst length %d != %d", len(got.Dst), len(want.Dst))
			}
			for i := range got.Dst {
				if got.Dst[i] != want.Dst[i] {
					return fmt.Errorf("Dst[%d] = %d, want %d", i, got.Dst[i], want.Dst[i])
				}
			}
			return nil
		},
		Delta: topkDelta,
		Cache: &CacheSpec{Out: OutDst},
		Meta: []MetaRelation{
			{
				// The K smallest are a property of the multiset, not the
				// order.
				Name:   "permutation",
				Mutate: shuffleXs,
				Relate: func(base, mut *Args) error {
					for i := range base.Dst {
						if base.Dst[i] != mut.Dst[i] {
							return fmt.Errorf("Dst[%d] = %d after permutation, want %d", i, mut.Dst[i], base.Dst[i])
						}
					}
					return nil
				},
			},
		},
	})
}

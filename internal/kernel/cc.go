package kernel

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pgraph"
	"repro/internal/rng"
	"repro/internal/seq"
)

// cc — connected-component labels of G into Dist, canonicalized to
// component-minimum node ids. Both pgraph algorithms produce that
// canonical form directly (hook attaches larger roots under smaller;
// label propagation adopts neighborhood minima), so the registry gets
// a genuine two-variant lattice and the oracle check is exact label
// equality, not just partition equivalence. Registered for the
// standing-query path: ccDelta maintains the labels under edge
// insertions without recomputing from scratch.

// serialCC is the union-find oracle (independent of both parallel
// algorithms), relabeled to component minima.
func serialCC(a *Args) {
	g := a.G
	n := g.N()
	u := seq.NewUnionFind(n)
	for _, e := range g.Edges() {
		u.Union(e.U, e.V)
	}
	minOf := make([]int32, n)
	for i := range minOf {
		minOf[i] = -1
	}
	for v := 0; v < n; v++ {
		if r := u.Find(v); minOf[r] < 0 {
			minOf[r] = int32(v) // v ascending: first hit is the minimum
		}
	}
	dist := make([]int32, n)
	for v := 0; v < n; v++ {
		dist[v] = minOf[u.Find(v)]
	}
	a.Dist = dist
}

// genCC builds a sparse random graph — below-percolation edge density
// plus isolated tails, so components of many sizes (including
// singletons) coexist.
func genCC(n int, seed uint64) *Args {
	if n < 1 {
		n = 1
	}
	r := rng.New(seed*0x9E3779B9 + 7)
	m := n + n/2
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{U: r.Intn(n), V: r.Intn(n)})
	}
	return &Args{G: graph.MustBuild(n, edges, false)}
}

func init() {
	Register(Kernel{
		Name:  "cc",
		Title: "connected-component labels of G into Dist (component-minimum ids)",
		Variants: []Variant{
			{Name: "hook", Run: func(a *Args, o par.Options) { a.Dist = pgraph.CCHook(a.G, o) }},
			{Name: "labelprop", Run: func(a *Args, o par.Options) { a.Dist = pgraph.CCLabelProp(a.G, o) }},
		},
		Serial: serialCC,
		Validate: func(a *Args) error {
			if a.G == nil {
				return fmt.Errorf("kernel: cc with nil graph")
			}
			return nil
		},
		Gen:   genCC,
		Check: checkDist,
		Delta: ccDelta,
		Meta: []MetaRelation{
			{
				// Duplicating an existing edge (or adding a self-loop on an
				// empty edge set) cannot change any component.
				Name:   "duplicate-edge",
				Mutate: duplicateEdge,
				Relate: checkDist,
			},
		},
		Allocates: true, // both variants return freshly allocated label slices
	})
}

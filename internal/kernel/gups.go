package kernel

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/adapt"
	"repro/internal/par"
	"repro/internal/rng"
)

// GUPS — giga-updates-per-second random access, after the HPCC
// RandomAccess benchmark: K pseudo-random read-modify-write updates
// scattered over a power-of-two table. It is the memory system's
// worst case (every update is a likely cache miss) and the scratch
// story's blind spot (there is nothing to reuse), which is exactly
// why the roster wants it.
//
// This file is the whole integration: one Register call threads the
// kernel through serve's request path, difftest's oracle matrix,
// metatest's relation matrix, experiment E25 and the parbench demo,
// with no edits anywhere else. Updates use commutative wrapping
// addition via atomic.AddInt64, so the parallel result is
// deterministic and equal to the serial oracle's regardless of
// interleaving.

// siteGUPS tunes the update loop's chunking like any range site.
var siteGUPS = adapt.NewSite("kernel.gups.update", adapt.KindRange)

// gupsMix is splitmix64: the i-th update's random word is a pure
// function of (Seed, i), so workers derive their updates with no
// shared stream state.
func gupsMix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func runGUPS(a *Args, opts par.Options) {
	if opts.Procs == 1 {
		// A serve batch slot runs serially: plain adds give the same
		// (commutative) result with no atomics and no update closure
		// escaping to the heap, keeping the batch path at 0 allocs/op.
		serialGUPS(a)
		return
	}
	mask := uint64(len(a.Xs) - 1)
	opts.Site = siteGUPS
	xs, seed := a.Xs, a.Seed
	par.ForRange(a.K, opts, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := gupsMix(seed + uint64(i))
			// r|1 keeps every delta odd, so no update is a no-op.
			atomic.AddInt64(&xs[r&mask], int64(r|1))
		}
	})
}

func serialGUPS(a *Args) {
	mask := uint64(len(a.Xs) - 1)
	for i := 0; i < a.K; i++ {
		r := gupsMix(a.Seed + uint64(i))
		a.Xs[r&mask] += int64(r | 1)
	}
}

func init() {
	Register(Kernel{
		Name:  "gups",
		Title: "K random-access updates over power-of-two table Xs",
		Variants: []Variant{
			{Name: "atomic", Run: runGUPS},
		},
		Serial: serialGUPS,
		Validate: func(a *Args) error {
			n := len(a.Xs)
			if n == 0 || n&(n-1) != 0 {
				return fmt.Errorf("kernel: gups table length %d is not a power of two", n)
			}
			if a.K < 0 {
				return fmt.Errorf("kernel: gups update count %d is negative", a.K)
			}
			return nil
		},
		Gen: func(n int, seed uint64) *Args {
			if n < 1 {
				n = 1
			}
			tn := 1 << (bits.Len(uint(n)) - 1) // largest power of two <= n
			xs := make([]int64, tn)
			for i := range xs {
				xs[i] = int64(i) * 0x9E3779B9
			}
			return &Args{Xs: xs, K: 4 * tn, Seed: seed*0x9E3779B97F4A7C15 + 1}
		},
		Check: eqXs,
		// Deterministic given (Xs, K, Seed): the update stream is a pure
		// function of (Seed, i) and wrapping adds commute.
		Cache: &CacheSpec{Out: OutXs},
		Meta: []MetaRelation{
			{
				// The update stream depends only on (Seed, K), so shifting
				// every table cell by a constant shifts every result cell
				// by the same constant.
				Name: "table-translation",
				Mutate: func(a *Args, _ *rng.Rand) {
					for i := range a.Xs {
						a.Xs[i] += translationDelta
					}
				},
				Relate: func(base, mut *Args) error {
					for i := range base.Xs {
						if mut.Xs[i] != base.Xs[i]+translationDelta {
							return fmt.Errorf("Xs[%d] = %d, want %d", i, mut.Xs[i], base.Xs[i]+translationDelta)
						}
					}
					return nil
				},
			},
		},
	})
}

package kernel

import "repro/internal/graph"

// Args is the one argument record every kernel entrypoint accepts: a
// flat union of the fields the registered kernels need, so requests
// can carry any kernel's arguments without interface boxing or
// per-kernel request types (which is what keeps the serve batch path
// allocation-free). A kernel reads the fields its documentation
// names and ignores the rest; results land back in the record (Xs
// sorted in place, Out, Dist, Hist, Dst).
type Args struct {
	// Xs is the primary input slice (sort/select/histogram/scan/sum
	// input; the GUPS update table). Kernels that produce slice output
	// in place write it here.
	Xs []int64
	// Dst is the output slice of transforming kernels (scan). Its
	// length must match Xs; it may alias Xs.
	Dst []int64
	// Hist is the bucket-count output of histogram kernels.
	Hist []int
	// Bucket maps a value to its bucket in [0, len(Hist)).
	Bucket func(int64) int
	// K is the rank of selection kernels and the update count of GUPS.
	K int
	// G and Src are the graph-kernel inputs.
	G   *graph.Graph
	Src int
	// Out is the scalar result (select, sum).
	Out int64
	// Dist is the slice result of graph kernels (BFS hop distances).
	Dist []int32
	// Seed parameterizes kernels with internal randomness (the GUPS
	// index stream).
	Seed uint64
}

// Len is the kernel's problem size: the node count for graph kernels,
// the primary slice length otherwise. It sizes adaptive decisions,
// pipeline routing and per-element cost accounting.
func (a *Args) Len() int {
	if a.G != nil {
		return a.G.N()
	}
	return len(a.Xs)
}

// Conformance is the registry's contract test (package kernel_test so
// it can drive the serve runtime, which imports kernel): one
// table-driven sweep asserting that every registered kernel — present
// and future — has a working serial oracle, a live adaptive site, and
// an allocation-free ride through the serve batch path. A kernel that
// registers but fails any clause breaks this test by name.
package kernel_test

import (
	"testing"

	"repro/internal/adapt"
	"repro/internal/kernel"
	"repro/internal/par"
	"repro/internal/serve"
)

func TestKernelConformance(t *testing.T) {
	for _, k := range kernel.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			// Descriptor completeness: Register enforces these, so a
			// failure here means the registration path regressed.
			if k.Serial == nil || k.Gen == nil || k.Check == nil || len(k.Variants) == 0 {
				t.Fatal("descriptor incomplete")
			}
			if len(k.Meta) == 0 {
				t.Error("no metamorphic relations declared")
			}

			t.Run("oracle", func(t *testing.T) {
				// One smoke differential round per seed: the dispatched
				// entrypoint against the serial oracle (the full matrix
				// lives in internal/difftest).
				for seed := uint64(0); seed < 2; seed++ {
					got := k.Gen(4096, seed)
					want := k.Gen(4096, seed)
					k.Serial(want)
					k.Run(got, par.Options{Procs: 2, SerialCutoff: 1, Grain: 64})
					if err := k.Check(got, want); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
				}
			})

			t.Run("adaptive-site", func(t *testing.T) {
				// Every kernel must consult the adaptive layer somewhere:
				// multi-variant kernels through their variant lattice,
				// single-variant kernels through the sites inside their
				// implementation (grain/policy/worker lattices).
				ctl := adapt.New(adapt.Config{Epsilon: 1, ConvergeAfter: 1 << 30, Seed: 7})
				a := k.Gen(1<<14, 0)
				// The dispatch class must be read before Run mutates the
				// input (sorting flips the sortedness feature bit).
				class := 0
				if k.Feature != nil {
					class = k.Feature(a)
				}
				k.Run(a, par.Options{Procs: 4, Adaptive: ctl})
				if site := k.Site(); site != nil {
					if ctl.ClassVisits(site, class) == 0 {
						t.Error("variant site recorded no visits")
					}
				}
				if st := ctl.Stats(); st.Decisions == 0 {
					t.Error("no adaptive site consulted the controller")
				}
			})

			if !k.Allocates {
				t.Run("serve-zero-alloc", func(t *testing.T) {
					s := serve.New(serve.Config{Adaptive: adapt.New(adapt.Config{})})
					defer s.Close()
					a := k.Gen(4096, 1)
					// Warm the pools and the variant lattice's exploration
					// sweep so steady state is what gets measured.
					for i := 0; i < 64; i++ {
						if err := s.Call("conformance", k, a); err != nil {
							t.Fatal(err)
						}
					}
					// A GC between runs can repopulate sync.Pools on the
					// measured iteration; retry before declaring a leak.
					var allocs float64
					for attempt := 0; attempt < 3; attempt++ {
						allocs = testing.AllocsPerRun(100, func() {
							if err := s.Call("conformance", k, a); err != nil {
								t.Fatal(err)
							}
						})
						if allocs == 0 {
							break
						}
					}
					if allocs != 0 {
						t.Errorf("serve batch path allocates %.2f allocs/op; want 0", allocs)
					}
				})
			}
		})
	}
}

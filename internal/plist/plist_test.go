package plist

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/seq"
)

func TestRankMatchesReference(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 100, 1000, 4097} {
		for _, p := range []int{1, 2, 4, 8} {
			l := gen.RandomList(n, uint64(n))
			got := Rank(l, par.Options{Procs: p, Grain: 8})
			want := l.RanksRef()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%d: rank[%d] = %d, want %d", n, p, i, got[i], want[i])
				}
			}
		}
	}
}

func TestRankOrderedList(t *testing.T) {
	l := gen.OrderedList(100)
	got := Rank(l, par.Options{Procs: 4, Grain: 4})
	for i, r := range got {
		if r != i {
			t.Fatalf("ordered list rank[%d] = %d", i, r)
		}
	}
}

func TestRankEmptyAndSingle(t *testing.T) {
	if out := Rank(&gen.List{}, par.Options{}); out != nil {
		t.Fatalf("empty list ranks = %v", out)
	}
	l := gen.OrderedList(1)
	got := Rank(l, par.Options{})
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("singleton ranks = %v", got)
	}
}

func TestRankAgreesWithSequentialQuick(t *testing.T) {
	f := func(seed uint64, size uint16, procs uint8) bool {
		n := int(size%2000) + 1
		l := gen.RandomList(n, seed)
		got := Rank(l, par.Options{Procs: int(procs%8) + 1, Grain: 16})
		want := seq.ListRank(l)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRankIsPermutationOfRange(t *testing.T) {
	n := 500
	l := gen.RandomList(n, 3)
	got := Rank(l, par.Options{Procs: 4})
	seen := make([]bool, n)
	for _, r := range got {
		if r < 0 || r >= n || seen[r] {
			t.Fatalf("ranks are not a permutation: %d", r)
		}
		seen[r] = true
	}
}

func TestJumps(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 3, 4: 3, 5: 4, 1024: 11}
	for n, want := range cases {
		if got := Jumps(n); got != want {
			t.Fatalf("Jumps(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestListGenerators(t *testing.T) {
	l := gen.RandomList(100, 42)
	if l.Len() != 100 {
		t.Fatalf("Len = %d", l.Len())
	}
	tail := l.Tail()
	if tail < 0 || l.Next[tail] != tail {
		t.Fatalf("bad tail %d", tail)
	}
	// The list must visit all nodes exactly once.
	seen := make([]bool, 100)
	v := l.Head
	for steps := 0; steps < 100; steps++ {
		if seen[v] {
			t.Fatal("list revisits a node")
		}
		seen[v] = true
		if l.Next[v] == v {
			break
		}
		v = l.Next[v]
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("node %d unreachable", i)
		}
	}
}

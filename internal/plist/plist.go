package plist

import (
	"repro/internal/adapt"
	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/scratch"
)

// Adaptive call sites: the jump rounds dominate Rank, so they carry
// their own identity; the init/finish element loops share another.
var (
	siteListJump = adapt.NewSite("plist.Rank.jump", adapt.KindWorkers)
	siteListElem = adapt.NewSite("plist.Rank.elem", adapt.KindRange)
)

// Rank returns each node's distance from the head (head = 0) using
// synchronous pointer jumping with double buffering: every round halves
// the remaining pointer distance, so ceil(log2 n) rounds suffice. The
// four double-buffered jump arrays are scratch-pooled; only the
// returned ranks are freshly allocated.
func Rank(l *gen.List, opts par.Options) []int {
	n := len(l.Next)
	if n == 0 {
		return nil
	}
	a := scratch.AcquireArena(opts.ScratchPool())
	defer a.Release()
	elemOpts := opts
	elemOpts.Site = siteListElem
	jumpOpts := opts
	jumpOpts.Site = siteListJump
	// dist[i] counts links from i to the tail; next doubles each round.
	next := scratch.Make[int](a, n)
	dist := scratch.MakeZeroed[int](a, n)
	par.For(n, elemOpts, func(i int) {
		next[i] = l.Next[i]
		if l.Next[i] != i {
			dist[i] = 1
		}
	})
	next2 := scratch.Make[int](a, n)
	dist2 := scratch.Make[int](a, n)
	for {
		changed := par.Count(n, jumpOpts, func(i int) bool {
			if next[i] == i {
				// Tail fixpoint: already fully ranked.
				dist2[i] = dist[i]
				next2[i] = i
				return false
			}
			// Jump: accumulate the successor's distance and double the
			// pointer. Reads go to the previous round's arrays only, so
			// the round is a synchronous PRAM step with no races.
			dist2[i] = dist[i] + dist[next[i]]
			next2[i] = next[next[i]]
			return next2[i] != next[i] || dist2[i] != dist[i]
		})
		next, next2 = next2, next
		dist, dist2 = dist2, dist
		if changed == 0 {
			break
		}
	}
	// dist is now distance-to-tail; convert to distance-from-head.
	total := dist[l.Head]
	ranks := make([]int, n)
	par.For(n, elemOpts, func(i int) { ranks[i] = total - dist[i] })
	return ranks
}

// Jumps returns the number of pointer-jumping rounds Rank will perform on
// a list of length n: ceil(log2(n-1)) + 1 for n > 1 (the extra round
// detects the fixpoint). Exposed for the model-validation experiments.
func Jumps(n int) int {
	if n <= 1 {
		return 1
	}
	r := 0
	for span := 1; span < n; span *= 2 {
		r++
	}
	return r + 1
}

// Package plist implements the list-ranking case study: Wyllie's
// pointer-jumping algorithm against the sequential pointer-chasing sweep.
//
// List ranking is the methodology's canonical example of a
// *work-inefficient* parallel algorithm: pointer jumping performs
// Θ(n log n) work versus the sweep's Θ(n), so on P processors it can win
// only when P substantially exceeds log n — and the sequential sweep's
// only weakness is memory latency on randomly laid-out lists. Experiment
// E4 locates this crossover empirically; the PRAM model (machine.
// ListRankWD) predicts it.
//
// Layering: plist consumes gen (the array-embedded list type),
// par (jump loops) and scratch (jump arrays); it feeds core's
// list-ranking experiments and the repro facade (ListRank).
package plist

package par

import "repro/internal/scratch"

// Reduce combines body(i) for all i in [0, n) with an associative operator
// combine, starting from identity. Each worker reduces a contiguous block
// locally and the per-worker partials are combined sequentially at the
// end, so combine is called O(n/P + P) times and no atomics are needed on
// the hot path.
//
// combine must be associative; if it is not commutative the result is
// still well-defined because blocks are combined in index order.
func Reduce[T any](n int, opts Options, identity T, combine func(T, T) T, body func(i int) T) T {
	if n <= 0 {
		return identity
	}
	opts, m := BeginAdaptive(siteReduce, n, opts)
	defer m.Done()
	p := opts.procs()
	if p > n {
		p = n
	}
	if p == 1 || n <= opts.serialCutoff() {
		acc := identity
		for i := 0; i < n; i++ {
			acc = combine(acc, body(i))
		}
		return acc
	}
	partial, ph := scratch.Get[T](opts.Scratch, p)
	defer scratch.Put(ph)
	ForWorkers(p, opts, func(w int) {
		lo := w * n / p
		hi := (w + 1) * n / p
		acc := identity
		for i := lo; i < hi; i++ {
			acc = combine(acc, body(i))
		}
		partial[w] = acc
	})
	acc := identity
	for _, v := range partial {
		acc = combine(acc, v)
	}
	return acc
}

// Sum returns the sum of xs using a parallel tree of contiguous blocks.
func Sum[T int | int32 | int64 | uint64 | float64](xs []T, opts Options) T {
	return Reduce(len(xs), opts, T(0), func(a, b T) T { return a + b }, func(i int) T { return xs[i] })
}

// Max returns the maximum of xs and true, or the zero value and false for
// an empty slice.
func Max[T int | int32 | int64 | uint64 | float64](xs []T, opts Options) (T, bool) {
	var zero T
	if len(xs) == 0 {
		return zero, false
	}
	m := Reduce(len(xs), opts, xs[0],
		func(a, b T) T {
			if a >= b {
				return a
			}
			return b
		},
		func(i int) T { return xs[i] })
	return m, true
}

// Min returns the minimum of xs and true, or the zero value and false for
// an empty slice.
func Min[T int | int32 | int64 | uint64 | float64](xs []T, opts Options) (T, bool) {
	var zero T
	if len(xs) == 0 {
		return zero, false
	}
	m := Reduce(len(xs), opts, xs[0],
		func(a, b T) T {
			if a <= b {
				return a
			}
			return b
		},
		func(i int) T { return xs[i] })
	return m, true
}

// Count returns the number of indices i in [0, n) for which pred(i) holds.
func Count(n int, opts Options, pred func(i int) bool) int {
	return Reduce(n, opts, 0, func(a, b int) int { return a + b }, func(i int) int {
		if pred(i) {
			return 1
		}
		return 0
	})
}

// Map applies f to each element of src and writes the results into a new
// slice, in parallel.
func Map[S, T any](src []S, opts Options, f func(S) T) []T {
	dst := make([]T, len(src))
	MapInto(dst, src, opts, f)
	return dst
}

// MapInto applies f element-wise from src into dst; the slices must have
// equal length.
func MapInto[S, T any](dst []T, src []S, opts Options, f func(S) T) {
	if len(dst) != len(src) {
		panic("par: MapInto length mismatch")
	}
	ForRange(len(src), opts, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = f(src[i])
		}
	})
}

package par

import (
	"runtime"
	"testing"

	"repro/internal/racecheck"
	"repro/internal/scratch"
)

// The steady-state allocation contract: once the scratch pool and the
// executor's run-state free list are warm, a kernel call may allocate
// only its O(1) closure frames (a few dozen bytes; generic kernels
// carry a dictionary pointer per closure, which forces those frames to
// the heap) — never its O(n) or O(p·buckets) working buffers. The
// pre-arena baseline measured on this tree was Sum=6, Scan=7,
// Histogram=13, Pack=9 allocs per call with the large buffers
// dominating the bytes; TestScratchBytesReduction checks the byte-side
// claim directly.
const (
	maxSumAllocs  = 5
	maxScanAllocs = 5
	maxHistAllocs = 5
	maxPackAllocs = 5
)

func TestSteadyStateAllocs(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("race instrumentation allocates")
	}
	n := 1 << 16
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i * 7)
	}
	dst := make([]int64, n)
	hist := make([]int, 256)
	idx := make([]int, n)
	opts := Options{Procs: 4}

	check := func(name string, limit float64, f func()) {
		t.Helper()
		f() // warm the pools
		if got := testing.AllocsPerRun(100, f); got > limit {
			t.Errorf("%s: %.1f allocs/run at steady state, want <= %.0f", name, got, limit)
		}
	}
	check("Sum", maxSumAllocs, func() { Sum(xs, opts) })
	check("ScanInclusive", maxScanAllocs, func() {
		ScanInclusive(dst, xs, opts, 0, func(a, b int64) int64 { return a + b })
	})
	check("HistogramInto", maxHistAllocs, func() {
		HistogramInto(hist, xs, opts, func(v int64) int { return int(v & 255) })
	})
	check("PackInto", maxPackAllocs, func() {
		PackInto(dst, xs, opts, func(v int64) bool { return v&1 == 0 })
	})
	check("PackIndexInto", maxPackAllocs, func() {
		PackIndexInto(idx, n, opts, func(i int) bool { return xs[i]&1 == 0 })
	})
	check("Reduce", maxSumAllocs, func() {
		Reduce(n, opts, int64(0), func(a, b int64) int64 { return a + b }, func(i int) int64 { return xs[i] })
	})
}

// bytesPerCall measures heap bytes allocated per call of f using the
// monotone TotalAlloc counter (single-goroutine accounting is close
// enough for a ratio test).
func bytesPerCall(runs int, f func()) float64 {
	f()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.TotalAlloc-before.TotalAlloc) / float64(runs)
}

// TestScratchBytesReduction is the acceptance check for the arena
// subsystem: with scratch on, the steady-state bytes per call of the
// buffer-heavy kernels drop by at least 90% versus scratch off (the
// allocate-per-call baseline).
func TestScratchBytesReduction(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("race instrumentation allocates")
	}
	n := 1 << 16
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i*2654435761) % 10007
	}
	hist := make([]int, 512)
	on := Options{Procs: 4}
	off := Options{Procs: 4, Scratch: scratch.Off}

	// Histogram is the buffer-heavy par kernel: its private count
	// matrix is p×buckets ints per call without scratch. (Scan's pooled
	// partial is only p elements, so its byte win is real but small;
	// the sort-level equivalent of this test lives in internal/psort.)
	cases := []struct {
		name     string
		with, no func()
	}{
		{"HistogramInto",
			func() { HistogramInto(hist, xs, on, func(v int64) int { return int(v) & 511 }) },
			func() { HistogramInto(hist, xs, off, func(v int64) int { return int(v) & 511 }) }},
	}
	for _, c := range cases {
		got := bytesPerCall(50, c.with)
		base := bytesPerCall(50, c.no)
		t.Logf("%s: %.0f B/call with scratch vs %.0f B/call without", c.name, got, base)
		if got > base*0.10 {
			t.Errorf("%s: scratch saves only %.0f%% of bytes, want >= 90%%",
				c.name, 100*(1-got/base))
		}
	}
}

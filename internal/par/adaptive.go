package par

import (
	"runtime"
	"time"

	"repro/internal/adapt"
)

// Named adaptive sites for the library primitives. Each primitive's
// fork/join decision is keyed here (overridable per call via
// Options.Site), so e.g. a scan serving 1K-element requests and a scan
// serving 16M-element requests learn independent parameters.
var (
	siteScan    = adapt.NewSite("par.Scan", adapt.KindWorkers)
	siteReduce  = adapt.NewSite("par.Reduce", adapt.KindWorkers)
	sitePack    = adapt.NewSite("par.Pack", adapt.KindWorkers)
	sitePackIdx = adapt.NewSite("par.PackIndex", adapt.KindWorkers)
	siteHist    = adapt.NewSite("par.Histogram", adapt.KindWorkers)
	siteMerge   = adapt.NewSite("par.Merge", adapt.KindWorkers)
)

// Measure tracks one adaptive kernel call from decision to feedback.
// The zero Measure (adaptation off, degraded or converged decision) is
// inert; Done on it is a no-op, so call paths need no branching.
type Measure struct {
	ctl *adapt.Controller
	tok adapt.Token
	t0  time.Time
	n   int
}

// BeginAdaptive resolves the adaptive controller's decision for a
// kernel call of n elements and returns the Options to run with plus
// the Measure to Done() when the call finishes. When opts.Adaptive is
// nil (or there is nothing to tune) it returns opts unchanged and an
// inert Measure. opts.Site, when set, overrides site — that is how
// kernels give one primitive distinct per-phase identities.
//
// The returned Options have Adaptive and Site cleared: the decision
// covers the whole kernel call, so nested primitive calls run with the
// decided parameters instead of re-tuning (and re-timing) inside the
// measured region. That contract is enforced even against kernels that
// restore Adaptive on derived Options (psel keeps it set so its
// count/pack phases learn per round; pipeline stages pass it through
// to psort and par.Merge): the returned Options carry a reentrancy
// mark, and a nested BeginAdaptive that sees the mark is inert — no
// decision, no token, no timing — so the outer site's EWMA only ever
// sees its own whole-call measurements.
func BeginAdaptive(site *adapt.Site, n int, opts Options) (Options, Measure) {
	ctl := opts.Adaptive
	if ctl == nil {
		return opts, Measure{}
	}
	if opts.Site != nil {
		site = opts.Site
	}
	opts.Adaptive = nil
	opts.Site = nil
	if opts.inMeasured {
		// Reentrancy guard: an enclosing region already decided the
		// parameters and owns the timing; run with them as-is.
		return opts, Measure{}
	}
	if n <= 0 || site == nil {
		return opts, Measure{}
	}
	p := opts.procs()
	if p > n {
		p = n
	}
	if p <= 1 {
		return opts, Measure{}
	}
	d, tok := ctl.Decide(site, n, p, opts.executor().Occupancy())
	opts = applyDecision(opts, d)
	opts.inMeasured = true
	if !tok.Valid() {
		return opts, Measure{}
	}
	return opts, Measure{ctl: ctl, tok: tok, n: n, t0: time.Now()}
}

// Done records the elapsed wall-clock time of the call the Measure was
// issued for. Inert Measures ignore it.
func (m Measure) Done() {
	if m.ctl == nil {
		return
	}
	m.ctl.Record(m.tok, time.Since(m.t0).Seconds(), m.n)
}

// applyDecision overlays a controller decision onto the caller's
// Options. A serial decision collapses to one worker; a parallel one
// pins the decided worker count, overrides grain/policy where the
// lattice tunes them, and sets SerialCutoff to 1 — the lattice's
// serial candidate, not a static threshold, owns the cutoff now.
func applyDecision(opts Options, d adapt.Decision) Options {
	if d.Serial {
		opts.Procs = 1
		return opts
	}
	opts.Procs = d.Procs
	if d.Grain > 0 {
		opts.Grain = d.Grain
	}
	if d.Policy >= 0 {
		opts.Policy = Policy(d.Policy)
	}
	opts.SerialCutoff = 1
	return opts
}

// callerPC identifies the call site of the exported par function that
// (transitively) invoked it: the frame three logical hops up —
// runtime.Callers, callerPC, the par entry point, then its caller.
func callerPC() uintptr {
	var pcs [1]uintptr
	if runtime.Callers(3, pcs[:]) == 0 {
		return 0
	}
	return pcs[0]
}

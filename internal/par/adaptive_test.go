package par

import (
	"testing"

	"repro/internal/adapt"
	"repro/internal/racecheck"
)

// exploring returns a controller pinned mid-exploration: epsilon 1 and
// a convergence horizon it never reaches, so every call tries a fresh
// candidate.
func exploring() *adapt.Controller {
	return adapt.New(adapt.Config{Epsilon: 1, ConvergeAfter: 1 << 30, Seed: 42})
}

// TestPolicyOrderMatchesAdapt pins the cross-package contract: adapt
// encodes schedule policies as indices into par.Policies declaration
// order (it cannot import par), so that order must never change
// silently.
func TestPolicyOrderMatchesAdapt(t *testing.T) {
	want := []Policy{Static, Cyclic, Dynamic, Guided}
	for i, p := range want {
		if int(p) != i {
			t.Fatalf("Policy %v = %d, adapt assumes %d", p, int(p), i)
		}
		if Policies[i] != p {
			t.Fatalf("Policies[%d] = %v, want %v", i, Policies[i], p)
		}
	}
}

// TestAdaptiveResultsIdenticalMidExploration is the par-level slice of
// the differential contract: while the controller is still exploring
// (every call may pick a different candidate), results must be
// bit-identical to the sequential oracle.
func TestAdaptiveResultsIdenticalMidExploration(t *testing.T) {
	ctl := exploring()
	n := 40_000
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i*2654435761) % 1009
	}
	wantScan := make([]int64, n)
	var acc int64
	for i, x := range xs {
		acc += x
		wantScan[i] = acc
	}
	var wantSum int64
	for _, x := range xs {
		wantSum += x
	}
	opts := Options{Procs: 4, Adaptive: ctl}
	dst := make([]int64, n)
	for round := 0; round < 24; round++ {
		ScanInclusive(dst, xs, opts, 0, func(a, b int64) int64 { return a + b })
		for i := range dst {
			if dst[i] != wantScan[i] {
				t.Fatalf("round %d: scan[%d] = %d, want %d", round, i, dst[i], wantScan[i])
			}
		}
		if got := Sum(xs, opts); got != wantSum {
			t.Fatalf("round %d: sum = %d, want %d", round, got, wantSum)
		}
		k := PackInto(dst, xs, opts, func(v int64) bool { return v&1 == 0 })
		want := 0
		for _, x := range xs {
			if x&1 == 0 {
				if dst[want] != x {
					t.Fatalf("round %d: pack[%d] = %d, want %d", round, want, dst[want], x)
				}
				want++
			}
		}
		if k != want {
			t.Fatalf("round %d: pack count = %d, want %d", round, k, want)
		}
	}
	if st := ctl.Stats(); st.Decisions == 0 || st.Explorations == 0 {
		t.Fatalf("controller never explored: %+v", st)
	}
}

// TestAdaptivePCSitesDistinguishLoops checks that two distinct For
// call sites get distinct learned state.
func TestAdaptivePCSitesDistinguishLoops(t *testing.T) {
	ctl := exploring()
	opts := Options{Procs: 4, Adaptive: ctl}
	xs := make([]int64, 8192)
	For(len(xs), opts, func(i int) { xs[i] = int64(i) })
	For(len(xs), opts, func(i int) { xs[i] += 1 })
	if st := ctl.Stats(); st.Sites < 2 {
		t.Fatalf("two For sites produced %d adaptive sites, want >= 2", st.Sites)
	}
}

// TestAdaptiveSerialDecisionStillCorrect drives a tiny input where the
// lattice's serial candidate is in play and checks both paths agree.
func TestAdaptiveSerialDecisionStillCorrect(t *testing.T) {
	ctl := exploring()
	opts := Options{Procs: 4, Adaptive: ctl, SerialCutoff: 1}
	xs := []int64{5, 1, 4, 1, 5, 9, 2, 6}
	for round := 0; round < 30; round++ {
		if got := Sum(xs, opts); got != 33 {
			t.Fatalf("round %d: sum = %d, want 33", round, got)
		}
	}
}

// TestAdaptiveConvergedAllocs is the adaptive fast-path regression:
// once a (site, size-class) has converged, an adaptive call must cost
// zero allocations over the PR 2 steady-state baseline — the decision
// is two atomic loads, with no timing and no boxing.
func TestAdaptiveConvergedAllocs(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("race instrumentation allocates")
	}
	ctl := adapt.New(adapt.Config{ConvergeAfter: 24})
	n := 1 << 16
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i * 7)
	}
	dst := make([]int64, n)
	hist := make([]int, 256)
	base := Options{Procs: 4}
	ad := Options{Procs: 4, Adaptive: ctl}

	check := func(name string, run func(Options)) {
		t.Helper()
		// Alloc counts jitter on few-core boxes: fork/join state
		// recycling depends on which worker deposits the last token,
		// and a GC during a measurement empties the scratch pools, so
		// a single pair of measurements occasionally reads the
		// adaptive side a run or two high. A genuine converged-path
		// regression is stable, so it fails every attempt; jitter does
		// not.
		var baseline, got float64
		for attempt := 0; attempt < 5; attempt++ {
			for i := 0; i < 64; i++ { // warm pools and converge the site
				run(ad)
			}
			baseline = testing.AllocsPerRun(100, func() { run(base) })
			got = testing.AllocsPerRun(100, func() { run(ad) })
			if got <= baseline {
				return
			}
		}
		t.Errorf("%s: adaptive converged path %.1f allocs/run vs %.1f baseline", name, got, baseline)
	}
	check("ScanInclusive", func(o Options) {
		ScanInclusive(dst, xs, o, 0, func(a, b int64) int64 { return a + b })
	})
	check("HistogramInto", func(o Options) {
		HistogramInto(hist, xs, o, func(v int64) int { return int(v & 255) })
	})
	check("Sum", func(o Options) { Sum(xs, o) })
	if !ctl.Converged(siteScan, n) || !ctl.Converged(siteHist, n) || !ctl.Converged(siteReduce, n) {
		t.Fatalf("sites failed to converge during warmup: %+v", ctl.Stats())
	}
}

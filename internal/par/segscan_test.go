package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func segRef(xs []int64, flags []bool) []int64 {
	out := make([]int64, len(xs))
	var acc int64
	for i := range xs {
		if i == 0 || flags[i] {
			acc = 0
		}
		acc += xs[i]
		out[i] = acc
	}
	return out
}

func TestSegSumsMatchesReference(t *testing.T) {
	for _, opts := range []Options{
		{Procs: 1}, {Procs: 2, Grain: 1}, {Procs: 4, Grain: 7}, {Procs: 8, Grain: 100},
	} {
		for _, n := range []int{0, 1, 2, 100, 1000} {
			r := rng.New(uint64(n) + 1)
			xs := make([]int64, n)
			flags := make([]bool, n)
			for i := range xs {
				xs[i] = int64(r.Intn(100))
				flags[i] = r.Intn(5) == 0
			}
			want := segRef(xs, flags)
			dst := make([]int64, n)
			SegSums(dst, xs, flags, opts)
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("opts=%+v n=%d: seg scan[%d] = %d, want %d", opts, n, i, dst[i], want[i])
				}
			}
		}
	}
}

func TestSegScanNoFlagsEqualsScan(t *testing.T) {
	n := 777
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i % 9)
	}
	flags := make([]bool, n)
	a := make([]int64, n)
	b := make([]int64, n)
	SegSums(a, xs, flags, Options{Procs: 4, Grain: 8})
	ScanInclusive(b, xs, Options{Procs: 4, Grain: 8}, 0, func(x, y int64) int64 { return x + y })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flagless segmented scan differs at %d", i)
		}
	}
}

func TestSegScanAllFlagsIsIdentity(t *testing.T) {
	xs := []int64{5, 7, 9, 11}
	flags := []bool{true, true, true, true}
	dst := make([]int64, 4)
	SegSums(dst, xs, flags, Options{Procs: 2, Grain: 1})
	for i := range xs {
		if dst[i] != xs[i] {
			t.Fatalf("every-element segments: got %v", dst)
		}
	}
}

func TestSegScanAliasing(t *testing.T) {
	xs := []int64{1, 2, 3, 4, 5, 6}
	flags := []bool{false, false, false, true, false, false}
	SegSums(xs, xs, flags, Options{Procs: 3, Grain: 1})
	want := []int64{1, 3, 6, 4, 9, 15}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("aliased = %v, want %v", xs, want)
		}
	}
}

func TestSegScanQuick(t *testing.T) {
	f := func(raw []uint8, flagBits []bool, procs uint8) bool {
		n := len(raw)
		if len(flagBits) < n {
			flagBits = append(flagBits, make([]bool, n-len(flagBits))...)
		}
		xs := make([]int64, n)
		for i, v := range raw {
			xs[i] = int64(v)
		}
		flags := flagBits[:n]
		want := segRef(xs, flags)
		dst := make([]int64, n)
		SegSums(dst, xs, flags, Options{Procs: int(procs%8) + 1, Grain: 1})
		for i := range want {
			if dst[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatterPermute(t *testing.T) {
	src := []int64{10, 20, 30, 40}
	idx := []int{3, 0, 2, 1}
	dst := make([]int64, 4)
	Gather(dst, src, idx, Options{Procs: 2, Grain: 1})
	want := []int64{40, 10, 30, 20}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Gather = %v", dst)
		}
	}
	dst2 := make([]int64, 4)
	Scatter(dst2, src, idx, Options{Procs: 2, Grain: 1})
	want2 := []int64{20, 40, 30, 10}
	for i := range want2 {
		if dst2[i] != want2[i] {
			t.Fatalf("Scatter = %v", dst2)
		}
	}
	xs := append([]int64(nil), src...)
	Permute(xs, idx, Options{Procs: 2, Grain: 1})
	for i := range want2 {
		if xs[i] != want2[i] {
			t.Fatalf("Permute = %v", xs)
		}
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	r := rng.New(3)
	n := 1000
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i)
	}
	perm := r.Perm(n)
	inv := make([]int, n)
	for i, p := range perm {
		inv[p] = i
	}
	opts := Options{Procs: 4, Grain: 16}
	Permute(xs, perm, opts)
	Permute(xs, inv, opts)
	for i := range xs {
		if xs[i] != int64(i) {
			t.Fatalf("perm∘inv not identity at %d", i)
		}
	}
}

func TestGatherPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Gather(make([]int, 2), []int{1}, []int{0, 0, 0}, Options{})
}

func TestForEachNoError(t *testing.T) {
	if err := ForEach(1000, Options{Procs: 4, Grain: 8}, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(0, Options{}, func(i int) error { return errors.New("x") }); err != nil {
		t.Fatal("body ran for n=0")
	}
}

func TestForEachReturnsSmallestIndexError(t *testing.T) {
	for _, opts := range []Options{{Procs: 1}, {Procs: 4, Grain: 1}, {Procs: 8, Policy: Dynamic, Grain: 3}} {
		err := ForEach(1000, opts, func(i int) error {
			if i%100 == 7 {
				return fmt.Errorf("fail@%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail@7" {
			t.Fatalf("opts=%+v: err = %v, want fail@7", opts, err)
		}
	}
}

func TestForEachSkipsAfterFailure(t *testing.T) {
	// With a failure at index 0 and static scheduling, most later chunks
	// should be skipped (best effort: at least not all indices run).
	var ran atomic32
	err := ForEach(100000, Options{Procs: 2, Grain: 64}, func(i int) error {
		ran.inc()
		if i == 0 {
			return errors.New("early")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error lost")
	}
	if ran.load() == 100000 {
		t.Log("note: all indices ran despite early failure (legal but unexpected)")
	}
}

type atomic32 struct{ v atomic.Int32 }

func (a *atomic32) inc()        { a.v.Add(1) }
func (a *atomic32) load() int32 { return a.v.Load() }

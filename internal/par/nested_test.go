package par

import (
	"sync/atomic"
	"testing"

	"repro/internal/exec"
)

// The nested-parallelism contract: par primitives called from inside
// other par bodies (or from sched tasks — see internal/sched's tests)
// must neither deadlock nor miss iterations, even when the pool is far
// smaller than the nesting would demand. Run these under -race.

func nestedOpts(e *exec.Executor, pol Policy) Options {
	return Options{Procs: 4, Policy: pol, Grain: 2, Executor: e}
}

// TestNestedForAllPolicies nests every outer policy with every inner
// policy on a deliberately tiny dedicated pool.
func TestNestedForAllPolicies(t *testing.T) {
	e := exec.New(2)
	defer e.Close()
	const outer, inner = 8, 16
	for _, outerPol := range Policies {
		for _, innerPol := range Policies {
			hits := make([][]atomic.Int32, outer)
			for i := range hits {
				hits[i] = make([]atomic.Int32, inner)
			}
			For(outer, nestedOpts(e, outerPol), func(i int) {
				For(inner, nestedOpts(e, innerPol), func(j int) {
					hits[i][j].Add(1)
				})
			})
			for i := range hits {
				for j := range hits[i] {
					if got := hits[i][j].Load(); got != 1 {
						t.Fatalf("%v in %v: body(%d,%d) ran %d times, want 1",
							innerPol, outerPol, i, j, got)
					}
				}
			}
		}
	}
}

// TestNestedOnDefaultExecutor exercises the shared process-wide pool,
// which other tests and callers use concurrently.
func TestNestedOnDefaultExecutor(t *testing.T) {
	const outer, inner = 16, 64
	var sum atomic.Int64
	For(outer, Options{Grain: 1}, func(i int) {
		For(inner, Options{Grain: 4, Policy: Dynamic}, func(j int) {
			sum.Add(int64(i*inner + j))
		})
	})
	n := int64(outer * inner)
	if want := n * (n - 1) / 2; sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

// TestTripleNesting drives three levels of nesting through reductions
// and scans, mixing primitives the kernels compose in practice.
func TestTripleNesting(t *testing.T) {
	e := exec.New(2)
	defer e.Close()
	opts := Options{Procs: 3, Grain: 2, Executor: e}
	xs := make([]int64, 32)
	for i := range xs {
		xs[i] = int64(i)
	}
	total := Reduce(4, opts, int64(0), func(a, b int64) int64 { return a + b }, func(i int) int64 {
		dst := make([]int64, len(xs))
		ScanInclusive(dst, xs, opts, 0, func(a, b int64) int64 { return a + b })
		return Sum(dst, opts)
	})
	var want int64
	acc := int64(0)
	for _, x := range xs {
		acc += x
		want += acc
	}
	if total != 4*want {
		t.Fatalf("total = %d, want %d", total, 4*want)
	}
}

// TestGuidedCASExact verifies the CAS-based guided cursor covers every
// index exactly once under maximal contention (tiny grain, many procs).
func TestGuidedCASExact(t *testing.T) {
	const n = 10000
	hits := make([]atomic.Int32, n)
	For(n, Options{Procs: 16, Policy: Guided, Grain: 1}, func(i int) {
		hits[i].Add(1)
	})
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times, want 1", i, got)
		}
	}
}

// TestGuidedChunkShapes checks the guided schedule still produces
// shrinking chunk sizes down to the grain floor.
func TestGuidedChunkShapes(t *testing.T) {
	var cursor atomic.Int64
	n, p, grain := 1000, 4, 10
	prev := n + 1
	covered := 0
	for {
		lo, hi, ok := guidedGrab(&cursor, n, p, grain)
		if !ok {
			break
		}
		size := hi - lo
		if size > prev {
			t.Fatalf("chunk grew: %d after %d", size, prev)
		}
		if size < grain && hi != n {
			t.Fatalf("interior chunk %d below grain %d", size, grain)
		}
		if lo != covered {
			t.Fatalf("gap: chunk starts at %d, expected %d", lo, covered)
		}
		covered = hi
		prev = size
	}
	if covered != n {
		t.Fatalf("covered %d of %d", covered, n)
	}
}

// TestForWorkersSlotIdentity confirms every slot index is delivered
// exactly once even when slots outnumber pool workers.
func TestForWorkersSlotIdentity(t *testing.T) {
	e := exec.New(1)
	defer e.Close()
	const p = 33
	hits := make([]atomic.Int32, p)
	ForWorkers(p, Options{Executor: e}, func(w int) { hits[w].Add(1) })
	for w := range hits {
		if got := hits[w].Load(); got != 1 {
			t.Fatalf("slot %d ran %d times, want 1", w, got)
		}
	}
}

package par

import "repro/internal/scratch"

// Scan primitives implement parallel prefix sums, the canonical PRAM
// building block (Blelloch 1990). The implementation is the practical
// two-sweep blocked algorithm rather than the O(log n)-depth tree:
//
//	sweep 1: P workers reduce their contiguous block to a partial sum;
//	         the P partials are exclusively scanned sequentially;
//	sweep 2: each worker rescans its block seeded with its offset.
//
// This performs 2n operations versus n sequentially — the factor-of-two
// work overhead every treatment of parallel scan calls out — so speedup
// is bounded by P/2 relative to the sequential sweep. Experiment E1
// measures exactly this bound.

// ScanInclusive computes dst[i] = xs[0] ⊕ ... ⊕ xs[i] with an associative
// operator. dst and xs must have equal length; dst may alias xs.
func ScanInclusive[T any](dst, xs []T, opts Options, identity T, combine func(T, T) T) {
	scan(dst, xs, opts, identity, combine, true)
}

// ScanExclusive computes dst[i] = identity ⊕ xs[0] ⊕ ... ⊕ xs[i-1].
// dst and xs must have equal length; dst may alias xs.
func ScanExclusive[T any](dst, xs []T, opts Options, identity T, combine func(T, T) T) {
	scan(dst, xs, opts, identity, combine, false)
}

func scan[T any](dst, xs []T, opts Options, identity T, combine func(T, T) T, inclusive bool) {
	n := len(xs)
	if len(dst) != n {
		panic("par: scan length mismatch")
	}
	if n == 0 {
		return
	}
	opts, m := BeginAdaptive(siteScan, n, opts)
	defer m.Done()
	p := opts.procs()
	if p > n {
		p = n
	}
	if p == 1 || n <= opts.serialCutoff() {
		scanSeq(dst, xs, identity, combine, inclusive)
		return
	}
	// Sweep 1: per-block reductions. The partials come from the scratch
	// pool so the steady-state path allocates nothing.
	partial, ph := scratch.Get[T](opts.Scratch, p)
	defer scratch.Put(ph)
	ForWorkers(p, opts, func(w int) {
		lo := w * n / p
		hi := (w + 1) * n / p
		acc := identity
		for i := lo; i < hi; i++ {
			acc = combine(acc, xs[i])
		}
		partial[w] = acc
	})
	// Exclusive scan of the P partials (sequential; P is small).
	acc := identity
	for w := 0; w < p; w++ {
		partial[w], acc = acc, combine(acc, partial[w])
	}
	// Sweep 2: rescan each block seeded with its offset.
	ForWorkers(p, opts, func(w int) {
		lo := w * n / p
		hi := (w + 1) * n / p
		acc := partial[w]
		if inclusive {
			for i := lo; i < hi; i++ {
				acc = combine(acc, xs[i])
				dst[i] = acc
			}
		} else {
			for i := lo; i < hi; i++ {
				next := combine(acc, xs[i])
				dst[i] = acc
				acc = next
			}
		}
	})
}

func scanSeq[T any](dst, xs []T, identity T, combine func(T, T) T, inclusive bool) {
	acc := identity
	if inclusive {
		for i, x := range xs {
			acc = combine(acc, x)
			dst[i] = acc
		}
		return
	}
	for i, x := range xs {
		next := combine(acc, x)
		dst[i] = acc
		acc = next
	}
}

// PrefixSums computes the exclusive prefix sums of counts and the grand
// total, the idiom used by every counting/packing kernel in the library
// (sample sort bucket placement, radix sort, pack, CSR construction).
// The offsets are freshly allocated; steady-state callers that own a
// destination should use PrefixSumsInto.
func PrefixSums(counts []int, opts Options) (offsets []int, total int) {
	offsets = make([]int, len(counts))
	total = PrefixSumsInto(offsets, counts, opts)
	return offsets, total
}

// PrefixSumsInto is PrefixSums writing into a caller-owned offsets
// slice (len(offsets) == len(counts)), the allocation-free form the
// kernels use with scratch buffers.
func PrefixSumsInto(offsets, counts []int, opts Options) (total int) {
	ScanExclusive(offsets, counts, opts, 0, func(a, b int) int { return a + b })
	if n := len(counts); n > 0 {
		total = offsets[n-1] + counts[n-1]
	}
	return total
}

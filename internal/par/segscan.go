package par

// Segmented scan (Blelloch): prefix sums restarted at segment heads.
// It is the workhorse primitive behind nested data parallelism — the
// flattened representation of "scan each subsequence independently" —
// and underlies parallel quicksort partitioning, sparse matrix-vector
// products and graph contraction in the scan-vector model.
//
// Segments are described by a flags array: flags[i] marks the start of a
// new segment at position i (position 0 is always a segment start,
// flagged or not).
//
// The implementation lifts the segmented operator to pairs (value, flag)
// with the standard composition
//
//	(a, fa) ⊕ (b, fb) = (fb ? b : a∘b, fa ∨ fb)
//
// which is associative whenever ∘ is, so the ordinary two-sweep blocked
// scan applies unchanged.

// SegScanInclusive computes dst[i] = xs[j] ∘ ... ∘ xs[i] where j is the
// start of i's segment. dst may alias xs; flags must have equal length.
func SegScanInclusive[T any](dst, xs []T, flags []bool, opts Options, identity T, combine func(T, T) T) {
	n := len(xs)
	if len(dst) != n || len(flags) != n {
		panic("par: SegScanInclusive length mismatch")
	}
	if n == 0 {
		return
	}
	type seg struct {
		v T
		f bool
	}
	segCombine := func(a, b seg) seg {
		if b.f {
			return seg{v: b.v, f: true}
		}
		return seg{v: combine(a.v, b.v), f: a.f}
	}
	// Two-sweep blocked scan over the lifted operator, fused so the
	// lifted pairs never materialize as a full array.
	p := opts.procs()
	if p > n {
		p = n
	}
	if p == 1 || n <= opts.serialCutoff() {
		acc := seg{v: identity}
		for i := 0; i < n; i++ {
			acc = segCombine(acc, seg{v: xs[i], f: flags[i]})
			dst[i] = acc.v
		}
		return
	}
	partial := make([]seg, p)
	ForWorkers(p, opts, func(w int) {
		lo, hi := w*n/p, (w+1)*n/p
		acc := seg{v: identity}
		for i := lo; i < hi; i++ {
			acc = segCombine(acc, seg{v: xs[i], f: flags[i]})
		}
		partial[w] = acc
	})
	acc := seg{v: identity}
	for w := 0; w < p; w++ {
		partial[w], acc = acc, segCombine(acc, partial[w])
	}
	ForWorkers(p, opts, func(w int) {
		lo, hi := w*n/p, (w+1)*n/p
		acc := partial[w]
		for i := lo; i < hi; i++ {
			acc = segCombine(acc, seg{v: xs[i], f: flags[i]})
			dst[i] = acc.v
		}
	})
}

// SegSums is SegScanInclusive specialized to integer addition.
func SegSums(dst, xs []int64, flags []bool, opts Options) {
	SegScanInclusive(dst, xs, flags, opts, 0, func(a, b int64) int64 { return a + b })
}

// Gather copies src[idx[i]] into dst[i] in parallel. idx entries must be
// valid indices into src.
func Gather[T any](dst, src []T, idx []int, opts Options) {
	if len(dst) != len(idx) {
		panic("par: Gather length mismatch")
	}
	ForRange(len(idx), opts, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = src[idx[i]]
		}
	})
}

// Scatter copies src[i] into dst[idx[i]] in parallel. idx must be a
// permutation-like mapping with no duplicate destinations, otherwise the
// result for the duplicated slot is unspecified (exclusive-write PRAM
// convention).
func Scatter[T any](dst, src []T, idx []int, opts Options) {
	if len(src) != len(idx) {
		panic("par: Scatter length mismatch")
	}
	ForRange(len(src), opts, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[idx[i]] = src[i]
		}
	})
}

// Permute permutes xs in place according to perm (dst position perm[i]
// receives xs[i]) using O(n) scratch; perm must be a permutation.
func Permute[T any](xs []T, perm []int, opts Options) {
	if len(xs) != len(perm) {
		panic("par: Permute length mismatch")
	}
	tmp := make([]T, len(xs))
	Scatter(tmp, xs, perm, opts)
	ForRange(len(xs), opts, func(lo, hi int) {
		copy(xs[lo:hi], tmp[lo:hi])
	})
}

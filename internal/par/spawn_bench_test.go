package par

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/exec"
)

// BenchmarkForSpawnVsPooled measures the dispatch overhead the
// persistent executor removes: the same parallel loop driven through
// the shared pooled runtime versus a goroutine-spawning executor (the
// pre-runtime behavior of par, one fresh goroutine per helper per
// call). The gap is widest at small n, where per-call spawn cost
// dominates the loop body.
func BenchmarkForSpawnVsPooled(b *testing.B) {
	spawning := exec.NewSpawning()
	for _, n := range []int{256, 1 << 12, 1 << 16} {
		for _, mode := range []struct {
			name string
			e    *exec.Executor
		}{
			{"pooled", nil}, // nil = shared exec.Default()
			{"spawn", spawning},
		} {
			b.Run(fmt.Sprintf("%s/n=%d", mode.name, n), func(b *testing.B) {
				var sink atomic.Int64
				// Procs is pinned above GOMAXPROCS so dispatch overhead is
				// exercised even on small hosts; the executor bounds its
				// helper count to the pool size, the spawning baseline
				// spawns one goroutine per requested worker — exactly the
				// per-call cost this benchmark exposes.
				opts := Options{Procs: 8, Grain: 64, Executor: mode.e}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					var local int64
					ForRange(n, opts, func(lo, hi int) {
						s := int64(0)
						for j := lo; j < hi; j++ {
							s += int64(j)
						}
						atomic.AddInt64(&local, s)
					})
					sink.Store(local)
				}
			})
		}
	}
}

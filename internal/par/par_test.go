package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

// allOptions enumerates representative schedules and worker counts the
// primitive tests sweep over.
func allOptions() []Options {
	var out []Options
	for _, p := range []int{0, 1, 2, 3, 4, 8} {
		for _, pol := range Policies {
			for _, g := range []int{0, 1, 7, 100} {
				out = append(out, Options{Procs: p, Policy: pol, Grain: g})
			}
		}
	}
	return out
}

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, opts := range allOptions() {
		for _, n := range []int{0, 1, 2, 10, 1000, 1023} {
			hits := make([]int32, n)
			For(n, opts, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("opts=%+v n=%d: index %d visited %d times", opts, n, i, h)
				}
			}
		}
	}
}

func TestForRangePartition(t *testing.T) {
	for _, opts := range allOptions() {
		n := 777
		hits := make([]int32, n)
		ForRange(n, opts, func(lo, hi int) {
			if lo >= hi {
				t.Errorf("opts=%+v: empty or inverted range [%d,%d)", opts, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("opts=%+v: index %d visited %d times", opts, i, h)
			}
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, Options{}, func(i int) { called = true })
	For(-5, Options{}, func(i int) { called = true })
	if called {
		t.Fatal("body called for non-positive n")
	}
}

func TestReduceSum(t *testing.T) {
	xs := make([]int64, 10000)
	var want int64
	for i := range xs {
		xs[i] = int64(i * 3)
		want += xs[i]
	}
	for _, opts := range allOptions() {
		got := Sum(xs, opts)
		if got != want {
			t.Fatalf("opts=%+v: Sum = %d, want %d", opts, got, want)
		}
	}
}

func TestReduceNonCommutative(t *testing.T) {
	// String concatenation is associative but not commutative; Reduce
	// must combine blocks in index order.
	n := 500
	want := ""
	for i := 0; i < n; i++ {
		want += string(rune('a' + i%26))
	}
	got := Reduce(n, Options{Procs: 7, Grain: 1}, "",
		func(a, b string) string { return a + b },
		func(i int) string { return string(rune('a' + i%26)) })
	if got != want {
		t.Fatalf("non-commutative reduce broke ordering")
	}
}

func TestReduceEmpty(t *testing.T) {
	got := Reduce(0, Options{}, 42, func(a, b int) int { return a + b }, func(i int) int { return 1 })
	if got != 42 {
		t.Fatalf("empty reduce = %d, want identity 42", got)
	}
}

func TestMaxMin(t *testing.T) {
	xs := []int{5, -3, 17, 0, 17, -8, 2}
	if m, ok := Max(xs, Options{Procs: 3, Grain: 1}); !ok || m != 17 {
		t.Fatalf("Max = %d,%v", m, ok)
	}
	if m, ok := Min(xs, Options{Procs: 3, Grain: 1}); !ok || m != -8 {
		t.Fatalf("Min = %d,%v", m, ok)
	}
	if _, ok := Max([]int{}, Options{}); ok {
		t.Fatal("Max of empty reported ok")
	}
	if _, ok := Min([]int{}, Options{}); ok {
		t.Fatal("Min of empty reported ok")
	}
}

func TestCount(t *testing.T) {
	got := Count(1000, Options{Procs: 4, Grain: 10}, func(i int) bool { return i%3 == 0 })
	want := 334 // 0,3,...,999
	if got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}

func TestMap(t *testing.T) {
	src := []int{1, 2, 3, 4, 5}
	got := Map(src, Options{Procs: 2, Grain: 1}, func(x int) int { return x * x })
	for i, v := range got {
		if v != src[i]*src[i] {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
}

func TestMapIntoLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	MapInto(make([]int, 3), []int{1, 2}, Options{}, func(x int) int { return x })
}

func TestScanInclusiveMatchesSequential(t *testing.T) {
	for _, opts := range allOptions() {
		for _, n := range []int{0, 1, 2, 100, 1000} {
			xs := make([]int, n)
			for i := range xs {
				xs[i] = i%7 - 3
			}
			dst := make([]int, n)
			ScanInclusive(dst, xs, opts, 0, func(a, b int) int { return a + b })
			acc := 0
			for i, x := range xs {
				acc += x
				if dst[i] != acc {
					t.Fatalf("opts=%+v n=%d: inclusive scan[%d] = %d, want %d", opts, n, i, dst[i], acc)
				}
			}
		}
	}
}

func TestScanExclusiveMatchesSequential(t *testing.T) {
	for _, opts := range allOptions() {
		n := 513
		xs := make([]int, n)
		for i := range xs {
			xs[i] = i + 1
		}
		dst := make([]int, n)
		ScanExclusive(dst, xs, opts, 0, func(a, b int) int { return a + b })
		acc := 0
		for i, x := range xs {
			if dst[i] != acc {
				t.Fatalf("opts=%+v: exclusive scan[%d] = %d, want %d", opts, i, dst[i], acc)
			}
			acc += x
		}
	}
}

func TestScanInPlaceAliasing(t *testing.T) {
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	ScanInclusive(xs, xs, Options{Procs: 4, Grain: 1}, 0, func(a, b int) int { return a + b })
	want := []int{1, 3, 6, 10, 15, 21, 28, 36}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("aliased scan[%d] = %d, want %d", i, xs[i], want[i])
		}
	}
}

func TestScanNonCommutativeOperator(t *testing.T) {
	// Matrix-like 2x2 composition via affine maps f(x)=a*x+b represented
	// as pairs; composition is associative, not commutative.
	type affine struct{ a, b int }
	comp := func(f, g affine) affine { return affine{f.a * g.a, g.a*f.b + g.b} }
	id := affine{1, 0}
	n := 200
	xs := make([]affine, n)
	for i := range xs {
		xs[i] = affine{(i % 3) + 1, i % 5}
	}
	got := make([]affine, n)
	ScanInclusive(got, xs, Options{Procs: 5, Grain: 8}, id, comp)
	acc := id
	for i, x := range xs {
		acc = comp(acc, x)
		if got[i] != acc {
			t.Fatalf("non-commutative scan diverged at %d", i)
		}
	}
}

func TestPrefixSums(t *testing.T) {
	counts := []int{3, 0, 5, 1}
	offsets, total := PrefixSums(counts, Options{Procs: 2, Grain: 1})
	wantOff := []int{0, 3, 3, 8}
	if total != 9 {
		t.Fatalf("total = %d", total)
	}
	for i := range wantOff {
		if offsets[i] != wantOff[i] {
			t.Fatalf("offsets = %v", offsets)
		}
	}
	if _, total := PrefixSums(nil, Options{}); total != 0 {
		t.Fatal("empty PrefixSums total nonzero")
	}
}

func TestPackPreservesOrder(t *testing.T) {
	for _, opts := range allOptions() {
		n := 1000
		xs := make([]int, n)
		for i := range xs {
			xs[i] = i
		}
		got := Pack(xs, opts, func(x int) bool { return x%3 == 0 })
		prev := -1
		for _, v := range got {
			if v%3 != 0 || v <= prev {
				t.Fatalf("opts=%+v: bad pack output %v", opts, got[:min(10, len(got))])
			}
			prev = v
		}
		if len(got) != 334 {
			t.Fatalf("opts=%+v: pack count = %d", opts, len(got))
		}
	}
}

func TestPackIndex(t *testing.T) {
	got := PackIndex(100, Options{Procs: 4, Grain: 3}, func(i int) bool { return i%10 == 0 })
	want := []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90}
	if len(got) != len(want) {
		t.Fatalf("PackIndex = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PackIndex = %v", got)
		}
	}
}

func TestHistogram(t *testing.T) {
	for _, opts := range allOptions() {
		xs := make([]int, 10000)
		for i := range xs {
			xs[i] = i
		}
		h := Histogram(xs, 10, opts, func(x int) int { return x % 10 })
		for b, c := range h {
			if c != 1000 {
				t.Fatalf("opts=%+v: bucket %d = %d, want 1000", opts, b, c)
			}
		}
	}
}

func TestMergeStable(t *testing.T) {
	type kv struct{ k, src int }
	a := []kv{{1, 0}, {3, 0}, {3, 0}, {5, 0}}
	b := []kv{{1, 1}, {2, 1}, {3, 1}, {6, 1}}
	dst := make([]kv, len(a)+len(b))
	Merge(dst, a, b, Options{Procs: 4, Grain: 1}, func(x, y kv) bool { return x.k < y.k })
	// Sorted by k, with src=0 before src=1 on equal keys.
	for i := 1; i < len(dst); i++ {
		if dst[i-1].k > dst[i].k {
			t.Fatalf("merge not sorted: %v", dst)
		}
		if dst[i-1].k == dst[i].k && dst[i-1].src > dst[i].src {
			t.Fatalf("merge not stable: %v", dst)
		}
	}
}

func TestMergeQuick(t *testing.T) {
	f := func(av, bv []uint16, procs uint8) bool {
		a := make([]int, len(av))
		for i, v := range av {
			a[i] = int(v)
		}
		b := make([]int, len(bv))
		for i, v := range bv {
			b[i] = int(v)
		}
		insertion(a)
		insertion(b)
		dst := make([]int, len(a)+len(b))
		opts := Options{Procs: int(procs%8) + 1, Grain: 1}
		Merge(dst, a, b, opts, func(x, y int) bool { return x < y })
		// Result must be sorted and a permutation of the inputs.
		counts := map[int]int{}
		for _, v := range a {
			counts[v]++
		}
		for _, v := range b {
			counts[v]++
		}
		for i, v := range dst {
			if i > 0 && dst[i-1] > v {
				return false
			}
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func insertion(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

func TestPolicyString(t *testing.T) {
	names := map[Policy]string{Static: "static", Cyclic: "cyclic", Dynamic: "dynamic", Guided: "guided", Policy(99): "unknown"}
	for p, want := range names {
		if p.String() != want {
			t.Fatalf("Policy(%d).String() = %q", p, p.String())
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Package par provides loop-level parallel primitives — parallel for,
// map, reduce, scan (prefix sums), filter/pack, histogram, and merge —
// with explicit, selectable scheduling policies.
//
// The package encodes the central lesson of parallel algorithm
// engineering: the abstract algorithm (a parallel loop) and the schedule
// that maps iterations to processors are separate design decisions, and
// the right schedule depends on the work distribution of the input.
// Static schedules are cheapest on uniform work; guided/dynamic schedules
// pay per-chunk synchronization to fix the load imbalance caused by
// skewed (e.g. power-law) work. Experiment E10 quantifies the tradeoff.
//
// All schedules dispatch onto the persistent executor runtime
// (internal/exec): the process-wide worker pool by default, or a
// dedicated pool pinned via Options.Executor. No goroutine is spawned
// per call on the steady-state path, and nested parallel calls (a
// primitive invoked from inside another primitive's body, or from a
// sched task) are safe — the executor's caller-participation discipline
// degrades them toward inline execution instead of deadlocking.
// Working buffers (scan partials, pack counts, histogram privates)
// come from the scratch-arena pool (internal/scratch, selected by
// Options.Scratch), so steady-state calls allocate only O(1) closure
// frames; the *Into variants (PackInto, HistogramInto, PrefixSumsInto,
// PackIndexInto) extend that to the result buffers.
//
// All primitives are deterministic with respect to their results (order
// of side effects is not specified); scan and reduce require associative
// operators and are exact for integer types.
//
// Layering: par consumes exec (dispatch), scratch (partials,
// counts, privates) and adapt (per-site tuning via BeginAdaptive);
// it feeds every case-study kernel (psort, psel, plist, pmat,
// pstencil, pgraph), the pipeline stages, the serve batch loop,
// core's experiments and the repro facade.
package par

package par

import "sort"

// Merge merges two sorted slices into dst (len(dst) == len(a)+len(b))
// using the parallel merge-path technique: the output is cut into P equal
// ranges, the corresponding split points in a and b are located by binary
// search (the "co-rank" computation), and each range is merged
// independently. The merge is stable: on ties, elements of a precede
// elements of b. Total work is O(n + P log n) and depth O(n/P + log n).
func Merge[T any](dst, a, b []T, opts Options, less func(x, y T) bool) {
	n := len(a) + len(b)
	if len(dst) != n {
		panic("par: Merge destination length mismatch")
	}
	if n == 0 {
		return
	}
	opts, m := BeginAdaptive(siteMerge, n, opts)
	defer m.Done()
	p := opts.procs()
	if p > n {
		p = n
	}
	if p == 1 || n <= opts.serialCutoff() {
		mergeSeq(dst, a, b, less)
		return
	}
	ForWorkers(p, opts, func(w int) {
		kLo := w * n / p
		kHi := (w + 1) * n / p
		iLo, jLo := coRank(kLo, a, b, less)
		iHi, jHi := coRank(kHi, a, b, less)
		mergeSeq(dst[kLo:kHi], a[iLo:iHi], b[jLo:jHi], less)
	})
}

// coRank returns (i, j) with i+j == k such that the stable merge of a and
// b places exactly a[:i] and b[:j] in the first k output positions.
//
// Feasibility of a split (i, j) requires the cross conditions
//
//	b[j-1] <  a[i]   (strict: a wins ties, so an a-element equal to
//	                  b[j-1] must not be pushed after it), and
//	a[i-1] <= b[j].
//
// The first condition is monotone in i, so binary search over it finds
// the unique feasible split; the failure of the condition at i-1 is
// exactly the second condition at i.
func coRank[T any](k int, a, b []T, less func(x, y T) bool) (int, int) {
	lo := k - len(b)
	if lo < 0 {
		lo = 0
	}
	hi := k
	if hi > len(a) {
		hi = len(a)
	}
	i := lo + sort.Search(hi-lo, func(d int) bool {
		i := lo + d
		j := k - i
		if j == 0 {
			return true
		}
		// i < hi <= len(a) here, and j >= 1.
		return less(b[j-1], a[i])
	})
	return i, k - i
}

func mergeSeq[T any](dst, a, b []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	for i < len(a) {
		dst[k] = a[i]
		i++
		k++
	}
	for j < len(b) {
		dst[k] = b[j]
		j++
		k++
	}
}

package par

import (
	"testing"

	"repro/internal/adapt"
	"repro/internal/scratch"
)

// The concurrent-traffic benchmark models the ROADMAP's heavy-traffic
// scenario: many request goroutines each issuing small kernel calls
// (a histogram, a scan, a pack — the shape of a typical aggregation
// endpoint) against one process-wide runtime. Without scratch every
// call allocates its working buffers, so the aggregate allocation rate
// scales with request throughput and the GC becomes the bottleneck;
// with the pool, steady-state traffic recycles the same slabs.
//
// Run with -benchmem: the scratch=on variant should show both higher
// throughput and orders-of-magnitude fewer B/op.
func benchmarkTraffic(b *testing.B, opts Options) {
	const n = 8192
	base := make([]int64, n)
	for i := range base {
		base[i] = int64(i*2654435761) % 9973
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		xs := append([]int64(nil), base...)
		dst := make([]int64, n)
		hist := make([]int, 4096)
		req := Options{Procs: 2, SerialCutoff: 1024,
			Executor: opts.Executor, Scratch: opts.Scratch, Adaptive: opts.Adaptive}
		for pb.Next() {
			HistogramInto(hist, xs, req, func(v int64) int { return int(v) & 4095 })
			ScanInclusive(dst, xs, req, 0, func(a, b int64) int64 { return a + b })
			PackInto(dst, xs, req, func(v int64) bool { return v&7 == 0 })
		}
	})
}

func BenchmarkTrafficScratchOn(b *testing.B)  { benchmarkTraffic(b, Options{}) }
func BenchmarkTrafficScratchOff(b *testing.B) { benchmarkTraffic(b, Options{Scratch: scratch.Off}) }

// BenchmarkTrafficAdaptOn is the -adapt=on variant of the traffic
// scenario: the controller observes the saturated pool through the
// executor's occupancy gauge and sheds the per-request fork/joins
// (request concurrency is already the parallelism), so throughput
// should be at or above the fixed-grain BenchmarkTrafficScratchOn
// baseline.
func BenchmarkTrafficAdaptOn(b *testing.B) {
	benchmarkTraffic(b, Options{Adaptive: adapt.Default()})
}

package par

// Pack (also known as filter or stream compaction) copies the elements of
// xs satisfying pred into a new dense slice, preserving input order. It is
// the classic scan application: count per block, prefix-sum the counts to
// find output offsets, then copy per block — two passes, fully parallel,
// stable.
//
// pred must be pure: the two-pass structure evaluates it twice per
// element in the parallel path.
func Pack[T any](xs []T, opts Options, pred func(T) bool) []T {
	n := len(xs)
	if n == 0 {
		return nil
	}
	p := opts.procs()
	if p > n {
		p = n
	}
	if p == 1 || n <= opts.grain() {
		out := make([]T, 0, n/2)
		for _, x := range xs {
			if pred(x) {
				out = append(out, x)
			}
		}
		return out
	}
	counts := make([]int, p)
	ForWorkers(p, opts, func(w int) {
		lo := w * n / p
		hi := (w + 1) * n / p
		c := 0
		for i := lo; i < hi; i++ {
			if pred(xs[i]) {
				c++
			}
		}
		counts[w] = c
	})
	offsets, total := PrefixSums(counts, Options{Procs: 1})
	out := make([]T, total)
	ForWorkers(p, opts, func(w int) {
		lo := w * n / p
		hi := (w + 1) * n / p
		o := offsets[w]
		for i := lo; i < hi; i++ {
			if pred(xs[i]) {
				out[o] = xs[i]
				o++
			}
		}
	})
	return out
}

// PackIndex returns the indices i in [0, n) for which pred(i) holds, in
// ascending order. This form avoids materializing values and is the one
// used by the graph kernels to build frontiers.
//
// pred must be pure: the two-pass structure evaluates it twice per
// index in the parallel path.
func PackIndex(n int, opts Options, pred func(i int) bool) []int {
	if n == 0 {
		return nil
	}
	p := opts.procs()
	if p > n {
		p = n
	}
	if p == 1 || n <= opts.grain() {
		out := make([]int, 0, n/2)
		for i := 0; i < n; i++ {
			if pred(i) {
				out = append(out, i)
			}
		}
		return out
	}
	counts := make([]int, p)
	ForWorkers(p, opts, func(w int) {
		lo := w * n / p
		hi := (w + 1) * n / p
		c := 0
		for i := lo; i < hi; i++ {
			if pred(i) {
				c++
			}
		}
		counts[w] = c
	})
	offsets, total := PrefixSums(counts, Options{Procs: 1})
	out := make([]int, total)
	ForWorkers(p, opts, func(w int) {
		lo := w * n / p
		hi := (w + 1) * n / p
		o := offsets[w]
		for i := lo; i < hi; i++ {
			if pred(i) {
				out[o] = i
				o++
			}
		}
	})
	return out
}

// Histogram counts occurrences of bucket(x) in [0, buckets) over xs using
// per-worker private histograms merged at the end — the standard fix for
// the atomic-contention anti-pattern of a single shared count array.
func Histogram[T any](xs []T, buckets int, opts Options, bucket func(T) int) []int {
	n := len(xs)
	out := make([]int, buckets)
	if n == 0 || buckets == 0 {
		return out
	}
	p := opts.procs()
	if p > n {
		p = n
	}
	if p == 1 || n <= opts.grain() {
		for _, x := range xs {
			out[bucket(x)]++
		}
		return out
	}
	private := make([][]int, p)
	ForWorkers(p, opts, func(w int) {
		lo := w * n / p
		hi := (w + 1) * n / p
		h := make([]int, buckets)
		for i := lo; i < hi; i++ {
			h[bucket(xs[i])]++
		}
		private[w] = h
	})
	// Merge bucket-parallel: each worker sums a band of buckets.
	ForRange(buckets, Options{Procs: p, Grain: 64, Executor: opts.Executor}, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			s := 0
			for w := 0; w < p; w++ {
				s += private[w][b]
			}
			out[b] = s
		}
	})
	return out
}

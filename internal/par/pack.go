package par

import "repro/internal/scratch"

// Pack (also known as filter or stream compaction) copies the elements of
// xs satisfying pred into a new dense slice, preserving input order. It is
// the classic scan application: count per block, prefix-sum the counts to
// find output offsets, then copy per block — two passes, fully parallel,
// stable. Only the returned slice is freshly allocated; the counts and
// offsets come from the scratch pool (see PackInto for the fully
// allocation-free form).
//
// pred must be pure: the two-pass structure evaluates it twice per
// element in the parallel path.
func Pack[T any](xs []T, opts Options, pred func(T) bool) []T {
	n := len(xs)
	if n == 0 {
		return nil
	}
	opts, m := BeginAdaptive(sitePack, n, opts)
	defer m.Done()
	p := opts.procs()
	if p > n {
		p = n
	}
	if p == 1 || n <= opts.serialCutoff() {
		out := make([]T, 0, n/2)
		for _, x := range xs {
			if pred(x) {
				out = append(out, x)
			}
		}
		return out
	}
	a := scratch.AcquireArena(opts.Scratch)
	defer a.Release()
	counts := scratch.Make[int](a, p)
	offsets := scratch.Make[int](a, p)
	countPred(counts, xs, n, p, opts, pred)
	total := PrefixSumsInto(offsets, counts, Options{Procs: 1})
	out := make([]T, total)
	scatterPacked(out, xs, offsets, n, p, opts, pred)
	return out
}

// PackInto packs the elements of xs satisfying pred into dst,
// returning how many were written. dst must not alias xs and must have
// length at least the number of survivors (len(dst) >= len(xs) always
// suffices); it is the steady-state form kernels pair with scratch
// buffers so packing allocates nothing.
//
// pred must be pure (evaluated twice per element in the parallel path).
func PackInto[T any](dst, xs []T, opts Options, pred func(T) bool) int {
	n := len(xs)
	if n == 0 {
		return 0
	}
	opts, m := BeginAdaptive(sitePack, n, opts)
	defer m.Done()
	p := opts.procs()
	if p > n {
		p = n
	}
	if p == 1 || n <= opts.serialCutoff() {
		k := 0
		for _, x := range xs {
			if pred(x) {
				dst[k] = x
				k++
			}
		}
		return k
	}
	a := scratch.AcquireArena(opts.Scratch)
	defer a.Release()
	counts := scratch.Make[int](a, p)
	offsets := scratch.Make[int](a, p)
	countPred(counts, xs, n, p, opts, pred)
	total := PrefixSumsInto(offsets, counts, Options{Procs: 1})
	if total > len(dst) {
		panic("par: PackInto destination too short")
	}
	scatterPacked(dst, xs, offsets, n, p, opts, pred)
	return total
}

// countPred is the shared count pass: worker w counts its block's
// survivors.
func countPred[T any](counts []int, xs []T, n, p int, opts Options, pred func(T) bool) {
	ForWorkers(p, opts, func(w int) {
		lo := w * n / p
		hi := (w + 1) * n / p
		c := 0
		for i := lo; i < hi; i++ {
			if pred(xs[i]) {
				c++
			}
		}
		counts[w] = c
	})
}

// scatterPacked is the shared fill pass: worker w copies its block's
// survivors to its precomputed output offset.
func scatterPacked[T any](dst, xs []T, offsets []int, n, p int, opts Options, pred func(T) bool) {
	ForWorkers(p, opts, func(w int) {
		lo := w * n / p
		hi := (w + 1) * n / p
		o := offsets[w]
		for i := lo; i < hi; i++ {
			if pred(xs[i]) {
				dst[o] = xs[i]
				o++
			}
		}
	})
}

// PackIndex returns the indices i in [0, n) for which pred(i) holds, in
// ascending order. This form avoids materializing values and is the one
// used by the graph kernels to build frontiers.
//
// pred must be pure: the two-pass structure evaluates it twice per
// index in the parallel path.
func PackIndex(n int, opts Options, pred func(i int) bool) []int {
	if n == 0 {
		return nil
	}
	opts, m := BeginAdaptive(sitePackIdx, n, opts)
	defer m.Done()
	p := opts.procs()
	if p > n {
		p = n
	}
	if p == 1 || n <= opts.serialCutoff() {
		out := make([]int, 0, n/2)
		for i := 0; i < n; i++ {
			if pred(i) {
				out = append(out, i)
			}
		}
		return out
	}
	a := scratch.AcquireArena(opts.Scratch)
	defer a.Release()
	counts := scratch.Make[int](a, p)
	offsets := scratch.Make[int](a, p)
	countIndex(counts, n, p, opts, pred)
	total := PrefixSumsInto(offsets, counts, Options{Procs: 1})
	out := make([]int, total)
	scatterIndex(out, offsets, n, p, opts, pred)
	return out
}

// PackIndexInto is PackIndex writing into a caller-owned dst (len(dst)
// >= number of matches; n always suffices), returning the match count.
// The allocation-free form iterative graph kernels use for frontiers.
func PackIndexInto(dst []int, n int, opts Options, pred func(i int) bool) int {
	if n == 0 {
		return 0
	}
	opts, m := BeginAdaptive(sitePackIdx, n, opts)
	defer m.Done()
	p := opts.procs()
	if p > n {
		p = n
	}
	if p == 1 || n <= opts.serialCutoff() {
		k := 0
		for i := 0; i < n; i++ {
			if pred(i) {
				dst[k] = i
				k++
			}
		}
		return k
	}
	a := scratch.AcquireArena(opts.Scratch)
	defer a.Release()
	counts := scratch.Make[int](a, p)
	offsets := scratch.Make[int](a, p)
	countIndex(counts, n, p, opts, pred)
	total := PrefixSumsInto(offsets, counts, Options{Procs: 1})
	if total > len(dst) {
		panic("par: PackIndexInto destination too short")
	}
	scatterIndex(dst, offsets, n, p, opts, pred)
	return total
}

func countIndex(counts []int, n, p int, opts Options, pred func(i int) bool) {
	ForWorkers(p, opts, func(w int) {
		lo := w * n / p
		hi := (w + 1) * n / p
		c := 0
		for i := lo; i < hi; i++ {
			if pred(i) {
				c++
			}
		}
		counts[w] = c
	})
}

func scatterIndex(dst []int, offsets []int, n, p int, opts Options, pred func(i int) bool) {
	ForWorkers(p, opts, func(w int) {
		lo := w * n / p
		hi := (w + 1) * n / p
		o := offsets[w]
		for i := lo; i < hi; i++ {
			if pred(i) {
				dst[o] = i
				o++
			}
		}
	})
}

// Histogram counts occurrences of bucket(x) in [0, buckets) over xs using
// per-worker private histograms merged at the end — the standard fix for
// the atomic-contention anti-pattern of a single shared count array.
func Histogram[T any](xs []T, buckets int, opts Options, bucket func(T) int) []int {
	out := make([]int, buckets)
	HistogramInto(out, xs, opts, bucket)
	return out
}

// HistogramInto is Histogram writing into a caller-owned count array
// (len(out) is the bucket count; it is fully overwritten). The private
// per-worker histograms are one flat scratch block — p rows of buckets
// counters — so the steady-state path allocates nothing.
func HistogramInto[T any](out []int, xs []T, opts Options, bucket func(T) int) {
	n := len(xs)
	buckets := len(out)
	if n == 0 || buckets == 0 {
		clear(out)
		return
	}
	opts, m := BeginAdaptive(siteHist, n, opts)
	defer m.Done()
	p := opts.procs()
	if p > n {
		p = n
	}
	if p == 1 || n <= opts.serialCutoff() {
		clear(out)
		for _, x := range xs {
			out[bucket(x)]++
		}
		return
	}
	a := scratch.AcquireArena(opts.Scratch)
	defer a.Release()
	private := scratch.Make[int](a, p*buckets)
	ForWorkers(p, opts, func(w int) {
		lo := w * n / p
		hi := (w + 1) * n / p
		h := private[w*buckets : (w+1)*buckets]
		clear(h)
		for i := lo; i < hi; i++ {
			h[bucket(xs[i])]++
		}
	})
	// Merge bucket-parallel: each worker sums a band of buckets.
	ForRange(buckets, Options{Procs: p, Grain: 64, SerialCutoff: 64,
		Executor: opts.Executor, Scratch: opts.Scratch}, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			s := 0
			for w := 0; w < p; w++ {
				s += private[w*buckets+b]
			}
			out[b] = s
		}
	})
}

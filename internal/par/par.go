// Package par provides loop-level parallel primitives — parallel for,
// map, reduce, scan (prefix sums), filter/pack, histogram, and merge —
// with explicit, selectable scheduling policies.
//
// The package encodes the central lesson of parallel algorithm
// engineering: the abstract algorithm (a parallel loop) and the schedule
// that maps iterations to processors are separate design decisions, and
// the right schedule depends on the work distribution of the input.
// Static schedules are cheapest on uniform work; guided/dynamic schedules
// pay per-chunk synchronization to fix the load imbalance caused by
// skewed (e.g. power-law) work. Experiment E10 quantifies the tradeoff.
//
// All primitives are deterministic with respect to their results (order
// of side effects is not specified); scan and reduce require associative
// operators and are exact for integer types.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Policy selects how loop iterations are assigned to workers.
type Policy int

const (
	// Static divides [0,n) into P contiguous blocks up front. Zero
	// scheduling overhead; worst-case imbalance when work is skewed.
	Static Policy = iota
	// Cyclic deals iterations round-robin in grain-sized chunks
	// (chunked-cyclic). Good average balance for smoothly varying work,
	// poor cache locality on contiguous data.
	Cyclic
	// Dynamic hands out grain-sized chunks from a shared counter on
	// demand. Best balance; one atomic per chunk.
	Dynamic
	// Guided hands out chunks of exponentially decreasing size
	// (remaining/2P, floored at grain), the OpenMP "guided" schedule:
	// large early chunks amortize overhead, small late chunks fix
	// stragglers.
	Guided
)

// String returns the policy name used in experiment tables.
func (p Policy) String() string {
	switch p {
	case Static:
		return "static"
	case Cyclic:
		return "cyclic"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return "unknown"
	}
}

// Policies lists all schedules in table order.
var Policies = []Policy{Static, Cyclic, Dynamic, Guided}

// Options configures a parallel primitive. The zero value requests
// GOMAXPROCS workers, the Static policy, and a default grain.
type Options struct {
	// Procs is the number of workers; <= 0 means runtime.GOMAXPROCS(0).
	Procs int
	// Policy selects the schedule.
	Policy Policy
	// Grain is the minimum chunk size for Cyclic/Dynamic/Guided and the
	// sequential cutoff below which primitives run serially; <= 0 means
	// a policy-specific default.
	Grain int
}

// DefaultGrain is the chunk size used when Options.Grain is unset.
const DefaultGrain = 1024

func (o Options) procs() int {
	if o.Procs > 0 {
		return o.Procs
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) grain() int {
	if o.Grain > 0 {
		return o.Grain
	}
	return DefaultGrain
}

// For executes body(i) for every i in [0, n) in parallel according to the
// schedule in opts. body must be safe to call concurrently for distinct i.
func For(n int, opts Options, body func(i int)) {
	ForRange(n, opts, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForRange executes body(lo, hi) over a partition of [0, n) in parallel.
// Using the range form lets kernels hoist per-chunk state (buffers,
// accumulators) out of the inner loop — the standard engineering move to
// reduce scheduling overhead.
func ForRange(n int, opts Options, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := opts.procs()
	if p > n {
		p = n
	}
	if p == 1 || n <= opts.grain() {
		body(0, n)
		return
	}
	switch opts.Policy {
	case Static:
		forStatic(n, p, body)
	case Cyclic:
		forCyclic(n, p, opts.grain(), body)
	case Dynamic:
		forDynamic(n, p, opts.grain(), body)
	case Guided:
		forGuided(n, p, opts.grain(), body)
	default:
		forStatic(n, p, body)
	}
}

// forStatic assigns worker w the contiguous block [w*n/p, (w+1)*n/p).
func forStatic(n, p int, body func(lo, hi int)) {
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		lo := w * n / p
		hi := (w + 1) * n / p
		go func(lo, hi int) {
			defer wg.Done()
			if lo < hi {
				body(lo, hi)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// forCyclic deals grain-sized chunks round-robin: worker w gets chunks
// w, w+p, w+2p, ...
func forCyclic(n, p, grain int, body func(lo, hi int)) {
	chunks := (n + grain - 1) / grain
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			for c := w; c < chunks; c += p {
				lo := c * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// forDynamic hands out grain-sized chunks from a shared atomic cursor.
func forDynamic(n, p, grain int, body func(lo, hi int)) {
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// forGuided hands out exponentially shrinking chunks: each grab takes
// max(grain, remaining/(2p)) iterations.
func forGuided(n, p, grain int, body func(lo, hi int)) {
	var mu sync.Mutex
	next := 0
	grab := func() (lo, hi int, ok bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, 0, false
		}
		remaining := n - next
		size := remaining / (2 * p)
		if size < grain {
			size = grain
		}
		lo = next
		hi = lo + size
		if hi > n {
			hi = n
		}
		next = hi
		return lo, hi, true
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for {
				lo, hi, ok := grab()
				if !ok {
					return
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

package par

import (
	"runtime"
	"sync/atomic"

	"repro/internal/adapt"
	"repro/internal/exec"
	"repro/internal/scratch"
)

// Policy selects how loop iterations are assigned to workers.
type Policy int

const (
	// Static divides [0,n) into P contiguous blocks up front. Zero
	// scheduling overhead; worst-case imbalance when work is skewed.
	Static Policy = iota
	// Cyclic deals iterations round-robin in grain-sized chunks
	// (chunked-cyclic). Good average balance for smoothly varying work,
	// poor cache locality on contiguous data.
	Cyclic
	// Dynamic hands out grain-sized chunks from a shared counter on
	// demand. Best balance; one atomic per chunk.
	Dynamic
	// Guided hands out chunks of exponentially decreasing size
	// (remaining/2P, floored at grain), the OpenMP "guided" schedule:
	// large early chunks amortize overhead, small late chunks fix
	// stragglers.
	Guided
)

// String returns the policy name used in experiment tables.
func (p Policy) String() string {
	switch p {
	case Static:
		return "static"
	case Cyclic:
		return "cyclic"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return "unknown"
	}
}

// Policies lists all schedules in table order.
var Policies = []Policy{Static, Cyclic, Dynamic, Guided}

// Options configures a parallel primitive. The zero value requests
// GOMAXPROCS workers, the Static policy, a default grain, and the
// process-wide shared executor.
type Options struct {
	// Procs is the number of workers; <= 0 means runtime.GOMAXPROCS(0).
	Procs int
	// Policy selects the schedule.
	Policy Policy
	// Grain is the minimum chunk size for Cyclic/Dynamic/Guided; <= 0
	// means DefaultGrain. It controls chunking only — the serial
	// fallback is SerialCutoff's job, so a large Grain no longer
	// silently disables parallelism.
	Grain int
	// SerialCutoff is the problem size at or below which primitives run
	// serially regardless of Procs (the parallel setup is not worth it
	// below this); <= 0 means min(Grain, DefaultGrain). Set it to 1 to
	// force the parallel path for any n > 1.
	SerialCutoff int
	// Executor is the worker pool to dispatch onto; nil means the
	// process-wide exec.Default(). Long-lived servers can pin a
	// dedicated pool here to isolate a workload's parallelism.
	Executor *exec.Executor
	// Scratch is the buffer pool kernels draw their reusable
	// temporaries from; nil means the process-wide scratch.Default().
	// scratch.Off disables reuse (fresh allocation per call), the
	// baseline cmd/parbench -scratch=off measures against.
	Scratch *scratch.Pool
	// Adaptive enables the online load-aware tuning runtime: when
	// non-nil, Grain, Policy, the serial cutoff and (under load) the
	// effective worker count are chosen per call by the controller,
	// keyed by call site and input size class and refined from timing
	// feedback. Explicit Grain/Policy/SerialCutoff values are treated
	// as defaults the controller may override. adapt.Default() is the
	// process-wide controller; repro.Adaptive() returns Options with
	// it set.
	Adaptive *adapt.Controller
	// Site names the adaptive call site for the next primitive call.
	// Kernels set it to give their inner loops stable identities; nil
	// means the primitive's own named site, or (for For/ForRange) a
	// site derived from the caller's program counter.
	Site *adapt.Site
	// inMeasured marks Options derived from an open adaptive region
	// (BeginAdaptive sets it on the Options it returns). It is the
	// reentrancy guard: a nested BeginAdaptive that sees it — a kernel
	// with its own sites, like psel's count/pack phases or par.Merge,
	// invoked with Adaptive restored inside an outer measured region —
	// makes no decision and records no timing, so nested exploration
	// can never corrupt the outer site's EWMA (or waste the inner
	// site's sweep on timings that include the outer call's framing).
	inMeasured bool
}

// DefaultGrain is the chunk size used when Options.Grain is unset.
const DefaultGrain = 1024

func (o Options) procs() int {
	if o.Procs > 0 {
		return o.Procs
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) grain() int {
	if o.Grain > 0 {
		return o.Grain
	}
	return DefaultGrain
}

func (o Options) serialCutoff() int {
	if o.SerialCutoff > 0 {
		return o.SerialCutoff
	}
	// Unset: a Grain below DefaultGrain keeps its historical second job
	// as the cutoff (small grains mean "parallelize even tiny n"), but
	// a Grain above it no longer silently disables an explicit
	// parallelism request — that is SerialCutoff's job now.
	if g := o.grain(); g < DefaultGrain {
		return g
	}
	return DefaultGrain
}

func (o Options) executor() *exec.Executor {
	if o.Executor != nil {
		return o.Executor
	}
	return exec.Default()
}

// ScratchPool resolves Options.Scratch for kernel packages that draw
// their own temporaries (psort, psel, plist, pgraph).
func (o Options) ScratchPool() *scratch.Pool {
	if o.Scratch != nil {
		return o.Scratch
	}
	return scratch.Default()
}

// ForWorkers executes fn(w) for every worker slot w in [0, p) on the
// pool selected by opts, returning when all slots are done. It is the
// fork/join primitive the blocked kernels build on (per-worker
// reductions, count/scan/scatter phases): slot indices are stable, so
// fn can own partial[w] without synchronization. fn must not block
// waiting for another slot to start — when the pool is busy a single
// participant may run all p slots sequentially (see exec.Run).
func ForWorkers(p int, opts Options, fn func(w int)) {
	if p <= 0 {
		return
	}
	if p == 1 {
		fn(0)
		return
	}
	opts.executor().Run(p, fn)
}

// ForWorkersArena is ForWorkers with a worker-local scratch arena
// handed to each slot body. The arena belongs to the participant
// running the slot (one acquire per participant, not per slot), so fn
// can Make slot-scoped temporaries — per-worker staging buffers,
// private accumulators — with no synchronization and no steady-state
// allocation. Arena buffers must not outlive fn; state that must
// survive the call belongs to a caller-side arena.
func ForWorkersArena(p int, opts Options, fn func(w int, a *scratch.Arena)) {
	if p <= 0 {
		return
	}
	opts.executor().RunArena(p, opts.ScratchPool(), fn)
}

// For executes body(i) for every i in [0, n) in parallel according to the
// schedule in opts. body must be safe to call concurrently for distinct i.
func For(n int, opts Options, body func(i int)) {
	if opts.Adaptive != nil && opts.Site == nil {
		// Capture the site here, not in ForRange: every For call would
		// otherwise share ForRange's view of this wrapper as "the caller".
		opts.Site = adapt.SiteForPC(callerPC())
	}
	ForRange(n, opts, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForRange executes body(lo, hi) over a partition of [0, n) in parallel.
// Using the range form lets kernels hoist per-chunk state (buffers,
// accumulators) out of the inner loop — the standard engineering move to
// reduce scheduling overhead. With Options.Adaptive set, the grain,
// policy, worker count and serial fallback come from the tuning
// runtime instead of the remaining Options fields.
func ForRange(n int, opts Options, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if opts.Adaptive != nil {
		site := opts.Site
		if site == nil {
			site = adapt.SiteForPC(callerPC())
		}
		tuned, m := BeginAdaptive(site, n, opts)
		forRangeExec(n, tuned, body)
		m.Done()
		return
	}
	forRangeExec(n, opts, body)
}

// forRangeExec is the schedule dispatch shared by the plain and
// adaptive entry paths.
func forRangeExec(n int, opts Options, body func(lo, hi int)) {
	p := opts.procs()
	if p > n {
		p = n
	}
	if p == 1 || n <= opts.serialCutoff() {
		body(0, n)
		return
	}
	e := opts.executor()
	switch opts.Policy {
	case Cyclic:
		forCyclic(e, n, p, opts.grain(), body)
	case Dynamic:
		forDynamic(e, n, p, opts.grain(), body)
	case Guided:
		forGuided(e, n, p, opts.grain(), body)
	default:
		forStatic(e, n, p, body)
	}
}

// forStatic assigns slot w the contiguous block [w*n/p, (w+1)*n/p).
func forStatic(e *exec.Executor, n, p int, body func(lo, hi int)) {
	e.Run(p, func(w int) {
		lo := w * n / p
		hi := (w + 1) * n / p
		if lo < hi {
			body(lo, hi)
		}
	})
}

// forCyclic deals grain-sized chunks round-robin: slot w gets chunks
// w, w+p, w+2p, ...
func forCyclic(e *exec.Executor, n, p, grain int, body func(lo, hi int)) {
	chunks := (n + grain - 1) / grain
	e.Run(p, func(w int) {
		for c := w; c < chunks; c += p {
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}
	})
}

// forDynamic hands out grain-sized chunks from a shared atomic cursor.
// Slots are interchangeable: every participant drains the same cursor.
func forDynamic(e *exec.Executor, n, p, grain int, body func(lo, hi int)) {
	var cursor atomic.Int64
	e.Run(p, func(int) {
		for {
			lo := int(cursor.Add(int64(grain))) - grain
			if lo >= n {
				return
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}
	})
}

// forGuided hands out exponentially shrinking chunks: each grab takes
// max(grain, remaining/(2p)) iterations. The cursor is advanced with a
// CAS loop — unlike a mutex, a stalled grabber never blocks the others,
// and the uncontended fast path is a single atomic.
func forGuided(e *exec.Executor, n, p, grain int, body func(lo, hi int)) {
	var cursor atomic.Int64
	e.Run(p, func(int) {
		for {
			lo, hi, ok := guidedGrab(&cursor, n, p, grain)
			if !ok {
				return
			}
			body(lo, hi)
		}
	})
}

// guidedGrab claims the next guided chunk [lo, hi) or reports that the
// iteration space is exhausted.
func guidedGrab(cursor *atomic.Int64, n, p, grain int) (lo, hi int, ok bool) {
	for {
		cur := cursor.Load()
		if cur >= int64(n) {
			return 0, 0, false
		}
		remaining := n - int(cur)
		size := remaining / (2 * p)
		if size < grain {
			size = grain
		}
		next := int(cur) + size
		if next > n {
			next = n
		}
		if cursor.CompareAndSwap(cur, int64(next)) {
			return int(cur), next, true
		}
	}
}

package par

import (
	"sync"
	"sync/atomic"
)

// Error-propagating parallel loops. Kernels in this repository are
// panic-free by construction, but library consumers iterate over
// fallible work (parsing shards, probing files, validating records).
// ForEach gives them structured cancellation without pulling in context
// plumbing: the first error wins, later chunks are skipped (best
// effort), and in-flight chunks run to completion — the same semantics
// as errgroup-with-cancel, implemented with one atomic.

// ForEach executes body(i) for i in [0, n) in parallel and returns the
// error from the smallest index that failed (deterministic even though
// execution order is not). After any error is observed, not-yet-started
// chunks are skipped.
func ForEach(n int, opts Options, body func(i int) error) error {
	if n <= 0 {
		return nil
	}
	var failedIdx atomic.Int64
	failedIdx.Store(int64(n))
	var mu sync.Mutex
	var firstErr error
	record := func(i int, err error) {
		mu.Lock()
		if int64(i) < failedIdx.Load() {
			failedIdx.Store(int64(i))
			firstErr = err
		}
		mu.Unlock()
	}
	ForRange(n, opts, func(lo, hi int) {
		if int64(lo) >= failedIdx.Load() {
			return // a smaller index already failed; skip this chunk
		}
		for i := lo; i < hi; i++ {
			if err := body(i); err != nil {
				record(i, err)
				return
			}
		}
	})
	if failedIdx.Load() == int64(n) {
		return nil
	}
	return firstErr
}

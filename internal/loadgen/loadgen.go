package loadgen

import (
	"sync"
	"time"

	"repro/internal/perf"
	"repro/internal/rng"
)

// Schedule is a fixed open-loop arrival plan: Offsets[i] is the
// instant, relative to the run's start, at which request i is intended
// to enter the system. The plan is drawn in full before the run so the
// offered load is a property of the schedule alone — nothing the
// system under test does (stall, reject, deadlock) can slow the
// arrivals down, which is exactly the property a closed-loop client
// lacks. Offsets are non-decreasing.
type Schedule struct {
	Offsets []time.Duration
}

// Len returns the number of scheduled arrivals.
func (s Schedule) Len() int { return len(s.Offsets) }

// Duration returns the intended span of the schedule (the last
// arrival's offset), or 0 for an empty schedule.
func (s Schedule) Duration() time.Duration {
	if len(s.Offsets) == 0 {
		return 0
	}
	return s.Offsets[len(s.Offsets)-1]
}

// OfferedRate returns the schedule's offered load in requests per
// second (0 for fewer than two arrivals).
func (s Schedule) OfferedRate() float64 {
	d := s.Duration()
	if d <= 0 || len(s.Offsets) < 2 {
		return 0
	}
	return float64(len(s.Offsets)-1) / d.Seconds()
}

// Constant returns a schedule of n arrivals at exactly rate requests
// per second: Offsets[i] = i/rate. It panics if rate <= 0 or n < 0.
func Constant(n int, rate float64) Schedule {
	if rate <= 0 {
		panic("loadgen: Constant rate <= 0")
	}
	if n < 0 {
		panic("loadgen: Constant n < 0")
	}
	offs := make([]time.Duration, n)
	for i := range offs {
		offs[i] = time.Duration(float64(i) / rate * float64(time.Second))
	}
	return Schedule{Offsets: offs}
}

// Poisson returns a schedule of n arrivals forming a Poisson process
// with mean rate requests per second: inter-arrival gaps are drawn
// i.i.d. exponential with mean 1/rate from a SplitMix64 stream seeded
// with seed, so the same seed reproduces the same burst pattern.
// Bursty arrivals are the harsher (and more realistic) open-loop
// workload: even at an offered rate the system can sustain on average,
// bursts queue — and the corrected percentiles see that queueing. It
// panics if rate <= 0 or n < 0.
func Poisson(n int, rate float64, seed uint64) Schedule {
	if rate <= 0 {
		panic("loadgen: Poisson rate <= 0")
	}
	if n < 0 {
		panic("loadgen: Poisson n < 0")
	}
	r := rng.New(seed)
	offs := make([]time.Duration, n)
	var t float64 // seconds
	for i := range offs {
		if i > 0 {
			t += r.ExpFloat64() / rate
		}
		offs[i] = time.Duration(t * float64(time.Second))
	}
	return Schedule{Offsets: offs}
}

// Sample records one request's lifecycle, all instants as offsets from
// the run's start. Intended is the schedule's arrival; Sent is when
// the generator actually fired the request (later than Intended only
// when the generator itself fell behind); Done is completion. Err is
// whatever the request function returned.
type Sample struct {
	Intended time.Duration
	Sent     time.Duration
	Done     time.Duration
	Err      error
}

// Corrected returns the coordinated-omission-corrected latency: time
// from the *intended* arrival to completion. Queueing delay that built
// up while the system stalled is charged to the system, exactly as it
// would be for a user whose request arrived on schedule.
func (s Sample) Corrected() time.Duration { return s.Done - s.Intended }

// Uncorrected returns the latency a closed-loop client would have
// recorded: time from the actual send to completion.
func (s Sample) Uncorrected() time.Duration { return s.Done - s.Sent }

// Result is one open-loop run's full record: every sample in schedule
// order plus the wall-clock span from start to last completion.
type Result struct {
	Samples []Sample
	Wall    time.Duration
}

// Run fires the schedule open-loop against do: request i is launched
// on its own goroutine at Offsets[i] whether or not any earlier
// request has completed, and its completion (and error) is recorded.
// do must be safe for concurrent calls; under saturation the number of
// in-flight calls grows with the backlog — that concurrency *is* the
// offered load the schedule promises, so Run never bounds it. Run
// returns once every request has completed.
func Run(sched Schedule, do func(i int) error) Result {
	n := len(sched.Offsets)
	res := Result{Samples: make([]Sample, n)}
	var wg sync.WaitGroup
	wg.Add(n)
	start := time.Now()
	for i := 0; i < n; i++ {
		if d := sched.Offsets[i] - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		sent := time.Since(start)
		go func(i int, sent time.Duration) {
			defer wg.Done()
			err := do(i)
			done := time.Since(start)
			res.Samples[i] = Sample{
				Intended: sched.Offsets[i],
				Sent:     sent,
				Done:     done,
				Err:      err,
			}
		}(i, sent)
	}
	wg.Wait()
	res.Wall = time.Since(start)
	return res
}

// Latencies extracts per-sample latencies in seconds — corrected
// (from intended arrival) or uncorrected (from actual send). Errored
// samples are included only when includeErrored is set: a rejected
// request has a door-turnaround latency, not a service latency, and
// mixing the two flatters the tail.
func (r *Result) Latencies(corrected, includeErrored bool) []float64 {
	out := make([]float64, 0, len(r.Samples))
	for _, s := range r.Samples {
		if s.Err != nil && !includeErrored {
			continue
		}
		if corrected {
			out = append(out, s.Corrected().Seconds())
		} else {
			out = append(out, s.Uncorrected().Seconds())
		}
	}
	return out
}

// OK returns the number of samples that completed without error.
func (r *Result) OK() int {
	n := 0
	for _, s := range r.Samples {
		if s.Err == nil {
			n++
		}
	}
	return n
}

// Failed returns the number of errored samples matching match (all
// errored samples when match is nil).
func (r *Result) Failed(match func(error) bool) int {
	n := 0
	for _, s := range r.Samples {
		if s.Err != nil && (match == nil || match(s.Err)) {
			n++
		}
	}
	return n
}

// Report is the side-by-side percentile summary of one open-loop run.
// The Corrected row is the honest one; Uncorrected is printed next to
// it so the size of the coordinated-omission gap is itself an
// observable (they agree when the system kept up, and the ratio
// between them is how much a closed-loop harness would have lied).
type Report struct {
	Sent, OK, Errors int
	// OfferedRate is the schedule's intended load; AchievedRate is
	// completed-without-error requests over the run's wall time.
	OfferedRate, AchievedRate float64
	// Percentiles over successful samples, in seconds.
	CorrectedP50, CorrectedP95, CorrectedP99       float64
	UncorrectedP50, UncorrectedP95, UncorrectedP99 float64
}

// Summarize reduces a run against its schedule to a Report.
func (r *Result) Summarize(sched Schedule) Report {
	corr := r.Latencies(true, false)
	unc := r.Latencies(false, false)
	rep := Report{
		Sent:        len(r.Samples),
		OK:          r.OK(),
		OfferedRate: sched.OfferedRate(),

		CorrectedP50:   perf.Percentile(corr, 50),
		CorrectedP95:   perf.Percentile(corr, 95),
		CorrectedP99:   perf.Percentile(corr, 99),
		UncorrectedP50: perf.Percentile(unc, 50),
		UncorrectedP95: perf.Percentile(unc, 95),
		UncorrectedP99: perf.Percentile(unc, 99),
	}
	rep.Errors = rep.Sent - rep.OK
	if r.Wall > 0 {
		rep.AchievedRate = float64(rep.OK) / r.Wall.Seconds()
	}
	return rep
}

// Package loadgen is the open-loop traffic generator behind the
// serving harness's honest tail-latency numbers.
//
// A closed-loop client (issue, wait, issue again) cannot observe a
// stall it is itself stuck behind: while one request is delayed, the
// client stops sending, so every request that *would* have arrived
// during the stall — and would have seen the stall's queueing delay —
// is simply missing from the sample. The printed percentiles are then
// computed over a survivor population and understate the tail, a
// measurement bug known as coordinated omission. loadgen fixes it the
// standard way: request arrival times come from a fixed Schedule drawn
// before the run (constant-rate or Poisson via internal/rng), the
// generator fires each request at its scheduled instant regardless of
// whether earlier ones have finished, and every sample records two
// latencies — the uncorrected one from the actual send and the
// corrected one from the *intended* arrival, so delay the harness
// accumulated while the system was stalled is charged to the system.
// Result reports both side by side; when they diverge, the corrected
// column is the one the north-star metric cares about.
//
// # Layering
//
// loadgen sits beside the harness layers, not under the runtime ones:
// it depends only on internal/rng (arrival draws) and internal/perf
// (percentiles), and knows nothing about what a request is — callers
// pass a func. internal/core (experiment E26) and cmd/parbench
// (-serve -openloop) drive internal/serve through it; internal/serve
// never imports it.
package loadgen

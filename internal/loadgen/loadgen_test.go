package loadgen

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/perf"
)

func TestConstantSpacing(t *testing.T) {
	s := Constant(5, 1000) // 1ms apart
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i, off := range s.Offsets {
		want := time.Duration(i) * time.Millisecond
		if off != want {
			t.Fatalf("Offsets[%d] = %v, want %v", i, off, want)
		}
	}
	if got := s.OfferedRate(); math.Abs(got-1000) > 1e-6 {
		t.Fatalf("OfferedRate = %v", got)
	}
	if d := s.Duration(); d != 4*time.Millisecond {
		t.Fatalf("Duration = %v", d)
	}
}

func TestConstantEmptyAndPanics(t *testing.T) {
	if s := Constant(0, 100); s.Len() != 0 || s.Duration() != 0 || s.OfferedRate() != 0 {
		t.Fatalf("empty schedule = %+v", s)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Constant accepted rate 0")
		}
	}()
	Constant(1, 0)
}

func TestPoissonMeanAndMonotone(t *testing.T) {
	const n, rate = 4096, 500.0
	s := Poisson(n, rate, 7)
	if s.Len() != n || s.Offsets[0] != 0 {
		t.Fatalf("len=%d first=%v", s.Len(), s.Offsets[0])
	}
	for i := 1; i < n; i++ {
		if s.Offsets[i] < s.Offsets[i-1] {
			t.Fatalf("offsets not monotone at %d", i)
		}
	}
	// Mean inter-arrival over 4095 exponential draws concentrates
	// tightly around 1/rate (stderr = mean/sqrt(n) ≈ 1.6%).
	mean := s.Duration().Seconds() / float64(n-1)
	if math.Abs(mean-1/rate)/(1/rate) > 0.15 {
		t.Fatalf("mean gap %v, want ~%v", mean, 1/rate)
	}
	// Same seed, same schedule; different seed, different bursts.
	if d := Poisson(n, rate, 7); d.Duration() != s.Duration() {
		t.Fatal("Poisson not reproducible for equal seeds")
	}
	if d := Poisson(n, rate, 8); d.Duration() == s.Duration() {
		t.Fatal("Poisson identical across seeds")
	}
}

func TestRunRecordsEverySample(t *testing.T) {
	sentinel := errors.New("boom")
	sched := Constant(40, 20000)
	res := Run(sched, func(i int) error {
		if i%4 == 3 {
			return sentinel
		}
		return nil
	})
	if len(res.Samples) != 40 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	if res.OK() != 30 || res.Failed(nil) != 10 {
		t.Fatalf("OK=%d Failed=%d", res.OK(), res.Failed(nil))
	}
	if got := res.Failed(func(err error) bool { return errors.Is(err, sentinel) }); got != 10 {
		t.Fatalf("Failed(sentinel) = %d", got)
	}
	for i, s := range res.Samples {
		if s.Intended != sched.Offsets[i] {
			t.Fatalf("sample %d intended %v, want %v", i, s.Intended, sched.Offsets[i])
		}
		if s.Sent < s.Intended || s.Done < s.Sent {
			t.Fatalf("sample %d out of order: %+v", i, s)
		}
		if s.Corrected() < s.Uncorrected() {
			t.Fatalf("sample %d corrected < uncorrected", i)
		}
	}
	rep := res.Summarize(sched)
	if rep.Sent != 40 || rep.OK != 30 || rep.Errors != 10 {
		t.Fatalf("report counts = %+v", rep)
	}
	if rep.CorrectedP50 < rep.UncorrectedP50 {
		t.Fatalf("corrected p50 %v < uncorrected %v", rep.CorrectedP50, rep.UncorrectedP50)
	}
}

func TestRunFastServiceKeepsUp(t *testing.T) {
	// A no-op service at a slack rate: corrected and uncorrected agree
	// to well under the inter-arrival gap, and nothing queues.
	sched := Constant(50, 2000) // 500µs apart
	res := Run(sched, func(int) error { return nil })
	rep := res.Summarize(sched)
	if rep.CorrectedP99 > 0.01 {
		t.Fatalf("unloaded corrected p99 = %v s", rep.CorrectedP99)
	}
	if gap := rep.CorrectedP99 - rep.UncorrectedP99; gap > 0.01 {
		t.Fatalf("unloaded correction gap = %v s", gap)
	}
}

// TestCoordinatedOmissionRegression is the harness-methodology pin
// behind this repo's tail-latency numbers: a closed-loop client
// measured against a saturated single-server queue reports a p99 near
// the bare service time, while an open-loop schedule offering the SAME
// load sees the queueing delay the closed-loop client was structurally
// unable to observe. If this test fails, the corrected-latency path
// has regressed to closed-loop semantics and every percentile the
// harness prints is suspect.
func TestCoordinatedOmissionRegression(t *testing.T) {
	// Service: one request at a time, 1ms each — a 1000 req/s server.
	const svc = time.Millisecond
	var mu sync.Mutex
	serve := func() {
		mu.Lock()
		time.Sleep(svc)
		mu.Unlock()
	}

	// Closed loop at full throttle: issues back-to-back, so it offers
	// exactly the server's capacity and each measurement sees only its
	// own service time — never the backlog its own stall created.
	const n = 150
	closed := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		serve()
		closed = append(closed, time.Since(t0).Seconds())
	}
	closedP99 := perf.Percentile(closed, 99)

	// Open loop at 2x capacity: the backlog grows linearly through the
	// run, and charging latency from the intended arrival exposes it.
	sched := Constant(n, 2000)
	res := Run(sched, func(int) error { serve(); return nil })
	rep := res.Summarize(sched)

	if rep.CorrectedP99 < rep.UncorrectedP99 {
		t.Fatalf("corrected p99 %v < uncorrected %v", rep.CorrectedP99, rep.UncorrectedP99)
	}
	// The honest number must dwarf the closed-loop one. The backlog at
	// the end of the run is ~n/2 requests ≈ 75ms of queue, so even
	// with heavy sleep jitter 3x (vs ~1ms closed) is a wide margin.
	if rep.CorrectedP99 < 3*closedP99 {
		t.Fatalf("corrected open-loop p99 %.4fs does not dominate closed-loop p99 %.4fs: coordinated omission is back",
			rep.CorrectedP99, closedP99)
	}
	// And the uncorrected open-loop column must not be the honest one:
	// it differs from corrected by the very delay closed loops omit.
	if rep.CorrectedP99 < 2*rep.UncorrectedP99 {
		t.Logf("note: correction gap modest (corr %.4fs, uncorr %.4fs)", rep.CorrectedP99, rep.UncorrectedP99)
	}
}

// TestNegativeCountPanics pins the documented contract: a negative n
// fails loudly at schedule construction, not as an opaque runtime
// error (or a silent misbehavior) later.
func TestNegativeCountPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		call func()
	}{
		{"Constant", func() { Constant(-1, 100) }},
		{"Poisson", func() { Poisson(-1, 100, 0) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s accepted n = -1", tc.name)
				}
			}()
			tc.call()
		})
	}
}

// TestSummarizeDegenerateSchedules pins the harness's edge cases: no
// arrivals, a single arrival, every arrival at the same instant, and
// a run where every request errors. None of these may divide by zero
// or leak NaN/Inf rates or percentiles into a report.
func TestSummarizeDegenerateSchedules(t *testing.T) {
	fail := errors.New("synthetic failure")
	for _, tc := range []struct {
		name    string
		sched   Schedule
		do      func(i int) error
		wantOK  int
		wantErr int
	}{
		{"empty", Constant(0, 100), func(int) error { return nil }, 0, 0},
		{"single", Constant(1, 100), func(int) error { return nil }, 1, 0},
		{"zero-duration", Schedule{Offsets: make([]time.Duration, 5)}, func(int) error { return nil }, 5, 0},
		{"all-errored", Constant(4, 10000), func(int) error { return fail }, 0, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res := Run(tc.sched, tc.do)
			rep := res.Summarize(tc.sched)
			if rep.Sent != tc.sched.Len() || rep.OK != tc.wantOK || rep.Errors != tc.wantErr {
				t.Fatalf("report = %+v, want sent=%d ok=%d errors=%d",
					rep, tc.sched.Len(), tc.wantOK, tc.wantErr)
			}
			for name, v := range map[string]float64{
				"OfferedRate":    rep.OfferedRate,
				"AchievedRate":   rep.AchievedRate,
				"CorrectedP50":   rep.CorrectedP50,
				"CorrectedP95":   rep.CorrectedP95,
				"CorrectedP99":   rep.CorrectedP99,
				"UncorrectedP50": rep.UncorrectedP50,
				"UncorrectedP95": rep.UncorrectedP95,
				"UncorrectedP99": rep.UncorrectedP99,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s = %v (report %+v)", name, v, rep)
				}
				if v < 0 {
					t.Fatalf("%s = %v is negative (report %+v)", name, v, rep)
				}
			}
			// Fewer than two arrivals (or a zero span) define no offered
			// rate; an all-errored run achieved nothing.
			if tc.sched.Duration() <= 0 && rep.OfferedRate != 0 {
				t.Fatalf("OfferedRate = %v for a zero-span schedule", rep.OfferedRate)
			}
			if tc.wantOK == 0 && rep.AchievedRate != 0 {
				t.Fatalf("AchievedRate = %v with zero successes", rep.AchievedRate)
			}
		})
	}
}

package pmat

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/seq"
)

func TestMulMatchesSequential(t *testing.T) {
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {64, 64, 64}, {65, 33, 17}, {128, 100, 90}} {
		a := gen.RandomMatrix(dims[0], dims[1], 1)
		b := gen.RandomMatrix(dims[1], dims[2], 2)
		want := seq.Matmul(a, b)
		for _, block := range []int{0, 8, 16, 100} {
			for _, p := range []int{1, 2, 4} {
				got := Mul(a, b, Config{Block: block, Opts: par.Options{Procs: p, Grain: 1}})
				if !got.Equal(want, 1e-9) {
					t.Fatalf("dims=%v block=%d p=%d: mismatch", dims, block, p)
				}
			}
		}
	}
}

func TestMulNaiveMatches(t *testing.T) {
	a := gen.RandomMatrix(50, 70, 3)
	b := gen.RandomMatrix(70, 40, 4)
	want := seq.Matmul(a, b)
	got := MulNaive(a, b, par.Options{Procs: 4, Grain: 1})
	if !got.Equal(want, 1e-9) {
		t.Fatal("naive parallel mismatch")
	}
}

func TestMulIdentity(t *testing.T) {
	a := gen.RandomMatrix(31, 31, 5)
	got := Mul(a, gen.Identity(31), Config{Block: 8, Opts: par.Options{Procs: 2, Grain: 1}})
	if !got.Equal(a, 1e-12) {
		t.Fatal("A*I != A")
	}
}

func TestMulDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Mul(gen.NewMatrix(2, 3), gen.NewMatrix(4, 2), Config{})
}

func TestConfigDefaults(t *testing.T) {
	if (Config{}).block() != DefaultBlock {
		t.Fatal("default block")
	}
	if (Config{Block: 32}).block() != 32 {
		t.Fatal("explicit block")
	}
}

// Package pmat implements the dense matrix-multiplication case study:
// a cache-blocked, row-parallel kernel against the naive triple loop.
//
// Matmul is the methodology's compute-bound exhibit: its arithmetic
// intensity grows with the block size, so the engineering question is not
// whether it parallelizes (it does, embarrassingly) but how the memory
// hierarchy interacts with blocking — experiment E7 sweeps the block size
// to expose the cache plateau the model predicts.
//
// Layering: pmat consumes gen (the dense Matrix type) and par
// (blocked loops); it feeds core's matmul experiments and the
// repro facade (MatMul).
package pmat

package pmat

import (
	"repro/internal/adapt"
	"repro/internal/gen"
	"repro/internal/par"
)

// Adaptive call sites for the row-block loops. Matmul's per-iteration
// work is n² operations, so the size classes here are tiny (row-block
// counts) but the learned serial cutoff matters for small matrices.
var (
	siteMul      = adapt.NewSite("pmat.Mul", adapt.KindRange)
	siteMulNaive = adapt.NewSite("pmat.MulNaive", adapt.KindRange)
)

// DefaultBlock is the block size used when Config.Block is unset; 64
// doubles of one operand row fit comfortably in L1 alongside the output.
const DefaultBlock = 64

// Config tunes the parallel kernel.
type Config struct {
	// Block is the tile edge length (<= 0 means DefaultBlock).
	Block int
	// Opts selects workers/schedule for the row-block loop.
	Opts par.Options
}

func (c Config) block() int {
	if c.Block > 0 {
		return c.Block
	}
	return DefaultBlock
}

// Mul computes C = A·B with tiled loops parallelized over row blocks.
// Within a tile the loop order is i-k-j so the innermost loop streams
// contiguous rows of B and C.
func Mul(a, b *gen.Matrix, cfg Config) *gen.Matrix {
	if a.Cols != b.Rows {
		panic("pmat: dimension mismatch")
	}
	c := gen.NewMatrix(a.Rows, b.Cols)
	bs := cfg.block()
	rowBlocks := (a.Rows + bs - 1) / bs
	opts := cfg.Opts
	if opts.Site == nil {
		opts.Site = siteMul
	}
	par.For(rowBlocks, opts, func(bi int) {
		i0 := bi * bs
		i1 := min(i0+bs, a.Rows)
		// Tile over k and j for cache reuse of B.
		for k0 := 0; k0 < a.Cols; k0 += bs {
			k1 := min(k0+bs, a.Cols)
			for j0 := 0; j0 < b.Cols; j0 += bs {
				j1 := min(j0+bs, b.Cols)
				for i := i0; i < i1; i++ {
					arow := a.Row(i)
					crow := c.Row(i)
					for k := k0; k < k1; k++ {
						aik := arow[k]
						brow := b.Row(k)
						for j := j0; j < j1; j++ {
							crow[j] += aik * brow[j]
						}
					}
				}
			}
		}
	})
	return c
}

// MulNaive is the unblocked parallel version (rows distributed, i-k-j
// order, no tiling) — the ablation partner for E7.
func MulNaive(a, b *gen.Matrix, opts par.Options) *gen.Matrix {
	if a.Cols != b.Rows {
		panic("pmat: dimension mismatch")
	}
	c := gen.NewMatrix(a.Rows, b.Cols)
	if opts.Site == nil {
		opts.Site = siteMulNaive
	}
	par.For(a.Rows, opts, func(i int) {
		arow := a.Row(i)
		crow := c.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			brow := b.Row(k)
			for j := 0; j < b.Cols; j++ {
				crow[j] += aik * brow[j]
			}
		}
	})
	return c
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

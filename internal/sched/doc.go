// Package sched implements a work-stealing fork/join task scheduler.
//
// Loop-level primitives (package par) cover regular, counted iteration
// spaces. Irregular computations — recursive decompositions whose subtask
// sizes are unknown in advance (tree algorithms, divide and conquer on
// skewed data) — need dynamic task parallelism instead. The classic
// engineering answer is work stealing (Blumofe & Leiserson 1999): each
// worker owns a double-ended queue, pushes and pops spawned tasks at the
// bottom (LIFO, for locality), and steals from the top of a random
// victim's deque when its own is empty (FIFO, stealing the largest
// remaining subtrees).
//
// Pool is a thin adapter over the persistent executor runtime
// (internal/exec): it owns the task deques and the termination
// detection, but its worker loops run as slots of one exec.Run on the
// shared process-wide pool (or a pool pinned with NewPoolOn), so
// loop-level and task-level parallelism share one set of goroutines.
// Because exec's caller participates in every Run, Pool.Run issued from
// inside a par body or another Pool's task completes without
// deadlocking even when the pool is saturated.
//
// Experiment E12 compares this scheduler against static loop
// parallelization on irregular task trees.
//
// Layering: sched consumes exec (its workers are pooled tasks);
// it feeds the irregular, recursive kernels — most prominently
// psort's steal-scheduled sort — and core's task-scheduling
// experiments.
package sched

// Package sched implements a work-stealing fork/join task scheduler.
//
// Loop-level primitives (package par) cover regular, counted iteration
// spaces. Irregular computations — recursive decompositions whose subtask
// sizes are unknown in advance (tree algorithms, divide and conquer on
// skewed data) — need dynamic task parallelism instead. The classic
// engineering answer is work stealing (Blumofe & Leiserson 1999): each
// worker owns a double-ended queue, pushes and pops spawned tasks at the
// bottom (LIFO, for locality), and steals from the top of a random
// victim's deque when its own is empty (FIFO, stealing the largest
// remaining subtrees).
//
// Experiment E12 compares this scheduler against static loop
// parallelization on irregular task trees.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// Task is a unit of work. Tasks may spawn further tasks through the
// *Worker passed to them.
type Task func(w *Worker)

// Pool is a work-stealing scheduler with a fixed number of workers.
// Create with NewPool; a Pool may execute many rounds of work via Run.
type Pool struct {
	workers []*Worker
	procs   int

	// Termination detection: count of in-flight (queued or executing)
	// tasks. When it reaches zero, the round is over.
	inflight atomic.Int64
	done     chan struct{}

	// Steal statistics for the experiment harness.
	steals   atomic.Int64
	attempts atomic.Int64
}

// Worker is one scheduler thread's context. Tasks receive their worker so
// spawns go to the local deque without synchronization on the happy path.
type Worker struct {
	pool  *Pool
	id    int
	deque *deque
	rnd   *rng.Rand
}

// ID returns the worker's index in [0, Procs).
func (w *Worker) ID() int { return w.id }

// NewPool creates a scheduler with procs workers (<= 0 means 1).
func NewPool(procs int) *Pool {
	if procs <= 0 {
		procs = 1
	}
	p := &Pool{procs: procs}
	p.workers = make([]*Worker, procs)
	for i := range p.workers {
		p.workers[i] = &Worker{
			pool:  p,
			id:    i,
			deque: newDeque(),
			rnd:   rng.New(uint64(0x5eed + i)),
		}
	}
	return p
}

// Procs returns the number of workers.
func (p *Pool) Procs() int { return p.procs }

// Steals returns the number of successful steals in the last Run.
func (p *Pool) Steals() int64 { return p.steals.Load() }

// StealAttempts returns the number of steal attempts in the last Run.
func (p *Pool) StealAttempts() int64 { return p.attempts.Load() }

// Spawn enqueues a child task on this worker's own deque.
func (w *Worker) Spawn(t Task) {
	w.pool.inflight.Add(1)
	w.deque.pushBottom(t)
}

// Run executes root and everything it transitively spawns, returning when
// all tasks have completed. Run must not be called concurrently with
// itself on the same Pool.
func (p *Pool) Run(root Task) {
	p.steals.Store(0)
	p.attempts.Store(0)
	p.done = make(chan struct{})
	p.inflight.Store(1)
	p.workers[0].deque.pushBottom(root)

	var wg sync.WaitGroup
	wg.Add(p.procs)
	for _, w := range p.workers {
		go func(w *Worker) {
			defer wg.Done()
			w.loop()
		}(w)
	}
	wg.Wait()
}

// loop is the worker scheduling loop: run local work; steal when empty;
// exit when the round's inflight count reaches zero.
func (w *Worker) loop() {
	p := w.pool
	for {
		// Drain local deque.
		for {
			t, ok := w.deque.popBottom()
			if !ok {
				break
			}
			w.exec(t)
		}
		// Local deque empty: try to steal.
		if p.inflight.Load() == 0 {
			return
		}
		if t, ok := w.steal(); ok {
			w.exec(t)
			continue
		}
		// Nothing to steal right now. Yield the processor and retry
		// until either work appears or the round terminates.
		if p.inflight.Load() == 0 {
			return
		}
		runtime.Gosched()
	}
}

func (w *Worker) exec(t Task) {
	t(w)
	w.pool.inflight.Add(-1)
}

// steal picks random victims until one yields a task or all are empty.
func (w *Worker) steal() (Task, bool) {
	p := w.pool
	n := len(p.workers)
	if n == 1 {
		return nil, false
	}
	start := w.rnd.Intn(n)
	for k := 0; k < n; k++ {
		v := p.workers[(start+k)%n]
		if v == w {
			continue
		}
		p.attempts.Add(1)
		if t, ok := v.deque.stealTop(); ok {
			p.steals.Add(1)
			return t, true
		}
	}
	return nil, false
}

// deque is a mutex-protected double-ended task queue. A lock-free
// Chase–Lev deque would shave constants, but the mutex version is correct
// by construction, contention is low (steals are rare when grain size is
// right — exactly what E12 measures), and the engineering methodology
// prefers the simplest implementation that meets the performance model.
type deque struct {
	mu    sync.Mutex
	tasks []Task
}

func newDeque() *deque { return &deque{} }

func (d *deque) pushBottom(t Task) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

func (d *deque) popBottom() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.tasks)
	if n == 0 {
		return nil, false
	}
	t := d.tasks[n-1]
	d.tasks[n-1] = nil
	d.tasks = d.tasks[:n-1]
	return t, true
}

func (d *deque) stealTop() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return nil, false
	}
	t := d.tasks[0]
	d.tasks[0] = nil
	d.tasks = d.tasks[1:]
	return t, true
}

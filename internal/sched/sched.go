package sched

import (
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/rng"
)

// Task is a unit of work. Tasks may spawn further tasks through the
// *Worker passed to them.
type Task func(w *Worker)

// Pool is a work-stealing scheduler with a fixed number of worker
// slots. Create with NewPool; a Pool may execute many rounds of work
// via Run.
type Pool struct {
	exec  *exec.Executor
	slots []*slot
	procs int

	// Termination detection: count of in-flight (queued or executing)
	// tasks. When it reaches zero, the round is over.
	inflight atomic.Int64

	// Lanes with nothing to run park on cond rather than spinning —
	// lanes occupy workers of a (possibly shared) fixed-size executor,
	// so busy-waiting would burn CPU other traffic needs. queued counts
	// pushed-but-not-popped tasks and idle counts parked lanes; Spawn's
	// queued-then-idle accesses pair with the lane's idle-then-queued
	// re-check (as in exec.Submit) so wakeups are never lost.
	queued atomic.Int64
	idle   atomic.Int32
	mu     sync.Mutex
	cond   *sync.Cond

	// Steal statistics for the experiment harness.
	steals   atomic.Int64
	attempts atomic.Int64
}

// slot is one scheduler lane: a deque plus the victim-selection rng of
// whichever participant claims the lane during a Run. A slot is owned
// by exactly one participant per round, so rnd needs no locking.
type slot struct {
	deque exec.Deque[Task]
	rnd   *rng.Rand
}

// Worker is one scheduler lane's context during a Run. Tasks receive
// their worker so spawns go to the local deque without synchronization
// on the happy path.
type Worker struct {
	pool *Pool
	id   int
}

// ID returns the worker's lane index in [0, Procs).
func (w *Worker) ID() int { return w.id }

// NewPool creates a scheduler with procs worker lanes (<= 0 means 1)
// running on the shared process-wide executor.
func NewPool(procs int) *Pool { return NewPoolOn(nil, procs) }

// NewPoolOn creates a scheduler whose lanes run on executor e (nil
// means exec.Default()). Long-lived servers can pin a dedicated
// executor so task-parallel work is isolated from other traffic.
func NewPoolOn(e *exec.Executor, procs int) *Pool {
	if procs <= 0 {
		procs = 1
	}
	if e == nil {
		e = exec.Default()
	}
	p := &Pool{exec: e, procs: procs}
	p.cond = sync.NewCond(&p.mu)
	p.slots = make([]*slot, procs)
	for i := range p.slots {
		p.slots[i] = &slot{rnd: rng.New(uint64(0x5eed + i))}
	}
	return p
}

// Procs returns the number of worker lanes.
func (p *Pool) Procs() int { return p.procs }

// Steals returns the number of successful steals in the last Run.
func (p *Pool) Steals() int64 { return p.steals.Load() }

// StealAttempts returns the number of steal attempts in the last Run.
func (p *Pool) StealAttempts() int64 { return p.attempts.Load() }

// Spawn enqueues a child task on this worker's own deque.
func (w *Worker) Spawn(t Task) {
	p := w.pool
	p.inflight.Add(1)
	p.slots[w.id].deque.PushBottom(t)
	p.queued.Add(1)
	if p.idle.Load() > 0 {
		p.mu.Lock()
		p.cond.Signal()
		p.mu.Unlock()
	}
}

// Run executes root and everything it transitively spawns, returning
// when all tasks have completed. Run must not be called concurrently
// with itself on the same Pool (use separate Pools for concurrent
// rounds; they may share one executor).
func (p *Pool) Run(root Task) {
	p.steals.Store(0)
	p.attempts.Store(0)
	p.inflight.Store(1)
	p.slots[0].deque.PushBottom(root)
	p.queued.Store(1)
	p.exec.Run(p.procs, p.lane)
}

// lane is the scheduling loop for lane w: run local work; steal when
// empty; park when there is nothing to steal; exit when the round's
// inflight count reaches zero. It runs as one slot of an exec.Run, so
// the Run caller drives lane 0 itself and lanes whose helper never
// gets a pooled worker are simply covered by the participants that did
// start — the round terminates either way.
func (p *Pool) lane(id int) {
	s := p.slots[id]
	me := &Worker{pool: p, id: id}
	for {
		// Drain the local deque.
		for {
			t, ok := s.deque.PopBottom()
			if !ok {
				break
			}
			p.queued.Add(-1)
			p.runTask(t, me)
		}
		// Local deque empty: try to steal.
		if p.inflight.Load() == 0 {
			return
		}
		if t, ok := p.steal(id, s); ok {
			p.runTask(t, me)
			continue
		}
		// Nothing to steal right now: park until a Spawn or the end of
		// the round wakes us. Lanes occupy pooled workers, so spinning
		// here would burn CPU that concurrent loop-parallel traffic on
		// the same executor needs.
		p.mu.Lock()
		p.idle.Add(1)
		if p.queued.Load() > 0 || p.inflight.Load() == 0 {
			p.idle.Add(-1)
			p.mu.Unlock()
			continue
		}
		p.cond.Wait()
		p.idle.Add(-1)
		p.mu.Unlock()
	}
}

// runTask executes t on lane me and retires it; the task that drains
// inflight to zero ends the round and wakes every parked lane so they
// can observe termination and return.
func (p *Pool) runTask(t Task, me *Worker) {
	t(me)
	if p.inflight.Add(-1) == 0 {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// steal picks random victims until one yields a task or all are empty.
func (p *Pool) steal(self int, s *slot) (Task, bool) {
	t, ok := exec.StealScan(func(i int) *exec.Deque[Task] { return &p.slots[i].deque },
		len(p.slots), self, s.rnd, &p.attempts, &p.steals)
	if ok {
		p.queued.Add(-1)
	}
	return t, ok
}

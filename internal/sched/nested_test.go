package sched

import (
	"sync/atomic"
	"testing"

	"repro/internal/exec"
	"repro/internal/par"
)

// Cross-layer nesting: both the loop primitives (par) and the task
// scheduler (this package) dispatch onto one executor, so each must be
// callable from inside the other without deadlock or lost work, even
// on a pool far smaller than the requested parallelism. Run under -race.

// TestParInsideSchedTasks calls par primitives from inside
// work-stealing tasks sharing a tiny dedicated executor.
func TestParInsideSchedTasks(t *testing.T) {
	e := exec.New(2)
	defer e.Close()
	pool := NewPoolOn(e, 4)
	opts := par.Options{Procs: 4, Grain: 8, Policy: par.Guided, Executor: e}

	const tasks, n = 16, 256
	var total atomic.Int64
	root := func(w *Worker) {
		for k := 0; k < tasks; k++ {
			w.Spawn(func(w *Worker) {
				s := par.Reduce(n, opts, int64(0),
					func(a, b int64) int64 { return a + b },
					func(i int) int64 { return int64(i) })
				total.Add(s)
			})
		}
	}
	pool.Run(root)
	if want := int64(tasks) * int64(n*(n-1)/2); total.Load() != want {
		t.Fatalf("total = %d, want %d", total.Load(), want)
	}
}

// TestSchedInsideParBody issues fork/join rounds from inside a
// parallel loop body on the shared executor.
func TestSchedInsideParBody(t *testing.T) {
	e := exec.New(2)
	defer e.Close()
	var leaves atomic.Int64
	par.For(8, par.Options{Procs: 8, Grain: 1, Executor: e}, func(i int) {
		pool := NewPoolOn(e, 3)
		var rec func(depth int) Task
		rec = func(depth int) Task {
			return func(w *Worker) {
				if depth == 0 {
					leaves.Add(1)
					return
				}
				w.Spawn(rec(depth - 1))
				w.Spawn(rec(depth - 1))
			}
		}
		pool.Run(rec(5))
	})
	if want := int64(8 * 32); leaves.Load() != want {
		t.Fatalf("leaves = %d, want %d", leaves.Load(), want)
	}
}

// TestPoolsShareExecutor runs two pools concurrently on one executor.
func TestPoolsShareExecutor(t *testing.T) {
	e := exec.New(2)
	defer e.Close()
	var a, b atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		pool := NewPoolOn(e, 4)
		pool.Run(func(w *Worker) {
			for i := 0; i < 100; i++ {
				w.Spawn(func(*Worker) { a.Add(1) })
			}
		})
	}()
	pool := NewPoolOn(e, 4)
	pool.Run(func(w *Worker) {
		for i := 0; i < 100; i++ {
			w.Spawn(func(*Worker) { b.Add(1) })
		}
	})
	<-done
	if a.Load() != 100 || b.Load() != 100 {
		t.Fatalf("a = %d, b = %d, want 100 each", a.Load(), b.Load())
	}
}

package sched

import (
	"sync/atomic"
	"testing"

	"repro/internal/exec"
)

func TestRunSingleTask(t *testing.T) {
	p := NewPool(4)
	var ran atomic.Bool
	p.Run(func(w *Worker) { ran.Store(true) })
	if !ran.Load() {
		t.Fatal("root task did not run")
	}
}

func TestSpawnTreeCompletes(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		p := NewPool(procs)
		var count atomic.Int64
		var spawn func(depth int) Task
		spawn = func(depth int) Task {
			return func(w *Worker) {
				count.Add(1)
				if depth > 0 {
					w.Spawn(spawn(depth - 1))
					w.Spawn(spawn(depth - 1))
				}
			}
		}
		p.Run(spawn(10))
		want := int64(1<<11 - 1) // full binary tree of depth 10
		if got := count.Load(); got != want {
			t.Fatalf("procs=%d: executed %d tasks, want %d", procs, got, want)
		}
	}
}

func TestTreeSum(t *testing.T) {
	// Recursive range sum with continuation-free accumulation.
	const n = 100000
	p := NewPool(4)
	var total atomic.Int64
	var sum func(lo, hi int) Task
	sum = func(lo, hi int) Task {
		return func(w *Worker) {
			if hi-lo <= 1000 {
				s := int64(0)
				for i := lo; i < hi; i++ {
					s += int64(i)
				}
				total.Add(s)
				return
			}
			mid := (lo + hi) / 2
			w.Spawn(sum(lo, mid))
			w.Spawn(sum(mid, hi))
		}
	}
	p.Run(sum(0, n))
	want := int64(n) * (n - 1) / 2
	if got := total.Load(); got != want {
		t.Fatalf("tree sum = %d, want %d", got, want)
	}
}

func TestRepeatedRuns(t *testing.T) {
	p := NewPool(3)
	for round := 0; round < 10; round++ {
		var c atomic.Int32
		p.Run(func(w *Worker) {
			for i := 0; i < 5; i++ {
				w.Spawn(func(w *Worker) { c.Add(1) })
			}
		})
		if c.Load() != 5 {
			t.Fatalf("round %d: ran %d of 5 children", round, c.Load())
		}
	}
}

func TestWorkerIDsDistinct(t *testing.T) {
	p := NewPool(4)
	seen := make([]atomic.Int32, 4)
	p.Run(func(w *Worker) {
		for i := 0; i < 1000; i++ {
			w.Spawn(func(w *Worker) {
				if w.ID() < 0 || w.ID() >= 4 {
					t.Errorf("worker id %d out of range", w.ID())
					return
				}
				seen[w.ID()].Add(1)
			})
		}
	})
	var total int32
	for i := range seen {
		total += seen[i].Load()
	}
	if total != 1000 {
		t.Fatalf("ran %d of 1000 tasks", total)
	}
}

func TestStealStatsReset(t *testing.T) {
	p := NewPool(2)
	p.Run(func(w *Worker) {
		for i := 0; i < 100; i++ {
			w.Spawn(func(w *Worker) {})
		}
	})
	first := p.StealAttempts()
	p.Run(func(w *Worker) {})
	if p.StealAttempts() > first && first > 0 {
		// attempts reset each round; after a trivial round the counter
		// must not carry over the previous round's larger value.
		t.Fatalf("steal attempts not reset: %d then %d", first, p.StealAttempts())
	}
}

func TestNewPoolClampsProcs(t *testing.T) {
	if NewPool(0).Procs() != 1 || NewPool(-3).Procs() != 1 {
		t.Fatal("non-positive procs not clamped to 1")
	}
}

func TestDequeLIFOBottomFIFOTop(t *testing.T) {
	// The deque implementation is unified in internal/exec; this checks
	// the owner-LIFO / thief-FIFO contract sched relies on, through the
	// same instantiation sched uses.
	var d exec.Deque[Task]
	order := []int{}
	mk := func(i int) Task { return func(w *Worker) { order = append(order, i) } }
	d.PushBottom(mk(1))
	d.PushBottom(mk(2))
	d.PushBottom(mk(3))
	if t1, ok := d.StealTop(); !ok {
		t.Fatal("StealTop failed")
	} else {
		t1(nil)
	}
	if t3, ok := d.PopBottom(); !ok {
		t.Fatal("PopBottom failed")
	} else {
		t3(nil)
	}
	if t2, ok := d.PopBottom(); !ok {
		t.Fatal("PopBottom failed")
	} else {
		t2(nil)
	}
	if _, ok := d.PopBottom(); ok {
		t.Fatal("deque should be empty")
	}
	if _, ok := d.StealTop(); ok {
		t.Fatal("deque should be empty")
	}
	want := []int{1, 3, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

package core

import (
	"fmt"
	"runtime"

	"repro/internal/adapt"
	"repro/internal/bsp"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/perf"
	"repro/internal/pgraph"
	"repro/internal/plist"
	"repro/internal/pmat"
	"repro/internal/psort"
	"repro/internal/pstencil"
	"repro/internal/sched"
	"repro/internal/scratch"
	"repro/internal/seq"
)

// Config scales the experiment suite. The zero value runs the full-size
// experiments with default sweeps.
type Config struct {
	// Quick shrinks problem sizes for smoke tests and CI.
	Quick bool
	// Procs are the real worker counts to sweep (default 1,2,4,8
	// capped at GOMAXPROCS*4 to stay meaningful).
	Procs []int
	// VProcs are virtual BSP processor counts (default 1,2,4,...,64).
	VProcs []int
	// Reps is the number of measured repetitions (default 3).
	Reps int
	// Seed makes all workloads reproducible (default 42).
	Seed uint64
	// Executor pins every kernel invocation in the suite to one worker
	// pool: nil means the shared process-wide pool, a dedicated pool
	// isolates the run, and exec.NewSpawning() reinstates the
	// goroutine-per-call dispatch (cmd/parbench -executor=spawn) so the
	// runtime's own overhead is observable in the tables.
	Executor *exec.Executor
	// Scratch pins the scratch-buffer pool the same way: nil means the
	// shared process-wide pool, scratch.Off reinstates fresh allocation
	// per call (cmd/parbench -scratch=off) so the GC-pressure delta is
	// observable.
	Scratch *scratch.Pool
	// Adaptive runs every kernel invocation under the online tuning
	// runtime (cmd/parbench -adapt=on): grain, policy, worker count
	// and serial cutoffs come from the process-wide adapt controller
	// instead of the sweep's fixed values. The per-point (procs,
	// policy, grain) parameters then act only as the controller's
	// requested-parallelism ceiling, so tables produced this way
	// measure the controller, not the lattice — useful to check how
	// close "adaptive" lands to the best hand-swept row.
	Adaptive bool
}

// opts builds the par.Options for one measured point, carrying the
// harness executor and scratch pool into every kernel layer.
func (c Config) opts(procs int, pol par.Policy, grain int) par.Options {
	o := par.Options{Procs: procs, Policy: pol, Grain: grain, Executor: c.Executor, Scratch: c.Scratch}
	if c.Adaptive {
		o.Adaptive = adapt.Default()
	}
	return o
}

func (c Config) procs() []int {
	if len(c.Procs) > 0 {
		return c.Procs
	}
	return []int{1, 2, 4, 8}
}

func (c Config) vprocs() []int {
	if len(c.VProcs) > 0 {
		return c.VProcs
	}
	return []int{1, 2, 4, 8, 16, 32, 64}
}

func (c Config) reps() int {
	if c.Reps > 0 {
		return c.Reps
	}
	return 3
}

func (c Config) seed() uint64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return 42
}

// size picks full (or quick) problem sizes.
func (c Config) size(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

func (c Config) runner() perf.Runner { return perf.Runner{Warmup: 1, Reps: c.reps()} }

// Experiment is one reproducible table/figure of the evaluation.
type Experiment struct {
	ID    string // "E1".."E14"
	Ref   string // the table/figure it regenerates
	Title string
	Run   func(cfg Config) *perf.Table
}

// Experiments lists the full suite in evaluation order.
var Experiments = []Experiment{
	{"E1", "Table 1", "Parallel scan: measured scaling and BSP-simulated scaling", E1Scan},
	{"E2", "Table 2", "Sorting case study across algorithms and input distributions", E2Sort},
	{"E3", "Figure 1", "Sorting strong-scaling curves", E3SortScaling},
	{"E4", "Table 3", "List ranking: pointer jumping vs sequential sweep", E4ListRank},
	{"E5", "Table 4", "Connected components across algorithms and graph classes", E5CC},
	{"E6", "Table 5", "Minimum spanning tree: Boruvka vs Kruskal vs Prim", E6MST},
	{"E7", "Figure 2", "Blocked matmul: block-size ablation", E7Matmul},
	{"E8", "Figure 3", "Jacobi stencil strong scaling", E8Stencil},
	{"E9", "Table 6", "BSP model validation: predicted vs measured", E9BSPPredict},
	{"E10", "Figure 4", "Loop-schedule ablation on uniform and skewed work", E10Schedule},
	{"E11", "Figure 5", "Grain-size autotuning curve", E11Grain},
	{"E12", "Table 7", "Work stealing vs static loops on irregular trees", E12Steal},
	{"E13", "Figure 6", "BSP cost model: broadcast algorithm crossover", E13Models},
	{"E14", "Table 8", "Parallel overhead: T1 vs best sequential", E14Overhead},
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// E1Scan regenerates Table 1: strong scaling of the parallel prefix-sum
// against the sequential sweep, on real workers and on the simulated BSP
// machine.
func E1Scan(cfg Config) *perf.Table {
	n := cfg.size(1<<22, 1<<16)
	xs := gen.Ints(n, gen.Uniform, cfg.seed())
	dst := make([]int64, n)
	r := cfg.runner()

	tseq := r.Time(func(int) { seq.Scan(dst, xs) }).Median
	t := perf.NewTable(
		fmt.Sprintf("Table 1: parallel scan, n=%d (seq sweep %s)", n, perf.FormatDuration(tseq)),
		"machine", "P", "time", "speedup-vs-seq", "efficiency")
	t1 := 0.0
	for _, p := range cfg.procs() {
		opts := cfg.opts(p, par.Static, 4096)
		m := r.Time(func(int) {
			par.ScanInclusive(dst, xs, opts, 0, func(a, b int64) int64 { return a + b })
		}).Median
		if p == 1 {
			t1 = m
		}
		t.AddRowf("real", p, perf.FormatDuration(m), perf.Speedup(tseq, m), perf.Efficiency(t1, m, p))
	}
	// Simulated machine: cost units, speedup relative to P=1 cost.
	params := machine.BSPParams{G: 2, L: 2000}
	cost1 := 0.0
	for _, p := range cfg.vprocs() {
		_, stats := bsp.ScanOn(cfg.Executor, xs[:min(n, cfg.size(1<<18, 1<<14))], p)
		params.P = p
		cost := stats.Cost(params)
		if p == 1 {
			cost1 = cost
		}
		t.AddRowf("bsp-sim", p, fmt.Sprintf("%.4g ops", cost), cost1/cost/2, cost1/cost/2/float64(p))
	}
	return t
}

// E2Sort regenerates Table 2: every sorter on every input distribution.
func E2Sort(cfg Config) *perf.Table {
	n := cfg.size(1<<20, 1<<14)
	p := runtime.GOMAXPROCS(0)
	r := cfg.runner()
	t := perf.NewTable(
		fmt.Sprintf("Table 2: sorting %d keys, P=%d", n, p),
		"algorithm", "distribution", "time", "Mkeys/s")
	for _, s := range psort.Sorters {
		for _, d := range []gen.Distribution{gen.Uniform, gen.Sorted, gen.Zipf, gen.FewUnique} {
			master := gen.Ints(n, d, cfg.seed())
			buf := make([]int64, n)
			m := r.Time(func(int) {
				copy(buf, master)
				s.Sort(buf, cfg.opts(p, par.Static, 0))
			}).Median
			t.AddRowf(s.Name, d.String(), perf.FormatDuration(m),
				perf.Throughput(n, m)/1e6)
		}
	}
	return t
}

// E3SortScaling regenerates Figure 1: speedup of the parallel sorters
// over worker counts, with Karp–Flatt serial-fraction diagnostics.
func E3SortScaling(cfg Config) *perf.Table {
	n := cfg.size(1<<20, 1<<14)
	master := gen.Ints(n, gen.Uniform, cfg.seed())
	buf := make([]int64, n)
	r := cfg.runner()
	t := perf.NewTable(
		fmt.Sprintf("Figure 1: sorting strong scaling, n=%d uniform keys", n),
		"algorithm", "P", "time", "speedup", "karp-flatt")
	for _, s := range psort.Sorters {
		if s.Name == "seq-quicksort" || s.Name == "seq-mergesort" || s.Name == "seq-radix" || s.Name == "stdlib" {
			continue
		}
		t1 := 0.0
		for _, p := range cfg.procs() {
			m := r.Time(func(int) {
				copy(buf, master)
				s.Sort(buf, cfg.opts(p, par.Static, 0))
			}).Median
			if p == 1 {
				t1 = m
			}
			t.AddRowf(s.Name, p, perf.FormatDuration(m), perf.Speedup(t1, m),
				perf.KarpFlatt(perf.Speedup(t1, m), p))
		}
	}
	return t
}

// E4ListRank regenerates Table 3: the work-inefficiency crossover of
// pointer jumping, with the PRAM model's predicted time alongside.
func E4ListRank(cfg Config) *perf.Table {
	r := cfg.runner()
	p := runtime.GOMAXPROCS(0)
	t := perf.NewTable(
		fmt.Sprintf("Table 3: list ranking, P=%d", p),
		"n", "seq-sweep", "pointer-jump", "ratio-seq/par", "model-work-ratio", "model-ratio-P64")
	sizes := []int{1 << 12, 1 << 14, 1 << 16, 1 << 18}
	if cfg.Quick {
		sizes = []int{1 << 10, 1 << 12}
	}
	for _, n := range sizes {
		l := gen.RandomList(n, cfg.seed())
		ts := r.Time(func(int) { seq.ListRank(l) }).Median
		tp := r.Time(func(int) { plist.Rank(l, cfg.opts(p, par.Static, 2048)) }).Median
		wd := machine.ListRankWD(n)
		seqWork := float64(n)
		t.AddRowf(n, perf.FormatDuration(ts), perf.FormatDuration(tp),
			ts/tp, wd.Work/seqWork, seqWork/wd.Brent(64))
	}
	return t
}

// E5CC regenerates Table 4: connected components across algorithm and
// graph class.
func E5CC(cfg Config) *perf.Table {
	scale := cfg.size(16, 10)
	gridSide := cfg.size(360, 48)
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"er-deg4", gen.ErdosRenyi(1<<scale, 4, false, cfg.seed())},
		{"er-deg16", gen.ErdosRenyi(1<<scale, 16, false, cfg.seed()+1)},
		{"rmat", gen.RMAT(scale, 8, false, cfg.seed()+2)},
		{"grid", gen.Grid2D(gridSide, gridSide, false, cfg.seed()+3)},
	}
	p := runtime.GOMAXPROCS(0)
	opts := cfg.opts(p, par.Static, 2048)
	r := cfg.runner()
	t := perf.NewTable(
		fmt.Sprintf("Table 4: connected components, P=%d", p),
		"graph", "n", "m", "algorithm", "time", "Medges/s", "components")
	for _, tc := range graphs {
		type alg struct {
			name string
			run  func() int
		}
		algs := []alg{
			{"par-labelprop", func() int { return pgraph.CountComponents(pgraph.CCLabelProp(tc.g, opts)) }},
			{"par-hook", func() int { return pgraph.CountComponents(pgraph.CCHook(tc.g, opts)) }},
			{"seq-bfs", func() int { return maxLabel(seq.ConnectedComponentsBFS(tc.g)) }},
			{"seq-unionfind", func() int { return maxLabel(seq.ConnectedComponentsUF(tc.g)) }},
		}
		for _, a := range algs {
			comps := 0
			m := r.Time(func(int) { comps = a.run() }).Median
			t.AddRowf(tc.name, tc.g.N(), tc.g.M(), a.name, perf.FormatDuration(m),
				perf.Throughput(tc.g.M(), m)/1e6, comps)
		}
	}
	return t
}

func maxLabel(labels []int) int {
	m := -1
	for _, l := range labels {
		if l > m {
			m = l
		}
	}
	return m + 1
}

// E6MST regenerates Table 5: minimum spanning forest algorithms.
func E6MST(cfg Config) *perf.Table {
	n := cfg.size(1<<15, 1<<10)
	r := cfg.runner()
	p := runtime.GOMAXPROCS(0)
	opts := cfg.opts(p, par.Static, 2048)
	t := perf.NewTable(
		fmt.Sprintf("Table 5: minimum spanning forest, P=%d", p),
		"graph", "n", "m", "algorithm", "time", "weight")
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"er-deg8", gen.ErdosRenyi(n, 8, true, cfg.seed())},
		{"er-deg32", gen.ErdosRenyi(n/2, 32, true, cfg.seed()+1)},
		{"grid", gen.Grid2D(isqrt(n), isqrt(n), true, cfg.seed()+2)},
	}
	for _, tc := range graphs {
		for _, a := range []struct {
			name string
			run  func() float64
		}{
			{"par-boruvka", func() float64 { return pgraph.MSTBoruvka(tc.g, opts) }},
			{"seq-kruskal", func() float64 { return seq.MSTKruskal(tc.g) }},
			{"seq-prim", func() float64 { return seq.MSTPrim(tc.g) }},
		} {
			w := 0.0
			m := r.Time(func(int) { w = a.run() }).Median
			t.AddRowf(tc.name, tc.g.N(), tc.g.M(), a.name, perf.FormatDuration(m), w)
		}
	}
	return t
}

func isqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}

// E7Matmul regenerates Figure 2: blocked matmul block-size ablation plus
// the naive kernel.
func E7Matmul(cfg Config) *perf.Table {
	n := cfg.size(384, 96)
	a := gen.RandomMatrix(n, n, cfg.seed())
	b := gen.RandomMatrix(n, n, cfg.seed()+1)
	p := runtime.GOMAXPROCS(0)
	r := cfg.runner()
	flops := 2 * float64(n) * float64(n) * float64(n)
	// Idealized L1 (32 KiB, 64 B lines) miss model: the design-time
	// prediction E7 validates. model-adv is predicted naive/blocked miss
	// ratio (> 1 means blocking should win at this cache size).
	l1 := machine.CacheModel{Words: 4096, Line: 8}
	t := perf.NewTable(
		fmt.Sprintf("Figure 2: matmul %dx%d, P=%d (model best block %d)", n, n, p, l1.BestBlock()),
		"kernel", "block", "time", "GFLOP/s", "model-adv-L1")
	m := r.Time(func(int) { seq.Matmul(a, b) }).Median
	t.AddRowf("seq-naive", "-", perf.FormatDuration(m), flops/m/1e9, 1.0)
	m = r.Time(func(int) { pmat.MulNaive(a, b, cfg.opts(p, par.Static, 0)) }).Median
	t.AddRowf("par-naive", "-", perf.FormatDuration(m), flops/m/1e9, 1.0)
	for _, bs := range []int{16, 32, 64, 128} {
		m := r.Time(func(int) { pmat.Mul(a, b, pmat.Config{Block: bs, Opts: cfg.opts(p, par.Static, 0)}) }).Median
		t.AddRowf("par-blocked", bs, perf.FormatDuration(m), flops/m/1e9,
			l1.BlockingSpeedupModel(n, bs))
	}
	return t
}

// E8Stencil regenerates Figure 3: Jacobi strong scaling over workers.
func E8Stencil(cfg Config) *perf.Table {
	n := cfg.size(1024, 128)
	iters := cfg.size(20, 5)
	g := gen.HotPlateGrid(n)
	r := cfg.runner()
	t := perf.NewTable(
		fmt.Sprintf("Figure 3: Jacobi %dx%d, %d sweeps", n, n, iters),
		"P", "time", "speedup", "Mcell-updates/s")
	cells := float64(n-2) * float64(n-2) * float64(iters)
	t1 := 0.0
	for _, p := range cfg.procs() {
		m := r.Time(func(int) { pstencil.Jacobi(g, iters, cfg.opts(p, par.Static, 8)) }).Median
		if p == 1 {
			t1 = m
		}
		t.AddRowf(p, perf.FormatDuration(m), perf.Speedup(t1, m), cells/m/1e6)
	}
	return t
}

// E9BSPPredict regenerates Table 6: calibrate (A,B,C) from scan traces,
// then predict the wall time of other kernels from their cost traces
// alone and report relative error.
func E9BSPPredict(cfg Config) *perf.Table {
	n := cfg.size(1<<18, 1<<13)
	xs := gen.Ints(n, gen.Uniform, cfg.seed())
	r := cfg.runner()

	// Calibration observations: scan over several virtual machine sizes
	// and problem sizes, so W, H and the superstep count vary
	// independently enough to fit 3 parameters.
	var obs []Observation
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		for _, frac := range []int{1, 4, 16} {
			in := xs[:n/frac]
			var stats *bsp.Stats
			secs := r.Time(func(int) { _, stats = bsp.ScanOn(cfg.Executor, in, p) }).Median
			obs = append(obs, Observation{Stats: stats, Seconds: secs})
			// Allreduce contributes a 3-superstep, low-h point so the
			// barrier term is identifiable (scan alone pins S at 2).
			secs = r.Time(func(int) { _, stats = bsp.SumAllReduceOn(cfg.Executor, in, p) }).Median
			obs = append(obs, Observation{Stats: stats, Seconds: secs})
		}
	}
	cal, err := Fit(obs)
	t := perf.NewTable(
		fmt.Sprintf("Table 6: BSP prediction vs measurement (n=%d; A=%.3g s/op, B=%.3g s/word, C=%.3g s/barrier)",
			n, cal.SecPerOp, cal.SecPerWord, cal.SecPerBarrier),
		"kernel", "P", "measured", "predicted", "rel-err")
	if err != nil {
		t.AddRowf("calibration-failed", "-", err.Error(), "-", "-")
		return t
	}
	type kernel struct {
		name string
		run  func(p int) *bsp.Stats
	}
	kernels := []kernel{
		{"scan", func(p int) *bsp.Stats { _, s := bsp.ScanOn(cfg.Executor, xs, p); return s }},
		{"allreduce", func(p int) *bsp.Stats { _, s := bsp.SumAllReduceOn(cfg.Executor, xs, p); return s }},
		{"samplesort", func(p int) *bsp.Stats { _, s := bsp.SampleSortOn(cfg.Executor, xs[:min(n, 1<<15)], p); return s }},
	}
	for _, k := range kernels {
		for _, p := range []int{4, 16} {
			var stats *bsp.Stats
			secs := r.Time(func(int) { stats = k.run(p) }).Median
			pred := cal.Predict(stats)
			t.AddRowf(k.name, p, perf.FormatDuration(secs), perf.FormatDuration(pred),
				RelativeError(pred, secs))
		}
	}
	return t
}

// E10Schedule regenerates Figure 4: scheduling policies on uniform vs
// skewed per-iteration work.
func E10Schedule(cfg Config) *perf.Table {
	n := cfg.size(1<<14, 1<<10)
	totalWork := cfg.size(1<<24, 1<<18)
	p := runtime.GOMAXPROCS(0)
	r := cfg.runner()
	uniform := make([]int, n)
	for i := range uniform {
		uniform[i] = totalWork / n
	}
	skewed := gen.SkewedWork(n, totalWork, 0.001, cfg.seed())
	t := perf.NewTable(
		fmt.Sprintf("Figure 4: loop schedules, n=%d iterations, P=%d", n, p),
		"workload", "policy", "time", "vs-static")
	for _, w := range []struct {
		name string
		work []int
	}{{"uniform", uniform}, {"skewed", skewed}} {
		staticT := 0.0
		for _, pol := range par.Policies {
			opts := cfg.opts(p, pol, 16)
			m := r.Time(func(int) {
				par.For(n, opts, func(i int) { spin(w.work[i]) })
			}).Median
			if pol == par.Static {
				staticT = m
			}
			t.AddRowf(w.name, pol.String(), perf.FormatDuration(m), m/staticT)
		}
	}
	return t
}

// spin burns approximately units of arithmetic work.
func spin(units int) {
	acc := uint64(1)
	for i := 0; i < units; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	if acc == 0 { // defeat dead-code elimination
		panic("unreachable")
	}
}

// E11Grain regenerates Figure 5: the grain-size U-curve for a cheap-body
// parallel reduction.
func E11Grain(cfg Config) *perf.Table {
	n := cfg.size(1<<22, 1<<16)
	xs := gen.Ints(n, gen.Uniform, cfg.seed())
	p := runtime.GOMAXPROCS(0)
	t := perf.NewTable(
		fmt.Sprintf("Figure 5: grain-size tuning for dynamic-schedule sum, n=%d, P=%d", n, p),
		"grain", "time", "vs-best")
	grains := PowersOfTwo(6, 20)
	res := TuneGrain(grains, cfg.reps(), func(grain int) {
		par.Sum(xs, cfg.opts(p, par.Dynamic, grain))
	})
	best := res.Seconds[res.Best]
	for _, g := range grains {
		t.AddRowf(g, perf.FormatDuration(res.Seconds[g]), res.Seconds[g]/best)
	}
	t.AddRowf(fmt.Sprintf("best=%d", res.Best), perf.FormatDuration(best), 1.0)
	return t
}

// E12Steal regenerates Table 7: work stealing vs static loop partitioning
// on a skewed task tree.
func E12Steal(cfg Config) *perf.Table {
	depth := cfg.size(22, 14)
	p := runtime.GOMAXPROCS(0)
	r := cfg.runner()
	t := perf.NewTable(
		fmt.Sprintf("Table 7: irregular tree (depth %d), P=%d", depth, p),
		"scheduler", "time", "steals", "steal-attempts")

	// The workload: an unbalanced recursion (a second child only every
	// third level) — static partitioning over its leaf list clusters
	// the heavy subtrees onto few workers.
	pool := sched.NewPoolOn(cfg.Executor, p)
	var root func(d int) sched.Task
	root = func(d int) sched.Task {
		return func(w *sched.Worker) {
			if d <= 0 {
				spin(20000)
				return
			}
			w.Spawn(root(d - 1))
			if d%3 == 0 {
				w.Spawn(root(d - 2))
			}
		}
	}
	m := r.Time(func(int) { pool.Run(root(depth)) }).Median
	t.AddRowf("work-stealing", perf.FormatDuration(m), int(pool.Steals()), int(pool.StealAttempts()))

	// Static emulation: expand the same tree sequentially to a task
	// list, then par.For over it with static scheduling. The list order
	// clusters heavy subtrees, reproducing the imbalance.
	var tasks []int
	var expand func(d int)
	expand = func(d int) {
		if d <= 0 {
			tasks = append(tasks, 20000)
			return
		}
		expand(d - 1)
		if d%3 == 0 {
			expand(d - 2)
		}
	}
	expand(depth)
	for _, pol := range []par.Policy{par.Static, par.Guided} {
		m := r.Time(func(int) {
			par.For(len(tasks), cfg.opts(p, pol, 64), func(i int) { spin(tasks[i]) })
		}).Median
		t.AddRowf("loop-"+pol.String(), perf.FormatDuration(m), "-", "-")
	}
	return t
}

// E13Models regenerates Figure 6: the broadcast-algorithm crossover
// under the BSP cost model, plus the LogP prediction for the same
// pattern. Model-only: deterministic, no timing.
func E13Models(cfg Config) *perf.Table {
	t := perf.NewTable(
		"Figure 6: broadcast cost under BSP (direct vs tree) and LogP",
		"P", "g", "l", "bsp-direct", "bsp-tree", "winner", "logp-tree")
	for _, p := range cfg.vprocs() {
		if p < 2 {
			continue
		}
		_, direct := bsp.BroadcastDirectOn(cfg.Executor, 1, p)
		_, tree := bsp.BroadcastTreeOn(cfg.Executor, 1, p)
		for _, gl := range []struct{ g, l float64 }{{1, 10}, {1, 10000}, {50, 10}} {
			params := machine.BSPParams{P: p, G: gl.g, L: gl.l}
			cd, ct := direct.Cost(params), tree.Cost(params)
			winner := "direct"
			if ct < cd {
				winner = "tree"
			}
			logp := machine.LogPParams{L: gl.l, O: 1, G: gl.g, P: p}
			t.AddRowf(p, gl.g, gl.l, cd, ct, winner, logp.Broadcast())
		}
	}
	return t
}

// E14Overhead regenerates Table 8: single-worker parallel time over best
// sequential time for every kernel (the price of parallelization).
func E14Overhead(cfg Config) *perf.Table {
	r := cfg.runner()
	t := perf.NewTable(
		"Table 8: parallel overhead T1/Tseq",
		"kernel", "Tseq", "T1", "overhead")
	one := cfg.opts(1, par.Static, 0)

	n := cfg.size(1<<20, 1<<14)
	xs := gen.Ints(n, gen.Uniform, cfg.seed())
	dst := make([]int64, n)
	buf := make([]int64, n)

	addRow := func(name string, fseq, fpar func()) {
		ts := r.Time(func(int) { fseq() }).Median
		t1 := r.Time(func(int) { fpar() }).Median
		t.AddRowf(name, perf.FormatDuration(ts), perf.FormatDuration(t1), t1/ts)
	}
	addRow("scan",
		func() { seq.Scan(dst, xs) },
		func() { par.ScanInclusive(dst, xs, one, 0, func(a, b int64) int64 { return a + b }) })
	addRow("sort",
		func() { copy(buf, xs); seq.Quicksort(buf) },
		func() { copy(buf, xs); psort.SampleSort(buf, one) })
	l := gen.RandomList(cfg.size(1<<16, 1<<12), cfg.seed())
	addRow("listrank",
		func() { seq.ListRank(l) },
		func() { plist.Rank(l, one) })
	g := gen.ErdosRenyi(cfg.size(1<<14, 1<<10), 8, false, cfg.seed())
	addRow("connected-components",
		func() { seq.ConnectedComponentsUF(g) },
		func() { pgraph.CCHook(g, one) })
	wgr := gen.ErdosRenyi(cfg.size(1<<13, 1<<9), 8, true, cfg.seed())
	addRow("mst",
		func() { seq.MSTKruskal(wgr) },
		func() { pgraph.MSTBoruvka(wgr, one) })
	mm := cfg.size(256, 64)
	ma := gen.RandomMatrix(mm, mm, cfg.seed())
	mb := gen.RandomMatrix(mm, mm, cfg.seed()+1)
	addRow("matmul",
		func() { seq.Matmul(ma, mb) },
		func() { pmat.Mul(ma, mb, pmat.Config{Opts: one}) })
	grid := gen.HotPlateGrid(cfg.size(512, 64))
	addRow("jacobi",
		func() { seq.Jacobi(grid, 10) },
		func() { pstencil.Jacobi(grid, 10, one) })
	return t
}

// RunAll executes every experiment and returns the tables in order.
func RunAll(cfg Config) []*perf.Table {
	out := make([]*perf.Table, 0, len(Experiments))
	for _, e := range Experiments {
		out = append(out, e.Run(cfg))
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

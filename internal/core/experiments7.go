package core

import (
	"fmt"
	"runtime"

	"repro/internal/adapt"
	"repro/internal/kernel"
	"repro/internal/par"
	"repro/internal/perf"
	"repro/internal/serve"
)

// Sixth batch of extension experiments: the kernel registry as the
// experiment driver. E25's row set is kernel.All() — registering a
// kernel adds its row to Table 15 with no edits here.

func init() {
	Experiments = append(Experiments,
		Experiment{"E25", "Table 15", "Registry kernel ladder: one-shot vs serve batch path vs streamed pipeline, per registered kernel", E25KernelRegistry},
	)
}

// E25KernelRegistry regenerates Table 15: every registered kernel
// measured through the three execution ladders the registry wires it
// into — a direct one-shot Run (the classic benchmark shape), the
// serve batch path at request-sized inputs (admission, queueing and
// the fused batch loop included), and the streamed pipeline route for
// kernels with a Stream adapter (the server's own cutoff does the
// routing, lowered so the table's big inputs qualify). Comparing the
// serve column against one-shot at the same size exposes the serving
// runtime's overhead per request; the stream column exposes what
// chunked overlap buys on long requests.
func E25KernelRegistry(cfg Config) *perf.Table {
	p := runtime.GOMAXPROCS(0)
	r := cfg.runner()
	nBig := cfg.size(1<<17, 1<<13)
	nSmall := cfg.size(4096, 1024)
	reqs := cfg.size(256, 32)
	t := perf.NewTable(
		fmt.Sprintf("Table 15: registry kernel ladder, P=%d (one-shot/stream n=%d, serve n=%d, %d reqs/point)",
			p, nBig, nSmall, reqs),
		"kernel", "variants", "one-shot", "serve(us/req)", "stream")

	var ctl *adapt.Controller
	if cfg.Adaptive {
		ctl = adapt.Default()
	}
	s := serve.New(serve.Config{
		Workers:        p,
		Executor:       cfg.Executor,
		Scratch:        cfg.Scratch,
		Adaptive:       ctl,
		PipelineCutoff: nBig,
	})
	defer s.Close()
	opts := cfg.opts(p, par.Static, 0)

	for _, k := range kernel.All() {
		a := k.Gen(nBig, cfg.seed())
		one := r.Time(func(int) { k.Run(a, opts) }).Median

		small := k.Gen(nSmall, cfg.seed())
		perReq := 0.0
		if err := s.Call("e25", k, small); err != nil {
			t.AddRowf(k.Name, len(k.Variants), perf.FormatDuration(one), "error: "+err.Error(), "-")
			continue
		}
		perReq = r.Time(func(int) {
			for i := 0; i < reqs; i++ {
				_ = s.Call("e25", k, small)
			}
		}).Median / float64(reqs)

		stream := "-"
		if k.Stream != nil {
			big := k.Gen(nBig, cfg.seed())
			st := r.Time(func(int) { _ = s.Call("e25", k, big) }).Median
			stream = perf.FormatDuration(st)
		}
		t.AddRowf(k.Name, len(k.Variants), perf.FormatDuration(one), perReq*1e6, stream)
	}
	return t
}

package core

import (
	"time"

	"repro/internal/gen"
	"repro/internal/kernel"
	"repro/internal/perf"
	"repro/internal/serve"
	"repro/internal/wire"
)

// Ninth batch of extension experiments: what the network front door
// costs — the same serving path reached in-process and over a socket.

func init() {
	Experiments = append(Experiments,
		Experiment{"E28", "Table 18", "Wire front door: in-process vs framed-socket vs chunk-streamed serving latency", E28WireDoor},
	)
}

// E28WireDoor regenerates Table 18: the same requests against the
// same server, submitted three ways — direct in-process calls, framed
// over a loopback TCP socket (one-shot responses), and framed with
// response streaming forced on (every reply crosses as chunk frames
// plus a geometry frame). The deltas are the protocol's own bill: the
// wire column adds two syscall-bounded frame copies and a scheduler
// handoff to the in-process floor, and the stream column adds the
// per-chunk write loop on top of that. Because the decoder aliases
// request payloads in place from connection-owned slabs, the gap
// stays flat in n for the kernels whose reply is small (sum) and
// grows only with the response bytes actually crossing for the rest —
// which is the zero-copy claim made measurable. Every column is an
// idle-path floor, so it takes the minimum over reps.
func E28WireDoor(cfg Config) *perf.Table {
	const workers = 4
	n := cfg.size(1<<16, 1<<12)
	reps := cfg.reps()
	t := perf.NewTable(
		"Table 18: wire front door — in-process vs framed socket vs chunk-streamed latency, W=4",
		"kernel", "n", "inproc(us)", "wire(us)", "wire-stream(us)", "wire-cost")

	srv := serve.New(serve.Config{
		Executor: cfg.Executor,
		Scratch:  cfg.Scratch,
		Workers:  workers,
	})
	defer srv.Close()
	// Two doors onto the one server: default thresholds (n-element
	// replies go back one-shot at these sizes), and streaming forced
	// down so every reply crosses chunked.
	l, err := wire.Listen("tcp", "127.0.0.1:0", srv, wire.Config{})
	if err != nil {
		return t
	}
	defer l.Close()
	ls, err := wire.Listen("tcp", "127.0.0.1:0", srv, wire.Config{StreamCutoff: 1024, StreamChunk: 16 << 10})
	if err != nil {
		return t
	}
	defer ls.Close()
	cl, err := wire.Dial("tcp", l.Addr().String())
	if err != nil {
		return t
	}
	defer cl.Close()
	cls, err := wire.Dial("tcp", ls.Addr().String())
	if err != nil {
		return t
	}
	defer cls.Close()

	const tenant = "t"
	const buckets = 256
	base := gen.Ints(n, gen.Uniform, cfg.seed())
	bucket := wire.CanonicalBucket(buckets)

	// Each case rebuilds its Args around a fresh copy of the input
	// outside the clock, so every rep does the same kernel work and
	// the cache-free request path is what gets timed.
	cases := []struct {
		name    string
		newArgs func(xs []int64) *kernel.Args
	}{
		{"sort", func(xs []int64) *kernel.Args { return &kernel.Args{Xs: xs} }},
		{"scan", func(xs []int64) *kernel.Args { return &kernel.Args{Xs: xs, Dst: make([]int64, len(xs))} }},
		{"sum", func(xs []int64) *kernel.Args { return &kernel.Args{Xs: xs} }},
		{"histogram", func(xs []int64) *kernel.Args {
			return &kernel.Args{Xs: xs, Hist: make([]int, buckets), Bucket: bucket}
		}},
	}

	timeFloor := func(k *kernel.Kernel, newArgs func(xs []int64) *kernel.Args, call func(a *kernel.Args) error) time.Duration {
		best := time.Duration(0)
		xs := make([]int64, n)
		for rep := 0; rep < reps; rep++ {
			copy(xs, base)
			a := newArgs(xs)
			t0 := time.Now()
			err := call(a)
			d := time.Since(t0)
			if err != nil {
				continue
			}
			if best == 0 || d < best {
				best = d
			}
		}
		return best
	}

	for _, c := range cases {
		k := kernel.MustLookup(c.name)
		inproc := timeFloor(k, c.newArgs, func(a *kernel.Args) error { return srv.Call(tenant, k, a) })
		wired := timeFloor(k, c.newArgs, func(a *kernel.Args) error { return cl.Call(tenant, k, a) })
		streamed := timeFloor(k, c.newArgs, func(a *kernel.Args) error { return cls.Call(tenant, k, a) })
		cost := 0.0
		if inproc > 0 {
			cost = float64(wired) / float64(inproc)
		}
		t.AddRowf(c.name, n,
			float64(inproc)/1e3, float64(wired)/1e3, float64(streamed)/1e3, cost)
	}
	return t
}

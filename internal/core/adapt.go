package core

import (
	"runtime"

	"repro/internal/adapt"
)

// SeedAdaptive seeds the process-wide adaptive controller's cost-model
// prior from a fitted calibration: the A coefficient becomes the
// per-operation time and the BSP parameters it implies supply the
// communication and barrier terms. Call it after Fit so the online
// tuner's first decisions start from the measured machine instead of
// the built-in rough guess. Classes created before seeding keep their
// old priors; measured feedback erases the difference either way.
func SeedAdaptive(cal Calibration) {
	adapt.Default().SetPrior(cal.SecPerOp, cal.BSPParams(runtime.GOMAXPROCS(0)))
}

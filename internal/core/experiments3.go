package core

import (
	"fmt"
	"runtime"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/perf"
	"repro/internal/pgraph"
	"repro/internal/psort"
	"repro/internal/pstencil"
	"repro/internal/sched"
)

// Second batch of extension experiments (E19–E21): the method ablations
// added in the refinement phase of the engineering loop — relaxation
// scheme, task- vs loop-parallel sorting, and BFS direction switching.

func init() {
	Experiments = append(Experiments,
		Experiment{"E19", "Figure 9", "Stencil relaxation ablation: Jacobi vs red-black Gauss-Seidel", E19Relaxation},
		Experiment{"E20", "Table 11", "Task-parallel quicksort (work stealing) vs loop-parallel sorters", E20StealSort},
		Experiment{"E21", "Figure 10", "BFS direction ablation: top-down vs direction-optimizing", E21BFSDirection},
	)
}

// E19Relaxation regenerates Figure 9: sweeps-to-convergence and time for
// Jacobi vs red-black Gauss–Seidel at several grid sizes. The expected
// shape is ~2x fewer sweeps for red-black at equal per-sweep cost.
func E19Relaxation(cfg Config) *perf.Table {
	p := runtime.GOMAXPROCS(0)
	opts := cfg.opts(p, par.Static, 8)
	r := cfg.runner()
	t := perf.NewTable(
		fmt.Sprintf("Figure 9: relaxation to |delta|<1e-4, P=%d", p),
		"grid", "method", "sweeps", "time", "sweep-ratio")
	sizes := []int{33, 65, 129}
	if cfg.Quick {
		sizes = []int{17, 33}
	}
	for _, n := range sizes {
		g := gen.HotPlateGrid(n)
		var jIters, gsIters int
		jT := r.Time(func(int) { _, jIters = pstencil.JacobiToConvergence(g, 1e-4, 1000000, opts) }).Median
		gsT := r.Time(func(int) { _, gsIters = pstencil.GaussSeidelRBToConvergence(g, 1e-4, 1000000, opts) }).Median
		t.AddRowf(fmt.Sprintf("%dx%d", n, n), "jacobi", jIters, perf.FormatDuration(jT), 1.0)
		t.AddRowf(fmt.Sprintf("%dx%d", n, n), "redblack-gs", gsIters, perf.FormatDuration(gsT),
			float64(gsIters)/float64(jIters))
	}
	return t
}

// E20StealSort regenerates Table 11: the work-stealing quicksort against
// the loop-parallel sorters on uniform and adversarial inputs, with
// steal statistics.
func E20StealSort(cfg Config) *perf.Table {
	n := cfg.size(1<<20, 1<<14)
	p := runtime.GOMAXPROCS(0)
	r := cfg.runner()
	pool := sched.NewPoolOn(cfg.Executor, p)
	t := perf.NewTable(
		fmt.Sprintf("Table 11: task- vs loop-parallel sorting, n=%d, P=%d", n, p),
		"algorithm", "distribution", "time", "steals")
	for _, d := range []gen.Distribution{gen.Uniform, gen.Sorted, gen.FewUnique} {
		master := gen.Ints(n, d, cfg.seed())
		buf := make([]int64, n)
		m := r.Time(func(int) {
			copy(buf, master)
			psort.QuickSortSteal(buf, pool)
		}).Median
		t.AddRowf("steal-quicksort", d.String(), perf.FormatDuration(m), int(pool.Steals()))
		m = r.Time(func(int) {
			copy(buf, master)
			psort.SampleSort(buf, cfg.opts(p, par.Static, 0))
		}).Median
		t.AddRowf("samplesort", d.String(), perf.FormatDuration(m), "-")
		m = r.Time(func(int) {
			copy(buf, master)
			psort.MergeSort(buf, cfg.opts(p, par.Static, 0))
		}).Median
		t.AddRowf("mergesort", d.String(), perf.FormatDuration(m), "-")
	}
	return t
}

// E21BFSDirection regenerates Figure 10: plain top-down BFS vs the
// direction-optimizing hybrid across graph classes. The hybrid's win is
// confined to low-diameter graphs whose frontier engulfs the graph; on
// meshes the frontier never crosses the threshold and the two coincide.
func E21BFSDirection(cfg Config) *perf.Table {
	scale := cfg.size(15, 10)
	p := runtime.GOMAXPROCS(0)
	opts := cfg.opts(p, par.Static, 1024)
	r := cfg.runner()
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"er-deg16", gen.ErdosRenyi(1<<scale, 16, false, cfg.seed())},
		{"rmat", gen.RMAT(scale, 8, false, cfg.seed()+1)},
		{"grid", gen.Grid2D(1<<(scale/2), 1<<(scale/2), false, cfg.seed()+2)},
	}
	t := perf.NewTable(
		fmt.Sprintf("Figure 10: BFS direction ablation, P=%d", p),
		"graph", "n", "m", "algorithm", "time", "Medges/s")
	for _, tc := range graphs {
		for _, a := range []struct {
			name string
			run  func() []int32
		}{
			{"top-down", func() []int32 { return pgraph.BFS(tc.g, 0, opts) }},
			{"hybrid-a14", func() []int32 { return pgraph.BFSHybrid(tc.g, 0, 14, opts) }},
			{"bottom-up", func() []int32 { return pgraph.BFSHybrid(tc.g, 0, 1<<30, opts) }},
		} {
			m := r.Time(func(int) { a.run() }).Median
			t.AddRowf(tc.name, tc.g.N(), tc.g.M(), a.name, perf.FormatDuration(m),
				perf.Throughput(tc.g.M(), m)/1e6)
		}
	}
	return t
}

package core

import (
	"errors"
	"math"

	"repro/internal/bsp"
	"repro/internal/machine"
)

// Calibration holds fitted machine parameters mapping the BSP runtime's
// abstract cost units to wall-clock seconds on the host:
//
//	time ≈ A·W + B·H + C·S
//
// where W is summed per-superstep max work (operations), H summed max
// h-relation (words), and S the superstep count. A is seconds/op, B
// seconds/word, C seconds/barrier — i.e. C/A is the BSP parameter l and
// B/A is g.
type Calibration struct {
	SecPerOp      float64 // A
	SecPerWord    float64 // B
	SecPerBarrier float64 // C
}

// BSPParams converts the calibration into canonical BSP parameters
// (g and l expressed in operation units) for a machine of p processors.
func (c Calibration) BSPParams(p int) machine.BSPParams {
	if c.SecPerOp <= 0 {
		return machine.BSPParams{P: p}
	}
	return machine.BSPParams{P: p, G: c.SecPerWord / c.SecPerOp, L: c.SecPerBarrier / c.SecPerOp}
}

// Predict returns the predicted wall-clock seconds for a cost trace.
func (c Calibration) Predict(s *bsp.Stats) float64 {
	return c.SecPerOp*s.TotalW() + c.SecPerWord*s.TotalH() + c.SecPerBarrier*float64(s.Supersteps())
}

// Observation pairs a cost trace with its measured wall-clock seconds.
type Observation struct {
	Stats   *bsp.Stats
	Seconds float64
}

// ErrCalibration reports an unfittable observation set.
var ErrCalibration = errors.New("core: calibration requires >= 3 observations with varying W, H and S")

// Fit solves the 3-parameter least squares for (A, B, C) over the
// observations via the normal equations. Coefficients are clamped to be
// non-negative (a negative unit cost is measurement noise).
func Fit(obs []Observation) (Calibration, error) {
	if len(obs) < 3 {
		return Calibration{}, ErrCalibration
	}
	// Normal equations: M x = v with rows over (W, H, S) features.
	var m [3][3]float64
	var v [3]float64
	for _, o := range obs {
		f := [3]float64{o.Stats.TotalW(), o.Stats.TotalH(), float64(o.Stats.Supersteps())}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				m[i][j] += f[i] * f[j]
			}
			v[i] += f[i] * o.Seconds
		}
	}
	x, ok := solve3(m, v)
	if !ok {
		return Calibration{}, ErrCalibration
	}
	cal := Calibration{
		SecPerOp:      math.Max(0, x[0]),
		SecPerWord:    math.Max(0, x[1]),
		SecPerBarrier: math.Max(0, x[2]),
	}
	return cal, nil
}

// solve3 solves a 3x3 linear system by Gaussian elimination with partial
// pivoting; ok is false when the system is singular.
func solve3(m [3][3]float64, v [3]float64) ([3]float64, bool) {
	// Augment.
	var a [3][4]float64
	for i := 0; i < 3; i++ {
		copy(a[i][:3], m[i][:])
		a[i][3] = v[i]
	}
	for col := 0; col < 3; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-300 {
			return [3]float64{}, false
		}
		a[col], a[piv] = a[piv], a[col]
		// Eliminate below.
		for r := col + 1; r < 3; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < 4; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	var x [3]float64
	for i := 2; i >= 0; i-- {
		s := a[i][3]
		for j := i + 1; j < 3; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x, true
}

// RelativeError returns |predicted-measured| / measured (NaN when
// measured is 0), the accuracy metric of experiments E9 and E13.
func RelativeError(predicted, measured float64) float64 {
	if measured == 0 {
		return math.NaN()
	}
	return math.Abs(predicted-measured) / measured
}

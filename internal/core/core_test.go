package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/bsp"
	"repro/internal/gen"
	"repro/internal/machine"
	"repro/internal/par"
)

func quickCfg() Config {
	return Config{Quick: true, Reps: 1, Procs: []int{1, 2}, VProcs: []int{1, 4, 16}}
}

func TestTuneGrainPicksACandidate(t *testing.T) {
	res := TuneGrain([]int{8, 64, 512}, 1, func(grain int) {
		par.Sum(gen.Ints(1<<12, gen.Uniform, 1), par.Options{Procs: 2, Grain: grain})
	})
	if _, ok := res.Seconds[res.Best]; !ok {
		t.Fatalf("best %d not among candidates", res.Best)
	}
	if len(res.Seconds) != 3 {
		t.Fatalf("measured %d candidates", len(res.Seconds))
	}
}

func TestTunePolicyCoversAll(t *testing.T) {
	best, times := TunePolicy(1, func(pol par.Policy) {
		par.For(1000, par.Options{Procs: 2, Policy: pol, Grain: 16}, func(i int) {})
	})
	if len(times) != len(par.Policies) {
		t.Fatalf("measured %d policies", len(times))
	}
	if _, ok := times[best]; !ok {
		t.Fatal("best policy not measured")
	}
}

func TestPowersOfTwo(t *testing.T) {
	got := PowersOfTwo(3, 5)
	want := []int{8, 16, 32}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PowersOfTwo = %v", got)
		}
	}
}

func TestStopwatchPositive(t *testing.T) {
	s := Stopwatch(func() {
		acc := 0
		for i := 0; i < 100000; i++ {
			acc += i
		}
		_ = acc
	})
	if s <= 0 {
		t.Fatalf("Stopwatch = %v", s)
	}
}

func TestFitRecoversSyntheticParameters(t *testing.T) {
	// Build synthetic observations with known (A, B, C).
	a, b, c := 2e-9, 5e-8, 3e-6
	mk := func(w, h float64, s int) Observation {
		trace := make([]machine.Superstep, s)
		for i := range trace {
			trace[i] = machine.Superstep{W: w / float64(s), H: h / float64(s)}
		}
		st := &bsp.Stats{Trace: trace}
		return Observation{Stats: st, Seconds: a*w + b*h + c*float64(s)}
	}
	obs := []Observation{
		mk(1e6, 10, 2), mk(2e6, 100, 2), mk(5e5, 1000, 4),
		mk(4e6, 50, 8), mk(1e5, 5000, 16),
	}
	cal, err := Fit(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cal.SecPerOp-a)/a > 1e-6 ||
		math.Abs(cal.SecPerWord-b)/b > 1e-6 ||
		math.Abs(cal.SecPerBarrier-c)/c > 1e-6 {
		t.Fatalf("fit = %+v, want (%v,%v,%v)", cal, a, b, c)
	}
	// Prediction on a fresh trace must be near-exact.
	fresh := mk(3e6, 700, 5)
	pred := cal.Predict(fresh.Stats)
	if RelativeError(pred, fresh.Seconds) > 1e-6 {
		t.Fatalf("prediction error %v", RelativeError(pred, fresh.Seconds))
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	// Degenerate: identical observations make the system singular.
	st := &bsp.Stats{Trace: []machine.Superstep{{W: 1, H: 1}}}
	obs := []Observation{{st, 1}, {st, 1}, {st, 1}}
	if _, err := Fit(obs); err == nil {
		t.Fatal("singular fit accepted")
	}
}

func TestCalibrationBSPParams(t *testing.T) {
	cal := Calibration{SecPerOp: 1e-9, SecPerWord: 4e-9, SecPerBarrier: 1e-6}
	p := cal.BSPParams(8)
	if p.P != 8 || math.Abs(p.G-4) > 1e-12 || math.Abs(p.L-1000) > 1e-9 {
		t.Fatalf("BSPParams = %+v", p)
	}
	if z := (Calibration{}).BSPParams(4); z.P != 4 || z.G != 0 || z.L != 0 {
		t.Fatalf("zero calibration params = %+v", z)
	}
}

func TestRelativeError(t *testing.T) {
	if RelativeError(110, 100) != 0.1 {
		t.Fatal("RelativeError")
	}
	if !math.IsNaN(RelativeError(1, 0)) {
		t.Fatal("zero measured must be NaN")
	}
}

func TestByID(t *testing.T) {
	e, ok := ByID("E1")
	if !ok || e.ID != "E1" {
		t.Fatal("E1 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("phantom experiment found")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	if len(Experiments) != 28 {
		t.Fatalf("suite has %d experiments, want 28 (14 core + 14 extensions)", len(Experiments))
	}
	seen := map[string]bool{}
	for _, e := range Experiments {
		if e.Run == nil || e.Title == "" || e.Ref == "" {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
}

// TestAllExperimentsProduceTables smoke-runs every experiment at quick
// size: each must return a non-empty, renderable table.
func TestAllExperimentsProduceTables(t *testing.T) {
	cfg := quickCfg()
	for _, e := range Experiments {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb := e.Run(cfg)
			if tb == nil || tb.NumRows() == 0 {
				t.Fatalf("%s produced an empty table", e.ID)
			}
			out := tb.String()
			if !strings.Contains(out, "\n") {
				t.Fatalf("%s rendered nothing", e.ID)
			}
		})
	}
}

func TestSpinScalesWithUnits(t *testing.T) {
	t1 := Stopwatch(func() { spin(1 << 20) })
	t2 := Stopwatch(func() { spin(1 << 24) })
	if t2 <= t1 {
		t.Fatalf("spin not monotone: %v vs %v", t1, t2)
	}
}

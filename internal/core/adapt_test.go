package core

import (
	"testing"

	"repro/internal/adapt"
	"repro/internal/par"
	"repro/internal/perf"
	"repro/internal/racecheck"
)

// TestConvergedAdaptiveMatchesTunedGrain is the acceptance check for
// the online tuner: on a fixed kernel and size, a converged adaptive
// call must land within 5% of the best result the offline TuneGrain
// sweep finds by hand (plus a small absolute cushion for timer noise —
// wall-clock comparisons on shared CI hardware are never exact).
func TestConvergedAdaptiveMatchesTunedGrain(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("race instrumentation distorts timings")
	}
	if testing.Short() {
		t.Skip("timing comparison needs full-size runs")
	}
	const n = 1 << 20
	const procs = 4
	xs := make([]float64, n)
	dst := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i%1024) * 0.5
	}
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = xs[i]*1.000001 + 0.5
		}
	}
	grains := []int{256, 1024, 4096, 16384}

	var lastErr string
	for attempt := 0; attempt < 3; attempt++ {
		// Offline: the hand sweep the methodology prescribes.
		tuned := TuneGrain(grains, 5, func(grain int) {
			par.ForRange(n, par.Options{Procs: procs, Policy: par.Dynamic,
				Grain: grain, SerialCutoff: 1}, body)
		})
		best := tuned.Seconds[tuned.Best]

		// Online: drive one call site to convergence, then time it.
		ctl := adapt.New(adapt.Config{ConvergeAfter: 32, Seed: uint64(attempt + 1)})
		aOpts := par.Options{Procs: procs, Adaptive: ctl}
		for i := 0; i < 80; i++ {
			par.ForRange(n, aOpts, body)
		}
		r := perf.Runner{Warmup: 2, Reps: 5}
		adaptive := r.Time(func(int) { par.ForRange(n, aOpts, body) }).Median

		limit := best*1.05 + 100e-6
		if adaptive <= limit {
			if attempt > 0 {
				t.Logf("passed on attempt %d", attempt+1)
			}
			t.Logf("adaptive %.3gs vs best tuned %.3gs (grain %d)", adaptive, best, tuned.Best)
			return
		}
		lastErr = perf.FormatDuration(adaptive) + " adaptive vs " + perf.FormatDuration(best) + " tuned best"
		t.Logf("attempt %d: %s", attempt+1, lastErr)
	}
	t.Errorf("converged adaptive call not within 5%% of TuneGrain best after 3 attempts: %s", lastErr)
}

// Package core is the engineering-loop library: it ties the substrates
// together into the methodology's workflow — tune (grain size, schedule
// policy), calibrate (fit machine-model parameters from measurements),
// predict (evaluate model costs), and experiment (regenerate every table
// and figure of the reconstructed evaluation, E1–E14).
//
// Layering: core is the top of the internal stack — it consumes
// every kernel package plus gen, perf, machine, pipeline and serve
// to regenerate the evaluation (experiments E1–E23), and feeds the
// repro facade (RunExperiment) and cmd/parbench.
package core

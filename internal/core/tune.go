package core

import (
	"time"

	"repro/internal/par"
	"repro/internal/perf"
)

// TuneResult is the outcome of a parameter autotuning sweep.
type TuneResult struct {
	// Best is the winning parameter value.
	Best int
	// Seconds maps each candidate to its median measured time.
	Seconds map[int]float64
}

// TuneGrain measures run over the candidate grain sizes and returns the
// fastest. run must execute the kernel with the given grain; candidates
// must be non-empty. This is the methodology's standard response to the
// grain-size question: measure, don't guess (experiment E11).
func TuneGrain(candidates []int, reps int, run func(grain int)) TuneResult {
	return tuneInt(candidates, reps, run)
}

// TunePolicy measures run over scheduling policies and returns the
// fastest policy (experiment E10's inner loop).
func TunePolicy(reps int, run func(policy par.Policy)) (par.Policy, map[par.Policy]float64) {
	times := make(map[par.Policy]float64, len(par.Policies))
	best := par.Policies[0]
	for _, pol := range par.Policies {
		r := perf.Runner{Warmup: 1, Reps: reps}
		s := r.Time(func(int) { run(pol) })
		times[pol] = s.Median
		if s.Median < times[best] {
			best = pol
		}
	}
	return best, times
}

func tuneInt(candidates []int, reps int, run func(v int)) TuneResult {
	res := TuneResult{Seconds: make(map[int]float64, len(candidates))}
	bestT := -1.0
	for _, c := range candidates {
		r := perf.Runner{Warmup: 1, Reps: reps}
		s := r.Time(func(int) { run(c) })
		res.Seconds[c] = s.Median
		if bestT < 0 || s.Median < bestT {
			bestT = s.Median
			res.Best = c
		}
	}
	return res
}

// PowersOfTwo returns {2^lo, ..., 2^hi} for tuning sweeps.
func PowersOfTwo(lo, hi int) []int {
	var out []int
	for e := lo; e <= hi; e++ {
		out = append(out, 1<<e)
	}
	return out
}

// Stopwatch measures one execution of fn in seconds.
func Stopwatch(fn func()) float64 {
	start := time.Now()
	fn()
	return time.Since(start).Seconds()
}

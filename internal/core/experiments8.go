package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adapt"
	"repro/internal/gen"
	"repro/internal/loadgen"
	"repro/internal/perf"
	"repro/internal/serve"
)

// Seventh batch of extension experiments: measurement methodology —
// what the load harness itself does to the tail-latency numbers.

func init() {
	Experiments = append(Experiments,
		Experiment{"E26", "Table 16", "Coordinated omission: closed-loop vs open-loop serving at matched offered load", E26OpenLoop},
	)
}

// E26OpenLoop regenerates Table 16: the same server, the same request
// mix, the same offered load — measured two ways. The closed-loop row
// is the harness every earlier experiment used: clients issue, wait,
// issue again, so while a batch stalls the clients stop arriving and
// the stall's queueing delay is invisible to their percentiles
// (coordinated omission). Its achieved rate defines the offered load
// for the open-loop rows: arrivals drawn from a fixed schedule
// (constant and Poisson) fire on time regardless of server state, and
// each sample reports both an uncorrected latency (send→done, the
// closed-loop-comparable clock) and a corrected one (intended
// arrival→done, the honest clock). The p99 gap between the closed-loop
// row and the corrected open-loop columns is the measurement bug made
// visible. The final row adds an SLO deadline budget: the door and
// dispatcher refuse requests that cannot make it, trading a fraction
// of errors for a bounded tail — the refused column is that trade
// printed next to its benefit.
func E26OpenLoop(cfg Config) *perf.Table {
	const workers = 4
	const clients = 16
	const n = 2048
	t := perf.NewTable(
		"Table 16: coordinated omission — closed-loop vs open-loop at matched offered load, W=4",
		"mode", "reqs", "rate(r/s)", "ok", "refused", "p50(us)", "p99(us)", "p50corr(us)", "p99corr(us)")

	reqs := 4000
	if cfg.Quick {
		reqs = 600
	}
	base := gen.Ints(n, gen.Uniform, cfg.seed())
	bucket := func(v int64) int { return int(uint64(v) % 1024) }

	newServer := func(slo time.Duration) *serve.Server {
		scfg := serve.Config{Executor: cfg.Executor, Scratch: cfg.Scratch, Workers: workers, SLO: slo}
		if cfg.Adaptive {
			scfg.Adaptive = adapt.Default()
		}
		return serve.New(scfg)
	}

	// Closed loop at full throttle: its achieved rate is the offered
	// load every open-loop row replays.
	srv := newServer(0)
	lat := make([]float64, reqs)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := string(rune('a' + c%4))
			xs := make([]int64, n)
			hist := make([]int, 1024)
			for {
				i := int(next.Add(1)) - 1
				if i >= reqs {
					return
				}
				copy(xs, base)
				t0 := time.Now()
				if i%2 == 0 {
					_ = srv.Sort(tenant, xs)
				} else {
					_ = srv.Histogram(tenant, hist, xs, bucket)
				}
				lat[i] = time.Since(t0).Seconds()
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	srv.Close()
	rate := float64(reqs) / wall.Seconds()
	closedP99 := perf.Percentile(lat, 99)
	t.AddRowf("closed-loop", reqs, int(rate+0.5), reqs, 0,
		perf.Percentile(lat, 50)*1e6, closedP99*1e6, "-", "-")

	// Open-loop rows at the matched rate. The SLO budget for the last
	// row is a few closed-loop p99s: loose enough that an unloaded
	// server never trips it, tight enough that omission-scale queueing
	// does.
	slo := time.Duration(4 * closedP99 * float64(time.Second))
	rows := []struct {
		name    string
		poisson bool
		slo     time.Duration
	}{
		{"open-loop const", false, 0},
		{"open-loop poisson", true, 0},
		{"open-loop poisson+slo", true, slo},
	}
	for _, row := range rows {
		srv := newServer(row.slo)
		var sched loadgen.Schedule
		if row.poisson {
			sched = loadgen.Poisson(reqs, rate, cfg.seed())
		} else {
			sched = loadgen.Constant(reqs, rate)
		}
		type bufs struct {
			xs   []int64
			hist []int
		}
		pool := sync.Pool{New: func() any {
			return &bufs{xs: make([]int64, n), hist: make([]int, 1024)}
		}}
		res := loadgen.Run(sched, func(i int) error {
			bf := pool.Get().(*bufs)
			defer pool.Put(bf)
			copy(bf.xs, base)
			tenant := string(rune('a' + i%4))
			if i%2 == 0 {
				return srv.Sort(tenant, bf.xs)
			}
			return srv.Histogram(tenant, bf.hist, bf.xs, bucket)
		})
		srv.Close()
		rep := res.Summarize(sched)
		refused := res.Failed(func(err error) bool {
			return errors.Is(err, serve.ErrDeadlineExceeded) || errors.Is(err, serve.ErrRejected)
		})
		t.AddRowf(row.name, reqs, int(rep.OfferedRate+0.5), rep.OK, refused,
			rep.UncorrectedP50*1e6, rep.UncorrectedP99*1e6,
			rep.CorrectedP50*1e6, rep.CorrectedP99*1e6)
	}
	return t
}

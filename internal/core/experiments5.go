package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adapt"
	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/perf"
	"repro/internal/psort"
	"repro/internal/serve"
)

// Fourth batch of extension experiments: the request-serving runtime
// against the per-request dispatch every pre-serve entry point uses.

func init() {
	Experiments = append(Experiments,
		Experiment{"E23", "Table 13", "Request serving: batched admission vs per-request dispatch", E23Serve},
	)
}

// E23Serve regenerates Table 13: concurrent clients issuing small
// mixed requests (sort / histogram / scan / sum over 2K-element
// payloads — an aggregation-endpoint shape), handled either naively
// (each request invokes the parallel kernel directly, one fork/join
// per request) or through the serve runtime (admission control plus
// batch fusion: one fork/join per batch, kernels serial in their
// slots). Both modes run at worker count 4 on the harness executor
// and scratch pool. Columns report wall time, request throughput and
// client-observed latency percentiles; the expected shape is batched
// >= 1.5x naive throughput with a flatter tail as client concurrency
// grows.
func E23Serve(cfg Config) *perf.Table {
	const workers = 4
	const n = 2048
	t := perf.NewTable(
		"Table 13: request serving — batched admission vs per-request dispatch, W=4",
		"clients", "mode", "reqs", "time", "req/s", "p50(us)", "p95(us)", "p99(us)")

	reqs := 4000
	if cfg.Quick {
		reqs = 600
	}
	base := gen.Ints(n, gen.Uniform, cfg.seed())

	clientCounts := []int{4, 16}
	for _, clients := range clientCounts {
		for _, mode := range []string{"naive", "batched"} {
			var srv *serve.Server
			if mode == "batched" {
				scfg := serve.Config{Executor: cfg.Executor, Scratch: cfg.Scratch, Workers: workers}
				if cfg.Adaptive {
					scfg.Adaptive = adapt.Default()
				}
				srv = serve.New(scfg)
			}
			naiveOpts := cfg.opts(workers, par.Dynamic, 0)
			lat := make([]float64, reqs)
			var next atomic.Int64
			var wg sync.WaitGroup
			start := time.Now()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					tenant := string(rune('a' + c%4))
					xs := make([]int64, n)
					dst := make([]int64, n)
					hist := make([]int, 1024)
					bucket := func(v int64) int { return int(uint64(v) % 1024) }
					add := func(a, b int64) int64 { return a + b }
					for {
						i := int(next.Add(1)) - 1
						if i >= reqs {
							return
						}
						copy(xs, base)
						t0 := time.Now()
						switch i % 4 {
						case 0:
							if srv != nil {
								_ = srv.Sort(tenant, xs)
							} else {
								psort.SampleSort(xs, naiveOpts)
							}
						case 1:
							if srv != nil {
								_ = srv.Histogram(tenant, hist, xs, bucket)
							} else {
								par.HistogramInto(hist, xs, naiveOpts, bucket)
							}
						case 2:
							if srv != nil {
								_ = srv.Scan(tenant, dst, xs)
							} else {
								par.ScanInclusive(dst, xs, naiveOpts, 0, add)
							}
						case 3:
							if srv != nil {
								_, _ = srv.Sum(tenant, xs)
							} else {
								par.Sum(xs, naiveOpts)
							}
						}
						lat[i] = time.Since(t0).Seconds()
					}
				}(c)
			}
			wg.Wait()
			wall := time.Since(start)
			if srv != nil {
				srv.Close()
			}
			t.AddRowf(clients, mode, reqs, perf.FormatDuration(wall.Seconds()),
				int(float64(reqs)/wall.Seconds()+0.5),
				perf.Percentile(lat, 50)*1e6,
				perf.Percentile(lat, 95)*1e6,
				perf.Percentile(lat, 99)*1e6)
		}
	}
	return t
}

package core

import (
	"fmt"
	"runtime"

	"repro/internal/par"
	"repro/internal/perf"
	"repro/internal/pipeline"
)

// Third batch of extension experiments: the streaming pipeline runtime
// against the one-shot kernel composition it fuses.

func init() {
	Experiments = append(Experiments,
		Experiment{"E22", "Table 12", "Streaming pipeline vs one-shot kernel composition", E22Pipeline},
	)
}

// E22Pipeline regenerates Table 12: the analytics chain gen → map →
// filter → histogram (+ running sum) executed as one-shot kernels with
// materialized intermediates versus the chunked streaming pipeline, at
// several stream lengths. Columns report wall time, throughput and the
// heap bytes allocated per run — the pipeline's expected shape is
// equal-or-better time with orders-of-magnitude fewer bytes, the gap
// widening once intermediates outgrow the cache.
func E22Pipeline(cfg Config) *perf.Table {
	p := runtime.GOMAXPROCS(0)
	r := cfg.runner()
	t := perf.NewTable(
		fmt.Sprintf("Table 12: streaming pipeline vs one-shot composition, P=%d", p),
		"n", "mode", "time", "Melems/s", "MB-alloc/run")

	genF, mapF := pipeline.DemoGen, pipeline.DemoMap
	pred, bucket := pipeline.DemoPred, pipeline.DemoBucket
	const buckets = pipeline.DemoBuckets

	sizes := []int{1 << 18, 1 << 21}
	if cfg.Quick {
		sizes = []int{1 << 14, 1 << 16}
	}
	hist := make([]int, buckets)
	for _, n := range sizes {
		opts := cfg.opts(p, par.Static, 0)
		oneShot := func() {
			xs := make([]int64, n)
			par.For(n, opts, func(j int) { xs[j] = genF(j) })
			ys := par.Map(xs, opts, mapF)
			zs := par.Pack(ys, opts, pred)
			par.HistogramInto(hist, zs, opts, bucket)
			par.Sum(zs, opts)
		}
		pOpts := cfg.opts(p, par.Static, 0)
		if !cfg.Adaptive {
			// Serial intra-chunk kernels: stage concurrency owns the
			// parallelism (with -adapt=on the controller decides).
			pOpts.SerialCutoff = pipeline.DefaultChunkSize
		}
		pcfg := pipeline.Config{Opts: pOpts}
		chunked := func() {
			var sum int64
			pl := pipeline.New(pcfg).
				FromFunc(n, genF).Map(mapF).Filter(pred).
				Tee(func(buf []int64) {
					for _, v := range buf {
						sum += v
					}
				}).
				ToHistogram(hist, bucket)
			if err := pl.Run(); err != nil {
				panic(err)
			}
		}
		for _, mode := range []struct {
			name string
			run  func()
		}{{"one-shot", oneShot}, {"chunked", chunked}} {
			mb := allocMBPerRun(mode.run)
			m := r.Time(func(int) { mode.run() }).Median
			t.AddRowf(n, mode.name, perf.FormatDuration(m),
				perf.Throughput(n, m)/1e6, mb)
		}
	}
	return t
}

// allocMBPerRun measures heap megabytes allocated by one call of f
// (warm call first, then the monotone TotalAlloc delta over 3 runs).
func allocMBPerRun(f func()) float64 {
	f()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const runs = 3
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.TotalAlloc-before.TotalAlloc) / runs / (1 << 20)
}

package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gen"
	"repro/internal/perf"
	"repro/internal/serve"
)

// Fifth batch of extension experiments: sharding the serving runtime
// and rebalancing it under tenant skew.

func init() {
	Experiments = append(Experiments,
		Experiment{"E24", "Table 14", "Sharded serving under tenant skew: 1 shard vs N shards vs N shards + migration", E24ShardedServe},
	)
}

// skewedTenants returns count tenant names all homed on shard 0 of g
// — the worst case for affinity routing, since every request lands on
// one shard while the others idle.
func skewedTenants(g *serve.Sharded, count int) []string {
	names := make([]string, 0, count)
	for i := 0; len(names) < count; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		if g.HomeShard(name) == 0 {
			names = append(names, name)
		}
	}
	return names
}

// E24ShardedServe regenerates Table 14: skewed multi-tenant traffic
// (every tenant hashes to the same home shard) served three ways at
// equal total worker count — one unsharded server (the PR 5 runtime:
// one submit mutex, one dispatcher, one executor), four shards with
// migration disabled (contention splits four ways but the skew
// strands three shards idle), and four shards with the diffusive
// balancer on (queued requests migrate around the ring to the idle
// shards). Columns report wall time, throughput, client-observed
// latency percentiles and requests migrated. Expected shape: sharding
// alone cannot help under total skew — it can even lose to 1 shard,
// since the hot shard now owns a quarter of the workers — while
// migration recovers the idle shards' capacity; its throughput win
// over migration-off is the direct measure of diffusive rebalancing,
// clearest when GOMAXPROCS >= the shard count.
func E24ShardedServe(cfg Config) *perf.Table {
	const workers = 4
	const shards = 4
	const clients = 32
	const n = 2048
	t := perf.NewTable(
		"Table 14: sharded serving under tenant skew — W=4 total, 32 clients, all tenants homed on shard 0",
		"config", "reqs", "time", "req/s", "p50(us)", "p95(us)", "p99(us)", "migrated")

	reqs := 4000
	if cfg.Quick {
		reqs = 600
	}
	base := gen.Ints(n, gen.Uniform, cfg.seed())

	configs := []struct {
		name   string
		shards int
		procs  int
		noMig  bool
	}{
		{"1 shard", 1, workers, true},
		{"4 shards, no migration", shards, workers / shards, true},
		{"4 shards + migration", shards, workers / shards, false},
	}
	for _, c := range configs {
		g := serve.NewSharded(serve.ShardedConfig{
			Shards:           c.shards,
			ShardProcs:       c.procs,
			DisableMigration: c.noMig,
			AdaptivePerShard: cfg.Adaptive,
		})
		tenants := skewedTenants(g, 4)
		lat := make([]float64, reqs)
		var next atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for cl := 0; cl < clients; cl++ {
			wg.Add(1)
			go func(cl int) {
				defer wg.Done()
				tenant := tenants[cl%len(tenants)]
				xs := make([]int64, n)
				hist := make([]int, 1024)
				bucket := func(v int64) int { return int(uint64(v) % 1024) }
				for {
					i := int(next.Add(1)) - 1
					if i >= reqs {
						return
					}
					copy(xs, base)
					t0 := time.Now()
					switch i % 2 {
					case 0:
						_ = g.Sort(tenant, xs)
					case 1:
						_ = g.Histogram(tenant, hist, xs, bucket)
					}
					lat[i] = time.Since(t0).Seconds()
				}
			}(cl)
		}
		wg.Wait()
		wall := time.Since(start)
		st := g.Stats()
		g.Close()
		t.AddRowf(c.name, reqs, perf.FormatDuration(wall.Seconds()),
			int(float64(reqs)/wall.Seconds()+0.5),
			perf.Percentile(lat, 50)*1e6,
			perf.Percentile(lat, 95)*1e6,
			perf.Percentile(lat, 99)*1e6,
			st.Migrated)
	}
	return t
}

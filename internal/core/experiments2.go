package core

import (
	"fmt"
	"runtime"

	"repro/internal/bsp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/perf"
	"repro/internal/pgraph"
	"repro/internal/psel"
	"repro/internal/seq"
)

// Extension experiments (E15–E18): beyond the core reconstructed
// evaluation, these cover weak scaling, the selection case study, the
// iterative graph kernels, and the message-aggregation analysis that
// E9's misprediction motivates. DESIGN.md lists them under "extensions".

func init() {
	Experiments = append(Experiments,
		Experiment{"E15", "Figure 7", "Weak scaling on the simulated machine (scan, matmul)", E15WeakScaling},
		Experiment{"E16", "Table 9", "Selection: parallel quickselect vs sequential vs full sort", E16Selection},
		Experiment{"E17", "Table 10", "Iterative graph kernels: PageRank and triangle counting", E17GraphIterative},
		Experiment{"E18", "Figure 8", "Message aggregation: LogGP bulk advantage and BSP per-word fidelity", E18Aggregation},
	)
}

// E15WeakScaling regenerates Figure 7: grow the problem with the
// machine (n = n0·P) and report the BSP cost per processor — flat cost
// means perfect weak scaling; the rise quantifies communication growth.
// The Gustafson model line is printed alongside.
func E15WeakScaling(cfg Config) *perf.Table {
	n0 := cfg.size(1<<14, 1<<10)
	t := perf.NewTable(
		fmt.Sprintf("Figure 7: weak scaling on the simulated machine, n = %d·P", n0),
		"kernel", "P", "n", "bsp-cost", "weak-eff", "gustafson-f0.05")
	params := machine.BSPParams{G: 2, L: 2000}

	// Scan: communication per processor is O(P), so weak efficiency
	// decays slowly with P.
	cost1 := 0.0
	for _, p := range cfg.vprocs() {
		xs := gen.Ints(n0*p, gen.Uniform, cfg.seed())
		_, stats := bsp.ScanOn(cfg.Executor, xs, p)
		params.P = p
		cost := stats.Cost(params)
		if p == 1 {
			cost1 = cost
		}
		t.AddRowf("scan", p, n0*p, cost, cost1/cost, perf.Gustafson(0.05, p)/float64(p))
	}
	// Matmul: n³ work with n²-ish communication; keep total work ∝ P by
	// growing the edge as P^(1/3). The 1D row-block kernel's weak
	// efficiency collapses; the 2D SUMMA kernel (√P× less traffic)
	// recovers most of it — the figure's punchline.
	side0 := cfg.size(48, 16)
	cost1 = 0.0
	for _, p := range cfg.vprocs() {
		side := side0
		for side*side*side < side0*side0*side0*p {
			side++
		}
		a := gen.RandomMatrix(side, side, cfg.seed())
		b := gen.RandomMatrix(side, side, cfg.seed()+1)
		_, stats := bsp.MatmulRowBlockOn(cfg.Executor, a.Data, b.Data, side, p)
		params.P = p
		cost := stats.Cost(params)
		if p == 1 {
			cost1 = cost
		}
		t.AddRowf("matmul-1d", p, side, cost, cost1/cost, perf.Gustafson(0.05, p)/float64(p))
	}
	cost1 = 0.0
	for _, q := range []int{1, 2, 4, 8} {
		p := q * q
		side := side0
		for side*side*side < side0*side0*side0*p {
			side++
		}
		a := gen.RandomMatrix(side, side, cfg.seed())
		b := gen.RandomMatrix(side, side, cfg.seed()+1)
		_, stats := bsp.MatmulSUMMAOn(cfg.Executor, a.Data, b.Data, side, q)
		params.P = p
		cost := stats.Cost(params)
		if p == 1 {
			cost1 = cost
		}
		t.AddRowf("matmul-2d", p, side, cost, cost1/cost, perf.Gustafson(0.05, p)/float64(p))
	}
	return t
}

// E16Selection regenerates Table 9: k-th smallest via parallel
// count/pack quickselect vs the sequential baseline vs the "sort then
// index" strawman.
func E16Selection(cfg Config) *perf.Table {
	n := cfg.size(1<<21, 1<<14)
	p := runtime.GOMAXPROCS(0)
	opts := cfg.opts(p, par.Static, 4096)
	r := cfg.runner()
	t := perf.NewTable(
		fmt.Sprintf("Table 9: median selection, n=%d, P=%d", n, p),
		"distribution", "algorithm", "time", "vs-seq")
	for _, d := range []gen.Distribution{gen.Uniform, gen.Zipf, gen.Sorted} {
		xs := gen.Ints(n, d, cfg.seed())
		k := (n - 1) / 2
		var want int64
		tseq := r.Time(func(int) { want = psel.SelectSeq(xs, k) }).Median
		t.AddRowf(d.String(), "seq-quickselect", perf.FormatDuration(tseq), 1.0)
		var got int64
		tpar := r.Time(func(int) { got = psel.Select(xs, k, opts) }).Median
		if got != want {
			t.AddRowf(d.String(), "par-select", "WRONG RESULT", 0.0)
			continue
		}
		t.AddRowf(d.String(), "par-select", perf.FormatDuration(tpar), tpar/tseq)
		buf := make([]int64, n)
		tsort := r.Time(func(int) {
			copy(buf, xs)
			seq.Quicksort(buf)
			got = buf[k]
		}).Median
		t.AddRowf(d.String(), "sort-then-index", perf.FormatDuration(tsort), tsort/tseq)
	}
	return t
}

// E17GraphIterative regenerates Table 10: PageRank convergence and
// triangle counting across graph classes.
func E17GraphIterative(cfg Config) *perf.Table {
	scale := cfg.size(14, 9)
	p := runtime.GOMAXPROCS(0)
	opts := cfg.opts(p, par.Static, 1024)
	r := cfg.runner()
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"er-deg8", gen.ErdosRenyi(1<<scale, 8, false, cfg.seed())},
		{"rmat", gen.RMAT(scale, 8, false, cfg.seed()+1)},
		{"grid", gen.Grid2D(1<<(scale/2), 1<<(scale/2), false, cfg.seed()+2)},
	}
	t := perf.NewTable(
		fmt.Sprintf("Table 10: iterative graph kernels, P=%d", p),
		"graph", "n", "m", "pagerank-time", "pr-iters", "triangles", "tri-time")
	for _, tc := range graphs {
		var pr pgraph.PageRankResult
		prT := r.Time(func(int) { pr = pgraph.PageRank(tc.g, 0.85, 1e-8, 200, opts) }).Median
		var tris int64
		triT := r.Time(func(int) { tris = pgraph.TriangleCount(tc.g, opts) }).Median
		t.AddRowf(tc.name, tc.g.N(), tc.g.M(), perf.FormatDuration(prT), pr.Iters,
			int(tris), perf.FormatDuration(triT))
	}
	return t
}

// E18Aggregation regenerates Figure 8, the model-side answer to E9's
// sample-sort misprediction: under LogGP, aggregated bulk messages are
// cheaper per word than short messages by gap/Gap; the table shows the
// advantage across payload sizes and the per-word cost each BSP kernel
// actually induces in the runtime (words per message), explaining why a
// single fitted g over-charges bulk kernels.
func E18Aggregation(cfg Config) *perf.Table {
	t := perf.NewTable(
		"Figure 8: message aggregation — LogGP bulk advantage and kernel message granularity",
		"row", "value-1", "value-2", "value-3", "value-4")
	pp := machine.LogGPParams{L: 1000, O: 50, G: 100, GG: 1, P: 8}
	t.AddRow("payload-words", "1", "100", "10000", "1000000")
	t.AddRowf("loggp-bulk-advantage",
		pp.BulkAdvantage(1), pp.BulkAdvantage(100), pp.BulkAdvantage(10000), pp.BulkAdvantage(1000000))
	// Kernel message granularity: words moved per message in each BSP
	// kernel (1 for scan/allreduce/samplesort as implemented; n²/P for
	// the matmul panels). Derived from the cost traces.
	n := cfg.size(1<<12, 1<<8)
	xs := gen.Ints(n, gen.Uniform, cfg.seed())
	_, scanStats := bsp.ScanOn(cfg.Executor, xs, 8)
	_, sortStats := bsp.SampleSortOn(cfg.Executor, xs, 8)
	side := cfg.size(64, 16)
	a := gen.RandomMatrix(side, side, 1)
	b := gen.RandomMatrix(side, side, 2)
	_, mmStats := bsp.MatmulRowBlockOn(cfg.Executor, a.Data, b.Data, side, 8)
	t.AddRowf("kernel", "scan", "samplesort", "matmul-panels", "-")
	t.AddRowf("total-h-words", scanStats.TotalH(), sortStats.TotalH(), mmStats.TotalH(), 0.0)
	t.AddRowf("supersteps", scanStats.Supersteps(), sortStats.Supersteps(), mmStats.Supersteps(), 0)
	return t
}

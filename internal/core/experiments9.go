package core

import (
	"sync"
	"time"

	"repro/internal/gen"
	"repro/internal/kernel"
	"repro/internal/perf"
	"repro/internal/rescache"
	"repro/internal/serve"
)

// Eighth batch of extension experiments: what repeated and
// incrementally-updated requests cost once the serving layer can
// recognize them.

func init() {
	Experiments = append(Experiments,
		Experiment{"E27", "Table 17", "Result cache: cold vs warm-hit vs delta-update serving latency", E27ResultCache},
	)
}

// E27ResultCache regenerates Table 17: the same kernels served cold,
// warm and incrementally, idle and under load. The cold-idle column is
// the unloaded floor of the ordinary path — admission, batching, a
// full kernel run — and is the fair baseline for the cache's *compute*
// saving: against it, sort and top-k repay the probe many times over
// while scan and sum barely do, because the content fingerprint is
// itself an O(n) pass over the input and those kernels do little more
// than that themselves. The loaded columns are the serving story: with
// background tenants keeping every worker busy, a cold request queues
// behind in-flight batches while a warm hit is recognized at the door
// and restored without entering the queue at all, so the cold-load /
// warm-load ratio — the speedup column — is queueing bypass on top of
// compute elision and clears an order of magnitude for every kernel.
// The delta column updates a standing record through the kernel's
// incremental adapter (serve.CallDelta) under the same load: a
// 16-element append rides the normal batch path, so it pays the queue
// but not the rerun, landing between the warm and cold columns. The
// idle column is a floor, so it takes the minimum over reps; the
// loaded columns are draws from a queueing distribution, where the
// minimum would just find the luckiest idle gap — they take the
// median, the representative wait.
func E27ResultCache(cfg Config) *perf.Table {
	const workers = 4
	const bgClients = 8
	const chunk = 16
	n := cfg.size(1<<16, 1<<12)
	reps := cfg.reps()
	t := perf.NewTable(
		"Table 17: result cache — cold vs warm-hit vs delta-update latency, idle and loaded, W=4",
		"kernel", "n", "cold-idle(us)", "cold-load(us)", "warm-load(us)", "delta-load(us)", "speedup")

	scfg := serve.Config{
		Executor: cfg.Executor,
		Scratch:  cfg.Scratch,
		Workers:  workers,
		Cache:    rescache.New(rescache.Config{Pool: cfg.Scratch}),
	}
	srv := serve.New(scfg)
	defer srv.Close()
	const tenant = "t"

	base := gen.Ints(n, gen.Uniform, cfg.seed())

	// Each case builds fresh Args around an input copy; resort is set
	// only for kernels whose hit restores an output *into* the input
	// slice (sort), where the next probe must re-present the original
	// bytes to land on the same fingerprint.
	cases := []struct {
		name    string
		newArgs func(xs []int64) *kernel.Args
		resort  bool
	}{
		{"sort", func(xs []int64) *kernel.Args {
			return &kernel.Args{Xs: xs}
		}, true},
		{"scan", func(xs []int64) *kernel.Args {
			return &kernel.Args{Xs: xs, Dst: make([]int64, len(xs))}
		}, false},
		{"sum", func(xs []int64) *kernel.Args {
			return &kernel.Args{Xs: xs}
		}, false},
		{"topk", func(xs []int64) *kernel.Args {
			return &kernel.Args{Xs: xs, K: 64, Dst: make([]int64, 64)}
		}, false},
	}

	// timeCall runs reps timed calls (setup outside the clock) and
	// reduces the successful samples with stat — min for idle floors,
	// median for loaded waits.
	timeCall := func(setup func(rep int) (*kernel.Args, *kernel.Kernel), delta bool, stat func([]time.Duration) time.Duration) time.Duration {
		samples := make([]time.Duration, 0, reps)
		for rep := 0; rep < reps; rep++ {
			a, k := setup(rep)
			var err error
			var d time.Duration
			if delta {
				app := gen.Ints(chunk, gen.Uniform, cfg.seed()+uint64(100+rep))
				t0 := time.Now()
				err = srv.CallDelta(tenant, k, a, &kernel.Delta{Append: app})
				d = time.Since(t0)
			} else {
				t0 := time.Now()
				err = srv.Call(tenant, k, a)
				d = time.Since(t0)
			}
			if err == nil {
				samples = append(samples, d)
			}
		}
		if len(samples) == 0 {
			return 0
		}
		return stat(samples)
	}
	minOf := func(ds []time.Duration) time.Duration {
		best := ds[0]
		for _, d := range ds[1:] {
			if d < best {
				best = d
			}
		}
		return best
	}
	medOf := func(ds []time.Duration) time.Duration {
		s := append([]time.Duration(nil), ds...)
		for i := 1; i < len(s); i++ { // insertion sort; reps is tiny
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return s[len(s)/2]
	}

	type row struct {
		name                   string
		idle, cold, warm, dlta time.Duration
		warmArgs               *kernel.Args
		k                      *kernel.Kernel
	}
	rows := make([]row, 0, len(cases))

	// Phase 1, idle: the cold floor (every rep a distinct input, so a
	// distinct fingerprint — the cache never short-circuits it), then
	// prime one warm record per kernel (miss + insert).
	for _, c := range cases {
		k := kernel.MustLookup(c.name)
		idle := timeCall(func(rep int) (*kernel.Args, *kernel.Kernel) {
			return c.newArgs(gen.Ints(n, gen.Uniform, cfg.seed()+uint64(rep)+1)), k
		}, false, minOf)
		xs := make([]int64, n)
		copy(xs, base)
		a := c.newArgs(xs)
		if err := srv.Call(tenant, k, a); err != nil {
			continue // row impossible; leave it out rather than lie
		}
		rows = append(rows, row{name: c.name, idle: idle, warmArgs: a, k: k})
	}

	// Phase 2, loaded: background tenants issue uncacheable requests
	// (histogram takes a bucket function, which the fingerprint cannot
	// hash) in a closed loop, keeping all workers busy for the whole
	// measurement window.
	stop := make(chan struct{})
	var bg sync.WaitGroup
	bucket := func(v int64) int { return int(uint64(v) % 256) }
	for b := 0; b < bgClients; b++ {
		bg.Add(1)
		go func(b int) {
			defer bg.Done()
			xs := gen.Ints(n, gen.Uniform, cfg.seed()+uint64(1000+b))
			hist := make([]int, 256)
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = srv.Histogram("bg", hist, xs, bucket)
			}
		}(b)
	}

	for i := range rows {
		r := &rows[i]
		c := cases[0]
		for _, cc := range cases {
			if cc.name == r.name {
				c = cc
			}
		}
		r.cold = timeCall(func(rep int) (*kernel.Args, *kernel.Kernel) {
			return c.newArgs(gen.Ints(n, gen.Uniform, cfg.seed()+uint64(10+rep))), r.k
		}, false, medOf)
		// Warm probes under the same load: the door restores the
		// primed record without entering the queue. For sort the hit
		// overwrote the input with the sorted output, so each probe
		// re-copies the original outside the clock.
		r.warm = timeCall(func(rep int) (*kernel.Args, *kernel.Kernel) {
			if c.resort {
				copy(r.warmArgs.Xs, base)
			}
			return r.warmArgs, r.k
		}, false, medOf)
		// The warm args now hold a current output record (sort left Xs
		// sorted, scan/sum/topk restored their outputs), so each delta
		// rep folds a fresh append through the incremental adapter.
		r.dlta = timeCall(func(rep int) (*kernel.Args, *kernel.Kernel) {
			return r.warmArgs, r.k
		}, true, medOf)
	}
	close(stop)
	bg.Wait()

	for _, r := range rows {
		t.AddRowf(r.name, n,
			float64(r.idle)/1e3, float64(r.cold)/1e3, float64(r.warm)/1e3,
			float64(r.dlta)/1e3, float64(r.cold)/float64(r.warm))
	}
	return t
}

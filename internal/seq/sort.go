package seq

// Quicksort sorts xs in place with median-of-three pivoting and an
// insertion-sort cutoff, the standard engineered sequential comparison
// sort baseline.
func Quicksort(xs []int64) {
	for len(xs) > 24 {
		p := partition(xs)
		// Recurse on the smaller side to bound stack depth at O(log n).
		if p < len(xs)-p-1 {
			Quicksort(xs[:p])
			xs = xs[p+1:]
		} else {
			Quicksort(xs[p+1:])
			xs = xs[:p]
		}
	}
	InsertionSort(xs)
}

// partition performs Hoare-style partitioning around a median-of-three
// pivot and returns the pivot's final index.
func partition(xs []int64) int {
	n := len(xs)
	mid := n / 2
	// Median-of-three: order xs[0], xs[mid], xs[n-1].
	if xs[mid] < xs[0] {
		xs[mid], xs[0] = xs[0], xs[mid]
	}
	if xs[n-1] < xs[0] {
		xs[n-1], xs[0] = xs[0], xs[n-1]
	}
	if xs[n-1] < xs[mid] {
		xs[n-1], xs[mid] = xs[mid], xs[n-1]
	}
	pivot := xs[mid]
	// Move pivot to n-2 (xs[n-1] >= pivot already).
	xs[mid], xs[n-2] = xs[n-2], xs[mid]
	i, j := 0, n-2
	for {
		for i++; xs[i] < pivot; i++ {
		}
		for j--; xs[j] > pivot; j-- {
		}
		if i >= j {
			break
		}
		xs[i], xs[j] = xs[j], xs[i]
	}
	xs[i], xs[n-2] = xs[n-2], xs[i]
	return i
}

// InsertionSort sorts small slices in place.
func InsertionSort(xs []int64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// Mergesort sorts xs using a bottom-up stable merge sort with a scratch
// buffer; baseline for the parallel merge sort.
func Mergesort(xs []int64) {
	n := len(xs)
	if n < 2 {
		return
	}
	buf := make([]int64, n)
	src, dst := xs, buf
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			mergeInt64(dst[lo:hi], src[lo:mid], src[mid:hi])
		}
		src, dst = dst, src
	}
	if &src[0] != &xs[0] {
		copy(xs, src)
	}
}

func mergeInt64(dst, a, b []int64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if b[j] < a[i] {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}

// RadixSort sorts xs (treated as unsigned by flipping the sign bit) with
// an LSD radix sort using 8-bit digits; baseline for the parallel radix
// sort.
func RadixSort(xs []int64) {
	n := len(xs)
	if n < 2 {
		return
	}
	const bits = 8
	const buckets = 1 << bits
	const mask = buckets - 1
	buf := make([]int64, n)
	src, dst := xs, buf
	for shift := 0; shift < 64; shift += bits {
		var count [buckets]int
		for _, v := range src {
			count[(flip(v)>>shift)&mask]++
		}
		// Skip passes where all keys share one digit.
		if count[(flip(src[0])>>shift)&mask] == n {
			continue
		}
		sum := 0
		for b := range count {
			count[b], sum = sum, sum+count[b]
		}
		for _, v := range src {
			b := (flip(v) >> shift) & mask
			dst[count[b]] = v
			count[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &xs[0] {
		copy(xs, src)
	}
}

// flip maps int64 ordering onto uint64 ordering.
func flip(v int64) uint64 { return uint64(v) ^ (1 << 63) }

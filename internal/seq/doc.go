// Package seq provides carefully written sequential baselines for every
// case-study kernel. The algorithm-engineering methodology insists that
// parallel algorithms be compared against the best practical sequential
// code — not against their own one-processor execution — because parallel
// overheads (extra passes, synchronization, work inflation) must be paid
// for by real speedup. Experiment E14 reports the T1/Tseq overhead ratio
// for every kernel in the suite.
//
// Layering: seq consumes only gen and graph (input types); it
// feeds the engineered-baseline rows of core's experiments, the
// differential and metamorphic oracles, psort/psel's serial
// fallbacks, and the serve runtime's batch slots (a batched
// request runs its kernel serially).
package seq

package seq

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/gen"
)

func TestSortsMatchStdlib(t *testing.T) {
	sorts := map[string]func([]int64){
		"quicksort": Quicksort,
		"mergesort": Mergesort,
		"radixsort": RadixSort,
	}
	for name, fn := range sorts {
		for _, d := range gen.Distributions {
			for _, n := range []int{0, 1, 2, 3, 10, 100, 1000, 4097} {
				xs := gen.Ints(n, d, 99)
				want := append([]int64(nil), xs...)
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				fn(xs)
				for i := range want {
					if xs[i] != want[i] {
						t.Fatalf("%s on %v n=%d: mismatch at %d", name, d, n, i)
					}
				}
			}
		}
	}
}

func TestSortsQuick(t *testing.T) {
	for name, fn := range map[string]func([]int64){
		"quicksort": Quicksort, "mergesort": Mergesort, "radixsort": RadixSort,
	} {
		f := func(xs []int64) bool {
			cp := append([]int64(nil), xs...)
			fn(cp)
			want := append([]int64(nil), xs...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := range want {
				if cp[i] != want[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRadixSortNegative(t *testing.T) {
	xs := []int64{5, -1, 0, math.MinInt64, math.MaxInt64, -5, 3}
	RadixSort(xs)
	if !sort.SliceIsSorted(xs, func(i, j int) bool { return xs[i] < xs[j] }) {
		t.Fatalf("radix sort mishandled negatives: %v", xs)
	}
}

func TestInsertionSortSmall(t *testing.T) {
	xs := []int64{3, 1, 2}
	InsertionSort(xs)
	if xs[0] != 1 || xs[1] != 2 || xs[2] != 3 {
		t.Fatalf("insertion sort: %v", xs)
	}
}

func TestScan(t *testing.T) {
	xs := []int64{1, -2, 3, 4}
	dst := make([]int64, 4)
	Scan(dst, xs)
	want := []int64{1, -1, 2, 6}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Scan = %v", dst)
		}
	}
}

func TestListRank(t *testing.T) {
	for _, n := range []int{1, 2, 10, 1000} {
		l := gen.RandomList(n, 7)
		got := ListRank(l)
		want := l.RanksRef()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: rank[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestCCAgree(t *testing.T) {
	g := gen.ErdosRenyi(2000, 3.0, false, 5) // below connectivity threshold: many components
	ref := g.ConnectedComponentsRef()
	bfs := ConnectedComponentsBFS(g)
	uf := ConnectedComponentsUF(g)
	if !sameParition(ref, bfs) {
		t.Fatal("BFS CC disagrees with reference")
	}
	if !sameParition(ref, uf) {
		t.Fatal("union-find CC disagrees with reference")
	}
}

// sameParition reports whether two labelings induce the same partition.
func sameParition(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int]int{}
	rev := map[int]int{}
	for i := range a {
		if v, ok := fwd[a[i]]; ok && v != b[i] {
			return false
		}
		if v, ok := rev[b[i]]; ok && v != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

func TestCCComponentsCount(t *testing.T) {
	g := gen.Components(7, 100, 8, 3)
	labels := ConnectedComponentsUF(g)
	seen := map[int]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	if len(seen) != 7 {
		t.Fatalf("component count = %d, want 7", len(seen))
	}
}

func TestUnionFind(t *testing.T) {
	u := NewUnionFind(10)
	if !u.Union(0, 1) || !u.Union(1, 2) {
		t.Fatal("fresh unions returned false")
	}
	if u.Union(0, 2) {
		t.Fatal("redundant union returned true")
	}
	if u.Find(0) != u.Find(2) {
		t.Fatal("0 and 2 should share a root")
	}
	if u.Find(3) == u.Find(0) {
		t.Fatal("3 should be separate")
	}
}

func TestMSTAlgorithmsAgree(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		g := gen.ErdosRenyi(500, 6, true, seed)
		k := MSTKruskal(g)
		p := MSTPrim(g)
		if math.Abs(k-p) > 1e-9*(1+math.Abs(k)) {
			t.Fatalf("seed %d: Kruskal %v != Prim %v", seed, k, p)
		}
	}
}

func TestMSTTree(t *testing.T) {
	// On a tree, the MST weight is the total edge weight.
	g := gen.RandomTree(200, true, 11)
	var want float64
	g.ForEdges(func(_, _ int, w float64) { want += w })
	if got := MSTKruskal(g); math.Abs(got-want) > 1e-9 {
		t.Fatalf("tree MST = %v, want %v", got, want)
	}
}

func TestMatmulIdentity(t *testing.T) {
	a := gen.RandomMatrix(17, 17, 3)
	i := gen.Identity(17)
	c := Matmul(a, i)
	if !c.Equal(a, 1e-12) {
		t.Fatal("A*I != A")
	}
}

func TestMatmulKnown(t *testing.T) {
	a := gen.NewMatrix(2, 3)
	b := gen.NewMatrix(3, 2)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c := Matmul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if math.Abs(c.Data[i]-v) > 1e-12 {
			t.Fatalf("C = %v, want %v", c.Data, want)
		}
	}
}

func TestMatmulDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	Matmul(gen.NewMatrix(2, 3), gen.NewMatrix(2, 3))
}

func TestJacobiConvergesToward25(t *testing.T) {
	// With the top edge at 100 and others at 0, the center of the plate
	// converges to the harmonic mean of boundaries (=25 at center of a
	// square by symmetry of the discrete Laplace problem).
	g := gen.HotPlateGrid(33)
	out := Jacobi(g, 3000)
	center := out.At(16, 16)
	if math.Abs(center-25) > 0.5 {
		t.Fatalf("center after 3000 iters = %v, want ~25", center)
	}
	// Boundary must be untouched.
	if out.At(0, 16) != 100 || out.At(32, 16) != 0 {
		t.Fatal("Jacobi modified boundary cells")
	}
}

func TestJacobiMonotoneHeating(t *testing.T) {
	g := gen.HotPlateGrid(17)
	a := Jacobi(g, 10)
	b := Jacobi(g, 100)
	// More iterations propagate more heat into the interior.
	if b.At(8, 8) < a.At(8, 8) {
		t.Fatalf("interior cooled with more iterations: %v -> %v", a.At(8, 8), b.At(8, 8))
	}
}

package seq

import (
	"sort"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Scan computes inclusive prefix sums sequentially: the n-operation
// baseline against which the 2n-operation parallel scan must win.
func Scan(dst, xs []int64) {
	var acc int64
	for i, x := range xs {
		acc += x
		dst[i] = acc
	}
}

// ListRank computes ranks by a single pointer-chasing sweep: O(n) work,
// inherently sequential (each step depends on the previous), memory-bound
// on randomly laid-out lists.
func ListRank(l *gen.List) []int {
	ranks := make([]int, len(l.Next))
	v, d := l.Head, 0
	for {
		ranks[v] = d
		n := l.Next[v]
		if n == v {
			break
		}
		v = n
		d++
	}
	return ranks
}

// ConnectedComponentsBFS labels components with a queue-based BFS, the
// textbook sequential baseline for connectivity.
func ConnectedComponentsBFS(g *graph.Graph) []int {
	n := g.N()
	label := make([]int, n)
	for i := range label {
		label[i] = -1
	}
	queue := make([]int32, 0, 1024)
	next := 0
	for s := 0; s < n; s++ {
		if label[s] != -1 {
			continue
		}
		label[s] = next
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(int(v)) {
				if label[w] == -1 {
					label[w] = next
					queue = append(queue, w)
				}
			}
		}
		next++
	}
	return label
}

// UnionFind is a disjoint-set forest with union by rank and path
// compression, shared by the sequential CC and Kruskal baselines.
type UnionFind struct {
	parent []int32
	rank   []int8
}

// NewUnionFind creates n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Find returns the representative of x's set.
func (u *UnionFind) Find(x int) int {
	r := int32(x)
	for u.parent[r] != r {
		r = u.parent[r]
	}
	// Path compression.
	for c := int32(x); c != r; {
		c, u.parent[c] = u.parent[c], r
	}
	return int(r)
}

// Union merges the sets of x and y; it returns false if already joined.
func (u *UnionFind) Union(x, y int) bool {
	rx, ry := int32(u.Find(x)), int32(u.Find(y))
	if rx == ry {
		return false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	return true
}

// ConnectedComponentsUF labels components using union-find over the edge
// list — often the fastest sequential connectivity algorithm in practice.
func ConnectedComponentsUF(g *graph.Graph) []int {
	n := g.N()
	u := NewUnionFind(n)
	g.ForEdges(func(a, b int, _ float64) { u.Union(a, b) })
	label := make([]int, n)
	remap := map[int]int{}
	for v := 0; v < n; v++ {
		r := u.Find(v)
		id, ok := remap[r]
		if !ok {
			id = len(remap)
			remap[r] = id
		}
		label[v] = id
	}
	return label
}

// MSTKruskal returns the total weight of a minimum spanning forest via
// Kruskal's algorithm (sort all edges, union-find).
func MSTKruskal(g *graph.Graph) float64 {
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool { return edges[i].W < edges[j].W })
	u := NewUnionFind(g.N())
	total := 0.0
	for _, e := range edges {
		if u.Union(e.U, e.V) {
			total += e.W
		}
	}
	return total
}

// MSTPrim returns the total weight of a minimum spanning forest via
// Prim's algorithm with a binary heap, run from every unvisited node.
func MSTPrim(g *graph.Graph) float64 {
	n := g.N()
	visited := make([]bool, n)
	total := 0.0
	h := &edgeHeap{}
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		h.items = h.items[:0]
		pushNeighbors(g, s, visited, h)
		for len(h.items) > 0 {
			e := h.pop()
			if visited[e.to] {
				continue
			}
			visited[e.to] = true
			total += e.w
			pushNeighbors(g, e.to, visited, h)
		}
	}
	return total
}

type heapEdge struct {
	w  float64
	to int
}

// edgeHeap is a minimal binary min-heap on edge weight (avoiding
// container/heap interface overhead in the hot loop).
type edgeHeap struct{ items []heapEdge }

func (h *edgeHeap) push(e heapEdge) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].w <= h.items[i].w {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *edgeHeap) pop() heapEdge {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && h.items[l].w < h.items[s].w {
			s = l
		}
		if r < last && h.items[r].w < h.items[s].w {
			s = r
		}
		if s == i {
			break
		}
		h.items[i], h.items[s] = h.items[s], h.items[i]
		i = s
	}
	return top
}

func pushNeighbors(g *graph.Graph, v int, visited []bool, h *edgeHeap) {
	ws := g.NeighborWeights(v)
	for i, u := range g.Neighbors(v) {
		if !visited[u] {
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			h.push(heapEdge{w: w, to: int(u)})
		}
	}
}

// Matmul computes C = A*B with the naive triple loop in ikj order (the
// cache-aware loop order); baseline for the blocked parallel kernel.
func Matmul(a, b *gen.Matrix) *gen.Matrix {
	if a.Cols != b.Rows {
		panic("seq: Matmul dimension mismatch")
	}
	c := gen.NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			brow := b.Row(k)
			for j := 0; j < b.Cols; j++ {
				crow[j] += aik * brow[j]
			}
		}
	}
	return c
}

// Jacobi runs iters sweeps of the 5-point Jacobi stencil on g, returning
// the final grid. Boundary cells are Dirichlet (held fixed).
func Jacobi(g *gen.Grid, iters int) *gen.Grid {
	cur := g.Clone()
	next := g.Clone()
	n := g.N
	for it := 0; it < iters; it++ {
		for i := 1; i < n-1; i++ {
			up := cur.Data[(i-1)*n:]
			mid := cur.Data[i*n:]
			down := cur.Data[(i+1)*n:]
			out := next.Data[i*n:]
			for j := 1; j < n-1; j++ {
				out[j] = 0.25 * (up[j] + down[j] + mid[j-1] + mid[j+1])
			}
		}
		cur, next = next, cur
	}
	return cur
}

// Package serve is the request-serving runtime: a multi-tenant front
// door that sits between concurrent callers and the kernel stack, the
// layer the ROADMAP's heavy-traffic north star serves requests through.
//
// Every other entry point in the repository (the repro facade, the
// parbench harness, the pipeline runtime) assumes one caller invoking
// one kernel at a time. Under request traffic — many goroutines each
// issuing a small sort, selection, histogram, scan or graph query —
// that model pays one fork/join, one adaptive decision and one set of
// scratch acquisitions per tiny call, and lets any one caller flood
// the shared executor. serve replaces it with three mechanisms, in
// request order:
//
//   - Admission control, driven by exec.Executor.Occupancy. Each
//     tenant owns a bounded FIFO; a full queue rejects with ErrRejected
//     (backpressure the caller can see), and the effective queue bound
//     halves once the executor is saturated, so rejection pressure
//     rises with load instead of queueing unboundedly. Batches formed
//     while occupancy is moderate run with proportionally shed
//     workers; at saturation they are shed to serial execution on the
//     dispatcher goroutine — the same degrade-don't-pile-on discipline
//     as internal/adapt, applied one layer up.
//
//   - Batched execution. A single dispatcher drains the tenant queues
//     into one batch (bounded by MaxBatch, accumulated for at most
//     BatchWindow) and executes the whole batch as ONE fused parallel
//     loop over requests — one pooled fork/join amortized across N
//     requests, each request running its kernel serially inside its
//     slot. The batch loop is an adaptive call site ("serve.batch"),
//     so grain and policy over requests are learned per batch-size
//     class like any kernel loop. Request temporaries draw from the
//     configured scratch pool exactly as direct kernel calls do.
//
//   - Fair-share scheduling. Batches are formed round-robin across
//     tenants, one request per tenant per turn, so a hot tenant's
//     backlog cannot starve light tenants: a tenant that submits one
//     request gets a batch slot within one round regardless of how
//     deep any other tenant's queue is. Per-tenant accept/reject/
//     complete counters (TenantStats) make the shares observable.
//
// Requests whose inputs are large enough that batching them would
// stall the batch (Config.PipelineCutoff) bypass the queues and route
// through the streaming pipeline runtime (internal/pipeline) on the
// caller's goroutine, so the batch path stays reserved for the small
// requests that benefit from it.
//
// With Config.SLO set, a deadline rung joins the admission ladder.
// The door refuses a request with ErrDeadlineExceeded when the
// queue-depth-predicted wait — depth times a dispatcher-owned EWMA of
// per-request batch service time — already exceeds the budget, so
// callers learn in microseconds instead of after queueing. Every
// admitted request carries a deadline stamp, and batch formation
// expires stamped requests whose budget lapsed while queued (counted
// Expired, never occupying a batch slot). Stamps ride migrated
// requests, so a thief shard with no SLO of its own still enforces a
// home shard's budget, charging the expiry to the admitting tenant
// entry. Refusing fast bounds the corrected tail latency that the
// open-loop harness (internal/loadgen, which serve never imports)
// makes visible.
//
// Layering: serve sits above internal/exec (occupancy gauge, pooled
// fork/join), internal/scratch (request temporaries), internal/adapt
// (the batch site), internal/pipeline (long-request route) and the
// kernel packages (seq, par, psel, pgraph); it feeds the repro facade
// (repro.NewServer) and cmd/parbench's -serve traffic mode.
// BenchmarkTrafficServe quantifies the batching win over naive
// per-request dispatch at equal worker count.
package serve

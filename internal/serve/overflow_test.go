package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/kernel"
)

// TestFoldedTenantAccountingBalances pins the per-entry invariant
// behind merged TenantStats: with MaxTenants folding most names into
// "(other)", every surviving entry still has Accepted == Completed
// once traffic drains, because completions are credited to the entry
// that counted the acceptance.
func TestFoldedTenantAccountingBalances(t *testing.T) {
	s := New(Config{MaxTenants: 2, Workers: 2})
	defer s.Close()

	tenants := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	const perTenant = 5
	var wg sync.WaitGroup
	for _, name := range tenants {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				if _, err := s.Sum(name, []int64{1, 2, 3}); err != nil && !errors.Is(err, ErrRejected) {
					t.Errorf("%s: %v", name, err)
				}
			}
		}(name)
	}
	wg.Wait()

	var accepted, completed int64
	for _, ts := range s.TenantStats() {
		if ts.Accepted != ts.Completed {
			t.Errorf("tenant %q: Accepted %d != Completed %d", ts.Name, ts.Accepted, ts.Completed)
		}
		accepted += ts.Accepted
		completed += ts.Completed
	}
	st := s.Stats()
	if st.Tenants > 3 {
		t.Errorf("tenant table has %d entries; want <= MaxTenants+1 = 3", st.Tenants)
	}
	if accepted != st.Accepted || completed != st.Completed {
		t.Errorf("per-tenant sums (%d, %d) != server totals (%d, %d)",
			accepted, completed, st.Accepted, st.Completed)
	}
}

// TestMigrateInDoesNotResurrectFoldedTenant is the white-box half of
// the fold/migration interaction: a request folded into "(other)" at
// its home shard keeps the folded name across migration, so the thief
// shard queues it under its own overflow entry instead of creating a
// per-name entry the home shard's MaxTenants bound already refused —
// and its completion is credited to the home shard's overflow entry,
// where the acceptance was counted.
func TestMigrateInDoesNotResurrectFoldedTenant(t *testing.T) {
	home := New(Config{MaxTenants: 1})
	thief := New(Config{})
	defer thief.Close()
	defer home.Close()

	// Fill home's tenant table so the next distinct name folds.
	if _, err := home.Sum("resident", []int64{1}); err != nil {
		t.Fatal(err)
	}

	// Admission stamping as submit performs it, without enqueueing on
	// home (the test plays the balancer's role and hands the request
	// straight to the thief shard).
	r := home.getRequest(kernelSum, "newcomer", &kernel.Args{Xs: []int64{2, 3, 5}})
	home.mu.Lock()
	tt := home.tenantLocked(r.tenantName)
	r.tenantName = tt.name
	r.acct = tt
	home.mu.Unlock()
	tt.accepted.Add(1)
	home.accepted.Add(1)

	if r.tenantName != OverflowTenant {
		t.Fatalf("admission stamped name %q; want %q", r.tenantName, OverflowTenant)
	}

	thief.migrateIn([]*request{r})
	select {
	case <-r.done:
	case <-time.After(5 * time.Second):
		t.Fatal("migrated request never completed")
	}
	if r.err != nil || r.args.Out != 10 {
		t.Fatalf("migrated result = %d, %v; want 10, nil", r.args.Out, r.err)
	}

	thief.mu.Lock()
	_, resurrected := thief.tenants["newcomer"]
	thief.mu.Unlock()
	if resurrected {
		t.Error("thief shard created a per-name entry for a folded tenant")
	}
	for _, ts := range home.TenantStats() {
		if ts.Name == OverflowTenant && (ts.Accepted != 1 || ts.Completed != 1) {
			t.Errorf("home overflow entry = %+v; want Accepted 1, Completed 1", ts)
		}
	}
	for _, ts := range thief.TenantStats() {
		if ts.Completed != 0 && ts.Name != "resident" {
			t.Errorf("thief entry %q credited %d completions; accounting belongs to the home entry", ts.Name, ts.Completed)
		}
	}
	home.putRequest(r)
}

// TestShardedMigrationWithTenantFold is the end-to-end half: heavy
// skew (every tenant homed on shard 0) with a tight MaxTenants bound
// and migration on. Folded names must not multiply across shards and
// the merged per-tenant stats must balance exactly.
func TestShardedMigrationWithTenantFold(t *testing.T) {
	g := NewSharded(ShardedConfig{
		Config:            Config{MaxTenants: 2, MaxQueue: 1 << 20},
		Shards:            2,
		ShardProcs:        1,
		MigrateHysteresis: 1,
	})
	defer g.Close()

	names := tenantsHomedOn(g, 0, 12)
	var wg sync.WaitGroup
	var sent int64
	var mu sync.Mutex
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := g.Sum(name, []int64{4, 5, 6}); err != nil {
					t.Errorf("%s: %v", name, err)
					return
				}
				mu.Lock()
				sent++
				mu.Unlock()
			}
		}(name)
	}
	wg.Wait()

	var accepted, completed int64
	merged := g.TenantStats()
	for _, ts := range merged {
		if ts.Accepted != ts.Completed {
			t.Errorf("tenant %q: Accepted %d != Completed %d", ts.Name, ts.Accepted, ts.Completed)
		}
		accepted += ts.Accepted
		completed += ts.Completed
	}
	if completed != sent {
		t.Errorf("completed %d requests, sent %d", completed, sent)
	}
	// Shard 0 admits at most MaxTenants real names plus "(other)";
	// shard 1 sees only migrated requests carrying those same stamped
	// names. Nothing can widen the name set.
	if len(merged) > 3 {
		t.Errorf("merged stats name %d tenants; want <= 3: %+v", len(merged), merged)
	}
	for i, s := range g.shards {
		s.mu.Lock()
		n := len(s.tenants)
		s.mu.Unlock()
		if n > 3 {
			t.Errorf("shard %d tenant table has %d entries; want <= 3", i, n)
		}
	}
}

package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adapt"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/rescache"
	"repro/internal/scratch"
)

// ShardedConfig shapes a Sharded server: the embedded Config is the
// per-shard template (its Executor field is ignored — every shard owns
// a dedicated executor; a nil Scratch gives every shard its own
// arena pool), and the sharding knobs control shard count, per-shard
// worker count and the diffusive balancer.
type ShardedConfig struct {
	Config

	// Shards is the number of executor shards; <= 0 means
	// exec.DefaultShardCount() (min(GOMAXPROCS/4, 8), at least 1,
	// REPRO_EXEC_SHARDS overridable).
	Shards int
	// ShardProcs is the worker count of each shard's executor; <= 0
	// divides GOMAXPROCS evenly across shards (at least one each).
	ShardProcs int
	// AdaptivePerShard gives every shard its own adaptive controller
	// (distinct exploration seeds), so each shard's site caches are
	// tuned by — and only contended by — its own traffic. Ignored
	// when the template Config.Adaptive pins a shared controller.
	AdaptivePerShard bool
	// DisableMigration turns the diffusive balancer off: requests
	// stay on their affinity shard no matter how skewed the load gets.
	// The migration-on/off delta is the balancer's measured value
	// (BenchmarkTrafficServeSkew, experiment E24).
	DisableMigration bool
	// MigrateHysteresis is the queue-depth divergence (in requests)
	// between two adjacent shards below which no migration happens;
	// <= 0 means DefaultMigrateHysteresis. Hysteresis is what
	// preserves affinity: balanced traffic never diverges past it, so
	// tenants stay home and their scratch/adaptive state stays hot.
	MigrateHysteresis int
	// MigrateHeadroom is the occupancy EWMA at or below which a shard
	// is considered to have room for migrated work; a busier target
	// refuses migration (moving work between two saturated shards
	// only destroys locality). <= 0 means DefaultMigrateHeadroom.
	MigrateHeadroom float64
}

// Sharding defaults.
const (
	DefaultMigrateHysteresis = 8
	DefaultMigrateHeadroom   = 0.75
)

func (c ShardedConfig) numShards() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return exec.DefaultShardCount()
}

func (c ShardedConfig) hysteresis() int {
	if c.MigrateHysteresis > 0 {
		return c.MigrateHysteresis
	}
	return DefaultMigrateHysteresis
}

func (c ShardedConfig) headroom() float64 {
	if c.MigrateHeadroom > 0 {
		return c.MigrateHeadroom
	}
	return DefaultMigrateHeadroom
}

// ShardedStats is a snapshot of a sharded server's counters: the
// field-wise aggregate over shards (Tenants counts distinct names,
// not per-shard entries), the per-shard breakdown, and the balancer's
// migration counters.
type ShardedStats struct {
	Shards    int
	Aggregate Stats
	PerShard  []Stats
	// Migrations counts balancer events (each moves one slice of
	// requests between adjacent shards); Migrated counts the requests
	// moved. Both stay 0 under balanced traffic — migration is the
	// exception path, not the routing path.
	Migrations, Migrated int64
}

// Sharded is the sharded request-serving runtime: N independent
// Server shards — each with its own executor (work-stealing deques,
// occupancy gauges), scratch arena pool, optional adaptive controller
// and batch dispatcher — plus a diffusive load balancer between them.
//
// Requests route to their tenant's home shard by stable hash, so in
// the common (balanced) case a tenant's queue, batches, scratch reuse
// and adaptive site state are all shard-local and the N dispatchers
// never contend. When tenant skew overloads one shard, the balancer
// migrates queued requests to adjacent shards in the ring — the
// diffusive/repartitioning strategy of parallel adaptive FEM load
// balancing, applied to request queues instead of mesh partitions:
// compare local load estimates with your neighbors', move half the
// divergence when it exceeds a hysteresis threshold, and let repeated
// local exchanges spread a hot spot across the whole ring without any
// global re-assignment. Both balancer edges piggyback on existing
// events (a submitter observing a deep backlog pushes; an idle
// dispatcher pulls before parking), so no dedicated balancer
// goroutine or ticker exists.
//
// Create one with NewSharded, submit with the same typed methods as
// Server, and Close it when done.
type Sharded struct {
	cfg    ShardedConfig
	execs  *exec.Sharded
	shards []*Server
	// ready flips once every shard exists; dispatchers start inside
	// the construction loop and may probe the balancer before their
	// neighbors are built, so both edges no-op until then.
	ready  atomic.Bool
	closed atomic.Bool

	migrations atomic.Int64
	migrated   atomic.Int64
	// migBufs recycles the migration slices so a steady stream of
	// balancer events allocates nothing per event.
	migBufs sync.Pool
}

// NewSharded creates a sharded server and starts one dispatcher per
// shard.
func NewSharded(cfg ShardedConfig) *Sharded {
	n := cfg.numShards()
	g := &Sharded{cfg: cfg}
	g.migBufs.New = func() any {
		s := make([]*request, 0, cfg.maxBatch())
		return &s
	}
	g.execs = exec.NewSharded(n, cfg.ShardProcs)
	g.shards = make([]*Server, n)
	for i := range g.shards {
		sc := cfg.Config
		sc.Executor = g.execs.Shard(i)
		if sc.Scratch == nil {
			sc.Scratch = scratch.New()
		}
		if sc.Adaptive == nil && cfg.AdaptivePerShard {
			sc.Adaptive = adapt.New(adapt.Config{Seed: uint64(i + 1)})
		}
		if !cfg.DisableMigration && n > 1 {
			i := i
			sc.stealIdle = func() int { return g.pull(i) }
			sc.overflow = func(queued int) { g.push(i, queued) }
		}
		g.shards[i] = New(sc)
	}
	g.ready.Store(true)
	return g
}

// shardKey hashes a tenant name (FNV-1a) to its affinity key.
func shardKey(tenant string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= 1099511628211
	}
	return h
}

// home returns the tenant's affinity shard.
func (g *Sharded) home(tenant string) *Server {
	return g.shards[shardKey(tenant)%uint64(len(g.shards))]
}

// HomeShard returns the shard index the tenant routes to — the
// affinity mapping made observable for tests and demos.
func (g *Sharded) HomeShard(tenant string) int {
	return int(shardKey(tenant) % uint64(len(g.shards)))
}

// Shards returns the number of shards.
func (g *Sharded) Shards() int { return len(g.shards) }

// Executors returns the underlying executor shard group (per-shard
// and aggregate occupancy gauges, steal counters).
func (g *Sharded) Executors() *exec.Sharded { return g.execs }

// push is the balancer's push edge, called on a submitter's goroutine
// after it deepened shard from's backlog to queued requests. The
// cheap depth gate keeps the common un-backlogged case to one integer
// compare.
func (g *Sharded) push(from, queued int) {
	if queued < 2*g.cfg.hysteresis() || !g.ready.Load() || g.closed.Load() {
		return
	}
	n := len(g.shards)
	left, right := (from+n-1)%n, (from+1)%n
	if g.tryMigrate(from, left) > 0 {
		return
	}
	if right != left {
		g.tryMigrate(from, right)
	}
}

// pull is the balancer's pull edge, called by shard to's dispatcher
// when its queues are empty, before parking.
func (g *Sharded) pull(to int) int {
	if !g.ready.Load() || g.closed.Load() {
		return 0
	}
	n := len(g.shards)
	left, right := (to+n-1)%n, (to+1)%n
	if m := g.tryMigrate(left, to); m > 0 {
		return m
	}
	if right != left {
		return g.tryMigrate(right, to)
	}
	return 0
}

// tryMigrate is one diffusive exchange between adjacent shards: if
// from's queue exceeds to's by at least the hysteresis threshold and
// to's executor has headroom (occupancy EWMA at or below
// MigrateHeadroom — the smoothing is what keeps one idle probe
// between batches from reading as an idle shard), move half the
// divergence (capped at one batch). It returns the number of requests
// moved. The popped requests are owned exclusively by this goroutine
// between the pop and the inject, so a request is never on two queues
// and never on none-without-an-owner: migration is exactly-once by
// construction.
func (g *Sharded) tryMigrate(from, to int) int {
	if from == to {
		return 0
	}
	diff := g.shards[from].queueDepth() - g.shards[to].queueDepth()
	if diff < g.cfg.hysteresis() {
		return 0
	}
	if g.execs.Shard(to).OccupancyEWMA() > g.cfg.headroom() {
		return 0
	}
	take := diff / 2
	if maxB := g.cfg.maxBatch(); take > maxB {
		take = maxB
	}
	bufp := g.migBufs.Get().(*[]*request)
	buf := g.shards[from].migrateOut((*bufp)[:0], take)
	n := len(buf)
	if n > 0 {
		g.shards[to].migrateIn(buf)
		g.migrations.Add(1)
		g.migrated.Add(int64(n))
	}
	*bufp = buf[:0]
	g.migBufs.Put(bufp)
	return n
}

// Close stops the balancer, closes every shard (draining their queues)
// and then closes their executors. Idempotent.
func (g *Sharded) Close() {
	g.closed.Store(true)
	for _, s := range g.shards {
		s.Close()
	}
	g.execs.Close()
}

// Stats returns a racy snapshot of the sharded server's counters.
func (g *Sharded) Stats() ShardedStats {
	st := ShardedStats{
		Shards:     len(g.shards),
		PerShard:   make([]Stats, len(g.shards)),
		Migrations: g.migrations.Load(),
		Migrated:   g.migrated.Load(),
	}
	for i, s := range g.shards {
		ss := s.Stats()
		st.PerShard[i] = ss
		a := &st.Aggregate
		a.Accepted += ss.Accepted
		a.Rejected += ss.Rejected
		a.Completed += ss.Completed
		a.Batches += ss.Batches
		a.BatchedRequests += ss.BatchedRequests
		if ss.MaxBatch > a.MaxBatch {
			a.MaxBatch = ss.MaxBatch
		}
		a.ParallelBatches += ss.ParallelBatches
		a.SerialBatches += ss.SerialBatches
		a.Shed += ss.Shed
		a.Degraded += ss.Degraded
		a.Pipelined += ss.Pipelined
		a.DeadlineRejected += ss.DeadlineRejected
		a.Expired += ss.Expired
		a.CacheHits += ss.CacheHits
		a.CacheMisses += ss.CacheMisses
		a.MigratedIn += ss.MigratedIn
		a.MigratedOut += ss.MigratedOut
	}
	st.Aggregate.Tenants = len(g.TenantStats())
	return st
}

// TenantStats returns per-tenant counters merged by name across
// shards (a migrated tenant has entries on more than one shard), in
// name order. Accepted is counted on the home shard and Completed
// wherever the request executed, so the merged view is the one in
// which every tenant's Accepted and Completed match.
func (g *Sharded) TenantStats() []TenantStats {
	m := map[string]TenantStats{}
	for _, s := range g.shards {
		for _, ts := range s.TenantStats() {
			cur := m[ts.Name]
			cur.Name = ts.Name
			cur.Accepted += ts.Accepted
			cur.Rejected += ts.Rejected
			cur.Completed += ts.Completed
			cur.DeadlineRejected += ts.DeadlineRejected
			cur.Expired += ts.Expired
			cur.CacheHits += ts.CacheHits
			m[ts.Name] = cur
		}
	}
	out := make([]TenantStats, 0, len(m))
	for _, ts := range m {
		out = append(out, ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Call submits one request for any registered kernel on the tenant's
// home shard — the generic entrypoint the typed methods wrap. Under
// skew the request may execute on a migrated-to sibling, but its
// accounting stays with the home shard's tenant entry.
func (g *Sharded) Call(tenant string, k *kernel.Kernel, a *kernel.Args) error {
	return g.home(tenant).Call(tenant, k, a)
}

// CallBudget is Call with a per-request deadline budget (see
// Server.CallBudget) on the tenant's home shard. The absolute stamp
// derived from the budget rides migration, so a thief shard enforces
// the remote client's budget exactly as it enforces a home SLO.
func (g *Sharded) CallBudget(tenant string, k *kernel.Kernel, a *kernel.Args, budget time.Duration) error {
	return g.home(tenant).CallBudget(tenant, k, a, budget)
}

// CallDelta submits one incremental request (see Server.CallDelta) on
// the tenant's home shard.
func (g *Sharded) CallDelta(tenant string, k *kernel.Kernel, a *kernel.Args, d *kernel.Delta) error {
	return g.home(tenant).CallDelta(tenant, k, a, d)
}

// CallDeltaBudget is CallDelta with a per-request deadline budget on
// the tenant's home shard.
func (g *Sharded) CallDeltaBudget(tenant string, k *kernel.Kernel, a *kernel.Args, d *kernel.Delta, budget time.Duration) error {
	return g.home(tenant).CallDeltaBudget(tenant, k, a, d, budget)
}

// Cache returns the result cache shared by every shard (the template
// Config's Cache pointer), nil when caching is off.
func (g *Sharded) Cache() *rescache.Cache { return g.cfg.Cache }

// BumpGeneration invalidates every result cached for tenant. The
// cache is shared across shards, so one bump is visible to all of
// them — including a thief shard serving the tenant's migrated
// requests.
func (g *Sharded) BumpGeneration(tenant string) uint64 {
	if c := g.cfg.Cache; c != nil {
		return c.Bump(tenant)
	}
	return 0
}

// Sort sorts xs in place on the tenant's home shard (or migrated
// siblings under skew); long inputs stream through the home shard's
// pipeline route.
func (g *Sharded) Sort(tenant string, xs []int64) error {
	return g.home(tenant).Sort(tenant, xs)
}

// Select returns the k-th smallest element of xs (0-based) without
// modifying xs.
func (g *Sharded) Select(tenant string, xs []int64, k int) (int64, error) {
	return g.home(tenant).Select(tenant, xs, k)
}

// Histogram counts bucket(x) occurrences over xs into hist.
func (g *Sharded) Histogram(tenant string, hist []int, xs []int64, bucket func(int64) int) error {
	return g.home(tenant).Histogram(tenant, hist, xs, bucket)
}

// Scan writes inclusive prefix sums of xs into dst.
func (g *Sharded) Scan(tenant string, dst, xs []int64) error {
	return g.home(tenant).Scan(tenant, dst, xs)
}

// Sum returns the sum of xs.
func (g *Sharded) Sum(tenant string, xs []int64) (int64, error) {
	return g.home(tenant).Sum(tenant, xs)
}

// BFS returns hop distances from src in g (-1 when unreachable).
func (g *Sharded) BFS(tenant string, gr *graph.Graph, src int) ([]int32, error) {
	return g.home(tenant).BFS(tenant, gr, src)
}

package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/par"
	"repro/internal/psort"
	"repro/internal/scratch"
)

// BenchmarkTrafficServe is the request-serving half of the traffic
// suite: many client goroutines each issuing small mixed requests
// (sort / histogram / scan / sum, 2K elements each — the shape of an
// aggregation endpoint), handled either by the batched
// admission-control server (one fused fork/join per batch, kernels
// serial inside their slot) or by naive per-request dispatch (every
// request invokes the parallel kernel directly — how all pre-serve
// entry points behave). Both modes run at equal worker count on the
// same dedicated executor and scratch pool, so the delta is purely
// the request-handling discipline. Expected shape: batched >= 1.5x
// the naive throughput at ~10x fewer B/op — per-request fork/join,
// splitter sampling, private-histogram zeroing and scan-partials
// overheads are paid once per batch instead of once per tiny request,
// and request-level parallelism replaces oversubscribed kernel-level
// parallelism.
func BenchmarkTrafficServe(b *testing.B) {
	b.Run("batched", func(b *testing.B) { benchTrafficServe(b, true) })
	b.Run("naive", func(b *testing.B) { benchTrafficServe(b, false) })
}

// trafficWorkers is the worker count both modes run at.
const trafficWorkers = 4

// benchTrafficServe drives b.N mixed requests from 16 clients.
func benchTrafficServe(b *testing.B, batched bool) {
	e := exec.New(trafficWorkers)
	defer e.Close()
	sp := scratch.New()

	const n = 2 << 10
	base := randInts(n, 42)

	var s *Server
	if batched {
		s = New(Config{Executor: e, Scratch: sp, Workers: trafficWorkers,
			BatchWindow: 200 * time.Microsecond})
		defer s.Close()
	}
	naiveOpts := par.Options{Procs: trafficWorkers, Executor: e, Scratch: sp}

	const clients = 16
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := string(rune('a' + c%4))
			xs := make([]int64, n)
			dst := make([]int64, n)
			hist := make([]int, 1024)
			bucket := func(v int64) int { return int(uint64(v) % 1024) }
			add := func(a, b int64) int64 { return a + b }
			for {
				i := int(next.Add(1)) - 1
				if i >= b.N {
					return
				}
				copy(xs, base)
				switch i % 4 {
				case 0:
					if batched {
						_ = s.Sort(tenant, xs)
					} else {
						psort.SampleSort(xs, naiveOpts)
					}
				case 1:
					if batched {
						_ = s.Histogram(tenant, hist, xs, bucket)
					} else {
						par.HistogramInto(hist, xs, naiveOpts, bucket)
					}
				case 2:
					if batched {
						_ = s.Scan(tenant, dst, xs)
					} else {
						par.ScanInclusive(dst, xs, naiveOpts, 0, add)
					}
				case 3:
					if batched {
						_, _ = s.Sum(tenant, xs)
					} else {
						par.Sum(xs, naiveOpts)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	b.StopTimer()
	if batched {
		st := s.Stats()
		if st.Batches > 0 {
			b.ReportMetric(float64(st.BatchedRequests)/float64(st.Batches), "reqs/batch")
		}
	}
}

package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/kernel"
	"repro/internal/loadgen"
	"repro/internal/par"
	"repro/internal/psort"
	"repro/internal/rescache"
	"repro/internal/scratch"
)

// BenchmarkTrafficServe is the request-serving half of the traffic
// suite: client goroutines each issuing small mixed requests (sort /
// histogram / scan / sum, 2K elements each — the shape of an
// aggregation endpoint), swept across client counts of 1x/4x/16x/64x
// GOMAXPROCS and three handling disciplines:
//
//   - naive: every request invokes the parallel kernel directly (how
//     all pre-serve entry points behave);
//   - batched: one admission-controlled Server — one fused fork/join
//     per batch, kernels serial inside their slot;
//   - sharded: the sharded server — tenants hash across shards, each
//     with its own executor, queues and dispatcher, diffusive
//     migration on.
//
// All modes run the same total worker count on dedicated executors
// and scratch pools, so the deltas are purely the request-handling
// discipline. Expected shape: batched >= 1.5x naive at ~10x fewer
// B/op (per-request fork/join, splitter sampling and
// private-histogram zeroing are paid once per batch), and sharded
// pulls ahead of single-server batched as the client multiple grows
// — at 16x-64x GOMAXPROCS the single server's submit mutex and lone
// dispatcher serialize admission, while N shards admit and dispatch
// in parallel.
func BenchmarkTrafficServe(b *testing.B) {
	for _, mult := range []int{1, 4, 16, 64} {
		clients := mult * runtime.GOMAXPROCS(0)
		for _, mode := range []string{"naive", "batched", "sharded"} {
			b.Run(fmt.Sprintf("clients=%dxP/mode=%s", mult, mode), func(b *testing.B) {
				benchTrafficServe(b, mode, clients)
			})
		}
	}
}

// trafficWorkers is the total worker count every mode runs at.
const trafficWorkers = 4

// trafficShards is the shard count of the sharded mode; workers split
// evenly so the total stays trafficWorkers.
const trafficShards = 4

// benchTrafficServe drives b.N mixed requests from the given number
// of closed-loop clients.
func benchTrafficServe(b *testing.B, mode string, clients int) {
	const n = 2 << 10
	base := randInts(n, 42)

	var (
		s         *Server
		g         *Sharded
		naiveOpts par.Options
	)
	switch mode {
	case "batched":
		e := exec.New(trafficWorkers)
		defer e.Close()
		s = New(Config{Executor: e, Scratch: scratch.New(), Workers: trafficWorkers,
			BatchWindow: 200 * time.Microsecond})
		defer s.Close()
	case "sharded":
		g = NewSharded(ShardedConfig{
			Shards:     trafficShards,
			ShardProcs: trafficWorkers / trafficShards,
			Config:     Config{BatchWindow: 200 * time.Microsecond},
		})
		defer g.Close()
	default:
		e := exec.New(trafficWorkers)
		defer e.Close()
		naiveOpts = par.Options{Procs: trafficWorkers, Executor: e, Scratch: scratch.New()}
	}

	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := string(rune('a' + c%16))
			xs := make([]int64, n)
			dst := make([]int64, n)
			hist := make([]int, 1024)
			bucket := func(v int64) int { return int(uint64(v) % 1024) }
			add := func(a, b int64) int64 { return a + b }
			for {
				i := int(next.Add(1)) - 1
				if i >= b.N {
					return
				}
				copy(xs, base)
				switch i % 4 {
				case 0:
					switch mode {
					case "batched":
						_ = s.Sort(tenant, xs)
					case "sharded":
						_ = g.Sort(tenant, xs)
					default:
						psort.SampleSort(xs, naiveOpts)
					}
				case 1:
					switch mode {
					case "batched":
						_ = s.Histogram(tenant, hist, xs, bucket)
					case "sharded":
						_ = g.Histogram(tenant, hist, xs, bucket)
					default:
						par.HistogramInto(hist, xs, naiveOpts, bucket)
					}
				case 2:
					switch mode {
					case "batched":
						_ = s.Scan(tenant, dst, xs)
					case "sharded":
						_ = g.Scan(tenant, dst, xs)
					default:
						par.ScanInclusive(dst, xs, naiveOpts, 0, add)
					}
				case 3:
					switch mode {
					case "batched":
						_, _ = s.Sum(tenant, xs)
					case "sharded":
						_, _ = g.Sum(tenant, xs)
					default:
						par.Sum(xs, naiveOpts)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	b.StopTimer()
	switch mode {
	case "batched":
		st := s.Stats()
		if st.Batches > 0 {
			b.ReportMetric(float64(st.BatchedRequests)/float64(st.Batches), "reqs/batch")
		}
	case "sharded":
		st := g.Stats()
		if st.Aggregate.Batches > 0 {
			b.ReportMetric(float64(st.Aggregate.BatchedRequests)/float64(st.Aggregate.Batches), "reqs/batch")
		}
		b.ReportMetric(float64(st.Migrated), "migrated")
	}
}

// BenchmarkTrafficServeOpenLoop is the coordinated-omission-free half
// of the traffic suite: b.N mixed requests arrive on a fixed open-loop
// schedule (constant-rate or Poisson-bursty) instead of from
// closed-loop retry clients, so a stalled batch cannot slow the
// offered load down. ns/op tracks the schedule (~1/rate) and is not
// the interesting number; the custom metrics are: p99corr-ns is the
// honest tail (latency charged from the intended arrival), p99uncorr-ns
// is what a send-time clock would claim, and their ratio is the size
// of the coordinated-omission lie at this load. The slo=on variant
// adds a deadline budget and reports how many requests the door and
// the dispatcher refused instead of serving late.
func BenchmarkTrafficServeOpenLoop(b *testing.B) {
	for _, bc := range []struct {
		name    string
		poisson bool
		slo     time.Duration
	}{
		{"arrival=const/slo=off", false, 0},
		{"arrival=poisson/slo=off", true, 0},
		{"arrival=poisson/slo=on", true, 2 * time.Millisecond},
	} {
		b.Run(bc.name, func(b *testing.B) {
			benchTrafficOpenLoop(b, bc.poisson, bc.slo)
		})
	}
}

// openLoopRate is the offered load of the open-loop benchmark in
// requests per second — chosen to stress the 4-worker server without
// stretching a 1000x run past a fraction of a second of schedule.
const openLoopRate = 5000.0

// benchTrafficOpenLoop fires b.N schedule-driven mixed requests at a
// batched server and reports corrected vs uncorrected tails.
func benchTrafficOpenLoop(b *testing.B, poisson bool, slo time.Duration) {
	const n = 2 << 10
	base := randInts(n, 42)
	e := exec.New(trafficWorkers)
	defer e.Close()
	s := New(Config{Executor: e, Scratch: scratch.New(), Workers: trafficWorkers,
		BatchWindow: 200 * time.Microsecond, SLO: slo})
	defer s.Close()

	var sched loadgen.Schedule
	if poisson {
		sched = loadgen.Poisson(b.N, openLoopRate, 42)
	} else {
		sched = loadgen.Constant(b.N, openLoopRate)
	}
	// Open-loop arrivals overlap, so each in-flight request needs its
	// own payload buffers; the pool is harness overhead, not a serve
	// allocation.
	type bufs struct {
		xs   []int64
		hist []int
	}
	pool := sync.Pool{New: func() any {
		return &bufs{xs: make([]int64, n), hist: make([]int, 1024)}
	}}
	bucket := func(v int64) int { return int(uint64(v) % 1024) }

	b.ResetTimer()
	res := loadgen.Run(sched, func(i int) error {
		bf := pool.Get().(*bufs)
		defer pool.Put(bf)
		copy(bf.xs, base)
		tenant := string(rune('a' + i%4))
		if i%2 == 0 {
			return s.Sort(tenant, bf.xs)
		}
		return s.Histogram(tenant, bf.hist, bf.xs, bucket)
	})
	b.StopTimer()

	rep := res.Summarize(sched)
	b.ReportMetric(rep.CorrectedP99*1e9, "p99corr-ns")
	b.ReportMetric(rep.UncorrectedP99*1e9, "p99uncorr-ns")
	deadline := res.Failed(func(err error) bool { return errors.Is(err, ErrDeadlineExceeded) })
	b.ReportMetric(float64(deadline), "deadline-refused")
}

// BenchmarkTrafficServeSkew is the worst case for affinity routing:
// every client hammers tenants homed on shard 0 while the other
// shards idle. With migration disabled that degenerates to one shard
// doing all the work (the other dispatchers park); with the diffusive
// balancer on, queued requests spread around the ring and the idle
// shards' workers join in. The migration=on/off delta is the direct
// measure of what rebalancing buys under pathological skew.
func BenchmarkTrafficServeSkew(b *testing.B) {
	b.Run("migration=off", func(b *testing.B) { benchTrafficSkew(b, true) })
	b.Run("migration=on", func(b *testing.B) { benchTrafficSkew(b, false) })
}

// benchTrafficSkew drives b.N mixed requests from 32 clients, all on
// tenants homed on shard 0.
func benchTrafficSkew(b *testing.B, disableMigration bool) {
	const n = 2 << 10
	base := randInts(n, 42)

	g := NewSharded(ShardedConfig{
		Shards:           trafficShards,
		ShardProcs:       trafficWorkers / trafficShards,
		DisableMigration: disableMigration,
		Config:           Config{BatchWindow: 200 * time.Microsecond},
	})
	defer g.Close()
	tenants := tenantsHomedOn(g, 0, 4)

	const clients = 32
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := tenants[c%len(tenants)]
			xs := make([]int64, n)
			hist := make([]int, 1024)
			bucket := func(v int64) int { return int(uint64(v) % 1024) }
			for {
				i := int(next.Add(1)) - 1
				if i >= b.N {
					return
				}
				copy(xs, base)
				switch i % 2 {
				case 0:
					_ = g.Sort(tenant, xs)
				case 1:
					_ = g.Histogram(tenant, hist, xs, bucket)
				}
			}
		}(c)
	}
	wg.Wait()
	b.StopTimer()
	st := g.Stats()
	b.ReportMetric(float64(st.Migrated), "migrated")
	var offHome int64
	for i := 1; i < g.Shards(); i++ {
		offHome += st.PerShard[i].Completed
	}
	if b.N > 1 {
		b.ReportMetric(float64(offHome)/float64(b.N), "offhome-frac")
	}
}

// BenchmarkTrafficServeCache is the result-cache third of the traffic
// suite: the same 2K-element sort endpoint served three ways through
// one cache-fronted server.
//
//   - cold: every request presents a distinct input (one word varies
//     per iteration), so every probe misses and pays the full path —
//     fingerprint, admission, batching, kernel, insert. The long tail
//     of distinct entries also churns the LRU once the cache fills,
//     so eviction cost is in this row, where it belongs.
//   - warm: every request repeats the identical input; after the
//     first, each probe hits and is restored at the door with zero
//     kernel work. allocs/op is the pinned 0 of the hit path.
//   - delta: a standing sorted record absorbs a 16-element append per
//     request through the kernel's incremental adapter — the batch
//     path without the O(n log n) rerun. The record is re-seeded
//     (off-clock) before it grows past 8x its base size so the merge
//     cost being measured stays the steady-state one.
func BenchmarkTrafficServeCache(b *testing.B) {
	for _, mode := range []string{"cold", "warm", "delta"} {
		b.Run("mode="+mode, func(b *testing.B) {
			benchTrafficCache(b, mode)
		})
	}
}

func benchTrafficCache(b *testing.B, mode string) {
	const n = 2 << 10
	base := randInts(n, 42)
	e := exec.New(trafficWorkers)
	defer e.Close()
	pool := scratch.New()
	s := New(Config{Executor: e, Scratch: pool, Workers: trafficWorkers,
		BatchWindow: 200 * time.Microsecond,
		Cache:       rescache.New(rescache.Config{Pool: pool})})
	defer s.Close()
	kSort := kernel.MustLookup("sort")
	const tenant = "t"

	// One primed record: fingerprint(base) -> sorted(base). The warm
	// mode re-presents base; the delta mode starts from the sorted
	// output it left behind.
	sorted := make([]int64, n)
	copy(sorted, base)
	if err := s.Sort(tenant, sorted); err != nil {
		b.Fatal(err)
	}

	a := kernel.Args{Xs: make([]int64, 0, 16*n)}
	a.Xs = append(a.Xs, sorted...)
	chunk := make([]int64, 16)
	xs := make([]int64, n)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch mode {
		case "cold":
			copy(xs, base)
			xs[0] = int64(i) // distinct fingerprint every iteration
			if err := s.Sort(tenant, xs); err != nil {
				b.Fatal(err)
			}
		case "warm":
			copy(xs, base) // the hit restored sorted output in place
			if err := s.Sort(tenant, xs); err != nil {
				b.Fatal(err)
			}
		case "delta":
			if len(a.Xs) > 8*n {
				b.StopTimer()
				a.Xs = append(a.Xs[:0], sorted...)
				b.StartTimer()
			}
			for j := range chunk {
				chunk[j] = int64((i*16+j)*2654435761) % 100003
			}
			if err := s.CallDelta(tenant, kSort, &a, &kernel.Delta{Append: chunk}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	st := s.Stats()
	if b.N > 1 {
		b.ReportMetric(float64(st.CacheHits)/float64(b.N), "hits-frac")
	}
	if cs := s.Cache().Stats(); cs.Evictions > 0 {
		b.ReportMetric(float64(cs.Evictions), "evictions")
	}
}

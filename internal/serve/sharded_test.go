package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kernel"
)

// tenantsHomedOn generates count distinct tenant names whose affinity
// shard is shard — how the tests construct deliberately skewed traffic
// without depending on what the hash does to any particular name.
func tenantsHomedOn(g *Sharded, shard, count int) []string {
	names := make([]string, 0, count)
	for i := 0; len(names) < count; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		if g.HomeShard(name) == shard {
			names = append(names, name)
		}
	}
	return names
}

// TestShardedMigrationExactlyOnce is the migration correctness test:
// every tenant is homed on shard 0 while shards 1..3 idle, so the
// diffusive balancer must move queued requests off the hot shard.
// Under the race detector it pins that (a) every request completes
// exactly once (aggregate accepted == completed == sent, with each
// result matching its oracle, so nothing was lost or run twice),
// (b) rejections are the only other terminal state and there are
// none here, and (c) per-tenant accounting merged across shards
// balances even though completion happened off-home.
func TestShardedMigrationExactlyOnce(t *testing.T) {
	g := NewSharded(ShardedConfig{
		Shards:            4,
		ShardProcs:        1,
		MigrateHysteresis: 2,
	})
	defer g.Close()

	tenants := tenantsHomedOn(g, 0, 4)
	const clients = 8
	const perWave = 100
	var sent, completed atomic.Int64

	wave := func() {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				tenant := tenants[c%len(tenants)]
				for i := 0; i < perWave; i++ {
					xs := randInts(2048, uint64(c*1000+i))
					sent.Add(1)
					if i%2 == 0 {
						want := sortedOracle(xs)
						if err := g.Sort(tenant, xs); err != nil {
							t.Errorf("sort: %v", err)
							return
						}
						for j := range want {
							if xs[j] != want[j] {
								t.Errorf("migrated sort corrupted at %d", j)
								return
							}
						}
					} else {
						var want int64
						for _, v := range xs {
							want += v
						}
						got, err := g.Sum(tenant, xs)
						if err != nil {
							t.Errorf("sum: %v", err)
							return
						}
						if got != want {
							t.Errorf("sum = %d, want %d", got, want)
							return
						}
					}
					completed.Add(1)
				}
			}(c)
		}
		wg.Wait()
	}

	// Migration needs a real backlog divergence; one wave almost
	// always produces it, but the balancer is load-driven, so drive
	// more skewed waves until it has fired rather than guessing at
	// timing.
	deadline := time.Now().Add(30 * time.Second)
	for waveN := 0; g.Stats().Migrated == 0; waveN++ {
		if time.Now().After(deadline) {
			t.Fatalf("no migration after %d skewed waves", waveN)
		}
		wave()
	}

	st := g.Stats()
	if st.Migrated == 0 || st.Migrations == 0 {
		t.Fatalf("migration counters empty: %+v", st)
	}
	if st.Aggregate.MigratedIn != st.Migrated || st.Aggregate.MigratedOut != st.Migrated {
		t.Fatalf("per-shard migration flow (in=%d out=%d) != balancer count %d",
			st.Aggregate.MigratedIn, st.Aggregate.MigratedOut, st.Migrated)
	}
	// Exactly once: the server completed precisely the accepted
	// requests, which are precisely the ones the clients sent and saw
	// complete.
	if st.Aggregate.Rejected != 0 {
		t.Fatalf("unexpected rejections: %+v", st.Aggregate)
	}
	if st.Aggregate.Accepted != sent.Load() || st.Aggregate.Completed != sent.Load() {
		t.Fatalf("accepted=%d completed=%d, want both %d",
			st.Aggregate.Accepted, st.Aggregate.Completed, sent.Load())
	}
	if completed.Load() != sent.Load() {
		t.Fatalf("clients saw %d completions of %d sent", completed.Load(), sent.Load())
	}
	// Off-home completions exist (that is what migration is), and the
	// merged per-tenant view still balances.
	var offHome int64
	for i := 1; i < g.Shards(); i++ {
		offHome += st.PerShard[i].Completed
	}
	if offHome == 0 {
		t.Fatalf("migration reported but no off-home completions: %+v", st.PerShard)
	}
	var tenantTotal int64
	for _, ts := range g.TenantStats() {
		if ts.Accepted != ts.Completed {
			t.Fatalf("tenant %q accepted=%d completed=%d after migration",
				ts.Name, ts.Accepted, ts.Completed)
		}
		tenantTotal += ts.Completed
	}
	if tenantTotal != sent.Load() {
		t.Fatalf("per-tenant completions sum to %d, want %d", tenantTotal, sent.Load())
	}
}

// TestShardedAffinityBalanced pins the other half of the diffusion
// contract: balanced traffic never diverges past the hysteresis
// threshold, so nothing migrates and every tenant's requests complete
// entirely on its home shard.
func TestShardedAffinityBalanced(t *testing.T) {
	g := NewSharded(ShardedConfig{Shards: 4, ShardProcs: 1})
	defer g.Close()

	// One tenant per shard, one synchronous client each: queues never
	// deepen past one request per shard.
	var tenants []string
	for s := 0; s < 4; s++ {
		tenants = append(tenants, tenantsHomedOn(g, s, 1)[0])
	}
	const each = 50
	var wg sync.WaitGroup
	for c, tenant := range tenants {
		wg.Add(1)
		go func(c int, tenant string) {
			defer wg.Done()
			xs := randInts(1024, uint64(c))
			for i := 0; i < each; i++ {
				if _, err := g.Sum(tenant, xs); err != nil {
					t.Errorf("sum: %v", err)
					return
				}
			}
		}(c, tenant)
	}
	wg.Wait()

	st := g.Stats()
	if st.Migrated != 0 || st.Migrations != 0 {
		t.Fatalf("balanced traffic migrated %d requests over %d events",
			st.Migrated, st.Migrations)
	}
	for i, ss := range st.PerShard {
		if ss.Completed != each {
			t.Fatalf("shard %d completed %d, want %d (affinity broken)", i, ss.Completed, each)
		}
	}
}

// TestShardedFairShareUnderMigration floods one hot tenant while a
// light tenant homed on the same shard issues occasional requests:
// per-shard round-robin still serves the light tenant promptly, and
// its accounting stays balanced even if some of its requests ride a
// migration slice to another shard.
func TestShardedFairShareUnderMigration(t *testing.T) {
	g := NewSharded(ShardedConfig{
		Shards:            2,
		ShardProcs:        1,
		MigrateHysteresis: 2,
	})
	defer g.Close()

	names := tenantsHomedOn(g, 0, 2)
	hot, light := names[0], names[1]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			xs := randInts(4096, uint64(c))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := g.Sort(hot, xs); err != nil && !errors.Is(err, ErrRejected) {
					t.Errorf("hot: %v", err)
					return
				}
			}
		}(c)
	}

	xs := randInts(1024, 99)
	for i := 0; i < 30; i++ {
		hist := make([]int, 16)
		if err := g.Histogram(light, hist, xs, func(v int64) int { return int(uint64(v) % 16) }); err != nil {
			t.Fatalf("light request %d failed under hot flood: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	for _, ts := range g.TenantStats() {
		if ts.Accepted != ts.Completed+ts.Rejected {
			t.Fatalf("tenant %q accounting unbalanced: %+v", ts.Name, ts)
		}
		if ts.Name == light && ts.Rejected != 0 {
			t.Fatalf("light tenant saw %d rejections", ts.Rejected)
		}
	}
}

// TestMigrateInClosedRunsInline pins the shutdown race: a migration
// slice landing on a shard that has already closed is executed inline
// on the migrating goroutine, so an admitted request is never lost
// and its waiter never hangs.
func TestMigrateInClosedRunsInline(t *testing.T) {
	s := New(Config{})
	xs := []int64{1, 2, 3, 4}
	r := s.getRequest(kernelSum, "t", &kernel.Args{Xs: xs})
	s.mu.Lock()
	r.t = s.tenantLocked("t")
	s.mu.Unlock()
	s.Close()

	s.migrateIn([]*request{r})
	select {
	case <-r.done:
	case <-time.After(5 * time.Second):
		t.Fatal("request migrated into a closed shard never completed")
	}
	if r.err != nil || r.args.Out != 10 {
		t.Fatalf("inline-run result = %d, %v; want 10, nil", r.args.Out, r.err)
	}
	st := s.Stats()
	if st.MigratedIn != 1 || st.Completed != 1 {
		t.Fatalf("inline-run accounting: %+v", st)
	}
	s.putRequest(r)
}

// TestShardedClose pins drain-then-reject semantics and idempotence
// across all shards.
func TestShardedClose(t *testing.T) {
	g := NewSharded(ShardedConfig{Shards: 2, ShardProcs: 1})
	xs := randInts(512, 1)
	if _, err := g.Sum("a", xs); err != nil {
		t.Fatalf("sum: %v", err)
	}
	g.Close()
	g.Close() // idempotent
	if _, err := g.Sum("a", xs); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sum after Close = %v, want ErrClosed", err)
	}
	if err := g.Sort("b", xs); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sort after Close = %v, want ErrClosed", err)
	}
}

// TestShardedMixedOps smoke-covers every request type through the
// sharded front door against oracles, across tenants homed on
// different shards.
func TestShardedMixedOps(t *testing.T) {
	g := NewSharded(ShardedConfig{Shards: 2, ShardProcs: 2})
	defer g.Close()

	for tn := 0; tn < 4; tn++ {
		tenant := fmt.Sprintf("t%d", tn)
		xs := randInts(3000, uint64(tn))

		want := sortedOracle(xs)
		sorted := append([]int64(nil), xs...)
		if err := g.Sort(tenant, sorted); err != nil {
			t.Fatalf("sort: %v", err)
		}
		for j := range want {
			if sorted[j] != want[j] {
				t.Fatalf("sort mismatch at %d", j)
			}
		}

		k := 1500
		if got, err := g.Select(tenant, xs, k); err != nil || got != want[k] {
			t.Fatalf("select = %d, %v; want %d", got, err, want[k])
		}

		hist := make([]int, 32)
		bucket := func(v int64) int { return int(uint64(v) % 32) }
		if err := g.Histogram(tenant, hist, xs, bucket); err != nil {
			t.Fatalf("histogram: %v", err)
		}
		wantHist := make([]int, 32)
		for _, v := range xs {
			wantHist[bucket(v)]++
		}
		for j := range wantHist {
			if hist[j] != wantHist[j] {
				t.Fatalf("hist[%d] = %d, want %d", j, hist[j], wantHist[j])
			}
		}

		dst := make([]int64, len(xs))
		if err := g.Scan(tenant, dst, xs); err != nil {
			t.Fatalf("scan: %v", err)
		}
		var run int64
		for j, v := range xs {
			run += v
			if dst[j] != run {
				t.Fatalf("scan[%d] = %d, want %d", j, dst[j], run)
			}
		}

		var wantSum int64
		for _, v := range xs {
			wantSum += v
		}
		if got, err := g.Sum(tenant, xs); err != nil || got != wantSum {
			t.Fatalf("sum = %d, %v; want %d", got, err, wantSum)
		}
	}

	st := g.Stats()
	if st.Aggregate.Accepted != st.Aggregate.Completed {
		t.Fatalf("accepted=%d completed=%d", st.Aggregate.Accepted, st.Aggregate.Completed)
	}
	if st.Aggregate.Tenants != 4 {
		t.Fatalf("distinct tenants = %d, want 4", st.Aggregate.Tenants)
	}
}

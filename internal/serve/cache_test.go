package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/par"
	"repro/internal/rescache"
)

// cachetestVersion is the observable world state behind the cachetest
// kernel: its result is whatever the version was when it executed, so
// a stale cache entry is directly visible as a stale version number.
var cachetestVersion atomic.Int64

// kernelCachetest is a test-only registration (this test binary's
// registry; serve tests never iterate the registry, so the extra
// entry is invisible elsewhere). Its output is a pure function of
// nothing the fingerprint sees — which is exactly what makes cache
// staleness observable: only generation bumps keep it honest.
var kernelCachetest = kernel.Register(kernel.Kernel{
	Name:  "cachetest",
	Title: "test-only: Out = global version at execution time",
	Variants: []kernel.Variant{{
		Name: "read",
		Run:  func(a *kernel.Args, _ par.Options) { a.Out = cachetestVersion.Load() },
	}},
	Serial: func(a *kernel.Args) { a.Out = cachetestVersion.Load() },
	Gen: func(n int, seed uint64) *kernel.Args {
		return &kernel.Args{Xs: make([]int64, n), Seed: seed}
	},
	Check: func(got, want *kernel.Args) error {
		if got.Out != want.Out {
			return fmt.Errorf("Out = %d, want %d", got.Out, want.Out)
		}
		return nil
	},
	Cache: &kernel.CacheSpec{Out: kernel.OutScalar},
})

// TestCallCacheHit pins the fast path end to end: the second identical
// call is served from the cache (correct value, CacheHits counted on
// server and tenant, not Accepted), and uncacheable kernels bypass the
// cache entirely.
func TestCallCacheHit(t *testing.T) {
	s := New(Config{Cache: rescache.New(rescache.Config{})})
	defer s.Close()
	xs := []int64{5, 1, 4, 2, 3}

	got, err := s.Sum("t", xs)
	if err != nil || got != 15 {
		t.Fatalf("first Sum = %d, %v", got, err)
	}
	got, err = s.Sum("t", xs)
	if err != nil || got != 15 {
		t.Fatalf("cached Sum = %d, %v", got, err)
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("stats = %+v, want 1 cache hit / 1 miss", st)
	}
	if st.Accepted != 1 || st.Completed != 1 {
		t.Fatalf("hit was admitted: %+v (want 1 accepted / 1 completed)", st)
	}
	ts := s.TenantStats()
	if len(ts) != 1 || ts[0].CacheHits != 1 {
		t.Fatalf("tenant stats = %+v, want CacheHits=1", ts)
	}

	// Histogram's bucket function cannot be fingerprinted: repeated
	// calls recompute and never touch the cache counters.
	hist := make([]int, 4)
	for i := 0; i < 2; i++ {
		if err := s.Histogram("t", hist, xs, func(v int64) int { return int(v) % 4 }); err != nil {
			t.Fatalf("histogram: %v", err)
		}
	}
	if st := s.Stats(); st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("uncacheable kernel moved cache counters: %+v", st)
	}
}

// TestCallCacheRestoresSliceOutputs covers the two slice shapes: sort
// (result in Xs) and scan (result in Dst).
func TestCallCacheRestoresSliceOutputs(t *testing.T) {
	s := New(Config{Cache: rescache.New(rescache.Config{})})
	defer s.Close()

	// Sort: prime with an already-sorted input so the cached entry's
	// fingerprint (of the input) matches later calls.
	xs := []int64{1, 2, 3, 4, 5}
	for i := 0; i < 2; i++ {
		if err := s.Sort("t", xs); err != nil {
			t.Fatalf("sort %d: %v", i, err)
		}
		for j := range xs {
			if xs[j] != int64(j+1) {
				t.Fatalf("sort %d: xs = %v", i, xs)
			}
		}
	}

	src := []int64{1, 2, 3}
	for i := 0; i < 2; i++ {
		dst := make([]int64, 3)
		if err := s.Scan("t", dst, src); err != nil {
			t.Fatalf("scan %d: %v", i, err)
		}
		if dst[0] != 1 || dst[1] != 3 || dst[2] != 6 {
			t.Fatalf("scan %d: dst = %v", i, dst)
		}
	}
	if st := s.Stats(); st.CacheHits != 2 {
		t.Fatalf("stats = %+v, want 2 cache hits", st)
	}
}

// TestCacheHitZeroAllocs pins the acceptance bar: a cache hit through
// Server.Call costs 0 allocs/op.
func TestCacheHitZeroAllocs(t *testing.T) {
	s := New(Config{Cache: rescache.New(rescache.Config{})})
	defer s.Close()
	xs := make([]int64, 2048)
	for i := range xs {
		xs[i] = int64((i * 2654435761) % 100003)
	}
	for i := 0; i < 64; i++ {
		if _, err := s.Sum("t", xs); err != nil {
			t.Fatal(err)
		}
	}
	hitsBefore := s.Stats().CacheHits
	var allocs float64
	for attempt := 0; attempt < 3; attempt++ {
		allocs = testing.AllocsPerRun(100, func() {
			if _, err := s.Sum("t", xs); err != nil {
				t.Fatal(err)
			}
		})
		if allocs == 0 {
			break
		}
	}
	if allocs != 0 {
		t.Errorf("cache hit path allocates %.2f allocs/op; want 0", allocs)
	}
	if s.Stats().CacheHits == hitsBefore {
		t.Fatal("measured loop never hit the cache")
	}
}

// TestBumpGenerationInvalidates: a bump forces recompute; the fresh
// result repopulates the cache under the new generation.
func TestBumpGenerationInvalidates(t *testing.T) {
	s := New(Config{Cache: rescache.New(rescache.Config{})})
	defer s.Close()
	xs := []int64{1, 2, 3}
	for i := 0; i < 2; i++ {
		if _, err := s.Sum("t", xs); err != nil {
			t.Fatal(err)
		}
	}
	if g := s.BumpGeneration("t"); g != 1 {
		t.Fatalf("generation = %d, want 1", g)
	}
	xs[0] = 10 // the out-of-band change the bump announced
	for i := 0; i < 2; i++ {
		got, err := s.Sum("t", xs)
		if err != nil || got != 15 {
			t.Fatalf("post-bump Sum %d = %d, %v (want 15)", i, got, err)
		}
	}
	st := s.Stats()
	if st.CacheHits != 2 || st.CacheMisses != 2 {
		t.Fatalf("stats = %+v, want 2 hits / 2 misses", st)
	}
}

// TestCallDelta pins the incremental route through the server: a sort
// record stays sorted under appended chunks, and adapterless kernels
// refuse loudly.
func TestCallDelta(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	a := kernel.Args{Xs: []int64{5, 1, 3}}
	if err := s.Call("t", kernel.MustLookup("sort"), &a); err != nil {
		t.Fatalf("base sort: %v", err)
	}
	d := kernel.Delta{Append: []int64{4, 0, 9}}
	if err := s.CallDelta("t", kernel.MustLookup("sort"), &a, &d); err != nil {
		t.Fatalf("CallDelta: %v", err)
	}
	want := []int64{0, 1, 3, 4, 5, 9}
	if len(a.Xs) != len(want) {
		t.Fatalf("Xs = %v, want %v", a.Xs, want)
	}
	for i := range want {
		if a.Xs[i] != want[i] {
			t.Fatalf("Xs = %v, want %v", a.Xs, want)
		}
	}
	st := s.Stats()
	if st.Accepted != 2 || st.Completed != 2 {
		t.Fatalf("stats = %+v, want delta requests in Accepted/Completed", st)
	}

	b := kernel.Args{Xs: []int64{1, 2}, K: 1}
	if err := s.CallDelta("t", kernel.MustLookup("select"), &b, &d); err == nil {
		t.Fatal("CallDelta on adapterless kernel returned nil error")
	}
}

// TestShardedCacheShared: every shard serves hits from the one shared
// cache, and CallDelta routes like Call.
func TestShardedCacheShared(t *testing.T) {
	g := NewSharded(ShardedConfig{
		Config: Config{Cache: rescache.New(rescache.Config{})},
		Shards: 2,
	})
	defer g.Close()
	for _, tenant := range []string{"alice", "bob", "carol"} {
		xs := []int64{1, 2, 3, 4}
		for i := 0; i < 2; i++ {
			got, err := g.Sum(tenant, xs)
			if err != nil || got != 10 {
				t.Fatalf("%s Sum %d = %d, %v", tenant, i, got, err)
			}
		}
	}
	st := g.Stats()
	if st.Aggregate.CacheHits != 3 || st.Aggregate.CacheMisses != 3 {
		t.Fatalf("aggregate = %+v, want 3 hits / 3 misses", st.Aggregate)
	}
	if g.BumpGeneration("alice") != 1 {
		t.Fatal("sharded bump did not advance the shared generation")
	}

	a := kernel.Args{Xs: []int64{2, 1}}
	if err := g.Call("alice", kernel.MustLookup("sort"), &a); err != nil {
		t.Fatalf("sharded sort: %v", err)
	}
	if err := g.CallDelta("alice", kernel.MustLookup("sort"), &a, &kernel.Delta{Append: []int64{0}}); err != nil {
		t.Fatalf("sharded CallDelta: %v", err)
	}
	if a.Xs[0] != 0 || a.Xs[1] != 1 || a.Xs[2] != 2 {
		t.Fatalf("Xs = %v, want [0 1 2]", a.Xs)
	}
}

// TestMigratedRequestStaleInsertDropped is the deterministic half of
// the migration-consistency story: a request looked up under
// generation 0 is migrated to a thief server while queued, the
// tenant's generation is bumped mid-migration, and the thief executes
// it afterwards. The result reaches the caller (with the post-bump
// version), but its insert token is stale and the store is dropped —
// the cache never holds an entry whose token predates the bump.
func TestMigratedRequestStaleInsertDropped(t *testing.T) {
	cachetestVersion.Store(0)
	cache := rescache.New(rescache.Config{})
	home := New(Config{Cache: cache, Workers: 1})
	defer home.Close()
	thief := New(Config{Cache: cache, Workers: 1})
	defer thief.Close()

	// Stall home's dispatcher so the victim queues.
	bucket, gate := deadlineGate()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		hist := make([]int, 1)
		_ = home.Histogram("blocker", hist, []int64{1}, bucket)
	}()
	for i := 0; home.Stats().Batches == 0; i++ {
		if i > 2000 {
			t.Fatal("blocker batch never started")
		}
		time.Sleep(time.Millisecond)
	}

	payload := []int64{7, 7, 7}
	var out int64
	var callErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		a := kernel.Args{Xs: payload, Seed: 42}
		callErr = home.Call("mig", kernelCachetest, &a)
		out = a.Out
	}()
	for i := 0; home.queueDepth() < 1; i++ {
		if i > 2000 {
			t.Fatal("victim never queued")
		}
		time.Sleep(time.Millisecond)
	}

	buf := home.migrateOut(nil, 1)
	if len(buf) != 1 {
		t.Fatalf("migrated %d requests, want 1", len(buf))
	}
	cachetestVersion.Store(1)
	cache.Bump("mig") // mid-migration: the victim's token is now stale
	thief.migrateIn(buf)
	close(gate)
	wg.Wait()

	if callErr != nil {
		t.Fatalf("migrated call: %v", callErr)
	}
	if out != 1 {
		t.Fatalf("migrated call observed version %d, want 1 (executed after the bump)", out)
	}
	if st := cache.Stats(); st.Inserts != 0 {
		t.Fatalf("stale-token insert was stored: %+v", st)
	}

	// The path heals: the next identical call misses, computes, and
	// stores under the current generation; the one after hits.
	a := kernel.Args{Xs: payload, Seed: 42}
	if err := home.Call("mig", kernelCachetest, &a); err != nil || a.Out != 1 {
		t.Fatalf("post-bump call = %d, %v", a.Out, err)
	}
	if st := cache.Stats(); st.Inserts != 1 || st.Hits != 0 {
		t.Fatalf("post-bump miss not stored: %+v", st)
	}
	a = kernel.Args{Xs: payload, Seed: 42}
	if err := home.Call("mig", kernelCachetest, &a); err != nil || a.Out != 1 {
		t.Fatalf("post-bump hit = %d, %v", a.Out, err)
	}
	if st := cache.Stats(); st.Hits != 1 {
		t.Fatalf("healed entry never hit: %+v", st)
	}
}

// TestMigrationNeverServesStaleCache is the cache half of the
// migration race suite: a skewed flood keeps one tenant's requests
// migrating onto thief shards while a writer advances the world
// version and bumps the tenant's generation mid-flight. The invariant
// every read asserts: a call that starts after epoch e's bump
// completed must observe version >= e — a smaller value is a stale
// entry surviving its invalidation (for example, a thief shard with
// its own generation view, or an insert racing the bump). The epoch
// counter is published only after Bump returns, so the assertion is
// race-free by construction while the calls themselves race freely.
func TestMigrationNeverServesStaleCache(t *testing.T) {
	cachetestVersion.Store(0)
	g := NewSharded(ShardedConfig{
		Config:            Config{Cache: rescache.New(rescache.Config{}), Workers: 1, MaxQueue: 4096},
		Shards:            4,
		MigrateHysteresis: 1,
	})
	defer g.Close()
	hot := tenantsHomedOn(g, 0, 1)[0]

	const (
		epochs  = 30
		readers = 8
	)
	var (
		currentEpoch atomic.Int64
		stop         atomic.Bool
		failure      atomic.Value // string
		wg           sync.WaitGroup
	)
	payload := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				e := currentEpoch.Load()
				// A few distinct fingerprints per epoch so most calls hit.
				a := kernel.Args{Xs: payload, Seed: uint64(i % 3)}
				if err := g.Call(hot, kernelCachetest, &a); err != nil {
					if errors.Is(err, ErrRejected) {
						continue
					}
					failure.Store(fmt.Sprintf("reader %d: %v", r, err))
					return
				}
				if a.Out < e {
					failure.Store(fmt.Sprintf(
						"reader %d observed version %d after epoch %d's bump completed (stale cache entry)",
						r, a.Out, e))
					return
				}
			}
		}(r)
	}

	for e := int64(1); e <= epochs; e++ {
		cachetestVersion.Store(e)
		g.BumpGeneration(hot) // sweeps every pre-e entry before e is published
		currentEpoch.Store(e)
		time.Sleep(2 * time.Millisecond)
		if failure.Load() != nil {
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	if f := failure.Load(); f != nil {
		t.Fatal(f)
	}

	cst := g.Cache().Stats()
	if cst.Hits == 0 || cst.Invalidations == 0 {
		t.Fatalf("race never exercised the cache: %+v", cst)
	}
	if mig := g.Stats().Migrated; mig == 0 {
		t.Logf("note: no migrations occurred this run (cache safety still verified); cache stats %+v", cst)
	}
}

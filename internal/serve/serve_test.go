package serve

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/pgraph"
	"repro/internal/rng"
)

// randInts returns n pseudo-random keys from seed.
func randInts(n int, seed uint64) []int64 {
	r := rng.New(seed)
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(r.Uint64()%200003) - 100001
	}
	return xs
}

func sortedOracle(xs []int64) []int64 {
	want := append([]int64(nil), xs...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	return want
}

// TestServeMixedConcurrent drives every request type from concurrent
// tenants and checks each result against a sequential oracle.
func TestServeMixedConcurrent(t *testing.T) {
	e := exec.New(4)
	defer e.Close()
	s := New(Config{Executor: e, Workers: 4})
	defer s.Close()

	g := gen.ErdosRenyi(300, 4, false, 7)
	wantDist := pgraph.BFS(g, 0, par.Options{Procs: 1})

	const tenants = 4
	const reqs = 30
	var wg sync.WaitGroup
	errs := make(chan error, tenants*reqs)
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			name := string(rune('a' + tn))
			for i := 0; i < reqs; i++ {
				seed := uint64(tn*1000 + i)
				n := 100 + int(seed%3000)
				xs := randInts(n, seed)
				switch i % 6 {
				case 0:
					want := sortedOracle(xs)
					if err := s.Sort(name, xs); err != nil {
						errs <- err
						continue
					}
					for j := range want {
						if xs[j] != want[j] {
							t.Errorf("sort mismatch at %d", j)
							break
						}
					}
				case 1:
					k := int(seed) % n
					got, err := s.Select(name, xs, k)
					if err != nil {
						errs <- err
						continue
					}
					if want := sortedOracle(xs)[k]; got != want {
						t.Errorf("select(%d) = %d, want %d", k, got, want)
					}
				case 2:
					hist := make([]int, 64)
					bucket := func(v int64) int { return int(uint64(v) % 64) }
					if err := s.Histogram(name, hist, xs, bucket); err != nil {
						errs <- err
						continue
					}
					want := make([]int, 64)
					for _, v := range xs {
						want[bucket(v)]++
					}
					for j := range want {
						if hist[j] != want[j] {
							t.Errorf("hist[%d] = %d, want %d", j, hist[j], want[j])
							break
						}
					}
				case 3:
					dst := make([]int64, n)
					if err := s.Scan(name, dst, xs); err != nil {
						errs <- err
						continue
					}
					var run int64
					for j, v := range xs {
						run += v
						if dst[j] != run {
							t.Errorf("scan[%d] = %d, want %d", j, dst[j], run)
							break
						}
					}
				case 4:
					got, err := s.Sum(name, xs)
					if err != nil {
						errs <- err
						continue
					}
					var want int64
					for _, v := range xs {
						want += v
					}
					if got != want {
						t.Errorf("sum = %d, want %d", got, want)
					}
				case 5:
					dist, err := s.BFS(name, g, 0)
					if err != nil {
						errs <- err
						continue
					}
					for j := range wantDist {
						if dist[j] != wantDist[j] {
							t.Errorf("bfs dist[%d] = %d, want %d", j, dist[j], wantDist[j])
							break
						}
					}
				}
			}
		}(tn)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("request failed: %v", err)
	}

	st := s.Stats()
	if st.Accepted != tenants*reqs || st.Completed != tenants*reqs {
		t.Fatalf("accepted=%d completed=%d, want %d", st.Accepted, st.Completed, tenants*reqs)
	}
	if st.Tenants != tenants {
		t.Fatalf("tenants = %d, want %d", st.Tenants, tenants)
	}
	if st.Batches == 0 || st.BatchedRequests != st.Accepted {
		t.Fatalf("batches=%d batched=%d accepted=%d", st.Batches, st.BatchedRequests, st.Accepted)
	}
}

// TestServeBatchCoalescing checks that concurrent small requests
// actually fuse: with many sync clients against one dispatcher, some
// batch must carry more than one request.
func TestServeBatchCoalescing(t *testing.T) {
	e := exec.New(4)
	defer e.Close()
	s := New(Config{Executor: e, Workers: 4, BatchWindow: 2 * time.Millisecond})
	defer s.Close()

	const clients = 8
	const each = 50
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			xs := randInts(512, uint64(c))
			for i := 0; i < each; i++ {
				if _, err := s.Sum("t", xs); err != nil {
					t.Errorf("sum: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	st := s.Stats()
	if st.MaxBatch < 2 {
		t.Fatalf("no coalescing: maxBatch = %d over %d batches", st.MaxBatch, st.Batches)
	}
	if st.Batches >= st.BatchedRequests {
		t.Fatalf("batches=%d >= requests=%d: nothing fused", st.Batches, st.BatchedRequests)
	}
}

// TestServeFairShare floods one tenant against a tiny queue bound and
// checks the light tenant is never starved or rejected: round-robin
// batch formation plus per-tenant queues isolate it completely.
func TestServeFairShare(t *testing.T) {
	e := exec.New(2)
	defer e.Close()
	s := New(Config{Executor: e, Workers: 2, MaxQueue: 2, MaxBatch: 4})
	defer s.Close()

	stop := make(chan struct{})
	var hotRejected atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			xs := randInts(4096, uint64(c))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.Sort("hot", xs); errors.Is(err, ErrRejected) {
					hotRejected.Add(1)
				} else if err != nil {
					t.Errorf("hot: %v", err)
					return
				}
			}
		}(c)
	}

	xs := randInts(2048, 99)
	for i := 0; i < 30; i++ {
		hist := make([]int, 16)
		if err := s.Histogram("light", hist, xs, func(v int64) int { return int(uint64(v) % 16) }); err != nil {
			t.Fatalf("light request %d failed under hot-tenant flood: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	for _, ts := range s.TenantStats() {
		if ts.Name == "light" && ts.Rejected != 0 {
			t.Fatalf("light tenant saw %d rejections", ts.Rejected)
		}
	}
	if hotRejected.Load() == 0 {
		t.Log("note: hot tenant saw no backpressure this run (timing-dependent)")
	}
}

// TestServeBackpressure fills a one-slot queue from many goroutines
// and checks the overflow is rejected with ErrRejected while every
// admitted request still completes correctly.
func TestServeBackpressure(t *testing.T) {
	e := exec.New(1)
	defer e.Close()
	s := New(Config{Executor: e, MaxQueue: 1, MaxBatch: 1, BatchWindow: -1})
	defer s.Close()

	const clients = 16
	var rejected, completed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			xs := randInts(2048, uint64(c))
			for i := 0; i < 20; i++ {
				want := sortedOracle(xs)
				err := s.Sort("t", xs)
				switch {
				case errors.Is(err, ErrRejected):
					rejected.Add(1)
				case err != nil:
					t.Errorf("sort: %v", err)
				default:
					completed.Add(1)
					for j := range want {
						if xs[j] != want[j] {
							t.Errorf("admitted sort corrupted at %d", j)
							return
						}
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if completed.Load() == 0 {
		t.Fatal("no request completed")
	}
	st := s.Stats()
	if st.Rejected != rejected.Load() {
		t.Fatalf("stats.Rejected = %d, callers saw %d", st.Rejected, rejected.Load())
	}
}

// TestServeShedUnderSaturation parks blocking tasks on every pooled
// worker so Occupancy reads 1.0, then checks batches shed to serial
// execution (and still compute correct results).
func TestServeShedUnderSaturation(t *testing.T) {
	e := exec.New(2)
	defer e.Close()
	release := make(chan struct{})
	e.Submit(func() { <-release })
	e.Submit(func() { <-release })
	for i := 0; e.Occupancy() < 1 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if e.Occupancy() < 1 {
		close(release)
		t.Skip("could not saturate the pool")
	}

	s := New(Config{Executor: e, Workers: 2})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			xs := randInts(1024, uint64(c))
			want := sortedOracle(xs)
			if err := s.Sort("t", xs); err != nil {
				t.Errorf("sort under saturation: %v", err)
				return
			}
			for j := range want {
				if xs[j] != want[j] {
					t.Errorf("shed sort mismatch at %d", j)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	st := s.Stats()
	if st.Shed == 0 {
		t.Fatalf("no batch shed at occupancy 1.0: %+v", st)
	}
	if st.ParallelBatches != 0 {
		t.Fatalf("parallel batches ran on a saturated pool: %+v", st)
	}
	close(release)
	s.Close()
}

// TestServePipelineRoute checks long requests bypass the batch path
// through the streaming pipeline, including the aliased-scan case.
func TestServePipelineRoute(t *testing.T) {
	e := exec.New(2)
	defer e.Close()
	s := New(Config{Executor: e, PipelineCutoff: 4096})
	defer s.Close()

	xs := randInts(20000, 5)
	want := sortedOracle(xs)
	if err := s.Sort("t", xs); err != nil {
		t.Fatalf("pipelined sort: %v", err)
	}
	for j := range want {
		if xs[j] != want[j] {
			t.Fatalf("pipelined sort mismatch at %d", j)
		}
	}

	ys := randInts(20000, 6)
	wantScan := make([]int64, len(ys))
	var run int64
	for j, v := range ys {
		run += v
		wantScan[j] = run
	}
	if err := s.Scan("t", ys, ys); err != nil { // dst aliases xs
		t.Fatalf("pipelined scan: %v", err)
	}
	for j := range wantScan {
		if ys[j] != wantScan[j] {
			t.Fatalf("aliased pipelined scan mismatch at %d", j)
		}
	}

	st := s.Stats()
	if st.Pipelined != 2 {
		t.Fatalf("pipelined = %d, want 2", st.Pipelined)
	}
	if st.BatchedRequests != 0 {
		t.Fatalf("long requests leaked onto the batch path: %+v", st)
	}
	if st.Completed != 2 || st.Accepted != 2 {
		t.Fatalf("accepted=%d completed=%d, want 2", st.Accepted, st.Completed)
	}
}

// TestServeClose checks drain-then-reject semantics.
func TestServeClose(t *testing.T) {
	e := exec.New(2)
	defer e.Close()
	s := New(Config{Executor: e})
	xs := randInts(1000, 1)
	if _, err := s.Sum("t", xs); err != nil {
		t.Fatalf("sum: %v", err)
	}
	s.Close()
	s.Close() // idempotent
	if err := s.Sort("t", xs); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sort after Close = %v, want ErrClosed", err)
	}
	if _, err := s.Select("t", xs, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Select after Close = %v, want ErrClosed", err)
	}
	if err := s.Sort("t", make([]int64, 1<<18)); !errors.Is(err, ErrClosed) {
		t.Fatalf("pipelined Sort after Close = %v, want ErrClosed", err)
	}
}

// TestServeValidation checks malformed requests fail fast, before
// admission.
func TestServeValidation(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	xs := []int64{3, 1, 2}
	if _, err := s.Select("t", xs, 3); err == nil {
		t.Fatal("Select rank out of range accepted")
	}
	if _, err := s.Select("t", xs, -1); err == nil {
		t.Fatal("Select negative rank accepted")
	}
	if err := s.Histogram("t", make([]int, 4), xs, nil); err == nil {
		t.Fatal("Histogram nil bucket accepted")
	}
	if err := s.Scan("t", make([]int64, 2), xs); err == nil {
		t.Fatal("Scan length mismatch accepted")
	}
	if _, err := s.BFS("t", nil, 0); err == nil {
		t.Fatal("BFS nil graph accepted")
	}
	if st := s.Stats(); st.Accepted != 0 {
		t.Fatalf("invalid requests were admitted: %+v", st)
	}
}

// TestServePanicConfined checks a panicking kernel (bucket function
// out of range) surfaces as that request's error, not a crash, and
// the server keeps serving.
func TestServePanicConfined(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	xs := randInts(5000, 2)
	err := s.Histogram("t", make([]int, 4), xs, func(v int64) int { return 1 << 30 })
	if err == nil {
		t.Fatal("out-of-range bucket function did not error")
	}
	// Server still healthy afterwards.
	if _, err := s.Sum("t", xs); err != nil {
		t.Fatalf("sum after confined panic: %v", err)
	}
}

// TestServeTenantBound checks tenant accounting stays bounded under
// caller-controlled name cardinality: names beyond MaxTenants fold
// into the shared overflow entry and are still served.
func TestServeTenantBound(t *testing.T) {
	s := New(Config{MaxTenants: 2})
	defer s.Close()
	for i := 0; i < 10; i++ {
		name := string(rune('a' + i))
		if _, err := s.Sum(name, []int64{int64(i), 1}); err != nil {
			t.Fatalf("sum from tenant %q: %v", name, err)
		}
	}
	st := s.Stats()
	if st.Completed != 10 {
		t.Fatalf("completed = %d, want 10", st.Completed)
	}
	if st.Tenants > 3 { // 2 named + the overflow entry
		t.Fatalf("tenant map grew to %d entries with MaxTenants=2", st.Tenants)
	}
	found := false
	for _, ts := range s.TenantStats() {
		if ts.Name == OverflowTenant && ts.Completed == 8 {
			found = true
		}
	}
	if !found {
		t.Fatalf("overflow tenant missing or miscounted: %+v", s.TenantStats())
	}
}

package serve

import (
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adapt"
	"repro/internal/exec"
	"repro/internal/par"
	"repro/internal/rescache"
	"repro/internal/scratch"
)

// Admission errors. All are sentinel values: callers retry (or back
// off) on ErrRejected and ErrDeadlineExceeded and give up on
// ErrClosed.
var (
	// ErrClosed reports a request submitted after Close.
	ErrClosed = errors.New("serve: server closed")
	// ErrRejected reports admission-control backpressure: the tenant's
	// queue is full (its bound halves while the executor is saturated),
	// and the request was not enqueued. The caller owns the retry
	// policy; the server never blocks admission on a full queue.
	ErrRejected = errors.New("serve: request rejected (tenant queue full)")
	// ErrDeadlineExceeded reports the deadline rung of the admission
	// ladder (Config.SLO): either the queue-depth-predicted wait at
	// the door already exceeded the request's SLO budget, so it was
	// refused before enqueueing (queueing it would only add a
	// guaranteed-late request in front of ones that can still make
	// it), or the request expired while queued and the dispatcher
	// dropped it before batching rather than spend a batch slot on an
	// answer nobody is waiting for.
	ErrDeadlineExceeded = errors.New("serve: deadline exceeded")
)

// siteBatch is the adaptive call site of the fused batch loop: the
// controller learns how to chunk and schedule requests-per-slot per
// batch-size class, exactly as it does for element loops inside
// kernels.
var siteBatch = adapt.NewSite("serve.batch", adapt.KindRange)

// Config shapes a Server. The zero value serves on the process-wide
// executor and scratch pool with batching and admission control at
// their defaults and no adaptive tuning.
type Config struct {
	// Executor is the worker pool batches dispatch onto and the
	// occupancy gauge admission control reads; nil means the shared
	// process-wide exec.Default().
	Executor *exec.Executor
	// Scratch is the pool request temporaries draw from; nil means
	// the process-wide scratch.Default(), scratch.Off disables reuse.
	Scratch *scratch.Pool
	// Adaptive, when non-nil, runs the fused batch loop under the
	// online tuning runtime (site "serve.batch").
	Adaptive *adapt.Controller
	// Workers is the parallelism of one batch — how many requests
	// execute concurrently inside the fused fork/join; <= 0 means the
	// executor's worker count.
	Workers int
	// MaxBatch bounds how many requests one batch fuses; <= 0 means
	// DefaultMaxBatch.
	MaxBatch int
	// BatchWindow bounds how long the dispatcher lets a batch
	// accumulate after the first request arrives. The window closes
	// early as soon as arrivals plateau, so it costs nothing when no
	// more traffic is coming. 0 means DefaultBatchWindow; negative
	// disables accumulation (every batch is whatever is queued).
	BatchWindow time.Duration
	// MaxQueue bounds each tenant's admission queue; <= 0 means
	// DefaultMaxQueue. The effective bound halves while the executor
	// is saturated (see Saturation).
	MaxQueue int
	// MaxTenants bounds how many distinct tenant accounting entries
	// the server keeps (<= 0 means DefaultMaxTenants): tenant names
	// are caller-controlled, and a long-lived server must not grow
	// memory with their cardinality. Names arriving after the bound
	// is reached share one overflow entry, OverflowTenant — they are
	// still served, but pool their queue bound and fair-share turn.
	MaxTenants int
	// PipelineCutoff is the input length at or above which a request
	// bypasses batching and routes through the streaming pipeline
	// runtime; <= 0 means DefaultPipelineCutoff, negative disables
	// routing.
	PipelineCutoff int
	// HighLoad is the executor occupancy above which batch worker
	// counts are shed proportionally; <= 0 means DefaultHighLoad.
	HighLoad float64
	// Saturation is the executor occupancy at or above which batches
	// are shed to serial execution and admission bounds tighten;
	// <= 0 means DefaultSaturation.
	Saturation float64
	// Cache, when non-nil, is the generation-stamped result cache
	// consulted by Call before any queueing: a repeat of a cacheable
	// request (same tenant, kernel and input since the tenant's last
	// BumpGeneration) is served from the cached output with zero
	// kernel work, counted in CacheHits and in neither Accepted nor
	// Completed. Shards of a Sharded server share one Cache.
	Cache *rescache.Cache
	// SLO, when positive, is the per-request deadline budget: every
	// admitted request is stamped with deadline = now + SLO, and the
	// ladder gains its deadline rung. At the door, a request whose
	// predicted wait — queue depth times the dispatcher's EWMA of
	// per-request batch service time — already exceeds the budget is
	// refused with ErrDeadlineExceeded instead of queueing to fail.
	// On the queue, a request whose deadline passes before batching
	// is dropped by the dispatcher (again ErrDeadlineExceeded)
	// without consuming a batch slot. Stamps live on the request, so
	// they survive shard migration: a thief shard honors the home
	// shard's budget whatever its own SLO setting. 0 disables
	// deadlines (every request waits as long as it takes).
	SLO time.Duration

	// stealIdle and overflow are the diffusive balancer's hooks, set
	// only by Sharded (same package). stealIdle is invoked by the
	// dispatcher when its queues are empty, before parking: it may
	// migrate requests in from an overloaded sibling shard and
	// returns how many arrived. overflow is invoked on the submitter's
	// goroutine after each enqueue with the resulting queue depth: it
	// may migrate part of a deep backlog out to an underloaded
	// sibling. Plain Servers leave both nil and pay one nil check.
	stealIdle func() int
	overflow  func(queued int)
}

// Defaults for the Config knobs.
const (
	DefaultMaxBatch       = 64
	DefaultBatchWindow    = 100 * time.Microsecond
	DefaultMaxQueue       = 256
	DefaultMaxTenants     = 1024
	DefaultPipelineCutoff = 1 << 17
	DefaultHighLoad       = 0.75
	DefaultSaturation     = 0.95
)

// OverflowTenant is the shared accounting entry that absorbs requests
// from tenant names seen after MaxTenants distinct names exist.
const OverflowTenant = "(other)"

// svcStaleAfter bounds how long the door trusts the service-time EWMA
// after the last batch: past it an idle server forgets what it learned
// under the previous traffic regime rather than rejecting the first
// requests of the next one against a fossilized estimate.
const svcStaleAfter = 500 * time.Millisecond

// serveEpoch anchors svcStamp: stamps are monotonic nanoseconds since
// this process-wide instant, so they fit one atomic.Int64.
var serveEpoch = time.Now()

// svcFresh reports whether the service-time EWMA was folded recently
// enough (within svcStaleAfter of now) to predict the next wait.
func (s *Server) svcFresh(now time.Time) bool {
	return int64(now.Sub(serveEpoch))-s.svcStamp.Load() <= int64(svcStaleAfter)
}

func (c Config) executor() *exec.Executor {
	if c.Executor != nil {
		return c.Executor
	}
	return exec.Default()
}

func (c Config) maxBatch() int {
	if c.MaxBatch > 0 {
		return c.MaxBatch
	}
	return DefaultMaxBatch
}

func (c Config) window() time.Duration {
	if c.BatchWindow < 0 {
		return 0
	}
	if c.BatchWindow == 0 {
		return DefaultBatchWindow
	}
	return c.BatchWindow
}

func (c Config) maxQueue() int {
	if c.MaxQueue > 0 {
		return c.MaxQueue
	}
	return DefaultMaxQueue
}

func (c Config) maxTenants() int {
	if c.MaxTenants > 0 {
		return c.MaxTenants
	}
	return DefaultMaxTenants
}

func (c Config) pipelineCutoff() int {
	if c.PipelineCutoff > 0 {
		return c.PipelineCutoff
	}
	if c.PipelineCutoff < 0 {
		return 0 // disabled
	}
	return DefaultPipelineCutoff
}

func (c Config) highLoad() float64 {
	if c.HighLoad > 0 {
		return c.HighLoad
	}
	return DefaultHighLoad
}

func (c Config) saturation() float64 {
	if c.Saturation > 0 {
		return c.Saturation
	}
	return DefaultSaturation
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return c.executor().Procs()
}

// tenant is one admission queue plus its accounting. Queue links are
// intrusive through request.next; all fields except the counters are
// guarded by the server mutex.
type tenant struct {
	name             string
	head, tail       *request
	qlen             int
	accepted         atomic.Int64
	rejected         atomic.Int64
	completed        atomic.Int64
	deadlineRejected atomic.Int64
	expired          atomic.Int64
	cacheHits        atomic.Int64
}

// Stats is a snapshot of a server's admission and batching counters.
type Stats struct {
	// Tenants is the number of distinct tenant names seen.
	Tenants int
	// Accepted counts requests admitted to a queue (or routed to the
	// pipeline); Rejected counts admission-control refusals.
	Accepted, Rejected int64
	// Completed counts requests whose execution finished (including
	// ones that finished with an error).
	Completed int64
	// Batches counts fused batches executed; BatchedRequests is the
	// total requests they carried, so BatchedRequests/Batches is the
	// mean fusion factor. MaxBatch is the largest single batch.
	Batches, BatchedRequests int64
	MaxBatch                 int64
	// ParallelBatches ran as one fused fork/join; SerialBatches ran
	// request-by-request on the dispatcher (singletons, or shed).
	ParallelBatches, SerialBatches int64
	// Shed counts batches forced serial by executor saturation, and
	// Degraded counts batches that ran parallel with proportionally
	// reduced workers under elevated load.
	Shed, Degraded int64
	// Pipelined counts long requests routed through the streaming
	// pipeline runtime instead of the batch path.
	Pipelined int64
	// DeadlineRejected counts requests refused at the door because
	// the queue-depth-predicted wait already exceeded their SLO
	// budget; Expired counts requests that outlived their deadline on
	// the queue and were dropped before batching. Both finish with
	// ErrDeadlineExceeded and neither is included in Completed, so at
	// drain Accepted == Completed + Expired.
	DeadlineRejected, Expired int64
	// CacheHits counts requests served whole from the result cache
	// (zero kernel work; in neither Accepted nor Completed).
	// CacheMisses counts cacheable requests that had to compute. Both
	// stay zero without Config.Cache.
	CacheHits, CacheMisses int64
	// MigratedIn and MigratedOut count requests the diffusive shard
	// balancer moved onto and off this server's queues (always zero
	// for a standalone Server). A migrated request is Accepted on its
	// home shard and Completed wherever it executed, so per-shard
	// Accepted and Completed diverge by exactly the migration flow.
	MigratedIn, MigratedOut int64
}

// TenantStats is one tenant's share of the admission counters,
// reported by Server.TenantStats in name order. DeadlineRejected and
// Expired follow the same home-entry accounting as the other
// counters: an expired migrated request is charged to the entry that
// admitted it.
type TenantStats struct {
	Name                          string
	Accepted, Rejected, Completed int64
	DeadlineRejected, Expired     int64
	CacheHits                     int64
}

// Server is the multi-tenant request-serving runtime. Create one with
// New, submit requests with the typed methods (Sort, Select,
// Histogram, Scan, Sum, BFS) from any number of goroutines, and Close
// it when done. See the package comment for the admission, batching
// and fairness semantics.
type Server struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond // wakes the dispatcher when work arrives
	tenants map[string]*tenant
	active  []*tenant // tenants with a non-empty queue, round-robin order
	rr      int       // next active index the batch former pops from
	queued  int
	closed  bool
	drained chan struct{} // closed when the dispatcher exits

	reqPool sync.Pool

	accepted         atomic.Int64
	rejected         atomic.Int64
	completed        atomic.Int64
	deadlineRejected atomic.Int64
	expired          atomic.Int64
	// svcNanos is the dispatcher-maintained EWMA of per-request batch
	// service time in nanoseconds — wall time of a batch over its
	// size, so batch parallelism is already folded in. It is the
	// door's wait predictor: a request entering behind q queued
	// requests waits roughly q*svcNanos. Written only by the
	// dispatcher, read by submitters; 0 until the first batch
	// completes (the door admits optimistically while cold).
	//
	// svcStamp is when svcNanos was last written, as nanoseconds since
	// serveEpoch. An estimate older than svcStaleAfter describes a
	// dead traffic regime: the door stops trusting it (admitting
	// optimistically again, as when cold), and the dispatcher's next
	// fold resets the EWMA instead of averaging across the idle gap.
	svcNanos        atomic.Int64
	svcStamp        atomic.Int64
	batches         atomic.Int64
	batchedReqs     atomic.Int64
	maxBatch        atomic.Int64
	parallelBatches atomic.Int64
	serialBatches   atomic.Int64
	shed            atomic.Int64
	degraded        atomic.Int64
	pipelined       atomic.Int64
	migratedIn      atomic.Int64
	migratedOut     atomic.Int64
	cacheHits       atomic.Int64
	cacheMisses     atomic.Int64
}

// Cache returns the server's result cache, nil when caching is off.
func (s *Server) Cache() *rescache.Cache { return s.cfg.Cache }

// BumpGeneration invalidates every result cached for tenant (its data
// changed out of band) and returns the new generation. A no-op
// returning 0 without Config.Cache.
func (s *Server) BumpGeneration(tenant string) uint64 {
	if c := s.cfg.Cache; c != nil {
		return c.Bump(tenant)
	}
	return 0
}

// New creates a Server and starts its dispatcher. The dispatcher runs
// on an executor-accounted goroutine (exec.Executor.Go), not a pooled
// worker: it blocks on the queues, and pooled workers must not.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg,
		tenants: make(map[string]*tenant),
		drained: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.reqPool.New = func() any { return &request{done: make(chan struct{}, 1)} }
	cfg.executor().Go(s.dispatch)
	return s
}

// Close stops admission, waits for every queued request to finish
// executing, and returns. Requests admitted before Close complete
// normally; requests submitted after it fail with ErrClosed.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	<-s.drained
}

// Stats returns a racy snapshot of the server's counters — gauges for
// dashboards and tests, not a linearizable accounting.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	n := len(s.tenants)
	s.mu.Unlock()
	return Stats{
		Tenants:          n,
		Accepted:         s.accepted.Load(),
		Rejected:         s.rejected.Load(),
		Completed:        s.completed.Load(),
		Batches:          s.batches.Load(),
		BatchedRequests:  s.batchedReqs.Load(),
		MaxBatch:         s.maxBatch.Load(),
		ParallelBatches:  s.parallelBatches.Load(),
		SerialBatches:    s.serialBatches.Load(),
		Shed:             s.shed.Load(),
		Degraded:         s.degraded.Load(),
		Pipelined:        s.pipelined.Load(),
		DeadlineRejected: s.deadlineRejected.Load(),
		Expired:          s.expired.Load(),
		CacheHits:        s.cacheHits.Load(),
		CacheMisses:      s.cacheMisses.Load(),
		MigratedIn:       s.migratedIn.Load(),
		MigratedOut:      s.migratedOut.Load(),
	}
}

// TenantStats returns per-tenant admission counters in name order.
func (s *Server) TenantStats() []TenantStats {
	s.mu.Lock()
	out := make([]TenantStats, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, TenantStats{
			Name:             t.name,
			Accepted:         t.accepted.Load(),
			Rejected:         t.rejected.Load(),
			Completed:        t.completed.Load(),
			DeadlineRejected: t.deadlineRejected.Load(),
			Expired:          t.expired.Load(),
			CacheHits:        t.cacheHits.Load(),
		})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// tenantLocked returns (creating on first sight) the named tenant.
// Once MaxTenants distinct names exist, new names fold into the
// shared OverflowTenant entry so caller-controlled name cardinality
// cannot grow server memory without bound.
func (s *Server) tenantLocked(name string) *tenant {
	t := s.tenants[name]
	if t != nil {
		return t
	}
	if len(s.tenants) >= s.cfg.maxTenants() {
		name = OverflowTenant
		if t = s.tenants[name]; t != nil {
			return t
		}
	}
	t = &tenant{name: name}
	s.tenants[name] = t
	return t
}

// submit runs one request through admission and waits for its
// execution. The caller still owns r afterwards: it reads any result
// fields and then returns r to the pool (results live in the pooled
// struct, so releasing here would race the read).
func (s *Server) submit(r *request) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	t := s.tenantLocked(r.tenantName)
	// Stamp the accounting identity at admission. Folding rewrites the
	// name (t.name is OverflowTenant when MaxTenants bounded it), and
	// both stamps must survive migration: the name keeps a thief shard's
	// migrateIn from resurrecting a folded tenant as a fresh per-name
	// entry, and acct keeps the completion credit on the entry that
	// counted the acceptance, so merged TenantStats balance exactly.
	r.tenantName = t.name
	r.acct = t
	bound := s.cfg.maxQueue()
	if s.cfg.executor().Occupancy() >= s.cfg.saturation() {
		// Backpressure rises with saturation: a busy executor halves
		// every tenant's queue bound, so rejection starts before the
		// backlog (and its latency) doubles.
		bound = max(1, bound/2)
	}
	if t.qlen >= bound {
		s.mu.Unlock()
		t.rejected.Add(1)
		s.rejected.Add(1)
		return ErrRejected
	}
	slo := s.cfg.SLO
	if r.budget > 0 {
		// A per-request budget (stamped by the wire front door from
		// frame metadata) overrides the server-wide SLO: the client's
		// own deadline governs its request. Budget-less requests fall
		// back to Config.SLO, so in-process callers see no change.
		slo = r.budget
	}
	if slo > 0 {
		// Deadline rung: predict this request's completion as (queued
		// ahead + itself) times the EWMA of per-request batch service
		// time. A request that already cannot make its budget is
		// refused at the door — queueing it would burn queue bound and
		// dispatcher time on an answer that is late by construction.
		// The prediction only counts while fresh: after an idle gap the
		// EWMA describes traffic that no longer exists, and a cold-
		// start-like first arrival must be admitted, not rejected
		// against it.
		now := time.Now()
		if per := s.svcNanos.Load(); per > 0 && s.svcFresh(now) && int64(s.queued+1)*per > int64(slo) {
			s.mu.Unlock()
			t.deadlineRejected.Add(1)
			s.deadlineRejected.Add(1)
			return ErrDeadlineExceeded
		}
		r.deadline = now.Add(slo)
	}
	r.t = t
	r.next = nil
	if t.tail == nil {
		t.head = r
		s.active = append(s.active, t) // empty -> non-empty: join the ring
	} else {
		t.tail.next = r
	}
	t.tail = r
	t.qlen++
	s.queued++
	t.accepted.Add(1)
	s.accepted.Add(1)
	s.cond.Signal()
	queued := s.queued
	s.mu.Unlock()

	// Diffusion's push edge: a submitter that just deepened the
	// backlog is exactly the goroutine that should pay to spread it.
	// The hook piggybacks on this existing event, so no balancer
	// goroutine or ticker exists anywhere.
	if ov := s.cfg.overflow; ov != nil {
		ov(queued)
	}
	<-r.done
	return r.err
}

// popLocked removes and returns the head request of the active tenant
// at index ti, unlinking the tenant from the ring when its queue
// empties (reported so the ring walk knows whether the index now
// names the next tenant).
func (s *Server) popLocked(ti int) (r *request, emptied bool) {
	t := s.active[ti]
	r = t.head
	t.head = r.next
	if t.head == nil {
		t.tail = nil
		s.active = append(s.active[:ti], s.active[ti+1:]...)
		emptied = true
	}
	r.next = nil
	t.qlen--
	s.queued--
	return r, emptied
}

// queueDepth returns the current number of queued requests — the
// load signal the diffusive balancer compares across shards.
func (s *Server) queueDepth() int {
	s.mu.Lock()
	q := s.queued
	s.mu.Unlock()
	return q
}

// migrateOut pops up to max queued requests off s's queues — oldest
// first, round-robin across tenants like batch formation, so a
// migration slice has the same fair-share mix a batch would — and
// appends them to buf. The popped requests belong exclusively to the
// caller until it hands them to another shard's migrateIn: they are on
// no queue, so neither dispatcher can see them, which is what makes a
// migration exactly-once by construction.
func (s *Server) migrateOut(buf []*request, max int) []*request {
	n := 0
	s.mu.Lock()
	for n < max && len(s.active) > 0 {
		if s.rr >= len(s.active) {
			s.rr = 0
		}
		r, emptied := s.popLocked(s.rr)
		buf = append(buf, r)
		n++
		if !emptied {
			s.rr++
		}
	}
	s.mu.Unlock()
	s.migratedOut.Add(int64(n))
	return buf
}

// migrateIn enqueues already-admitted requests from another shard onto
// s's queues, bypassing the admission bound (rejecting work a sibling
// admitted would turn a load-balancing move into a spurious error).
// Each request's queue entry is re-homed onto s's tenant entry of the
// admission-stamped name (OverflowTenant for requests folded at their
// home shard, so folded tenants are never resurrected by name here),
// while r.acct still points at the home shard's entry — completion is
// credited where acceptance was counted, keeping merged TenantStats
// balanced. If s has already been closed — a migration racing a
// shutdown — the requests are executed inline on the caller's
// goroutine instead: a migrated request is never lost and never
// spuriously rejected.
func (s *Server) migrateIn(rs []*request) {
	if len(rs) == 0 {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		now := time.Now()
		for _, r := range rs {
			if !r.deadline.IsZero() && now.After(r.deadline) {
				s.expireOne(r)
				continue
			}
			s.runOne(r)
		}
		s.migratedIn.Add(int64(len(rs)))
		return
	}
	for _, r := range rs {
		t := s.tenantLocked(r.tenantName)
		r.t = t
		r.next = nil
		if t.tail == nil {
			t.head = r
			s.active = append(s.active, t)
		} else {
			t.tail.next = r
		}
		t.tail = r
		t.qlen++
		s.queued++
	}
	s.cond.Signal()
	s.mu.Unlock()
	s.migratedIn.Add(int64(len(rs)))
}

// formBatchLocked pops up to maxBatch requests, one per tenant per
// round-robin turn, starting where the previous batch left off. This
// is the fair-share mechanism: a tenant with one queued request is
// served within one turn of the ring no matter how deep any other
// tenant's backlog is. Requests whose deadline passed while queued
// are expired here instead of batched: they complete immediately with
// ErrDeadlineExceeded and do not consume a batch slot, so an expired
// backlog drains at pointer-pop speed rather than at service speed.
// The check reads the request's own stamp, not cfg.SLO, so a migrated
// request's home-shard budget is honored on whichever shard forms the
// batch; the time.Now is taken lazily so deadline-free servers never
// pay for it.
func (s *Server) formBatchLocked(batch []*request) []*request {
	maxBatch := s.cfg.maxBatch()
	var now time.Time
	for len(batch) < maxBatch && len(s.active) > 0 {
		if s.rr >= len(s.active) {
			s.rr = 0
		}
		r, emptied := s.popLocked(s.rr)
		if !r.deadline.IsZero() {
			if now.IsZero() {
				now = time.Now()
			}
			if now.After(r.deadline) {
				s.expireOne(r)
				if !emptied {
					s.rr++
				}
				continue
			}
		}
		batch = append(batch, r)
		if !emptied {
			s.rr++ // tenant still queued: move past it this round
		}
	}
	return batch
}

// expireOne completes a deadline-expired request without executing
// it: the waiter gets ErrDeadlineExceeded and the expiry is charged
// to the accounting entry that admitted the request (its home shard's
// tenant when migrated). Called with or without s.mu held — it only
// touches atomics and the request's own fields.
func (s *Server) expireOne(r *request) {
	r.err = ErrDeadlineExceeded
	acct := r.acct
	if acct == nil {
		acct = r.t
	}
	acct.expired.Add(1)
	s.expired.Add(1)
	r.done <- struct{}{}
}

// awaitWindow lets a batch accumulate: it returns once the queue
// reaches a full batch, arrivals plateau (a scheduling round added
// nothing, so no producer is ready to enqueue), or the window
// expires. On a single-P runtime the Gosched loop runs every ready
// producer before re-reading the queue, which makes the plateau check
// exact there and merely conservative elsewhere.
func (s *Server) awaitWindow() {
	window := s.cfg.window()
	if window == 0 {
		return
	}
	deadline := time.Now().Add(window)
	prev := -1
	for {
		s.mu.Lock()
		q, closed := s.queued, s.closed
		s.mu.Unlock()
		if closed || q >= s.cfg.maxBatch() || q == prev || time.Now().After(deadline) {
			return
		}
		prev = q
		runtime.Gosched()
	}
}

// dispatch is the batch-forming loop. One dispatcher per server: batch
// formation is serial (it is cheap — pointer pops under one mutex),
// execution is where the parallelism is.
func (s *Server) dispatch() {
	defer close(s.drained)
	batch := make([]*request, 0, s.cfg.maxBatch())
	for {
		s.mu.Lock()
		for s.queued == 0 && !s.closed {
			// Diffusion's pull edge: an idle dispatcher probes its
			// sibling shards before parking. A successful steal leaves
			// requests on our queues (the loop condition re-checks); a
			// failed one parks until a local submit or a sibling's
			// push migration signals the cond.
			if steal := s.cfg.stealIdle; steal != nil {
				s.mu.Unlock()
				migrated := steal()
				s.mu.Lock()
				if migrated > 0 || s.queued > 0 || s.closed {
					// A successful steal leaves requests on our
					// queues — but so can a local submit, a sibling's
					// push migration, or a Close that ran while the
					// lock was dropped for the probe. Their
					// cond.Signal found no waiter and was a no-op, so
					// falling into Wait here would sleep on a wakeup
					// that already happened; re-check the predicate
					// instead.
					continue
				}
			}
			s.cond.Wait()
		}
		if s.queued == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		s.awaitWindow()
		s.mu.Lock()
		batch = s.formBatchLocked(batch[:0])
		s.mu.Unlock()
		if len(batch) > 0 {
			s.execute(batch)
		}
	}
}

// execute runs one batch under the admission ladder: fused parallel
// loop when the executor has headroom, proportionally fewer workers
// under elevated load, serial on the dispatcher at saturation.
func (s *Server) execute(batch []*request) {
	n := len(batch)
	s.batches.Add(1)
	s.batchedReqs.Add(int64(n))
	for {
		cur := s.maxBatch.Load()
		if int64(n) <= cur || s.maxBatch.CompareAndSwap(cur, int64(n)) {
			break
		}
	}
	load := s.cfg.executor().Occupancy()
	workers := s.cfg.workers()
	if load >= s.cfg.saturation() {
		s.shed.Add(1)
		workers = 1
	} else if load >= s.cfg.highLoad() {
		s.degraded.Add(1)
		if scaled := int(float64(workers)*(1-load) + 0.5); scaled < workers {
			workers = max(1, scaled)
		}
	}
	start := time.Now()
	if n == 1 || workers == 1 {
		s.serialBatches.Add(1)
		for _, r := range batch {
			s.runOne(r)
		}
	} else {
		s.parallelBatches.Add(1)
		opts := par.Options{
			Procs:        workers,
			Policy:       par.Dynamic, // request costs are skewed; balance them
			Grain:        1,
			SerialCutoff: 1,
			Executor:     s.cfg.Executor,
			Scratch:      s.cfg.Scratch,
			Adaptive:     s.cfg.Adaptive,
			Site:         siteBatch,
		}
		par.For(n, opts, func(i int) { s.runOne(batch[i]) })
	}
	// Fold this batch's per-request service time into the door's wait
	// predictor. Single writer (the dispatcher), so a plain
	// load/store EWMA is race-free; alpha 1/4 forgets a shed or
	// degraded batch within a few normal ones.
	per := int64(time.Since(start)) / int64(n)
	now := int64(time.Since(serveEpoch))
	if old := s.svcNanos.Load(); old == 0 || now-s.svcStamp.Load() > int64(svcStaleAfter) {
		// Cold, or the last fold is from before an idle gap: the old
		// EWMA describes a dead regime, so restart from this batch
		// instead of dragging fossil history into the average.
		s.svcNanos.Store(per)
	} else {
		s.svcNanos.Store(old + (per-old)/4)
	}
	s.svcStamp.Store(now)
}

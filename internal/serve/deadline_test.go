package serve

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// deadlineGate returns a Histogram workload that parks inside the
// kernel until the gate channel is closed — the white-box way to hold
// the dispatcher inside a batch while later submissions pile up on
// the queues.
func deadlineGate() (bucket func(int64) int, gate chan struct{}) {
	gate = make(chan struct{})
	return func(int64) int { <-gate; return 0 }, gate
}

// TestDeadlineDoorRejection pins the door rung: when the queue-depth-
// predicted wait already exceeds the SLO budget, the request is
// refused with ErrDeadlineExceeded before it is enqueued, and the
// refusal is counted on both the server and the tenant entry.
func TestDeadlineDoorRejection(t *testing.T) {
	s := New(Config{SLO: time.Millisecond})
	defer s.Close()
	// Pretend the dispatcher has measured 10ms per request, freshly:
	// any admission now predicts (queued+1)*10ms > 1ms and must
	// bounce. Without the fresh stamp the door would (correctly)
	// distrust the estimate as stale — that path is pinned by
	// TestDeadlineStaleEstimateAdmits.
	s.svcNanos.Store(int64(10 * time.Millisecond))
	s.svcStamp.Store(int64(time.Since(serveEpoch)))

	err := s.Sort("t", []int64{3, 1, 2})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	st := s.Stats()
	if st.DeadlineRejected != 1 || st.Accepted != 0 || st.Rejected != 0 {
		t.Fatalf("stats = %+v", st)
	}
	ts := s.TenantStats()
	if len(ts) != 1 || ts[0].DeadlineRejected != 1 || ts[0].Accepted != 0 {
		t.Fatalf("tenant stats = %+v", ts)
	}
}

// TestDeadlineColdDoorAdmits pins the cold-start choice: with no
// batch measured yet the wait predictor is 0 and the door admits —
// SLO servers must not reject their very first request.
func TestDeadlineColdDoorAdmits(t *testing.T) {
	s := New(Config{SLO: 50 * time.Millisecond})
	defer s.Close()
	xs := []int64{3, 1, 2}
	if err := s.Sort("t", xs); err != nil {
		t.Fatalf("cold submit: %v", err)
	}
	if xs[0] != 1 || xs[2] != 3 {
		t.Fatalf("sorted = %v", xs)
	}
	if per := s.svcNanos.Load(); per <= 0 {
		t.Fatalf("svcNanos not measured after a batch: %d", per)
	}
}

// TestDeadlineStaleEstimateAdmits pins the staleness fix: a server
// that has sat idle past svcStaleAfter must admit the next arrival
// like a cold start, even when the last traffic regime left a
// per-request estimate that would predict a deadline miss. Before the
// fix the EWMA never aged out and an idle server could bounce the
// first request of a new regime forever.
func TestDeadlineStaleEstimateAdmits(t *testing.T) {
	s := New(Config{SLO: time.Millisecond})
	defer s.Close()
	// A fossil estimate: 10ms per request, measured (far) longer than
	// svcStaleAfter ago.
	s.svcNanos.Store(int64(10 * time.Millisecond))
	s.svcStamp.Store(int64(time.Since(serveEpoch)) - 2*int64(svcStaleAfter))

	xs := []int64{3, 1, 2}
	if err := s.Sort("t", xs); err != nil {
		t.Fatalf("idle-server submit bounced on a stale estimate: %v", err)
	}
	if xs[0] != 1 || xs[2] != 3 {
		t.Fatalf("sorted = %v", xs)
	}
	if st := s.Stats(); st.DeadlineRejected != 0 || st.Accepted != 1 {
		t.Fatalf("stats = %+v, want 1 accepted / 0 deadline-rejected", st)
	}
}

// TestDeadlineStaleEstimateResets pins the dispatcher side of the
// fix: the first batch after an idle gap restarts the EWMA from its
// own measurement instead of averaging into the dead regime's value.
func TestDeadlineStaleEstimateResets(t *testing.T) {
	s := New(Config{SLO: time.Second})
	defer s.Close()
	fossil := int64(time.Hour)
	s.svcNanos.Store(fossil)
	s.svcStamp.Store(int64(time.Since(serveEpoch)) - 2*int64(svcStaleAfter))

	if err := s.Sort("t", []int64{3, 1, 2}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	// A fold (alpha 1/4) would leave ~45 minutes; a reset leaves the
	// microseconds this batch actually took.
	if per := s.svcNanos.Load(); per <= 0 || per >= fossil/2 {
		t.Fatalf("svcNanos = %v after stale gap, want a reset to this batch's measurement", time.Duration(per))
	}
	if !s.svcFresh(time.Now()) {
		t.Fatal("svcStamp not refreshed by the batch")
	}
}

// TestDeadlineExpiredDroppedBeforeBatching pins the dispatcher rung:
// a request whose deadline passes while it waits behind a stalled
// batch is completed with ErrDeadlineExceeded at batch formation —
// counted as Expired, not Completed — without occupying a batch slot.
func TestDeadlineExpiredDroppedBeforeBatching(t *testing.T) {
	const slo = 20 * time.Millisecond
	s := New(Config{SLO: slo, Workers: 1})
	defer s.Close()

	bucket, gate := deadlineGate()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		hist := make([]int, 1)
		if err := s.Histogram("blocker", hist, []int64{1}, bucket); err != nil {
			t.Errorf("blocker: %v", err)
		}
	}()
	// Wait until the blocker is inside execute() so the next submit
	// can only queue behind it.
	for i := 0; s.Stats().Batches == 0; i++ {
		if i > 2000 {
			t.Fatal("blocker batch never started")
		}
		time.Sleep(time.Millisecond)
	}

	var victimErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		victimErr = s.Sort("victim", []int64{2, 1})
	}()
	// Let the victim's budget lapse while the dispatcher is stuck,
	// then release the blocker; the next batch formation must expire
	// the victim instead of running it.
	time.Sleep(3 * slo)
	close(gate)
	wg.Wait()

	if !errors.Is(victimErr, ErrDeadlineExceeded) {
		t.Fatalf("victim err = %v, want ErrDeadlineExceeded", victimErr)
	}
	st := s.Stats()
	if st.Expired != 1 {
		t.Fatalf("Expired = %d, want 1 (stats %+v)", st.Expired, st)
	}
	if st.Accepted != st.Completed+st.Expired {
		t.Fatalf("drain imbalance: accepted %d != completed %d + expired %d",
			st.Accepted, st.Completed, st.Expired)
	}
	for _, ts := range s.TenantStats() {
		if ts.Name == "victim" && (ts.Expired != 1 || ts.Completed != 0) {
			t.Fatalf("victim tenant stats = %+v", ts)
		}
	}
}

// TestMigrationKeepsDeadlineStamps pins the sharded contract: a
// request admitted under a home shard's SLO carries its deadline
// through migrateOut/migrateIn, and the thief shard enforces it at
// its own batch formation — even when the thief itself has no SLO
// configured — charging the expiry back to the admitting entry.
func TestMigrationKeepsDeadlineStamps(t *testing.T) {
	const slo = 20 * time.Millisecond
	home := New(Config{SLO: slo, Workers: 1})
	defer home.Close()
	thief := New(Config{Workers: 1}) // no SLO of its own
	defer thief.Close()

	// Stall home's dispatcher so submissions after the blocker queue.
	bucket, gate := deadlineGate()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		hist := make([]int, 1)
		_ = home.Histogram("blocker", hist, []int64{1}, bucket)
	}()
	for i := 0; home.Stats().Batches == 0; i++ {
		if i > 2000 {
			t.Fatal("blocker batch never started")
		}
		time.Sleep(time.Millisecond)
	}

	const k = 3
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = home.Sort("mig", []int64{2, 1})
		}()
	}
	for i := 0; home.queueDepth() < k; i++ {
		if i > 2000 {
			t.Fatal("migration victims never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Steal the queued requests exactly as the diffusive balancer
	// would and verify the stamps survived the pop.
	buf := home.migrateOut(nil, k)
	if len(buf) != k {
		t.Fatalf("migrated %d, want %d", len(buf), k)
	}
	for i, r := range buf {
		if r.deadline.IsZero() {
			t.Fatalf("migrated request %d lost its deadline stamp", i)
		}
	}

	// Let the budget lapse, then hand them to the SLO-less thief: its
	// batch formation must honor the home stamps and expire all k.
	time.Sleep(3 * slo)
	thief.migrateIn(buf)
	close(gate)
	wg.Wait()

	for i, err := range errs {
		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("migrated request %d err = %v, want ErrDeadlineExceeded", i, err)
		}
	}
	if exp := thief.Stats().Expired; exp != k {
		t.Fatalf("thief Expired = %d, want %d", exp, k)
	}
	// The expiry is charged to the admitting (home) tenant entry.
	for _, ts := range home.TenantStats() {
		if ts.Name == "mig" && ts.Expired != k {
			t.Fatalf("home tenant stats = %+v, want Expired=%d", ts, k)
		}
	}
	for _, ts := range thief.TenantStats() {
		if ts.Name == "mig" && ts.Expired != 0 {
			t.Fatalf("thief tenant entry charged the expiry: %+v", ts)
		}
	}
}

// TestDeadlineBatchPathZeroAllocs pins the acceptance bar: stamping
// and checking deadlines must not cost the serve batch path its
// 0 allocs/op steady state.
func TestDeadlineBatchPathZeroAllocs(t *testing.T) {
	s := New(Config{SLO: time.Second})
	defer s.Close()
	xs := make([]int64, 4096)
	for i := range xs {
		xs[i] = int64((i * 2654435761) % 100003)
	}
	for i := 0; i < 64; i++ {
		if err := s.Sort("t", xs); err != nil {
			t.Fatal(err)
		}
	}
	// A GC between runs can repopulate sync.Pools on the measured
	// iteration; retry before declaring a leak.
	var allocs float64
	for attempt := 0; attempt < 3; attempt++ {
		allocs = testing.AllocsPerRun(100, func() {
			if err := s.Sort("t", xs); err != nil {
				t.Fatal(err)
			}
		})
		if allocs == 0 {
			break
		}
	}
	if allocs != 0 {
		t.Errorf("SLO batch path allocates %.2f allocs/op; want 0", allocs)
	}
}

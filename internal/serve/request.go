package serve

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pgraph"
	"repro/internal/pipeline"
	"repro/internal/psel"
	"repro/internal/seq"
)

// op tags the kernel a request runs.
type op uint8

const (
	opSort op = iota
	opSelect
	opHistogram
	opScan
	opSum
	opBFS
)

// request is one queued unit of work. Instances are pooled (reqPool)
// and reused with their done channel; every field except done is
// overwritten on reuse.
type request struct {
	op         op
	tenantName string
	t          *tenant
	next       *request // intrusive tenant-queue link

	xs     []int64
	dst    []int64         // scan output
	hist   []int           // histogram output
	bucket func(int64) int // histogram bucketer
	k      int             // select rank
	g      *graph.Graph    // bfs input
	src    int             // bfs source
	out    int64           // select/sum result
	dist   []int32         // bfs result
	err    error
	done   chan struct{} // cap 1; signaled exactly once per execution
}

// getRequest takes a pooled request and stamps its identity fields.
func (s *Server) getRequest(o op, tenant string, xs []int64) *request {
	r := s.reqPool.Get().(*request)
	*r = request{op: o, tenantName: tenant, xs: xs, done: r.done}
	return r
}

// putRequest returns a request to the pool, dropping the payload
// references so pooled requests never pin caller slices.
func (s *Server) putRequest(r *request) {
	*r = request{done: r.done}
	s.reqPool.Put(r)
}

// serialOpts are the Options a request's kernel runs under inside a
// batch slot: strictly serial (the batch loop owns the parallelism —
// one fused fork/join over requests, not one per request) but drawing
// temporaries from the server's scratch pool like any kernel call.
func (s *Server) serialOpts() par.Options {
	return par.Options{
		Procs:        1,
		SerialCutoff: 1 << 62,
		Executor:     s.cfg.Executor,
		Scratch:      s.cfg.Scratch,
	}
}

// runOne executes one request serially inside its batch slot and
// signals its waiter. Kernel panics (a bucket function out of range,
// a malformed graph) are confined to the request: they become its
// error instead of killing a pooled worker.
func (s *Server) runOne(r *request) {
	defer func() {
		if p := recover(); p != nil {
			r.err = fmt.Errorf("serve: request panicked: %v", p)
		}
		r.t.completed.Add(1)
		s.completed.Add(1)
		r.done <- struct{}{}
	}()
	opts := s.serialOpts()
	switch r.op {
	case opSort:
		seq.Quicksort(r.xs)
	case opSelect:
		r.out = psel.Select(r.xs, r.k, opts)
	case opHistogram:
		par.HistogramInto(r.hist, r.xs, opts, r.bucket)
	case opScan:
		par.ScanInclusive(r.dst, r.xs, opts, 0, func(a, b int64) int64 { return a + b })
	case opSum:
		r.out = par.Sum(r.xs, opts)
	case opBFS:
		r.dist = pgraph.BFS(r.g, r.src, opts)
	}
}

// pipelineOpts are the Options the long-request pipeline route runs
// under: stage concurrency owns the parallelism, so chunks run serial
// unless the adaptive controller is deciding.
func (s *Server) pipelineOpts() par.Options {
	opts := par.Options{
		Executor: s.cfg.Executor,
		Scratch:  s.cfg.Scratch,
		Adaptive: s.cfg.Adaptive,
	}
	if opts.Adaptive == nil {
		opts.SerialCutoff = pipeline.DefaultChunkSize
	}
	return opts
}

// admitted wraps the counters for a request that bypasses the queues
// (the pipeline route): it is accepted and completed but never
// batched.
func (s *Server) admitted(tenant string) (*tenant, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	t := s.tenantLocked(tenant)
	s.mu.Unlock()
	t.accepted.Add(1)
	s.accepted.Add(1)
	s.pipelined.Add(1)
	return t, nil
}

// sortPipeline sorts xs through the streaming pipeline runtime on the
// caller's goroutine. Safe to write the sorted stream back into xs:
// the Sort stage is blocking, so the source has fully drained xs
// before the sink receives its first chunk.
func (s *Server) sortPipeline(tenant string, xs []int64) error {
	t, err := s.admitted(tenant)
	if err != nil {
		return err
	}
	off := 0
	p := pipeline.New(pipeline.Config{Opts: s.pipelineOpts()}).
		FromSlice(xs).
		Sort().
		ToFunc(func(buf []int64) error {
			off += copy(xs[off:], buf)
			return nil
		})
	err = p.Run()
	t.completed.Add(1)
	s.completed.Add(1)
	return err
}

// scanPipeline computes inclusive prefix sums of xs into dst through
// the streaming pipeline. dst may alias xs: the sink's write offset
// never passes the source's read offset (chunks are copied out of xs
// in stream order before they reach the sink).
func (s *Server) scanPipeline(tenant string, dst, xs []int64) error {
	t, err := s.admitted(tenant)
	if err != nil {
		return err
	}
	off := 0
	p := pipeline.New(pipeline.Config{Opts: s.pipelineOpts()}).
		FromSlice(xs).
		RunningSum().
		ToFunc(func(buf []int64) error {
			off += copy(dst[off:], buf)
			return nil
		})
	err = p.Run()
	t.completed.Add(1)
	s.completed.Add(1)
	return err
}

// Sort sorts xs in place. Small inputs batch with other requests;
// inputs of PipelineCutoff elements or more stream through the
// pipeline runtime instead so they cannot stall a batch.
func (s *Server) Sort(tenant string, xs []int64) error {
	if c := s.cfg.pipelineCutoff(); c > 0 && len(xs) >= c {
		return s.sortPipeline(tenant, xs)
	}
	r := s.getRequest(opSort, tenant, xs)
	err := s.submit(r)
	s.putRequest(r)
	return err
}

// Select returns the k-th smallest element of xs (0-based) without
// modifying xs.
func (s *Server) Select(tenant string, xs []int64, k int) (int64, error) {
	if k < 0 || k >= len(xs) {
		return 0, fmt.Errorf("serve: Select rank %d out of range [0,%d)", k, len(xs))
	}
	r := s.getRequest(opSelect, tenant, xs)
	r.k = k
	err := s.submit(r)
	out := r.out
	s.putRequest(r)
	if err != nil {
		return 0, err
	}
	return out, nil
}

// Histogram counts bucket(x) occurrences over xs into hist (fully
// overwritten; len(hist) is the bucket count). bucket must return
// values in [0, len(hist)).
func (s *Server) Histogram(tenant string, hist []int, xs []int64, bucket func(int64) int) error {
	if bucket == nil {
		return fmt.Errorf("serve: Histogram with nil bucket function")
	}
	r := s.getRequest(opHistogram, tenant, xs)
	r.hist = hist
	r.bucket = bucket
	err := s.submit(r)
	s.putRequest(r)
	return err
}

// Scan writes inclusive prefix sums of xs into dst (len(dst) must
// equal len(xs); dst may alias xs). Long scans stream through the
// pipeline runtime.
func (s *Server) Scan(tenant string, dst, xs []int64) error {
	if len(dst) != len(xs) {
		return fmt.Errorf("serve: Scan dst length %d != input length %d", len(dst), len(xs))
	}
	if c := s.cfg.pipelineCutoff(); c > 0 && len(xs) >= c {
		return s.scanPipeline(tenant, dst, xs)
	}
	r := s.getRequest(opScan, tenant, xs)
	r.dst = dst
	err := s.submit(r)
	s.putRequest(r)
	return err
}

// Sum returns the sum of xs.
func (s *Server) Sum(tenant string, xs []int64) (int64, error) {
	r := s.getRequest(opSum, tenant, xs)
	err := s.submit(r)
	out := r.out
	s.putRequest(r)
	if err != nil {
		return 0, err
	}
	return out, nil
}

// BFS returns hop distances from src in g (-1 when unreachable).
func (s *Server) BFS(tenant string, g *graph.Graph, src int) ([]int32, error) {
	if g == nil || src < 0 || src >= g.N() {
		return nil, fmt.Errorf("serve: BFS source %d out of range", src)
	}
	r := s.getRequest(opBFS, tenant, nil)
	r.g = g
	r.src = src
	err := s.submit(r)
	dist := r.dist
	s.putRequest(r)
	if err != nil {
		return nil, err
	}
	return dist, nil
}

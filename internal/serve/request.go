package serve

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/rescache"
)

// The kernels behind the typed convenience methods, resolved once at
// init (the kernel package registers its built-ins in its own init,
// which runs first because serve imports it). Everything the server
// needs to execute, validate or pipeline-route a request comes from
// the descriptor — adding a kernel to the registry makes it servable
// through Call with no edits here.
var (
	kernelSort      = kernel.MustLookup("sort")
	kernelSelect    = kernel.MustLookup("select")
	kernelHistogram = kernel.MustLookup("histogram")
	kernelScan      = kernel.MustLookup("scan")
	kernelSum       = kernel.MustLookup("sum")
	kernelBFS       = kernel.MustLookup("bfs")
)

// request is one queued unit of work: a kernel descriptor plus its
// argument record. Instances are pooled (reqPool) and reused with
// their done channel; every field except done is overwritten on
// reuse.
type request struct {
	k          *kernel.Kernel
	tenantName string   // accounting name, stamped at admission (folded names become OverflowTenant)
	t          *tenant  // queue entry on the server currently holding the request
	acct       *tenant  // accounting entry on the admitting server; completion credits it
	next       *request // intrusive tenant-queue link

	// deadline is the SLO stamp set at admission (zero when the
	// admitting server has no SLO). It rides the struct through
	// migration, so a thief shard enforces the home shard's budget.
	deadline time.Time
	// budget is a per-request deadline budget overriding Config.SLO
	// when positive — the wire front door sets it from frame metadata
	// so a remote client's own SLO governs its request. Only the
	// absolute deadline stamp derived from it rides migration.
	budget time.Duration

	args kernel.Args
	// delta rides incremental requests (CallDelta): when isDelta is
	// set, the batch slot runs the kernel's delta adapter over (args,
	// delta) instead of a full Run.
	delta   kernel.Delta
	isDelta bool
	err     error
	done    chan struct{} // cap 1; signaled exactly once per execution
}

// getRequest takes a pooled request and stamps its identity fields.
func (s *Server) getRequest(k *kernel.Kernel, tenant string, a *kernel.Args) *request {
	r := s.reqPool.Get().(*request)
	*r = request{k: k, tenantName: tenant, args: *a, done: r.done}
	return r
}

// putRequest returns a request to the pool, dropping the payload
// references so pooled requests never pin caller slices.
func (s *Server) putRequest(r *request) {
	*r = request{done: r.done}
	s.reqPool.Put(r)
}

// serialOpts are the Options a request's kernel runs under inside a
// batch slot: strictly serial (the batch loop owns the parallelism —
// one fused fork/join over requests, not one per request) but drawing
// temporaries from the server's scratch pool like any kernel call.
// Adaptive stays set: algorithm-variant dispatch is orthogonal to
// parallelism (a counting sort beats a comparison sort on narrow keys
// at one worker too), while the grain/policy/worker lattices are
// inert at Procs 1.
func (s *Server) serialOpts() par.Options {
	return par.Options{
		Procs:        1,
		SerialCutoff: 1 << 62,
		Executor:     s.cfg.Executor,
		Scratch:      s.cfg.Scratch,
		Adaptive:     s.cfg.Adaptive,
	}
}

// runOne executes one request serially inside its batch slot and
// signals its waiter. Kernel panics (a bucket function out of range,
// a malformed graph) are confined to the request: they become its
// error instead of killing a pooled worker. Completion credits the
// accounting entry stamped at admission, so a migrated request counts
// under the tenant entry (and name) it was accepted under no matter
// where it executes.
func (s *Server) runOne(r *request) {
	defer func() {
		if p := recover(); p != nil {
			r.err = fmt.Errorf("serve: request panicked: %v", p)
		}
		acct := r.acct
		if acct == nil {
			acct = r.t
		}
		acct.completed.Add(1)
		s.completed.Add(1)
		r.done <- struct{}{}
	}()
	if r.isDelta {
		r.err = r.k.RunDelta(&r.args, &r.delta, s.serialOpts())
		return
	}
	r.k.Run(&r.args, s.serialOpts())
}

// pipelineOpts are the Options the long-request pipeline route runs
// under: stage concurrency owns the parallelism, so chunks run serial
// unless the adaptive controller is deciding.
func (s *Server) pipelineOpts() par.Options {
	opts := par.Options{
		Executor: s.cfg.Executor,
		Scratch:  s.cfg.Scratch,
		Adaptive: s.cfg.Adaptive,
	}
	if opts.Adaptive == nil {
		opts.SerialCutoff = pipeline.DefaultChunkSize
	}
	return opts
}

// admitted wraps the counters for a request that bypasses the queues
// (the pipeline route): it is accepted and completed but never
// batched.
func (s *Server) admitted(tenant string) (*tenant, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	t := s.tenantLocked(tenant)
	s.mu.Unlock()
	t.accepted.Add(1)
	s.accepted.Add(1)
	s.pipelined.Add(1)
	return t, nil
}

// streamOne runs one long request through the kernel's streaming
// pipeline adapter on the caller's goroutine, with the same
// validate-then-admit accounting as the batch path. It works on a
// local copy of the record: passing the caller's pointer to the
// Validate/Stream func values would leak it and force every Call
// site's record onto the heap, breaking the batch path's 0 allocs/op.
func (s *Server) streamOne(tenantName string, k *kernel.Kernel, a *kernel.Args) error {
	cp := *a
	if k.Validate != nil {
		if err := k.Validate(&cp); err != nil {
			return err
		}
	}
	t, err := s.admitted(tenantName)
	if err != nil {
		return err
	}
	err = k.Stream(&cp, s.pipelineOpts())
	*a = cp
	t.completed.Add(1)
	s.completed.Add(1)
	return err
}

// Call submits one request for kernel k with argument record a on
// behalf of tenant and waits for it: the generic entrypoint every
// typed method wraps, and the only dispatch path — the server knows
// nothing about individual kernels beyond their descriptors. Results
// are copied back into a. Inputs at or above the pipeline cutoff
// route through k.Stream when the kernel has one. Small requests
// batch with other tenants' and keep the steady state allocation-
// free: the request record is pooled and a's fields move by value.
func (s *Server) Call(tenant string, k *kernel.Kernel, a *kernel.Args) error {
	return s.CallBudget(tenant, k, a, 0)
}

// CallBudget is Call with a per-request deadline budget: when budget
// is positive it replaces Config.SLO for this request's admission
// prediction and queue-expiry stamp (the wire front door sets it from
// frame metadata so a remote client's own SLO governs). A zero budget
// inherits the server SLO, making Call a budget-0 wrapper.
func (s *Server) CallBudget(tenant string, k *kernel.Kernel, a *kernel.Args, budget time.Duration) error {
	if k == nil {
		return fmt.Errorf("serve: Call with nil kernel")
	}
	if c := s.cfg.pipelineCutoff(); c > 0 && k.Stream != nil && a.Len() >= c {
		return s.streamOne(tenant, k, a)
	}
	var tok rescache.Token
	if c := s.cfg.Cache; c != nil && rescache.Cacheable(k, a) {
		// Fast path: a hit restores the cached output into a and skips
		// validation, admission, queueing and the kernel entirely (a
		// cached entry can only have come from a validated run of the
		// byte-identical input, so re-validating proves nothing).
		// Hits stay allocation-free: the token and key live on the
		// stack, and Lookup copies into the caller's existing slices.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return ErrClosed
		}
		t := s.tenantLocked(tenant)
		s.mu.Unlock()
		var hit bool
		if tok, hit = c.Lookup(tenant, k, a); hit {
			t.cacheHits.Add(1)
			s.cacheHits.Add(1)
			return nil
		}
		s.cacheMisses.Add(1)
	}
	r := s.getRequest(k, tenant, a)
	r.budget = budget
	if k.Validate != nil {
		if err := k.Validate(&r.args); err != nil {
			s.putRequest(r)
			return err
		}
	}
	err := s.submit(r)
	if err == nil && tok.Valid() {
		// Store under the token captured before the kernel mutated the
		// input; Insert drops the result if the tenant's generation was
		// bumped while it computed.
		s.cfg.Cache.Insert(tenant, k, tok, &r.args)
	}
	*a = r.args
	s.putRequest(r)
	return err
}

// CallDelta submits one incremental request: the kernel's delta
// adapter folds d into the already-computed record a inside a batch
// slot, with the same admission, fairness, deadline and migration
// semantics as Call — for the cost of the delta instead of a full
// recompute. Kernels without a delta adapter fail loudly. The delta
// path never touches the result cache: entries describing the
// pre-delta input remain correct for that input.
func (s *Server) CallDelta(tenant string, k *kernel.Kernel, a *kernel.Args, d *kernel.Delta) error {
	return s.CallDeltaBudget(tenant, k, a, d, 0)
}

// CallDeltaBudget is CallDelta with a per-request deadline budget,
// with the same override semantics as CallBudget.
func (s *Server) CallDeltaBudget(tenant string, k *kernel.Kernel, a *kernel.Args, d *kernel.Delta, budget time.Duration) error {
	if k == nil {
		return fmt.Errorf("serve: CallDelta with nil kernel")
	}
	if k.Delta == nil {
		return fmt.Errorf("serve: kernel %s has no delta adapter", k.Name)
	}
	r := s.getRequest(k, tenant, a)
	r.budget = budget
	r.delta = *d
	r.isDelta = true
	err := s.submit(r)
	*a = r.args
	s.putRequest(r)
	return err
}

// Sort sorts xs in place. Small inputs batch with other requests;
// inputs of PipelineCutoff elements or more stream through the
// pipeline runtime instead so they cannot stall a batch.
func (s *Server) Sort(tenant string, xs []int64) error {
	a := kernel.Args{Xs: xs}
	return s.Call(tenant, kernelSort, &a)
}

// Select returns the k-th smallest element of xs (0-based) without
// modifying xs.
func (s *Server) Select(tenant string, xs []int64, k int) (int64, error) {
	a := kernel.Args{Xs: xs, K: k}
	err := s.Call(tenant, kernelSelect, &a)
	if err != nil {
		return 0, err
	}
	return a.Out, nil
}

// Histogram counts bucket(x) occurrences over xs into hist (fully
// overwritten; len(hist) is the bucket count). bucket must return
// values in [0, len(hist)).
func (s *Server) Histogram(tenant string, hist []int, xs []int64, bucket func(int64) int) error {
	a := kernel.Args{Xs: xs, Hist: hist, Bucket: bucket}
	return s.Call(tenant, kernelHistogram, &a)
}

// Scan writes inclusive prefix sums of xs into dst (len(dst) must
// equal len(xs); dst may alias xs). Long scans stream through the
// pipeline runtime.
func (s *Server) Scan(tenant string, dst, xs []int64) error {
	a := kernel.Args{Xs: xs, Dst: dst}
	return s.Call(tenant, kernelScan, &a)
}

// Sum returns the sum of xs.
func (s *Server) Sum(tenant string, xs []int64) (int64, error) {
	a := kernel.Args{Xs: xs}
	err := s.Call(tenant, kernelSum, &a)
	if err != nil {
		return 0, err
	}
	return a.Out, nil
}

// BFS returns hop distances from src in g (-1 when unreachable).
func (s *Server) BFS(tenant string, g *graph.Graph, src int) ([]int32, error) {
	a := kernel.Args{G: g, Src: src}
	err := s.Call(tenant, kernelBFS, &a)
	if err != nil {
		return nil, err
	}
	return a.Dist, nil
}

package scratch

import (
	"repro/internal/racecheck"
	"sync"
	"testing"
	"unsafe"
)

func TestGetPutReuse(t *testing.T) {
	p := New()
	a, h := Get[int64](p, 100)
	if len(a) != 100 {
		t.Fatalf("len = %d, want 100", len(a))
	}
	for i := range a {
		a[i] = int64(i)
	}
	base := &a[0]
	Put(h)
	b, h2 := Get[int64](p, 100)
	if &b[0] != base {
		t.Errorf("second Get did not reuse the slab")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
	Put(h2)
}

func TestSizeClassSharing(t *testing.T) {
	// A smaller request of a different type reuses the same class slab.
	p := New()
	a, h := Get[int64](p, 64) // 512 B class
	base := &a[0]
	Put(h)
	b, h2 := Get[int32](p, 100) // 400 B -> same 512 B class
	if len(b) == 0 || unsafe.Pointer(&b[0]) != unsafe.Pointer(base) {
		t.Errorf("class not shared across element types")
	}
	Put(h2)
}

func TestDoublePutPanics(t *testing.T) {
	p := New()
	_, h := Get[int](p, 10)
	Put(h)
	defer func() {
		if recover() == nil {
			t.Fatalf("double Put did not panic")
		}
	}()
	Put(h)
}

func TestCheckAfterPutPanics(t *testing.T) {
	p := New()
	_, h := Get[int](p, 10)
	Check(h) // live: fine
	Put(h)
	defer func() {
		if recover() == nil {
			t.Fatalf("Check after Put did not panic")
		}
	}()
	Check(h)
}

func TestPointerTypesBypass(t *testing.T) {
	p := New()
	s, h := Get[[]int](p, 5) // slice elements hold pointers
	if h.Pooled() {
		t.Fatalf("pointer-bearing element type must bypass the pool")
	}
	if len(s) != 5 {
		t.Fatalf("bypass len = %d, want 5", len(s))
	}
	type pair struct{ a, b int }
	_, h2 := Get[pair](p, 5) // structs stay on the ordinary heap too
	if h2.Pooled() {
		t.Fatalf("struct element type must bypass the pool")
	}
	Put(h)  // no-ops
	Put(h2) // no-ops
	if st := p.Stats(); st.Bypasses != 2 {
		t.Errorf("bypasses = %d, want 2", st.Bypasses)
	}
}

func TestOversizeBypasses(t *testing.T) {
	p := New()
	_, h := Get[int64](p, maxClassBytes/8+1)
	if h.Pooled() {
		t.Fatalf("oversize request must bypass")
	}
}

func TestOffPoolBypasses(t *testing.T) {
	buf, h := Get[int64](Off, 100)
	if h.Pooled() || len(buf) != 100 {
		t.Fatalf("Off pool must bypass")
	}
	Put(h)
}

func TestGetZeroed(t *testing.T) {
	p := New()
	a, h := Get[int64](p, 50)
	for i := range a {
		a[i] = -1
	}
	Put(h)
	b, h2 := GetZeroed[int64](p, 50)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("b[%d] = %d after GetZeroed", i, v)
		}
	}
	Put(h2)
}

func TestGetCapAppend(t *testing.T) {
	p := New()
	buf, h := GetCap[int32](p, 0, 1000)
	if cap(buf) < 1000 {
		t.Fatalf("cap = %d, want >= 1000", cap(buf))
	}
	for i := 0; i < 1000; i++ {
		buf = append(buf, int32(i)) // must never reallocate
	}
	Put(h)
	st := p.Stats()
	if st.Misses != 1 {
		t.Errorf("append grew past the slab: misses = %d", st.Misses)
	}
}

func TestArenaRelease(t *testing.T) {
	p := New()
	a := AcquireArena(p)
	x := Make[int64](a, 100)
	y := MakeZeroed[int](a, 200)
	_ = MakeCap[int32](a, 0, 50)
	if len(x) != 100 || len(y) != 200 {
		t.Fatalf("bad lengths")
	}
	a.Release()
	if st := p.Stats(); st.BytesLive != 0 {
		t.Errorf("BytesLive = %d after Release, want 0", st.BytesLive)
	}
	// The arena itself is recycled.
	b := AcquireArena(p)
	if b != a {
		t.Errorf("arena not recycled")
	}
	b.Release()
}

func TestArenaDoubleReleasePanics(t *testing.T) {
	p := New()
	a := AcquireArena(p)
	_ = Make[int](a, 8)
	a.Release()
	defer func() {
		if recover() == nil {
			t.Fatalf("double Release did not panic")
		}
	}()
	a.Release()
}

func TestArenaMakeAfterReleasePanics(t *testing.T) {
	p := New()
	a := AcquireArena(p)
	a.Release()
	defer func() {
		if recover() == nil {
			t.Fatalf("Make after Release did not panic")
		}
	}()
	_ = Make[int](a, 8)
}

func TestBytesGauges(t *testing.T) {
	p := New()
	_, h := Get[int64](p, 1024) // 8 KiB class
	st := p.Stats()
	if st.BytesLive != 8192 {
		t.Errorf("BytesLive = %d, want 8192", st.BytesLive)
	}
	Put(h)
	st = p.Stats()
	if st.BytesLive != 0 || st.BytesPooled != 8192 {
		t.Errorf("after Put: live=%d pooled=%d, want 0/8192", st.BytesLive, st.BytesPooled)
	}
}

func TestConcurrentTraffic(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				a := AcquireArena(p)
				x := Make[int64](a, 64+i%1000)
				for j := range x {
					x[j] = int64(g)
				}
				for _, v := range x {
					if v != int64(g) {
						t.Errorf("cross-goroutine scribble: got %d want %d", v, g)
						break
					}
				}
				a.Release()
			}
		}(g)
	}
	wg.Wait()
	if st := p.Stats(); st.BytesLive != 0 {
		t.Errorf("BytesLive = %d after quiesce", st.BytesLive)
	}
}

func TestSteadyStateAllocFree(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("race instrumentation allocates")
	}
	p := New()
	warm := func() {
		a := AcquireArena(p)
		_ = Make[int64](a, 4096)
		_ = MakeZeroed[int](a, 256)
		a.Release()
	}
	warm()
	if n := testing.AllocsPerRun(100, warm); n > 0 {
		t.Errorf("steady-state arena cycle allocates %.1f times/run, want 0", n)
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct{ b, class int }{
		{1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << 20, largeClass}, {maxClassBytes, numClasses - 1},
	}
	for _, c := range cases {
		if got := classFor(c.b); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.b, got, c.class)
		}
	}
}

package scratch

// Arena is a bulk-release view of a Pool: every Make draws a buffer
// whose lifetime ends at Release, so a kernel acquires one arena, makes
// as many temporaries as its phases need, and releases them all with a
// single deferred call. Arenas are the unit of worker locality — the
// executor hands a fresh one to each Run participant (exec.RunArena /
// par.ForWorkersArena), and kernels acquire one per call for their
// caller-side temporaries.
//
// An Arena is owned by exactly one goroutine between Acquire and
// Release; it is not safe for concurrent use. Buffers obtained from an
// arena must not be used after Release — the slabs' generation stamps
// advance at Release, so a retained Handle from Get-style use panics,
// and reused memory is the failure mode the stamps exist to catch.
type Arena struct {
	pool     *Pool
	out      []Handle
	released bool
}

// AcquireArena takes a reusable arena bound to p (nil means Default).
// Pair with Release; arenas themselves are pooled, so acquisition is
// allocation-free at steady state.
func AcquireArena(p *Pool) *Arena {
	if p == nil {
		p = Default()
	}
	p.arenaMu.Lock()
	if n := len(p.arenaFree); n > 0 {
		a := p.arenaFree[n-1]
		p.arenaFree = p.arenaFree[:n-1]
		p.arenaMu.Unlock()
		a.released = false
		return a
	}
	p.arenaMu.Unlock()
	return &Arena{pool: p}
}

// arenaCap bounds parked arenas per pool.
const arenaCap = 64

// Release returns every outstanding buffer to the pool and parks the
// arena for reuse. The arena must not be used afterwards: a second
// Release (or a Make after Release) panics — best-effort, like the
// slab generation stamps, so a double-parked arena never hands the
// same buffers to two owners silently.
func (a *Arena) Release() {
	if a.released {
		panic("scratch: Arena released twice")
	}
	a.released = true
	for i, h := range a.out {
		a.out[i] = Handle{}
		Put(h)
	}
	a.out = a.out[:0]
	p := a.pool
	p.arenaMu.Lock()
	if len(p.arenaFree) < arenaCap {
		p.arenaFree = append(p.arenaFree, a)
	}
	p.arenaMu.Unlock()
}

// Pool returns the pool the arena draws from.
func (a *Arena) Pool() *Pool { return a.pool }

// Make returns a []T of length n owned by the arena until Release.
// Contents are unspecified (see MakeZeroed).
func Make[T any](a *Arena, n int) []T {
	a.checkLive()
	buf, h := Get[T](a.pool, n)
	if h.Pooled() {
		a.out = append(a.out, h)
	}
	return buf
}

// MakeZeroed is Make with the n elements cleared.
func MakeZeroed[T any](a *Arena, n int) []T {
	a.checkLive()
	buf, h := GetZeroed[T](a.pool, n)
	if h.Pooled() {
		a.out = append(a.out, h)
	}
	return buf
}

// MakeCap returns a length-n, capacity-(at least c) slice owned by the
// arena, for append-style accumulation against a known bound.
func MakeCap[T any](a *Arena, n, c int) []T {
	a.checkLive()
	buf, h := GetCap[T](a.pool, n, c)
	if h.Pooled() {
		a.out = append(a.out, h)
	}
	return buf
}

func (a *Arena) checkLive() {
	if a.released {
		panic("scratch: Make on released Arena")
	}
}

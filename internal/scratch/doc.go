// Package scratch is the worker-local scratch-arena subsystem: a
// size-class-pooled allocator for the short-lived buffers every kernel
// layer needs on its steady-state path (scan partials, pack counts and
// offsets, per-worker histograms, sample-sort buckets, mergesort double
// buffers, radix count arrays, graph frontiers).
//
// Motivation. The executor runtime (internal/exec) removed the
// goroutine-spawn cost from every parallel call, but the kernels still
// allocated fresh scratch on every invocation, so under heavy
// concurrent traffic the hot path is GC-bound rather than
// compute-bound. The paper's methodology separates the abstract
// algorithm from its mapping to machine resources; memory reuse across
// calls is the missing half of that mapping. scratch supplies it: a
// buffer is requested with Get, used, and returned with Put, after
// which the next request of a similar size reuses the same backing
// memory instead of growing the heap.
//
// Mechanics. Backing memory is pooled in power-of-two size classes
// (64 B up to 64 MiB) as raw pointer-free slabs; Get[T] carves a typed
// slice out of a slab, so one pool serves every element type. Small
// classes live in per-shard free lists (shard chosen by a cheap
// goroutine-stack hash, so concurrent traffic spreads across mutexes);
// large classes share a byte-capped global list. Element types that
// contain pointers — or requests beyond the largest class — bypass the
// pool and fall back to the ordinary allocator, so Get is always
// correct and only POD buffers are reused.
//
// Ownership. A Get'ed buffer is exclusively owned until Put. Every
// slab carries a generation stamp that is advanced on Put; a Handle
// captures the stamp at Get time, so a double Put, a Put after the
// owning Arena released the buffer, or a Check through a retained
// handle panics instead of silently corrupting a reused buffer.
//
// Buffers are returned with whatever contents the previous user left
// (like C malloc); use GetZeroed/MakeZeroed when the algorithm reads
// before it writes.
//
// Layering: scratch sits directly above the allocator and below
// everything else: exec.RunArena stages per-slot arenas from it,
// par/psort/psel/plist/pgraph draw kernel temporaries, pipeline
// recycles chunk buffers, and serve's requests inherit it through
// their Options. The repro facade exposes it as NewScratchPool/
// ScratchOff.
package scratch

package scratch

import (
	"math/bits"
	"reflect"
	"sync"
	"sync/atomic"
	"unsafe"
)

const (
	minClassBytes = 64
	// numClasses spans 64 B .. 64 MiB in power-of-two steps.
	numClasses = 21
	// maxClassBytes is the largest pooled request; bigger ones bypass.
	maxClassBytes = minClassBytes << (numClasses - 1)
	// largeClass is the first class handled by the global large list
	// rather than the per-shard lists (1 MiB).
	largeClass = 14
	// smallCap bounds slabs kept per (shard, class).
	smallCap = 8
	// largeBytesCap bounds the bytes parked across all large classes.
	largeBytesCap = 256 << 20
	nshards       = 16
)

// slab is one pooled allocation: a pointer-free byte block of exactly
// one size class, plus the generation stamp that invalidates handles.
type slab struct {
	pool  *Pool
	mem   []byte
	class int
	gen   atomic.Uint32
	next  *slab
}

// Handle names one outstanding Get for the matching Put. The zero
// Handle (from a bypassed Get) is valid and Put ignores it.
type Handle struct {
	s   *slab
	gen uint32
}

// Pooled reports whether the buffer came from the pool (false means
// the request bypassed to the ordinary allocator).
func (h Handle) Pooled() bool { return h.s != nil }

type shard struct {
	mu   sync.Mutex
	free [largeClass]struct {
		head *slab
		n    int
	}
	_ [64]byte // avoid false sharing between shard mutexes
}

// Pool is a size-class buffer pool. The zero value is not usable;
// use Default, New, or the process-wide Off sentinel.
type Pool struct {
	off    bool
	shards [nshards]shard

	largeMu    sync.Mutex
	large      [numClasses]*slab
	largeBytes int

	arenaMu   sync.Mutex
	arenaFree []*Arena

	gets     atomic.Int64
	hits     atomic.Int64
	misses   atomic.Int64
	bypasses atomic.Int64
	puts     atomic.Int64
	drops    atomic.Int64
	live     atomic.Int64
	pooled   atomic.Int64
}

// New creates an empty pool.
func New() *Pool { return &Pool{} }

// Off is the disabled pool: every Get falls through to the ordinary
// allocator (and Put is a no-op), reinstating the allocate-per-call
// behavior as a measurable baseline (cmd/parbench -scratch=off).
var Off = &Pool{off: true}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the process-wide shared pool, which every kernel
// uses unless par.Options.Scratch pins another.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = New() })
	return defaultPool
}

// Stats is a snapshot of a pool's counters. Hits+Misses+Bypasses ==
// Gets; BytesLive tracks pooled bytes currently out on loan and
// BytesPooled the bytes parked in free lists.
type Stats struct {
	Gets     int64 // all Get calls
	Hits     int64 // served by reusing a pooled slab
	Misses   int64 // pooled request that had to allocate a new slab
	Bypasses int64 // ineligible type/size or disabled pool
	Puts     int64 // buffers returned
	Drops    int64 // returned slabs released to the GC (caps reached)
	// BytesLive is pooled bytes currently out on loan (gauge).
	BytesLive int64
	// BytesPooled is bytes parked in free lists, ready for reuse (gauge).
	BytesPooled int64
}

// Stats returns a snapshot of the pool's counters, the allocator-side
// companion to the executor's steal counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Gets:        p.gets.Load(),
		Hits:        p.hits.Load(),
		Misses:      p.misses.Load(),
		Bypasses:    p.bypasses.Load(),
		Puts:        p.puts.Load(),
		Drops:       p.drops.Load(),
		BytesLive:   p.live.Load(),
		BytesPooled: p.pooled.Load(),
	}
}

// elemInfo reports the element size of T and whether []T may be carved
// from a pooled pointer-free slab. Only plain scalar kinds qualify:
// anything that can hold a pointer must stay on the ordinary heap so
// the garbage collector can see it.
func elemInfo[T any]() (size uintptr, ok bool) {
	t := reflect.TypeOf((*T)(nil)).Elem()
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Uintptr, reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128:
		return t.Size(), true
	}
	return 0, false
}

// classFor returns the size class covering a request of b bytes.
func classFor(b int) int {
	if b <= minClassBytes {
		return 0
	}
	return bits.Len(uint(b-1)) - 6
}

func classBytes(c int) int { return minClassBytes << c }

// shardIdx picks a free-list shard from the caller's stack address — a
// cheap goroutine-local hint that spreads concurrent traffic across
// the shard mutexes without any goroutine identity API. The 64 KiB
// granularity keeps one goroutine's frames (and thus its Get/Put
// pairs) on one shard at any call depth; distinct goroutines' stacks
// land in distinct regions with high probability.
func shardIdx() int {
	var x byte
	return int((uintptr(unsafe.Pointer(&x)) >> 16) % nshards)
}

// Get returns a []T of length n (with any extra slab capacity exposed
// via cap) and the Handle to Put it back with. Contents are
// unspecified unless the request bypassed the pool. p == nil means
// Default().
func Get[T any](p *Pool, n int) ([]T, Handle) {
	return get[T](p, n, n, false)
}

// GetZeroed is Get with the first n elements cleared.
func GetZeroed[T any](p *Pool, n int) ([]T, Handle) {
	return get[T](p, n, n, true)
}

// GetCap is Get returning a slice of length n and capacity at least c
// (for append-style use where the bound is known).
func GetCap[T any](p *Pool, n, c int) ([]T, Handle) {
	if c < n {
		c = n
	}
	return get[T](p, n, c, false)
}

func get[T any](p *Pool, n, c int, zero bool) ([]T, Handle) {
	if p == nil {
		p = Default()
	}
	if n < 0 || c < n {
		panic("scratch: Get with negative or inconsistent length")
	}
	p.gets.Add(1)
	sz, podOK := elemInfo[T]()
	bytes := 0
	if podOK && c > 0 {
		if c > int(uintptr(maxClassBytes)/sz) {
			podOK = false // request larger than the largest class
		} else {
			bytes = c * int(sz)
		}
	}
	if p.off || !podOK || c == 0 {
		p.bypasses.Add(1)
		return make([]T, n, c), Handle{}
	}
	class := classFor(bytes)
	s := p.take(class)
	if s == nil {
		p.misses.Add(1)
		s = &slab{pool: p, mem: make([]byte, classBytes(class)), class: class}
	} else {
		p.hits.Add(1)
	}
	p.live.Add(int64(classBytes(class)))
	buf := unsafe.Slice((*T)(unsafe.Pointer(unsafe.SliceData(s.mem))), uintptr(len(s.mem))/sz)[:n]
	if zero {
		clear(buf)
	}
	return buf, Handle{s: s, gen: s.gen.Load()}
}

// take pops a free slab of the class, or returns nil.
func (p *Pool) take(class int) *slab {
	if class >= largeClass {
		p.largeMu.Lock()
		s := p.large[class]
		if s != nil {
			p.large[class] = s.next
			p.largeBytes -= classBytes(class)
		}
		p.largeMu.Unlock()
		if s != nil {
			p.pooled.Add(-int64(classBytes(class)))
			s.next = nil
		}
		return s
	}
	sh := &p.shards[shardIdx()]
	sh.mu.Lock()
	f := &sh.free[class]
	s := f.head
	if s != nil {
		f.head = s.next
		f.n--
	}
	sh.mu.Unlock()
	if s != nil {
		p.pooled.Add(-int64(classBytes(class)))
		s.next = nil
	}
	return s
}

// Put returns a buffer to its pool. The zero Handle (a bypassed Get)
// is a no-op. Putting the same Handle twice, or a handle whose buffer
// an Arena already released, panics: the generation stamp recorded at
// Get time no longer matches the slab's.
func Put(h Handle) {
	s := h.s
	if s == nil {
		return
	}
	if !s.gen.CompareAndSwap(h.gen, h.gen+1) {
		panic("scratch: Put of stale handle (double Put or use after Release)")
	}
	p := s.pool
	p.puts.Add(1)
	p.live.Add(-int64(classBytes(s.class)))
	p.park(s)
}

// Check panics if h has already been Put (or released); it is the
// debugging hook for asserting a retained buffer is still owned.
func Check(h Handle) {
	if h.s != nil && h.s.gen.Load() != h.gen {
		panic("scratch: use of buffer after Put")
	}
}

// park returns a slab to a free list, or drops it for the GC when the
// class or byte caps are reached.
func (p *Pool) park(s *slab) {
	cb := classBytes(s.class)
	if s.class >= largeClass {
		p.largeMu.Lock()
		if p.largeBytes+cb > largeBytesCap {
			p.largeMu.Unlock()
			p.drops.Add(1)
			return
		}
		s.next = p.large[s.class]
		p.large[s.class] = s
		p.largeBytes += cb
		p.largeMu.Unlock()
		p.pooled.Add(int64(cb))
		return
	}
	sh := &p.shards[shardIdx()]
	sh.mu.Lock()
	f := &sh.free[s.class]
	if f.n >= smallCap {
		sh.mu.Unlock()
		p.drops.Add(1)
		return
	}
	s.next = f.head
	f.head = s
	f.n++
	sh.mu.Unlock()
	p.pooled.Add(int64(cb))
}

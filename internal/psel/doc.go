// Package psel implements the selection (k-th smallest) case study: a
// parallel quickselect built from the library's own primitives —
// parallel count to size the partitions, parallel pack to materialize
// the surviving side — against the sequential in-place quickselect.
//
// Selection is the methodology's "reduction-heavy divide and conquer"
// exhibit: unlike sorting, only one side of each partition survives, so
// total work is expected O(n) and the parallel version's extra passes
// (count + pack = 2 sweeps per round vs quickselect's 1) must be bought
// back by parallel bandwidth. It is also the cleanest consumer of the
// Pack primitive, which is why the case study exists: the methodology
// says primitives earn their place by powering whole algorithms.
//
// Layering: psel consumes par (count/pack), scratch (ping-pong
// buffers) and rng (pivots); it feeds core's selection
// experiments, pipeline's TopK pruning, the serve runtime's
// Select requests and the repro facade.
package psel

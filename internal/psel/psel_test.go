package psel

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/par"
)

var opts = par.Options{Procs: 4, Grain: 64}

func TestSelectMatchesSort(t *testing.T) {
	for _, d := range gen.Distributions {
		xs := gen.Ints(20000, d, 3)
		sorted := append([]int64(nil), xs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, k := range []int{0, 1, 100, 9999, 19998, 19999} {
			if got := Select(xs, k, opts); got != sorted[k] {
				t.Fatalf("%v k=%d: Select = %d, want %d", d, k, got, sorted[k])
			}
			if got := SelectSeq(xs, k); got != sorted[k] {
				t.Fatalf("%v k=%d: SelectSeq = %d, want %d", d, k, got, sorted[k])
			}
		}
	}
}

func TestSelectDoesNotMutate(t *testing.T) {
	xs := gen.Ints(10000, gen.Uniform, 5)
	before := append([]int64(nil), xs...)
	Select(xs, 5000, opts)
	SelectSeq(xs, 5000)
	for i := range before {
		if xs[i] != before[i] {
			t.Fatalf("input mutated at %d", i)
		}
	}
}

func TestMedian(t *testing.T) {
	xs := []int64{5, 1, 9, 3, 7}
	if got := Median(xs, opts); got != 5 {
		t.Fatalf("Median = %d", got)
	}
	even := []int64{4, 1, 3, 2}
	if got := Median(even, opts); got != 2 { // lower median
		t.Fatalf("even Median = %d", got)
	}
}

func TestSelectPanicsOutOfRange(t *testing.T) {
	for _, k := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic for k=%d", k)
				}
			}()
			Select([]int64{1, 2, 3}, k, opts)
		}()
	}
}

func TestSelectSmallSlices(t *testing.T) {
	if Select([]int64{42}, 0, opts) != 42 {
		t.Fatal("singleton")
	}
	if Select([]int64{2, 1}, 0, opts) != 1 || Select([]int64{2, 1}, 1, opts) != 2 {
		t.Fatal("pair")
	}
}

func TestSelectManyDuplicates(t *testing.T) {
	xs := make([]int64, 50000)
	for i := range xs {
		xs[i] = int64(i % 3)
	}
	// 0 repeated ~16667 times, etc.
	if got := Select(xs, 0, opts); got != 0 {
		t.Fatalf("k=0: %d", got)
	}
	if got := Select(xs, 20000, opts); got != 1 {
		t.Fatalf("k=20000: %d", got)
	}
	if got := Select(xs, 49999, opts); got != 2 {
		t.Fatalf("k max: %d", got)
	}
}

func TestSelectQuick(t *testing.T) {
	f := func(raw []int64, kSeed uint16, procs uint8) bool {
		if len(raw) == 0 {
			return true
		}
		k := int(kSeed) % len(raw)
		sorted := append([]int64(nil), raw...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		got := Select(raw, k, par.Options{Procs: int(procs%8) + 1, Grain: 8})
		return got == sorted[k]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectLargeCrossesParallelPath(t *testing.T) {
	// Above the 4096 cutoff the parallel count/pack path runs.
	xs := gen.Ints(1<<17, gen.Zipf, 11)
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, k := range []int{0, 1 << 16, 1<<17 - 1} {
		if got := Select(xs, k, opts); got != sorted[k] {
			t.Fatalf("k=%d: %d != %d", k, got, sorted[k])
		}
	}
}

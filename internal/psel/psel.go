package psel

import (
	"repro/internal/adapt"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/scratch"
)

// Adaptive call sites. Select keeps Options.Adaptive set on its inner
// primitives rather than deciding once up front: the surviving side
// shrinks geometrically across rounds, so the count and pack passes
// each want a per-size-class answer (late rounds converge to serial
// while early rounds stay parallel). The named sites keep the two
// phases' learned state apart.
var (
	siteSelectCount = adapt.NewSite("psel.Select.count", adapt.KindWorkers)
	siteSelectPack  = adapt.NewSite("psel.Select.pack", adapt.KindWorkers)
)

// Select returns the k-th smallest element of xs (k is 0-based). It does
// not modify xs. It panics if k is out of range.
//
// Each partitioning round packs the surviving side into one of two
// scratch-pooled ping-pong buffers (par.PackInto), so a Select call
// allocates nothing at steady state no matter how many rounds it runs.
func Select(xs []int64, k int, opts par.Options) int64 {
	if k < 0 || k >= len(xs) {
		panic("psel: k out of range")
	}
	if len(xs) <= 4096 {
		// Upfront sequential path, before the partition loop's pack
		// closure exists: the closure captures cur by reference, which
		// would move it to the heap and cost an allocation even for
		// inputs that never partition (the serve batch slot's common
		// case, which must stay at 0 allocs/op).
		a := scratch.AcquireArena(opts.ScratchPool())
		defer a.Release()
		buf := scratch.Make[int64](a, len(xs))
		copy(buf, xs)
		return quickselect(buf, k)
	}
	a := scratch.AcquireArena(opts.ScratchPool())
	defer a.Release()
	// cur aliases xs until the first pack; after that it lives in the
	// ping-pong buffers, which double as the mutable quickselect copy.
	cur := xs
	var ping, pong []int64
	owned := false
	// The pivot rng is built lazily: inputs at or below the quickselect
	// cutoff never partition, and allocating an unused rng would break
	// the serve batch path's zero-allocation steady state.
	var r *rng.Rand
	countOpts := opts
	countOpts.Site = siteSelectCount
	packOpts := opts
	packOpts.Site = siteSelectPack
	pack := func(pred func(int64) bool) {
		if ping == nil {
			ping = scratch.Make[int64](a, len(xs))
			pong = scratch.Make[int64](a, len(xs))
		}
		n := par.PackInto(ping, cur, packOpts, pred)
		cur = ping[:n]
		ping, pong = pong, ping
		owned = true
	}
	for {
		n := len(cur)
		if n <= 4096 {
			buf := cur
			if !owned {
				buf = scratch.Make[int64](a, n)
				copy(buf, cur)
			}
			return quickselect(buf, k)
		}
		if r == nil {
			r = rng.New(uint64(len(xs))*0x9E3779B9 + uint64(k) + 1)
		}
		pivot := medianOfRandom(cur, r)
		less := par.Count(n, countOpts, func(i int) bool { return cur[i] < pivot })
		equal := par.Count(n, countOpts, func(i int) bool { return cur[i] == pivot })
		switch {
		case k < less:
			pack(func(v int64) bool { return v < pivot })
		case k < less+equal:
			return pivot
		default:
			pack(func(v int64) bool { return v > pivot })
			k -= less + equal
		}
	}
}

// Median returns the lower median of xs.
func Median(xs []int64, opts par.Options) int64 {
	return Select(xs, (len(xs)-1)/2, opts)
}

// medianOfRandom picks the median of 9 random elements — cheap insurance
// against adversarial pivots without a full median-of-medians pass.
func medianOfRandom(xs []int64, r *rng.Rand) int64 {
	var s [9]int64
	for i := range s {
		s[i] = xs[r.Intn(len(xs))]
	}
	// Insertion sort of 9 elements.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[4]
}

// quickselect is the sequential in-place baseline (Hoare partition with
// random pivots). It mutates xs. Pivots come from an inline LCG rather
// than an rng.Rand so the hot small-input path allocates nothing.
func quickselect(xs []int64, k int) int64 {
	state := uint64(len(xs)) + 7
	lo, hi := 0, len(xs)-1
	for {
		if lo == hi {
			return xs[lo]
		}
		state = state*6364136223846793005 + 1442695040888963407
		p := xs[lo+int((state>>33)%uint64(hi-lo+1))]
		i, j := lo, hi
		for i <= j {
			for xs[i] < p {
				i++
			}
			for xs[j] > p {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return xs[k]
		}
	}
}

// SelectSeq is the exported sequential baseline: k-th smallest without
// parallel primitives (copies xs, then in-place quickselect).
func SelectSeq(xs []int64, k int) int64 {
	if k < 0 || k >= len(xs) {
		panic("psel: k out of range")
	}
	buf := append([]int64(nil), xs...)
	return quickselect(buf, k)
}

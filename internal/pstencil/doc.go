// Package pstencil implements the iterative-stencil case study: the
// 5-point Jacobi relaxation parallelized by row bands.
//
// Stencils are the memory-bound, synchronization-heavy end of the case
// study spectrum: each sweep reads and writes the whole grid (arithmetic
// intensity ~1 flop/word) and every iteration ends in a barrier, so the
// kernel measures how well a machine amortizes barrier latency against
// bandwidth — the same w vs. l tension the BSP model expresses.
// Experiment E8 runs the strong-scaling sweep.
//
// Layering: pstencil consumes gen (the Grid type) and par (sweep
// loops); it feeds core's stencil experiments and the repro
// facade (Jacobi).
package pstencil

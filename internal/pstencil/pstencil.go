package pstencil

import (
	"math"

	"repro/internal/adapt"
	"repro/internal/gen"
	"repro/internal/par"
)

// siteSweep keys the row-band loop every Jacobi sweep runs; with
// Options.Adaptive set, the controller learns the band schedule per
// grid magnitude and sheds the per-sweep fork/join under load.
var siteSweep = adapt.NewSite("pstencil.sweep", adapt.KindRange)

// Jacobi runs iters synchronous sweeps of the 5-point stencil over g's
// interior, with row bands distributed across workers, and returns the
// final grid. Double buffering makes each sweep a deterministic,
// race-free PRAM step; boundaries are Dirichlet.
func Jacobi(g *gen.Grid, iters int, opts par.Options) *gen.Grid {
	cur := g.Clone()
	next := g.Clone()
	n := g.N
	for it := 0; it < iters; it++ {
		sweep(cur, next, n, opts)
		cur, next = next, cur
	}
	return cur
}

func sweep(cur, next *gen.Grid, n int, opts par.Options) {
	if opts.Site == nil {
		opts.Site = siteSweep
	}
	par.ForRange(n-2, opts, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			i := r + 1 // interior rows are 1..n-2
			up := cur.Data[(i-1)*n:]
			mid := cur.Data[i*n:]
			down := cur.Data[(i+1)*n:]
			out := next.Data[i*n:]
			for j := 1; j < n-1; j++ {
				out[j] = 0.25 * (up[j] + down[j] + mid[j-1] + mid[j+1])
			}
		}
	})
}

// JacobiToConvergence iterates until the maximum cell change in a sweep
// falls below tol or maxIters is reached; it returns the grid and the
// number of sweeps executed. The residual is computed with a parallel
// max-reduction, demonstrating primitive composition.
func JacobiToConvergence(g *gen.Grid, tol float64, maxIters int, opts par.Options) (*gen.Grid, int) {
	cur := g.Clone()
	next := g.Clone()
	n := g.N
	for it := 1; it <= maxIters; it++ {
		sweep(cur, next, n, opts)
		resid := par.Reduce(n-2, opts, 0.0, math.Max, func(r int) float64 {
			i := r + 1
			m := 0.0
			for j := 1; j < n-1; j++ {
				d := math.Abs(next.Data[i*n+j] - cur.Data[i*n+j])
				if d > m {
					m = d
				}
			}
			return m
		})
		cur, next = next, cur
		if resid < tol {
			return cur, it
		}
	}
	return cur, maxIters
}

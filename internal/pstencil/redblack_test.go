package pstencil

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/par"
)

func TestGaussSeidelRBConverges(t *testing.T) {
	g := gen.HotPlateGrid(33)
	out, iters := GaussSeidelRBToConvergence(g, 1e-8, 100000, par.Options{Procs: 4, Grain: 1})
	if iters >= 100000 {
		t.Fatal("did not converge")
	}
	if math.Abs(out.At(16, 16)-25) > 1 {
		t.Fatalf("center = %v, want ~25", out.At(16, 16))
	}
}

func TestGaussSeidelConvergesFasterThanJacobi(t *testing.T) {
	// The headline property: red-black Gauss–Seidel needs roughly half
	// the sweeps of Jacobi to the same tolerance.
	g := gen.HotPlateGrid(33)
	opts := par.Options{Procs: 2, Grain: 4}
	_, jIters := JacobiToConvergence(g, 1e-6, 100000, opts)
	_, gsIters := GaussSeidelRBToConvergence(g, 1e-6, 100000, opts)
	if gsIters >= jIters {
		t.Fatalf("Gauss-Seidel (%d sweeps) not faster than Jacobi (%d)", gsIters, jIters)
	}
	if float64(gsIters) > 0.7*float64(jIters) {
		t.Fatalf("Gauss-Seidel %d sweeps vs Jacobi %d: expected ~2x gain", gsIters, jIters)
	}
}

func TestGaussSeidelRBMatchesSequentialOrder(t *testing.T) {
	// The red-black update order is deterministic regardless of worker
	// count (all cells of one color are independent).
	g := gen.HotPlateGrid(17)
	a := GaussSeidelRB(g, 25, par.Options{Procs: 1})
	b := GaussSeidelRB(g, 25, par.Options{Procs: 8, Grain: 1})
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > 1e-14 {
			t.Fatalf("worker count changed result at cell %d", i)
		}
	}
}

func TestGaussSeidelRBBoundaryFixed(t *testing.T) {
	g := gen.HotPlateGrid(9)
	out := GaussSeidelRB(g, 50, par.Options{Procs: 4, Grain: 1})
	for j := 0; j < 9; j++ {
		if out.At(0, j) != 100 || out.At(8, j) != 0 {
			t.Fatal("boundary modified")
		}
	}
	// Input untouched.
	if g.At(4, 4) != 0 {
		t.Fatal("input mutated")
	}
}

func TestGaussSeidelSameFixpointAsJacobi(t *testing.T) {
	// Both methods solve the same linear system; converged solutions
	// must agree.
	g := gen.HotPlateGrid(17)
	opts := par.Options{Procs: 4, Grain: 2}
	ja, _ := JacobiToConvergence(g, 1e-10, 200000, opts)
	gs, _ := GaussSeidelRBToConvergence(g, 1e-10, 200000, opts)
	for i := range ja.Data {
		if math.Abs(ja.Data[i]-gs.Data[i]) > 1e-5 {
			t.Fatalf("fixpoints differ at cell %d: %v vs %v", i, ja.Data[i], gs.Data[i])
		}
	}
}

package pstencil

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/seq"
)

func TestJacobiMatchesSequential(t *testing.T) {
	for _, n := range []int{4, 9, 33, 64} {
		for _, iters := range []int{0, 1, 7, 50} {
			for _, p := range []int{1, 2, 4} {
				g := gen.HotPlateGrid(n)
				want := seq.Jacobi(g, iters)
				got := Jacobi(g, iters, par.Options{Procs: p, Grain: 1})
				for i := range want.Data {
					if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
						t.Fatalf("n=%d iters=%d p=%d: cell %d differs", n, iters, p, i)
					}
				}
			}
		}
	}
}

func TestJacobiPreservesBoundary(t *testing.T) {
	g := gen.HotPlateGrid(17)
	out := Jacobi(g, 100, par.Options{Procs: 4, Grain: 1})
	for j := 0; j < 17; j++ {
		if out.At(0, j) != 100 {
			t.Fatalf("top boundary changed at %d", j)
		}
		if out.At(16, j) != 0 {
			t.Fatalf("bottom boundary changed at %d", j)
		}
	}
}

func TestJacobiInputUntouched(t *testing.T) {
	g := gen.HotPlateGrid(9)
	before := append([]float64(nil), g.Data...)
	Jacobi(g, 10, par.Options{Procs: 2})
	for i := range before {
		if g.Data[i] != before[i] {
			t.Fatal("Jacobi mutated its input grid")
		}
	}
}

func TestJacobiToConvergence(t *testing.T) {
	g := gen.HotPlateGrid(17)
	out, iters := JacobiToConvergence(g, 1e-7, 100000, par.Options{Procs: 4, Grain: 1})
	if iters >= 100000 {
		t.Fatal("did not converge")
	}
	// Converged solution of the discrete Laplace problem: center ~25.
	if math.Abs(out.At(8, 8)-25) > 1 {
		t.Fatalf("center = %v, want ~25", out.At(8, 8))
	}
	// Tighter tolerance must not take fewer iterations.
	_, iters2 := JacobiToConvergence(g, 1e-9, 100000, par.Options{Procs: 4, Grain: 1})
	if iters2 < iters {
		t.Fatalf("tighter tolerance converged faster: %d < %d", iters2, iters)
	}
}

func TestJacobiMaximumPrinciple(t *testing.T) {
	// Interior values must stay within boundary extremes (discrete
	// maximum principle for the Laplace operator).
	g := gen.HotPlateGrid(21)
	out := Jacobi(g, 500, par.Options{Procs: 4, Grain: 1})
	for i := 1; i < 20; i++ {
		for j := 1; j < 20; j++ {
			v := out.At(i, j)
			if v < 0 || v > 100 {
				t.Fatalf("cell (%d,%d) = %v violates maximum principle", i, j, v)
			}
		}
	}
}

package pstencil

import (
	"math"

	"repro/internal/gen"
	"repro/internal/par"
)

// GaussSeidelRB runs iters sweeps of red-black Gauss–Seidel relaxation:
// each sweep updates the "red" cells ((i+j) even) from current values,
// then the "black" cells from the just-updated reds. Within a color all
// updates are independent, so each half-sweep parallelizes exactly like
// Jacobi — but information propagates two cells per sweep instead of
// one, roughly halving the iteration count to a given tolerance. The
// Jacobi-vs-red-black pair is the classic "same arithmetic, different
// dependency structure" ablation of the stencil case study.
//
// The relaxation is performed in place on a clone of g; boundaries are
// Dirichlet.
func GaussSeidelRB(g *gen.Grid, iters int, opts par.Options) *gen.Grid {
	cur := g.Clone()
	n := g.N
	for it := 0; it < iters; it++ {
		halfSweep(cur, n, 0, opts) // red
		halfSweep(cur, n, 1, opts) // black
	}
	return cur
}

// halfSweep updates interior cells with (i+j)%2 == color in place.
func halfSweep(cur *gen.Grid, n, color int, opts par.Options) {
	par.ForRange(n-2, opts, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			i := r + 1
			row := cur.Data[i*n:]
			up := cur.Data[(i-1)*n:]
			down := cur.Data[(i+1)*n:]
			jStart := 1 + ((i + 1 + color) % 2)
			for j := jStart; j < n-1; j += 2 {
				row[j] = 0.25 * (up[j] + down[j] + row[j-1] + row[j+1])
			}
		}
	})
}

// GaussSeidelRBToConvergence iterates until the max change of a full
// sweep falls below tol or maxIters is reached, returning the grid and
// sweep count — the comparand for JacobiToConvergence in the ablation.
func GaussSeidelRBToConvergence(g *gen.Grid, tol float64, maxIters int, opts par.Options) (*gen.Grid, int) {
	cur := g.Clone()
	prev := g.Clone()
	n := g.N
	for it := 1; it <= maxIters; it++ {
		copy(prev.Data, cur.Data)
		halfSweep(cur, n, 0, opts)
		halfSweep(cur, n, 1, opts)
		resid := par.Reduce(n-2, opts, 0.0, math.Max, func(r int) float64 {
			i := r + 1
			m := 0.0
			for j := 1; j < n-1; j++ {
				d := math.Abs(cur.Data[i*n+j] - prev.Data[i*n+j])
				if d > m {
					m = d
				}
			}
			return m
		})
		if resid < tol {
			return cur, it
		}
	}
	return cur, maxIters
}

package metatest

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/pgraph"
)

// relabel returns g with vertex v renamed to perm[v] (edges and
// weights carried over).
func relabel(g *graph.Graph, perm []int) *graph.Graph {
	edges := g.Edges()
	out := make([]graph.Edge, len(edges))
	for i, e := range edges {
		out[i] = graph.Edge{U: perm[e.U], V: perm[e.V], W: e.W}
	}
	return graph.MustBuild(g.N(), out, g.Weighted())
}

// testGraphs builds the graph classes under test at metamorphic sizes.
func testGraphs(quick bool) []struct {
	name string
	g    *graph.Graph
} {
	scale := 10
	if quick {
		scale = 8
	}
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"er", gen.ErdosRenyi(1<<scale, 8, false, 5)},
		{"rmat", gen.RMAT(scale, 8, false, 6)}, // skewed degrees, multi-edges
		{"grid", gen.Grid2D(1<<(scale/2), 1<<(scale/2), false, 7)},
		{"tree", gen.RandomTree(1<<scale, false, 8)},
		{"tiny", gen.ErdosRenyi(3, 1, false, 9)},
	}
}

// TestMetaBFSRelabeling: hop distances are label-equivariant —
// BFS(π(g), π(src))[π(v)] == BFS(g, src)[v] for every vertex.
func TestMetaBFSRelabeling(t *testing.T) {
	graphs := testGraphs(testing.Short())
	forEach(t, smallMatrix(), func(t *testing.T, opts par.Options) {
		for _, tc := range graphs {
			n := tc.g.N()
			perm := permutation(n, uint64(n)*13+1)
			rg := relabel(tc.g, perm)
			src := 0
			d1 := pgraph.BFS(tc.g, src, opts)
			d2 := pgraph.BFS(rg, perm[src], opts)
			for v := 0; v < n; v++ {
				if d2[perm[v]] != d1[v] {
					t.Fatalf("%s: BFS dist of relabeled %d->%d = %d, want %d",
						tc.name, v, perm[v], d2[perm[v]], d1[v])
				}
			}
		}
	})
}

// TestMetaBFSHybridRelabeling extends the relation to the
// direction-optimizing BFS (its bottom-up sweeps visit vertices in a
// different order, so equivariance is a real constraint).
func TestMetaBFSHybridRelabeling(t *testing.T) {
	graphs := testGraphs(true)
	forEach(t, smallMatrix(), func(t *testing.T, opts par.Options) {
		for _, tc := range graphs {
			n := tc.g.N()
			perm := permutation(n, uint64(n)*17+2)
			rg := relabel(tc.g, perm)
			d1 := pgraph.BFSHybrid(tc.g, 0, 14, opts)
			d2 := pgraph.BFSHybrid(rg, perm[0], 14, opts)
			for v := 0; v < n; v++ {
				if d2[perm[v]] != d1[v] {
					t.Fatalf("%s: hybrid BFS dist of %d = %d after relabel, want %d",
						tc.name, v, d2[perm[v]], d1[v])
				}
			}
		}
	})
}

// samePartitionUnderPerm checks that two labelings induce the same
// partition modulo the permutation: l1[u] == l1[v] iff
// l2[perm[u]] == l2[perm[v]], via a canonical bijection check.
func samePartitionUnderPerm(t *testing.T, what string, l1, l2 []int32, perm []int) {
	t.Helper()
	fwd := map[int32]int32{}
	rev := map[int32]int32{}
	for v := range l1 {
		a, b := l1[v], l2[perm[v]]
		if x, ok := fwd[a]; ok && x != b {
			t.Fatalf("%s: label %d maps to both %d and %d (partition split)", what, a, x, b)
		}
		if x, ok := rev[b]; ok && x != a {
			t.Fatalf("%s: labels %d and %d merge into %d (partition coarsened)", what, a, x, b)
		}
		fwd[a] = b
		rev[b] = a
	}
}

// TestMetaCCRelabeling: the connected-component partition refines
// identically under relabeling, for both CC algorithms.
func TestMetaCCRelabeling(t *testing.T) {
	algos := []struct {
		name string
		run  func(*graph.Graph, par.Options) []int32
	}{
		{"hook", pgraph.CCHook},
		{"labelprop", pgraph.CCLabelProp},
	}
	graphs := testGraphs(testing.Short())
	for _, a := range algos {
		t.Run(a.name, func(t *testing.T) {
			forEach(t, smallMatrix(), func(t *testing.T, opts par.Options) {
				for _, tc := range graphs {
					n := tc.g.N()
					perm := permutation(n, uint64(n)*19+3)
					rg := relabel(tc.g, perm)
					l1 := a.run(tc.g, opts)
					l2 := a.run(rg, opts)
					samePartitionUnderPerm(t, fmt.Sprintf("%s/%s", a.name, tc.name), l1, l2, perm)
					if c1, c2 := pgraph.CountComponents(l1), pgraph.CountComponents(l2); c1 != c2 {
						t.Fatalf("%s/%s: %d components before relabel, %d after", a.name, tc.name, c1, c2)
					}
				}
			})
		})
	}
}

// TestMetaPageRankRelabeling: PageRank values are label-equivariant up
// to floating-point summation order; rank order is preserved for
// clearly separated values. Checked on the default matrix only (the
// kernel is schedule-deterministic per value; the matrix sweep lives
// in the cheaper tests above).
func TestMetaPageRankRelabeling(t *testing.T) {
	graphs := testGraphs(testing.Short())
	opts := par.Options{Procs: 4, SerialCutoff: 1}
	const tol = 1e-7
	for _, tc := range graphs {
		n := tc.g.N()
		perm := permutation(n, uint64(n)*23+4)
		rg := relabel(tc.g, perm)
		r1 := pgraph.PageRank(tc.g, 0.85, 1e-10, 500, opts).Ranks
		r2 := pgraph.PageRank(rg, 0.85, 1e-10, 500, opts).Ranks
		for v := 0; v < n; v++ {
			if d := math.Abs(r2[perm[v]] - r1[v]); d > tol {
				t.Fatalf("%s: rank of %d differs by %g after relabel (%g vs %g)",
					tc.name, v, d, r1[v], r2[perm[v]])
			}
		}
		// Rank-order preservation on well-separated pairs: compare the
		// max-rank vertex, which must stay the max modulo tol ties.
		best1, best2 := 0, 0
		for v := 1; v < n; v++ {
			if r1[v] > r1[best1] {
				best1 = v
			}
			if r2[v] > r2[best2] {
				best2 = v
			}
		}
		if math.Abs(r2[best2]-r2[perm[best1]]) > tol {
			t.Fatalf("%s: max-rank vertex changed under relabeling (%d vs preimage of %d)",
				tc.name, perm[best1], best2)
		}
	}
}

package metatest

import (
	"fmt"
	"testing"

	"repro/internal/kernel"
	"repro/internal/par"
	"repro/internal/rng"
)

// TestMetaRegistryKernels is the registry-derived metamorphic matrix:
// every registered kernel's declared relations × size × seed ×
// configuration. For each cell the base and mutated inputs both run
// through the dispatched entrypoint and the kernel's Relate checks
// the required output relationship — no oracle involved, so this
// catches bugs a wrong-but-consistent oracle would bless. A kernel
// registration's Meta list buys this coverage with no edits here.
func TestMetaRegistryKernels(t *testing.T) {
	matrix := smallMatrix()
	const seedCount = 3
	for _, k := range kernel.All() {
		if len(k.Meta) == 0 {
			t.Errorf("kernel %q declares no metamorphic relations", k.Name)
			continue
		}
		t.Run(k.Name, func(t *testing.T) {
			for _, rel := range k.Meta {
				t.Run(rel.Name, func(t *testing.T) {
					for _, n := range sizes() {
						for seed := uint64(0); seed < seedCount; seed++ {
							t.Run(fmt.Sprintf("n%d/seed%d", n, seed), func(t *testing.T) {
								forEach(t, matrix, func(t *testing.T, opts par.Options) {
									base := k.Gen(n, seed)
									mut := k.Gen(n, seed)
									rel.Mutate(mut, rng.New(seed*1729+uint64(n)))
									if k.Validate != nil {
										if err := k.Validate(mut); err != nil {
											t.Fatalf("mutated args invalid: %v", err)
										}
									}
									k.Run(base, opts)
									k.Run(mut, opts)
									if err := rel.Relate(base, mut); err != nil {
										t.Fatal(err)
									}
								})
							})
						}
					}
				})
			}
		})
	}
}

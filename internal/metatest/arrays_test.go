package metatest

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/psel"
	"repro/internal/psort"
)

// sorters lists the three parallel sorts under their table names.
var sorters = []struct {
	name string
	sort func([]int64, par.Options)
}{
	{"samplesort", psort.SampleSort},
	{"mergesort", psort.MergeSort},
	{"radix", psort.RadixSort},
}

// input builds a duplicate-rich workload with negative keys (radix's
// sign-flip path) and ties (stability-adjacent partition boundaries).
func input(n int, seed uint64) []int64 {
	xs := gen.Ints(n, gen.Uniform, seed)
	for i := range xs {
		xs[i] = xs[i]%4099 - 2049
	}
	return xs
}

// TestMetaSortPermutationInvariance: sort(perm(xs)) == sort(xs) for
// every sorter, size and configuration.
func TestMetaSortPermutationInvariance(t *testing.T) {
	for _, s := range sorters {
		t.Run(s.name, func(t *testing.T) {
			forEach(t, smallMatrix(), func(t *testing.T, opts par.Options) {
				for _, n := range sizes() {
					xs := input(n, uint64(n)+1)
					perm := permutation(n, uint64(n)*3+7)
					a := append([]int64(nil), xs...)
					b := permute(xs, perm)
					s.sort(a, opts)
					s.sort(b, opts)
					eqInt64(t, fmt.Sprintf("%s n=%d perm", s.name, n), b, a)
				}
			})
		})
	}
}

// TestMetaSortIdempotence: sorting a sorted array is the identity
// (and a second sort changes nothing).
func TestMetaSortIdempotence(t *testing.T) {
	for _, s := range sorters {
		t.Run(s.name, func(t *testing.T) {
			forEach(t, smallMatrix(), func(t *testing.T, opts par.Options) {
				for _, n := range sizes() {
					xs := input(n, uint64(n)+11)
					s.sort(xs, opts)
					once := append([]int64(nil), xs...)
					s.sort(xs, opts)
					eqInt64(t, fmt.Sprintf("%s n=%d idempotent", s.name, n), xs, once)
				}
			})
		})
	}
}

// TestMetaSortTranslation: sort(xs + c) == sort(xs) + c, the
// order-embedding relation every comparison (and flip-corrected radix)
// sort must satisfy exactly for integers.
func TestMetaSortTranslation(t *testing.T) {
	const shift = int64(1_000_003)
	for _, s := range sorters {
		t.Run(s.name, func(t *testing.T) {
			forEach(t, smallMatrix(), func(t *testing.T, opts par.Options) {
				for _, n := range sizes() {
					xs := input(n, uint64(n)+23)
					a := append([]int64(nil), xs...)
					b := make([]int64, n)
					for i, v := range xs {
						b[i] = v + shift
					}
					s.sort(a, opts)
					s.sort(b, opts)
					for i := range a {
						if b[i] != a[i]+shift {
							t.Fatalf("%s n=%d: sort(xs+c)[%d] = %d, want %d",
								s.name, n, i, b[i], a[i]+shift)
						}
					}
				}
			})
		})
	}
}

// TestMetaSelectPermutationInvariance: the k-th smallest is a multiset
// property — any reordering of the input must give the same answer.
func TestMetaSelectPermutationInvariance(t *testing.T) {
	forEach(t, smallMatrix(), func(t *testing.T, opts par.Options) {
		for _, n := range sizes() {
			xs := input(n, uint64(n)+31)
			perm := permutation(n, uint64(n)*5+13)
			ys := permute(xs, perm)
			for _, k := range []int{0, n / 3, n - 1} {
				a := psel.Select(xs, k, opts)
				b := psel.Select(ys, k, opts)
				if a != b {
					t.Fatalf("n=%d k=%d: Select = %d on xs but %d on perm(xs)", n, k, a, b)
				}
				if want := psel.SelectSeq(xs, k); a != want {
					t.Fatalf("n=%d k=%d: Select = %d, oracle %d", n, k, a, want)
				}
			}
		}
	})
}

// TestMetaHistogramPermutationInvariance: bucket counts are multiset
// properties.
func TestMetaHistogramPermutationInvariance(t *testing.T) {
	const buckets = 97
	bucket := func(v int64) int { return int(uint64(v) % buckets) }
	forEach(t, fullMatrix(), func(t *testing.T, opts par.Options) {
		for _, n := range sizes() {
			xs := input(n, uint64(n)+41)
			ys := permute(xs, permutation(n, uint64(n)*7+3))
			a := par.Histogram(xs, buckets, opts, bucket)
			b := par.Histogram(ys, buckets, opts, bucket)
			eqInts(t, fmt.Sprintf("n=%d histogram perm", n), b, a)
		}
	})
}

// TestMetaScanLinearity: prefix sums are linear — scan(a*xs) ==
// a*scan(xs), and translating every element by c translates scan[i]
// by (i+1)*c. Exact for int64 (wrap-around included).
func TestMetaScanLinearity(t *testing.T) {
	add := func(a, b int64) int64 { return a + b }
	forEach(t, fullMatrix(), func(t *testing.T, opts par.Options) {
		for _, n := range sizes() {
			xs := input(n, uint64(n)+53)
			base := make([]int64, n)
			par.ScanInclusive(base, xs, opts, 0, add)

			const a = int64(3)
			scaled := make([]int64, n)
			for i, v := range xs {
				scaled[i] = a * v
			}
			got := make([]int64, n)
			par.ScanInclusive(got, scaled, opts, 0, add)
			for i := range got {
				if got[i] != a*base[i] {
					t.Fatalf("n=%d: scan(a*xs)[%d] = %d, want %d", n, i, got[i], a*base[i])
				}
			}

			const c = int64(17)
			shifted := make([]int64, n)
			for i, v := range xs {
				shifted[i] = v + c
			}
			par.ScanInclusive(got, shifted, opts, 0, add)
			for i := range got {
				if want := base[i] + int64(i+1)*c; got[i] != want {
					t.Fatalf("n=%d: scan(xs+c)[%d] = %d, want %d", n, i, got[i], want)
				}
			}
		}
	})
}

// TestMetaReducePermutationAndScaling: Sum is permutation-invariant
// and commutes with scaling (exact integer arithmetic).
func TestMetaReducePermutationAndScaling(t *testing.T) {
	forEach(t, fullMatrix(), func(t *testing.T, opts par.Options) {
		for _, n := range sizes() {
			xs := input(n, uint64(n)+67)
			ys := permute(xs, permutation(n, uint64(n)*11+5))
			a := par.Sum(xs, opts)
			if b := par.Sum(ys, opts); b != a {
				t.Fatalf("n=%d: Sum(perm(xs)) = %d, want %d", n, b, a)
			}
			scaled := make([]int64, n)
			for i, v := range xs {
				scaled[i] = -9 * v
			}
			if b := par.Sum(scaled, opts); b != -9*a {
				t.Fatalf("n=%d: Sum(-9*xs) = %d, want %d", n, b, -9*a)
			}
		}
	})
}

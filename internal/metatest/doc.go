// Package metatest is the metamorphic test suite: instead of (only)
// comparing kernels against oracles on fixed inputs, it asserts the
// algebraic relations that must hold between a kernel's outputs on
// *related* inputs — properties that catch bugs no single-input oracle
// can express:
//
//   - Permutation invariance: sorting, histogramming, selection and
//     reduction must not care about input order.
//   - Scaling/translation relations: prefix sums commute with scaling;
//     translating every key translates the sorted output; both must
//     hold exactly for integers.
//   - Idempotence: sorting a sorted array is the identity.
//   - Graph relabeling: BFS distances, connected-component partitions
//     and PageRank values must be equivariant under a permutation of
//     the vertex identifiers.
//
// Like the differential suite (internal/difftest), every relation is
// checked across the configuration matrix — schedules × worker counts
// × scratch on/off × the adaptive runtime mid-exploration — because a
// metamorphic violation that only appears under one schedule is
// exactly the class of race the matrix exists to surface. The package
// contains only tests.
package metatest

package metatest

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/adapt"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/scratch"
)

// sizes is the metamorphic size axis: singleton, small, odd/prime
// (uneven block splits), and large enough to take every parallel path.
// Empty inputs are covered where the relation is defined for them.
func sizes() []int {
	large := 30_000
	if testing.Short() {
		large = 6_000
	}
	return []int{1, 5, 63, 1021, large}
}

// procCounts is the worker-count axis.
func procCounts() []int {
	g := runtime.GOMAXPROCS(0)
	if g <= 2 {
		return []int{1, 2, 4}
	}
	return []int{1, 2, g}
}

// cfg is one cell of the configuration matrix.
type cfg struct {
	name   string
	opts   par.Options
	rounds int // >1 for adaptive cells (each round may pick a new candidate)
}

// exploring returns a controller pinned mid-exploration (epsilon 1,
// never converges) so repeated rounds sample different candidates.
func exploring() *adapt.Controller {
	return adapt.New(adapt.Config{Epsilon: 1, ConvergeAfter: 1 << 30, Seed: 161803})
}

// fullMatrix: every policy × worker count × scratch mode, plus the
// adaptive mode — for the cheap array kernels.
func fullMatrix() []cfg {
	var out []cfg
	for _, p := range procCounts() {
		for _, sc := range []struct {
			name string
			pool *scratch.Pool
		}{{"scratch", nil}, {"noscratch", scratch.Off}} {
			for _, pol := range par.Policies {
				out = append(out, cfg{
					name: fmt.Sprintf("p%d/%s/%s", p, sc.name, pol),
					opts: par.Options{Procs: p, Policy: pol, Grain: 64,
						SerialCutoff: 1, Scratch: sc.pool},
					rounds: 1,
				})
			}
			out = append(out, cfg{
				name:   fmt.Sprintf("p%d/%s/adaptive", p, sc.name),
				opts:   par.Options{Procs: p, Scratch: sc.pool, Adaptive: exploring()},
				rounds: 3,
			})
		}
	}
	return out
}

// smallMatrix: trimmed axis for the expensive kernels (sorts, graphs).
func smallMatrix() []cfg {
	var out []cfg
	for _, p := range procCounts() {
		for _, pol := range []par.Policy{par.Static, par.Dynamic} {
			out = append(out, cfg{
				name:   fmt.Sprintf("p%d/%s", p, pol),
				opts:   par.Options{Procs: p, Policy: pol, Grain: 64, SerialCutoff: 1},
				rounds: 1,
			})
		}
		out = append(out, cfg{
			name:   fmt.Sprintf("p%d/noscratch", p),
			opts:   par.Options{Procs: p, Scratch: scratch.Off},
			rounds: 1,
		})
		out = append(out, cfg{
			name:   fmt.Sprintf("p%d/adaptive", p),
			opts:   par.Options{Procs: p, Adaptive: exploring()},
			rounds: 2,
		})
	}
	return out
}

// forEach runs body once per (config, round), labeled for triage.
func forEach(t *testing.T, matrix []cfg, body func(t *testing.T, opts par.Options)) {
	t.Helper()
	for _, c := range matrix {
		t.Run(c.name, func(t *testing.T) {
			for round := 0; round < c.rounds; round++ {
				body(t, c.opts)
			}
		})
	}
}

// permutation returns a deterministic pseudo-random permutation of
// [0, n) (Fisher–Yates).
func permutation(n int, seed uint64) []int {
	r := rng.New(seed)
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// permute returns xs reordered by the permutation: out[i] = xs[p[i]].
func permute(xs []int64, p []int) []int64 {
	out := make([]int64, len(xs))
	for i, j := range p {
		out[i] = xs[j]
	}
	return out
}

func eqInt64(t *testing.T, what string, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %d, want %d", what, i, got[i], want[i])
		}
	}
}

func eqInts(t *testing.T, what string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %d, want %d", what, i, got[i], want[i])
		}
	}
}

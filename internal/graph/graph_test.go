package graph

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func path(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{U: i - 1, V: i, W: float64(i)})
	}
	return MustBuild(n, edges, true)
}

func TestBuildBasic(t *testing.T) {
	g := path(5)
	if g.N() != 5 || g.M() != 4 || !g.Weighted() {
		t.Fatalf("summary %v", g)
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Fatal("degrees")
	}
	if g.MaxDegree() != 2 {
		t.Fatal("max degree")
	}
}

func TestBuildRejectsBadEndpoints(t *testing.T) {
	for _, e := range []Edge{{U: -1, V: 0}, {U: 0, V: 9}} {
		_, err := Build(3, []Edge{e}, false)
		if !errors.Is(err, ErrNodeRange) {
			t.Fatalf("edge %+v: err = %v", e, err)
		}
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustBuild(1, []Edge{{U: 0, V: 5}}, false)
}

func TestSelfLoopCountedOnce(t *testing.T) {
	g := MustBuild(2, []Edge{{U: 0, V: 0}, {U: 0, V: 1}}, false)
	if g.Degree(0) != 2 { // self-loop once + neighbor
		t.Fatalf("degree with self-loop = %d", g.Degree(0))
	}
	if g.M() != 2 {
		t.Fatalf("m = %d", g.M())
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := path(6)
	edges := g.Edges()
	if len(edges) != 5 {
		t.Fatalf("edges = %v", edges)
	}
	g2 := MustBuild(6, edges, true)
	// Same structure: compare neighbor multisets node by node.
	for v := 0; v < 6; v++ {
		if g.Degree(v) != g2.Degree(v) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
}

func TestForEdgesVisitsEachOnce(t *testing.T) {
	g := path(10)
	var total float64
	count := 0
	g.ForEdges(func(u, v int, w float64) {
		if u > v {
			t.Fatal("u > v in ForEdges")
		}
		total += w
		count++
	})
	if count != 9 || total != 45 { // 1+..+9
		t.Fatalf("count=%d total=%v", count, total)
	}
}

func TestNeighborWeightsNilForUnweighted(t *testing.T) {
	g := MustBuild(2, []Edge{{U: 0, V: 1}}, false)
	if g.NeighborWeights(0) != nil {
		t.Fatal("unweighted graph has weights")
	}
}

func TestSortAdjacencyKeepsWeightsAligned(t *testing.T) {
	g := MustBuild(4, []Edge{{U: 0, V: 3, W: 3}, {U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 2}}, true)
	g.SortAdjacency()
	nb := g.Neighbors(0)
	ws := g.NeighborWeights(0)
	for i := range nb {
		if float64(nb[i]) != ws[i] {
			t.Fatalf("weight misaligned after sort: nb=%v ws=%v", nb, ws)
		}
		if i > 0 && nb[i-1] > nb[i] {
			t.Fatal("not sorted")
		}
	}
}

func TestConnectedComponentsRefQuick(t *testing.T) {
	// Property: a path graph has one component; removing one edge makes
	// exactly two.
	f := func(sz uint8) bool {
		n := int(sz%50) + 3
		full := path(n)
		if labels := full.ConnectedComponentsRef(); !allEqual(labels) {
			return false
		}
		// Drop the middle edge.
		var edges []Edge
		full.ForEdges(func(u, v int, w float64) {
			if u != n/2 {
				edges = append(edges, Edge{U: u, V: v, W: w})
			}
		})
		cut := MustBuild(n, edges, false)
		labels := cut.ConnectedComponentsRef()
		seen := map[int]bool{}
		for _, l := range labels {
			seen[l] = true
		}
		return len(seen) == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func allEqual(xs []int) bool {
	for _, x := range xs {
		if x != xs[0] {
			return false
		}
	}
	return true
}

func TestStringSummary(t *testing.T) {
	if s := path(3).String(); !strings.Contains(s, "n=3") || !strings.Contains(s, "m=2") {
		t.Fatalf("String = %q", s)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := MustBuild(0, nil, false)
	if g.N() != 0 || g.M() != 0 || g.MaxDegree() != 0 {
		t.Fatal("empty graph accessors")
	}
	if len(g.ConnectedComponentsRef()) != 0 {
		t.Fatal("empty CC")
	}
}

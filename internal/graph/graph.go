package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Edge is an undirected edge with an optional weight.
type Edge struct {
	U, V int
	W    float64
}

// Graph is an undirected graph in CSR form. The zero value is an empty
// graph. Construct with Build or via Builder.
type Graph struct {
	offsets []int     // len n+1; neighbors of v are adj[offsets[v]:offsets[v+1]]
	adj     []int32   // neighbor ids
	weights []float64 // parallel to adj; nil for unweighted graphs
	n       int
	m       int // number of undirected edges
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Weighted reports whether the graph stores edge weights.
func (g *Graph) Weighted() bool { return g.weights != nil }

// Degree returns the degree of node v (self-loops counted once).
func (g *Graph) Degree(v int) int { return g.offsets[v+1] - g.offsets[v] }

// Neighbors returns the neighbor slice of v. The caller must not modify it.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// NeighborWeights returns the weights parallel to Neighbors(v).
// It returns nil for unweighted graphs.
func (g *Graph) NeighborWeights(v int) []float64 {
	if g.weights == nil {
		return nil
	}
	return g.weights[g.offsets[v]:g.offsets[v+1]]
}

// MaxDegree returns the maximum node degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// Edges returns all undirected edges (u <= v once each).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		ws := g.NeighborWeights(u)
		for i, v := range g.Neighbors(u) {
			if int(v) >= u {
				e := Edge{U: u, V: int(v), W: 1}
				if ws != nil {
					e.W = ws[i]
				}
				out = append(out, e)
			}
		}
	}
	return out
}

// ForEdges calls fn(u, v, w) once per undirected edge with u <= v.
func (g *Graph) ForEdges(fn func(u, v int, w float64)) {
	for u := 0; u < g.n; u++ {
		ws := g.NeighborWeights(u)
		for i, v := range g.Neighbors(u) {
			if int(v) >= u {
				w := 1.0
				if ws != nil {
					w = ws[i]
				}
				fn(u, int(v), w)
			}
		}
	}
}

// String implements fmt.Stringer with a short summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d, weighted=%v)", g.n, g.m, g.Weighted())
}

// ErrNodeRange reports an edge endpoint outside [0, n).
var ErrNodeRange = errors.New("graph: edge endpoint out of node range")

// Build constructs a CSR graph with n nodes from an edge list.
// Duplicate edges and self-loops are kept as given (generators are
// responsible for de-duplication where the model requires it). Weights are
// stored iff weighted is true.
func Build(n int, edges []Edge, weighted bool) (*Graph, error) {
	deg := make([]int, n)
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("%w: (%d,%d) with n=%d", ErrNodeRange, e.U, e.V, n)
		}
		deg[e.U]++
		if e.U != e.V {
			deg[e.V]++
		}
	}
	g := &Graph{n: n, m: len(edges)}
	g.offsets = make([]int, n+1)
	for v := 0; v < n; v++ {
		g.offsets[v+1] = g.offsets[v] + deg[v]
	}
	total := g.offsets[n]
	g.adj = make([]int32, total)
	if weighted {
		g.weights = make([]float64, total)
	}
	cursor := make([]int, n)
	copy(cursor, g.offsets[:n])
	put := func(u, v int, w float64) {
		g.adj[cursor[u]] = int32(v)
		if weighted {
			g.weights[cursor[u]] = w
		}
		cursor[u]++
	}
	for _, e := range edges {
		put(e.U, e.V, e.W)
		if e.U != e.V {
			put(e.V, e.U, e.W)
		}
	}
	return g, nil
}

// MustBuild is Build that panics on error; intended for generators whose
// edges are correct by construction.
func MustBuild(n int, edges []Edge, weighted bool) *Graph {
	g, err := Build(n, edges, weighted)
	if err != nil {
		panic(err)
	}
	return g
}

// SortAdjacency sorts each node's neighbor list in place (stable layout
// for deterministic traversal order, useful in tests).
func (g *Graph) SortAdjacency() {
	for v := 0; v < g.n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		if g.weights == nil {
			nb := g.adj[lo:hi]
			sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
			continue
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = i
		}
		nb := g.adj[lo:hi]
		ws := g.weights[lo:hi]
		sort.Slice(idx, func(i, j int) bool { return nb[idx[i]] < nb[idx[j]] })
		nb2 := make([]int32, len(nb))
		ws2 := make([]float64, len(ws))
		for i, j := range idx {
			nb2[i], ws2[i] = nb[j], ws[j]
		}
		copy(nb, nb2)
		copy(ws, ws2)
	}
}

// ConnectedComponentsRef is a simple reference DFS labelling used by tests
// to validate the parallel implementations. It returns one label per node;
// two nodes share a label iff they are connected.
func (g *Graph) ConnectedComponentsRef() []int {
	label := make([]int, g.n)
	for i := range label {
		label[i] = -1
	}
	next := 0
	stack := make([]int, 0, 64)
	for s := 0; s < g.n; s++ {
		if label[s] != -1 {
			continue
		}
		stack = append(stack[:0], s)
		label[s] = next
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(v) {
				if label[w] == -1 {
					label[w] = next
					stack = append(stack, int(w))
				}
			}
		}
		next++
	}
	return label
}

// Package graph provides a compact adjacency (CSR) graph representation
// shared by the graph case studies and workload generators.
//
// Graphs are simple, undirected, and optionally weighted. Nodes are dense
// integer identifiers 0..N-1. The CSR layout (offset array + neighbor
// array) is the standard HPC representation: it is cache-friendly for the
// sweep-style access patterns of parallel graph kernels and admits
// trivially balanced edge partitioning.
//
// Layering: graph is a leaf data-structure package (no internal
// dependencies); it feeds gen's graph generators, the sequential
// baselines in seq, the parallel graph kernels in pgraph, and the
// serve runtime's graph queries.
package graph

// Package gen generates the synthetic workloads used throughout the
// experiment suite: numeric arrays with controlled distributions, random
// linked lists for the list-ranking case study, graphs from several
// generative models, and dense matrices.
//
// Every generator takes an explicit seed so experiments are reproducible,
// a core requirement of the algorithm-engineering methodology.
//
// Layering: gen consumes rng (deterministic streams) and graph
// (CSR construction); it feeds the core experiment suite, the
// differential/metamorphic test oracles, genio's on-disk workload
// format, and the repro facade's Random* constructors.
package gen

package gen

import "repro/internal/rng"

// List is a linked list embedded in arrays, the standard representation
// for the list-ranking case study: Next[i] is the successor of node i, and
// the tail points to itself (a common PRAM convention that simplifies
// pointer jumping). Head is the first node of the list.
type List struct {
	Next []int
	Head int
}

// Len returns the number of nodes in the list.
func (l *List) Len() int { return len(l.Next) }

// Tail returns the index of the tail node (the unique i with Next[i] == i).
func (l *List) Tail() int {
	for i, n := range l.Next {
		if n == i {
			return i
		}
	}
	return -1
}

// RandomList builds a linked list of n nodes whose nodes are laid out in
// random memory order. Random layout is the interesting case for list
// ranking: it defeats prefetching and makes the sequential sweep memory
// bound, which is exactly the regime where parallel pointer jumping was
// proposed.
func RandomList(n int, seed uint64) *List {
	r := rng.New(seed)
	perm := r.Perm(n) // perm[k] = node id at list position k
	next := make([]int, n)
	for k := 0; k < n-1; k++ {
		next[perm[k]] = perm[k+1]
	}
	next[perm[n-1]] = perm[n-1] // tail self-loop
	return &List{Next: next, Head: perm[0]}
}

// OrderedList builds the trivial list 0 -> 1 -> ... -> n-1, the best case
// for the sequential sweep (perfect spatial locality).
func OrderedList(n int) *List {
	next := make([]int, n)
	for i := 0; i < n-1; i++ {
		next[i] = i + 1
	}
	next[n-1] = n - 1
	return &List{Next: next, Head: 0}
}

// RanksRef computes the reference ranks (distance from head, head = 0) by
// a straightforward traversal; used to validate parallel list ranking.
func (l *List) RanksRef() []int {
	ranks := make([]int, len(l.Next))
	v, d := l.Head, 0
	for {
		ranks[v] = d
		if l.Next[v] == v {
			break
		}
		v = l.Next[v]
		d++
	}
	return ranks
}

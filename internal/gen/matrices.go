package gen

import "repro/internal/rng"

// Matrix is a dense row-major matrix of float64, the layout assumed by the
// blocked matmul and stencil case studies.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a shared slice.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Equal reports element-wise equality within tol.
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		d := v - o.Data[i]
		if d < -tol || d > tol {
			return false
		}
	}
	return true
}

// RandomMatrix fills a rows x cols matrix with uniform values in [0,1).
func RandomMatrix(rows, cols int, seed uint64) *Matrix {
	r := rng.New(seed)
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Float64()
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Grid is a dense 2D scalar field with a one-cell halo convention: the
// boundary cells hold Dirichlet conditions and only interior cells are
// updated by the stencil kernels.
type Grid struct {
	N    int // interior+boundary side length
	Data []float64
}

// NewGrid allocates an n x n grid of zeros.
func NewGrid(n int) *Grid { return &Grid{N: n, Data: make([]float64, n*n)} }

// At returns cell (i, j).
func (g *Grid) At(i, j int) float64 { return g.Data[i*g.N+j] }

// Set assigns cell (i, j).
func (g *Grid) Set(i, j int, v float64) { g.Data[i*g.N+j] = v }

// Clone returns a deep copy.
func (g *Grid) Clone() *Grid {
	c := NewGrid(g.N)
	copy(c.Data, g.Data)
	return c
}

// HotPlateGrid builds the classic Jacobi test problem: zero interior, the
// top edge held at 100 and remaining edges at 0.
func HotPlateGrid(n int) *Grid {
	g := NewGrid(n)
	for j := 0; j < n; j++ {
		g.Set(0, j, 100)
	}
	return g
}

package gen

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// ErdosRenyi generates a G(n, m)-style random graph with approximately
// avgDeg*n/2 undirected edges, sampled uniformly without self-loops.
// Parallel duplicate edges may occur with small probability, matching the
// multigraph convention used by classic parallel CC/MST experiments.
func ErdosRenyi(n int, avgDeg float64, weighted bool, seed uint64) *graph.Graph {
	r := rng.New(seed)
	m := int(avgDeg * float64(n) / 2)
	if n < 2 {
		// No non-self-loop edge exists; the rejection loop below would
		// otherwise never terminate (found by the differential suite's
		// single-node case).
		m = 0
	}
	edges := make([]graph.Edge, 0, m)
	for len(edges) < m {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		w := 1.0
		if weighted {
			w = r.Float64() + 1e-9
		}
		edges = append(edges, graph.Edge{U: u, V: v, W: w})
	}
	return graph.MustBuild(n, edges, weighted)
}

// RMAT generates a Recursive-MATrix power-law graph (Chakrabarti, Zhan,
// Faloutsos 2004) with 2^scale nodes and edgeFactor*2^scale undirected
// edges, using the Graph500 default probabilities (a,b,c,d) =
// (0.57, 0.19, 0.19, 0.05). R-MAT graphs exhibit heavy-tailed degree
// distributions, the primary source of load imbalance in the scheduling
// ablation experiments.
func RMAT(scale int, edgeFactor int, weighted bool, seed uint64) *graph.Graph {
	const a, b, c = 0.57, 0.19, 0.19
	r := rng.New(seed)
	n := 1 << scale
	m := edgeFactor * n
	edges := make([]graph.Edge, 0, m)
	for len(edges) < m {
		u, v := 0, 0
		for bit := n >> 1; bit > 0; bit >>= 1 {
			p := r.Float64()
			switch {
			case p < a:
				// top-left quadrant: no bits set
			case p < a+b:
				v |= bit
			case p < a+b+c:
				u |= bit
			default:
				u |= bit
				v |= bit
			}
		}
		if u == v {
			continue
		}
		w := 1.0
		if weighted {
			w = r.Float64() + 1e-9
		}
		edges = append(edges, graph.Edge{U: u, V: v, W: w})
	}
	return graph.MustBuild(n, edges, weighted)
}

// Grid2D generates a rows x cols 4-neighbor mesh. Meshes are the classic
// "easy" structured input contrasting with scale-free graphs; they have
// constant degree and enormous diameter (adversarial for label-propagation
// style CC, friendly for load balancing).
func Grid2D(rows, cols int, weighted bool, seed uint64) *graph.Graph {
	r := rng.New(seed)
	n := rows * cols
	edges := make([]graph.Edge, 0, 2*n)
	id := func(i, j int) int { return i*cols + j }
	w := func() float64 {
		if !weighted {
			return 1
		}
		return r.Float64() + 1e-9
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				edges = append(edges, graph.Edge{U: id(i, j), V: id(i, j+1), W: w()})
			}
			if i+1 < rows {
				edges = append(edges, graph.Edge{U: id(i, j), V: id(i+1, j), W: w()})
			}
		}
	}
	return graph.MustBuild(n, edges, weighted)
}

// RandomTree generates a uniformly random labelled tree on n nodes via a
// random attachment process (each node i>0 attaches to a uniform earlier
// node). Trees are the extreme sparse connected input: exactly one
// component, n-1 edges, used to stress MST and CC correctness.
func RandomTree(n int, weighted bool, seed uint64) *graph.Graph {
	r := rng.New(seed)
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		u := r.Intn(v)
		w := 1.0
		if weighted {
			w = r.Float64() + 1e-9
		}
		edges = append(edges, graph.Edge{U: u, V: v, W: w})
	}
	return graph.MustBuild(n, edges, weighted)
}

// Components generates a graph made of k disjoint Erdős–Rényi clusters,
// used to validate component counting: the result has exactly k components
// provided each cluster is internally connected (avgDeg well above ln n).
func Components(k, clusterSize int, avgDeg float64, seed uint64) *graph.Graph {
	r := rng.New(seed)
	n := k * clusterSize
	var edges []graph.Edge
	for c := 0; c < k; c++ {
		base := c * clusterSize
		// Spanning path guarantees connectivity of the cluster.
		for v := 1; v < clusterSize; v++ {
			edges = append(edges, graph.Edge{U: base + v - 1, V: base + v, W: 1})
		}
		extra := int(avgDeg*float64(clusterSize)/2) - (clusterSize - 1)
		for e := 0; e < extra; e++ {
			u, v := r.Intn(clusterSize), r.Intn(clusterSize)
			if u == v {
				continue
			}
			edges = append(edges, graph.Edge{U: base + u, V: base + v, W: 1})
		}
	}
	return graph.MustBuild(n, edges, false)
}

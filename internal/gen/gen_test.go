package gen

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestIntsDistributionsShape(t *testing.T) {
	const n = 10000
	for _, d := range Distributions {
		xs := Ints(n, d, 7)
		if len(xs) != n {
			t.Fatalf("%v: length %d", d, len(xs))
		}
	}
	// Sorted is ascending; Reversed descending.
	s := Ints(n, Sorted, 1)
	r := Ints(n, Reversed, 1)
	for i := 1; i < n; i++ {
		if s[i-1] > s[i] {
			t.Fatal("Sorted not ascending")
		}
		if r[i-1] < r[i] {
			t.Fatal("Reversed not descending")
		}
	}
	if !IsSorted(s) || IsSorted(r) {
		t.Fatal("IsSorted misjudged")
	}
}

func TestIntsDeterministicPerSeed(t *testing.T) {
	a := Ints(1000, Uniform, 5)
	b := Ints(1000, Uniform, 5)
	c := Ints(1000, Uniform, 6)
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different data")
		}
		if a[i] != c[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical data")
	}
}

func TestIntsEmpty(t *testing.T) {
	for _, d := range Distributions {
		if len(Ints(0, d, 1)) != 0 {
			t.Fatalf("%v: non-empty for n=0", d)
		}
	}
}

func TestFewUniqueCardinality(t *testing.T) {
	xs := Ints(10000, FewUnique, 3)
	seen := map[int64]bool{}
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) > 16 {
		t.Fatalf("FewUnique produced %d distinct values", len(seen))
	}
}

func TestNearlySortedMostlySorted(t *testing.T) {
	xs := Ints(10000, NearlySorted, 9)
	inversions := 0
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			inversions++
		}
	}
	if inversions == 0 || inversions > 500 {
		t.Fatalf("NearlySorted has %d adjacent inversions", inversions)
	}
}

func TestZipfSkew(t *testing.T) {
	r := rng.New(1)
	z := NewZipf(r, 1.2, 1000)
	counts := map[uint64]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Head value must be far more frequent than the median value.
	if counts[0] < 20*counts[500]+1 {
		t.Fatalf("Zipf not skewed: head=%d mid=%d", counts[0], counts[500])
	}
}

func TestNewZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for s <= 1")
		}
	}()
	NewZipf(rng.New(1), 1.0, 10)
}

func TestFloat64sRange(t *testing.T) {
	for _, v := range Float64s(1000, 3) {
		if v < 0 || v >= 1 {
			t.Fatalf("out of range: %v", v)
		}
	}
}

func TestSkewedWorkTotals(t *testing.T) {
	work := SkewedWork(1000, 1<<20, 0.01, 4)
	if len(work) != 1000 {
		t.Fatal("length")
	}
	total := 0
	maxv := 0
	for _, w := range work {
		if w < 0 {
			t.Fatal("negative work")
		}
		total += w
		if w > maxv {
			maxv = w
		}
	}
	if total < 1<<19 || total > 1<<21 {
		t.Fatalf("total %d far from target", total)
	}
	// Hubs make the max much larger than the mean.
	if maxv < 10*total/1000 {
		t.Fatalf("no skew: max %d vs mean %d", maxv, total/1000)
	}
	if SkewedWork(0, 10, 0.1, 1) != nil {
		t.Fatal("n=0 should be nil")
	}
}

func TestGraphGeneratorsBasicInvariants(t *testing.T) {
	type tc struct {
		name    string
		n, m    int
		exactM  bool
		maxComp int
	}
	er := ErdosRenyi(500, 6, false, 1)
	rm := RMAT(9, 8, false, 2)
	gr := Grid2D(10, 20, false, 3)
	tr := RandomTree(300, false, 4)
	cases := []struct {
		name  string
		g     interface{ N() int }
		wantN int
	}{
		{"er", er, 500}, {"rmat", rm, 512}, {"grid", gr, 200}, {"tree", tr, 300},
	}
	for _, c := range cases {
		if c.g.N() != c.wantN {
			t.Fatalf("%s: n = %d, want %d", c.name, c.g.N(), c.wantN)
		}
	}
	if er.M() != 1500 {
		t.Fatalf("er m = %d, want 1500", er.M())
	}
	if gr.M() != 10*19+9*20 {
		t.Fatalf("grid m = %d", gr.M())
	}
	if tr.M() != 299 {
		t.Fatalf("tree m = %d", tr.M())
	}
	// Trees are connected.
	labels := tr.ConnectedComponentsRef()
	for _, l := range labels {
		if l != 0 {
			t.Fatal("tree not connected")
		}
	}
}

func TestRMATDegreeSkew(t *testing.T) {
	g := RMAT(12, 8, false, 7)
	maxd := g.MaxDegree()
	avg := float64(2*g.M()) / float64(g.N())
	if float64(maxd) < 8*avg {
		t.Fatalf("R-MAT not skewed: max degree %d vs avg %.1f", maxd, avg)
	}
}

func TestWeightedGeneratorsPositiveWeights(t *testing.T) {
	g := ErdosRenyi(200, 8, true, 9)
	g.ForEdges(func(_, _ int, w float64) {
		if w <= 0 || w > 1.1 {
			t.Fatalf("bad weight %v", w)
		}
	})
	if !g.Weighted() {
		t.Fatal("not weighted")
	}
}

func TestComponentsGenerator(t *testing.T) {
	g := Components(4, 50, 6, 10)
	labels := g.ConnectedComponentsRef()
	seen := map[int]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	if len(seen) != 4 {
		t.Fatalf("components = %d, want 4", len(seen))
	}
}

func TestMatrixBasics(t *testing.T) {
	m := RandomMatrix(3, 4, 1)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatal("shape")
	}
	m.Set(1, 2, 9.5)
	if m.At(1, 2) != 9.5 || m.Row(1)[2] != 9.5 {
		t.Fatal("At/Set/Row")
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) == -1 {
		t.Fatal("Clone aliases")
	}
	if !m.Equal(m, 0) || m.Equal(c, 0) {
		t.Fatal("Equal")
	}
	if m.Equal(NewMatrix(4, 3), 0) {
		t.Fatal("Equal ignored shape")
	}
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatal("Identity")
			}
		}
	}
}

func TestGridBasics(t *testing.T) {
	g := HotPlateGrid(5)
	for j := 0; j < 5; j++ {
		if g.At(0, j) != 100 {
			t.Fatal("top edge")
		}
		if g.At(4, j) != 0 {
			t.Fatal("bottom edge")
		}
	}
	c := g.Clone()
	c.Set(2, 2, 7)
	if g.At(2, 2) == 7 {
		t.Fatal("Clone aliases")
	}
	var sum float64
	for _, v := range g.Data {
		sum += v
	}
	if math.Abs(sum-500) > 1e-12 {
		t.Fatalf("hot plate sum = %v", sum)
	}
}

func TestListGeneratorsInvariants(t *testing.T) {
	l := RandomList(50, 2)
	ref := l.RanksRef()
	if ref[l.Head] != 0 {
		t.Fatal("head rank")
	}
	if ref[l.Tail()] != 49 {
		t.Fatal("tail rank")
	}
	o := OrderedList(5)
	if o.Head != 0 || o.Tail() != 4 {
		t.Fatal("ordered list endpoints")
	}
}

package gen

import (
	"math"
	"sort"

	"repro/internal/rng"
)

// Distribution selects the shape of generated numeric data. The sorting
// case study uses several distributions because comparison sorts, sample
// sort's splitter selection, and radix sort respond very differently to
// input order and skew.
type Distribution int

const (
	// Uniform draws keys uniformly at random over the full range.
	Uniform Distribution = iota
	// Sorted produces an already ascending array (adversarial for naive
	// quicksort pivoting, trivial for adaptive sorts).
	Sorted
	// Reversed produces a strictly descending array.
	Reversed
	// NearlySorted produces a sorted array with ~1% random swaps.
	NearlySorted
	// Zipf produces heavily skewed keys (many duplicates) following an
	// approximate Zipf(s=1.2) distribution, stressing duplicate handling.
	Zipf
	// Gaussian produces normally distributed keys around the midpoint.
	Gaussian
	// FewUnique produces keys drawn from only 16 distinct values.
	FewUnique
)

// String returns the distribution name used in experiment tables.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Sorted:
		return "sorted"
	case Reversed:
		return "reversed"
	case NearlySorted:
		return "nearly-sorted"
	case Zipf:
		return "zipf"
	case Gaussian:
		return "gaussian"
	case FewUnique:
		return "few-unique"
	default:
		return "unknown"
	}
}

// Distributions lists all supported distributions in table order.
var Distributions = []Distribution{Uniform, Sorted, Reversed, NearlySorted, Zipf, Gaussian, FewUnique}

// Ints generates n int64 keys with the given distribution and seed.
func Ints(n int, d Distribution, seed uint64) []int64 {
	r := rng.New(seed)
	out := make([]int64, n)
	if n == 0 {
		return out
	}
	switch d {
	case Uniform:
		for i := range out {
			out[i] = r.Int63()
		}
	case Sorted:
		for i := range out {
			out[i] = int64(i)
		}
	case Reversed:
		for i := range out {
			out[i] = int64(n - i)
		}
	case NearlySorted:
		for i := range out {
			out[i] = int64(i)
		}
		swaps := n / 100
		if swaps == 0 && n > 1 {
			swaps = 1
		}
		for s := 0; s < swaps; s++ {
			i, j := r.Intn(n), r.Intn(n)
			out[i], out[j] = out[j], out[i]
		}
	case Zipf:
		z := NewZipf(r, 1.2, uint64(n))
		for i := range out {
			out[i] = int64(z.Next())
		}
	case Gaussian:
		for i := range out {
			out[i] = int64(r.NormFloat64() * float64(n))
		}
	case FewUnique:
		for i := range out {
			out[i] = int64(r.Intn(16))
		}
	default:
		for i := range out {
			out[i] = r.Int63()
		}
	}
	return out
}

// Float64s generates n uniform float64 values in [0,1).
func Float64s(n int, seed uint64) []float64 {
	r := rng.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}

// Zipf samples approximately Zipf-distributed values in [0, imax) with
// exponent s > 1 using inverse-CDF sampling over the truncated
// Riemann zeta tail. It is a reproducible replacement for math/rand.Zipf
// built on our splittable generator.
type ZipfGen struct {
	r    *rng.Rand
	s    float64
	imax uint64
	// cdf inversion via Newton on the approximate continuous CDF
	oneMinusS float64
	hx0       float64
	hxm       float64
}

// NewZipf builds a Zipf sampler. s must be > 1 and imax >= 1.
func NewZipf(r *rng.Rand, s float64, imax uint64) *ZipfGen {
	if s <= 1 || imax < 1 {
		panic("gen: NewZipf requires s > 1 and imax >= 1")
	}
	z := &ZipfGen{r: r, s: s, imax: imax, oneMinusS: 1 - s}
	z.hx0 = z.h(0.5)
	z.hxm = z.h(float64(imax) + 0.5)
	return z
}

// h is the continuous approximation integral x^{-s} dx.
func (z *ZipfGen) h(x float64) float64 {
	return math.Exp(z.oneMinusS*math.Log(x)) / z.oneMinusS
}

func (z *ZipfGen) hinv(x float64) float64 {
	return math.Exp(math.Log(z.oneMinusS*x) / z.oneMinusS)
}

// Next returns the next Zipf variate in [0, imax).
func (z *ZipfGen) Next() uint64 {
	// Inverse transform on the continuous envelope; adequate fidelity for
	// workload skew (we need heavy skew, not exact zeta tail constants).
	u := z.r.Float64()
	x := z.hinv(z.hx0 + u*(z.hxm-z.hx0))
	k := uint64(x)
	if k >= z.imax {
		k = z.imax - 1
	}
	return k
}

// SkewedWork produces n per-iteration work amounts whose total is roughly
// total, with a fraction of "hub" iterations carrying most of the work.
// This models the load imbalance of scale-free inputs and drives the
// scheduling-policy ablation (experiment E10).
func SkewedWork(n int, total int, hubFraction float64, seed uint64) []int {
	if n <= 0 {
		return nil
	}
	r := rng.New(seed)
	out := make([]int, n)
	hubs := int(float64(n) * hubFraction)
	if hubs < 1 {
		hubs = 1
	}
	heavy := total / 2
	light := total - heavy
	for i := 0; i < n; i++ {
		out[i] = light / n
	}
	for h := 0; h < hubs; h++ {
		out[r.Intn(n)] += heavy / hubs
	}
	return out
}

// IsSorted reports whether xs is ascending; used by tests and the harness
// to validate sort outputs without allocating.
func IsSorted(xs []int64) bool {
	return sort.SliceIsSorted(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

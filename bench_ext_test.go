// Benchmarks for the extension experiments E15–E18 (see DESIGN.md).
package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/bsp"
	"repro/internal/gen"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/pgraph"
	"repro/internal/psel"
	"repro/internal/psort"
	"repro/internal/pstencil"
	"repro/internal/sched"
	"repro/internal/seq"
)

// BenchmarkE15WeakScaling — Figure 7: simulated-machine weak scaling.
func BenchmarkE15WeakScaling(b *testing.B) {
	const n0 = 1 << 12
	params := machine.BSPParams{G: 2, L: 2000}
	for _, p := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("scan/p=%d", p), func(b *testing.B) {
			xs := gen.Ints(n0*p, gen.Uniform, 42)
			var stats *bsp.Stats
			for i := 0; i < b.N; i++ {
				_, stats = bsp.Scan(xs, p)
			}
			params.P = p
			b.ReportMetric(stats.Cost(params), "model-ops")
		})
	}
}

// BenchmarkE16Selection — Table 9: median selection.
func BenchmarkE16Selection(b *testing.B) {
	const n = 1 << 19
	xs := gen.Ints(n, gen.Uniform, 42)
	k := (n - 1) / 2
	b.Run("seq-quickselect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			psel.SelectSeq(xs, k)
		}
		reportThroughput(b, n)
	})
	b.Run("par-select", func(b *testing.B) {
		opts := par.Options{Grain: 4096}
		for i := 0; i < b.N; i++ {
			psel.Select(xs, k, opts)
		}
		reportThroughput(b, n)
	})
	buf := make([]int64, n)
	b.Run("sort-then-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(buf, xs)
			seq.Quicksort(buf)
			_ = buf[k]
		}
		reportThroughput(b, n)
	})
}

// BenchmarkE17GraphIterative — Table 10: PageRank and triangles.
func BenchmarkE17GraphIterative(b *testing.B) {
	g := gen.RMAT(13, 8, false, 42)
	opts := par.Options{Grain: 1024}
	b.Run("pagerank", func(b *testing.B) {
		var iters int
		for i := 0; i < b.N; i++ {
			iters = pgraph.PageRank(g, 0.85, 1e-8, 200, opts).Iters
		}
		b.ReportMetric(float64(iters), "iters")
		reportThroughput(b, g.M())
	})
	b.Run("triangles", func(b *testing.B) {
		var tris int64
		for i := 0; i < b.N; i++ {
			tris = pgraph.TriangleCount(g, opts)
		}
		b.ReportMetric(float64(tris), "triangles")
		reportThroughput(b, g.M())
	})
}

// BenchmarkE18Aggregation — Figure 8: bulk-message kernels on the
// simulated machine (granularity drives the h accounting).
func BenchmarkE18Aggregation(b *testing.B) {
	const side = 48
	a := gen.RandomMatrix(side, side, 1)
	m := gen.RandomMatrix(side, side, 2)
	b.Run("matmul-panels", func(b *testing.B) {
		var stats *bsp.Stats
		for i := 0; i < b.N; i++ {
			_, stats = bsp.MatmulRowBlock(a.Data, m.Data, side, 8)
		}
		b.ReportMetric(stats.TotalH(), "model-H-words")
	})
	xs := gen.Ints(1<<12, gen.Uniform, 42)
	b.Run("samplesort-words", func(b *testing.B) {
		var stats *bsp.Stats
		for i := 0; i < b.N; i++ {
			_, stats = bsp.SampleSort(xs, 8)
		}
		b.ReportMetric(stats.TotalH(), "model-H-words")
	})
}

// BenchmarkPrimitives covers the substrate primitives individually so
// regressions localize (not tied to one experiment).
func BenchmarkPrimitives(b *testing.B) {
	xs := gen.Ints(1<<20, gen.Uniform, 42)
	opts := par.Options{Grain: 8192}
	b.Run("sum", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			par.Sum(xs, opts)
		}
		reportThroughput(b, len(xs))
	})
	dst := make([]int64, len(xs))
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			par.ScanInclusive(dst, xs, opts, 0, func(a, b int64) int64 { return a + b })
		}
		reportThroughput(b, len(xs))
	})
	flags := make([]bool, len(xs))
	for i := range flags {
		flags[i] = i%64 == 0
	}
	b.Run("segscan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			par.SegSums(dst, xs, flags, opts)
		}
		reportThroughput(b, len(xs))
	})
	b.Run("pack", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			par.Pack(xs, opts, func(v int64) bool { return v&1 == 0 })
		}
		reportThroughput(b, len(xs))
	})
	b.Run("histogram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			par.Histogram(xs, 256, opts, func(v int64) int { return int(uint64(v) >> 56) })
		}
		reportThroughput(b, len(xs))
	})
	half := len(xs) / 2
	sa := append([]int64(nil), xs[:half]...)
	sb := append([]int64(nil), xs[half:]...)
	seq.Quicksort(sa)
	seq.Quicksort(sb)
	mdst := make([]int64, len(xs))
	b.Run("merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			par.Merge(mdst, sa, sb, opts, func(x, y int64) bool { return x < y })
		}
		reportThroughput(b, len(xs))
	})
}

// BenchmarkE19Relaxation — Figure 9: Jacobi vs red-black Gauss–Seidel.
func BenchmarkE19Relaxation(b *testing.B) {
	g := gen.HotPlateGrid(65)
	opts := par.Options{Grain: 8}
	b.Run("jacobi", func(b *testing.B) {
		var iters int
		for i := 0; i < b.N; i++ {
			_, iters = pstencil.JacobiToConvergence(g, 1e-4, 1000000, opts)
		}
		b.ReportMetric(float64(iters), "sweeps")
	})
	b.Run("redblack-gs", func(b *testing.B) {
		var iters int
		for i := 0; i < b.N; i++ {
			_, iters = pstencil.GaussSeidelRBToConvergence(g, 1e-4, 1000000, opts)
		}
		b.ReportMetric(float64(iters), "sweeps")
	})
}

// BenchmarkE20StealSort — Table 11: task- vs loop-parallel sorting.
func BenchmarkE20StealSort(b *testing.B) {
	const n = 1 << 18
	master := gen.Ints(n, gen.Uniform, 42)
	buf := make([]int64, n)
	pool := sched.NewPool(runtime.GOMAXPROCS(0))
	b.Run("steal-quicksort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(buf, master)
			psort.QuickSortSteal(buf, pool)
		}
		reportThroughput(b, n)
	})
	b.Run("samplesort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(buf, master)
			psort.SampleSort(buf, par.Options{})
		}
		reportThroughput(b, n)
	})
}

// BenchmarkE21BFSDirection — Figure 10: BFS direction ablation.
func BenchmarkE21BFSDirection(b *testing.B) {
	g := gen.RMAT(14, 8, false, 42)
	opts := par.Options{Grain: 1024}
	b.Run("top-down", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pgraph.BFS(g, 0, opts)
		}
		reportThroughput(b, g.M())
	})
	b.Run("hybrid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pgraph.BFSHybrid(g, 0, 14, opts)
		}
		reportThroughput(b, g.M())
	})
}

package repro

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestFacadeSum(t *testing.T) {
	xs := []int64{1, 2, 3, 4, 5}
	if got := Sum(xs, Options{Procs: 2, Grain: 1}); got != 15 {
		t.Fatalf("Sum = %d", got)
	}
}

func TestFacadeForAndScan(t *testing.T) {
	n := 1000
	xs := make([]int64, n)
	For(n, Options{Procs: 4, Grain: 16}, func(i int) { xs[i] = 1 })
	dst := make([]int64, n)
	ScanInclusive(dst, xs, Options{Procs: 4, Grain: 16})
	if dst[n-1] != int64(n) {
		t.Fatalf("scan total = %d", dst[n-1])
	}
}

func TestFacadeSorts(t *testing.T) {
	for name, fn := range map[string]func([]int64, Options){
		"sample": Sort, "merge": MergeSort, "radix": RadixSort,
	} {
		xs := RandomInts(10000, 3)
		want := append([]int64(nil), xs...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		fn(xs, Options{Procs: 4})
		for i := range want {
			if xs[i] != want[i] {
				t.Fatalf("%s: mismatch at %d", name, i)
			}
		}
	}
	xs := RandomInts(100, 1)
	SequentialSort(xs)
	if !sort.SliceIsSorted(xs, func(i, j int) bool { return xs[i] < xs[j] }) {
		t.Fatal("SequentialSort")
	}
}

func TestFacadeGraphs(t *testing.T) {
	g := RandomGraph(1000, 8, false, 1)
	labels := ConnectedComponents(g, Options{Procs: 4})
	if len(labels) != 1000 {
		t.Fatal("labels length")
	}
	depth := BFS(g, 0, Options{Procs: 4})
	if depth[0] != 0 {
		t.Fatal("BFS source depth")
	}
	pg := PowerLawGraph(10, 8, false, 2)
	if pg.N() != 1024 {
		t.Fatalf("PowerLawGraph n = %d", pg.N())
	}
	wg := RandomGraph(500, 8, true, 3)
	if w := MSTWeight(wg, Options{Procs: 4}); w <= 0 {
		t.Fatalf("MST weight = %v", w)
	}
}

func TestFacadeListRank(t *testing.T) {
	l := RandomLinkedList(500, 9)
	ranks := ListRank(l, Options{Procs: 4})
	want := l.RanksRef()
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("rank mismatch at %d", i)
		}
	}
}

func TestFacadeMatMulJacobi(t *testing.T) {
	a := &Matrix{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}}
	b := &Matrix{Rows: 2, Cols: 2, Data: []float64{5, 6, 7, 8}}
	c := MatMul(a, b, Options{Procs: 2})
	want := []float64{19, 22, 43, 50}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul = %v", c.Data)
		}
	}
	g := &Grid{N: 4, Data: make([]float64, 16)}
	g.Set(0, 1, 100)
	out := Jacobi(g, 3, Options{Procs: 2})
	if out.At(0, 1) != 100 {
		t.Fatal("Jacobi boundary")
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 28 || ids[0] != "E1" {
		t.Fatalf("ExperimentIDs = %v", ids)
	}
	var buf bytes.Buffer
	cfg := ExperimentConfig{Quick: true, Reps: 1, Procs: []int{1}, VProcs: []int{1, 4}}
	if !RunExperiment("E13", cfg, &buf) {
		t.Fatal("E13 missing")
	}
	if !strings.Contains(buf.String(), "winner") {
		t.Fatalf("E13 output:\n%s", buf.String())
	}
	if RunExperiment("nope", cfg, &buf) {
		t.Fatal("phantom experiment ran")
	}
}

func TestFacadeAdaptive(t *testing.T) {
	opts := Adaptive()
	if opts.Adaptive == nil {
		t.Fatal("Adaptive() returned no controller")
	}
	// Request parallelism explicitly so the controller has something
	// to tune even on a single-CPU runner.
	opts.Procs = 4
	xs := RandomInts(30_000, 99)
	want := append([]int64(nil), xs...)
	SequentialSort(want)
	for round := 0; round < 8; round++ {
		got := append([]int64(nil), xs...)
		Sort(got, opts)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d: adaptive Sort[%d] = %d, want %d", round, i, got[i], want[i])
			}
		}
	}
	if st := DefaultAdaptiveStats(); st.Decisions == 0 {
		t.Fatalf("no adaptive decisions recorded: %+v", st)
	}
	ded := NewAdaptiveController()
	got := Sum(xs, Options{Procs: 2, Adaptive: ded})
	var want2 int64
	for _, x := range xs {
		want2 += x
	}
	if got != want2 {
		t.Fatalf("dedicated-controller Sum = %d, want %d", got, want2)
	}
}

func TestFacadePipeline(t *testing.T) {
	xs := RandomInts(20000, 9)
	var got []int64
	p := NewPipeline(PipelineConfig{ChunkSize: 1024}).
		FromSlice(xs).
		Map(func(v int64) int64 { return v >> 1 }).
		Filter(func(v int64) bool { return v&1 == 0 }).
		Sort().
		To(&got)
	if err := p.Run(); err != nil {
		t.Fatalf("pipeline Run: %v", err)
	}
	var want []int64
	for _, v := range xs {
		if m := v >> 1; m&1 == 0 {
			want = append(want, m)
		}
	}
	SequentialSort(want)
	if len(got) != len(want) {
		t.Fatalf("pipeline emitted %d elements, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	s := p.Stats()
	if s.SourceElems != 20000 || s.Throughput() <= 0 {
		t.Errorf("stats = %+v, want 20000 source elems and positive throughput", s)
	}
}

// The Example functions below double as the package's godoc snippets:
// `go test` compiles and runs them, so the documented usage of each
// runtime layer (executor, scratch, adaptive tuning, pipeline, server)
// can never drift from the real API.

// ExampleNewExecutor pins a dedicated worker pool, isolating one
// workload's parallelism from the process-wide executor.
func ExampleNewExecutor() {
	e := NewExecutor(4)
	defer e.Close()
	xs := RandomInts(1<<15, 1)
	Sort(xs, Options{Executor: e})
	fmt.Println(sort.SliceIsSorted(xs, func(i, j int) bool { return xs[i] < xs[j] }), e.Procs())
	// Output: true 4
}

// ExampleNewScratchPool pins a dedicated scratch pool; after the
// kernels return, every pooled temporary has been released (live
// bytes drop to zero) and stays cached for the next call.
func ExampleNewScratchPool() {
	pool := NewScratchPool()
	xs := RandomInts(1<<14, 2)
	Sort(xs, Options{Procs: 4, Scratch: pool})
	st := pool.Stats()
	fmt.Println(st.BytesLive, st.BytesPooled > 0)
	// Output: 0 true
}

// ExampleAdaptive runs a kernel under the online tuning runtime
// instead of hand-picking grain/policy/cutoff values.
func ExampleAdaptive() {
	opts := Adaptive()
	opts.Procs = 4 // parallelism to tune over, even on a 1-CPU runner
	xs := RandomInts(1<<14, 3)
	buf := make([]int64, len(xs))
	for round := 0; round < 4; round++ {
		copy(buf, xs)
		Sort(buf, opts) // first calls explore, later calls exploit
	}
	st := DefaultAdaptiveStats()
	fmt.Println(st.Decisions > 0, sort.SliceIsSorted(buf, func(i, j int) bool { return buf[i] < buf[j] }))
	// Output: true true
}

// ExampleNewPipeline streams a generated sequence through fused
// transform stages without materializing arrays between kernels.
func ExampleNewPipeline() {
	var smallest []int64
	p := NewPipeline(PipelineConfig{}).
		FromFunc(1000, func(i int) int64 { return int64(1000 - i) }).
		Filter(func(v int64) bool { return v%2 == 0 }).
		TopK(3).
		To(&smallest)
	if err := p.Run(); err != nil {
		panic(err)
	}
	fmt.Println(smallest)
	// Output: [2 4 6]
}

// ExampleNewServer serves typed requests from multiple tenants
// through the batched admission-control runtime.
func ExampleNewServer() {
	srv := NewServer(ServerConfig{})
	defer srv.Close()
	xs := []int64{5, 3, 1, 4, 2}
	if err := srv.Sort("tenant-a", xs); err != nil {
		panic(err)
	}
	median, err := srv.Select("tenant-b", []int64{9, 7, 8, 6, 5}, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(xs, median, srv.Stats().Completed)
	// Output: [1 2 3 4 5] 7 2
}

// TestFacadeServerSLO pins the deadline surface of the public API: a
// ServerConfig.SLO server serves a healthy request normally, and the
// exported sentinel matches the one the serve layer returns.
func TestFacadeServerSLO(t *testing.T) {
	srv := NewServer(ServerConfig{SLO: time.Second})
	defer srv.Close()
	xs := []int64{5, 3, 1, 4, 2}
	if err := srv.Sort("tenant-a", xs); err != nil {
		t.Fatalf("sort under SLO: %v", err)
	}
	if xs[0] != 1 || xs[4] != 5 {
		t.Fatalf("sorted = %v", xs)
	}
	st := srv.Stats()
	if st.DeadlineRejected != 0 || st.Expired != 0 {
		t.Fatalf("healthy request tripped deadlines: %+v", st)
	}
	if ErrRequestDeadlineExceeded == nil || ErrRequestDeadlineExceeded.Error() == "" {
		t.Fatal("ErrRequestDeadlineExceeded not exported")
	}
}

func TestFacadeResultCache(t *testing.T) {
	cache := NewResultCache(ResultCacheConfig{})
	srv := NewServer(ServerConfig{Cache: cache})
	defer srv.Close()
	xs := []int64{9, 1, 7}
	for i := 0; i < 3; i++ {
		copy(xs, []int64{9, 1, 7})
		if err := srv.Sort("tenant-a", xs); err != nil {
			t.Fatalf("sort %d: %v", i, err)
		}
		if xs[0] != 1 || xs[2] != 9 {
			t.Fatalf("sorted = %v", xs)
		}
	}
	if st := srv.Stats(); st.CacheHits != 2 || st.CacheMisses != 1 {
		t.Fatalf("server cache counters = %+v, want 2 hits / 1 miss", st)
	}
	var cs ResultCacheStats = cache.Stats()
	if cs.Hits != 2 || cs.Entries != 1 {
		t.Fatalf("cache stats = %+v", cs)
	}
	// Invalidation: the tenant's data changed, so the entry must die
	// and the same bytes must recompute.
	srv.BumpGeneration("tenant-a")
	copy(xs, []int64{9, 1, 7})
	if err := srv.Sort("tenant-a", xs); err != nil {
		t.Fatalf("post-bump sort: %v", err)
	}
	if cs := cache.Stats(); cs.Invalidations != 1 || cs.Hits != 2 {
		t.Fatalf("post-bump cache stats = %+v", cs)
	}
}

func TestFacadeShardedServer(t *testing.T) {
	srv := NewShardedServer(ShardedServerConfig{Shards: 2, ShardProcs: 1})
	defer srv.Close()
	xs := RandomInts(5000, 7)
	want := append([]int64(nil), xs...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for c := 0; c < 4; c++ {
		tenant := fmt.Sprintf("tenant-%d", c)
		ys := append([]int64(nil), xs...)
		if err := srv.Sort(tenant, ys); err != nil {
			t.Fatalf("sort: %v", err)
		}
		for i := range want {
			if ys[i] != want[i] {
				t.Fatalf("tenant %s sort mismatch at %d", tenant, i)
			}
		}
	}
	st := srv.Stats()
	if st.Shards != 2 || len(st.PerShard) != 2 {
		t.Fatalf("stats shards = %d/%d, want 2", st.Shards, len(st.PerShard))
	}
	if st.Aggregate.Completed != 4 || st.Aggregate.Accepted != 4 {
		t.Fatalf("aggregate = %+v, want 4 accepted/completed", st.Aggregate)
	}
	if srv.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2", srv.Shards())
	}
}

func ExampleNewShardedServer() {
	srv := NewShardedServer(ShardedServerConfig{Shards: 2, ShardProcs: 1})
	defer srv.Close()
	xs := []int64{5, 3, 1, 4, 2}
	if err := srv.Sort("tenant-a", xs); err != nil {
		panic(err)
	}
	sum, err := srv.Sum("tenant-b", []int64{9, 7, 8})
	if err != nil {
		panic(err)
	}
	fmt.Println(xs, sum, srv.Stats().Aggregate.Completed)
	// Output: [1 2 3 4 5] 24 2
}

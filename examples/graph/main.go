// Graph analysis walkthrough: build graphs from three generative models,
// run the parallel connectivity, BFS and MST kernels through the public
// API, and cross-validate everything against sequential oracles — the
// library as a downstream graph-analytics user would drive it.
//
// Run with: go run ./examples/graph [-scale 14]
package main

import (
	"flag"
	"fmt"
	"math"
	"runtime"
	"time"

	"repro"
	"repro/internal/gen"
	"repro/internal/perf"
	"repro/internal/pgraph"
	"repro/internal/seq"
)

func main() {
	scale := flag.Int("scale", 14, "R-MAT scale / log2 of ER size")
	flag.Parse()
	p := runtime.GOMAXPROCS(0)
	opts := repro.Options{Procs: p, Grain: 2048}
	n := 1 << *scale

	graphs := []struct {
		name string
		g    *repro.Graph
	}{
		{"erdos-renyi deg=8", repro.RandomGraph(n, 8, false, 1)},
		{"rmat power-law", repro.PowerLawGraph(*scale, 8, false, 2)},
		{"mesh", gen.Grid2D(1<<(*scale/2), 1<<(*scale/2), false, 3)},
	}

	table := perf.NewTable(fmt.Sprintf("graph kernels, P=%d", p),
		"graph", "n", "m", "maxdeg", "components", "cc-time", "bfs-ecc", "bfs-time")
	for _, tc := range graphs {
		start := time.Now()
		labels := repro.ConnectedComponents(tc.g, opts)
		ccTime := time.Since(start).Seconds()
		comps := pgraph.CountComponents(labels)

		start = time.Now()
		depth := repro.BFS(tc.g, 0, opts)
		bfsTime := time.Since(start).Seconds()

		table.AddRowf(tc.name, tc.g.N(), tc.g.M(), tc.g.MaxDegree(), comps,
			perf.FormatDuration(ccTime), int(pgraph.Eccentricity(depth)),
			perf.FormatDuration(bfsTime))

		// Validation against the DFS reference.
		if !pgraph.SamePartition(labels, tc.g.ConnectedComponentsRef()) {
			panic("parallel CC disagrees with reference on " + tc.name)
		}
	}
	fmt.Println(table)

	// MST on a weighted graph, validated against Kruskal.
	wg := repro.RandomGraph(n/2, 16, true, 4)
	start := time.Now()
	w := repro.MSTWeight(wg, opts)
	boruvka := time.Since(start).Seconds()
	start = time.Now()
	wk := seq.MSTKruskal(wg)
	kruskal := time.Since(start).Seconds()
	if math.Abs(w-wk) > 1e-9*(1+wk) {
		panic("Boruvka and Kruskal disagree")
	}
	fmt.Printf("MST on %v: weight %.4f\n", wg, w)
	fmt.Printf("  par-boruvka %s   seq-kruskal %s\n",
		perf.FormatDuration(boruvka), perf.FormatDuration(kruskal))
	fmt.Println("\nnote the mesh's BFS eccentricity (~2·side) versus the power-law")
	fmt.Println("graph's (~log n): diameter drives the round count of frontier and")
	fmt.Println("label-propagation algorithms, which is why CC uses hooking instead.")
}

// Quickstart: the five-minute tour of the library's public API —
// parallel primitives, a case-study kernel, and the experiment harness.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"runtime"

	"repro"
)

func main() {
	p := runtime.GOMAXPROCS(0)
	fmt.Printf("quickstart on %d worker(s)\n\n", p)

	// 1. Parallel primitives: generate data, sum and scan it.
	xs := repro.RandomInts(1_000_000, 42)
	opts := repro.Options{Procs: p, Policy: repro.Guided}
	total := repro.Sum(xs, opts)
	prefix := make([]int64, len(xs))
	repro.ScanInclusive(prefix, xs, opts)
	fmt.Printf("sum of %d random keys: %d (last prefix %d — must match)\n",
		len(xs), total, prefix[len(prefix)-1])
	if total != prefix[len(prefix)-1] {
		fmt.Println("BUG: scan and reduce disagree")
		os.Exit(1)
	}

	// 2. A case-study kernel: parallel sample sort.
	repro.Sort(xs, opts)
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			fmt.Println("BUG: output not sorted")
			os.Exit(1)
		}
	}
	fmt.Printf("sorted %d keys with sample sort: min=%d max=%d\n\n",
		len(xs), xs[0], xs[len(xs)-1])

	// 3. The experiment harness: regenerate one figure of the evaluation
	// at smoke size.
	fmt.Println("regenerating Figure 5 (grain-size autotuning) at quick size:")
	cfg := repro.ExperimentConfig{Quick: true, Reps: 1}
	if !repro.RunExperiment("E11", cfg, os.Stdout) {
		fmt.Println("BUG: experiment E11 missing")
		os.Exit(1)
	}
	fmt.Println("\nAll experiment ids:", repro.ExperimentIDs())
}

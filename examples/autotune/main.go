// Autotuning walkthrough: the engineering loop's "refine" step as a
// library consumer runs it. Pick a kernel, let the tuner measure the
// grain-size and schedule-policy design space, then verify the tuned
// configuration against the defaults — measure, don't guess.
//
// Run with: go run ./examples/autotune
package main

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/perf"
)

func main() {
	p := runtime.GOMAXPROCS(0)
	n := 1 << 21
	xs := gen.Ints(n, gen.Uniform, 42)
	work := gen.SkewedWork(1<<13, 1<<22, 0.001, 7)
	fmt.Printf("autotuning on %d worker(s)\n\n", p)

	// 1. Grain size for a cheap-body reduction.
	grains := core.PowersOfTwo(6, 20)
	res := core.TuneGrain(grains, 3, func(grain int) {
		par.Sum(xs, par.Options{Procs: p, Policy: par.Dynamic, Grain: grain})
	})
	fmt.Printf("grain sweep over 2^6..2^20 for parallel sum (n=%d):\n", n)
	worst := 0.0
	for _, g := range grains {
		if res.Seconds[g] > worst {
			worst = res.Seconds[g]
		}
	}
	fmt.Printf("  best grain %d (%s), worst candidate %s (%.2fx slower)\n\n",
		res.Best, perf.FormatDuration(res.Seconds[res.Best]),
		perf.FormatDuration(worst), worst/res.Seconds[res.Best])

	// 2. Schedule policy for a skewed loop.
	best, times := core.TunePolicy(3, func(pol par.Policy) {
		par.For(len(work), par.Options{Procs: p, Policy: pol, Grain: 16}, func(i int) {
			acc := uint64(1)
			for k := 0; k < work[i]; k++ {
				acc = acc*6364136223846793005 + 1
			}
			_ = acc
		})
	})
	fmt.Println("schedule-policy sweep on hub-skewed work:")
	for _, pol := range par.Policies {
		marker := " "
		if pol == best {
			marker = "*"
		}
		fmt.Printf("  %s %-8s %s\n", marker, pol, perf.FormatDuration(times[pol]))
	}
	fmt.Printf("\ntuned configuration: grain=%d, policy=%s\n", res.Best, best)
	fmt.Println("(on a single-core host the spread is small — the loop's value")
	fmt.Println("shows on multicore, where static scheduling loses 2x+ on skew)")
}

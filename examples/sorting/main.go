// Sorting case study as a library consumer would run it: compare the
// three parallel sorters and the engineered sequential baseline across
// input distributions, then drill into the distribution where they
// differ most. This mirrors the paper's "engineering loop": measure,
// localize, explain.
//
// Run with: go run ./examples/sorting [-n 1000000]
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"repro"
	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/perf"
	"repro/internal/psort"
)

func main() {
	n := flag.Int("n", 1<<20, "keys to sort")
	flag.Parse()
	p := runtime.GOMAXPROCS(0)
	opts := repro.Options{Procs: p}

	type result struct {
		alg, dist string
		secs      float64
	}
	var results []result

	distributions := []gen.Distribution{gen.Uniform, gen.Sorted, gen.Zipf, gen.FewUnique}
	table := perf.NewTable(
		fmt.Sprintf("sorting %d keys, P=%d (median of 3)", *n, p),
		"algorithm", "distribution", "time", "Mkeys/s")
	algorithms := []struct {
		name string
		sort func([]int64, par.Options)
	}{
		{"samplesort", psort.SampleSort},
		{"mergesort", psort.MergeSort},
		{"radix", psort.RadixSort},
		{"seq-baseline", func(xs []int64, _ par.Options) { repro.SequentialSort(xs) }},
	}
	for _, a := range algorithms {
		for _, d := range distributions {
			master := gen.Ints(*n, d, 7)
			buf := make([]int64, *n)
			var times []float64
			for rep := 0; rep < 3; rep++ {
				copy(buf, master)
				start := time.Now()
				a.sort(buf, opts)
				times = append(times, time.Since(start).Seconds())
				if !psort.IsSortedParallel(buf, opts) {
					panic(a.name + " failed to sort")
				}
			}
			med := perf.Summarize(times).Median
			results = append(results, result{a.name, d.String(), med})
			table.AddRowf(a.name, d.String(), perf.FormatDuration(med), perf.Throughput(*n, med)/1e6)
		}
	}
	fmt.Println(table)

	// Engineering-loop drill-down: which algorithm wins per distribution?
	fmt.Println("winners by distribution:")
	for _, d := range distributions {
		best := result{secs: -1}
		for _, r := range results {
			if r.dist == d.String() && (best.secs < 0 || r.secs < best.secs) {
				best = r
			}
		}
		fmt.Printf("  %-13s %s (%s)\n", d.String(), best.alg, perf.FormatDuration(best.secs))
	}
	fmt.Println("\nnote: radix is distribution-insensitive (no comparisons);")
	fmt.Println("comparison sorts gain on sorted/few-unique inputs from branch predictability.")
}

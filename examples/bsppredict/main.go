// BSP model-validation walkthrough: run superstep-structured kernels on
// the simulated parallel machine, calibrate the cost model from a handful
// of measurements, and predict the running time of a kernel the model has
// never seen — the predict-then-measure loop at the heart of the
// methodology (and of experiments E9/E13).
//
// Run with: go run ./examples/bsppredict
package main

import (
	"fmt"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/machine"
	"repro/internal/perf"
)

func main() {
	xs := gen.Ints(1<<17, gen.Uniform, 11)

	// 1. Calibrate: observe scan across machine sizes AND problem sizes
	// so the three features (W, H, supersteps) vary independently; take
	// the median of several runs per point to tame scheduler noise.
	fmt.Println("calibrating on scan traces (P = 1..32, three problem sizes):")
	var obs []core.Observation
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		for _, frac := range []int{1, 4, 16} {
			in := xs[:len(xs)/frac]
			var stats *bsp.Stats
			r := perf.Runner{Warmup: 1, Reps: 5}
			secs := r.Time(func(int) { _, stats = bsp.Scan(in, p) }).Median
			obs = append(obs, core.Observation{Stats: stats, Seconds: secs})
			// A 3-superstep, low-h kernel makes the barrier term
			// identifiable (scan alone always has 2 supersteps).
			secs = r.Time(func(int) { _, stats = bsp.SumAllReduce(in, p) }).Median
			obs = append(obs, core.Observation{Stats: stats, Seconds: secs})
			if frac == 1 {
				fmt.Printf("  P=%-3d W=%-10.0f H=%-6.0f supersteps=%d  measured %s\n",
					p, stats.TotalW(), stats.TotalH(), stats.Supersteps(), perf.FormatDuration(secs))
			}
		}
	}
	cal, err := core.Fit(obs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nfitted: %.3g s/op, %.3g s/word, %.3g s/barrier", cal.SecPerOp, cal.SecPerWord, cal.SecPerBarrier)
	bp := cal.BSPParams(8)
	fmt.Printf("  =>  BSP g=%.2f, l=%.0f (in op units)\n\n", bp.G, bp.L)

	// 2. Predict an unseen kernel: sample sort at P=8.
	var stats *bsp.Stats
	secs := core.Stopwatch(func() { _, stats = bsp.SampleSort(xs[:1<<14], 8) })
	pred := cal.Predict(stats)
	fmt.Printf("sample sort (P=8): predicted %s, measured %s, relative error %.0f%%\n\n",
		perf.FormatDuration(pred), perf.FormatDuration(secs), 100*core.RelativeError(pred, secs))

	// 3. Use the model where measurement is impossible: the broadcast
	// crossover on machines we don't have.
	fmt.Println("broadcast algorithm choice on hypothetical machines (model only):")
	table := perf.NewTable("", "P", "machine", "direct-cost", "tree-cost", "use")
	for _, p := range []int{8, 64} {
		_, direct := bsp.BroadcastDirect(1, p)
		_, tree := bsp.BroadcastTree(1, p)
		for _, m := range []struct {
			name string
			bsp  machine.BSPParams
		}{
			{"low-latency SMP", machine.BSPParams{P: p, G: 1, L: 50}},
			{"high-latency cluster", machine.BSPParams{P: p, G: 4, L: 50000}},
			{"bandwidth-starved bus", machine.BSPParams{P: p, G: 50, L: 10}},
		} {
			cd, ct := direct.Cost(m.bsp), tree.Cost(m.bsp)
			use := "direct"
			if ct < cd {
				use = "tree"
			}
			table.AddRowf(p, m.name, cd, ct, use)
		}
	}
	fmt.Println(table)
	fmt.Println("high barrier latency favors the 1-superstep direct broadcast;")
	fmt.Println("expensive per-word bandwidth (large g) favors the log-depth tree,")
	fmt.Println("whose root sends O(log P) words instead of P-1.")
	fmt.Println()
	fmt.Println("(Prediction error on a loaded single-core host can be large —")
	fmt.Println("the point of the simulated machine is that the *model* costs are")
	fmt.Println("exact and host-independent even when wall clocks are noisy.)")
}

// Command parserve is the standalone network front door: a Server (or
// ShardedServer) behind a wire-protocol listener on a TCP or Unix
// socket, so remote clients get the same batched, admission-controlled,
// deadline-aware serving path an in-process caller does.
//
//	parserve                                  # TCP on 127.0.0.1:7070
//	parserve -addr :7070 -shards 4 -slo 10ms -cache on
//	parserve -unix /tmp/parserve.sock
//
// Requests are length-prefixed binary frames (see internal/wire):
// payloads decode in place into connection-owned scratch slabs, large
// responses stream back as chunk frames, and a frame's optional
// deadline budget is enforced by the server's admission ladder exactly
// as a local SLO would be. Drive it with `parbench -serve -wire
// host:port` or any repro.DialClient.
//
// SIGINT/SIGTERM shut down gracefully: the listener stops accepting,
// in-flight requests drain and their responses are written, then the
// server closes and the final stats print.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/rescache"
	"repro/internal/serve"
	"repro/internal/wire"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:7070", "TCP listen address")
		unix   = flag.String("unix", "", "Unix socket path (overrides -addr)")
		shards = flag.Int("shards", 0,
			"shard the server into N executor shards with tenant-affinity routing and diffusive migration (0 = one unsharded server)")
		workers = flag.Int("workers", 4,
			"serving workers (split across shards when -shards > 0)")
		slo = flag.Duration("slo", 0,
			"server-wide per-request deadline budget; frames carrying their own budget override it per request (0 = no server deadline)")
		cacheMode = flag.String("cache", "off",
			"'on' puts the generation-stamped result cache in front of the server")
		stream = flag.Int("stream", 0,
			"response bytes at which replies stream as chunk frames (0 = default 1MiB, negative = never)")
	)
	flag.Parse()

	if *shards < 0 {
		fatalf("bad -shards %d: want >= 0", *shards)
	}
	if *workers < 1 {
		fatalf("bad -workers %d: want >= 1", *workers)
	}
	if *slo < 0 {
		fatalf("bad -slo %v: want >= 0", *slo)
	}
	var cache *rescache.Cache
	switch *cacheMode {
	case "on":
		cache = rescache.New(rescache.Config{})
	case "off", "":
	default:
		fatalf("bad -cache %q: want on or off", *cacheMode)
	}

	scfg := serve.Config{Workers: *workers, SLO: *slo, Cache: cache}
	var backend wire.Backend
	var closeBackend func()
	var stats func() serve.Stats
	var sharded *serve.Sharded
	if *shards > 0 {
		procs := *workers / *shards
		if procs < 1 {
			procs = 1
		}
		sc := scfg
		sc.Workers = procs
		sharded = serve.NewSharded(serve.ShardedConfig{
			Shards:     *shards,
			ShardProcs: procs,
			Config:     sc,
		})
		backend = sharded
		closeBackend = func() { sharded.Close() }
		stats = func() serve.Stats { return sharded.Stats().Aggregate }
	} else {
		srv := serve.New(scfg)
		backend = srv
		closeBackend = func() { srv.Close() }
		stats = srv.Stats
	}

	network, laddr := "tcp", *addr
	if *unix != "" {
		network, laddr = "unix", *unix
	}
	l, err := wire.Listen(network, laddr, backend, wire.Config{StreamCutoff: *stream})
	if err != nil {
		closeBackend()
		fatalf("listen: %v", err)
	}
	fmt.Printf("parserve: listening on %s %s (shards=%d workers=%d slo=%v cache=%s)\n",
		network, l.Addr(), *shards, *workers, *slo, *cacheMode)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("parserve: %v — draining\n", s)
	start := time.Now()
	l.Close()
	closeBackend()

	ws := l.Stats()
	fmt.Printf("wire: conns=%d requests=%d responses=%d chunks=%d errors=%d\n",
		ws.Conns, ws.Requests, ws.Responses, ws.Chunks, ws.Errors)
	st := stats()
	fmt.Printf("serve: accepted=%d completed=%d rejected=%d dlrej=%d expired=%d batches=%d\n",
		st.Accepted, st.Completed, st.Rejected, st.DeadlineRejected, st.Expired, st.Batches)
	if sharded != nil {
		sst := sharded.Stats()
		fmt.Printf("shards: migrations=%d migrated=%d\n", sst.Migrations, sst.Migrated)
	}
	fmt.Printf("parserve: drained in %s\n", time.Since(start).Round(time.Millisecond))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "parserve: "+format+"\n", args...)
	os.Exit(1)
}

// Command parstudy runs a single case-study kernel under explicit
// engineering-loop controls — kernel, input size, worker count, schedule
// policy, grain — measures it, validates the output against the
// sequential oracle, and prints the PRAM-model prediction next to the
// measurement. It is the interactive face of the methodology: change one
// knob, re-run, compare.
//
// Usage:
//
//	parstudy -kernel sort -n 1000000 -procs 4 -policy guided
//	parstudy -kernel cc -n 65536 -procs 8
//	parstudy -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/gen"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/perf"
	"repro/internal/pgraph"
	"repro/internal/plist"
	"repro/internal/pmat"
	"repro/internal/psort"
	"repro/internal/pstencil"
	"repro/internal/seq"
)

// study is one runnable kernel with validation and an optional model.
type study struct {
	name string
	desc string
	run  func(n int, opts par.Options, seed uint64) (seconds float64, validation string, err error)
	wd   func(n int) machine.WorkDepth
}

func studies() []study {
	return []study{
		{
			name: "scan", desc: "parallel inclusive prefix sums",
			wd: machine.ScanWD,
			run: func(n int, opts par.Options, seed uint64) (float64, string, error) {
				xs := gen.Ints(n, gen.Uniform, seed)
				dst := make([]int64, n)
				secs := timeIt(func() {
					par.ScanInclusive(dst, xs, opts, 0, func(a, b int64) int64 { return a + b })
				})
				want := make([]int64, n)
				seq.Scan(want, xs)
				for i := range want {
					if dst[i] != want[i] {
						return secs, "", fmt.Errorf("mismatch at %d", i)
					}
				}
				return secs, "matches sequential scan", nil
			},
		},
		{
			name: "sort", desc: "parallel sample sort",
			wd: machine.SortWD,
			run: func(n int, opts par.Options, seed uint64) (float64, string, error) {
				xs := gen.Ints(n, gen.Uniform, seed)
				secs := timeIt(func() { psort.SampleSort(xs, opts) })
				if !psort.IsSortedParallel(xs, opts) {
					return secs, "", fmt.Errorf("output not sorted")
				}
				return secs, "output sorted", nil
			},
		},
		{
			name: "listrank", desc: "pointer-jumping list ranking",
			wd: machine.ListRankWD,
			run: func(n int, opts par.Options, seed uint64) (float64, string, error) {
				l := gen.RandomList(n, seed)
				var ranks []int
				secs := timeIt(func() { ranks = plist.Rank(l, opts) })
				want := seq.ListRank(l)
				for i := range want {
					if ranks[i] != want[i] {
						return secs, "", fmt.Errorf("rank mismatch at %d", i)
					}
				}
				return secs, "matches sequential sweep", nil
			},
		},
		{
			name: "cc", desc: "connected components (hook-and-shortcut) on an ER graph, avg deg 8",
			wd: func(n int) machine.WorkDepth { return machine.CCWD(n, 4*n) },
			run: func(n int, opts par.Options, seed uint64) (float64, string, error) {
				g := gen.ErdosRenyi(n, 8, false, seed)
				var labels []int32
				secs := timeIt(func() { labels = pgraph.CCHook(g, opts) })
				if !pgraph.SamePartition(labels, g.ConnectedComponentsRef()) {
					return secs, "", fmt.Errorf("partition differs from reference")
				}
				return secs, fmt.Sprintf("%d components, matches reference", pgraph.CountComponents(labels)), nil
			},
		},
		{
			name: "mst", desc: "Borůvka minimum spanning forest on a weighted ER graph, avg deg 8",
			wd: func(n int) machine.WorkDepth { return machine.CCWD(n, 4*n) },
			run: func(n int, opts par.Options, seed uint64) (float64, string, error) {
				g := gen.ErdosRenyi(n, 8, true, seed)
				var w float64
				secs := timeIt(func() { w = pgraph.MSTBoruvka(g, opts) })
				want := seq.MSTKruskal(g)
				if d := w - want; d > 1e-9*(1+want) || d < -1e-9*(1+want) {
					return secs, "", fmt.Errorf("weight %v != Kruskal %v", w, want)
				}
				return secs, fmt.Sprintf("weight %.6g matches Kruskal", w), nil
			},
		},
		{
			name: "matmul", desc: "blocked parallel matrix multiply (n is the matrix edge)",
			wd: machine.MatmulWD,
			run: func(n int, opts par.Options, seed uint64) (float64, string, error) {
				a := gen.RandomMatrix(n, n, seed)
				b := gen.RandomMatrix(n, n, seed+1)
				var c *gen.Matrix
				secs := timeIt(func() { c = pmat.Mul(a, b, pmat.Config{Opts: opts}) })
				if n <= 512 {
					if !c.Equal(seq.Matmul(a, b), 1e-9) {
						return secs, "", fmt.Errorf("product differs from sequential")
					}
					return secs, "matches sequential product", nil
				}
				return secs, "unvalidated (n > 512)", nil
			},
		},
		{
			name: "jacobi", desc: "5-point Jacobi stencil, 20 sweeps (n is the grid edge)",
			wd: func(n int) machine.WorkDepth {
				return machine.WorkDepth{Work: 20 * 4 * float64(n) * float64(n), Depth: 20}
			},
			run: func(n int, opts par.Options, seed uint64) (float64, string, error) {
				g := gen.HotPlateGrid(n)
				var out *gen.Grid
				secs := timeIt(func() { out = pstencil.Jacobi(g, 20, opts) })
				want := seq.Jacobi(g, 20)
				for i := range want.Data {
					d := out.Data[i] - want.Data[i]
					if d > 1e-12 || d < -1e-12 {
						return secs, "", fmt.Errorf("grid differs from sequential at cell %d", i)
					}
				}
				return secs, "matches sequential sweeps", nil
			},
		},
	}
}

func main() {
	var (
		kernel = flag.String("kernel", "", "kernel to run (see -list)")
		n      = flag.Int("n", 1<<20, "problem size")
		procs  = flag.Int("procs", 0, "workers (default GOMAXPROCS)")
		policy = flag.String("policy", "static", "schedule: static|cyclic|dynamic|guided")
		grain  = flag.Int("grain", 0, "grain size (default policy-specific)")
		seed   = flag.Uint64("seed", 42, "workload seed")
		reps   = flag.Int("reps", 3, "measured repetitions")
		list   = flag.Bool("list", false, "list kernels and exit")
	)
	flag.Parse()

	all := studies()
	if *list || *kernel == "" {
		fmt.Println("kernels:")
		for _, s := range all {
			fmt.Printf("  %-9s %s\n", s.name, s.desc)
		}
		if *kernel == "" && !*list {
			os.Exit(2)
		}
		return
	}

	var chosen *study
	for i := range all {
		if all[i].name == *kernel {
			chosen = &all[i]
		}
	}
	if chosen == nil {
		fmt.Fprintf(os.Stderr, "parstudy: unknown kernel %q (try -list)\n", *kernel)
		os.Exit(1)
	}
	pol, err := parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parstudy:", err)
		os.Exit(1)
	}
	opts := par.Options{Procs: *procs, Policy: pol, Grain: *grain}

	times := make([]float64, 0, *reps)
	validation := ""
	for i := 0; i < *reps; i++ {
		secs, v, err := chosen.run(*n, opts, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parstudy: VALIDATION FAILED: %v\n", err)
			os.Exit(1)
		}
		times = append(times, secs)
		validation = v
	}
	s := perf.Summarize(times)
	fmt.Printf("kernel     %s (n=%d, procs=%d, policy=%s, grain=%d, seed=%d)\n",
		chosen.name, *n, opts.Procs, pol, *grain, *seed)
	fmt.Printf("time       median %s  (mean %s ± %s over %d reps)\n",
		perf.FormatDuration(s.Median), perf.FormatDuration(s.Mean), perf.FormatDuration(s.CI95), s.N)
	fmt.Printf("validate   %s\n", validation)
	if chosen.wd != nil {
		wd := chosen.wd(*n)
		fmt.Printf("model      work %.4g ops, depth %.4g; Brent T_p bounds: T1 %.4g, T8 %.4g, T64 %.4g ops\n",
			wd.Work, wd.Depth, wd.Brent(1), wd.Brent(8), wd.Brent(64))
		fmt.Printf("           model speedup at P=8: %.2fx, P=64: %.2fx (vs ideal %d/%d)\n",
			wd.Speedup(8)/wd.Speedup(1), wd.Speedup(64)/wd.Speedup(1), 8, 64)
	}
}

func parsePolicy(s string) (par.Policy, error) {
	names := map[string]par.Policy{}
	for _, p := range par.Policies {
		names[p.String()] = p
	}
	if p, ok := names[strings.ToLower(s)]; ok {
		return p, nil
	}
	keys := make([]string, 0, len(names))
	for k := range names {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return 0, fmt.Errorf("unknown policy %q (want one of %s)", s, strings.Join(keys, "|"))
}

func timeIt(fn func()) float64 {
	start := time.Now()
	fn()
	return time.Since(start).Seconds()
}

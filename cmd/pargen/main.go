// Command pargen generates the suite's synthetic workloads and writes
// them to disk in simple portable formats, so experiments can be re-run
// on identical inputs elsewhere (or inspected directly).
//
// Formats:
//
//	array: one decimal integer per line
//	graph: "n m" header then one "u v w" line per undirected edge
//	list:  "n head" header then one successor index per line
//
// Usage:
//
//	pargen -kind array -n 1000000 -dist zipf -seed 7 -o keys.txt
//	pargen -kind graph -model rmat -scale 16 -o g.txt
//	pargen -kind list -n 65536 -o list.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/gen"
	"repro/internal/genio"
	"repro/internal/graph"
)

func main() {
	var (
		kind  = flag.String("kind", "array", "array|graph|list")
		n     = flag.Int("n", 1<<20, "size (array/list nodes; graph nodes for er/grid)")
		dist  = flag.String("dist", "uniform", "array distribution: uniform|sorted|reversed|nearly-sorted|zipf|gaussian|few-unique")
		model = flag.String("model", "er", "graph model: er|rmat|grid|tree")
		scale = flag.Int("scale", 14, "rmat scale (2^scale nodes)")
		deg   = flag.Float64("deg", 8, "er average degree")
		wtd   = flag.Bool("weighted", false, "weighted graph edges")
		seed  = flag.Uint64("seed", 42, "generator seed")
		out   = flag.String("o", "-", "output file (- for stdout)")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}

	switch *kind {
	case "array":
		d, ok := parseDist(*dist)
		if !ok {
			fatalf("unknown distribution %q", *dist)
		}
		if err := genio.WriteInts(w, gen.Ints(*n, d, *seed)); err != nil {
			fatalf("%v", err)
		}
	case "graph":
		var g *graph.Graph
		switch *model {
		case "er":
			g = gen.ErdosRenyi(*n, *deg, *wtd, *seed)
		case "rmat":
			g = gen.RMAT(*scale, int(*deg), *wtd, *seed)
		case "grid":
			side := 1
			for side*side < *n {
				side++
			}
			g = gen.Grid2D(side, side, *wtd, *seed)
		case "tree":
			g = gen.RandomTree(*n, *wtd, *seed)
		default:
			fatalf("unknown graph model %q", *model)
		}
		if err := genio.WriteGraph(w, g); err != nil {
			fatalf("%v", err)
		}
	case "list":
		if err := genio.WriteList(w, gen.RandomList(*n, *seed)); err != nil {
			fatalf("%v", err)
		}
	default:
		fatalf("unknown kind %q", *kind)
	}
}

func parseDist(s string) (gen.Distribution, bool) {
	for _, d := range gen.Distributions {
		if d.String() == s {
			return d, true
		}
	}
	return 0, false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pargen: "+format+"\n", args...)
	os.Exit(1)
}

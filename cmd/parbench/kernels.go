package main

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/par"
	"repro/internal/perf"
	"repro/internal/serve"
)

// printKernels renders the registry index: one row per registered
// kernel straight from kernel.All(), so a new registration shows up
// here with no CLI edits.
func printKernels(w io.Writer) {
	fmt.Fprintln(w, "name       variants                      stream  relations  title")
	for _, k := range kernel.All() {
		names := make([]string, len(k.Variants))
		for i, v := range k.Variants {
			names[i] = v.Name
		}
		stream := "-"
		if k.Stream != nil {
			stream = "yes"
		}
		fmt.Fprintf(w, "%-10s %-29s %-7s %-10d %s\n",
			k.Name, strings.Join(names, ","), stream, len(k.Meta), k.Title)
	}
}

// runKernelDemo drives one registered kernel through every ladder its
// registration wires it into: the dispatched one-shot entrypoint
// (verified against the serial oracle), each algorithm variant
// individually, and the serve batch path (admission, queueing and the
// fused batch loop included). It honors -quick, -procs, -executor,
// -scratch and -adapt through cfg.
func runKernelDemo(cfg core.Config, name string, w io.Writer) error {
	k := kernel.Lookup(name)
	if k == nil {
		return fmt.Errorf("unknown kernel %q; registered: %s", name, strings.Join(kernel.Names(), ", "))
	}
	procs := runtime.GOMAXPROCS(0)
	if len(cfg.Procs) > 0 {
		procs = cfg.Procs[len(cfg.Procs)-1]
	}
	n := 1 << 16
	if cfg.Quick {
		n = 1 << 13
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 42
	}
	opts := par.Options{Procs: procs, Executor: cfg.Executor, Scratch: cfg.Scratch}
	if cfg.Adaptive {
		opts.Adaptive = adapt.Default()
	}
	fmt.Fprintf(w, "== kernel %s — %s (n=%d, P=%d)\n", k.Name, k.Title, n, procs)

	// One-shot dispatched entrypoint, verified against the oracle.
	want := k.Gen(n, seed)
	t0 := time.Now()
	k.Serial(want)
	serialT := time.Since(t0).Seconds()
	got := k.Gen(n, seed)
	t0 = time.Now()
	k.Run(got, opts)
	runT := time.Since(t0).Seconds()
	if err := k.Check(got, want); err != nil {
		return fmt.Errorf("one-shot result differs from serial oracle: %w", err)
	}
	fmt.Fprintf(w, "one-shot: %s (serial oracle %s) — verified\n",
		perf.FormatDuration(runT), perf.FormatDuration(serialT))

	// Each variant individually (the lattice candidates).
	for i, v := range k.Variants {
		a := k.Gen(n, seed)
		t0 := time.Now()
		k.RunVariant(i, a, opts)
		d := time.Since(t0).Seconds()
		if err := k.Check(a, want); err != nil {
			return fmt.Errorf("variant %s differs from serial oracle: %w", v.Name, err)
		}
		fmt.Fprintf(w, "variant %-12s %s — verified\n", v.Name+":", perf.FormatDuration(d))
	}

	// The serve batch path: the same kernel behind admission control.
	scfg := serve.Config{Executor: cfg.Executor, Scratch: cfg.Scratch, Workers: procs}
	if cfg.Adaptive {
		scfg.Adaptive = adapt.Default()
	}
	s := serve.New(scfg)
	defer s.Close()
	reqs := 64
	if cfg.Quick {
		reqs = 16
	}
	sa := k.Gen(4096, seed)
	t0 = time.Now()
	for i := 0; i < reqs; i++ {
		if err := s.Call("demo", k, sa); err != nil {
			return fmt.Errorf("serve request %d: %w", i, err)
		}
	}
	perReq := time.Since(t0).Seconds() / float64(reqs)
	// Apply the oracle the same number of times: kernels like gups
	// accumulate state across calls, and every kernel is a pure state
	// transformation, so repeated Serial mirrors repeated Call exactly.
	sw := k.Gen(4096, seed)
	for i := 0; i < reqs; i++ {
		k.Serial(sw)
	}
	if err := k.Check(sa, sw); err != nil {
		return fmt.Errorf("serve result differs from serial oracle: %w", err)
	}
	st := s.Stats()
	fmt.Fprintf(w, "serve: %d reqs, %s/req, batches=%d — verified\n",
		reqs, perf.FormatDuration(perReq), st.Batches)
	return nil
}
